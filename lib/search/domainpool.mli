(** A persistent pool of worker domains shared across evaluation batches.

    The legacy [Evalpool] path spawns fresh domains for every parallel
    stage, which is fine for a one-shot search but wasteful for a
    long-lived service multiplexing many searches: domain spawn/join costs
    would be paid per batch per tenant.  A [Domainpool] spawns its worker
    domains once; each {!run} call hands the same job closure to every
    worker (the calling domain participates as worker 0) and returns when
    all of them have finished.  One job runs at a time — the serve
    scheduler interleaves tenants at batch granularity, so a single pool
    bounds the whole process's parallelism no matter how many searches are
    active.

    Memory publication: a worker's writes made during a job are visible to
    the caller when {!run} returns (the completion handshake goes through
    the pool's mutex). *)

type t

val create : workers:int -> t
(** [create ~workers:n] spawns [n - 1] persistent domains; the caller acts
    as the [n]-th worker.  [n] must be >= 1; [n = 1] spawns nothing and
    {!run} degenerates to a plain call. *)

val size : t -> int
(** Total worker count, including the calling domain. *)

val run : t -> (int -> unit) -> unit
(** [run t job] executes [job wid] once on every worker ([wid] 0 on the
    calling domain, 1.. on the pool domains) and returns when all are
    done.  [job] must confine its exceptions (capture them into result
    slots): an exception escaping a pool domain is swallowed, one escaping
    the caller's share is re-raised after the handshake.  Calls must not
    be nested or concurrent — the pool serves one job at a time. *)

val shutdown : t -> unit
(** Join the pool domains.  Idempotent; the pool must not be used after.
    Always shut a pool down before process exit ([Fun.protect] around the
    serving loop), or the blocked workers keep the process alive. *)
