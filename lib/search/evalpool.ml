(* Domain-based parallel evaluation of GA generations with two-level
   memoization.  See the interface for the determinism contract.

   Scheduling: tasks are first resolved against the genome memo on the
   calling domain, the surviving unique genomes are compiled in parallel,
   then the unique unseen binaries are verified in parallel.  Workers only
   ever run the caller-supplied [compile]/[verify] stages on disjoint
   tasks; all cache reads and writes happen on the calling domain, so no
   synchronization beyond the work-queue index is needed and results are
   reproducible by construction.

   Parallel stages either spawn fresh domains per batch (the legacy
   one-shot path) or borrow a caller-supplied persistent [Domainpool] —
   the serve scheduler shares one pool across every tenant's Evalpool so
   process parallelism stays bounded.

   The memos are budgeted LRU caches (Stagecache-style: per-entry tick,
   evict the stalest when over budget).  Eviction can only cause
   re-computation of a deterministic stage, never a different result, so
   the search-history digest is invariant under any budget.

   Tracing: each batch is a span on the calling domain and each worker
   wraps its work loop in a span on its own domain, so an exported trace
   shows the real parallelism (distinct tids) and the cache short-circuits
   (counters). *)

module Trace = Repro_util.Trace
module Clock = Repro_util.Clock

type worker = {
  w_id : int;
  w_tasks : int;
  w_busy_s : float;
}

type stats = {
  batches : int;
  tasks : int;
  genome_hits : int;
  genome_misses : int;
  key_hits : int;
  compiles : int;
  verifies : int;
  evictions : int;
  workers : worker list;
}

type counters = {
  mutable c_batches : int;
  mutable c_tasks : int;
  mutable c_genome_hits : int;
  mutable c_genome_misses : int;
  mutable c_key_hits : int;
  mutable c_compiles : int;
  mutable c_verifies : int;
  mutable c_evictions : int;
  c_workers : (int, (int * float) ref) Hashtbl.t;  (* id -> tasks, busy *)
}

let fresh_counters () = {
  c_batches = 0; c_tasks = 0; c_genome_hits = 0; c_genome_misses = 0;
  c_key_hits = 0; c_compiles = 0; c_verifies = 0; c_evictions = 0;
  c_workers = Hashtbl.create 8;
}

(* Process-wide totals, updated from the calling domain only. *)
let cumulative = fresh_counters ()

let snapshot c = {
  batches = c.c_batches;
  tasks = c.c_tasks;
  genome_hits = c.c_genome_hits;
  genome_misses = c.c_genome_misses;
  key_hits = c.c_key_hits;
  compiles = c.c_compiles;
  verifies = c.c_verifies;
  evictions = c.c_evictions;
  workers =
    Hashtbl.fold
      (fun id r acc ->
         let t, b = !r in
         { w_id = id; w_tasks = t; w_busy_s = b } :: acc)
      c.c_workers []
    |> List.sort (fun a b -> Int.compare a.w_id b.w_id);
}

let record_worker c (id, tasks, busy) =
  let r =
    match Hashtbl.find_opt c.c_workers id with
    | Some r -> r
    | None ->
      let r = ref (0, 0.0) in
      Hashtbl.add c.c_workers id r;
      r
  in
  let t, b = !r in
  r := (t + tasks, b +. busy)

(* One memo entry: the cached core plus its last-touch tick for LRU. *)
type 'core slot = { s_core : 'core; mutable s_tick : int }

type ('bin, 'core, 'out) t = {
  jobs : int;
  cache : bool;
  memo_budget : int;           (* max entries per memo table *)
  pool : Domainpool.t option;
  canon : Genome.t -> string;
  compile : Genome.t -> ('bin, 'core) result;
  key_of : 'bin -> string;
  verify : 'bin -> 'core;
  finish : ev_index:int -> 'core -> 'out;
  genome_cache : (string, 'core slot) Hashtbl.t;
  key_cache : (string, 'core slot) Hashtbl.t;
  mutable tick : int;
  ctr : counters;
}

(* Bounded for a long-lived server, but comfortably above what one search
   touches, so a default pool behaves exactly like the old unbounded one. *)
let default_memo_budget = 65536

let create ?(jobs = 1) ?(cache = true) ?(memo_budget = default_memo_budget)
    ?pool ~canon ~compile ~key_of ~verify ~finish () =
  if jobs < 1 then invalid_arg "Evalpool.create: jobs must be >= 1";
  if memo_budget < 1 then
    invalid_arg "Evalpool.create: memo_budget must be >= 1";
  let jobs = match pool with Some p -> Domainpool.size p | None -> jobs in
  { jobs; cache; memo_budget; pool; canon; compile; key_of; verify; finish;
    genome_cache = Hashtbl.create 256;
    key_cache = Hashtbl.create 256;
    tick = 0;
    ctr = fresh_counters () }

let jobs t = t.jobs
let stats t = snapshot t.ctr
let cumulative_stats () = snapshot cumulative
let reset_cumulative () =
  let c = cumulative in
  c.c_batches <- 0; c.c_tasks <- 0; c.c_genome_hits <- 0;
  c.c_genome_misses <- 0; c.c_key_hits <- 0; c.c_compiles <- 0;
  c.c_verifies <- 0; c.c_evictions <- 0;
  Hashtbl.reset c.c_workers

(* ----------------------------- memo LRU ------------------------------ *)

let touch t slot =
  t.tick <- t.tick + 1;
  slot.s_tick <- t.tick

let memo_find t tbl key =
  match Hashtbl.find_opt tbl key with
  | None -> None
  | Some slot ->
    touch t slot;
    Some slot.s_core

(* Evict the least-recently-touched entry.  O(n) scan, same trade-off as
   the stage cache: eviction is rare relative to lookups and the table is
   budget-bounded. *)
let evict_one t tbl =
  let victim = ref None in
  Hashtbl.iter
    (fun key slot ->
       match !victim with
       | Some (_, best) when best <= slot.s_tick -> ()
       | _ -> victim := Some (key, slot.s_tick))
    tbl;
  match !victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove tbl key;
    t.ctr.c_evictions <- t.ctr.c_evictions + 1;
    cumulative.c_evictions <- cumulative.c_evictions + 1;
    Trace.incr "evalpool.memo_evictions"

let memo_add t tbl key core =
  if not (Hashtbl.mem tbl key) then begin
    while Hashtbl.length tbl >= t.memo_budget do
      evict_one t tbl
    done;
    t.tick <- t.tick + 1;
    Hashtbl.add tbl key { s_core = core; s_tick = t.tick }
  end

let seed_caches t ~genomes ~keys =
  if t.cache then begin
    List.iter (fun (c, core) -> memo_add t t.genome_cache c core) genomes;
    List.iter (fun (k, core) -> memo_add t t.key_cache k core) keys
  end

(* Run [f] over [arr] on up to [t.jobs] domains (the calling domain acts as
   worker 0).  Work-stealing via a shared atomic index; each output slot is
   written by exactly one domain and published by [Domain.join] (legacy
   path) or the pool's completion handshake (shared-pool path). *)
let parallel_map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let nworkers = max 1 (min t.jobs n) in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker wid =
      Trace.span ~cat:"evalpool"
        ~args:[ ("worker", string_of_int wid) ]
        "evalpool:worker"
      @@ fun () ->
      let t0 = Clock.now () in
      let count = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f arr.(i));
          incr count;
          loop ()
        end
      in
      loop ();
      (wid, !count, Clock.elapsed t0)
    in
    let finish_workers ws =
      List.iter
        (function
          | Ok w ->
            record_worker t.ctr w;
            record_worker cumulative w
          | Error _ -> ())
        ws;
      match List.find_opt Result.is_error ws with
      | Some (Error e) -> raise e
      | Some (Ok _) | None -> ()
    in
    (match t.pool with
     | _ when nworkers = 1 ->
       let w = worker 0 in
       record_worker t.ctr w;
       record_worker cumulative w
     | Some pool ->
       let nw = Domainpool.size pool in
       let slots = Array.make nw None in
       Domainpool.run pool (fun wid ->
           slots.(wid) <- Some (try Ok (worker wid) with e -> Error e));
       finish_workers
         (List.filter_map Fun.id (Array.to_list slots))
     | None ->
       let spawned =
         Array.init (nworkers - 1) (fun k ->
             Domain.spawn (fun () -> worker (k + 1)))
       in
       let w0 = try Ok (worker 0) with e -> Error e in
       let joined =
         Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned
       in
       finish_workers (Array.to_list (Array.append [| w0 |] joined)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let evaluate_batch t tasks =
  Trace.span ~cat:"evalpool"
    ~args:[ ("tasks", string_of_int (Array.length tasks)) ]
    "evalpool:batch"
  @@ fun () ->
  let n = Array.length tasks in
  t.ctr.c_batches <- t.ctr.c_batches + 1;
  t.ctr.c_tasks <- t.ctr.c_tasks + n;
  cumulative.c_batches <- cumulative.c_batches + 1;
  cumulative.c_tasks <- cumulative.c_tasks + n;
  Trace.incr "evalpool.batches";
  Trace.add "evalpool.tasks" n;
  let bump_hit () =
    t.ctr.c_genome_hits <- t.ctr.c_genome_hits + 1;
    cumulative.c_genome_hits <- cumulative.c_genome_hits + 1;
    Trace.incr "evalpool.genome_hits"
  and bump_miss () =
    t.ctr.c_genome_misses <- t.ctr.c_genome_misses + 1;
    cumulative.c_genome_misses <- cumulative.c_genome_misses + 1
  and bump_key_hit () =
    t.ctr.c_key_hits <- t.ctr.c_key_hits + 1;
    cumulative.c_key_hits <- cumulative.c_key_hits + 1;
    Trace.incr "evalpool.key_hits"
  in
  let canons = Array.map (fun (_, g) -> t.canon g) tasks in
  let cores : 'core option array = Array.make n None in
  (* Stage 0 (calling domain): genome-memo lookups and in-batch dedup.
     [reps] holds the indices of tasks that actually need a compile; with
     the cache disabled, every task is its own representative. *)
  let seen_in_batch = Hashtbl.create 16 in
  let rep_rev = ref [] in
  Array.iteri
    (fun i (_, _) ->
       let c = canons.(i) in
       match if t.cache then memo_find t t.genome_cache c else None with
       | Some core ->
         cores.(i) <- Some core;
         bump_hit ()
       | None ->
         if t.cache && Hashtbl.mem seen_in_batch c then bump_hit ()
         else begin
           if t.cache then Hashtbl.add seen_in_batch c ();
           rep_rev := i :: !rep_rev;
           bump_miss ()
         end)
    tasks;
  let reps = Array.of_list (List.rev !rep_rev) in
  let nrep = Array.length reps in
  (* Stage A (parallel): compile the representative genomes. *)
  let compiled = parallel_map t (fun i -> t.compile (snd tasks.(i))) reps in
  t.ctr.c_compiles <- t.ctr.c_compiles + nrep;
  cumulative.c_compiles <- cumulative.c_compiles + nrep;
  Trace.add "evalpool.compiles" nrep;
  let rep_core : 'core option array = Array.make nrep None in
  let rep_bin : ('bin * string) option array = Array.make nrep None in
  Array.iteri
    (fun k result ->
       match result with
       | Error core -> rep_core.(k) <- Some core
       | Ok bin -> rep_bin.(k) <- Some (bin, t.key_of bin))
    compiled;
  (* Stage B plan (calling domain): resolve binaries against the key memo
     and pick one representative per unseen key. *)
  let key_owner = Hashtbl.create 16 in
  let verify_rev = ref [] in
  Array.iteri
    (fun k bin ->
       match bin with
       | None -> ()
       | Some (_, key) ->
         (match if t.cache then memo_find t t.key_cache key else None with
          | Some core ->
            rep_core.(k) <- Some core;
            bump_key_hit ()
          | None ->
            if t.cache && Hashtbl.mem key_owner key then bump_key_hit ()
            else begin
              if t.cache then Hashtbl.add key_owner key k;
              verify_rev := k :: !verify_rev
            end))
    rep_bin;
  let vreps = Array.of_list (List.rev !verify_rev) in
  (* Stage B (parallel): verified replay of the unique new binaries. *)
  let verified =
    parallel_map t
      (fun k ->
         match rep_bin.(k) with
         | Some (bin, _) -> t.verify bin
         | None -> assert false)
      vreps
  in
  t.ctr.c_verifies <- t.ctr.c_verifies + Array.length vreps;
  cumulative.c_verifies <- cumulative.c_verifies + Array.length vreps;
  Trace.add "evalpool.verifies" (Array.length vreps);
  Array.iteri (fun j k -> rep_core.(k) <- Some verified.(j)) vreps;
  (* Fill same-key siblings and the key memo. *)
  Array.iteri
    (fun k bin ->
       match bin, rep_core.(k) with
       | Some (_, key), None ->
         (match Hashtbl.find_opt key_owner key with
          | Some owner -> rep_core.(k) <- rep_core.(owner)
          | None -> assert false)
       | _, _ -> ())
    rep_bin;
  if t.cache then
    Array.iteri
      (fun k bin ->
         match bin, rep_core.(k) with
         | Some (_, key), Some core -> memo_add t t.key_cache key core
         | _, _ -> ())
      rep_bin;
  (* Publish representative results into an in-batch table first (and the
     genome memo when caching): duplicates later in the batch must resolve
     even if the memo evicts a representative before they are filled. *)
  let batch_results = Hashtbl.create 16 in
  Array.iteri
    (fun k i ->
       let core =
         match rep_core.(k) with Some c -> c | None -> assert false
       in
       cores.(i) <- Some core;
       Hashtbl.replace batch_results canons.(i) core;
       if t.cache then memo_add t t.genome_cache canons.(i) core)
    reps;
  Array.mapi
    (fun i (ev_index, _) ->
       let core =
         match cores.(i) with
         | Some c -> c
         | None ->
           (* duplicate of an earlier representative in this batch *)
           Hashtbl.find batch_results canons.(i)
       in
       t.finish ~ev_index core)
    tasks

let print_stats ?(label = "evalpool") s =
  Printf.printf
    "%s: %d evaluations in %d batches | genome cache %d hits / %d misses | \
     binary-key reuse %d | %d compiles, %d verified replays | %d memo \
     evictions\n"
    label s.tasks s.batches s.genome_hits s.genome_misses s.key_hits
    s.compiles s.verifies s.evictions;
  List.iter
    (fun w ->
       Printf.printf "  worker %d: %d stage tasks, %.3f s busy\n"
         w.w_id w.w_tasks w.w_busy_s)
    s.workers
