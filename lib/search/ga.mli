(** The genetic search over the compiler optimization space (paper §3.6,
    parameters from §4).

    The GA is decoupled from replay: callers supply an evaluator mapping a
    genome to measured replay times (or a failure outcome).  Fitness is the
    mean replay time after MAD outlier removal; when two genomes are not
    significantly different under a two-sided t-test, the smaller binary
    wins.  Evaluation history is recorded for the Figure 9 evolution
    plots. *)

type outcome =
  | Measured of { times : float array; size : int; key : string }
  (** replay times in ms; [key] identifies the produced binary so the
      identical-binaries halting rule can fire *)
  | Compile_failed of string    (** the compiler rejected the sequence *)
  | Runtime_crashed of string   (** the verified replay crashed *)
  | Runtime_hung                (** the verified replay exceeded its fuel *)
  | Wrong_output                (** the verification map rejected the binary *)
  | Quarantined of string
  (** the binary persistently failed verification under fault injection
      (failed once and again on the retry): a deterministic miscompile,
      discarded with worst fitness like every other failure — the paper's
      §3.4 "discard miscompiled binaries" mechanism made observable.
      Produced only while [Repro_util.Faults] is armed. *)

type config = {
  population : int;          (** 50 *)
  generations : int;         (** 11: 1 random + 10 evolved *)
  seed_retries : int;        (** up to 3 redraws of unprofitable seeds *)
  genome_mutation_prob : float;   (** 0.05 *)
  gene_mutation_prob : float;     (** 0.05 *)
  tournament_size : int;     (** 7 *)
  tournament_p : float;      (** 0.9 *)
  max_identical : int;       (** halt after 100 identical binaries *)
  no_improve_generations : int;   (** halt when stuck *)
  elites : int;
  size_tiebreak_alpha : float;    (** t-test level for "sufficiently close" *)
}

val default_config : config
(** The paper's §4 search parameters. *)

val quick_config : config
(** Reduced search (fewer genomes/generations) for fast harness runs. *)

(** One line of the evaluation history (the Figure 9 evolution data). *)
type eval_record = {
  ev_index : int;              (** dense, increasing evaluation id *)
  ev_generation : int;         (** generation the genome belonged to *)
  ev_genome : Genome.t;
  ev_outcome : outcome;
  ev_fitness : float option;   (** mean filtered replay ms, when measured *)
}

type result = {
  best : (Genome.t * float) option;    (** best genome and its fitness *)
  history : eval_record list;          (** in evaluation order *)
  evaluations : int;                   (** total evaluations performed *)
  halted_early : string option;        (** halting rule that fired, if any *)
}

val run :
  ?seed_genomes:Genome.t list ->
  Repro_util.Rng.t -> config ->
  evaluate_batch:((int * Genome.t) array -> outcome array) ->
  ?baseline_ms:float ->
  ?o3_ms:float ->
  unit -> result
(** Generation-batched search.  [evaluate_batch] receives one whole
    generation (or seeding round) as [(ev_index, genome)] pairs and must
    return an index-aligned outcome array; {!Evalpool.evaluate_batch} is
    the intended implementation.  Evaluation indices are dense and
    increasing, genomes for a batch are drawn from [rng] before any of
    them are evaluated, and the outcomes are folded back in index order,
    so history, fitness, and the identical-binaries halting rule are
    independent of how the batch is scheduled.

    [seed_genomes] warm-starts the search: the first
    [min (length seed_genomes) population] slots of the first seeding
    round evaluate the given genomes instead of random draws (the fleet
    coordinator feeds genome-bank winners through this).  Seeded slots
    are subject to the same profitability redraws as random seeds, and
    they consume no RNG draws, so results stay a pure function of
    [(rng, cfg, seed_genomes)].

    [baseline_ms]/[o3_ms] enable the first-generation seeding rule: seeds
    slower than both baselines are redrawn (as whole-population rounds) up
    to [seed_retries] times. *)

val search :
  ?seed_genomes:Genome.t list ->
  Repro_util.Rng.t -> config ->
  evaluate:(Genome.t -> outcome) ->
  ?baseline_ms:float ->
  ?o3_ms:float ->
  unit -> result
(** {!run} with a sequential one-genome evaluator. *)

val hill_climb_batch :
  ?ev_base:int ->
  Repro_util.Rng.t ->
  evaluate_batch:((int * Genome.t) array -> outcome array) ->
  Genome.t * float -> rounds:int -> Genome.t * float
(** Final local search: single-gene deletions and parameter tweaks,
    accepting improvements.  Each round's neighbourhood is evaluated as
    one batch; evaluation indices start above [ev_base] (pass the GA's
    [evaluations] count so noise streams stay distinct). *)

val hill_climb :
  Repro_util.Rng.t -> evaluate:(Genome.t -> outcome) ->
  Genome.t * float -> rounds:int -> Genome.t * float
(** {!hill_climb_batch} with a sequential one-genome evaluator. *)

val render_record : eval_record -> string
(** Canonical one-line rendering of a history record: floats as exact bit
    patterns, so equal strings mean byte-identical evaluations. *)

val history_digest : result -> string
(** Hex digest of the canonically rendered history.  Two searches with
    equal digests performed byte-identical evaluation sequences — the
    contract checked across worker counts, cache settings, fleet
    scheduling orders and (via checkpoints) process restarts. *)

(** {2 Cooperative stepping}

    A suspended search: either finished with a result, or waiting on one
    evaluation batch.  Resuming a [Step_eval] consumes its one-shot
    continuation — apply it at most once. *)
type 'r step =
  | Step_done of 'r
  | Step_eval of (int * Genome.t) array * (outcome array -> 'r step)

val coop :
  (evaluate_batch:((int * Genome.t) array -> outcome array) -> 'r) ->
  'r step
(** [coop body] runs [body] (typically {!run} followed by
    {!hill_climb_batch}) under an effect handler in which
    [evaluate_batch] suspends the search instead of evaluating.  The
    search logic is unchanged — same draws, same indices, same halting
    rules — but the caller now controls how each batch is satisfied:
    evaluate it live, serve it from a checkpoint journal, or interleave
    it with other searches (the serve scheduler's round-robin).  The body
    runs on the calling domain; steps must be resumed from the same
    domain. *)
