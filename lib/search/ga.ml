module Rng = Repro_util.Rng
module Stats = Repro_util.Stats
module Trace = Repro_util.Trace

type outcome =
  | Measured of { times : float array; size : int; key : string }
  | Compile_failed of string
  | Runtime_crashed of string
  | Runtime_hung
  | Wrong_output
  | Quarantined of string

type config = {
  population : int;
  generations : int;
  seed_retries : int;
  genome_mutation_prob : float;
  gene_mutation_prob : float;
  tournament_size : int;
  tournament_p : float;
  max_identical : int;
  no_improve_generations : int;
  elites : int;
  size_tiebreak_alpha : float;
}

let default_config = {
  population = 50;
  generations = 11;
  seed_retries = 3;
  genome_mutation_prob = 0.05;
  gene_mutation_prob = 0.05;
  tournament_size = 7;
  tournament_p = 0.9;
  max_identical = 100;
  no_improve_generations = 5;
  elites = 2;
  size_tiebreak_alpha = 0.05;
}

let quick_config = {
  default_config with
  population = 14;
  generations = 6;
  max_identical = 40;
  no_improve_generations = 4;
}

type eval_record = {
  ev_index : int;
  ev_generation : int;
  ev_genome : Genome.t;
  ev_outcome : outcome;
  ev_fitness : float option;
}

type result = {
  best : (Genome.t * float) option;
  history : eval_record list;
  evaluations : int;
  halted_early : string option;
}

(* Fitness from measured times: MAD outlier removal then mean (§4). *)
let fitness_of_times times = Stats.mean (Stats.remove_outliers_mad times)

(* Canonical history rendering: every float as its exact bit pattern, so
   equal digests mean byte-identical searches.  This is the digest the
   fleet coordinator, the checkpoint/resume property tests and the serve
   scheduler all compare. *)
let render_outcome = function
  | Measured m ->
    Printf.sprintf "M size=%d key=%s times=%s" m.size m.key
      (String.concat ","
         (List.map
            (fun t -> Printf.sprintf "%Lx" (Int64.bits_of_float t))
            (Array.to_list m.times)))
  | Compile_failed msg -> "CF " ^ msg
  | Runtime_crashed msg -> "RC " ^ msg
  | Runtime_hung -> "RH"
  | Wrong_output -> "WO"
  | Quarantined msg -> "Q " ^ msg

let render_record r =
  Printf.sprintf "%d|%d|%s|%s" r.ev_index r.ev_generation
    (Genome.to_string r.ev_genome)
    (render_outcome r.ev_outcome)

let history_digest result =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" (List.map render_record result.history)))

type individual = {
  genome : Genome.t;
  outcome : outcome;
  fitness : float option;      (* lower is better; None = discarded *)
}

(* Ranking: measured individuals first by (fitness, size under t-test
   tiebreak), failures last. *)
let better cfg a b =
  match a.outcome, b.outcome with
  | Measured ma, Measured mb ->
    let fa = Option.get a.fitness and fb = Option.get b.fitness in
    let ta = Stats.remove_outliers_mad ma.times in
    let tb = Stats.remove_outliers_mad mb.times in
    if Stats.significantly_less ~alpha:cfg.size_tiebreak_alpha ta tb then true
    else if Stats.significantly_less ~alpha:cfg.size_tiebreak_alpha tb ta then
      false
    else if ma.size <> mb.size then ma.size < mb.size
    else fa <= fb
  | Measured _,
    (Compile_failed _ | Runtime_crashed _ | Runtime_hung | Wrong_output
    | Quarantined _) ->
    true
  | (Compile_failed _ | Runtime_crashed _ | Runtime_hung | Wrong_output
    | Quarantined _), _ ->
    false

let sort_population cfg pop =
  List.sort (fun a b -> if better cfg a b then -1 else 1) pop

(* Draw [n] values from a side-effecting generator in index order.
   [List.init]'s argument evaluation order is unspecified, so using it
   directly on [rng] draws would tie the genome stream to the stdlib's
   implementation; this helper pins left-to-right order. *)
let init_in_order n f =
  let rec go k acc = if k >= n then List.rev acc else go (k + 1) (f k :: acc) in
  go 0 []

let run ?(seed_genomes = []) rng cfg ~evaluate_batch ?baseline_ms ?o3_ms () =
  let history = ref [] in
  let eval_index = ref 0 in
  let identical = ref 0 in
  let seen_keys = Hashtbl.create 64 in
  let halted = ref None in
  (* Evaluate one generation's genomes as a single batch, then replay the
     outcomes in evaluation order for the history and the
     identical-binaries halting rule, so the observable behaviour matches
     a sequential left-to-right evaluation of the same genomes. *)
  let evaluate generation genomes =
    Trace.span ~cat:"ga"
      ~args:[ ("generation", string_of_int generation);
              ("genomes", string_of_int (List.length genomes)) ]
      "ga:generation"
    @@ fun () ->
    let base = !eval_index in
    let tasks =
      Array.of_list (List.mapi (fun i g -> (base + 1 + i, g)) genomes)
    in
    let n = Array.length tasks in
    Trace.add "ga.evaluations" n;
    eval_index := base + n;
    let outcomes = evaluate_batch tasks in
    if Array.length outcomes <> n then
      invalid_arg "Ga.run: evaluate_batch returned a misaligned array";
    let inds = ref [] in
    for i = 0 to n - 1 do
      let ev_index, genome = tasks.(i) in
      let outcome = outcomes.(i) in
      (match outcome with
       | Measured m ->
         if Hashtbl.mem seen_keys m.key then begin
           incr identical;
           if !identical >= cfg.max_identical && !halted = None then
             halted := Some "identical-binaries limit reached"
         end
         else Hashtbl.replace seen_keys m.key ()
       | Compile_failed _ | Runtime_crashed _ | Runtime_hung | Wrong_output
       | Quarantined _ ->
         ());
      let fitness =
        match outcome with
        | Measured m -> Some (fitness_of_times m.times)
        | Compile_failed _ | Runtime_crashed _ | Runtime_hung | Wrong_output
        | Quarantined _ ->
          None
      in
      history :=
        { ev_index; ev_generation = generation; ev_genome = genome;
          ev_outcome = outcome; ev_fitness = fitness }
        :: !history;
      inds := { genome; outcome; fitness } :: !inds
    done;
    List.rev !inds
  in
  let profitable ind =
    match ind.fitness, baseline_ms, o3_ms with
    | Some f, Some base, Some o3 -> f < base || f < o3
    | Some _, _, _ -> true
    | None, _, _ -> false
  in
  (* First generation: random, biased away from clearly unprofitable seeds
     by redrawing up to [seed_retries] times (§4), with redundant passes
     removed to keep genomes short.  The retries run as whole-population
     rounds: every slot whose latest draw is unprofitable redraws in the
     next round, so each round is one parallel batch. *)
  let seed_population () =
    let n = cfg.population in
    (* Warm-start seeds (e.g. from a fleet genome bank) fill the first
       slots of the very first seeding round; they are still evaluated and
       redrawn randomly if unprofitable, exactly like a random draw would
       be.  Seeded slots consume no RNG draws, so the genome stream stays
       a pure function of (rng, cfg, seed_genomes). *)
    let seeds = Array.of_list seed_genomes in
    let best = Array.make n None in
    let active = ref (List.init n Fun.id) in
    let round = ref 0 in
    while !active <> [] do
      let slots = !active in
      let slot_arr = Array.of_list slots in
      let draws =
        init_in_order (List.length slots) (fun k ->
            let slot = slot_arr.(k) in
            if !round = 0 && slot < Array.length seeds then
              Genome.dedup_adjacent seeds.(slot)
            else Genome.dedup_adjacent (Genome.random rng))
      in
      let inds = evaluate 0 draws in
      let continue_rev = ref [] in
      List.iter2
        (fun slot ind ->
           (match best.(slot) with
            | Some b when not (better cfg ind b) -> ()
            | Some _ | None -> best.(slot) <- Some ind);
           if (not (profitable ind)) && !round < cfg.seed_retries then
             continue_rev := slot :: !continue_rev)
        slots inds;
      active := List.rev !continue_rev;
      incr round
    done;
    Array.to_list (Array.map Option.get best)
  in
  let population = ref (seed_population ()) in
  let best_of pop =
    match sort_population cfg pop with
    | best :: _ when best.fitness <> None -> Some best
    | _ -> None
  in
  let global_best = ref (best_of !population) in
  let stale = ref 0 in
  let generation = ref 1 in
  while
    !generation < cfg.generations
    && !halted = None
    && !stale < cfg.no_improve_generations
  do
    let sorted = sort_population cfg !population in
    let measured = List.filter (fun i -> i.fitness <> None) sorted in
    let pool = if measured = [] then sorted else measured in
    let pool_arr = Array.of_list pool in
    let elites_arr =
      Array.of_list
        (List.filteri (fun i _ -> i < max cfg.elites 1) pool)
    in
    let fittest_arr =
      Array.of_list
        (List.filteri (fun i _ -> i <= List.length pool / 2) pool)
    in
    (* Tournament selection: best of [tournament_size] with prob p, else a
       random other candidate. *)
    let tournament () =
      let contenders =
        init_in_order cfg.tournament_size (fun _ -> Rng.pick rng pool_arr)
      in
      let sorted_c = sort_population cfg contenders in
      match sorted_c with
      | best :: rest ->
        if Rng.chance rng cfg.tournament_p || rest = [] then best
        else Rng.pick_list rng rest
      | [] -> assert false
    in
    (* Three mate-selection pipelines (§3.6). *)
    let pick_mate () =
      match Rng.int rng 3 with
      | 0 -> Rng.pick rng elites_arr
      | 1 -> Rng.pick rng fittest_arr
      | _ -> tournament ()
    in
    let elite_carryover =
      List.filteri (fun i _ -> i < cfg.elites) sorted
    in
    let n_new = cfg.population - List.length elite_carryover in
    (* Draw the whole brood before evaluating: the genome stream depends
       only on the GA RNG, never on evaluation scheduling. *)
    let children =
      init_in_order n_new (fun _ ->
          let a = pick_mate () in
          let b = pick_mate () in
          let child = Genome.crossover rng a.genome b.genome in
          if Rng.chance rng cfg.genome_mutation_prob then
            Genome.mutate rng ~gene_prob:cfg.gene_mutation_prob child
          else child)
    in
    let next = elite_carryover @ evaluate !generation children in
    population := next;
    (match best_of next, !global_best with
     | Some b, Some gb when better cfg b gb ->
       global_best := Some b;
       stale := 0
     | Some b, None ->
       global_best := Some b;
       stale := 0
     | _ -> incr stale);
    incr generation
  done;
  { best =
      Option.map (fun b -> (b.genome, Option.get b.fitness)) !global_best;
    history = List.rev !history;
    evaluations = !eval_index;
    halted_early = !halted }

let sequential_batch evaluate tasks =
  let n = Array.length tasks in
  let out = Array.make n Runtime_hung in
  for i = 0 to n - 1 do
    out.(i) <- evaluate (snd tasks.(i))
  done;
  out

let search ?seed_genomes rng cfg ~evaluate ?baseline_ms ?o3_ms () =
  run ?seed_genomes rng cfg ~evaluate_batch:(sequential_batch evaluate)
    ?baseline_ms ?o3_ms ()

let hill_climb_batch ?(ev_base = 0) rng ~evaluate_batch (genome0, fit0)
    ~rounds =
  let next_index = ref ev_base in
  let best = ref (genome0, fit0) in
  for _ = 1 to rounds do
    let genome, _ = !best in
    let neighbors =
      (* all single-gene deletions *)
      List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) genome) genome
      (* parameter tweaks *)
      @ init_in_order 6 (fun _ -> Genome.mutate rng ~gene_prob:0.15 genome)
    in
    let candidates =
      List.filter (fun c -> List.length c >= Genome.min_length) neighbors
    in
    let base = !next_index in
    let tasks =
      Array.of_list (List.mapi (fun i c -> (base + 1 + i, c)) candidates)
    in
    next_index := base + Array.length tasks;
    let outcomes = evaluate_batch tasks in
    for i = 0 to Array.length tasks - 1 do
      match outcomes.(i) with
      | Measured m ->
        let f = fitness_of_times m.times in
        if f < snd !best then best := (snd tasks.(i), f)
      | Compile_failed _ | Runtime_crashed _ | Runtime_hung | Wrong_output
      | Quarantined _ ->
        ()
    done
  done;
  !best

let hill_climb rng ~evaluate pair ~rounds =
  hill_climb_batch rng ~evaluate_batch:(sequential_batch evaluate) pair
    ~rounds

(* ----------------------- cooperative stepping ----------------------- *)

(* Invert control over a whole search without touching its code: the body
   runs inside an effect handler where [evaluate_batch] performs an
   effect, so the search suspends at exactly the points where it would
   block on evaluation and the caller decides how (and when) each batch
   is satisfied — live on an eval pool, replayed from a checkpoint
   journal, or interleaved with other tenants by the serve scheduler. *)

type 'r step =
  | Step_done of 'r
  | Step_eval of (int * Genome.t) array * (outcome array -> 'r step)

type _ Effect.t +=
  | Eval_batch : (int * Genome.t) array -> outcome array Effect.t

let coop body =
  let open Effect.Deep in
  match_with
    (fun () ->
       Step_done
         (body ~evaluate_batch:(fun tasks ->
              Effect.perform (Eval_batch tasks))))
    ()
    { retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
           match eff with
           | Eval_batch tasks ->
             Some
               (fun (k : (a, _) continuation) ->
                  Step_eval (tasks, fun outcomes -> continue k outcomes))
           | _ -> None) }
