module Rng = Repro_util.Rng
module Passes = Repro_lir.Passes

type gene = { g_pass : string; g_params : int array }

type t = gene list

let min_length = 2
let max_length = 40

let catalog = Array.of_list Passes.catalog

let invalid_param_prob = 0.03

let sample_params rng ?(allow_invalid = false) (pass : Passes.t) =
  Array.of_list
    (List.map
       (fun pr ->
          if allow_invalid && Rng.chance rng invalid_param_prob then
            (* out-of-range flag value, as a random command line would *)
            pr.Passes.pmax + 1 + Rng.int rng 10
          else Rng.int_in rng pr.Passes.pmin pr.Passes.pmax)
       pass.Passes.params)

let random_gene rng =
  let pass = Rng.pick rng catalog in
  { g_pass = pass.Passes.name; g_params = sample_params rng pass }

let random rng =
  let len = Rng.int_in rng 4 24 in
  List.init len (fun _ ->
      let pass = Rng.pick rng catalog in
      { g_pass = pass.Passes.name;
        g_params = sample_params rng ~allow_invalid:true pass })

let to_spec t = List.map (fun g -> (g.g_pass, g.g_params)) t

let tweak_param rng gene =
  match Passes.find gene.g_pass with
  | exception Not_found -> gene
  | pass ->
    if pass.Passes.params = [] then gene
    else begin
      let idx = Rng.int rng (List.length pass.Passes.params) in
      let pr = List.nth pass.Passes.params idx in
      let params = Array.copy gene.g_params in
      if idx < Array.length params then
        params.(idx) <- Rng.int_in rng pr.Passes.pmin pr.Passes.pmax;
      { gene with g_params = params }
    end

let mutate rng ~gene_prob t =
  let mutated =
    List.concat_map
      (fun gene ->
         if not (Rng.chance rng gene_prob) then [ gene ]
         else
           match Rng.int rng 4 with
           | 0 -> []                                     (* disable a pass *)
           | 1 -> [ tweak_param rng gene ]               (* modify a parameter *)
           | 2 -> [ random_gene rng ]                    (* replace *)
           | _ -> [ gene; random_gene rng ])             (* introduce new pass *)
      t
  in
  let rec pad g = if List.length g < min_length then pad (g @ [ random_gene rng ]) else g in
  let truncated =
    if List.length mutated > max_length then List.filteri (fun i _ -> i < max_length) mutated
    else mutated
  in
  pad truncated

let crossover rng a b =
  let ka = Rng.int rng (List.length a + 1) in
  let kb = Rng.int rng (List.length b + 1) in
  let prefix = List.filteri (fun i _ -> i < ka) a in
  let suffix = List.filteri (fun i _ -> i >= kb) b in
  let child = prefix @ suffix in
  let child =
    if List.length child > max_length then
      List.filteri (fun i _ -> i < max_length) child
    else child
  in
  let rec pad g =
    if List.length g < min_length then pad (g @ [ random_gene rng ]) else g
  in
  pad child

let dedup_adjacent t =
  let rec go = function
    | a :: b :: rest when a.g_pass = b.g_pass && a.g_params = b.g_params ->
      go (b :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go t

let canon_gene g = Passes.canon_token g.g_pass g.g_params

let canon t = String.concat " | " (List.map canon_gene t)

(* Machine round-trip format, shared by the genome bank and search
   checkpoints: space-separated [pass:p1,p2] genes.  Pass names come from
   the pass catalog and contain no whitespace, so the rendering is
   unambiguous. *)

let gene_to_text g =
  if Array.length g.g_params = 0 then g.g_pass
  else
    g.g_pass ^ ":"
    ^ String.concat ","
        (List.map string_of_int (Array.to_list g.g_params))

let gene_of_text s =
  match String.index_opt s ':' with
  | None -> { g_pass = s; g_params = [||] }
  | Some i ->
    let pass = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let params =
      if rest = "" then [||]
      else
        Array.of_list
          (List.map int_of_string (String.split_on_char ',' rest))
    in
    { g_pass = pass; g_params = params }

let to_text t = String.concat " " (List.map gene_to_text t)

let of_text s =
  List.filter_map
    (fun tok -> if tok = "" then None else Some (gene_of_text tok))
    (String.split_on_char ' ' s)

let to_string t =
  String.concat " | "
    (List.map
       (fun g ->
          if Array.length g.g_params = 0 then g.g_pass
          else
            Printf.sprintf "%s(%s)" g.g_pass
              (String.concat ","
                 (Array.to_list (Array.map string_of_int g.g_params))))
       t)
