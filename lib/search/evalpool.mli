(** A parallel, memoizing evaluation engine for GA generations.

    The paper's offline search is embarrassingly parallel: every genome
    evaluation is an isolated compile + verified replay of a snapshot
    (paper §3.6, Figure 6).  [Evalpool] evaluates a whole generation
    concurrently on OCaml 5 domains and memoizes the deterministic part of
    each evaluation so duplicate genomes — and distinct genomes that
    compile to the same binary — are paid for once.

    The engine is built around a three-stage evaluator supplied by the
    caller:

    - [compile]: genome -> binary (or an immediate failure result).
      Expensive, deterministic, thread-safe.
    - [verify]: binary -> core result (verified replay measurement).
      Expensive, deterministic, thread-safe.
    - [finish]: core result + evaluation index -> final outcome.  Cheap;
      runs on the calling domain.  Anything stochastic (the replay noise
      model) belongs here, seeded from the evaluation index so results are
      independent of worker count, scheduling and cache state.

    Determinism contract: for a fixed batch of [(ev_index, genome)] tasks,
    [evaluate_batch] returns the same outcomes for any [jobs] value,
    whether or not the cache is enabled, and for any [memo_budget].  Two
    caches are maintained when enabled: a genome-level memo (canonicalized
    genome -> core result) and a binary-level memo ([key_of] the compiled
    binary -> core result, which also feeds the GA's identical-binaries
    halting rule upstream).  Both are budgeted LRU tables — a long-lived
    serving process evaluates millions of genomes, so unbounded memos
    would be a slow leak; eviction merely forces a deterministic
    recomputation and can never change an outcome. *)

type worker = {
  w_id : int;
  w_tasks : int;          (** stage executions run by this worker *)
  w_busy_s : float;       (** monotonic seconds spent inside stages *)
}

type stats = {
  batches : int;
  tasks : int;            (** evaluations requested *)
  genome_hits : int;      (** served from the genome memo *)
  genome_misses : int;    (** required at least a compile *)
  key_hits : int;         (** verified replay skipped: binary already seen *)
  compiles : int;
  verifies : int;
  evictions : int;        (** memo entries dropped by the LRU budget *)
  workers : worker list;  (** sorted by id; busy time is cumulative *)
}

type ('bin, 'core, 'out) t

val default_memo_budget : int
(** Default per-table entry budget (large enough that a single search
    never evicts). *)

val create :
  ?jobs:int ->
  ?cache:bool ->
  ?memo_budget:int ->
  ?pool:Domainpool.t ->
  canon:(Genome.t -> string) ->
  compile:(Genome.t -> ('bin, 'core) result) ->
  key_of:('bin -> string) ->
  verify:('bin -> 'core) ->
  finish:(ev_index:int -> 'core -> 'out) ->
  unit -> ('bin, 'core, 'out) t
(** [jobs] (default 1) is the number of worker domains; [jobs = 1] runs
    everything on the calling domain.  [cache] (default true) enables the
    genome and binary memos; when disabled every task is evaluated
    honestly, which is what the differential tests rely on.
    [memo_budget] caps each memo table's entry count ({!default_memo_budget}
    by default); the least-recently-used entry is evicted when full.
    [pool], when given, makes parallel stages run on the supplied
    persistent {!Domainpool} instead of spawning fresh domains per batch
    (and overrides [jobs] with the pool's size) — this is how the serve
    scheduler shares one domain pool across concurrent searches. *)

val evaluate_batch : ('bin, 'core, 'out) t -> (int * Genome.t) array -> 'out array
(** Evaluate one generation.  Tasks are [(ev_index, genome)] pairs; the
    result array is index-aligned with the input.  Only the calling domain
    touches the caches; workers run pure [compile]/[verify] stages. *)

val seed_caches :
  ('bin, 'core, 'out) t ->
  genomes:(string * 'core) list ->
  keys:(string * 'core) list ->
  unit
(** Warm-start the memos from previously persisted results: [genomes] maps
    canonical genome strings and [keys] binary keys to core results (both
    as produced by this pool's own [compile]/[verify] stages in an earlier
    process — checkpoint resume feeds its journal through this).  No-op
    when the cache is disabled; entries respect the LRU budget. *)

val jobs : _ t -> int
(** The pool's worker-domain count, as resolved at {!create} time. *)

val stats : _ t -> stats
(** Snapshot of this pool's counters. *)

val cumulative_stats : unit -> stats
(** Process-wide totals across every pool created so far (for end-of-run
    reports in the CLI and benchmark harness). *)

val reset_cumulative : unit -> unit
(** Zero the process-wide totals (between independent runs/tests). *)

val print_stats : ?label:string -> stats -> unit
(** Human-readable cache and per-worker timing report on stdout. *)
