(** Genomes encoding compiler optimization decisions (paper §3.6): a
    variable-length sequence of passes with their parameters and flags. *)

type gene = { g_pass : string; g_params : int array }
(** One optimization decision: a pass-catalog name and its parameters. *)

type t = gene list
(** A genome is the ordered pass sequence handed to the compiler. *)

val min_length : int
(** Shortest genome the genetic operators will produce. *)

val max_length : int
(** Longest genome {!random} will draw. *)

val random : Repro_util.Rng.t -> t
(** Random genome with uniformly drawn length and parameters.  With a small
    probability a parameter lands outside its valid range, mirroring the
    invalid flag combinations a random `opt` command line can contain (the
    compiler rejects them: a compile-error outcome in Figure 1). *)

val random_gene : Repro_util.Rng.t -> gene
(** Always-valid single gene. *)

val to_spec : t -> Repro_lir.Compile.spec
(** The compiler-facing pass sequence (the genome's phenotype input). *)

val mutate : Repro_util.Rng.t -> gene_prob:float -> t -> t
(** Per-gene mutation: tweak a parameter, replace a pass, delete, or insert
    a fresh gene (each gene mutates with probability [gene_prob]).
    Mutated parameters stay in range. *)

val crossover : Repro_util.Rng.t -> t -> t -> t
(** Single-point crossover; the result is padded with fresh random genes if
    it would fall below [min_length]. *)

val dedup_adjacent : t -> t
(** Remove immediately repeated identical genes (the "remove redundant
    passes" step applied to the first generation). *)

val to_string : t -> string
(** Compact human-readable rendering, e.g. for logs and reports. *)

val to_text : t -> string
(** Machine round-trip rendering (space-separated [pass:p1,p2] genes) used
    by the genome bank and the search checkpoints.  [of_text (to_text g)]
    reproduces [g] exactly. *)

val of_text : string -> t
(** Parse the {!to_text} format.  Raises [Failure] on malformed parameter
    lists (callers treat that as a corrupt persisted image). *)

val canon_gene : gene -> string
(** {!Repro_lir.Passes.canon_token} of the gene: its canonical identity. *)

val canon : t -> string
(** Canonical identity of the genome: the string the Evalpool genome memo
    keys on, built from the same per-gene tokens the stage-cache prefix
    fingerprints hash — so the two caches can never disagree on genome
    identity.  Differs from {!to_string} only for genes whose parameter
    count mismatches the catalog: their (unobservable) parameter values
    are folded away. *)
