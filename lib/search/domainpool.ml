(* Persistent worker domains with a broadcast/rendezvous handshake: the
   caller installs a job under the mutex and bumps a sequence number;
   workers wake on the condition variable, run the job once each, and the
   last one out signals completion.  The mutex acquisitions on both sides
   of a job give the happens-before edge that publishes worker writes to
   the caller. *)

type t = {
  lock : Mutex.t;
  cv : Condition.t;
  mutable job : (int -> unit) option;
  mutable seq : int;           (* bumped once per job *)
  mutable remaining : int;     (* pool domains still inside the job *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  total : int;
}

let worker_loop t wid =
  let done_seq = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while (not t.stop) && t.seq = !done_seq do
      Condition.wait t.cv t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      let job = Option.get t.job in
      done_seq := t.seq;
      Mutex.unlock t.lock;
      (* Jobs confine their own exceptions; this is a backstop so a buggy
         job cannot kill a pool domain and deadlock every later run. *)
      (try job wid with _ -> ());
      Mutex.lock t.lock;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.cv;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ~workers =
  if workers < 1 then invalid_arg "Domainpool.create: workers must be >= 1";
  let t =
    { lock = Mutex.create (); cv = Condition.create (); job = None; seq = 0;
      remaining = 0; stop = false; domains = [||]; total = workers }
  in
  t.domains <-
    Array.init (workers - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let size t = t.total

let run t job =
  if Array.length t.domains = 0 then job 0
  else begin
    Mutex.lock t.lock;
    if t.job <> None then begin
      Mutex.unlock t.lock;
      invalid_arg "Domainpool.run: a job is already running"
    end;
    t.job <- Some job;
    t.remaining <- Array.length t.domains;
    t.seq <- t.seq + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.lock;
    let caller_exn = (try job 0; None with e -> Some e) in
    Mutex.lock t.lock;
    while t.remaining > 0 do
      Condition.wait t.cv t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    Option.iter raise caller_exn
  end

let shutdown t =
  if Array.length t.domains > 0 then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
