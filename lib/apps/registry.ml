module Image = Repro_vm.Image
module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem
module Rng = Repro_util.Rng

type app_class = Scimark_suite | Art_suite | Interactive_suite

type t = {
  name : string;
  cls : app_class;
  descr : string;
  source : string;
  image : Image.config;
  expect_hot : (string * string) list;
}

let class_name = function
  | Scimark_suite -> "Scimark"
  | Art_suite -> "Art"
  | Interactive_suite -> "Interactive"

(* Memory footprints: the boot-common runtime image is the same for every
   process (12.6 MB, Figure 11); apps differ in mapped libraries (maps
   entries, Figure 10's preparation cost) and in how much heap their hot
   region touches (their own code determines that). *)
let image ?(extra_maps = 80) ?(warm = 64) ?(heap_pages = 16384) () =
  { Image.default_config with extra_maps; heap_pages; warm_heap_pages = warm }

let bench ?extra_maps ?warm name descr source expect_hot cls =
  { name; cls; descr; source; image = image ?extra_maps ?warm (); expect_hot }

let all = [
  bench "FFT" ~warm:90 "Fast Fourier Transform" Scimark.fft
    [ ("FFT", "run") ] Scimark_suite ~extra_maps:60;
  bench "SOR" ~warm:110 "Jacobi successive over-relaxation" Scimark.sor
    [ ("SOR", "execute") ] Scimark_suite ~extra_maps:54;
  bench "MonteCarlo" ~warm:60 "Estimates pi value" Scimark.montecarlo
    [ ("MonteCarlo", "integrate") ] Scimark_suite ~extra_maps:58;
  bench "Sparse matmult" ~warm:130 "Indirection and addressing" Scimark.sparse_matmult
    [ ("Sparse", "matmult") ] Scimark_suite ~extra_maps:66;
  bench "LU" ~warm:100 "Linear algebra kernels" Scimark.lu
    [ ("LU", "factor") ] Scimark_suite ~extra_maps:62;
  bench "Sieve" ~warm:50 "Lists prime numbers" Art.sieve
    [ ("Sieve", "primes") ] Art_suite ~extra_maps:50;
  bench "BubbleSort" ~warm:60 "Simple sorting algorithm" Art.bubblesort
    [ ("BubbleSort", "sort") ] Art_suite ~extra_maps:48;
  bench "SelectionSort" ~warm:55 "Simple sorting algorithm" Art.selectionsort
    [ ("SelectionSort", "sort") ] Art_suite ~extra_maps:48;
  bench "Linpack" ~warm:120 "Numerical linear algebra" Art.linpack
    [ ("Linpack", "gefa") ] Art_suite ~extra_maps:70;
  bench "Fibonacci.iter" ~warm:40 "Fibonacci sequence iterative" Art.fibonacci_iter
    [ ("Fib", "run"); ("Fib", "iter") ] Art_suite ~extra_maps:44;
  bench "Fibonacci.recv" ~warm:40 "Fibonacci sequence recursive" Art.fibonacci_recv
    [ ("Fib", "run"); ("Fib", "rec") ] Art_suite ~extra_maps:44;
  bench "Dhrystone" ~warm:80 "Representative general CPU performance" Art.dhrystone
    [ ("Dhry", "run") ] Art_suite ~extra_maps:52;
  bench "MaterialLife" ~warm:600 "Game of life" Interactive.materiallife
    [ ("Life", "generation"); ("Life", "step") ] Interactive_suite
    ~extra_maps:170;
  bench "4inaRow" ~warm:700 "Puzzle game" Interactive.fourinarow
    [ ("Ai", "best") ] Interactive_suite ~extra_maps:210;
  bench "DroidFish" ~warm:1400 "Chess game" Interactive.droidfish
    [ ("Search", "think"); ("Search", "quiesce") ] Interactive_suite
    ~extra_maps:240;
  bench "ColorOverflow" ~warm:500 "Strategic game" Interactive.coloroverflow
    [ ("Game", "overflow") ] Interactive_suite ~extra_maps:160;
  bench "Brainstonz" ~warm:420 "Board game" Interactive.brainstonz
    [ ("Ai", "pick"); ("Ai", "search") ] Interactive_suite ~extra_maps:150;
  bench "Blokish" ~warm:800 "Board game" Interactive.blokish
    [ ("Blok", "bestPlacement") ] Interactive_suite ~extra_maps:190;
  bench "Svarka Calculator" ~warm:380 "Generates odds for a card game" Interactive.svarka
    [ ("Svarka", "odds") ] Interactive_suite ~extra_maps:140;
  bench "Reversi Android" ~warm:640 "Board game" Interactive.reversi
    [ ("Reversi", "bestMove"); ("Reversi", "flipsFor") ] Interactive_suite ~extra_maps:180;
  bench "Poker Odds (Vitosha)" ~warm:300 "Statistical analysis for poker cards"
    Interactive.pokerodds
    [ ("Poker", "simulate") ] Interactive_suite ~extra_maps:130;
]

let names = List.map (fun a -> a.name) all
let find name = List.find_opt (fun a -> a.name = name) all

let cache : (string, Repro_dex.Bytecode.dexfile) Hashtbl.t = Hashtbl.create 32

let dexfile app =
  match Hashtbl.find_opt cache app.name with
  | Some dx -> dx
  | None ->
    let dx = Repro_dex.Lower.compile app.source in
    Hashtbl.add cache app.name dx;
    dx

(* ------------------------------ inputs ------------------------------ *)

(* One online input: raw words poked over named static fields after the
   image is built, before the run starts.  The default input pokes nothing,
   so [build_ctx] without an input is exactly the historical behaviour. *)
type input = {
  in_label : string;
  in_statics : (string * int64) list;
}

let default_input = { in_label = "default"; in_statics = [] }

let static_slot dx name =
  match List.assoc_opt name dx.B.dx_static_names with
  | Some slot -> slot
  | None -> invalid_arg (Printf.sprintf "Registry: unknown static %S" name)

let poke_statics dx ctx statics =
  List.iter
    (fun (name, word) ->
       let addr = Image.statics_base + (8 * static_slot dx name) in
       Mem.write_word ctx.Repro_vm.Exec_ctx.mem addr word)
    statics

let build_ctx ?(seed = 42) ?fuel ?(input = default_input) app =
  let dx = dexfile app in
  let ctx = Image.build ~config:app.image ?fuel ~seed dx in
  poke_statics dx ctx input.in_statics;
  ctx

let int_static name v = (name, Int64.of_int v)
let float_static name v = (name, Int64.bits_of_float v)

(* Curated adversarial edges per app, in corpus order: shapes that make
   the reference itself trap (non-power-of-two FFT sizes, out-of-range
   sparse columns, short LU arrays, over-wide SOR strides — the inputs
   that expose guard-stripping), zero-length arrays, boundary sizes, and
   NaN/denormal floats for the fast-math corner, and negative dividends
   for power-of-two divisions (shift lowering rounds the wrong way).  The
   adversarial edges sit at staggered positions so growing the corpus
   keeps retiring new unsafe binaries (the survival curve in
   Experiments.survival). *)
let edge_inputs app =
  match app.name with
  | "FFT" ->
    [ { in_label = "size=6 non-pow2 (kernel traps)";
        in_statics = [ int_static "Main.size" 6 ] };
      { in_label = "nan bias";
        in_statics = [ float_static "Main.bias" Float.nan ] };
      { in_label = "size=0 empty signal";
        in_statics = [ int_static "Main.size" 0 ] };
      { in_label = "denormal bias";
        in_statics = [ ("Main.bias", 1L) ] } ]
  | "SOR" ->
    [ { in_label = "dim=2 vacuous interior";
        in_statics = [ int_static "Main.dim" 2 ] };
      { in_label = "stride=1 over-wide rows (kernel traps)";
        in_statics = [ int_static "Main.stride" 1 ] };
      { in_label = "dim=32";
        in_statics = [ int_static "Main.dim" 32 ] };
      { in_label = "dim=12";
        in_statics = [ int_static "Main.dim" 12 ] };
      { in_label = "skew=-6 negative pow2 dividend";
        in_statics = [ int_static "Main.skew" (-6) ] } ]
  | "MonteCarlo" ->
    [ { in_label = "samples=1";
        in_statics = [ int_static "Main.samples" 1 ] };
      { in_label = "samples=0 empty integral";
        in_statics = [ int_static "Main.samples" 0 ] } ]
  | "Sparse matmult" ->
    [ { in_label = "nz=600 sparse diagonal";
        in_statics = [ int_static "Main.nz" 600 ] };
      { in_label = "n=1 single row";
        in_statics = [ int_static "Main.n" 1; int_static "Main.nz" 5 ] };
      { in_label = "colBump=1 boundary columns (kernel traps)";
        in_statics = [ int_static "Main.colBump" 1 ] };
      { in_label = "nz=1500 denser rows";
        in_statics = [ int_static "Main.nz" 1500 ] };
      { in_label = "n=300 half-size system";
        in_statics = [ int_static "Main.n" 300 ] };
      { in_label = "shift=-6 negative pow2 dividend";
        in_statics = [ int_static "Main.shift" (-6) ] } ]
  | "LU" ->
    [ { in_label = "n=1 trivial system";
        in_statics = [ int_static "Main.n" 1 ] };
      { in_label = "n=8 small system";
        in_statics = [ int_static "Main.n" 8 ] };
      { in_label = "rounds=1";
        in_statics = [ int_static "Main.rounds" 1 ] };
      { in_label = "trim=1 short array (kernel traps)";
        in_statics = [ int_static "Main.trim" 1 ] };
      { in_label = "n=16";
        in_statics = [ int_static "Main.n" 16 ] };
      { in_label = "n=24";
        in_statics = [ int_static "Main.n" 24 ] };
      { in_label = "fuzz=-6 negative pow2 dividend";
        in_statics = [ int_static "Main.fuzz" (-6) ] } ]
  | _ -> []

(* Fallback axis for seeded draws: reseed the app's explicit LCG when it
   has one (all data arrays change), else perturb a documented size-like
   static. Apps with neither only yield the curated edges. *)
let seeded_input dx app ~draw =
  let has name = List.mem_assoc name dx.B.dx_static_names in
  if has "Lcg.seed" then
    Some
      { in_label = Printf.sprintf "lcg-seed=%d" draw;
        in_statics = [ int_static "Lcg.seed" draw ] }
  else if has "Main.size" then begin
    let size = 1024 + (draw mod 8192) in
    Some
      { in_label = Printf.sprintf "size=%d" size;
        in_statics = [ int_static "Main.size" size ] }
  end
  else if has "Main.rounds" then begin
    let rounds = 1 + (draw mod 8) in
    Some
      { in_label = Printf.sprintf "rounds=%d" rounds;
        in_statics = [ int_static "Main.rounds" rounds ] }
  end
  else begin
    ignore app;
    None
  end

let input_variants app ~seed ~k =
  if k < 1 then invalid_arg "Registry.input_variants: k must be >= 1";
  let dx = dexfile app in
  let rng = Rng.of_pair seed (Hashtbl.hash app.name) in
  let rec draws n acc =
    if n = 0 then List.rev acc
    else begin
      let d = 1 + Rng.int rng 0x3FFF_FFFE in
      match seeded_input dx app ~draw:d with
      | Some i -> draws (n - 1) (i :: acc)
      | None -> List.rev acc
    end
  in
  let edges = edge_inputs app in
  let pool = edges @ draws (max 0 (k - 1 - List.length edges)) [] in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  default_input :: take (k - 1) pool
