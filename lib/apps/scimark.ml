(* The Scimark 2.0 kernels (Table 1), ported to MiniDex.  Each program has
   a [Main.main] driving several rounds of its kernel; I/O happens only in
   the driver so the kernel is a replayable hot region.  Randomness comes
   from an explicit linear congruential generator kept in program state,
   as in the original Scimark sources. *)

let lcg = {|
class Lcg {
  static int seed = 123456789;
  static int next() {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) { seed = 0 - seed; }
    return seed;
  }
  static float nextFloat() { return next() % 1000000 / 1000000.0; }
}
|}

let fft = lcg ^ {|
class FFT {
  static void transform(float[] re, float[] im, int dir) {
    int n = re.length;
    int j = 0;
    for (int i = 0; i < n - 1; i = i + 1) {
      if (i < j) {
        float tr = re[i]; re[i] = re[j]; re[j] = tr;
        float ti = im[i]; im[i] = im[j]; im[j] = ti;
      }
      int k = n / 2;
      while (k <= j && k > 0) { j = j - k; k = k / 2; }
      j = j + k;
    }
    int len = 2;
    while (len <= n) {
      float ang = 2.0 * 3.141592653589793 / len;
      if (dir < 0) { ang = 0.0 - ang; }
      float wr = Math.cos(ang);
      float wi = Math.sin(ang);
      int half = len / 2;
      for (int i = 0; i < n; i = i + len) {
        float cwr = 1.0;
        float cwi = 0.0;
        for (int k = 0; k < half; k = k + 1) {
          int a = i + k;
          int b = i + k + half;
          float xr = re[b] * cwr - im[b] * cwi;
          float xi = re[b] * cwi + im[b] * cwr;
          re[b] = re[a] - xr;
          im[b] = im[a] - xi;
          re[a] = re[a] + xr;
          im[a] = im[a] + xi;
          float nwr = cwr * wr - cwi * wi;
          cwi = cwr * wi + cwi * wr;
          cwr = nwr;
        }
      }
      len = len * 2;
    }
  }
  static float run(float[] re, float[] im) {
    transform(re, im, 1);
    transform(re, im, 0 - 1);
    float n = re.length;
    float s = 0.0;
    for (int i = 0; i < re.length; i = i + 1) {
      re[i] = re[i] / n;
      im[i] = im[i] / n;
      s = s + re[i];
    }
    return s;
  }
}
class Main {
  static int size = 256;
  static int rounds = 5;
  static float bias = 0.0;
  static float[] makeSignal() {
    float[] x = new float[size];
    for (int i = 0; i < size; i = i + 1) { x[i] = Lcg.nextFloat() + bias; }
    return x;
  }
  static int main() {
    float acc = 0.0;
    for (int r = 0; r < rounds; r = r + 1) {
      float[] re = makeSignal();
      float[] im = makeSignal();
      acc = acc + FFT.run(re, im);
      Sys.print((int) (acc * 1000.0));
    }
    return (int) (acc * 1000.0);
  }
}
|}

let sor = lcg ^ {|
class SOR {
  static float execute(float omega, float[] g, int m, int n, int iters) {
    float omf = 1.0 - omega;
    int jmax = n - 1 + Main.skew / 4;
    for (int p = 0; p < iters; p = p + 1) {
      for (int i = 1; i < m - 1; i = i + 1) {
        int row = i * n;
        int rowm = row - n;
        int rowp = row + n;
        for (int j = 1; j < jmax; j = j + 1) {
          g[row + j] = omega * 0.25
              * (g[rowm + j] + g[rowp + j] + g[row + j - 1] + g[row + j + 1])
              + omf * g[row + j];
        }
      }
    }
    float s = 0.0;
    for (int i = 0; i < g.length; i = i + 1) { s = s + g[i]; }
    return s;
  }
}
class Main {
  static int dim = 48;
  static int rounds = 4;
  static int stride = 0;
  static int skew = 0;
  static int main() {
    float acc = 0.0;
    for (int r = 0; r < rounds; r = r + 1) {
      float[] g = new float[dim * dim];
      for (int i = 0; i < g.length; i = i + 1) { g[i] = Lcg.nextFloat(); }
      acc = acc + SOR.execute(1.25, g, dim, dim + stride, 6);
      Sys.print((int) acc);
    }
    return (int) acc;
  }
}
|}

let montecarlo = lcg ^ {|
class MonteCarlo {
  static float integrate(int samples) {
    int hits = 0;
    for (int i = 0; i < samples; i = i + 1) {
      float x = Lcg.nextFloat();
      float y = Lcg.nextFloat();
      if (x * x + y * y <= 1.0) { hits = hits + 1; }
    }
    float h = hits;
    return 4.0 * h / samples;
  }
}
class Main {
  static int samples = 9000;
  static int rounds = 5;
  static int main() {
    float pi = 0.0;
    for (int r = 0; r < rounds; r = r + 1) {
      pi = MonteCarlo.integrate(samples);
      Sys.print((int) (pi * 100000.0));
    }
    return (int) (pi * 100000.0);
  }
}
|}

let sparse_matmult = lcg ^ {|
class Sparse {
  static float matmult(float[] y, float[] val, int[] row, int[] col, float[] x,
                       int iters) {
    int m = row.length - 1 + Main.shift / 4;
    for (int p = 0; p < iters; p = p + 1) {
      for (int r = 0; r < m; r = r + 1) {
        float sum = 0.0;
        int lo = row[r];
        int hi = row[r + 1];
        for (int i = lo; i < hi; i = i + 1) {
          sum = sum + x[col[i]] * val[i];
        }
        y[r] = sum;
      }
    }
    float s = 0.0;
    for (int i = 0; i < y.length; i = i + 1) { s = s + y[i]; }
    return s;
  }
}
class Main {
  static int n = 600;
  static int nz = 3000;
  static int rounds = 4;
  static int colBump = 0;
  static int shift = 0;
  static int main() {
    float[] x = new float[n];
    float[] y = new float[n];
    float[] val = new float[nz];
    int[] col = new int[nz];
    int[] row = new int[n + 1];
    for (int i = 0; i < n; i = i + 1) { x[i] = Lcg.nextFloat(); }
    int perRow = nz / n;
    for (int r = 0; r < n; r = r + 1) {
      row[r] = r * perRow;
      for (int k = 0; k < perRow; k = k + 1) {
        int idx = r * perRow + k;
        val[idx] = Lcg.nextFloat();
        col[idx] = Lcg.next() % n + colBump;
      }
    }
    row[n] = n * perRow;
    float acc = 0.0;
    for (int p = 0; p < rounds; p = p + 1) {
      acc = acc + Sparse.matmult(y, val, row, col, x, 4);
      Sys.print((int) acc);
    }
    return (int) acc;
  }
}
|}

let lu = lcg ^ {|
class LU {
  static float factor(float[] a, int n, int[] pivot) {
    for (int j = 0; j < n; j = j + 1) {
      int jp = j;
      float t = a[j * n + j];
      if (t < 0.0) { t = 0.0 - t; }
      for (int i = j + 1; i < n; i = i + 1) {
        float ab = a[i * n + j];
        if (ab < 0.0) { ab = 0.0 - ab; }
        if (ab > t) { jp = i; t = ab; }
      }
      pivot[j] = jp;
      if (a[jp * n + j] == 0.0) { return 0.0 - 1.0; }
      if (jp != j) {
        for (int k = 0; k < n; k = k + 1) {
          float tmp = a[j * n + k];
          a[j * n + k] = a[jp * n + k];
          a[jp * n + k] = tmp;
        }
      }
      if (j < n - 1) {
        float recp = 1.0 / a[j * n + j];
        for (int k = j + 1; k < n; k = k + 1) {
          a[k * n + j] = a[k * n + j] * recp;
        }
      }
      if (j < n - 1) {
        for (int ii = j + 1; ii < n; ii = ii + 1) {
          float aij = a[ii * n + j];
          for (int jj = j + 1; jj < n; jj = jj + 1) {
            a[ii * n + jj] = a[ii * n + jj] - aij * a[j * n + jj];
          }
        }
      }
    }
    float s = 0.0;
    int lim = n + Main.fuzz / 4;
    for (int i = 0; i < lim; i = i + 1) { s = s + a[i * n + i]; }
    return s;
  }
}
class Main {
  static int n = 40;
  static int rounds = 4;
  static int trim = 0;
  static int fuzz = 0;
  static int main() {
    float acc = 0.0;
    for (int r = 0; r < rounds; r = r + 1) {
      float[] a = new float[n * n - trim];
      int[] pivot = new int[n];
      for (int i = 0; i < a.length; i = i + 1) { a[i] = Lcg.nextFloat() + 0.01; }
      acc = acc + LU.factor(a, n, pivot);
      Sys.print((int) (acc * 100.0));
    }
    return (int) (acc * 100.0);
  }
}
|}
