(** The 21 evaluation applications (paper Table 1): 5 Scimark kernels, 7
    Android-compiler benchmarks, 9 interactive apps. *)

type app_class = Scimark_suite | Art_suite | Interactive_suite

type t = {
  name : string;
  cls : app_class;
  descr : string;
  source : string;                 (** MiniDex source text *)
  image : Repro_vm.Image.config;   (** process memory footprint *)
  expect_hot : (string * string) list;
  (** acceptable hot regions as (class, method); used by tests and docs *)
}

val all : t list
val find : string -> t option
val names : string list

val class_name : app_class -> string

val dexfile : t -> Repro_dex.Bytecode.dexfile
(** Compile (memoized) the app's source. *)

(** One online input: named static fields poked with raw words after the
    image is built (sizes, shapes, adversarial edge values).  The encoding
    matches {!Repro_vm.Image.build}'s static initializers: [Int64.of_int]
    for ints, [Int64.bits_of_float] for floats. *)
type input = {
  in_label : string;                    (** deterministic description *)
  in_statics : (string * int64) list;   (** "Class.field" -> raw word *)
}

val default_input : input
(** Pokes nothing: the app's own static initializers. *)

val input_variants : t -> seed:int -> k:int -> input list
(** [k] distinct deterministic inputs for one app; element 0 is always
    {!default_input}.  The rest lead with curated adversarial edges —
    including shapes on which the app's {e reference} execution traps
    (non-power-of-two FFT sizes, out-of-range sparse columns), the inputs
    that expose guard-stripping miscompiles — followed by seeded draws on
    the app's LCG state or size statics.  Apps with no usable axis yield
    fewer than [k] variants.  Pure in [(app, seed, k)], and a prefix:
    [input_variants ~k] is the first [k] elements of [input_variants ~k:n]
    for any [n >= k]. *)

val build_ctx :
  ?seed:int -> ?fuel:int -> ?input:input -> t -> Repro_vm.Exec_ctx.t
(** Fresh process image for one online run of the app, with [input]'s
    static pokes applied (default: none). *)
