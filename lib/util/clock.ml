(* Monotonic wrapper over the wall clock: a process-wide high-water mark
   (float bits in an atomic, CAS loop so concurrent domains agree) clamps
   every read, so elapsed-time subtraction can never go negative even if
   the underlying clock steps backwards (NTP). *)

let source = ref Unix.gettimeofday

(* neg_infinity floor: the first real read always wins. *)
let floor_bits = Atomic.make (Int64.bits_of_float neg_infinity)
let backwards = Atomic.make 0

let rec clamp t =
  let prev = Atomic.get floor_bits in
  let prev_t = Int64.float_of_bits prev in
  if t >= prev_t then
    if Atomic.compare_and_set floor_bits prev (Int64.bits_of_float t) then t
    else clamp t
  else begin
    Atomic.incr backwards;
    prev_t
  end

let now () = clamp (!source ())
let elapsed t0 = Float.max 0.0 (now () -. t0)
let backward_steps () = Atomic.get backwards

let reset_floor () =
  Atomic.set floor_bits (Int64.bits_of_float neg_infinity);
  Atomic.set backwards 0

let set_source f =
  source := f;
  reset_floor ()

let use_wall_clock () =
  source := Unix.gettimeofday;
  reset_floor ()
