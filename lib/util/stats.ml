let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let sorted xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let median xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let ys = sorted xs in
    if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0
  end

let mad xs =
  let m = median xs in
  median (Array.map (fun x -> abs_float (x -. m)) xs)

let remove_outliers_mad ?(threshold = 3.5) xs =
  let m = median xs in
  let d = mad xs in
  if d = 0.0 || Array.length xs < 3 then xs
  else begin
    let keep x = 0.6745 *. abs_float (x -. m) /. d <= threshold in
    let kept = Array.of_list (List.filter keep (Array.to_list xs)) in
    if Array.length kept = 0 then xs else kept
  end

(* Abramowitz & Stegun 26.2.17 approximation of the standard normal CDF,
   accurate to ~7.5e-8: sufficient to decide significance at alpha = 0.05. *)
let normal_cdf x =
  let b1 = 0.319381530 and b2 = -0.356563782 and b3 = 1.781477937 in
  let b4 = -1.821255978 and b5 = 1.330274429 and p = 0.2316419 in
  let t = 1.0 /. (1.0 +. (p *. abs_float x)) in
  let poly = t *. (b1 +. (t *. (b2 +. (t *. (b3 +. (t *. (b4 +. (t *. b5)))))))) in
  let phi = 1.0 -. (exp (-.(x *. x) /. 2.0) /. sqrt (2.0 *. Float.pi) *. poly) in
  if x >= 0.0 then phi else 1.0 -. phi

let welch_t_test a b =
  let na = float_of_int (Array.length a) and nb = float_of_int (Array.length b) in
  if na < 2.0 || nb < 2.0 then 1.0
  else begin
    let va = variance a /. na and vb = variance b /. nb in
    let denom = sqrt (va +. vb) in
    if denom = 0.0 then if mean a = mean b then 1.0 else 0.0
    else begin
      let t = (mean a -. mean b) /. denom in
      2.0 *. (1.0 -. normal_cdf (abs_float t))
    end
  end

let significantly_less ?(alpha = 0.05) a b =
  mean a < mean b && welch_t_test a b < alpha

type ci = { lo : float; hi : float }

let percentile xs p =
  let ys = sorted xs in
  let n = Array.length ys in
  if n = 0 then nan
  else if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let bootstrap_ci rng ?(rounds = 1000) ~confidence stat xs =
  let n = Array.length xs in
  if n = 0 then { lo = nan; hi = nan }
  else begin
    let draws = Array.init rounds (fun _ ->
        let resample = Array.init n (fun _ -> xs.(Rng.int rng n)) in
        stat resample)
    in
    let tail = (1.0 -. confidence) /. 2.0 *. 100.0 in
    { lo = percentile draws tail; hi = percentile draws (100.0 -. tail) }
  end

(* Fleet-aggregation helpers.  The coordinator pools per-device sample
   batches that are legitimately degenerate — a device that contributed a
   single replay, or a batch whose every point the MAD filter would
   reject — so these helpers must degrade to something sensible instead of
   raising or returning an empty array.  See test_stats.ml for the pinned
   edge cases. *)

let pool_samples batches =
  let total = Array.fold_left (fun n b -> n + Array.length b) 0 batches in
  let out = Array.make (max total 0) 0.0 in
  let k = ref 0 in
  Array.iter
    (fun b ->
       Array.iter
         (fun x ->
            out.(!k) <- x;
            incr k)
         b)
    batches;
  out

let robust_mean xs =
  match Array.length xs with
  | 0 -> nan
  | 1 -> xs.(0)
  | _ -> mean (remove_outliers_mad xs)

let geomean xs =
  let n = Array.length xs in
  if n = 0 then nan
  else exp (Array.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int n)
