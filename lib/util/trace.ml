(* Structured tracing/metrics.  Design: a global enabled flag read with one
   atomic load per probe; per-domain event buffers (domain-local storage,
   single writer each) registered in a mutex-protected list so the main
   domain can merge them after workers are joined; shared counters/gauges
   behind the same mutex. *)

type phase = B | E

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts : float;
  ev_tid : int;
  ev_seq : int;
  ev_args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* The clock is swappable for deterministic golden tests; [t0] is the epoch
   subtracted from every timestamp.  The default routes through the
   monotonic Clock so span durations stay non-negative across NTP steps. *)
let clock = ref Clock.now
let t0 = Atomic.make 0.0

type buffer = {
  b_tid : int;
  mutable b_rev : event list;  (* newest first *)
  mutable b_seq : int;
}

let lock = Mutex.create ()
let registry : buffer list ref = ref []
let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauge_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { b_tid = (Domain.self () :> int); b_rev = []; b_seq = 0 } in
      Mutex.protect lock (fun () -> registry := b :: !registry);
      b)

let now () = !clock () -. Atomic.get t0

let emit b name cat ph args =
  let seq = b.b_seq in
  b.b_seq <- seq + 1;
  b.b_rev <-
    { ev_name = name; ev_cat = cat; ev_ph = ph; ev_ts = now ();
      ev_tid = b.b_tid; ev_seq = seq; ev_args = args }
    :: b.b_rev

let span ?(cat = "repro") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = Domain.DLS.get buffer_key in
    emit b name cat B args;
    match f () with
    | v ->
      emit b name cat E [];
      v
    | exception e ->
      emit b name cat E [];
      raise e
  end

let add name n =
  if Atomic.get enabled_flag then
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt counter_tbl name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add counter_tbl name (ref n))

let incr name = add name 1

let gauge name v =
  if Atomic.get enabled_flag then
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt gauge_tbl name with
        | Some r -> r := v
        | None -> Hashtbl.add gauge_tbl name (ref v))

let counter_value name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counter_tbl name with
      | Some r -> !r
      | None -> 0)

let enable () =
  if Atomic.get t0 = 0.0 then Atomic.set t0 (!clock ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let set_clock f = clock := f

let reset () =
  Mutex.protect lock (fun () ->
      List.iter (fun b -> b.b_rev <- []; b.b_seq <- 0) !registry;
      Hashtbl.reset counter_tbl;
      Hashtbl.reset gauge_tbl);
  Atomic.set t0 (!clock ())

let events () =
  let bufs = Mutex.protect lock (fun () -> !registry) in
  List.concat_map (fun b -> List.rev b.b_rev) bufs
  |> List.sort (fun a b ->
         match Float.compare a.ev_ts b.ev_ts with
         | 0 ->
           (match Int.compare a.ev_tid b.ev_tid with
            | 0 -> Int.compare a.ev_seq b.ev_seq
            | c -> c)
         | c -> c)

let sorted_tbl tbl =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])
  |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)

let counters () = sorted_tbl counter_tbl
let gauges () = sorted_tbl gauge_tbl

(* ------------------------- Chrome exporter -------------------------- *)

let escaped s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_ts ts = Printf.sprintf "%.3f" (ts *. 1e6)  (* seconds -> µs *)

let add_span_event buf ev =
  Buffer.add_string buf "{\"name\":\"";
  Buffer.add_string buf (escaped ev.ev_name);
  Buffer.add_string buf "\",\"cat\":\"";
  Buffer.add_string buf (escaped ev.ev_cat);
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf (match ev.ev_ph with B -> "B" | E -> "E");
  Buffer.add_string buf "\",\"ts\":";
  Buffer.add_string buf (fmt_ts ev.ev_ts);
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int ev.ev_tid);
  (match ev.ev_args with
   | [] -> ()
   | args ->
     Buffer.add_string buf ",\"args\":{";
     List.iteri
       (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escaped k);
          Buffer.add_string buf "\":\"";
          Buffer.add_string buf (escaped v);
          Buffer.add_char buf '"')
       args;
     Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let add_counter_event buf ~ts name value =
  Buffer.add_string buf "{\"name\":\"";
  Buffer.add_string buf (escaped name);
  Buffer.add_string buf "\",\"ph\":\"C\",\"ts\":";
  Buffer.add_string buf (fmt_ts ts);
  Buffer.add_string buf ",\"pid\":1,\"tid\":0,\"args\":{\"value\":";
  Buffer.add_string buf value;
  Buffer.add_string buf "}}"

let to_chrome_json () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n'
  in
  List.iter (fun ev -> sep (); add_span_event buf ev) evs;
  (* counters/gauges are aggregates: one sample each at the trace's end *)
  let end_ts = List.fold_left (fun acc ev -> max acc ev.ev_ts) 0.0 evs in
  List.iter
    (fun (name, v) ->
       sep ();
       add_counter_event buf ~ts:end_ts name (string_of_int v))
    (counters ());
  List.iter
    (fun (name, v) ->
       sep ();
       add_counter_event buf ~ts:end_ts name (Printf.sprintf "%g" v))
    (gauges ());
  Buffer.add_string buf "\n]}";
  Buffer.contents buf

let write_chrome file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       output_string oc (to_chrome_json ());
       output_char oc '\n')

(* --------------------------- text summary --------------------------- *)

(* Pair up each buffer's B/E events with a stack (events within a buffer
   are already in emission order) and aggregate durations by span name. *)
let span_durations () =
  let bufs = Mutex.protect lock (fun () -> !registry) in
  let acc : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun b ->
       let stack = ref [] in
       List.iter
         (fun ev ->
            match ev.ev_ph with
            | B -> stack := ev :: !stack
            | E ->
              (match !stack with
               | b_ev :: rest when b_ev.ev_name = ev.ev_name ->
                 stack := rest;
                 let dur = ev.ev_ts -. b_ev.ev_ts in
                 (match Hashtbl.find_opt acc ev.ev_name with
                  | Some (n, total, mx) ->
                    Stdlib.incr n;
                    total := !total +. dur;
                    mx := Float.max !mx dur
                  | None ->
                    Hashtbl.add acc ev.ev_name (ref 1, ref dur, ref dur))
               | _ -> () (* unmatched end: ignore *)))
         (List.rev b.b_rev))
    bufs;
  Hashtbl.fold
    (fun name (n, total, mx) rows -> (name, !n, !total, !mx) :: rows)
    acc []
  |> List.sort (fun (_, _, ta, _) (_, _, tb, _) -> Float.compare tb ta)

let summary () =
  let sections = ref [] in
  let spans = span_durations () in
  if spans <> [] then
    sections :=
      Table.render
        ~header:[ "span"; "count"; "total ms"; "mean ms"; "max ms" ]
        (List.map
           (fun (name, n, total, mx) ->
              [ name; string_of_int n;
                Table.fmt_f ~decimals:3 (total *. 1e3);
                Table.fmt_f ~decimals:3 (total *. 1e3 /. float_of_int n);
                Table.fmt_f ~decimals:3 (mx *. 1e3) ])
           spans)
      :: !sections;
  let cs = counters () in
  if cs <> [] then
    sections :=
      Table.render ~header:[ "counter"; "value" ]
        (List.map (fun (k, v) -> [ k; string_of_int v ]) cs)
      :: !sections;
  let gs = gauges () in
  if gs <> [] then
    sections :=
      Table.render ~header:[ "gauge"; "value" ]
        (List.map (fun (k, v) -> [ k; Printf.sprintf "%g" v ]) gs)
      :: !sections;
  match List.rev !sections with
  | [] -> "trace: nothing recorded"
  | ss -> String.concat "\n\n" ss

let print_summary () = print_endline (summary ())
