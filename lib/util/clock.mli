(** Monotonic elapsed-time source.

    Long-lived service processes cannot time intervals with the raw wall
    clock: an NTP step between two [Unix.gettimeofday] reads yields a
    negative (or wildly wrong) elapsed time, which would poison checkpoint
    metadata, bench reports and trace durations.  [now] wraps the wall
    clock behind a process-wide high-water mark, so consecutive reads never
    decrease even if the underlying source steps backwards.  All duration
    measurement in the repository routes through this module; the raw wall
    clock is reserved for absolute timestamps that are never subtracted. *)

val now : unit -> float
(** Current time in seconds.  Non-decreasing across the whole process:
    [now () >= t] holds for every value [t] previously returned by [now]
    on any domain, even if the underlying clock steps backwards. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0] clamped to be non-negative — the safe
    way to turn a start stamp from {!now} into a duration. *)

val backward_steps : unit -> int
(** Number of times the underlying source was observed to move backwards
    (and was clamped).  0 in healthy runs; exported so tests and service
    diagnostics can detect a misbehaving wall clock. *)

val set_source : (unit -> float) -> unit
(** Replace the underlying time source (tests only: e.g. a deliberately
    backward-stepping clock).  Resets the high-water mark and the
    backward-step counter so the injected source starts fresh. *)

val use_wall_clock : unit -> unit
(** Restore the default [Unix.gettimeofday] source (and reset the
    high-water mark, as {!set_source} does). *)
