(** Deterministic, seeded fault injection for the robustness net.

    The paper's safety argument (§3.4) is that replay verification maps let
    the device {e discard} miscompiled binaries before users ever run them.
    This registry manufactures the failures that argument must survive:
    semantic miscompilations planted at compile time, replay-loader faults
    (corrupt or truncated snapshots, register-state damage) and executor
    faults (crashes, hangs, wrong return values).  Consumers —
    [Repro_lir.Compile], [Repro_capture.Replay], [Repro_lir.Exec] — query
    {!fire} at their injection points; the verification and quarantine
    machinery downstream must then catch every fault that matters.

    {b Determinism contract.}  Whether a fault fires is a pure function of
    [(seed, point, key)]: the configured seed, the injection point, and a
    caller-supplied integer identifying the site (a method id, a hash of a
    binary's code, a replay attempt number).  No shared mutable stream is
    involved, so fault decisions are independent of worker count,
    scheduling and cache state — a faulty search still returns
    byte-identical results for every [-j N] / [--no-cache] combination.

    {b Cost.}  When disabled — the default — every probe is a single
    [Atomic.get] returning [None]. *)

type point =
  | Miscompile         (** compile-time LIR mutation (semantic miscompilation) *)
  | Replay_collision   (** replay loader: page-restore collision corrupts a page *)
  | Replay_truncate    (** replay loader: snapshot tail page read as zeroes *)
  | Replay_regs        (** replay loader: captured register state corrupted *)
  | Exec_crash         (** executor: segfault on function entry *)
  | Exec_hang          (** executor: spin until the replay fuel runs out *)
  | Exec_wrong_ret     (** executor: perturb the function's return value *)
  | Store_corrupt      (** snapshot store: one byte of a stored page blob
                           read back flipped (caught by its checksum) *)
  | Store_truncate     (** snapshot store: a stored page blob read back
                           short, as after a partial flash write *)

val all_points : point list
(** Every injection point, in declaration order. *)

val point_name : point -> string
(** Stable spec/report name, e.g. ["miscompile"], ["replay-truncate"]. *)

val point_of_name : string -> point option

type config = {
  fseed : int;                (** root of every fault decision *)
  frate : float;              (** firing probability per (point, key) site *)
  fonly : point list option;  (** [Some ps] restricts firing to [ps] *)
}

val parse_spec : string -> (config, string) result
(** Parse a [--faults] specification: [seed=N,rate=FLOAT][,only=p1+p2+...].
    [rate] must lie in [0, 1]; point names are those of {!point_name}.
    Omitted fields default to [seed=0], [rate=0.1], all points. *)

val spec_string : config -> string
(** Canonical round-trippable rendering of a configuration. *)

val enable : config -> unit
(** Arm the registry.  Also resets the injection counts. *)

val disable : unit -> unit
(** Disarm; every subsequent {!fire} is false.  Injection counts remain
    readable until the next {!enable}. *)

val active : unit -> bool
val current : unit -> config option

val configure_from_env : unit -> unit
(** Arm from the [REPRO_FAULTS] environment variable (same syntax as
    {!parse_spec}) if it is set and non-empty; the test-suite knob.
    Malformed specs raise [Invalid_argument] rather than being ignored. *)

val fire : point -> key:int -> bool
(** [fire p ~key] decides — purely from [(seed, p, key)] — whether the
    fault at point [p], site [key], fires under the current configuration.
    Always false when disabled, when [p] is filtered out by [fonly], or
    with probability [1 - frate] otherwise.  Does {e not} count an
    injection: call {!record} once the fault has actually been applied
    (a site with nothing to corrupt applies no fault). *)

val rng : point -> key:int -> Rng.t
(** A private random stream for shaping an injected fault (which branch to
    flip, which constant to corrupt), derived from [(seed, point, key)]
    but independent of the {!fire} decision.  Falls back to a fixed-seed
    stream when disabled (useful for exercising mutators directly). *)

val scoped : key:int -> (unit -> 'a) -> 'a
(** [scoped ~key f] runs [f] with the calling domain's fault scope set to
    [key]; replay-time and executor faults fire only inside such a scope,
    so online runs and reference (interpreted) replays are never damaged.
    The previous scope is restored when [f] returns or raises. *)

val scope_key : unit -> int option
(** The calling domain's current fault scope, if any. *)

val record : point -> unit
(** Count one applied injection: bumps the process-wide totals and the
    [faults.injected] trace counter. *)

val injected : unit -> int
(** Total faults applied since the last {!enable} (process-wide, all
    domains). *)

val injected_by_point : unit -> (point * int) list
(** Per-point totals, in {!all_points} order, zero entries included. *)

val hash_string : string -> int
(** Stable non-negative hash for deriving site keys from strings (binary
    digests, app names). *)

val combine : int -> int -> int
(** Mix two site-key components into one. *)
