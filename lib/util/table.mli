(** Minimal fixed-width text tables for the benchmark harness output. *)

type align = Left | Right

val display_width : string -> int
(** Display columns occupied by a string: ANSI CSI escape sequences count
    zero and every UTF-8 scalar counts one.  This, not the byte length, is
    what [render] pads by. *)

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in aligned columns.  [aligns]
    defaults to left for the first column and right for the rest. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit

val fmt_f : ?decimals:int -> float -> string
(** Fixed-point float formatting, default 2 decimals. *)

val fmt_speedup : float -> string
(** Formats 1.44 as ["1.44x"]. *)

val fmt_pct : float -> string
(** Formats 0.57 as ["57%"]. *)
