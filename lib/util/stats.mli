(** Statistical methodology from the paper's experimental setup (§4).

    During search each transformation is evaluated 10 times through replay;
    outliers are removed with the median absolute deviation; the relative
    merit of two transformation sets is decided with a two-sided t-test; the
    online-vs-offline study (Figure 3) uses bootstrapped confidence
    intervals. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (division by n-1); 0 for fewer than 2 points. *)

val stddev : float array -> float
val median : float array -> float
(** Median of the values; does not modify the input array. *)

val mad : float array -> float
(** Median absolute deviation around the median. *)

val remove_outliers_mad : ?threshold:float -> float array -> float array
(** Keep points whose modified z-score [0.6745 * |x - median| / MAD] is at
    most [threshold] (default 3.5).  If the MAD is zero the input is returned
    unchanged. *)

val welch_t_test : float array -> float array -> float
(** [welch_t_test a b] returns the two-sided p-value for the null hypothesis
    that [a] and [b] have equal means, using Welch's unequal-variance t-test
    with a normal approximation of the t distribution (adequate for the
    sample sizes used here). *)

val significantly_less : ?alpha:float -> float array -> float array -> bool
(** [significantly_less a b] holds when mean [a] < mean [b] and the t-test
    rejects equality at level [alpha] (default 0.05). *)

type ci = { lo : float; hi : float }

val bootstrap_ci : Rng.t -> ?rounds:int -> confidence:float ->
  (float array -> float) -> float array -> ci
(** Percentile bootstrap confidence interval for a statistic. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100]; linear interpolation. *)

(** {2 Population-aggregation helpers}

    Used by the fleet coordinator ([Repro_fleet.Fleet]) to fold
    per-device fitness sample batches into one population-level sample
    set.  Both tolerate the degenerate batches a real fleet produces —
    devices that contributed a single replay, or batches whose every
    point a MAD filter would reject — and never raise. *)

val pool_samples : float array array -> float array
(** Concatenate sample batches {e in the given order} (callers aggregate
    in device-id order so pooling is independent of device scheduling).
    Empty batches contribute nothing; an all-empty input yields [[||]]. *)

val robust_mean : float array -> float
(** MAD-filtered mean ({!remove_outliers_mad} then {!mean}).  A single
    sample is returned as-is (no filtering), and because the MAD filter
    returns its input unchanged when it would reject every point, an
    all-outlier batch still yields a finite mean.  Empty input yields
    [nan] rather than raising. *)

val geomean : float array -> float
