type align = Left | Right

(* Column widths are display columns, not bytes: ANSI CSI sequences (e.g.
   "\027[31m") occupy zero columns and each UTF-8 scalar occupies one (no
   wide/combining-character table — good enough for the harness output). *)
let display_width s =
  let n = String.length s in
  let rec skip_csi i =
    (* past "\027[": parameter/intermediate bytes until a final byte in
       0x40..0x7e (inclusive), which is consumed too *)
    if i >= n then n
    else if Char.code s.[i] >= 0x40 && Char.code s.[i] <= 0x7e then i + 1
    else skip_csi (i + 1)
  in
  let rec go i w =
    if i >= n then w
    else
      let c = Char.code s.[i] in
      if c = 0x1b && i + 1 < n && s.[i + 1] = '[' then go (skip_csi (i + 2)) w
      else if c land 0xc0 = 0x80 then go (i + 1) w (* UTF-8 continuation *)
      else go (i + 1) (w + 1)
  in
  go 0 0

let pad align width s =
  let n = display_width s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.make ncols 0 in
  let note_row r =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (display_width cell)) r
  in
  note_row header;
  List.iter note_row rows;
  let line r =
    String.concat "  "
      (List.mapi (fun i cell ->
           let a = try List.nth aligns i with _ -> Right in
           pad a widths.(i) cell)
         r)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ?aligns ~header rows = print_endline (render ?aligns ~header rows)

let fmt_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_speedup x = Printf.sprintf "%.2fx" x
let fmt_pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
