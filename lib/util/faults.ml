(* Deterministic fault-injection registry.  See the interface for the
   contract; the implementation notes here are about *why* it is safe to
   query from worker domains.

   - The configuration lives in one [Atomic.t]; arming/disarming happens on
     the main domain between runs, workers only read it.
   - Firing decisions derive a private SplitMix64 stream from
     [(seed, point, key)] via [Rng.of_pair]; nothing is shared, so two
     domains probing the same site get the same answer and probes at
     different sites are independent.
   - The scope (replay/executor faults) is domain-local storage: each
     worker's verified replay sets its own scope, and code that never sets
     one (online runs, interpreted reference replays) is never damaged.
   - Injection counts are per-point atomics: totals only, no ordering. *)

type point =
  | Miscompile
  | Replay_collision
  | Replay_truncate
  | Replay_regs
  | Exec_crash
  | Exec_hang
  | Exec_wrong_ret
  | Store_corrupt
  | Store_truncate

let all_points =
  [ Miscompile; Replay_collision; Replay_truncate; Replay_regs; Exec_crash;
    Exec_hang; Exec_wrong_ret; Store_corrupt; Store_truncate ]

let point_name = function
  | Miscompile -> "miscompile"
  | Replay_collision -> "replay-collision"
  | Replay_truncate -> "replay-truncate"
  | Replay_regs -> "replay-regs"
  | Exec_crash -> "exec-crash"
  | Exec_hang -> "exec-hang"
  | Exec_wrong_ret -> "exec-wrong-ret"
  | Store_corrupt -> "store-corrupt"
  | Store_truncate -> "store-truncate"

let point_of_name s = List.find_opt (fun p -> point_name p = s) all_points

let point_index = function
  | Miscompile -> 0
  | Replay_collision -> 1
  | Replay_truncate -> 2
  | Replay_regs -> 3
  | Exec_crash -> 4
  | Exec_hang -> 5
  | Exec_wrong_ret -> 6
  | Store_corrupt -> 7
  | Store_truncate -> 8

let n_points = List.length all_points

type config = {
  fseed : int;
  frate : float;
  fonly : point list option;
}

let spec_string cfg =
  Printf.sprintf "seed=%d,rate=%g%s" cfg.fseed cfg.frate
    (match cfg.fonly with
     | None -> ""
     | Some ps -> ",only=" ^ String.concat "+" (List.map point_name ps))

let parse_spec s =
  let default = { fseed = 0; frate = 0.1; fonly = None } in
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ',' (String.trim s))
  in
  let parse_field cfg field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" field)
    | Some i ->
      let k = String.sub field 0 i in
      let v = String.sub field (i + 1) (String.length field - i - 1) in
      (match k with
       | "seed" ->
         (match int_of_string_opt v with
          | Some n -> Ok { cfg with fseed = n }
          | None -> Error (Printf.sprintf "seed: not an integer: %S" v))
       | "rate" ->
         (match float_of_string_opt v with
          | Some r when r >= 0.0 && r <= 1.0 -> Ok { cfg with frate = r }
          | Some _ -> Error "rate: must be in [0, 1]"
          | None -> Error (Printf.sprintf "rate: not a number: %S" v))
       | "only" ->
         let names = String.split_on_char '+' v in
         let rec resolve acc = function
           | [] -> Ok { cfg with fonly = Some (List.rev acc) }
           | n :: tl ->
             (match point_of_name n with
              | Some p -> resolve (p :: acc) tl
              | None ->
                Error
                  (Printf.sprintf "only: unknown point %S (valid: %s)" n
                     (String.concat ", " (List.map point_name all_points))))
         in
         resolve [] names
       | _ -> Error (Printf.sprintf "unknown field %S" k))
  in
  List.fold_left
    (fun acc field -> Result.bind acc (fun cfg -> parse_field cfg field))
    (Ok default) fields

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let state : config option Atomic.t = Atomic.make None

let counts = Array.init n_points (fun _ -> Atomic.make 0)

let enable cfg =
  Array.iter (fun c -> Atomic.set c 0) counts;
  Atomic.set state (Some cfg)

let disable () = Atomic.set state None

let active () = Atomic.get state <> None

let current () = Atomic.get state

let configure_from_env () =
  match Sys.getenv_opt "REPRO_FAULTS" with
  | None -> ()
  | Some "" -> ()
  | Some s ->
    (match parse_spec s with
     | Ok cfg -> enable cfg
     | Error msg -> invalid_arg ("REPRO_FAULTS: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Deterministic firing                                                *)
(* ------------------------------------------------------------------ *)

let combine a b = (a * 0x01000193) lxor b

let hash_string s = Hashtbl.hash s land max_int

(* One stream per (seed, point, key); the large odd salts decorrelate the
   points and keep the [rng] stream independent of the [fire] draw. *)
let stream ~salt cfg p ~key =
  Rng.of_pair
    (combine cfg.fseed ((point_index p + 1) * salt))
    key

let point_enabled cfg p =
  match cfg.fonly with None -> true | Some ps -> List.mem p ps

let fire p ~key =
  match Atomic.get state with
  | None -> false
  | Some cfg ->
    point_enabled cfg p
    && Rng.chance (stream ~salt:0x9E3779B1 cfg p ~key) cfg.frate

let rng p ~key =
  let cfg =
    match Atomic.get state with
    | Some cfg -> cfg
    | None -> { fseed = 0; frate = 0.0; fonly = None }
  in
  stream ~salt:0x85EBCA77 cfg p ~key

(* ------------------------------------------------------------------ *)
(* Scope                                                               *)
(* ------------------------------------------------------------------ *)

let scope : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let scope_key () =
  if active () then Domain.DLS.get scope else None

let scoped ~key f =
  let saved = Domain.DLS.get scope in
  Domain.DLS.set scope (Some key);
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope saved) f

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let record p =
  ignore (Atomic.fetch_and_add counts.(point_index p) 1);
  Trace.incr "faults.injected";
  Trace.incr ("faults." ^ point_name p)

let injected () =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 counts

let injected_by_point () =
  List.map (fun p -> (p, Atomic.get counts.(point_index p))) all_points
