type t = {
  entry : int;
  succs_of : (int, int list) Hashtbl.t;
  preds_of : (int, int list) Hashtbl.t;
  rpo : int array;                       (* reverse postorder *)
  rpo_idx : (int, int) Hashtbl.t;
  idoms : (int, int) Hashtbl.t;          (* node -> immediate dominator *)
}

let analyze ~entry ~succs =
  let succs_of = Hashtbl.create 64 in
  let preds_of = Hashtbl.create 64 in
  let postorder = ref [] in
  let visited = Hashtbl.create 64 in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      let ss = succs n in
      Hashtbl.replace succs_of n ss;
      List.iter
        (fun s ->
           let ps = Option.value ~default:[] (Hashtbl.find_opt preds_of s) in
           Hashtbl.replace preds_of s (n :: ps);
           dfs s)
        ss;
      postorder := n :: !postorder
    end
  in
  dfs entry;
  let rpo = Array.of_list !postorder in
  let rpo_idx = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace rpo_idx n i) rpo;
  (* Cooper-Harvey-Kennedy iterative dominators. *)
  let idoms = Hashtbl.create 64 in
  Hashtbl.replace idoms entry entry;
  let intersect a b =
    let rec walk a b =
      if a = b then a
      else begin
        let ia = Hashtbl.find rpo_idx a and ib = Hashtbl.find rpo_idx b in
        if ia > ib then walk (Hashtbl.find idoms a) b else walk a (Hashtbl.find idoms b)
      end
    in
    walk a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun n ->
         if n <> entry then begin
           let preds = Option.value ~default:[] (Hashtbl.find_opt preds_of n) in
           let processed = List.filter (fun p -> Hashtbl.mem idoms p) preds in
           match processed with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if Hashtbl.find_opt idoms n <> Some new_idom then begin
               Hashtbl.replace idoms n new_idom;
               changed := true
             end
         end)
      rpo
  done;
  { entry; succs_of; preds_of; rpo; rpo_idx; idoms }

let nodes t = Array.to_list t.rpo
let preds t n = Option.value ~default:[] (Hashtbl.find_opt t.preds_of n)
let succs t n = Option.value ~default:[] (Hashtbl.find_opt t.succs_of n)

let rpo_index t n =
  match Hashtbl.find_opt t.rpo_idx n with
  | Some i -> i
  | None -> invalid_arg "Cfg.rpo_index: unreachable node"

let idom t n =
  if n = t.entry then None
  else Hashtbl.find_opt t.idoms n

let dominates t a b =
  let rec walk b = a = b || (b <> t.entry && walk (Hashtbl.find t.idoms b)) in
  Hashtbl.mem t.rpo_idx b && Hashtbl.mem t.rpo_idx a && walk b

type loop = { header : int; back_edges : int list; body : int list }

let natural_loop t header tails =
  (* Union of nodes that reach a back-edge source without passing header. *)
  let body = Hashtbl.create 16 in
  Hashtbl.replace body header ();
  let rec pull n =
    if not (Hashtbl.mem body n) then begin
      Hashtbl.replace body n ();
      List.iter pull (preds t n)
    end
  in
  List.iter pull tails;
  Hashtbl.fold (fun n () acc -> n :: acc) body [] |> List.sort Int.compare

let loops t =
  let by_header = Hashtbl.create 8 in
  Array.iter
    (fun n ->
       List.iter
         (fun s ->
            if dominates t s n then begin
              let tails = Option.value ~default:[] (Hashtbl.find_opt by_header s) in
              Hashtbl.replace by_header s (n :: tails)
            end)
         (succs t n))
    t.rpo;
  Hashtbl.fold
    (fun header tails acc ->
       { header; back_edges = tails; body = natural_loop t header tails } :: acc)
    by_header []
  |> List.sort (fun a b -> Int.compare (rpo_index t a.header) (rpo_index t b.header))

let loop_depth t n =
  List.length (List.filter (fun l -> List.mem n l.body) (loops t))
