(** Pipeline-wide structured tracing and metrics.

    The paper's argument is quantitative — capture under 15 ms (Figure 10),
    small snapshots (Figure 11), cheap verified replays — so every stage of
    the reproduction can report where its time goes through this module:
    nestable timed {e spans} plus monotonic {e counters} and last-write
    {e gauges}.  Two exporters are provided: Chrome [trace_event] JSON
    (load the file in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}) and a plain-text summary table.

    {b Domain safety.}  Span events are appended to a per-domain buffer
    (domain-local storage, single writer) and merged at export time; the
    exported [tid] is the OCaml domain id, so a parallel [Evalpool] run
    shows its worker domains as separate tracks.  Counters and gauges are
    shared and mutex-protected.  Export/reset are meant to run on the main
    domain while no worker domains are live (the pool joins its workers
    before returning, which also publishes their buffers).

    {b Cost.}  When tracing is disabled — the default — every probe is a
    single [Atomic.get] and nothing is allocated, so instrumented hot paths
    (one span per LIR pass, counters per cache hit) cost ~nothing. *)

type phase = B | E
(** Span begin/end, mirroring the Chrome [ph] field. *)

(** One recorded span edge, in Chrome [trace_event] vocabulary. *)
type event = {
  ev_name : string;                (** span name *)
  ev_cat : string;                 (** category (Chrome [cat] field) *)
  ev_ph : phase;                   (** begin or end *)
  ev_ts : float;                   (** seconds since [enable]/[reset] *)
  ev_tid : int;                    (** OCaml domain id of the emitter *)
  ev_seq : int;                    (** per-domain emission order *)
  ev_args : (string * string) list; (** free-form key/value annotations *)
}

val enabled : unit -> bool
(** Whether probes currently record anything. *)

val enable : unit -> unit
(** Start recording (resets the clock epoch on first use). *)

val disable : unit -> unit
(** Stop recording; already-recorded data stays readable/exportable. *)

val reset : unit -> unit
(** Drop all recorded events, counters and gauges and restart the clock
    epoch.  Call from the main domain with no tracing workers live. *)

val set_clock : (unit -> float) -> unit
(** Replace the time source (default: the monotonic {!Clock.now}, so span
    durations stay non-negative across wall-clock steps); for tests that
    need deterministic timestamps.  Call [reset] afterwards. *)

val span : ?cat:string -> ?args:(string * string) list ->
  string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] as a nested span on the calling domain.
    The end event is emitted even when [f] raises.  [cat] defaults to
    ["repro"]. *)

val add : string -> int -> unit
(** [add counter n] bumps a monotonic counter (no-op when disabled). *)

val incr : string -> unit
(** [incr counter] is [add counter 1]. *)

val gauge : string -> float -> unit
(** Record the latest value of a gauge. *)

val counter_value : string -> int
(** Current value of a counter (0 if never bumped). *)

val events : unit -> event list
(** Merged snapshot of every domain's span events, ordered by
    [(ts, tid, seq)]. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val gauges : unit -> (string * float) list
(** All gauges, sorted by name. *)

val to_chrome_json : unit -> string
(** The whole trace as Chrome [trace_event] JSON: one [B]/[E] pair per
    span, one [C] event per counter/gauge.  Field order and string
    escaping are stable (locked by the golden test). *)

val write_chrome : string -> unit
(** [write_chrome file] writes [to_chrome_json () ^ "\n"] to [file]. *)

val summary : unit -> string
(** Plain-text report: per-span-name count/total/mean/max table plus the
    counter and gauge tables. *)

val print_summary : unit -> unit
