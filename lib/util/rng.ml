type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

(* The full generator state is one int64, so a stream position can be
   captured and restored exactly — checkpoints record [cursor] per batch
   and resume validation compares it against the replayed stream. *)
let cursor t = t.state
let of_cursor state = { state }

(* An independent stream determined by a (seed, index) pair: used to give
   every GA evaluation its own noise stream so measurements do not depend
   on evaluation scheduling (worker count, batching, cache hits). *)
let of_pair seed index =
  { state =
      mix
        (Int64.add
           (mix (Int64.of_int seed))
           (Int64.mul golden_gamma (mix (Int64.of_int index)))) }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let u = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float u /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t 1.0 < p

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
