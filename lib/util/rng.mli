(** Deterministic, splittable pseudo-random number generator.

    All stochastic behaviour in the reproduction (measurement noise, genetic
    operators, workload draws) flows through values of type {!t} so that every
    experiment is reproducible from a single seed.  The generator is a
    SplitMix64: fast, statistically sound for simulation purposes, and
    trivially splittable into independent streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator stream. *)

val split : t -> t
(** [split t] derives an independent stream; [t] itself advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (both copies produce the same
    subsequent values). *)

val cursor : t -> int64
(** [cursor t] captures the exact stream position.  Recorded per batch in
    search checkpoints so a resumed run can prove it is replaying the same
    draw sequence. *)

val of_cursor : int64 -> t
(** [of_cursor c] rebuilds a generator at a previously captured
    {!cursor} position. *)

val of_pair : int -> int -> t
(** [of_pair seed index] derives a stream that depends only on the pair:
    the same [(seed, index)] always yields the same stream, and different
    indices give statistically independent streams.  Used to decouple
    per-evaluation measurement noise from evaluation scheduling. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val bits64 : t -> int64
(** Raw 64 random bits. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal draw. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a normal draw; used for multiplicative timing noise. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
