module B = Repro_dex.Bytecode
module Build = Repro_hgraph.Build

let unreplayable_reason (dx : B.dexfile) mid =
  let m = dx.B.dx_methods.(mid) in
  let reason = ref None in
  let note r = if !reason = None then reason := Some r in
  if m.B.cm_has_try then note "exception handlers access caller stack frames";
  Array.iter
    (fun insn ->
       match insn with
       | B.Throw _ -> note "throws exceptions"
       | B.InvokeNative (_, n, _) ->
         if B.native_is_io n then note ("performs I/O: " ^ B.native_name n)
         else if B.native_is_nondet n then
           note ("non-deterministic: " ^ B.native_name n)
         else if not (B.native_has_intrinsic n) then
           note ("blocklisted JNI: " ^ B.native_name n)
       | B.Const _ | B.Move _ | B.Binop _ | B.Unop _ | B.IntToFloat _
       | B.FloatToInt _ | B.If _ | B.Ifz _ | B.Goto _ | B.NewObj _
       | B.NewArr _ | B.ALoad _ | B.AStore _ | B.ArrLen _ | B.IGet _
       | B.IPut _ | B.SGet _ | B.SPut _ | B.InvokeStatic _
       | B.InvokeVirtual _ | B.Ret _ -> ())
    m.B.cm_code;
  !reason

let replayable dx mid = unreplayable_reason dx mid = None

(* Class-hierarchy over-approximation of virtual targets: every class whose
   vtable has the slot contributes its implementation. *)
let callees (dx : B.dexfile) mid =
  let targets = ref [] in
  let add t = if not (List.mem t !targets) then targets := t :: !targets in
  Array.iter
    (fun insn ->
       match insn with
       | B.InvokeStatic (_, target, _) -> add target
       | B.InvokeVirtual (_, slot, _) ->
         Array.iter
           (fun ci ->
              if slot < Array.length ci.B.ci_vtable then add ci.B.ci_vtable.(slot))
           dx.B.dx_classes
       | B.Const _ | B.Move _ | B.Binop _ | B.Unop _ | B.IntToFloat _
       | B.FloatToInt _ | B.If _ | B.Ifz _ | B.Goto _ | B.NewObj _
       | B.NewArr _ | B.ALoad _ | B.AStore _ | B.ArrLen _ | B.IGet _
       | B.IPut _ | B.SGet _ | B.SPut _ | B.InvokeNative _ | B.Ret _
       | B.Throw _ -> ())
    dx.B.dx_methods.(mid).B.cm_code;
  List.rev !targets

let reachable dx root =
  let seen = Hashtbl.create 16 in
  let rec go mid =
    if not (Hashtbl.mem seen mid) then begin
      Hashtbl.replace seen mid ();
      List.iter go (callees dx mid)
    end
  in
  go root;
  Hashtbl.fold (fun mid () acc -> mid :: acc) seen [] |> List.sort Int.compare

let region_replayable dx root =
  List.for_all (replayable dx) (reachable dx root)

(* Algorithm 1's compilableRegion: explore callees, cut at uncompilable. *)
let compilable_region dx root =
  let seen = Hashtbl.create 16 in
  let rec inner mid =
    if (not (Hashtbl.mem seen mid)) && Build.compilable dx mid then begin
      Hashtbl.replace seen mid ();
      List.iter inner (callees dx mid)
    end
  in
  inner root;
  Hashtbl.fold (fun mid () acc -> mid :: acc) seen [] |> List.sort Int.compare

let estimate dx profile root =
  if not (region_replayable dx root) then None
  else begin
    let region = compilable_region dx root in
    Some (List.fold_left (fun acc mid -> acc + Profile.exclusive profile mid) 0 region)
  end

let hot_region dx profile =
  let candidates = Profile.hottest profile in
  let best = ref None in
  List.iter
    (fun (mid, _) ->
       match estimate dx profile mid with
       | None -> ()
       | Some score ->
         (match !best with
          | Some (_, s) when s >= score -> ()
          | Some _ | None -> best := Some (mid, score)))
    candidates;
  match !best with
  | Some (mid, score) when score > 0 -> Some mid
  | Some _ | None -> None
