(** Sample-based profiles, as produced by Android's sampling profiler with
    a 1 ms period (paper §3.1). *)

type t = {
  samples : (int * bool) list;   (** (method id, in JNI native) per sample *)
  total : int;
}

val of_ctx : Repro_vm.Exec_ctx.t -> t
(** Harvest the samples accumulated in a context. *)

val exclusive : t -> int -> int
(** Non-native samples attributed to a method (its exclusive runtime). *)

val native_samples : t -> int

val hottest : t -> (int * int) list
(** (method id, exclusive samples) sorted by sample count descending, ties
    broken by ascending method id — the order is a deterministic function
    of the profile, so downstream region selection never depends on hash
    iteration order. *)
