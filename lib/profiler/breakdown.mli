(** Runtime code breakdown (paper Figure 8): how the app's online execution
    time divides into code we can optimize and code we cannot. *)

type category =
  | Compiled       (** inside the hot region's compilable set *)
  | Cold           (** compilable/replayable but outside the hot region *)
  | Jni            (** time spent in native code *)
  | Unreplayable   (** methods the capture mechanism refuses *)
  | Uncompilable   (** methods the Android backend cannot process *)

val category_name : category -> string
val all_categories : category list

val classify :
  Repro_dex.Bytecode.dexfile -> region:int list -> int * bool -> category
(** Classify one profiler sample given the hot region's method set. *)

val of_profile :
  Repro_dex.Bytecode.dexfile -> region:int list -> Profile.t ->
  (category * float) list
(** Fraction of samples per category (all five present, possibly 0), or
    the empty list when the profile holds no samples — there is nothing
    to apportion, and no 0/0 division. *)
