module B = Repro_dex.Bytecode
module Build = Repro_hgraph.Build

type category = Compiled | Cold | Jni | Unreplayable | Uncompilable

let category_name = function
  | Compiled -> "Compiled"
  | Cold -> "Cold"
  | Jni -> "JNI"
  | Unreplayable -> "Unreplayable"
  | Uncompilable -> "Uncompilable"

let all_categories = [ Uncompilable; Unreplayable; Jni; Cold; Compiled ]

let classify dx ~region (mid, native) =
  if native then Jni
  else if List.mem mid region then Compiled
  else if not (Build.compilable dx mid) then Uncompilable
  else if not (Regions.replayable dx mid) then Unreplayable
  else Cold

let of_profile dx ~region (profile : Profile.t) =
  (* No samples means there is nothing to apportion: return the empty
     breakdown rather than a table of 0/0 fractions. *)
  if profile.Profile.samples = [] then []
  else begin
    let counts = Hashtbl.create 8 in
    List.iter
      (fun sample ->
         let c = classify dx ~region sample in
         Hashtbl.replace counts c
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
      profile.Profile.samples;
    let total = max profile.Profile.total 1 in
    List.map
      (fun c ->
         (c,
          float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts c))
          /. float_of_int total))
      all_categories
  end
