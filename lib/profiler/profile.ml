module Ctx = Repro_vm.Exec_ctx

type t = {
  samples : (int * bool) list;
  total : int;
}

let of_ctx (ctx : Ctx.t) =
  let samples =
    List.rev_map (fun s -> (s.Ctx.s_method, s.Ctx.s_native)) ctx.Ctx.samples
  in
  { samples; total = List.length samples }

let exclusive t mid =
  List.length (List.filter (fun (m, native) -> m = mid && not native) t.samples)

let native_samples t = List.length (List.filter snd t.samples)

let hottest t =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (m, native) ->
       if not native then
         Hashtbl.replace counts m
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts m)))
    t.samples;
  (* Sort by count descending, then method id ascending: Hashtbl.fold
     enumerates in unspecified order, so without the id tie-break, equal
     counts would reach Regions.hot_region in nondeterministic order and
     its [>=] tie-break would pick whichever came first. *)
  Hashtbl.fold (fun m n acc -> (m, n) :: acc) counts []
  |> List.sort (fun (m1, a) (m2, b) ->
      match Int.compare b a with 0 -> Int.compare m1 m2 | c -> c)
