(** The online capture mechanism (paper §3.2, Figure 4).

    Wrapped around one execution of the hot region in the live process:

    + fork a child — Copy-on-Write preserves the pristine memory image;
    + walk /proc-style mappings and read-protect the app's data pages;
    + a fault handler records each page the region touches, then restores
      access so execution continues;
    + after the region ends, the child spools the recorded pages' original
      contents (plus the unprotectable stack/GC-auxiliary pages) to storage.

    The measured overhead (fork, preparation, faults + CoW) is charged to
    the online execution context in simulated milliseconds — that is the
    user-visible cost Figure 10 reports. *)

(** Per-capture cost breakdown, in simulated milliseconds — the
    user-visible online overhead reported by Figure 10. *)
type overhead = {
  fork_ms : float;              (** the CoW fork of the live process *)
  preparation_ms : float;       (** maps parsing + page protection *)
  fault_cow_ms : float;         (** in-region page faults and CoW copies *)
  n_faults : int;               (** protection faults taken in the region *)
  n_cow : int;                  (** pages copied by the kernel CoW *)
  n_map_entries : int;          (** address-space mappings walked *)
  n_protected : int;            (** pages read-protected before the region *)
}

val total_ms : overhead -> float
(** Sum of every [_ms] component: the total charge to the online run. *)

(** What one capture produces. *)
type result = {
  snapshot : Snapshot.t;                  (** the replayable snapshot *)
  overhead : overhead;                    (** its online cost *)
  region_ret : Repro_vm.Value.t option;   (** the region's own result *)
  region_exn : exn option;
  (** the exception the region raised, when captured with
      [harvest_on_exn] (otherwise always [None]) *)
}

val capture_region :
  app:string ->
  ?harvest_on_exn:bool ->
  Repro_vm.Exec_ctx.t -> mid:int -> args:Repro_vm.Value.t list ->
  run:(unit -> Repro_vm.Value.t option) ->
  result
(** Capture one execution of region [mid].  [run] performs the actual
    region execution (through whatever dispatcher is installed); the
    capture machinery forks, protects, observes and then harvests the
    snapshot from the child.  Exceptions from [run] propagate after the
    capture state is torn down — unless [harvest_on_exn] (default false)
    is set, in which case the snapshot is still harvested (the forked
    child's pages predate the region, so the trap cannot corrupt them)
    and the exception is returned in [region_exn].  Corpus capture uses
    this for adversarial inputs on which the region itself traps. *)

val eager_mode : bool ref
(** Ablation (CERE-style capture, §6): when set, every recorded page is
    copied at fault time in user space instead of relying on kernel
    Copy-on-Write, inflating the in-region overhead.  Default false. *)
