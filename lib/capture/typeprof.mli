(** Dispatch-type profiles collected during interpreted replays (§3.4):
    for every virtual call site, the histogram of observed receiver
    classes.  Drives speculative devirtualization and branch hints. *)

type t
(** A mutable profile: call-site histograms, filled in by {!record}. *)

type site = int * int
(** (defining method id, bytecode pc) *)

val create : unit -> t
(** A fresh, empty profile. *)

val record : t -> site -> int -> unit
(** Count one dispatch of class id at a site. *)

val lookup : t -> site -> (int * int) list
(** Histogram (class id, count), descending by count; [] if never seen. *)

val install : t -> Repro_vm.Exec_ctx.t -> unit
(** Hook the context so interpreted execution records into this profile. *)

val sites : t -> site list
(** Every site with at least one recorded dispatch (unordered). *)

val total : t -> int
(** Total dispatches recorded across all sites. *)

val digest : t -> string
(** Deterministic content digest of the full histogram (sites sorted), so
    equal-content profiles digest equally whatever the recording order.
    Content-addresses the profile-specialized compiler front-end. *)
