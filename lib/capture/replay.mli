(** Replaying captured executions (paper §3.3, Figure 5).

    The loader rebuilds a partial Android process from the snapshot —
    mappings recreated, captured pages placed at their original addresses
    (collisions with the loader's own range are placed via the break-free
    relocation step), allocator and GC accounting restored — and then jumps
    into the hot region under one of three code versions: the original
    Android-compiled code, the interpreter, or a candidate optimized
    binary. *)

type code_version =
  | Android_code of Repro_lir.Binary.t   (** the device's default code *)
  | Interpreter                          (** reference semantics (§3.4) *)
  | Optimized of Repro_lir.Binary.t      (** a candidate search binary *)

type outcome =
  | Finished of Repro_vm.Value.t option * int   (** result, cycles *)
  | Crashed of string
  | Hung                                        (** exceeded the replay fuel *)

type run = {
  outcome : outcome;
  ctx : Repro_vm.Exec_ctx.t;      (** post-replay state, for verification *)
  loader_collisions : int;        (** captured pages that hit loader pages *)
}

val loader_base : int
(** Byte address of the loader program's own (fixed, low) range. *)

val loader_pages : int
(** Size of the loader's range in pages. *)

val run :
  ?fuel:int -> ?cost:Repro_vm.Cost.model ->
  ?engine:Repro_lir.Blockexec.engine ->
  ?record_vcall:(Typeprof.site -> int -> unit) ->
  ?faults_key:int ->
  Repro_dex.Bytecode.dexfile -> Snapshot.t -> code_version -> run
(** Default fuel: 200M cycles (a replay that runs 100x longer than any
    sensible region is declared hung, like a watchdog would).

    [engine] selects the executor for compiled code versions
    ([Android_code]/[Optimized]): the per-instruction reference engine
    ([Ref], {!Repro_lir.Exec}) or the block-fused engine ([Fused],
    {!Repro_lir.Blockexec}).  Defaults to
    [Repro_lir.Blockexec.default_engine ()].  The two are bit-identical in
    every observable — results, cycles, memory, failure classification —
    so the choice never affects figures, only wall-clock replay time.

    [faults_key] opts this replay into the fault-injection net
    ([Repro_util.Faults]): the replay runs inside a fault scope with that
    site key, arming the loader fault points (page-restore collision,
    truncated snapshot, register-state corruption) and the executor fault
    points (crash, hang-until-fuel, wrong return value).  Without it — the
    default, and always the case for reference interpreted replays and
    online runs — injected faults can never damage the replay.  Whether a
    fault fires is a pure function of the armed fault seed and
    [faults_key], so callers (see [Repro_core.Pipeline.verify_core]) vary
    the key per retry attempt to distinguish transient replay faults from
    deterministic miscompiles. *)

val cycles : run -> int option
(** Cycles if the replay finished. *)
