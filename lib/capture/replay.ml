module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem
module Ctx = Repro_vm.Exec_ctx
module Heap = Repro_vm.Heap
module Interp = Repro_vm.Interp
module Value = Repro_vm.Value
module Exec = Repro_lir.Exec
module Binary = Repro_lir.Binary
module Trace = Repro_util.Trace

type code_version =
  | Android_code of Binary.t
  | Interpreter
  | Optimized of Binary.t

type outcome =
  | Finished of Value.t option * int
  | Crashed of string
  | Hung

type run = {
  outcome : outcome;
  ctx : Ctx.t;
  loader_collisions : int;
}

(* The loader program occupies a fixed low range; captured pages landing
   there must first be parked and moved after break-free (Figure 5).  With
   the Android address-space layout this is rare; we track the count to
   keep the mechanism observable. *)
let loader_base = 0x0050_0000
let loader_pages = 64

let default_fuel = 200_000_000

let run ?(fuel = default_fuel) ?cost ?record_vcall (dx : B.dexfile)
    (snap : Snapshot.t) version =
  Trace.span ~cat:"replay"
    ~args:[ ("app", snap.Snapshot.snap_app) ]
    (match version with
     | Android_code _ -> "replay:android"
     | Interpreter -> "replay:interpreter"
     | Optimized _ -> "replay:optimized")
  @@ fun () ->
  (* 1-3) rebuild the address space: a Copy-on-Write clone of the
     snapshot's template — page installs happen once per (domain,
     snapshot) inside [Snapshot.template]; each replay only duplicates
     the page table and shares every frame until it writes. *)
  let mem = Mem.clone (Snapshot.template snap) in
  (* count captured pages landing in the loader's own range *)
  let loader_lo = loader_base / Mem.page_size in
  let loader_hi = loader_lo + loader_pages in
  let count_collisions acc { Snapshot.pg_index; _ } =
    if pg_index >= loader_lo && pg_index < loader_hi then acc + 1 else acc
  in
  let collisions =
    List.fold_left count_collisions
      (List.fold_left count_collisions 0 snap.Snapshot.snap_common)
      snap.Snapshot.snap_pages
  in
  Mem.reset_stats mem;
  (* restore allocator + GC accounting ("architectural state") *)
  let heap_map =
    List.find (fun m -> m.Mem.map_kind = Mem.Rheap) snap.Snapshot.snap_maps
  in
  let heap =
    Heap.restore mem ~base:heap_map.Mem.map_base ~npages:heap_map.Mem.map_npages
      ~next:snap.Snapshot.snap_heap_next
  in
  let statics_map =
    List.find (fun m -> m.Mem.map_kind = Mem.Rstatics) snap.Snapshot.snap_maps
  in
  let ctx =
    Ctx.create ?cost ~seed:0 ~fuel dx mem heap
      ~statics_base:statics_map.Mem.map_base
  in
  ctx.Ctx.alloc_since_gc <- snap.Snapshot.snap_alloc_since_gc;
  (match record_vcall with
   | Some h -> ctx.Ctx.record_vcall <- Some h
   | None -> ());
  (* 4) choose and execute the code version *)
  (match version with
   | Interpreter -> Interp.install ctx
   | Android_code binary | Optimized binary -> Exec.install ctx binary);
  let outcome =
    match Ctx.invoke ctx snap.Snapshot.snap_mid snap.Snapshot.snap_args with
    | ret -> Finished (ret, ctx.Ctx.cycles)
    | exception Ctx.App_exception code ->
      Crashed (Printf.sprintf "uncaught exception %d" code)
    | exception Exec.Segfault msg -> Crashed ("segfault: " ^ msg)
    | exception Ctx.Timeout -> Hung
  in
  { outcome; ctx; loader_collisions = collisions }

let cycles r =
  match r.outcome with
  | Finished (_, c) -> Some c
  | Crashed _ | Hung -> None
