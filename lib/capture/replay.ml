module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem
module Ctx = Repro_vm.Exec_ctx
module Heap = Repro_vm.Heap
module Interp = Repro_vm.Interp
module Value = Repro_vm.Value
module Exec = Repro_lir.Exec
module Binary = Repro_lir.Binary
module Storage = Repro_os.Storage
module Trace = Repro_util.Trace
module Faults = Repro_util.Faults
module Rng = Repro_util.Rng

type code_version =
  | Android_code of Binary.t
  | Interpreter
  | Optimized of Binary.t

type outcome =
  | Finished of Value.t option * int
  | Crashed of string
  | Hung

type run = {
  outcome : outcome;
  ctx : Ctx.t;
  loader_collisions : int;
}

(* The loader program occupies a fixed low range; captured pages landing
   there must first be parked and moved after break-free (Figure 5).  With
   the Android address-space layout this is rare; we track the count to
   keep the mechanism observable. *)
let loader_base = 0x0050_0000
let loader_pages = 64

let default_fuel = 200_000_000

(* --------------------- injected loader faults ---------------------- *)

let perturb_value = function
  | Value.Vint x -> Value.Vint (x + 1)
  | Value.Vfloat x -> Value.Vfloat (x +. 1.0)
  | Value.Vbool b -> Value.Vbool (not b)
  | Value.Vref a -> Value.Vref (a + 8)

(* Damage the rebuilt address space the way a broken loader would:
   [Replay_truncate] loses the snapshot's highest captured page (reads as
   zeroes, as if the spool file were cut short); [Replay_collision]
   clobbers one word of a captured page (a page-restore collision with the
   loader's own range that break-free relocation failed to fix up).

   Both faults target the region's *observable* state — pages inside the
   heap/statics mappings, the state the verification map covers.  Damage to
   the other captured regions (boot-common runtime pages, stacks) is only
   visible when the replay happens to read it; corrupting observable state
   instead makes the fault either caught or genuinely behaviour-preserving,
   which is the property the robustness net must establish. *)
let inject_loader_faults ~key mem (snap : Snapshot.t) =
  let observable =
    List.filter
      (fun { Snapshot.pg_index; _ } ->
        List.exists
          (fun m ->
            (m.Mem.map_kind = Mem.Rheap || m.Mem.map_kind = Mem.Rstatics)
            && pg_index >= m.Mem.map_base / Mem.page_size
            && pg_index < (m.Mem.map_base / Mem.page_size) + m.Mem.map_npages)
          snap.Snapshot.snap_maps)
      (snap.Snapshot.snap_pages @ snap.Snapshot.snap_common)
  in
  (* a page of zeroes reads back as zeroes: truncation of it is a no-op *)
  let nonzero { Snapshot.pg_data; _ } =
    Array.exists (fun w -> w <> 0L) pg_data
  in
  let targets = List.filter nonzero observable in
  if targets <> [] then begin
    if Faults.fire Faults.Replay_truncate ~key then begin
      let last =
        List.fold_left
          (fun acc { Snapshot.pg_index; _ } -> max acc pg_index)
          (let { Snapshot.pg_index; _ } = List.hd targets in pg_index)
          targets
      in
      let base = last * Mem.page_size in
      for w = 0 to Mem.words_per_page - 1 do
        Mem.write_word mem (base + (w * 8)) 0L
      done;
      Faults.record Faults.Replay_truncate
    end;
    if Faults.fire Faults.Replay_collision ~key then begin
      let rng = Faults.rng Faults.Replay_collision ~key in
      let { Snapshot.pg_index; _ } = Rng.pick rng (Array.of_list targets) in
      let w = Rng.int rng Mem.words_per_page in
      let addr = (pg_index * Mem.page_size) + (w * 8) in
      Mem.write_word mem addr
        (Int64.logxor (Mem.read_word mem addr) 0xDEADBEEFL);
      Faults.record Faults.Replay_collision
    end
  end

(* Storage faults: the loader's read of the snapshot blob from the device
   store comes back damaged — one stored page truncated (partial flash
   write) or with a byte flipped (media corruption).  The damage goes
   through [Storage.read ?damage], i.e. through the very checksum
   machinery that guards real corruption: the injected fault is only
   observed if the store *detects* it, and the resulting error string
   (prefix "storage:") is what the quarantine policy keys on.  Only
   meaningful when a store is attached and holds this snapshot's blob. *)
let inject_store_faults ~key (snap : Snapshot.t) =
  match Snapshot.current_store () with
  | None -> None
  | Some storage ->
    let label = Snapshot.program_label snap in
    if not (Storage.contains storage ~label) then None
    else
      let attempt point damage =
        if not (Faults.fire point ~key) then None
        else
          match Storage.read storage ~label ~damage with
          | Ok _ -> None (* blob empty: nothing to damage *)
          | Error e ->
            Faults.record point;
            Some ("storage: " ^ Storage.describe e)
      in
      let npages = max 1 (List.length snap.Snapshot.snap_pages) in
      let truncate =
        attempt Faults.Store_truncate (fun pos b ->
            let rng = Faults.rng Faults.Store_truncate ~key in
            let victim = Rng.int rng npages in
            if pos = victim then Bytes.sub b 0 (Rng.int rng (Bytes.length b))
            else b)
      in
      match truncate with
      | Some _ as r -> r
      | None ->
        attempt Faults.Store_corrupt (fun pos b ->
            let rng = Faults.rng Faults.Store_corrupt ~key in
            let victim = Rng.int rng npages in
            if pos = victim && Bytes.length b > 0 then begin
              let i = Rng.int rng (Bytes.length b) in
              Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
              b
            end
            else b)

(* [Replay_regs]: corrupt one captured argument — the "architectural
   state" restored by the loader. *)
let perturb_args ~key args =
  if args <> [] && Faults.fire Faults.Replay_regs ~key then begin
    let rng = Faults.rng Faults.Replay_regs ~key in
    let i = Rng.int rng (List.length args) in
    Faults.record Faults.Replay_regs;
    List.mapi (fun j v -> if j = i then perturb_value v else v) args
  end
  else args

let run ?(fuel = default_fuel) ?cost ?engine ?record_vcall ?faults_key
    (dx : B.dexfile) (snap : Snapshot.t) version =
  let engine =
    match engine with
    | Some e -> e
    | None -> Repro_lir.Blockexec.default_engine ()
  in
  Trace.span ~cat:"replay"
    ~args:[ ("app", snap.Snapshot.snap_app) ]
    (match version with
     | Android_code _ -> "replay:android"
     | Interpreter -> "replay:interpreter"
     | Optimized _ -> "replay:optimized")
  @@ fun () ->
  (match faults_key with
   | None -> fun body -> body ()
   | Some key -> fun body -> Faults.scoped ~key body)
  @@ fun () ->
  (* 1-3) rebuild the address space: a Copy-on-Write clone of the
     snapshot's template — page installs happen once per (domain,
     snapshot) inside [Snapshot.template]; each replay only duplicates
     the page table and shares every frame until it writes.  When the
     template materializes from the device store and a stored page fails
     its checksum, the loader cannot rebuild the space: fall back to an
     empty (mappings-only) space and report a crashed replay, which the
     pipeline's quarantine policy turns into a discarded artifact instead
     of an aborted search. *)
  let storage_broken = ref None in
  let mem =
    match Mem.clone (Snapshot.template snap) with
    | mem -> mem
    | exception Storage.Integrity e ->
      storage_broken := Some ("storage: " ^ Storage.describe e);
      Trace.incr "replay.storage_failures";
      let mem = Mem.create () in
      List.iter
        (fun m ->
           Mem.map mem ~base:m.Mem.map_base ~npages:m.Mem.map_npages
             ~kind:m.Mem.map_kind ~name:m.Mem.map_name)
        snap.Snapshot.snap_maps;
      mem
  in
  (match faults_key with
   | Some key when !storage_broken = None ->
     (match inject_store_faults ~key snap with
      | Some _ as broken ->
        Trace.incr "replay.storage_failures";
        storage_broken := broken
      | None -> ())
   | _ -> ());
  (* count captured pages landing in the loader's own range *)
  let loader_lo = loader_base / Mem.page_size in
  let loader_hi = loader_lo + loader_pages in
  let count_collisions acc { Snapshot.pg_index; _ } =
    if pg_index >= loader_lo && pg_index < loader_hi then acc + 1 else acc
  in
  let collisions =
    List.fold_left count_collisions
      (List.fold_left count_collisions 0 snap.Snapshot.snap_common)
      snap.Snapshot.snap_pages
  in
  Mem.reset_stats mem;
  (match faults_key with
   | Some key -> inject_loader_faults ~key mem snap
   | None -> ());
  (* restore allocator + GC accounting ("architectural state") *)
  let heap_map =
    List.find (fun m -> m.Mem.map_kind = Mem.Rheap) snap.Snapshot.snap_maps
  in
  let heap =
    Heap.restore mem ~base:heap_map.Mem.map_base ~npages:heap_map.Mem.map_npages
      ~next:snap.Snapshot.snap_heap_next
  in
  let statics_map =
    List.find (fun m -> m.Mem.map_kind = Mem.Rstatics) snap.Snapshot.snap_maps
  in
  let ctx =
    Ctx.create ?cost ~seed:0 ~fuel dx mem heap
      ~statics_base:statics_map.Mem.map_base
  in
  ctx.Ctx.alloc_since_gc <- snap.Snapshot.snap_alloc_since_gc;
  (match record_vcall with
   | Some h -> ctx.Ctx.record_vcall <- Some h
   | None -> ());
  (* 4) choose and execute the code version *)
  (match version with
   | Interpreter -> Interp.install ctx
   | Android_code binary | Optimized binary ->
     Repro_lir.Blockexec.install_engine engine ctx binary);
  let region_args =
    match faults_key with
    | Some key -> perturb_args ~key snap.Snapshot.snap_args
    | None -> snap.Snapshot.snap_args
  in
  let outcome =
    match !storage_broken with
    | Some msg -> Crashed msg
    | None -> (
        match Ctx.invoke ctx snap.Snapshot.snap_mid region_args with
        | ret -> Finished (ret, ctx.Ctx.cycles)
        | exception Ctx.App_exception code ->
          Crashed (Printf.sprintf "uncaught exception %d" code)
        | exception Exec.Segfault msg -> Crashed ("segfault: " ^ msg)
        | exception Ctx.Timeout -> Hung)
  in
  { outcome; ctx; loader_collisions = collisions }

let cycles r =
  match r.outcome with
  | Finished (_, c) -> Some c
  | Crashed _ | Hung -> None
