module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem
module Ctx = Repro_vm.Exec_ctx
module Value = Repro_vm.Value
module Trace = Repro_util.Trace

type t = {
  writes : (int * int64) list;
  ret : Value.t option;
}

(* address -> captured original page image (program pages shadow common).
   Building the table walks the whole snapshot, so it is cached per domain
   keyed by snapshot identity (snapshots are immutable, and the table only
   holds references to their page images): repeat verifications against the
   same snapshot — the GA loop — pay O(dirty pages), not O(snapshot).
   A small MRU list rather than one entry, for the same reason as
   [Snapshot.template_slot]: corpus verification cycles through K
   snapshots per candidate, and a single slot would rebuild the table K
   times per evaluation. *)
let max_cached_originals = 12

let original_slot : (Snapshot.t * (int, int64 array) Hashtbl.t) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let original_of_snapshot (snap : Snapshot.t) =
  let entries = Domain.DLS.get original_slot in
  match List.find_opt (fun (s, _) -> s == snap) entries with
  | Some (_, original) ->
    (match entries with
     | (s0, _) :: _ when s0 == snap -> ()
     | _ ->
       Domain.DLS.set original_slot
         ((snap, original) :: List.filter (fun (s, _) -> s != snap) entries));
    original
  | None ->
    let original = Hashtbl.create 64 in
    List.iter
      (fun { Snapshot.pg_index; pg_data } ->
         Hashtbl.replace original pg_index pg_data)
      snap.Snapshot.snap_common;
    List.iter
      (fun { Snapshot.pg_index; pg_data } ->
         Hashtbl.replace original pg_index pg_data)
      snap.Snapshot.snap_pages;
    let entries = (snap, original) :: entries in
    let entries = List.filteri (fun i _ -> i < max_cached_originals) entries in
    Domain.DLS.set original_slot entries;
    original

(* Pages a replay could have changed.  When [mem] is a clone of this very
   snapshot's template (the normal replay path), only the pages the clone
   actually privatized can differ — everything still sharing a template
   frame is equal by construction — so the scan is O(dirty pages).  Any
   other provenance falls back to scanning every materialized page. *)
let pages_to_scan mem (snap : Snapshot.t) =
  let fast =
    match Mem.cloned_from mem, Snapshot.cached_template snap with
    | Some src, Some tpl when src == tpl -> true
    | _ -> false
  in
  let pages =
    if fast then
      List.merge Int.compare
        (Mem.dirty_pages mem ~kind:Mem.Rheap)
        (Mem.dirty_pages mem ~kind:Mem.Rstatics)
    else
      List.sort Int.compare
        (Mem.touched_pages mem ~kind:Mem.Rheap
         @ Mem.touched_pages mem ~kind:Mem.Rstatics)
  in
  Trace.add "verify.pages_scanned" (List.length pages);
  if not fast then Trace.incr "verify.full_scans";
  pages

(* Scan [pages] (ascending) against the captured originals; diffs come out
   already sorted by address because pages and in-page words are visited in
   ascending order and addresses are unique. *)
let diff_pages mem original pages =
  let diffs = ref [] in
  List.iter
    (fun page ->
       match Mem.page_words mem ~page with
       | None -> ()
       | Some now ->
         let orig = Hashtbl.find_opt original page in
         let base = page * Mem.page_size in
         for w = 0 to Mem.words_per_page - 1 do
           let v = now.(w) in
           let o = match orig with Some a -> a.(w) | None -> 0L in
           if v <> o then diffs := (base + (w * 8), v) :: !diffs
         done)
    pages;
  List.rev !diffs

let diff_against_snapshot (ctx : Ctx.t) (snap : Snapshot.t) =
  let mem = ctx.Ctx.mem in
  diff_pages mem (original_of_snapshot snap) (pages_to_scan mem snap)

let diff_against_snapshot_full (ctx : Ctx.t) (snap : Snapshot.t) =
  let mem = ctx.Ctx.mem in
  let pages =
    List.sort Int.compare
      (Mem.touched_pages mem ~kind:Mem.Rheap
       @ Mem.touched_pages mem ~kind:Mem.Rstatics)
  in
  diff_pages mem (original_of_snapshot snap) pages

(* Early-exit comparison for the hot path: walk the replay's diffs in
   address order in lockstep with the (sorted) reference write map and bail
   on the first divergence, without materializing the diff list. *)
let diff_matches (ctx : Ctx.t) (snap : Snapshot.t) reference_writes =
  let mem = ctx.Ctx.mem in
  let original = original_of_snapshot snap in
  let pages = pages_to_scan mem snap in
  let exception Mismatch in
  let rest = ref reference_writes in
  try
    List.iter
      (fun page ->
         match Mem.page_words mem ~page with
         | None -> ()
         | Some now ->
           let orig = Hashtbl.find_opt original page in
           let base = page * Mem.page_size in
           for w = 0 to Mem.words_per_page - 1 do
             let v = now.(w) in
             let o = match orig with Some a -> a.(w) | None -> 0L in
             if v <> o then
               match !rest with
               | (addr, rv) :: tl when addr = base + (w * 8) && rv = v ->
                 rest := tl
               | _ -> raise_notrace Mismatch
           done)
      pages;
    !rest = []
  with Mismatch -> false

let collect dx snap =
  let r = Replay.run dx snap Replay.Interpreter in
  match r.Replay.outcome with
  | Replay.Finished (ret, _) ->
    { writes = diff_against_snapshot r.Replay.ctx snap; ret }
  | Replay.Crashed msg ->
    failwith ("Verify.collect: interpreted replay crashed: " ^ msg)
  | Replay.Hung -> failwith "Verify.collect: interpreted replay hung"

type check_result =
  | Passed of int
  | Wrong_output
  | Crashed of string
  | Hung

let ret_equal a b =
  match a, b with
  | None, None -> true
  | Some a, Some b -> Value.equal a b
  | None, Some _ | Some _, None -> false

let count_result result =
  match result with
  | Passed _ -> Trace.incr "verify.passed"
  | Wrong_output | Crashed _ | Hung -> Trace.incr "verify.rejected"

let check ?fuel ?faults_key dx snap reference binary =
  Trace.span ~cat:"verify" "verify" @@ fun () ->
  let r = Replay.run ?fuel ?faults_key dx snap (Replay.Optimized binary) in
  let result =
    match r.Replay.outcome with
    | Replay.Crashed msg -> Crashed msg
    | Replay.Hung -> Hung
    | Replay.Finished (ret, cycles) ->
      if
        ret_equal ret reference.ret
        && diff_matches r.Replay.ctx snap reference.writes
      then Passed cycles
      else Wrong_output
  in
  count_result result;
  result

(* ------------------------ corpus references ------------------------- *)

type reference =
  | Ref_map of t
  | Ref_crash of string

let collect_ref ?record_vcall dx snap =
  let r = Replay.run ?record_vcall dx snap Replay.Interpreter in
  match r.Replay.outcome with
  | Replay.Finished (ret, _) ->
    Ref_map { writes = diff_against_snapshot r.Replay.ctx snap; ret }
  | Replay.Crashed msg -> Ref_crash msg
  | Replay.Hung -> failwith "Verify.collect_ref: interpreted replay hung"

let check_ref ?fuel ?faults_key dx snap reference binary =
  match reference with
  | Ref_map m -> check ?fuel ?faults_key dx snap m binary
  | Ref_crash msg ->
    (* The reference itself traps on this input.  A correct binary must
       reproduce the exact trap; one that silently finishes read or wrote
       past where the reference stopped — the guard-stripping signature —
       and is Wrong_output.  Partial write sets at the trap are *not*
       compared: legal optimizations may reorder stores ahead of the
       faulting access, and killing those would be a false positive. *)
    Trace.span ~cat:"verify" "verify:crash-ref" @@ fun () ->
    let r = Replay.run ?fuel ?faults_key dx snap (Replay.Optimized binary) in
    let result =
      match r.Replay.outcome with
      | Replay.Crashed m when String.equal m msg ->
        Passed r.Replay.ctx.Ctx.cycles
      | Replay.Crashed m -> Crashed m
      | Replay.Finished _ -> Wrong_output
      | Replay.Hung -> Hung
    in
    count_result result;
    result
