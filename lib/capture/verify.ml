module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem
module Ctx = Repro_vm.Exec_ctx
module Value = Repro_vm.Value
module Trace = Repro_util.Trace

type t = {
  writes : (int * int64) list;
  ret : Value.t option;
}

let diff_against_snapshot (ctx : Ctx.t) (snap : Snapshot.t) =
  let mem = ctx.Ctx.mem in
  let original = Hashtbl.create 64 in
  List.iter
    (fun { Snapshot.pg_index; pg_data } ->
       Hashtbl.replace original pg_index pg_data)
    snap.Snapshot.snap_pages;
  List.iter
    (fun { Snapshot.pg_index; pg_data } ->
       Hashtbl.replace original pg_index pg_data)
    snap.Snapshot.snap_common;
  let diffs = ref [] in
  let scan_kind kind =
    List.iter
      (fun page ->
         match Mem.page_data mem ~page with
         | None -> ()
         | Some now ->
           let orig = Hashtbl.find_opt original page in
           Array.iteri
             (fun w v ->
                let o = match orig with Some a -> a.(w) | None -> 0L in
                if v <> o then
                  diffs := ((page * Mem.page_size) + (w * 8), v) :: !diffs)
             now)
      (Mem.touched_pages mem ~kind)
  in
  scan_kind Mem.Rheap;
  scan_kind Mem.Rstatics;
  List.sort compare !diffs

let collect dx snap =
  let r = Replay.run dx snap Replay.Interpreter in
  match r.Replay.outcome with
  | Replay.Finished (ret, _) ->
    { writes = diff_against_snapshot r.Replay.ctx snap; ret }
  | Replay.Crashed msg ->
    failwith ("Verify.collect: interpreted replay crashed: " ^ msg)
  | Replay.Hung -> failwith "Verify.collect: interpreted replay hung"

type check_result =
  | Passed of int
  | Wrong_output
  | Crashed of string
  | Hung

let ret_equal a b =
  match a, b with
  | None, None -> true
  | Some a, Some b -> Value.equal a b
  | None, Some _ | Some _, None -> false

let check ?fuel dx snap reference binary =
  Trace.span ~cat:"verify" "verify" @@ fun () ->
  let r = Replay.run ?fuel dx snap (Replay.Optimized binary) in
  let result =
    match r.Replay.outcome with
    | Replay.Crashed msg -> Crashed msg
    | Replay.Hung -> Hung
    | Replay.Finished (ret, cycles) ->
      if
        ret_equal ret reference.ret
        && diff_against_snapshot r.Replay.ctx snap = reference.writes
      then Passed cycles
      else Wrong_output
  in
  (match result with
   | Passed _ -> Trace.incr "verify.passed"
   | Wrong_output | Crashed _ | Hung -> Trace.incr "verify.rejected");
  result
