module Mem = Repro_os.Mem
module Ctx = Repro_vm.Exec_ctx
module Heap = Repro_vm.Heap
module Cost = Repro_vm.Cost
module Trace = Repro_util.Trace

type overhead = {
  fork_ms : float;
  preparation_ms : float;
  fault_cow_ms : float;
  n_faults : int;
  n_cow : int;
  n_map_entries : int;
  n_protected : int;
}

let total_ms o = o.fork_ms +. o.preparation_ms +. o.fault_cow_ms

type result = {
  snapshot : Snapshot.t;
  overhead : overhead;
  region_ret : Repro_vm.Value.t option;
  region_exn : exn option;
}

let eager_mode = ref false

(* Millisecond cost coefficients for the kernel interactions (loosely
   calibrated to the Pixel 4 numbers in Figure 10). *)
let fork_base_ms = 0.8
let fork_per_page_ms = 0.0012     (* page-table duplication *)
let prep_base_ms = 2.0
let prep_per_map_entry_ms = 0.045  (* /proc/self/maps parsing *)
let prep_per_protect_ms = 0.0012  (* one mprotect-ish call per page run *)
let fault_ms = 0.012              (* user-space SIGSEGV round trip *)
let cow_ms = 0.012                (* kernel page copy on first write *)
let eager_copy_ms = 0.038         (* CERE-style user-space copy at fault *)

let charge_ms (ctx : Ctx.t) ms =
  Ctx.charge ctx (int_of_float (ms *. float_of_int ctx.Ctx.cost.Cost.cycles_per_ms))

let materialized_pages mem = Mem.word_count mem / Mem.words_per_page

let capture_region ~app ?(harvest_on_exn = false) (ctx : Ctx.t) ~mid ~args ~run =
  Trace.span ~cat:"capture" ~args:[ ("app", app) ] "capture" @@ fun () ->
  let mem = ctx.Ctx.mem in
  let st = Mem.stats mem in
  (* 1-2) fork the child: Copy-on-Write keeps the pristine image *)
  let child = Mem.fork mem in
  let fork_ms =
    fork_base_ms +. (fork_per_page_ms *. float_of_int (materialized_pages mem))
  in
  charge_ms ctx fork_ms;
  (* 3) parse mappings, read-protect the app's own data pages *)
  let maps = Mem.mappings mem in
  let n_map_entries = List.length maps in
  let protectable kind = kind = Mem.Rheap || kind = Mem.Rstatics in
  let protected_pages =
    List.concat_map
      (fun kind -> Mem.touched_pages mem ~kind)
      [ Mem.Rheap; Mem.Rstatics ]
  in
  ignore protectable;
  List.iter (fun page -> Mem.protect mem ~page) protected_pages;
  let n_protected = List.length protected_pages in
  let preparation_ms =
    prep_base_ms
    +. (prep_per_map_entry_ms *. float_of_int n_map_entries)
    +. (prep_per_protect_ms *. float_of_int n_protected)
  in
  charge_ms ctx preparation_ms;
  let recorded = ref [] in
  let per_fault_ms = if !eager_mode then fault_ms +. eager_copy_ms else fault_ms in
  Mem.set_fault_handler mem
    (Some
       (fun page ->
          recorded := page :: !recorded;
          charge_ms ctx per_fault_ms));
  let heap_next0 = Heap.next_addr ctx.Ctx.heap in
  let alloc0 = ctx.Ctx.alloc_since_gc in
  let faults0 = st.Mem.n_faults and cow0 = st.Mem.n_cow in
  (* 4) run the hot region as normal *)
  let teardown () =
    Mem.set_fault_handler mem None;
    List.iter (fun page -> Mem.unprotect mem ~page) protected_pages
  in
  (* The forked child holds the pristine pre-region pages, so the snapshot
     is valid even when the region raises: with [harvest_on_exn] the
     exception is recorded and harvesting proceeds — that is how trap-
     inducing corpus inputs are captured.  Otherwise exceptions propagate
     after teardown, as before. *)
  let region_ret, region_exn =
    match run () with
    | v ->
      teardown ();
      (v, None)
    | exception e ->
      teardown ();
      if harvest_on_exn then (None, Some e) else raise e
  in
  (* 5-6) wake the child; spool the original contents of recorded pages *)
  let n_faults = st.Mem.n_faults - faults0 in
  let n_cow = st.Mem.n_cow - cow0 in
  let cow_total_ms = if !eager_mode then 0.0 else cow_ms *. float_of_int n_cow in
  charge_ms ctx cow_total_ms;
  let fault_cow_ms =
    (per_fault_ms *. float_of_int n_faults) +. cow_total_ms
  in
  let image_of page =
    match Mem.page_data child ~page with
    | Some data -> Some { Snapshot.pg_index = page; pg_data = data }
    | None -> None
  in
  let always_stored =
    Mem.touched_pages child ~kind:Mem.Rstack
    @ Mem.touched_pages child ~kind:Mem.Rgc_aux
  in
  let program_pages =
    List.sort_uniq Int.compare (!recorded @ always_stored)
    |> List.filter_map image_of
  in
  let common_pages =
    Mem.touched_pages child ~kind:Mem.Rruntime |> List.filter_map image_of
  in
  let code_files =
    List.filter_map
      (fun m ->
         if m.Mem.map_kind = Mem.Rcode then Some (m.Mem.map_name, m.Mem.map_npages)
         else None)
      maps
  in
  let snapshot = {
    Snapshot.snap_app = app;
    snap_mid = mid;
    snap_args = args;
    snap_maps = maps;
    snap_pages = program_pages;
    snap_common = common_pages;
    snap_code_files = code_files;
    snap_heap_next = heap_next0;
    snap_alloc_since_gc = alloc0;
  } in
  Trace.add "capture.pages_spooled"
    (List.length program_pages + List.length common_pages);
  Trace.add "capture.faults" n_faults;
  Trace.add "capture.cow_copies" n_cow;
  { snapshot;
    overhead =
      { fork_ms; preparation_ms; fault_cow_ms; n_faults; n_cow; n_map_entries;
        n_protected };
    region_ret; region_exn }
