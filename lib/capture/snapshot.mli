(** A captured hot-region execution: everything a replay needs to
    re-execute the region exactly as it ran online (§3.2/§3.3).

    Program-specific pages hold the original (pre-region) contents of every
    page the region touched, recovered from the forked child's
    Copy-on-Write frames.  Boot-common pages (immutable runtime objects)
    are stored once per device boot and shared across captures; mapped code
    files are only logged as paths. *)

type page_image = { pg_index : int; pg_data : int64 array }
(** One captured page: its page-table index and original word contents. *)

type t = {
  snap_app : string;
  snap_mid : int;                        (** hot-region root method *)
  snap_args : Repro_vm.Value.t list;     (** architectural state *)
  snap_maps : Repro_os.Mem.mapping list; (** address-space layout to rebuild *)
  snap_pages : page_image list;          (** program-specific pages *)
  snap_common : page_image list;         (** boot-common runtime pages *)
  snap_code_files : (string * int) list; (** mmapped files: path, pages *)
  snap_heap_next : int;                  (** allocator bump pointer *)
  snap_alloc_since_gc : int;             (** GC accounting at capture *)
}

val program_bytes : t -> int
(** Storage footprint of the program-specific pages (Figure 11's
    per-capture cost). *)

val common_bytes : t -> int
(** Storage footprint of the boot-common pages (paid once per boot,
    shared by every capture). *)

val program_label : t -> string
(** Store label of the program-specific page blob (["app/capture"]). *)

val common_label : t -> string
(** Store label of this app's boot-common page blob (["app/boot-common"]).
    Labels are per-app, but the content-addressed store dedups identical
    runtime pages across apps into shared frames — Figure 11's sharing. *)

val store : Repro_os.Storage.t -> t -> unit
(** Spool both page sets to device storage (enqueue only; the
    idle-priority drain between GA evaluation batches does the hashing).
    Replaces any previous blobs under the same labels. *)

val discard : Repro_os.Storage.t -> t -> unit
(** Release the app-specific capture blob after optimization finishes
    (§5.4); boot-common frames survive while other captures share them. *)

val set_store : Repro_os.Storage.t option -> unit
(** Attach (or detach, with [None]) the process-wide device store.  While
    one is attached and holds a snapshot's blobs, {!template} materializes
    from the store — checksum-validating every page — instead of from the
    in-memory page lists.  Set it on the main domain before worker domains
    spawn. *)

val current_store : unit -> Repro_os.Storage.t option

val invalidate_templates : unit -> unit
(** Drop the calling domain's cached template so the next {!template}
    call rebuilds from the (possibly mutated) store — used by the
    corruption tests and fault campaigns. *)

val template : t -> Repro_os.Mem.t
(** The snapshot's address-space template: mappings recreated and every
    captured page installed, built once per (domain, snapshot) and cached
    in domain-local storage.  Replays [Repro_os.Mem.clone] it instead of
    re-copying every page, making per-replay setup O(page table) and
    verification O(dirty pages).  The template must be treated as
    immutable; never write through it. *)

val cached_template : t -> Repro_os.Mem.t option
(** The calling domain's cached template for this exact snapshot, if one
    exists — a cheap provenance check ([==] against
    {!Repro_os.Mem.cloned_from}) that never builds anything. *)
