module Mem = Repro_os.Mem
module Storage = Repro_os.Storage
module Trace = Repro_util.Trace

type page_image = { pg_index : int; pg_data : int64 array }

type t = {
  snap_app : string;
  snap_mid : int;
  snap_args : Repro_vm.Value.t list;
  snap_maps : Mem.mapping list;
  snap_pages : page_image list;
  snap_common : page_image list;
  snap_code_files : (string * int) list;
  snap_heap_next : int;
  snap_alloc_since_gc : int;
}

let program_bytes t = List.length t.snap_pages * Mem.page_size
let common_bytes t = List.length t.snap_common * Mem.page_size

let boot_common_label = "boot-common-pages"

let store storage t =
  Storage.write storage ~label:(t.snap_app ^ "/capture") ~bytes:(program_bytes t);
  if Storage.size storage ~label:boot_common_label = None then
    Storage.write storage ~label:boot_common_label ~bytes:(common_bytes t)

let discard storage t = Storage.delete storage ~label:(t.snap_app ^ "/capture")

(* ------------------------- snapshot templates ------------------------ *)

(* One immutable address-space template per (domain, snapshot): mappings
   recreated and every captured page installed once, after which each
   replay takes an O(page-table) [Mem.clone] instead of re-copying every
   page.  The cache is domain-local so template frames (plain-int
   refcounts) are never shared across domains — each Evalpool worker
   builds its own template, amortized over the replays it runs. *)
let template_slot : (t * Mem.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let build_template snap =
  Trace.span ~cat:"replay" ~args:[ ("app", snap.snap_app) ]
    "snapshot:build_template"
  @@ fun () ->
  Trace.incr "replay.template_builds";
  let mem = Mem.create () in
  List.iter
    (fun m ->
       Mem.map mem ~base:m.Mem.map_base ~npages:m.Mem.map_npages
         ~kind:m.Mem.map_kind ~name:m.Mem.map_name)
    snap.snap_maps;
  let place { pg_index; pg_data } = Mem.install_page mem ~page:pg_index pg_data in
  List.iter place snap.snap_common;
  List.iter place snap.snap_pages;
  mem

let template snap =
  match Domain.DLS.get template_slot with
  | Some (s, mem) when s == snap -> mem
  | Some _ | None ->
    let mem = build_template snap in
    Domain.DLS.set template_slot (Some (snap, mem));
    mem

let cached_template snap =
  match Domain.DLS.get template_slot with
  | Some (s, mem) when s == snap -> Some mem
  | Some _ | None -> None
