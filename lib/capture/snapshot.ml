module Mem = Repro_os.Mem
module Storage = Repro_os.Storage
module Trace = Repro_util.Trace

type page_image = { pg_index : int; pg_data : int64 array }

type t = {
  snap_app : string;
  snap_mid : int;
  snap_args : Repro_vm.Value.t list;
  snap_maps : Mem.mapping list;
  snap_pages : page_image list;
  snap_common : page_image list;
  snap_code_files : (string * int) list;
  snap_heap_next : int;
  snap_alloc_since_gc : int;
}

let program_bytes t = List.length t.snap_pages * Mem.page_size
let common_bytes t = List.length t.snap_common * Mem.page_size

let program_label t = t.snap_app ^ "/capture"
let common_label t = t.snap_app ^ "/boot-common"

let page_list images =
  List.map (fun { pg_index; pg_data } -> (pg_index, pg_data)) images

let store storage t =
  (* enqueue only; the idle-priority spooler (Storage.drain between GA
     evaluation batches) does the hashing.  Boot-common pages get their own
     per-app blob: identical runtime pages dedup to shared frames in the
     content-addressed store, which is exactly the Figure 11 sharing. *)
  Storage.write storage ~label:(program_label t) ~pages:(page_list t.snap_pages);
  Storage.write storage ~label:(common_label t) ~pages:(page_list t.snap_common)

let discard storage t = Storage.delete storage ~label:(program_label t)

(* The device store, when one is attached (bin/repro --store, fig11).  Set
   on the main domain before any workers spawn; workers only read it. *)
let store_ref : Storage.t option Atomic.t = Atomic.make None
let set_store s = Atomic.set store_ref s
let current_store () = Atomic.get store_ref

(* ------------------------- snapshot templates ------------------------ *)

(* One immutable address-space template per (domain, snapshot): mappings
   recreated and every captured page installed once, after which each
   replay takes an O(page-table) [Mem.clone] instead of re-copying every
   page.  The cache is domain-local so template frames (plain-int
   refcounts) are never shared across domains — each Evalpool worker
   builds its own template, amortized over the replays it runs.

   The cache holds a small MRU list rather than a single entry: corpus
   verification cycles through K snapshots per candidate, and a
   one-entry cache would rebuild every template K times per evaluation —
   O(snapshot), not O(dirty pages).  The cap bounds the per-domain
   footprint (a template pins every captured page of its snapshot). *)
let max_cached_templates = 12

let template_slot : (t * Mem.t) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let invalidate_templates () = Domain.DLS.set template_slot []

(* page images for the template: from the attached store when this
   snapshot's blobs are in it (checksum-validated read; failures raise
   [Storage.Integrity], which the replay loader converts into a crashed
   replay for the quarantine policy), else the in-memory lists *)
let template_pages snap =
  match current_store () with
  | Some storage when Storage.contains storage ~label:(program_label snap) ->
    Trace.incr "storage.template_reads";
    let fetch label =
      match Storage.read storage ~label with
      | Ok pages -> pages
      | Error e -> raise (Storage.Integrity e)
    in
    fetch (common_label snap) @ fetch (program_label snap)
  | _ -> page_list snap.snap_common @ page_list snap.snap_pages

let build_template snap =
  Trace.span ~cat:"replay" ~args:[ ("app", snap.snap_app) ]
    "snapshot:build_template"
  @@ fun () ->
  Trace.incr "replay.template_builds";
  let pages = template_pages snap in
  let mem = Mem.create () in
  List.iter
    (fun m ->
       Mem.map mem ~base:m.Mem.map_base ~npages:m.Mem.map_npages
         ~kind:m.Mem.map_kind ~name:m.Mem.map_name)
    snap.snap_maps;
  List.iter (fun (page, data) -> Mem.install_page mem ~page data) pages;
  mem

let template snap =
  let entries = Domain.DLS.get template_slot in
  match List.find_opt (fun (s, _) -> s == snap) entries with
  | Some (_, mem) ->
    (match entries with
     | (s0, _) :: _ when s0 == snap -> ()   (* already most recent *)
     | _ ->
       Domain.DLS.set template_slot
         ((snap, mem) :: List.filter (fun (s, _) -> s != snap) entries));
    mem
  | None ->
    let mem = build_template snap in
    let entries = (snap, mem) :: entries in
    let entries = List.filteri (fun i _ -> i < max_cached_templates) entries in
    Domain.DLS.set template_slot entries;
    mem

let cached_template snap =
  List.find_opt (fun (s, _) -> s == snap) (Domain.DLS.get template_slot)
  |> Option.map snd
