(** Verification maps (paper §3.4): the externally observable behaviour of
    a hot region, recorded from an interpreted replay — every memory word
    the region changed (object fields, array elements, statics) plus its
    return value.  Candidate binaries whose replay produces a different
    map are discarded as miscompiled. *)

type t = {
  writes : (int * int64) list;   (** address, final value; sorted *)
  ret : Repro_vm.Value.t option;
}

val diff_against_snapshot : Repro_vm.Exec_ctx.t -> Snapshot.t -> (int * int64) list
(** All heap/static words whose post-replay value differs from the captured
    original (absent pages read as zero).  When the context's memory is a
    clone of this snapshot's template (the normal replay path) only the
    pages the replay privatized are scanned — O(dirty pages), counted by
    the [verify.pages_scanned] trace counter; otherwise every materialized
    heap/static page is scanned (counted by [verify.full_scans]). *)

val diff_against_snapshot_full : Repro_vm.Exec_ctx.t -> Snapshot.t -> (int * int64) list
(** Reference implementation: always scan every materialized heap/static
    page.  Used by tests to prove the dirty-page scan equivalent. *)

val diff_matches : Repro_vm.Exec_ctx.t -> Snapshot.t -> (int * int64) list -> bool
(** [diff_matches ctx snap writes] is
    [diff_against_snapshot ctx snap = writes] with an early exit on the
    first diverging word, without materializing the diff list. *)

val collect : Repro_dex.Bytecode.dexfile -> Snapshot.t -> t
(** Build the map through an interpreted replay.
    @raise Failure if the interpreted replay itself fails (a capture bug). *)

type check_result =
  | Passed of int                 (** cycles of the verified replay *)
  | Wrong_output                  (** write set or return value diverged *)
  | Crashed of string             (** the candidate replay raised *)
  | Hung                          (** the candidate replay exceeded its fuel *)

val check :
  ?fuel:int ->
  ?faults_key:int ->
  Repro_dex.Bytecode.dexfile -> Snapshot.t -> t -> Repro_lir.Binary.t ->
  check_result
(** Replay the snapshot under a candidate binary and compare behaviour.
    [fuel] bounds the replay's cycle budget before it is declared [Hung]
    (default {!Replay.default_fuel}).

    [faults_key] is forwarded to {!Replay.run}: it opts the candidate
    replay (never the reference map) into the fault-injection net, which is
    how the robustness tests prove that every injected replay/executor
    fault surfaces as a non-[Passed] verdict.  Anything but [Passed] means
    the binary must be discarded — under fault injection the pipeline
    {e quarantines} it (fitness = worst) after a one-retry check that
    separates transient replay faults from deterministic miscompiles. *)

(** A cross-input verification reference: what the {e reference}
    (interpreted) execution of one captured input does.  Most inputs
    finish and yield a verification map; adversarial corpus inputs may
    make the reference itself trap (e.g. a bounds exception on a
    non-power-of-two FFT size), and those are exactly the inputs that
    expose guard-stripping miscompiles. *)
type reference =
  | Ref_map of t            (** reference finished with this map *)
  | Ref_crash of string     (** reference trapped with this message *)

val collect_ref :
  ?record_vcall:(Typeprof.site -> int -> unit) ->
  Repro_dex.Bytecode.dexfile -> Snapshot.t -> reference
(** Like {!collect}, but a reference trap is a legitimate [Ref_crash]
    outcome rather than a capture bug.  [record_vcall] feeds the replay's
    dispatch sites to a type profile, as in {!Repro_capture.Replay.run}.
    @raise Failure if the interpreted replay hangs. *)

val check_ref :
  ?fuel:int ->
  ?faults_key:int ->
  Repro_dex.Bytecode.dexfile -> Snapshot.t -> reference ->
  Repro_lir.Binary.t -> check_result
(** {!check} against a corpus reference.  For a [Ref_map] this is exactly
    {!check}.  For a [Ref_crash] the candidate passes only when it traps
    with the identical message ([Passed] carries its replay cycles); a
    candidate that {e finishes} on a trapping input executed past the
    reference's faulting access — the guard-stripping signature — and is
    [Wrong_output].  Partial write sets at the trap are not compared:
    legal optimizations may reorder stores ahead of the faulting access. *)
