type site = int * int

type t = { counts : (site * int, int) Hashtbl.t }

let create () = { counts = Hashtbl.create 64 }

let record t site cid =
  let key = (site, cid) in
  Hashtbl.replace t.counts key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key))

let lookup t site =
  Hashtbl.fold
    (fun (s, cid) n acc -> if s = site then (cid, n) :: acc else acc)
    t.counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let install t (ctx : Repro_vm.Exec_ctx.t) =
  ctx.Repro_vm.Exec_ctx.record_vcall <- Some (fun site cid -> record t site cid)

let sites t =
  Hashtbl.fold (fun (s, _) _ acc -> s :: acc) t.counts []
  |> List.sort_uniq compare

let total t = Hashtbl.fold (fun _ n acc -> acc + n) t.counts 0

let digest t =
  let rows =
    Hashtbl.fold
      (fun ((m, pc), cid) n acc -> (m, pc, cid, n) :: acc)
      t.counts []
    |> List.sort compare
  in
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (List.map
             (fun (m, pc, cid, n) -> Printf.sprintf "%d:%d:%d:%d" m pc cid n)
             rows)))
