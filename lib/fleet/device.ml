module Rng = Repro_util.Rng
module App = Repro_apps.Registry

type t = {
  id : int;
  apps : string list;
  dvfs : float;
  uptime : float;
  noise_seed : int;
  avail_seed : int;
  capture_seed : int;
}

(* Scalar sub-seed from the profile stream: non-negative, full entropy. *)
let draw_seed rng = Int64.to_int (Rng.bits64 rng) land max_int

(* Left-to-right subset draw: List.filter's application order is
   unspecified by the stdlib contract, and the draw order must be pinned
   for the profile to be reproducible. *)
let draw_apps rng names =
  let picked =
    List.fold_left
      (fun acc name -> if Rng.chance rng 0.6 then name :: acc else acc)
      [] names
  in
  match List.rev picked with
  | [] -> [ List.hd names ]     (* every device runs at least one app *)
  | apps -> apps

let make ~fleet_seed id =
  let rng = Rng.of_pair fleet_seed id in
  (* Draw in a fixed order so each field is a stable function of the
     profile stream even if later fields are added. *)
  let apps = draw_apps rng App.names in
  let dvfs = 1.0 +. Rng.float rng 1.2 in
  let uptime = 0.55 +. Rng.float rng 0.4 in
  let noise_seed = draw_seed rng in
  let avail_seed = draw_seed rng in
  let capture_seed = draw_seed rng in
  if id = 0 then
    (* The reference device: anchors availability and matches the
       single-device pipeline's noise model exactly. *)
    { id; apps = App.names; dvfs = 1.0; uptime = 1.0; noise_seed;
      avail_seed; capture_seed }
  else { id; apps; dvfs; uptime; noise_seed; avail_seed; capture_seed }

let fleet ~fleet_seed n = Array.init n (make ~fleet_seed)

let has_app d name = List.mem name d.apps

let available d ~gen =
  d.uptime >= 1.0 || Rng.chance (Rng.of_pair d.avail_seed gen) d.uptime

let bucket d =
  if d.dvfs < 1.4 then "fast" else if d.dvfs < 1.8 then "mid" else "slow"

let describe d =
  Printf.sprintf "device %d: %s, dvfs x%.2f, uptime %.0f%%, %d apps" d.id
    (bucket d) d.dvfs (d.uptime *. 100.0) (List.length d.apps)
