module Rng = Repro_util.Rng
module Stats = Repro_util.Stats
module Trace = Repro_util.Trace
module App = Repro_apps.Registry
module Genome = Repro_search.Genome
module Ga = Repro_search.Ga
module Evalpool = Repro_search.Evalpool
module Pipeline = Repro_core.Pipeline
module Cost = Repro_vm.Cost

type config = {
  ga : Ga.config;
  replicas : int;
  samples_per_device : int;
}

(* 7 devices x 3 samples = 21 pooled points per genome: the widened
   per-device sigmas (DVFS up to ~2.2x) average out to a fitness estimate
   about as tight as the single-device pipeline's 10 samples at base
   sigma, which is what makes fleet search competitive at equal
   evaluation budget. *)
let default_config =
  { ga = Ga.quick_config; replicas = 7; samples_per_device = 3 }

type result = {
  ga : Ga.result;
  devices : int;
  capable : int;
  ticks : int;
  avail_trace : int list;
  empty_rounds : int;
  fleet_samples : int;
  bank_seeds : int;
  winner_ms : float option;
  history_digest : string;
  pool_stats : Evalpool.stats;
}

(* Canonical history rendering lives in [Ga.history_digest] (floats as
   exact bit patterns, so equal digests mean byte-identical searches);
   this alias keeps the fleet's public name. *)
let history_digest = Ga.history_digest

(* One device's contribution to one evaluation: a small batch of replay
   samples whose noise stream is pure in (device noise seed, ev_index) and
   whose sigma is widened by the device's DVFS multiplier.  The mean stays
   anchored to the deterministic replay cycles (lognormal with mu = 0), so
   heterogeneous devices vote on the same underlying quantity. *)
let device_samples env cfg (d : Device.t) ~ev_index cycles =
  let rng = Rng.of_pair d.Device.noise_seed ev_index in
  let ms =
    float_of_int cycles /. float_of_int Cost.default.Cost.cycles_per_ms
  in
  let sigma = env.Pipeline.noise_sigma *. d.Device.dvfs in
  Array.init cfg.samples_per_device (fun _ ->
      ms *. Rng.lognormal rng ~mu:0.0 ~sigma)

let run ?jobs ?cache ?(sched_seed = 0) ?bank ?(cfg = default_config) ~seed
    ~devices env =
  Trace.span ~cat:"fleet"
    ~args:[ ("app", env.Pipeline.app.App.name);
            ("devices", string_of_int devices) ]
    "fleet:run"
  @@ fun () ->
  if devices < 1 then invalid_arg "Fleet.run: devices must be >= 1";
  let app_name = env.Pipeline.app.App.name in
  let fleet = Device.fleet ~fleet_seed:seed devices in
  let capable =
    Array.of_list
      (List.filter
         (fun d -> Device.has_app d app_name)
         (Array.to_list fleet))
  in
  (* Device 0 has every app installed, so [capable] is never empty. *)
  assert (Array.length capable > 0);
  Trace.add "fleet.devices" devices;
  let pool = Pipeline.make_core_pool ?jobs ?cache env in
  let tick = ref 0 in
  let avail_trace = ref [] in
  let empty_rounds = ref 0 in
  let fleet_samples = ref 0 in
  let evaluate_batch tasks =
    let t = !tick in
    incr tick;
    Trace.incr "fleet.batches";
    let online =
      Array.of_list
        (List.filter
           (fun d -> Device.available d ~gen:t)
           (Array.to_list capable))
    in
    let avail, empty = if Array.length online = 0 then (capable, true)
      else (online, false)
    in
    if empty then begin
      incr empty_rounds;
      Trace.incr "fleet.empty_rounds"
    end;
    avail_trace := Array.length avail :: !avail_trace;
    let cores = Evalpool.evaluate_batch pool tasks in
    Array.mapi
      (fun i core ->
         let ev_index, _genome = tasks.(i) in
         match core with
         | Pipeline.Core_measured { cycles; size; key } ->
           let n = Array.length avail in
           let k = min cfg.replicas n in
           (* Deterministic rotation over the id-sorted available set:
              assignment depends only on (ev_index, available set). *)
           let assigned =
             Array.init k (fun j -> avail.((ev_index + j) mod n))
           in
           Trace.add "fleet.assignments" k;
           (* Process devices in a sched_seed-shuffled order to model an
              arbitrary arrival order; samples are pure per (device,
              ev_index), so this provably cannot change the result. *)
           let order = Array.copy assigned in
           Rng.shuffle (Rng.of_pair sched_seed ev_index) order;
           let by_id = Hashtbl.create 8 in
           Array.iter
             (fun d ->
                Hashtbl.replace by_id d.Device.id
                  (device_samples env cfg d ~ev_index cycles))
             order;
           (* Aggregate in device-id order: the pooled sample vector is
              independent of scheduling. *)
           let ids =
             List.sort compare
               (Array.to_list (Array.map (fun d -> d.Device.id) assigned))
           in
           let batches =
             Array.of_list (List.map (Hashtbl.find by_id) ids)
           in
           let times = Stats.pool_samples batches in
           fleet_samples := !fleet_samples + Array.length times;
           Trace.add "fleet.samples" (Array.length times);
           Ga.Measured { times; size; key }
         | core -> Pipeline.outcome_of_core env ~ev_index core)
      cores
  in
  let ref_bucket = Device.bucket fleet.(0) in
  let seed_genomes =
    match bank with
    | None -> []
    | Some bank ->
      let seeds = Bank.lookup bank ~app:app_name ~bucket:ref_bucket in
      let seeds =
        List.filteri (fun i _ -> i < cfg.ga.Ga.population) seeds
      in
      Trace.add "fleet.bank_seeds" (List.length seeds);
      seeds
  in
  let rng = Rng.create seed in
  let ga =
    Ga.run ~seed_genomes rng cfg.ga ~evaluate_batch
      ~baseline_ms:env.Pipeline.android_region_ms
      ~o3_ms:env.Pipeline.o3_region_ms ()
  in
  (* Publish the winner to the bank under every device-feature bucket the
     capable fleet contains: the fleet as a whole validated it. *)
  (match (bank, ga.Ga.best) with
   | Some bank, Some (genome, fitness_ms) ->
     let buckets =
       List.sort_uniq compare
         (Array.to_list (Array.map Device.bucket capable))
     in
     List.iter
       (fun bucket -> Bank.record bank ~app:app_name ~bucket genome ~fitness_ms)
       buckets
   | _ -> ());
  let winner_ms =
    match ga.Ga.best with
    | None -> None
    | Some (genome, _) ->
      (match Pipeline.compile_core env genome with
       | Ok binary -> Pipeline.replay_ms env binary
       | Error _ -> None)
  in
  { ga; devices; capable = Array.length capable; ticks = !tick;
    avail_trace = List.rev !avail_trace; empty_rounds = !empty_rounds;
    fleet_samples = !fleet_samples;
    bank_seeds = List.length seed_genomes; winner_ms;
    history_digest = history_digest ga; pool_stats = Evalpool.stats pool }
