(** Simulated user devices for the crowdsourced fleet (paper §1's
    deployment story; precursor paper arXiv 1511.02603).

    A device is a {e profile}, not a process: everything about it — which
    apps it has installed, how noisy its clock is (a DVFS/thermal
    multiplier), when it is online — is derived deterministically from
    [(fleet_seed, device id)] through {!Repro_util.Rng.of_pair}.  The
    coordinator multiplexes thousands of these profiles over the existing
    {!Repro_search.Evalpool} domain pool; no per-device threads exist.

    Determinism: every accessor is a pure function of the profile, and
    {!available} is a pure function of [(profile, gen)] — device state at
    generation [g] never depends on what happened at other generations or
    on scheduling (the availability-prefix qcheck property pins this). *)

type t = private {
  id : int;                 (** dense fleet index; device 0 is special *)
  apps : string list;       (** installed app names, registry order *)
  dvfs : float;             (** >= 1.0: widens measurement-noise sigma *)
  uptime : float;           (** probability of being online at each gen *)
  noise_seed : int;         (** seeds [(noise_seed, ev_index)] streams *)
  avail_seed : int;         (** seeds [(avail_seed, gen)] coin flips *)
  capture_seed : int;       (** the device's capture/corpus identity *)
}

val make : fleet_seed:int -> int -> t
(** [make ~fleet_seed id] derives the device profile.  Pure in the pair.
    Device 0 is the {e reference device}: every app installed, always
    online, DVFS multiplier 1.0 — it anchors the fleet so a search can
    never find itself with zero capable devices and its noise model
    matches the single-device pipeline's. *)

val fleet : fleet_seed:int -> int -> t array
(** [fleet ~fleet_seed n] is [Array.init n (make ~fleet_seed)]. *)

val has_app : t -> string -> bool

val available : t -> gen:int -> bool
(** Online at generation [gen]?  Pure in [(avail_seed, uptime, gen)]:
    one {!Repro_util.Rng.of_pair}-seeded coin per (device, gen), so the
    schedule is stable under any evaluation interleaving. *)

val bucket : t -> string
(** The device-feature bucket used to key the genome bank:
    ["fast"], ["mid"] or ["slow"], by DVFS multiplier tercile. *)

val describe : t -> string
(** One-line profile rendering for logs. *)
