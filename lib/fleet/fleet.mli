(** The fleet coordinator: one app's GA sharded across a simulated device
    population (the paper's crowdsourced deployment; ROADMAP item 1).

    The coordinator owns the search: genomes are drawn by the ordinary
    {!Repro_search.Ga.run} loop, each generation's batch is compiled and
    verified {e once} on the shared {!Repro_core.Pipeline.make_core_pool}
    (the server does the expensive deterministic work), and each genome's
    {e measurements} are crowdsourced — the genome is assigned to a
    rotation of the devices online that round, and every assigned device
    contributes a small batch of replay samples drawn from its own noise
    model (its DVFS multiplier widens the lognormal sigma; its stream is
    seeded [(device noise seed, ev_index)]).  Per-device sample batches
    are pooled in device-id order with {!Repro_util.Stats.pool_samples}
    and handed to the GA as one [Measured] outcome, so ranking reuses the
    existing MAD-outlier + Welch-t-test machinery unchanged.

    {2 Determinism contract}

    The search history is byte-identical (see {!history_digest}) across:
    - worker-domain count ([jobs]) and cache state — inherited from the
      core pool's contract;
    - device {e scheduling} order — [sched_seed] shuffles the order in
      which assigned devices are processed, but samples are pure per
      (device, ev_index) and aggregation sorts by device id;
    - availability interleaving — a device's online state at round [t] is
      pure in its profile and [t] ({!Device.available}), and assignment
      depends only on [(ev_index, sorted available set)].

    Trace counters (under [fleet.*]): [devices], [batches], [assignments],
    [samples], [empty_rounds], [bank_seeds], [bank_records],
    [bank_corrupt]. *)

module Pipeline = Repro_core.Pipeline
module Ga = Repro_search.Ga

type config = {
  ga : Ga.config;
  replicas : int;
  (** devices assigned to each genome (capped by availability) *)
  samples_per_device : int;
  (** replay samples each assigned device contributes *)
}

val default_config : config
(** {!Repro_search.Ga.quick_config}, 5 replicas, 3 samples per device:
    a pooled sample set comparable to the single-device pipeline's
    [replays_per_eval]. *)

type result = {
  ga : Ga.result;
  devices : int;              (** fleet size as requested *)
  capable : int;              (** devices with the app installed *)
  ticks : int;                (** availability rounds (one per GA batch) *)
  avail_trace : int list;     (** online capable devices per round *)
  empty_rounds : int;         (** rounds rescued by the whole-fleet fallback *)
  fleet_samples : int;        (** device samples contributed in total *)
  bank_seeds : int;           (** warm-start genomes taken from the bank *)
  winner_ms : float option;   (** winner's replay on the reference env *)
  history_digest : string;    (** {!history_digest} of [ga] *)
  pool_stats : Repro_search.Evalpool.stats;
}

val history_digest : Ga.result -> string
(** Hex digest of a canonical rendering of the full evaluation history —
    every index, generation, genome, outcome and exact measurement bits
    ([Int64.bits_of_float]).  Equal digests mean byte-identical searches;
    the CLI smoke and the qcheck determinism properties compare these. *)

val run :
  ?jobs:int -> ?cache:bool -> ?sched_seed:int -> ?bank:Bank.t ->
  ?cfg:config -> seed:int -> devices:int ->
  Pipeline.evaluation_env -> result
(** Run the sharded search over a fleet of [devices] profiles derived from
    [seed] ({!Device.fleet}).  [bank] (shared, mutated in place)
    warm-starts the GA from previous winners for the app — matching the
    reference device's bucket first — and receives this search's winner
    under every bucket present in the capable fleet.  [sched_seed]
    (default 0) permutes device processing order only; the result is
    independent of it.  If no capable device is online in a round the
    whole capable fleet steps in ([empty_rounds]).  Device 0 guarantees
    the capable set is never empty. *)
