module Trace = Repro_util.Trace
module Genome = Repro_search.Genome
module Storage = Repro_os.Storage
module Pipeline = Repro_core.Pipeline

type entry = {
  e_app : string;
  e_bucket : string;
  e_genome : Genome.t;
  e_fitness_ms : float;
  e_wins : int;
}

type t = (string * string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let record bank ~app ~bucket genome ~fitness_ms =
  Trace.incr "fleet.bank_records";
  let key = (app, bucket) in
  match Hashtbl.find_opt bank key with
  | Some e when e.e_fitness_ms <= fitness_ms ->
    Hashtbl.replace bank key { e with e_wins = e.e_wins + 1 }
  | Some e ->
    Hashtbl.replace bank key
      { e with e_genome = genome; e_fitness_ms = fitness_ms;
               e_wins = e.e_wins + 1 }
  | None ->
    Hashtbl.add bank key
      { e_app = app; e_bucket = bucket; e_genome = genome;
        e_fitness_ms = fitness_ms; e_wins = 1 }

let entries bank =
  Hashtbl.fold (fun _ e acc -> e :: acc) bank []
  |> List.sort (fun a b ->
      match compare a.e_app b.e_app with
      | 0 -> compare a.e_bucket b.e_bucket
      | c -> c)

let size bank = Hashtbl.length bank

let lookup bank ~app ~bucket =
  let mine, others =
    List.partition (fun e -> e.e_bucket = bucket)
      (List.filter (fun e -> e.e_app = app) (entries bank))
  in
  let by_fitness a b = compare a.e_fitness_ms b.e_fitness_ms in
  let ordered = List.sort by_fitness mine @ others in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
       let c = Genome.canon e.e_genome in
       if Hashtbl.mem seen c then None
       else begin
         Hashtbl.add seen c ();
         Some e.e_genome
       end)
    ordered

(* {2 Text image}

   One header line, then one tab-separated line per entry in (app, bucket)
   order.  Fitness round-trips exactly as hex float bits; genomes render
   as space-separated [pass:p1,p2] genes (pass names come from the pass
   catalog and contain no whitespace). *)

let magic = "REPROBANK1"

(* The gene/genome round-trip codec is shared with checkpoints and lives
   in [Genome.to_text]/[Genome.of_text]. *)
let genome_to_string = Genome.to_text
let genome_of_string = Genome.of_text

let to_text bank =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
       Buffer.add_string buf
         (Printf.sprintf "%s\t%s\t%Lx\t%d\t%s\n" e.e_app e.e_bucket
            (Int64.bits_of_float e.e_fitness_ms) e.e_wins
            (genome_to_string e.e_genome)))
    (entries bank);
  Buffer.contents buf

exception Malformed of string

let of_text text =
  let bank = create () in
  (match String.split_on_char '\n' text with
   | header :: lines when header = magic ->
     List.iter
       (fun line ->
          if line <> "" then
            match String.split_on_char '\t' line with
            | [ app; bucket; bits; wins; genome ] ->
              let e =
                { e_app = app; e_bucket = bucket;
                  e_genome = genome_of_string genome;
                  e_fitness_ms =
                    Int64.float_of_bits (Int64.of_string ("0x" ^ bits));
                  e_wins = int_of_string wins }
              in
              Hashtbl.replace bank (app, bucket) e
            | _ -> raise (Malformed ("bad entry: " ^ line)))
       lines
   | _ -> raise (Malformed "bad header"));
  bank

(* {2 Page image}

   The text payload is framed into whole store pages by the shared
   [Storage.pages_of_string] codec (8-byte little-endian length prefix,
   zero padding) and written as one blob labelled "bank".  Storage.save
   then gives byte-determinism (frames sorted by digest) and per-page
   checksums for free. *)

let pages_of_text = Storage.pages_of_string

let text_of_pages pages =
  match Storage.string_of_pages pages with
  | Ok text -> text
  | Error why -> raise (Malformed why)

let save bank file =
  let st = Storage.create () in
  Storage.write st ~label:"bank" ~pages:(pages_of_text (to_text bank));
  Storage.flush st;
  Storage.save st file

let corrupt_result file reason =
  Trace.incr "fleet.bank_corrupt";
  Pipeline.record_quarantine ~key:("bank:" ^ file) ~reason ();
  (create (), [ Printf.sprintf "bank %s: %s (starting cold)" file reason ])

let load file =
  if not (Sys.file_exists file) then (create (), [])
  else begin
    let st, store_warnings = Storage.load file in
    if not (Storage.contains st ~label:"bank") then
      corrupt_result file "no bank blob in store"
    else
      match Storage.read st ~label:"bank" with
      | Error e -> corrupt_result file (Storage.describe e)
      | Ok pages ->
        (match of_text (text_of_pages pages) with
         | bank -> (bank, store_warnings)
         | exception Malformed why -> corrupt_result file why
         | exception _ -> corrupt_result file "unparseable bank payload")
  end
