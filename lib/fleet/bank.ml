module Trace = Repro_util.Trace
module Genome = Repro_search.Genome
module Storage = Repro_os.Storage
module Pipeline = Repro_core.Pipeline

type entry = {
  e_app : string;
  e_bucket : string;
  e_genome : Genome.t;
  e_fitness_ms : float;
  e_wins : int;
}

type t = (string * string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let record bank ~app ~bucket genome ~fitness_ms =
  Trace.incr "fleet.bank_records";
  let key = (app, bucket) in
  match Hashtbl.find_opt bank key with
  | Some e when e.e_fitness_ms <= fitness_ms ->
    Hashtbl.replace bank key { e with e_wins = e.e_wins + 1 }
  | Some e ->
    Hashtbl.replace bank key
      { e with e_genome = genome; e_fitness_ms = fitness_ms;
               e_wins = e.e_wins + 1 }
  | None ->
    Hashtbl.add bank key
      { e_app = app; e_bucket = bucket; e_genome = genome;
        e_fitness_ms = fitness_ms; e_wins = 1 }

let entries bank =
  Hashtbl.fold (fun _ e acc -> e :: acc) bank []
  |> List.sort (fun a b ->
      match compare a.e_app b.e_app with
      | 0 -> compare a.e_bucket b.e_bucket
      | c -> c)

let size bank = Hashtbl.length bank

let lookup bank ~app ~bucket =
  let mine, others =
    List.partition (fun e -> e.e_bucket = bucket)
      (List.filter (fun e -> e.e_app = app) (entries bank))
  in
  let by_fitness a b = compare a.e_fitness_ms b.e_fitness_ms in
  let ordered = List.sort by_fitness mine @ others in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
       let c = Genome.canon e.e_genome in
       if Hashtbl.mem seen c then None
       else begin
         Hashtbl.add seen c ();
         Some e.e_genome
       end)
    ordered

(* {2 Text image}

   One header line, then one tab-separated line per entry in (app, bucket)
   order.  Fitness round-trips exactly as hex float bits; genomes render
   as space-separated [pass:p1,p2] genes (pass names come from the pass
   catalog and contain no whitespace). *)

let magic = "REPROBANK1"

let gene_to_string g =
  if Array.length g.Genome.g_params = 0 then g.Genome.g_pass
  else
    g.Genome.g_pass ^ ":"
    ^ String.concat ","
        (List.map string_of_int (Array.to_list g.Genome.g_params))

let gene_of_string s =
  match String.index_opt s ':' with
  | None -> { Genome.g_pass = s; g_params = [||] }
  | Some i ->
    let pass = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let params =
      if rest = "" then [||]
      else
        Array.of_list
          (List.map int_of_string (String.split_on_char ',' rest))
    in
    { Genome.g_pass = pass; g_params = params }

let genome_to_string g = String.concat " " (List.map gene_to_string g)

let genome_of_string s =
  List.filter_map
    (fun tok -> if tok = "" then None else Some (gene_of_string tok))
    (String.split_on_char ' ' s)

let to_text bank =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
       Buffer.add_string buf
         (Printf.sprintf "%s\t%s\t%Lx\t%d\t%s\n" e.e_app e.e_bucket
            (Int64.bits_of_float e.e_fitness_ms) e.e_wins
            (genome_to_string e.e_genome)))
    (entries bank);
  Buffer.contents buf

exception Malformed of string

let of_text text =
  let bank = create () in
  (match String.split_on_char '\n' text with
   | header :: lines when header = magic ->
     List.iter
       (fun line ->
          if line <> "" then
            match String.split_on_char '\t' line with
            | [ app; bucket; bits; wins; genome ] ->
              let e =
                { e_app = app; e_bucket = bucket;
                  e_genome = genome_of_string genome;
                  e_fitness_ms =
                    Int64.float_of_bits (Int64.of_string ("0x" ^ bits));
                  e_wins = int_of_string wins }
              in
              Hashtbl.replace bank (app, bucket) e
            | _ -> raise (Malformed ("bad entry: " ^ line)))
       lines
   | _ -> raise (Malformed "bad header"));
  bank

(* {2 Page image}

   The text payload is framed with an 8-byte little-endian length, padded
   with zeros to a whole number of store pages, and written as one blob
   labelled "bank".  Storage.save then gives byte-determinism (frames
   sorted by digest) and per-page checksums for free. *)

let words_per_page = Storage.page_bytes / 8

let pages_of_text text =
  let payload = Bytes.of_string text in
  let framed_len = 8 + Bytes.length payload in
  let n_pages = (framed_len + Storage.page_bytes - 1) / Storage.page_bytes in
  let n_pages = max n_pages 1 in
  let image = Bytes.make (n_pages * Storage.page_bytes) '\000' in
  Bytes.set_int64_le image 0 (Int64.of_int (Bytes.length payload));
  Bytes.blit payload 0 image 8 (Bytes.length payload);
  List.init n_pages (fun p ->
      ( p,
        Array.init words_per_page (fun w ->
            Bytes.get_int64_le image ((p * Storage.page_bytes) + (w * 8))) ))

let text_of_pages pages =
  let pages = List.sort (fun (a, _) (b, _) -> compare a b) pages in
  let n_pages = List.length pages in
  let image = Bytes.create (n_pages * Storage.page_bytes) in
  List.iteri
    (fun p (_, words) ->
       if Array.length words <> words_per_page then
         raise (Malformed "bad page geometry");
       Array.iteri
         (fun w word ->
            Bytes.set_int64_le image ((p * Storage.page_bytes) + (w * 8)) word)
         words)
    pages;
  if Bytes.length image < 8 then raise (Malformed "empty image");
  let len = Int64.to_int (Bytes.get_int64_le image 0) in
  if len < 0 || len > Bytes.length image - 8 then
    raise (Malformed "bad payload length");
  Bytes.sub_string image 8 len

let save bank file =
  let st = Storage.create () in
  Storage.write st ~label:"bank" ~pages:(pages_of_text (to_text bank));
  Storage.flush st;
  Storage.save st file

let corrupt_result file reason =
  Trace.incr "fleet.bank_corrupt";
  Pipeline.record_quarantine ~key:("bank:" ^ file) ~reason;
  (create (), [ Printf.sprintf "bank %s: %s (starting cold)" file reason ])

let load file =
  if not (Sys.file_exists file) then (create (), [])
  else begin
    let st, store_warnings = Storage.load file in
    if not (Storage.contains st ~label:"bank") then
      corrupt_result file "no bank blob in store"
    else
      match Storage.read st ~label:"bank" with
      | Error e -> corrupt_result file (Storage.describe e)
      | Ok pages ->
        (match of_text (text_of_pages pages) with
         | bank -> (bank, store_warnings)
         | exception Malformed why -> corrupt_result file why
         | exception _ -> corrupt_result file "unparseable bank payload")
  end
