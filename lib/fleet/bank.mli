(** The cross-device genome bank: the server-side memory of a crowdsourced
    deployment (precursor paper arXiv 1511.02603, §ROADMAP item 1).

    Search winners are recorded keyed by [(app, device-feature bucket)]
    ({!Device.bucket}); a later search over the same app warm-starts from
    the bank's genomes ({!Repro_search.Ga.run}'s [seed_genomes]), so the
    population as a whole keeps getting faster without any device
    re-paying for discovery.

    Persistence rides the content-addressed page store: the bank
    serializes to a deterministic byte image packed into
    {!Repro_os.Storage.page_bytes}-sized pages and saved through
    {!Repro_os.Storage.save}, so the on-disk artifact is byte-identical
    for equal contents and every page is checksummed.  A corrupted bank
    file degrades gracefully on load — the damage is routed into the
    process-wide quarantine log ({!Repro_core.Pipeline.record_quarantine})
    and the search proceeds cold, exactly like any other untrustworthy
    artifact. *)

(** One recorded winner. *)
type entry = {
  e_app : string;
  e_bucket : string;          (** {!Device.bucket} of the contributors *)
  e_genome : Repro_search.Genome.t;
  e_fitness_ms : float;       (** pooled fleet fitness when recorded *)
  e_wins : int;               (** times a winner landed on this key *)
}

type t

val create : unit -> t

val record :
  t -> app:string -> bucket:string -> Repro_search.Genome.t ->
  fitness_ms:float -> unit
(** Offer a winner for [(app, bucket)].  The key keeps its best genome
    (lowest fitness); the win count increments either way.  Bumps the
    [fleet.bank_records] trace counter. *)

val lookup : t -> app:string -> bucket:string -> Repro_search.Genome.t list
(** Warm-start seeds for a search: the matching bucket's genome first,
    then other buckets of the same app (by bucket name then fitness),
    deduplicated by {!Repro_search.Genome.canon}.  Deterministic order. *)

val entries : t -> entry list
(** All entries, sorted by [(app, bucket)]. *)

val size : t -> int

val save : t -> string -> unit
(** Serialize to [file] via the page store.  Byte-deterministic: equal
    bank contents produce identical files. *)

val load : string -> t * string list
(** Rebuild a bank from a {!save}d file, returning load warnings.  A
    missing file yields an empty bank; a damaged one (failed page
    checksum, torn payload, unparseable entry) yields an empty bank, a
    warning, a [fleet.bank_corrupt] counter bump, and a quarantine-log
    entry keyed ["bank:"^file]. *)
