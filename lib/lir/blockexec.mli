(** The block-fused LIR executor (ROADMAP item 2).

    Executes compiled binaries against the decode-time plans of
    {!Blockplan}: per-block micro-op streams with straightened goto chains,
    peephole-fused hot pairs, and straight-line segments that run on a
    local cycle accumulator after a single headroom check against the
    remaining fuel (hoisting the reference engine's per-instruction fuel
    checks).

    Contract: cycle accounting, observable memory, return values,
    profiler samples and crash/hang classification are bit-identical to
    {!Exec} — for conforming and non-conforming (guard-stripped,
    fault-injected, malformed) code alike.  [test/test_blockexec.ml] and
    the differential property in [test/test_fuzz.ml] enforce this in
    lockstep; [bench/main.exe exec] measures the speedup. *)

type engine = Ref | Fused

val engine_name : engine -> string
val engine_of_string : string -> engine option

val default_engine : unit -> engine
(** Process-wide default used by {!Repro_capture.Replay.run} when no
    engine is passed explicitly; starts as [Fused]. *)

val set_default_engine : engine -> unit

val run_plan :
  Repro_vm.Exec_ctx.t -> Blockplan.fplan -> Repro_vm.Value.t list ->
  Repro_vm.Value.t option
(** Execute one planned method.  Precondition: [ctx.sample_period <= 0]
    (the dispatcher falls back to {!Exec.run_func} for profiling replays).
    @raise Exec.Segfault, Repro_vm.Exec_ctx.App_exception, Timeout. *)

val dispatcher :
  Blockplan.t -> Binary.t ->
  (Repro_vm.Exec_ctx.t -> int -> Repro_vm.Value.t list ->
   Repro_vm.Value.t option)

val install : Repro_vm.Exec_ctx.t -> Binary.t -> unit
(** Plan the binary (through the digest-keyed cache) and install the fused
    dispatcher. *)

val install_engine : engine -> Repro_vm.Exec_ctx.t -> Binary.t -> unit
(** [install_engine Ref] is {!Exec.install}; [install_engine Fused] is
    {!install}. *)
