(** Canned optimization levels, standing in for LLVM's -O presets.

    None of them includes the two custom Android-specific passes
    (gc-check-elim, jni-to-intrinsic) or profile-guided devirtualization:
    those belong to the replay-driven search, which is how the GA finds
    headroom above -O3 (paper §5.1). *)

val o0 : Compile.spec
val o1 : Compile.spec
val o2 : Compile.spec
val o3 : Compile.spec

val all : (string * Compile.spec) list
(** Every preset with its canonical name, in ascending optimization order.
    The presets share leading genes, so compiling the family in order is a
    ready-made prefix-reuse workload for the stage cache. *)

val of_name : string -> Compile.spec option
(** "O0" | "O1" | "O2" | "O3" (case-insensitive). *)
