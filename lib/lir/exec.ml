module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast
module Hir = Repro_hgraph.Hir
module Mem = Repro_os.Mem
module Ctx = Repro_vm.Exec_ctx
module Value = Repro_vm.Value
module Cost = Repro_vm.Cost
module Interp = Repro_vm.Interp
module Jni = Repro_vm.Jni
module Faults = Repro_util.Faults
open Repro_vm.Value

exception Segfault of string

(* Instruction-cache pressure: functions much larger than the hot-code
   budget pay extra on every control transfer.  This is what makes blind
   unrolling/inlining a loss and gives the optimization space its
   characteristic non-monotonicity. *)
let icache_budget = 400
let icache_divisor = 150

(* Register pressure: values live across block boundaries beyond the
   physical register file spill; the reload cost is charged per control
   transfer.  Aggressive inlining and unrolling raise this. *)
let physical_registers = 24
let spill_divisor = 3

(* Read-only: [Binary.create] fills the [f_pressure] cache before a binary
   can cross domains, so the executor never writes shared function records
   (the old lazy fill here raced between Evalpool worker domains).  A
   function that bypassed [Binary.create] just recomputes. *)
let pressure_of (f : Hir.func) =
  match f.Hir.f_pressure with
  | Some p -> p
  | None -> Repro_hgraph.Analysis.pressure f

let fetch_penalty_of (f : Hir.func) =
  max 0 ((Hir.size f - icache_budget) / icache_divisor)
  + max 0 ((pressure_of f - physical_registers) / spill_divisor)

(* Lockstep observation point shared with the block-fused engine: when set,
   fires at every block entry with (method id, block id, cycles).  Both
   engines fire it at the same program points with the same cycle counts,
   which is what lets the differential tests dump the first divergent block
   instead of just "the run ended differently". *)
let block_hook : (int -> int -> int -> unit) option ref = ref None

let binop_cost (c : Cost.model) op (a : Value.t) =
  let is_float = match a with Vfloat _ -> true | Vint _ | Vbool _ | Vref _ -> false in
  match op with
  | Ast.Add | Ast.Sub -> if is_float then c.Cost.float_alu else c.Cost.int_alu
  | Ast.Mul -> if is_float then c.Cost.float_mul else c.Cost.int_mul
  | Ast.Div | Ast.Rem -> if is_float then c.Cost.float_div else c.Cost.int_div
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr -> c.Cost.int_alu
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    if is_float then c.Cost.float_alu else c.Cost.int_alu
  | Ast.Land | Ast.Lor -> c.Cost.int_alu

(* ARM-style division: no trap, x/0 = 0 and x%0 = x. *)
let eval_binop_arm op a b =
  match op, b with
  | Ast.Div, Vint 0 -> Vint 0
  | Ast.Rem, Vint 0 -> a
  | _ -> Interp.eval_binop op a b

let zero_like = function
  | Vint _ -> Vint 0
  | Vfloat _ -> Vfloat 0.0
  | Vbool _ -> Vbool false
  | Vref _ -> Vref 0

(* A corrupted return value must stay the same shape (the callers' cost
   model switches on it) but differ under [Value.equal]. *)
let perturb_value = function
  | Vint x -> Vint (x + 1)
  | Vfloat x -> Vfloat (x +. 1.0)
  | Vbool b -> Vbool (not b)
  | Vref a -> Vref (a + 8)

let run_func (ctx : Ctx.t) (f : Hir.func) args =
  let c = ctx.Ctx.cost in
  let mem = ctx.Ctx.mem in
  let regs = Array.make (max f.Hir.f_nregs 1) (Vint 0) in
  List.iteri (fun i v -> regs.(i) <- v) args;
  (* Executor fault points: armed only inside a [Faults.scoped] replay (a
     verified candidate replay), keyed by (scope, method) — the same
     function faults the same way on every call of that replay. *)
  let fault_wrong_ret =
    match Faults.scope_key () with
    | None -> false
    | Some sk ->
      let key = Faults.combine sk f.Hir.f_mid in
      if Faults.fire Faults.Exec_crash ~key then begin
        Faults.record Faults.Exec_crash;
        raise (Segfault "injected executor fault")
      end;
      if Faults.fire Faults.Exec_hang ~key then begin
        Faults.record Faults.Exec_hang;
        (* spin until the replay fuel declares the execution hung *)
        while true do
          Ctx.charge ctx 1_000_000
        done
      end;
      Faults.fire Faults.Exec_wrong_ret ~key
  in
  let fetch_penalty = fetch_penalty_of f in
  let charge n = Ctx.charge ctx n in
  let read addr =
    match Mem.read_word mem addr with
    | w -> w
    | exception Invalid_argument msg -> raise (Segfault msg)
  in
  let write addr v =
    match Mem.write_word mem addr v with
    | () -> ()
    | exception Invalid_argument msg -> raise (Segfault msg)
  in
  let as_ref v =
    match v with
    | Vref a -> a
    | Vint a -> a     (* guard-free code can feed integers as addresses *)
    | Vfloat _ | Vbool _ -> raise (Segfault "non-pointer value dereferenced")
  in
  let exec_instr i =
    match i with
    | Hir.Const (d, const) ->
      charge c.Cost.const;
      regs.(d) <-
        (match const with
         | B.Cint k -> Vint k
         | B.Cfloat x -> Vfloat x
         | B.Cbool b -> Vbool b
         | B.Cnull -> Value.null)
    | Hir.Move (d, s) ->
      charge c.Cost.move;
      regs.(d) <- regs.(s)
    | Hir.Binop (op, d, a, b) ->
      charge (binop_cost c op regs.(a));
      regs.(d) <- eval_binop_arm op regs.(a) regs.(b)
    | Hir.Fma (d, a, b, cc) ->
      charge c.Cost.float_mul;
      regs.(d) <-
        Vfloat
          (Float.fma (Value.to_float regs.(a)) (Value.to_float regs.(b))
             (Value.to_float regs.(cc)))
    | Hir.Select (d, cnd, a, b) ->
      charge c.Cost.int_alu;
      regs.(d) <- (if Value.is_truthy regs.(cnd) then regs.(a) else regs.(b))
    | Hir.Unop (Ast.Neg, d, a) ->
      (match regs.(a) with
       | Vint x ->
         charge c.Cost.int_alu;
         regs.(d) <- Vint (-x)
       | Vfloat x ->
         charge c.Cost.float_alu;
         regs.(d) <- Vfloat (-.x)
       | Vbool _ | Vref _ -> raise (Segfault "neg of non-number"))
    | Hir.Unop (Ast.Not, d, a) ->
      charge c.Cost.int_alu;
      regs.(d) <- Vbool (not (Value.to_bool regs.(a)))
    | Hir.I2f (d, a) ->
      charge c.Cost.float_conv;
      regs.(d) <- Vfloat (float_of_int (Value.to_int regs.(a)))
    | Hir.F2i (d, a) ->
      charge c.Cost.float_conv;
      regs.(d) <- Vint (int_of_float (Value.to_float regs.(a)))
    | Hir.NewObj (d, cid) -> regs.(d) <- Vref (Ctx.alloc_object ctx cid)
    | Hir.NewArr (d, _, len) ->
      regs.(d) <- Vref (Ctx.alloc_array ctx (Value.to_int regs.(len)))
    | Hir.GuardNull r ->
      charge c.Cost.null_check;
      if as_ref regs.(r) = 0 then raise (Ctx.App_exception Ctx.exc_null_pointer)
    | Hir.GuardBounds (i, l) ->
      charge c.Cost.bounds_check;
      let idx = Value.to_int regs.(i) and len = Value.to_int regs.(l) in
      if idx < 0 || idx >= len then
        raise (Ctx.App_exception Ctx.exc_out_of_bounds)
    | Hir.GuardDivZero r ->
      charge c.Cost.null_check;
      (match regs.(r) with
       | Vint 0 -> raise (Ctx.App_exception Ctx.exc_div_by_zero)
       | _ -> ())
    | Hir.LoadElem (k, d, a, i) ->
      charge c.Cost.load;
      let addr = Ctx.elem_addr (as_ref regs.(a)) (Value.to_int regs.(i)) in
      regs.(d) <- Value.of_word k (read addr)
    | Hir.StoreElem (_, a, i, v) ->
      charge c.Cost.store;
      let addr = Ctx.elem_addr (as_ref regs.(a)) (Value.to_int regs.(i)) in
      write addr (Value.to_word regs.(v))
    | Hir.LoadLen (d, a) ->
      charge c.Cost.load;
      regs.(d) <- Vint (Int64.to_int (read (as_ref regs.(a))))
    | Hir.LoadField (k, d, o, off) ->
      charge c.Cost.load;
      regs.(d) <- Value.of_word k (read (Ctx.field_addr (as_ref regs.(o)) off))
    | Hir.StoreField (_, o, v, off) ->
      charge c.Cost.store;
      write (Ctx.field_addr (as_ref regs.(o)) off) (Value.to_word regs.(v))
    | Hir.LoadClass (d, o) ->
      charge c.Cost.load;
      regs.(d) <- Vint (Int64.to_int (read (as_ref regs.(o))))
    | Hir.SGet (k, d, slot) ->
      charge c.Cost.load;
      regs.(d) <- Value.of_word k (read (Ctx.static_addr ctx slot))
    | Hir.SPut (_, slot, v) ->
      charge c.Cost.store;
      write (Ctx.static_addr ctx slot) (Value.to_word regs.(v))
    | Hir.CallStatic (ret, mid, argregs) ->
      charge c.Cost.call_overhead;
      let cargs = List.map (fun r -> regs.(r)) argregs in
      (match ret, Ctx.invoke ctx mid cargs with
       | Some d, Some v -> regs.(d) <- v
       | Some _, None | None, (Some _ | None) -> ())
    | Hir.CallVirtual (ret, slot, argregs, _site) ->
      charge (c.Cost.call_overhead + c.Cost.virtual_extra + c.Cost.load);
      let cargs = List.map (fun r -> regs.(r)) argregs in
      let recv =
        match argregs with
        | r :: _ -> as_ref regs.(r)
        | [] -> raise (Segfault "virtual call without receiver")
      in
      let cid = Int64.to_int (read recv) in
      if cid < 0 || cid >= Array.length ctx.Ctx.dx.B.dx_classes then
        raise (Segfault "corrupt object header in virtual dispatch");
      let vtable = ctx.Ctx.dx.B.dx_classes.(cid).B.ci_vtable in
      if slot < 0 || slot >= Array.length vtable then
        raise (Segfault "vtable slot out of range");
      (match ret, Ctx.invoke ctx vtable.(slot) cargs with
       | Some d, Some v -> regs.(d) <- v
       | Some _, None | None, (Some _ | None) -> ())
    | Hir.CallNative (ret, n, argregs, mode) ->
      let cargs = List.map (fun r -> regs.(r)) argregs in
      let result =
        match mode with
        | Hir.Jni -> Jni.call ctx n cargs
        | Hir.Intrinsic -> Jni.call ~as_native:false ctx n cargs
      in
      (match ret, result with
       | Some d, Some v -> regs.(d) <- v
       | Some _, None | None, (Some _ | None) -> ())
    | Hir.SuspendCheck -> Ctx.safepoint ctx
    | Hir.ALoadC _ | Hir.AStoreC _ | Hir.ArrLenC _ | Hir.IGetC _ | Hir.IPutC _ ->
      failwith "Exec: composite instruction reached the executor \
                (method was not translated)"
  in
  let branch_cost hint taken =
    charge (c.Cost.branch + fetch_penalty);
    match hint, taken with
    | Hir.Predict_taken, true | Hir.Predict_not_taken, false -> ()
    | Hir.Predict_taken, false | Hir.Predict_not_taken, true ->
      charge c.Cost.branch_miss
    | Hir.Predict_none, _ -> charge (c.Cost.branch_miss / 2)
  in
  let result = ref None in
  let running = ref true in
  let bid = ref f.Hir.f_entry in
  (* Type confusion in guard-stripped code surfaces as Invalid_argument from
     the value accessors; on hardware that is a wild access, i.e. a crash. *)
  let exec_instr i =
    try exec_instr i with Invalid_argument msg -> raise (Segfault msg)
  in
  while !running do
    (match !block_hook with
     | Some h -> h f.Hir.f_mid !bid ctx.Ctx.cycles
     | None -> ());
    let b = Hir.block f !bid in
    List.iter exec_instr b.Hir.insns;
    (match b.Hir.term with
     | Hir.Goto t ->
       charge (c.Cost.branch + fetch_penalty);
       bid := t
     | Hir.If (cond, a, rhs, bt, be, hint) ->
       let vb =
         match rhs with
         | Some rb -> regs.(rb)
         | None -> zero_like regs.(a)
       in
       let taken = Interp.eval_cond cond regs.(a) vb in
       branch_cost hint taken;
       bid := if taken then bt else be
     | Hir.Ret r ->
       charge c.Cost.int_alu;
       result := Option.map (fun r -> regs.(r)) r;
       (match !result with
        | Some v when fault_wrong_ret ->
          Faults.record Faults.Exec_wrong_ret;
          result := Some (perturb_value v)
        | Some _ | None -> ());
       running := false
     | Hir.ThrowT r ->
       charge c.Cost.throw_cost;
       raise (Ctx.App_exception (Value.to_int regs.(r))))
  done;
  !result

let dispatcher binary =
  fun ctx mid args ->
    match Binary.find binary mid with
    | Some f -> run_func ctx f args
    | None -> Interp.interpret ctx mid args

let install ctx binary = Ctx.set_dispatch ctx (dispatcher binary)
