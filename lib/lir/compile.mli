(** End-to-end compilation driver: bytecode -> HGraph -> translate ->
    (pass sequence) -> binary.

    Mirrors the paper's `opt`/`llc` invocation: a sequence of named passes
    with integer parameters is applied to every compilable method of the
    region.  Compile failures are first-class outcomes, matching Figure 1's
    taxonomy: invalid parameters raise {!Compile_error}; code-size or
    pass-work explosion raises {!Compile_timeout}.

    The driver is {e staged}: the genome-independent front-end
    (bytecode→HGraph→translate, including the profile-specialized
    variant) is hoisted into a shared {!frontend} built once per (app,
    capture, profile), and per-pass-prefix IR states are memoized in
    {!Stagecache} so compiling a genome resumes at its first gene that
    diverges from any previously compiled genome.  Both accelerators are
    result-transparent: outcomes, binaries and timeout classification are
    byte-identical with them on or off (cached prefixes replay their
    recorded work charges through the live counter). *)

exception Compile_error of string
exception Compile_timeout

type spec = (string * int array) list
(** Pass sequence: (catalog name, parameter values). *)

val size_limit : int
(** Per-function instruction ceiling; beyond it the compile times out. *)

val work_limit : int
(** Total instructions processed across passes before timing out. *)

val with_work_limit : int -> (unit -> 'a) -> 'a
(** Run [f] under a temporary work-limit ceiling (restored on exit, also
    on raise).  A test hook for pinning compiles exactly at the timeout
    boundary; call sequentially, with no compiles running on other
    domains. *)

val android_binary : Repro_dex.Bytecode.dexfile -> int list -> Binary.t
(** Baseline: the Android pipeline per method, then translation.  Methods
    that are uncompilable are silently skipped (they stay interpreted). *)

type frontend
(** A hoisted front-end: dexfile + dispatch profile + lazily memoized
    translated unoptimized bodies (shared with the inliner), plus the
    content digest that namespaces this front-end's entries in the stage
    cache.  Immutable once built except for the mutex-protected memo
    table; safe to share across Evalpool worker domains. *)

val frontend :
  ?profile:(Repro_hgraph.Hir.site -> (int * int) list) ->
  ?prewarm:int list ->
  key:string -> Repro_dex.Bytecode.dexfile -> frontend
(** Build a front-end for a (dexfile, profile) pair.  [key] must
    content-address the pair (e.g. app name + profile digest): equal keys
    may share stage-cache entries, so unequal (dx, profile) contents must
    get unequal keys.  [prewarm] eagerly translates the given methods
    (typically the region) so search-time lookups are read-mostly. *)

val frontend_digest : frontend -> string
(** The digest namespacing this front-end's stage-cache entries. *)

val llvm_binary_staged : frontend -> spec -> int list -> Binary.t
(** The staged LLVM-backend path: apply the pass sequence to every
    compilable method of the region, resuming each method from the
    longest stage-cached pass prefix (and publishing every newly reached
    prefix).  Results are byte-identical to {!llvm_binary} on the same
    inputs, with or without the stage cache, at any worker count.
    @raise Compile_error on unknown passes or invalid parameters.
    @raise Compile_timeout when budgets are exceeded. *)

val llvm_binary :
  ?profile:(Repro_hgraph.Hir.site -> (int * int) list) ->
  Repro_dex.Bytecode.dexfile -> spec -> int list -> Binary.t
(** One-shot convenience wrapper: build a private front-end and compile.
    Front-end work is re-done per call and the shared stage cache is
    bypassed (an arbitrary [?profile] closure has no content address) —
    searches should build a {!frontend} once and use
    {!llvm_binary_staged}.
    @raise Compile_error on unknown passes or invalid parameters.
    @raise Compile_timeout when budgets are exceeded. *)

val pass_env :
  ?profile:(Repro_hgraph.Hir.site -> (int * int) list) ->
  Repro_dex.Bytecode.dexfile -> Passes.env
