module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast
module Hir = Repro_hgraph.Hir
module T = Repro_hgraph.Transforms
module Cfg = Repro_util.Cfg
open Hir

type env = {
  dx : B.dexfile;
  get_func : int -> Hir.func option;
  profile : (Hir.site -> (int * int) list) option;
}

type param = { pname : string; pmin : int; pmax : int; pdefault : int }

type t = {
  name : string;
  params : param list;
  safe : bool;
  descr : string;
  apply : env -> int array -> Hir.func -> Hir.func;
}

exception Bad_param of string

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let all_bids f =
  Hashtbl.fold (fun bid _ acc -> bid :: acc) f.f_blocks [] |> List.sort Int.compare

(* Unique defining instruction of a register, if it has exactly one def. *)
let single_def f =
  let defs : (int, Hir.instr option) Hashtbl.t = Hashtbl.create 32 in
  Hir.iter_blocks f (fun _ b ->
      List.iter
        (fun i ->
           match Hir.def_of i with
           | Some d ->
             if Hashtbl.mem defs d then Hashtbl.replace defs d None
             else Hashtbl.replace defs d (Some i)
           | None -> ())
        b.insns);
  fun r -> Option.join (Hashtbl.find_opt defs r)

let rec const_of_reg sdef r =
  match sdef r with
  | Some (Const (_, c)) -> Some c
  | Some (Move (_, s)) -> const_of_reg sdef s
  | _ -> None

(* Clone a set of blocks with a bid mapping; register names are reused on
   purpose: the dialect is not SSA, so copies share the caller's registers
   and values flow through sequentially. *)
let clone_blocks f body =
  let mapping = Hashtbl.create 8 in
  List.iter
    (fun bid ->
       let nb = f.f_next_bid in
       f.f_next_bid <- nb + 1;
       Hashtbl.replace mapping bid nb)
    body;
  List.iter
    (fun bid ->
       let b = Hir.block f bid in
       let remap t =
         match Hashtbl.find_opt mapping t with Some t' -> t' | None -> t
       in
       let term =
         match b.term with
         | Goto t -> Goto (remap t)
         | If (c, a, o, bt, be, h) -> If (c, a, o, remap bt, remap be, h)
         | (Ret _ | ThrowT _) as t -> t
       in
       Hashtbl.replace f.f_blocks (Hashtbl.find mapping bid)
         { insns = b.insns; term })
    body;
  mapping

let retarget_in_blocks f bids ~from ~to_ =
  List.iter
    (fun bid ->
       let b = Hir.block f bid in
       b.term <- Hir.retarget_term ~from ~to_ b.term)
    bids

(* Innermost loops: loops containing no other loop's header. *)
let innermost_loops loops =
  List.filter
    (fun l ->
       not
         (List.exists
            (fun l' ->
               l'.Cfg.header <> l.Cfg.header
               && List.mem l'.Cfg.header l.Cfg.body)
            loops))
    loops

let loop_size f l =
  List.fold_left
    (fun acc bid -> acc + List.length (Hir.block f bid).insns + 1)
    0 l.Cfg.body

(* ------------------------------------------------------------------ *)
(* Loop restructuring                                                  *)
(* ------------------------------------------------------------------ *)

(* Unroll by chaining [k] copies of the whole loop (header test included):
   back edges of copy j enter copy j+1's header; the last copy returns to
   the original header.  Correct for any trip count.  Suspend checks in the
   latch blocks are duplicated into every copy — the behaviour the custom
   GC-check pass cleans up (paper §3.5). *)
let unroll ?(outer = false) ~factor ~size_limit f =
  let f = Hir.copy f in
  let g = Hir.cfg f in
  let loops =
    if outer then Cfg.loops g else innermost_loops (Cfg.loops g)
  in
  List.iter
    (fun l ->
       if loop_size f l <= size_limit then begin
         let header = l.Cfg.header in
         let copies =
           Array.init (factor - 1) (fun _ -> clone_blocks f l.Cfg.body)
         in
         let header_of_copy j = Hashtbl.find copies.(j) header in
         (* original back edges -> first copy *)
         retarget_in_blocks f l.Cfg.back_edges ~from:header ~to_:(header_of_copy 0);
         (* copy j back edges -> copy j+1 (or original header for the last) *)
         Array.iteri
           (fun j mapping ->
              let latches =
                List.map (fun bid -> Hashtbl.find mapping bid) l.Cfg.back_edges
              in
              let next =
                if j + 1 < Array.length copies then header_of_copy (j + 1)
                else header
              in
              retarget_in_blocks f latches ~from:(header_of_copy j) ~to_:next)
           copies
       end)
    loops;
  f

(* Peel one iteration: entry edges run through a copy of the loop first. *)
let peel ~size_limit f =
  let f = Hir.copy f in
  let g = Hir.cfg f in
  let loops = innermost_loops (Cfg.loops g) in
  List.iter
    (fun l ->
       if loop_size f l <= size_limit then begin
         let header = l.Cfg.header in
         let mapping = clone_blocks f l.Cfg.body in
         let copy_header = Hashtbl.find mapping header in
         (* copy's back edges continue into the original loop *)
         let copy_latches =
           List.map (fun bid -> Hashtbl.find mapping bid) l.Cfg.back_edges
         in
         retarget_in_blocks f copy_latches ~from:copy_header ~to_:header;
         (* outside entries enter the copy *)
         List.iter
           (fun bid ->
              if not (List.mem bid l.Cfg.body) then begin
                let b = Hir.block f bid in
                b.term <- Hir.retarget_term ~from:header ~to_:copy_header b.term
              end)
           (Cfg.preds g header);
         if f.f_entry = header then f.f_entry <- copy_header
       end)
    loops;
  f

(* Loop unswitching: an [If] on loop-invariant operands selects between two
   specialized copies of the loop. *)
let unswitch ~size_limit f =
  let f = Hir.copy f in
  let g = Hir.cfg f in
  let loops = innermost_loops (Cfg.loops g) in
  List.iter
    (fun l ->
       if loop_size f l <= size_limit then begin
         let header = l.Cfg.header in
         let defined_in_loop = Hashtbl.create 16 in
         List.iter
           (fun bid ->
              List.iter
                (fun i ->
                   match Hir.def_of i with
                   | Some d -> Hashtbl.replace defined_in_loop d ()
                   | None -> ())
                (Hir.block f bid).insns)
           l.Cfg.body;
         let invariant r = not (Hashtbl.mem defined_in_loop r) in
         (* candidate: a non-header block in the loop with an invariant If
            whose both targets stay inside the loop *)
         let candidate =
           List.find_opt
             (fun bid ->
                bid <> header
                &&
                match (Hir.block f bid).term with
                | If (_, a, rhs, bt, be, _) ->
                  invariant a
                  && (match rhs with Some b -> invariant b | None -> true)
                  && List.mem bt l.Cfg.body && List.mem be l.Cfg.body
                | Goto _ | Ret _ | ThrowT _ -> false)
             l.Cfg.body
         in
         match candidate with
         | None -> ()
         | Some x ->
           (match (Hir.block f x).term with
            | If (c, a, rhs, bt, be, _) ->
              let mapping = clone_blocks f l.Cfg.body in
              let copy_header = Hashtbl.find mapping header in
              (* original loop: condition assumed true *)
              (Hir.block f x).term <- Goto bt;
              (* copy: condition assumed false *)
              let x' = Hashtbl.find mapping x in
              (Hir.block f x').term <- Goto (Hashtbl.find mapping be);
              (* dispatch block in front of the loop *)
              let dispatch =
                Hir.add_block f []
                  (If (c, a, rhs, header, copy_header, Predict_none))
              in
              let outside =
                List.filter (fun bid -> not (List.mem bid l.Cfg.body))
                  (Cfg.preds g header)
              in
              List.iter
                (fun bid ->
                   let b = Hir.block f bid in
                   b.term <- Hir.retarget_term ~from:header ~to_:dispatch b.term)
                outside;
              if f.f_entry = header then f.f_entry <- dispatch
            | Goto _ | Ret _ | ThrowT _ -> ())
       end)
    loops;
  f

(* ------------------------------------------------------------------ *)
(* If-conversion: small diamonds / half-diamonds become branch-free     *)
(* conditional moves                                                    *)
(* ------------------------------------------------------------------ *)

let binop_of_cond = function
  | B.Ceq -> Ast.Eq | B.Cne -> Ast.Ne | B.Clt -> Ast.Lt
  | B.Cle -> Ast.Le | B.Cgt -> Ast.Gt | B.Cge -> Ast.Ge

(* A "trivial arm": an empty or single-pure-def block ending in Goto. *)
let arm_of f g bid =
  match Hashtbl.find_opt f.f_blocks bid with
  | Some { insns; term = Goto join } when List.length (Cfg.preds g bid) = 1 ->
    (match insns with
     | [] -> Some (None, join)
     | [ (Move (d, _) as i) ] | [ (Const (d, _) as i) ] -> Some (Some (d, i), join)
     | _ -> None)
  | _ -> None

let if_convert f =
  let f = Hir.copy f in
  let changed = ref true in
  while !changed do
    changed := false;
    let g = Hir.cfg f in
    List.iter
      (fun bid ->
         if not !changed then
           match Hashtbl.find_opt f.f_blocks bid with
           | Some b ->
             (match b.term with
              | If (cond, x, Some y, bt, be, _) when bt <> be ->
                (match arm_of f g bt, arm_of f g be with
                 (* full diamond: both arms assign the same register *)
                 | Some (Some (d1, i1), j1), Some (Some (d2, i2), j2)
                   when d1 = d2 && j1 = j2 ->
                   let t = Hir.fresh_reg f in
                   let a = Hir.fresh_reg f in
                   let c = Hir.fresh_reg f in
                   b.insns <-
                     b.insns
                     @ [ Binop (binop_of_cond cond, c, x, y);
                         Hir.rename_def a i1; Hir.rename_def t i2;
                         Select (d1, c, a, t) ];
                   b.term <- Goto j1;
                   Hashtbl.remove f.f_blocks bt;
                   Hashtbl.remove f.f_blocks be;
                   changed := true
                 (* diamond with one empty arm *)
                 | Some (Some (d1, i1), j1), Some (None, j2)
                   when j1 = j2 ->
                   let a = Hir.fresh_reg f in
                   let c = Hir.fresh_reg f in
                   b.insns <-
                     b.insns
                     @ [ Binop (binop_of_cond cond, c, x, y);
                         Hir.rename_def a i1; Select (d1, c, a, d1) ];
                   b.term <- Goto j1;
                   Hashtbl.remove f.f_blocks bt;
                   Hashtbl.remove f.f_blocks be;
                   changed := true
                 | Some (None, j1), Some (Some (d2, i2), j2)
                   when j1 = j2 ->
                   let a = Hir.fresh_reg f in
                   let c = Hir.fresh_reg f in
                   b.insns <-
                     b.insns
                     @ [ Binop (binop_of_cond cond, c, x, y);
                         Hir.rename_def a i2; Select (d2, c, d2, a) ];
                   b.term <- Goto j1;
                   Hashtbl.remove f.f_blocks bt;
                   Hashtbl.remove f.f_blocks be;
                   changed := true
                 (* half diamond: then-arm assigns, else falls through *)
                 | Some (Some (d1, i1), j1), None when j1 = be ->
                   let a = Hir.fresh_reg f in
                   let c = Hir.fresh_reg f in
                   b.insns <-
                     b.insns
                     @ [ Binop (binop_of_cond cond, c, x, y);
                         Hir.rename_def a i1; Select (d1, c, a, d1) ];
                   b.term <- Goto be;
                   Hashtbl.remove f.f_blocks bt;
                   changed := true
                 | None, Some (Some (d2, i2), j2) when j2 = bt ->
                   let a = Hir.fresh_reg f in
                   let c = Hir.fresh_reg f in
                   b.insns <-
                     b.insns
                     @ [ Binop (binop_of_cond cond, c, x, y);
                         Hir.rename_def a i2; Select (d2, c, d2, a) ];
                   b.term <- Goto bt;
                   Hashtbl.remove f.f_blocks be;
                   changed := true
                 | _ -> ())
              | _ -> ())
           | None -> ())
      (Cfg.nodes g)
  done;
  f

(* ------------------------------------------------------------------ *)
(* Code sinking: move a pure single-def computation into the unique     *)
(* successor that uses it (off the paths that don't)                    *)
(* ------------------------------------------------------------------ *)

let sink f =
  let f = Hir.copy f in
  let g = Hir.cfg f in
  let uses_in_block b r =
    List.exists (fun i -> List.mem r (Hir.uses_of i)) b.insns
    || List.mem r (Hir.uses_of_term b.term)
  in
  List.iter
    (fun bid ->
       match Hashtbl.find_opt f.f_blocks bid with
       | None -> ()
       | Some b ->
         (match b.term with
          | If (_, _, _, bt, be, _) when bt <> be ->
            (* operands must not be redefined between the instruction and
               the end of the block *)
            let redefined_after i r =
              let rec scan seen = function
                | [] -> false
                | i' :: rest ->
                  if seen then
                    (Hir.def_of i' = Some r) || scan seen rest
                  else scan (i' == i) rest
              in
              scan false b.insns
            in
            let sinkable, kept =
              List.partition
                (fun i ->
                   Hir.is_pure i
                   && (match i with Move _ -> false | _ -> true)
                   && List.for_all
                        (fun r -> not (redefined_after i r))
                        (Hir.uses_of i)
                   &&
                   (match Hir.def_of i with
                    | Some d ->
                      (* used in exactly one successor, defined once, not
                         used later in this block or its terminator, not
                         live anywhere else (approximated by: the other
                         successor and its reachable blocks never read d
                         before writing it — we use the cheap safe check
                         that d appears in no other block at all) *)
                      let appears_elsewhere =
                        List.exists
                          (fun obid ->
                             obid <> bid && obid <> bt
                             &&
                             match Hashtbl.find_opt f.f_blocks obid with
                             | Some ob ->
                               uses_in_block ob d
                               || List.exists
                                    (fun i' -> Hir.def_of i' = Some d)
                                    ob.insns
                             | None -> false)
                          (Cfg.nodes g)
                      in
                      let used_after_here =
                        uses_in_block { b with insns = [] } d
                      in
                      let bt_block = Hashtbl.find_opt f.f_blocks bt in
                      (not appears_elsewhere) && (not used_after_here)
                      && List.length (Cfg.preds g bt) = 1
                      && (match bt_block with
                          | Some btb -> uses_in_block btb d
                          | None -> false)
                      && not
                           (List.exists
                              (fun i' ->
                                 i' != i && List.mem d (Hir.uses_of i'))
                              b.insns)
                    | None -> false))
                b.insns
            in
            ignore be;
            (match sinkable with
             | [] -> ()
             | moved ->
               b.insns <- kept;
               let btb = Hir.block f bt in
               btb.insns <- moved @ btb.insns)
          | _ -> ()))
    (Cfg.nodes g);
  f

(* ------------------------------------------------------------------ *)
(* Custom Android-specific passes (paper §3.5)                         *)
(* ------------------------------------------------------------------ *)

(* Remove duplicated GC suspend checks: every cycle in a reducible CFG goes
   through some back edge, so keeping the checks in back-edge source blocks
   (one per block) is enough. *)
let gc_check_elim f =
  let f = Hir.copy f in
  let g = Hir.cfg f in
  let latches =
    List.concat_map (fun l -> l.Cfg.back_edges) (Cfg.loops g)
    |> List.sort_uniq compare
  in
  Hir.iter_blocks f (fun bid b ->
      if List.mem bid latches then begin
        (* keep only the first check in a latch *)
        let seen = ref false in
        b.insns <-
          List.filter
            (fun i ->
               match i with
               | SuspendCheck ->
                 if !seen then false
                 else begin
                   seen := true;
                   true
                 end
               | _ -> true)
            b.insns
      end
      else b.insns <- List.filter (fun i -> i <> SuspendCheck) b.insns);
  f

let jni_to_intrinsic f =
  let f = Hir.copy f in
  Hir.iter_blocks f (fun _ b ->
      b.insns <-
        List.map
          (fun i ->
             match i with
             | CallNative (ret, n, args, Jni) when B.native_has_intrinsic n ->
               CallNative (ret, n, args, Intrinsic)
             | _ -> i)
          b.insns);
  f

(* ------------------------------------------------------------------ *)
(* Guard elimination                                                   *)
(* ------------------------------------------------------------------ *)

(* Block-local de-duplication of guards, keyed on single-assignment facts
   within the block (a guard stays valid until its register is redefined).
   Also removes null guards on registers freshly defined by an allocation
   in the same block. *)
let guard_dedupe f =
  let f = Hir.copy f in
  Hir.iter_blocks f (fun _ b ->
      let nonnull = Hashtbl.create 8 in
      let bounds_ok = Hashtbl.create 8 in
      let nonzero = Hashtbl.create 8 in
      let kill d =
        Hashtbl.remove nonnull d;
        Hashtbl.remove nonzero d;
        let stale =
          Hashtbl.fold
            (fun ((i, l) as k) () acc -> if i = d || l = d then k :: acc else acc)
            bounds_ok []
        in
        List.iter (Hashtbl.remove bounds_ok) stale
      in
      b.insns <-
        List.filter
          (fun i ->
             let keep =
               match i with
               | GuardNull r ->
                 if Hashtbl.mem nonnull r then false
                 else begin
                   Hashtbl.replace nonnull r ();
                   true
                 end
               | GuardBounds (idx, len) ->
                 if Hashtbl.mem bounds_ok (idx, len) then false
                 else begin
                   Hashtbl.replace bounds_ok (idx, len) ();
                   true
                 end
               | GuardDivZero r ->
                 if Hashtbl.mem nonzero r then false
                 else begin
                   Hashtbl.replace nonzero r ();
                   true
                 end
               | _ -> true
             in
             (match Hir.def_of i with
              | Some d ->
                kill d;
                (match i with
                 | NewObj (d, _) | NewArr (d, _, _) -> Hashtbl.replace nonnull d ()
                 | _ -> ())
              | None -> ());
             keep)
          b.insns);
  f

(* Sound bounds-check elimination for the canonical counted loop:
   i starts at a non-negative constant, is increased by one positive
   constant step per iteration, and the loop condition is [i < len(a)].
   Guards [GuardBounds (i, L)] with L a length of the same array die. *)
let bce f =
  let f = Hir.copy f in
  let g = Hir.cfg f in
  let sdef = single_def f in
  let arr_of_len r =
    match sdef r with
    | Some (LoadLen (_, a)) -> Some a
    | _ -> None
  in
  List.iter
    (fun l ->
       let header = l.Cfg.header in
       let body = l.Cfg.body in
       let hb = Hir.block f header in
       match hb.term with
       | If (B.Clt, i, Some lim, bt, be, _)
         when List.mem bt body && not (List.mem be body) ->
         let defined_in_loop r =
           List.exists
             (fun bid ->
                List.exists
                  (fun ins -> Hir.def_of ins = Some r)
                  (Hir.block f bid).insns)
             body
         in
         (* [lim] itself may be re-loaded in the header each iteration; what
            matters is that it is a length of an array register that never
            changes inside the loop (lengths are immutable). *)
         let array_of_lim = arr_of_len lim in
         if
           array_of_lim <> None
           && not (defined_in_loop (Option.get array_of_lim))
         then begin
           (* collect defs of i inside the loop *)
           let defs_of_i =
             List.concat_map
               (fun bid ->
                  List.filter
                    (fun ins -> Hir.def_of ins = Some i)
                    (Hir.block f bid).insns)
               body
           in
           let positive_const r =
             match const_of_reg sdef r with
             | Some (B.Cint k) -> k > 0
             | _ -> false
           in
           let increment_ok =
             match defs_of_i with
             | [ Binop (Ast.Add, _, a, b) ] ->
               (a = i && positive_const b) || (b = i && positive_const a)
             | [ Move (_, t) ] ->
               (match sdef t with
                | Some (Binop (Ast.Add, _, a, b)) ->
                  (a = i && positive_const b) || (b = i && positive_const a)
                | _ -> false)
             | _ -> false
           in
           (* all defs of i outside the loop must be non-negative consts *)
           let init_ok = ref true in
           Hir.iter_blocks f (fun bid blk ->
               if not (List.mem bid body) then
                 List.iter
                   (fun ins ->
                      if Hir.def_of ins = Some i then
                        match ins with
                        | Const (_, B.Cint k) when k >= 0 -> ()
                        | Move (_, s)
                          when (match const_of_reg sdef s with
                              | Some (B.Cint k) -> k >= 0
                              | _ -> false) -> ()
                        | _ -> init_ok := false)
                   blk.insns);
           if increment_ok && !init_ok then
             (* only blocks strictly inside the guarded region: every
                non-header body block runs with i < lim established *)
             List.iter
               (fun bid ->
                  if bid <> header then begin
                    let blk = Hir.block f bid in
                    blk.insns <-
                      List.filter
                        (fun ins ->
                           match ins with
                           | GuardBounds (idx, len) when idx = i ->
                             not
                               (len = lim
                                || (arr_of_len len <> None
                                    && arr_of_len len = array_of_lim))
                           | _ -> true)
                        blk.insns
                  end)
               body
         end
       | _ -> ())
    (Cfg.loops g);
  f

(* ------------------------------------------------------------------ *)
(* Guard hoisting (paper §7 future work: removing checks that need not  *)
(* run every iteration).                                                *)
(*                                                                      *)
(* A guard sitting in a loop's header block executes on every           *)
(* iteration, including the first; if its operands are loop-invariant   *)
(* its outcome is the same every time, so a single execution in the     *)
(* preheader is equivalent — including the thrown exception, which      *)
(* would have fired on iteration one anyway (the header runs at least   *)
(* once whenever the loop is entered).                                  *)
(* ------------------------------------------------------------------ *)

let guard_hoist f =
  let f = Hir.copy f in
  let loops = Cfg.loops (Hir.cfg f) in
  List.iter
    (fun l ->
       let header = l.Cfg.header in
       let body = l.Cfg.body in
       let defined_in_loop = Hashtbl.create 16 in
       List.iter
         (fun bid ->
            match Hashtbl.find_opt f.f_blocks bid with
            | Some b ->
              List.iter
                (fun i ->
                   match Hir.def_of i with
                   | Some d -> Hashtbl.replace defined_in_loop d ()
                   | None -> ())
                b.insns
            | None -> ())
         body;
       let invariant r = not (Hashtbl.mem defined_in_loop r) in
       match Hashtbl.find_opt f.f_blocks header with
       | None -> ()
       | Some hb ->
         (* only guards in the header's effect-free prefix may move: past
            the first side effect (or non-hoistable guard) an exception
            would be reordered with observable behaviour *)
         let hoisted = ref [] in
         let stopped = ref false in
         hb.insns <-
           List.filter
             (fun i ->
                if !stopped then true
                else begin
                  let hoistable =
                    match i with
                    | GuardNull r | GuardDivZero r -> invariant r
                    | GuardBounds (a, b) -> invariant a && invariant b
                    | _ -> false
                  in
                  if hoistable then begin
                    hoisted := i :: !hoisted;
                    false
                  end
                  else begin
                    (match i with
                     | SuspendCheck -> ()  (* no observable effect *)
                     | _ -> if not (Hir.is_pure i) then stopped := true);
                    true
                  end
                end)
             hb.insns;
         if !hoisted <> [] then begin
           let g = Hir.cfg f in
           let pre = Hir.add_block f (List.rev !hoisted) (Goto header) in
           List.iter
             (fun bid ->
                if (not (List.mem bid body)) && bid <> pre then
                  match Hashtbl.find_opt f.f_blocks bid with
                  | Some b ->
                    b.term <- Hir.retarget_term ~from:header ~to_:pre b.term
                  | None -> ())
             (Cfg.nodes g);
           if f.f_entry = header then f.f_entry <- pre
         end)
    loops;
  f

(* ------------------------------------------------------------------ *)
(* Profile-guided speculative devirtualization (paper §3.4)            *)
(* ------------------------------------------------------------------ *)

let devirt env ~threshold_pct f =
  match env.profile with
  | None -> f
  | Some profile ->
    let f = Hir.copy f in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let found = ref None in
      List.iter
        (fun bid ->
           if !found = None then begin
             let b = Hir.block f bid in
             let rec split pre = function
               | [] -> ()
               | (CallVirtual (ret, slot, args, site) as call) :: post ->
                 let hist = profile site in
                 let total = List.fold_left (fun a (_, n) -> a + n) 0 hist in
                 (match hist with
                  | (cid, n) :: _
                    when total > 0 && n * 100 >= threshold_pct * total ->
                    let vtable = env.dx.B.dx_classes.(cid).B.ci_vtable in
                    if slot < Array.length vtable then
                      found :=
                        Some (bid, List.rev pre, (ret, slot, args, site, cid,
                                                  vtable.(slot)), post)
                  | _ -> ());
                 if !found = None then split (call :: pre) post
               | i :: post -> split (i :: pre) post
             in
             split [] b.insns
           end)
        (all_bids f);
      match !found with
      | None -> ()
      | Some (bid, pre, (ret, slot, args, site, cid, target), post) ->
        continue_ := true;
        let b = Hir.block f bid in
        let recv = List.hd args in
        let t_class = Hir.fresh_reg f in
        let t_cid = Hir.fresh_reg f in
        let join = Hir.add_block f post b.term in
        let fast =
          Hir.add_block f [ CallStatic (ret, target, args) ] (Goto join)
        in
        let slow =
          Hir.add_block f
            [ CallVirtual (ret, slot, args, (fst site, -snd site - 1)) ]
            (Goto join)
        in
        b.insns <- pre @ [ LoadClass (t_class, recv); Const (t_cid, B.Cint cid) ];
        b.term <- If (B.Ceq, t_class, Some t_cid, fast, slow, Predict_taken)
    done;
    f

(* ------------------------------------------------------------------ *)
(* Unsafe passes                                                       *)
(* ------------------------------------------------------------------ *)

let strip_guards ~null ~bounds f =
  let f = Hir.copy f in
  Hir.iter_blocks f (fun _ b ->
      b.insns <-
        List.filter
          (fun i ->
             match i with
             | GuardNull _ -> not null
             | GuardBounds _ -> not bounds
             | _ -> true)
          b.insns);
  f

(* Fast-math, two value-changing rewrites:
   - reciprocal: x /. c  ->  x *. (1 /. c) (last-ulp changes for most c);
   - FMA contraction: mul feeding an add/sub fuses into a single-rounding
     multiply-add, the classic -ffast-math/-ffp-contract effect.
   Bit-exact replay verification rejects binaries whose results moved. *)
let fast_math ~recip ~contract env f =
  let f = Hir.copy f in
  let sdef = single_def f in
  (* chase single-def move chains so the pattern survives the naive
     translation's redundant copies *)
  let rec sdef_through_moves r =
    match sdef r with
    | Some (Move (_, s)) -> sdef_through_moves s
    | d -> d
  in
  let kinds = Translate.infer_kinds env.dx f in
  let is_float r = r < Array.length kinds && kinds.(r) = B.Kfloat in
  Hir.iter_blocks f (fun _ b ->
      b.insns <-
        List.concat_map
          (fun i ->
             match i with
             | Binop (Ast.Div, d, a, den) when recip ->
               (match const_of_reg sdef den with
                | Some (B.Cfloat cst) when Float.is_finite cst && cst <> 0.0 ->
                  let r = Hir.fresh_reg f in
                  [ Const (r, B.Cfloat (1.0 /. cst)); Binop (Ast.Mul, d, a, r) ]
                | _ -> [ i ])
             | Binop (Ast.Add, d, x, y) when contract && is_float d ->
               (match sdef_through_moves x, sdef_through_moves y with
                | Some (Binop (Ast.Mul, _, a, b)), _ when is_float x ->
                  [ Fma (d, a, b, y) ]
                | _, Some (Binop (Ast.Mul, _, a, b)) when is_float y ->
                  [ Fma (d, a, b, x) ]
                | _ -> [ i ])
             | Binop (Ast.Sub, d, x, y) when contract && is_float d ->
               (match sdef_through_moves y with
                | Some (Binop (Ast.Mul, _, a, b)) when is_float y ->
                  (* x - a*b = (-a)*b + x *)
                  let na = Hir.fresh_reg f in
                  [ Unop (Ast.Neg, na, a); Fma (d, na, b, x) ]
                | _ -> [ i ])
             | _ -> [ i ])
          b.insns);
  f

(* Unsafe strength reduction: x / 2^k -> x >> k.  Wrong for negative x
   (rounds toward -inf instead of toward zero). *)
let unsafe_div_sr f =
  let f = Hir.copy f in
  let sdef = single_def f in
  Hir.iter_blocks f (fun _ b ->
      b.insns <-
        List.concat_map
          (fun i ->
             match i with
             | Binop (Ast.Div, d, a, den) ->
               (match const_of_reg sdef den with
                | Some (B.Cint k) when k > 1 && k land (k - 1) = 0 ->
                  let sh =
                    int_of_float (Float.round (log (float_of_int k) /. log 2.))
                  in
                  let r = Hir.fresh_reg f in
                  [ Const (r, B.Cint sh); Binop (Ast.Shr, d, a, r) ]
                | _ -> [ i ])
             | _ -> [ i ])
          b.insns);
  f

(* Alias-blind store-to-load forwarding: forwards across stores to other
   (possibly aliasing) locations of the same shape. *)
let unsafe_lsf f =
  let f = Hir.copy f in
  Hir.iter_blocks f (fun _ b ->
      (* location -> forwarding register (no invalidation on alias stores) *)
      let fields = Hashtbl.create 8 in
      let elems = Hashtbl.create 8 in
      let redefined = Hashtbl.create 8 in
      let ok r = not (Hashtbl.mem redefined r) in
      b.insns <-
        List.map
          (fun i ->
             let out =
               match i with
               | StoreField (_, o, v, off) when ok o && ok v ->
                 Hashtbl.replace fields (o, off) v;
                 i
               | StoreElem (_, a, idx, v) when ok a && ok idx && ok v ->
                 Hashtbl.replace elems (a, idx) v;
                 i
               | LoadField (_, d, o, off) when ok o ->
                 (match Hashtbl.find_opt fields (o, off) with
                  | Some v when ok v -> Move (d, v)
                  | _ -> i)
               | LoadElem (_, d, a, idx) when ok a && ok idx ->
                 (match Hashtbl.find_opt elems (a, idx) with
                  | Some v when ok v -> Move (d, v)
                  | _ -> i)
               | _ -> i
             in
             (match Hir.def_of out with
              | Some d -> Hashtbl.replace redefined d ()
              | None -> ());
             out)
          b.insns);
  f

(* Alias- and guard-blind LICM: hoists loads with invariant operands out of
   loops even across stores and without their guards. *)
let unsafe_licm f =
  let f = Hir.copy f in
  let loops = Cfg.loops (Hir.cfg f) in
  List.iter
    (fun l ->
       let header = l.Cfg.header in
       let body = l.Cfg.body in
       let defined = Hashtbl.create 16 in
       List.iter
         (fun bid ->
            List.iter
              (fun i ->
                 match Hir.def_of i with
                 | Some d -> Hashtbl.replace defined d ()
                 | None -> ())
              (Hir.block f bid).insns)
         body;
       let invariant r = not (Hashtbl.mem defined r) in
       let hoisted = ref [] in
       List.iter
         (fun bid ->
            let b = Hir.block f bid in
            b.insns <-
              List.filter
                (fun i ->
                   let can =
                     match i with
                     | LoadField _ | LoadElem _ | LoadLen _ | SGet _ ->
                       List.for_all invariant (Hir.uses_of i)
                     | _ -> false
                   in
                   if can then begin
                     hoisted := i :: !hoisted;
                     false
                   end
                   else true)
                b.insns)
         body;
       if !hoisted <> [] then begin
         let g = Hir.cfg f in
         let pre = Hir.add_block f (List.rev !hoisted) (Goto header) in
         List.iter
           (fun bid ->
              if (not (List.mem bid body)) && bid <> pre then
                let b = Hir.block f bid in
                b.term <- Hir.retarget_term ~from:header ~to_:pre b.term)
           (Cfg.nodes g);
         if f.f_entry = header then f.f_entry <- pre
       end)
    loops;
  f

(* Integer reassociation: (x + c1) + c2 -> x + (c1 + c2); safe modulo 2^63
   wrap-around, which is the machine semantics. *)
let reassoc f =
  let f = Hir.copy f in
  let sdef = single_def f in
  Hir.iter_blocks f (fun _ b ->
      b.insns <-
        List.concat_map
          (fun i ->
             match i with
             | Binop (Ast.Add, d, a, c2reg) ->
               (match const_of_reg sdef c2reg, sdef a with
                | Some (B.Cint c2), Some (Binop (Ast.Add, _, x, c1reg)) ->
                  (match const_of_reg sdef c1reg with
                   | Some (B.Cint c1) ->
                     let r = Hir.fresh_reg f in
                     [ Const (r, B.Cint (c1 + c2)); Binop (Ast.Add, d, x, r) ]
                   | _ -> [ i ])
                | _ -> [ i ])
             | _ -> [ i ])
          b.insns);
  f

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let p name pmin pmax pdefault = { pname = name; pmin; pmax; pdefault }

let simple name ~safe descr g =
  { name; params = []; safe; descr; apply = (fun _ _ f -> g f) }

let catalog = [
  simple "simplifycfg" ~safe:true
    "remove unreachable blocks, thread gotos, merge straight-line blocks"
    T.simplify_cfg;
  simple "constfold" ~safe:true "constant folding incl. branch folding"
    T.const_fold;
  simple "instsimplify" ~safe:true "algebraic identities, mul-to-shift"
    T.simplify;
  simple "copyprop" ~safe:true "block-local copy propagation" T.copy_prop;
  simple "dce" ~safe:true "dead code and unreachable block elimination" T.dce;
  simple "gvn" ~safe:true "value numbering incl. redundant load elimination"
    T.cse_local;
  simple "lse" ~safe:true "store-to-load forwarding" T.load_store_elim;
  simple "licm" ~safe:true "loop-invariant code motion (pure ops)" T.licm;
  simple "reassociate" ~safe:true "integer add-chain reassociation" reassoc;
  simple "branch-predict" ~safe:true "static prediction: back edges taken"
    T.predict_static;
  simple "guard-dedupe" ~safe:true "remove duplicate null/bounds/zero guards"
    guard_dedupe;
  simple "bce" ~safe:true "bounds-check elimination for counted loops" bce;
  simple "guard-hoist" ~safe:true
    "hoist loop-invariant guards from loop headers into the preheader"
    guard_hoist;
  simple "if-convert" ~safe:true
    "turn small diamonds into branch-free conditional moves (select)"
    if_convert;
  simple "sink" ~safe:true
    "move pure computations into the branch that uses them" sink;
  simple "gc-check-elim" ~safe:true
    "custom pass: deduplicate GC suspend checks after loop restructuring"
    gc_check_elim;
  simple "jni-to-intrinsic" ~safe:true
    "custom pass: replace JNI math calls with inlined intrinsics"
    jni_to_intrinsic;
  { name = "inline";
    params = [ p "threshold" 0 400 50 ];
    safe = true;
    descr = "inline static calls up to a size threshold";
    apply =
      (fun env ps f ->
         T.inline_calls ~get_func:env.get_func ~threshold:ps.(0) ~max_depth:3 f);
  };
  { name = "unroll";
    params = [ p "factor" 2 16 4; p "size-limit" 4 4000 48; p "outer" 0 1 0 ];
    safe = true;
    descr = "unroll loops by chaining full copies (outer=1 unrolls nests)";
    apply =
      (fun _ ps f ->
         unroll ~outer:(ps.(2) = 1) ~factor:ps.(0) ~size_limit:ps.(1) f);
  };
  { name = "loop-peel";
    params = [ p "size-limit" 4 200 48 ];
    safe = true;
    descr = "peel the first iteration of innermost loops";
    apply = (fun _ ps f -> peel ~size_limit:ps.(0) f);
  };
  { name = "loop-unswitch";
    params = [ p "size-limit" 4 200 60 ];
    safe = true;
    descr = "duplicate loops over invariant conditions";
    apply = (fun _ ps f -> unswitch ~size_limit:ps.(0) f);
  };
  { name = "devirtualize";
    params = [ p "threshold-pct" 50 100 90 ];
    safe = true;
    descr = "speculative devirtualization from replay dispatch profiles";
    apply = (fun env ps f -> devirt env ~threshold_pct:ps.(0) f);
  };
  (* unsafe corner of the space *)
  { name = "fast-math";
    params = [ p "recip" 0 1 1; p "contract" 0 1 1 ];
    safe = false;
    descr =
      "value-changing float rewrites: reciprocal division, FMA contraction";
    apply =
      (fun env ps f ->
         fast_math ~recip:(ps.(0) = 1) ~contract:(ps.(1) = 1) env f);
  };
  simple "unsafe-bce" ~safe:false "drop every bounds guard without proof"
    (strip_guards ~null:false ~bounds:true);
  simple "unsafe-null-elim" ~safe:false "drop every null guard without proof"
    (strip_guards ~null:true ~bounds:false);
  simple "unsafe-div-lower" ~safe:false
    "integer division by 2^k becomes arithmetic shift (wrong for negatives)"
    unsafe_div_sr;
  simple "unsafe-lsf" ~safe:false "alias-blind store-to-load forwarding"
    unsafe_lsf;
  simple "unsafe-licm" ~safe:false "alias- and guard-blind load hoisting"
    unsafe_licm;
]

let find name = List.find (fun pass -> pass.name = name) catalog

let run env pass args f =
  let expected = List.length pass.params in
  if Array.length args <> expected then
    raise
      (Bad_param
         (Printf.sprintf "%s expects %d parameters, got %d" pass.name expected
            (Array.length args)));
  List.iteri
    (fun idx pr ->
       let v = args.(idx) in
       if v < pr.pmin || v > pr.pmax then
         raise
           (Bad_param
              (Printf.sprintf "%s: %s=%d outside [%d, %d]" pass.name pr.pname v
                 pr.pmin pr.pmax)))
    pass.params;
  pass.apply env args f

(* Canonical rendering of one (pass name, parameters) gene, shared by the
   Evalpool genome memo and the stage-cache prefix fingerprints so the two
   caches can never disagree on genome identity.  The only merge it
   performs: when the parameter *count* is wrong, [run] raises [Bad_param]
   before ever reading a value (the message reports counts only), so the
   values are unobservable and genomes differing only there are
   behaviourally identical — such genomes abort at the offending gene and
   never reach the miscompile fault point either.  Out-of-range values are
   observable (the [Bad_param] message quotes them) and are kept verbatim,
   as is everything about unknown passes. *)
let canon_token name args =
  let render () =
    if Array.length args = 0 then name
    else
      Printf.sprintf "%s(%s)" name
        (String.concat ","
           (List.map string_of_int (Array.to_list args)))
  in
  match find name with
  | exception Not_found -> render ()
  | pass ->
    if Array.length args = List.length pass.params then render ()
    else Printf.sprintf "%s#%d" name (Array.length args)

(* ------------------------------------------------------------------ *)
(* Fault-injection mutators (the adversary for the verification net)   *)
(* ------------------------------------------------------------------ *)

module Rng = Repro_util.Rng

type mutator = {
  m_name : string;
  m_descr : string;
  m_apply : Rng.t -> Hir.func -> Hir.func option;
}

(* Deterministic site enumeration: blocks in ascending bid order,
   instructions in list order, so a given rng stream always lands on the
   same site whatever produced the function. *)
let instr_sites pred f =
  List.concat_map
    (fun bid ->
       let b = Hir.block f bid in
       List.concat
         (List.mapi (fun i ins -> if pred ins then [ (bid, i) ] else []) b.insns))
    (all_bids f)

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

let split_at n xs =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: tl -> go (k - 1) (x :: acc) tl
  in
  go n [] xs

let mutate_flip_branch rng f =
  let candidates =
    List.filter
      (fun bid ->
         match (Hir.block f bid).term with
         | If _ -> true
         | Goto _ | Ret _ | ThrowT _ -> false)
      (all_bids f)
  in
  match candidates with
  | [] -> None
  | _ ->
    let f = Hir.copy f in
    let b = Hir.block f (pick rng candidates) in
    (match b.term with
     | If (c, a, o, bt, be, h) -> b.term <- If (c, a, o, be, bt, h)
     | Goto _ | Ret _ | ThrowT _ -> assert false);
    Some f

let mutate_drop_store rng f =
  let is_store = function
    | StoreElem _ | StoreField _ | SPut _ -> true
    | _ -> false
  in
  match instr_sites is_store f with
  | [] -> None
  | sites ->
    let f = Hir.copy f in
    let bid, idx = pick rng sites in
    let b = Hir.block f bid in
    b.insns <- List.filteri (fun i _ -> i <> idx) b.insns;
    Some f

let mutate_corrupt_const rng f =
  let is_const = function Const _ -> true | _ -> false in
  match instr_sites is_const f with
  | [] -> None
  | sites ->
    let f = Hir.copy f in
    let bid, idx = pick rng sites in
    let b = Hir.block f bid in
    b.insns <-
      List.mapi
        (fun i ins ->
           match ins with
           | Const (d, c) when i = idx ->
             let c' =
               match c with
               | B.Cint k -> B.Cint (k + 1 + Rng.int rng 7)
               | B.Cfloat x -> B.Cfloat (x +. 1.0 +. float_of_int (Rng.int rng 7))
               | B.Cbool b -> B.Cbool (not b)
               | B.Cnull -> B.Cint (1 + Rng.int rng 7)
             in
             Const (d, c')
           | ins -> ins)
        b.insns;
    Some f

let mutate_reorder_suspend rng f =
  let is_suspend = function SuspendCheck -> true | _ -> false in
  match instr_sites is_suspend f with
  | [] -> None
  | sites ->
    let f = Hir.copy f in
    let bid, idx = pick rng sites in
    let b = Hir.block f bid in
    let without = List.filteri (fun i _ -> i <> idx) b.insns in
    let pos = Rng.int rng (List.length without + 1) in
    let before, after = split_at pos without in
    b.insns <- before @ (SuspendCheck :: after);
    Some f

let mutators = [
  { m_name = "flip-branch";
    m_descr = "swap the taken/not-taken successors of one conditional branch";
    m_apply = mutate_flip_branch };
  { m_name = "drop-store";
    m_descr = "delete one heap/static store instruction";
    m_apply = mutate_drop_store };
  { m_name = "corrupt-const";
    m_descr = "perturb the value of one constant load";
    m_apply = mutate_corrupt_const };
  { m_name = "reorder-suspend";
    m_descr = "move one GC suspend check to another point in its block";
    m_apply = mutate_reorder_suspend };
]

let mutate rng f =
  let n = List.length mutators in
  let start = Rng.int rng n in
  let rec attempt k =
    if k = n then None
    else
      let m = List.nth mutators ((start + k) mod n) in
      match m.m_apply rng f with
      | Some f' -> Some (m.m_name, f')
      | None -> attempt (k + 1)
  in
  attempt 0
