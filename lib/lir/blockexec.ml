(* The block-fused LIR executor.

   Runs the same decomposed-dialect graphs as [Exec], against the plans
   precomputed by [Blockplan], under a strict bit-identical contract: cycle
   accounting, observable memory, return values and crash/hang
   classification all match the reference engine exactly, for conforming
   *and* non-conforming (guard-stripped, fault-injected, malformed) code.
   What changes is only how much bookkeeping runs per instruction:

   - straight-line segments whose static worst-case bound fits in the
     remaining fuel run on a local cycle accumulator — one headroom
     comparison replaces every per-instruction fuel check ([Ctx.charge]
     raises on [cycles > fuel], so [cycles + bound <= fuel] at entry proves
     no interior charge can raise Timeout).  The accumulator is flushed on
     segment exit and on any exception, so crash-time cycle counts are
     exact;

   - fused micro-ops execute both halves back to back, charging the same
     costs in the same order — fusion saves dispatch, never accounting;

   - straightened gotos charge their branch cost inline instead of going
     around the dispatch loop.

   Barrier instructions (calls, allocation, suspend checks, Sys.clock) and
   terminators always run on the exact path: their costs are dynamic or
   their callees can observe the cycle counter mid-flight.

   Profiling replays ([sample_period > 0]) fall back to [Exec.run_func]
   per call: the sampling hook inside [Ctx.charge] must see every
   intermediate cycle value, which batched charging deliberately skips. *)

module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast
module Hir = Repro_hgraph.Hir
module Mem = Repro_os.Mem
module Ctx = Repro_vm.Exec_ctx
module Value = Repro_vm.Value
module Cost = Repro_vm.Cost
module Interp = Repro_vm.Interp
module Jni = Repro_vm.Jni
module Faults = Repro_util.Faults
open Repro_vm.Value

(* Unchecked register-file access for the fast path.  Only ever reached
   through segments of a plan whose [fp_regs_ok] proof holds (every
   register index the function mentions is inside the file), so the bounds
   check the safe accessors would perform is statically dead.  Declared as
   the primitives so full applications compile to a raw load/store. *)
external rget : 'a array -> int -> 'a = "%array_unsafe_get"
external rset : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

type engine = Ref | Fused

let engine_name = function Ref -> "ref" | Fused -> "fused"

let engine_of_string = function
  | "ref" -> Some Ref
  | "fused" -> Some Fused
  | _ -> None

let default = Atomic.make Fused
let default_engine () = Atomic.get default
let set_default_engine e = Atomic.set default e

let run_plan (ctx : Ctx.t) (fp : Blockplan.fplan) args =
  let f = fp.Blockplan.fp_func in
  let c = ctx.Ctx.cost in
  let mem = ctx.Ctx.mem in
  let regs = Array.make (max f.Hir.f_nregs 1) (Vint 0) in
  List.iteri (fun i v -> regs.(i) <- v) args;
  (* Fault points: keyed and fired exactly as in [Exec.run_func], so an
     injected fault produces the same failure at the same call. *)
  let fault_wrong_ret =
    match Faults.scope_key () with
    | None -> false
    | Some sk ->
      let key = Faults.combine sk f.Hir.f_mid in
      if Faults.fire Faults.Exec_crash ~key then begin
        Faults.record Faults.Exec_crash;
        raise (Exec.Segfault "injected executor fault")
      end;
      if Faults.fire Faults.Exec_hang ~key then begin
        Faults.record Faults.Exec_hang;
        while true do
          Ctx.charge ctx 1_000_000
        done
      end;
      Faults.fire Faults.Exec_wrong_ret ~key
  in
  let fetch_penalty = fp.Blockplan.fp_fetch in
  (* Pending cycles of the segment currently on the fast path.  Flushed
     through [Ctx.charge] on segment exit and on any exception; the
     headroom proof guarantees the flush itself cannot raise. *)
  let acc = ref 0 in
  let flush () =
    if !acc <> 0 then begin
      let n = !acc in
      acc := 0;
      Ctx.charge ctx n
    end
  in
  let charge_exact n = Ctx.charge ctx n in
  let charge_acc n = acc := !acc + n in
  let read addr =
    match Mem.read_word mem addr with
    | w -> w
    | exception Invalid_argument msg -> raise (Exec.Segfault msg)
  in
  let write addr v =
    match Mem.write_word mem addr v with
    | () -> ()
    | exception Invalid_argument msg -> raise (Exec.Segfault msg)
  in
  let as_ref v =
    match v with
    | Vref a -> a
    | Vint a -> a
    | Vfloat _ | Vbool _ -> raise (Exec.Segfault "non-pointer value dereferenced")
  in
  (* One instruction, parameterized on the charge sink.  Case bodies mirror
     [Exec.run_func]'s [exec_instr] verbatim — same charges, same
     evaluation order, same failures. *)
  let exec_instr ~charge i =
    match i with
    | Hir.Const (d, const) ->
      charge c.Cost.const;
      regs.(d) <-
        (match const with
         | B.Cint k -> Vint k
         | B.Cfloat x -> Vfloat x
         | B.Cbool b -> Vbool b
         | B.Cnull -> Value.null)
    | Hir.Move (d, s) ->
      charge c.Cost.move;
      regs.(d) <- regs.(s)
    | Hir.Binop (op, d, a, b) ->
      charge (Exec.binop_cost c op regs.(a));
      regs.(d) <- Exec.eval_binop_arm op regs.(a) regs.(b)
    | Hir.Fma (d, a, b, cc) ->
      charge c.Cost.float_mul;
      regs.(d) <-
        Vfloat
          (Float.fma (Value.to_float regs.(a)) (Value.to_float regs.(b))
             (Value.to_float regs.(cc)))
    | Hir.Select (d, cnd, a, b) ->
      charge c.Cost.int_alu;
      regs.(d) <- (if Value.is_truthy regs.(cnd) then regs.(a) else regs.(b))
    | Hir.Unop (Ast.Neg, d, a) ->
      (match regs.(a) with
       | Vint x ->
         charge c.Cost.int_alu;
         regs.(d) <- Vint (-x)
       | Vfloat x ->
         charge c.Cost.float_alu;
         regs.(d) <- Vfloat (-.x)
       | Vbool _ | Vref _ -> raise (Exec.Segfault "neg of non-number"))
    | Hir.Unop (Ast.Not, d, a) ->
      charge c.Cost.int_alu;
      regs.(d) <- Vbool (not (Value.to_bool regs.(a)))
    | Hir.I2f (d, a) ->
      charge c.Cost.float_conv;
      regs.(d) <- Vfloat (float_of_int (Value.to_int regs.(a)))
    | Hir.F2i (d, a) ->
      charge c.Cost.float_conv;
      regs.(d) <- Vint (int_of_float (Value.to_float regs.(a)))
    | Hir.NewObj (d, cid) -> regs.(d) <- Vref (Ctx.alloc_object ctx cid)
    | Hir.NewArr (d, _, len) ->
      regs.(d) <- Vref (Ctx.alloc_array ctx (Value.to_int regs.(len)))
    | Hir.GuardNull r ->
      charge c.Cost.null_check;
      if as_ref regs.(r) = 0 then raise (Ctx.App_exception Ctx.exc_null_pointer)
    | Hir.GuardBounds (i, l) ->
      charge c.Cost.bounds_check;
      let idx = Value.to_int regs.(i) and len = Value.to_int regs.(l) in
      if idx < 0 || idx >= len then
        raise (Ctx.App_exception Ctx.exc_out_of_bounds)
    | Hir.GuardDivZero r ->
      charge c.Cost.null_check;
      (match regs.(r) with
       | Vint 0 -> raise (Ctx.App_exception Ctx.exc_div_by_zero)
       | _ -> ())
    | Hir.LoadElem (k, d, a, i) ->
      charge c.Cost.load;
      let addr = Ctx.elem_addr (as_ref regs.(a)) (Value.to_int regs.(i)) in
      regs.(d) <- Value.of_word k (read addr)
    | Hir.StoreElem (_, a, i, v) ->
      charge c.Cost.store;
      let addr = Ctx.elem_addr (as_ref regs.(a)) (Value.to_int regs.(i)) in
      write addr (Value.to_word regs.(v))
    | Hir.LoadLen (d, a) ->
      charge c.Cost.load;
      regs.(d) <- Vint (Int64.to_int (read (as_ref regs.(a))))
    | Hir.LoadField (k, d, o, off) ->
      charge c.Cost.load;
      regs.(d) <- Value.of_word k (read (Ctx.field_addr (as_ref regs.(o)) off))
    | Hir.StoreField (_, o, v, off) ->
      charge c.Cost.store;
      write (Ctx.field_addr (as_ref regs.(o)) off) (Value.to_word regs.(v))
    | Hir.LoadClass (d, o) ->
      charge c.Cost.load;
      regs.(d) <- Vint (Int64.to_int (read (as_ref regs.(o))))
    | Hir.SGet (k, d, slot) ->
      charge c.Cost.load;
      regs.(d) <- Value.of_word k (read (Ctx.static_addr ctx slot))
    | Hir.SPut (_, slot, v) ->
      charge c.Cost.store;
      write (Ctx.static_addr ctx slot) (Value.to_word regs.(v))
    | Hir.CallStatic (ret, mid, argregs) ->
      charge c.Cost.call_overhead;
      let cargs = List.map (fun r -> regs.(r)) argregs in
      (match ret, Ctx.invoke ctx mid cargs with
       | Some d, Some v -> regs.(d) <- v
       | Some _, None | None, (Some _ | None) -> ())
    | Hir.CallVirtual (ret, slot, argregs, _site) ->
      charge (c.Cost.call_overhead + c.Cost.virtual_extra + c.Cost.load);
      let cargs = List.map (fun r -> regs.(r)) argregs in
      let recv =
        match argregs with
        | r :: _ -> as_ref regs.(r)
        | [] -> raise (Exec.Segfault "virtual call without receiver")
      in
      let cid = Int64.to_int (read recv) in
      if cid < 0 || cid >= Array.length ctx.Ctx.dx.B.dx_classes then
        raise (Exec.Segfault "corrupt object header in virtual dispatch");
      let vtable = ctx.Ctx.dx.B.dx_classes.(cid).B.ci_vtable in
      if slot < 0 || slot >= Array.length vtable then
        raise (Exec.Segfault "vtable slot out of range");
      (match ret, Ctx.invoke ctx vtable.(slot) cargs with
       | Some d, Some v -> regs.(d) <- v
       | Some _, None | None, (Some _ | None) -> ())
    | Hir.CallNative (ret, n, argregs, mode) ->
      let cargs = List.map (fun r -> regs.(r)) argregs in
      let result =
        match mode with
        | Hir.Jni -> Jni.call ctx n cargs
        | Hir.Intrinsic -> Jni.call ~as_native:false ctx n cargs
      in
      (match ret, result with
       | Some d, Some v -> regs.(d) <- v
       | Some _, None | None, (Some _ | None) -> ())
    | Hir.SuspendCheck -> Ctx.safepoint ctx
    | Hir.ALoadC _ | Hir.AStoreC _ | Hir.ArrLenC _ | Hir.IGetC _ | Hir.IPutC _ ->
      failwith "Exec: composite instruction reached the executor \
                (method was not translated)"
  in
  (* One micro-op.  Fused cases interleave the charges and effects of their
     two underlying instructions in the reference order; shared
     subexpressions (the guarded pointer, the bounds-checked index) are
     reused only where the registers provably cannot have changed between
     the halves. *)
  let exec_mop ~charge m =
    match m with
    | Blockplan.Op i -> exec_instr ~charge i
    | Blockplan.Goto_seam (n, t) ->
      charge n;
      (match !Exec.block_hook with
       | Some h -> h f.Hir.f_mid t (ctx.Ctx.cycles + !acc)
       | None -> ())
    | Blockplan.Null_load_len (d, a) ->
      charge c.Cost.null_check;
      let p = as_ref regs.(a) in
      if p = 0 then raise (Ctx.App_exception Ctx.exc_null_pointer);
      charge c.Cost.load;
      regs.(d) <- Vint (Int64.to_int (read p))
    | Blockplan.Null_load_field (k, d, o, off) ->
      charge c.Cost.null_check;
      let p = as_ref regs.(o) in
      if p = 0 then raise (Ctx.App_exception Ctx.exc_null_pointer);
      charge c.Cost.load;
      regs.(d) <- Value.of_word k (read (Ctx.field_addr p off))
    | Blockplan.Null_store_field (_, o, v, off) ->
      charge c.Cost.null_check;
      let p = as_ref regs.(o) in
      if p = 0 then raise (Ctx.App_exception Ctx.exc_null_pointer);
      charge c.Cost.store;
      write (Ctx.field_addr p off) (Value.to_word regs.(v))
    | Blockplan.Bounds_load_elem (k, d, a, i, l) ->
      charge c.Cost.bounds_check;
      let idx = Value.to_int regs.(i) and len = Value.to_int regs.(l) in
      if idx < 0 || idx >= len then
        raise (Ctx.App_exception Ctx.exc_out_of_bounds);
      charge c.Cost.load;
      let addr = Ctx.elem_addr (as_ref regs.(a)) idx in
      regs.(d) <- Value.of_word k (read addr)
    | Blockplan.Bounds_store_elem (_, a, i, v, l) ->
      charge c.Cost.bounds_check;
      let idx = Value.to_int regs.(i) and len = Value.to_int regs.(l) in
      if idx < 0 || idx >= len then
        raise (Ctx.App_exception Ctx.exc_out_of_bounds);
      charge c.Cost.store;
      let addr = Ctx.elem_addr (as_ref regs.(a)) idx in
      write addr (Value.to_word regs.(v))
    | Blockplan.Load_elem_op (k, dl, a, i, op, d2, x, y) ->
      charge c.Cost.load;
      let addr = Ctx.elem_addr (as_ref regs.(a)) (Value.to_int regs.(i)) in
      regs.(dl) <- Value.of_word k (read addr);
      charge (Exec.binop_cost c op regs.(x));
      regs.(d2) <- Exec.eval_binop_arm op regs.(x) regs.(y)
  in
  (* Type confusion surfaces as Invalid_argument from the value accessors,
     converted per micro-op exactly like the reference's per-instruction
     wrapper (there is no handler between the halves of a fused pair). *)
  let exec_mop ~charge m =
    try exec_mop ~charge m
    with Invalid_argument msg -> raise (Exec.Segfault msg)
  in
  let exec_seg_exact (sg : Blockplan.seg) =
    Array.iter (exec_mop ~charge:charge_exact) sg.Blockplan.sg_ops
  in
  (* Fast-path twin of the hot [exec_instr]/[exec_mop] cases: identical
     effects and charge order, with the charge sink inlined as an
     accumulator add instead of a closure call, and no per-mop exception
     wrapper — [exec_seg_fast] installs a single handler around the whole
     segment, which is observably the same (neither engine has a handler
     between micro-ops, and the Invalid_argument-to-Segfault conversion
     happens before the accumulator flush either way).  Anything not
     specialized here delegates to the generic case bodies. *)
  let exec_mop_fast m =
    match m with
    | Blockplan.Op (Hir.Const (d, const)) ->
      acc := !acc + c.Cost.const;
      rset regs d
        (match const with
         | B.Cint k -> Vint k
         | B.Cfloat x -> Vfloat x
         | B.Cbool b -> Vbool b
         | B.Cnull -> Value.null)
    | Blockplan.Op (Hir.Move (d, s)) ->
      acc := !acc + c.Cost.move;
      rset regs d (rget regs s)
    | Blockplan.Op (Hir.Binop (op, d, a, b)) ->
      acc := !acc + Exec.binop_cost c op (rget regs a);
      rset regs d (Exec.eval_binop_arm op (rget regs a) (rget regs b))
    | Blockplan.Op (Hir.Fma (d, a, b, cc)) ->
      acc := !acc + c.Cost.float_mul;
      rset regs d
        (Vfloat
           (Float.fma
              (Value.to_float (rget regs a))
              (Value.to_float (rget regs b))
              (Value.to_float (rget regs cc))))
    | Blockplan.Op (Hir.Select (d, cnd, a, b)) ->
      acc := !acc + c.Cost.int_alu;
      rset regs d
        (if Value.is_truthy (rget regs cnd) then rget regs a else rget regs b)
    | Blockplan.Op (Hir.Unop (Ast.Neg, d, a)) ->
      (match rget regs a with
       | Vint x ->
         acc := !acc + c.Cost.int_alu;
         rset regs d (Vint (-x))
       | Vfloat x ->
         acc := !acc + c.Cost.float_alu;
         rset regs d (Vfloat (-.x))
       | Vbool _ | Vref _ -> raise (Exec.Segfault "neg of non-number"))
    | Blockplan.Op (Hir.Unop (Ast.Not, d, a)) ->
      acc := !acc + c.Cost.int_alu;
      rset regs d (Vbool (not (Value.to_bool (rget regs a))))
    | Blockplan.Op (Hir.GuardDivZero r) ->
      acc := !acc + c.Cost.null_check;
      (match rget regs r with
       | Vint 0 -> raise (Ctx.App_exception Ctx.exc_div_by_zero)
       | _ -> ())
    | Blockplan.Op (Hir.I2f (d, a)) ->
      acc := !acc + c.Cost.float_conv;
      rset regs d (Vfloat (float_of_int (Value.to_int (rget regs a))))
    | Blockplan.Op (Hir.F2i (d, a)) ->
      acc := !acc + c.Cost.float_conv;
      rset regs d (Vint (int_of_float (Value.to_float (rget regs a))))
    | Blockplan.Op (Hir.GuardNull r) ->
      acc := !acc + c.Cost.null_check;
      if as_ref (rget regs r) = 0 then
        raise (Ctx.App_exception Ctx.exc_null_pointer)
    | Blockplan.Op (Hir.GuardBounds (i, l)) ->
      acc := !acc + c.Cost.bounds_check;
      let idx = Value.to_int (rget regs i)
      and len = Value.to_int (rget regs l) in
      if idx < 0 || idx >= len then
        raise (Ctx.App_exception Ctx.exc_out_of_bounds)
    | Blockplan.Op (Hir.LoadElem (k, d, a, i)) ->
      acc := !acc + c.Cost.load;
      let addr =
        Ctx.elem_addr (as_ref (rget regs a)) (Value.to_int (rget regs i))
      in
      rset regs d (Value.of_word k (read addr))
    | Blockplan.Op (Hir.StoreElem (_, a, i, v)) ->
      acc := !acc + c.Cost.store;
      let addr =
        Ctx.elem_addr (as_ref (rget regs a)) (Value.to_int (rget regs i))
      in
      write addr (Value.to_word (rget regs v))
    | Blockplan.Op (Hir.LoadLen (d, a)) ->
      acc := !acc + c.Cost.load;
      rset regs d (Vint (Int64.to_int (read (as_ref (rget regs a)))))
    | Blockplan.Op (Hir.LoadField (k, d, o, off)) ->
      acc := !acc + c.Cost.load;
      rset regs d
        (Value.of_word k (read (Ctx.field_addr (as_ref (rget regs o)) off)))
    | Blockplan.Op (Hir.StoreField (_, o, v, off)) ->
      acc := !acc + c.Cost.store;
      write (Ctx.field_addr (as_ref (rget regs o)) off)
        (Value.to_word (rget regs v))
    | Blockplan.Op (Hir.SGet (k, d, slot)) ->
      acc := !acc + c.Cost.load;
      rset regs d (Value.of_word k (read (Ctx.static_addr ctx slot)))
    | Blockplan.Op (Hir.SPut (_, slot, v)) ->
      acc := !acc + c.Cost.store;
      write (Ctx.static_addr ctx slot) (Value.to_word (rget regs v))
    | Blockplan.Op i -> exec_instr ~charge:charge_acc i
    | Blockplan.Goto_seam (n, t) ->
      acc := !acc + n;
      (match !Exec.block_hook with
       | Some h -> h f.Hir.f_mid t (ctx.Ctx.cycles + !acc)
       | None -> ())
    | Blockplan.Null_load_len (d, a) ->
      acc := !acc + c.Cost.null_check;
      let p = as_ref (rget regs a) in
      if p = 0 then raise (Ctx.App_exception Ctx.exc_null_pointer);
      acc := !acc + c.Cost.load;
      rset regs d (Vint (Int64.to_int (read p)))
    | Blockplan.Null_load_field (k, d, o, off) ->
      acc := !acc + c.Cost.null_check;
      let p = as_ref (rget regs o) in
      if p = 0 then raise (Ctx.App_exception Ctx.exc_null_pointer);
      acc := !acc + c.Cost.load;
      rset regs d (Value.of_word k (read (Ctx.field_addr p off)))
    | Blockplan.Null_store_field (_, o, v, off) ->
      acc := !acc + c.Cost.null_check;
      let p = as_ref (rget regs o) in
      if p = 0 then raise (Ctx.App_exception Ctx.exc_null_pointer);
      acc := !acc + c.Cost.store;
      write (Ctx.field_addr p off) (Value.to_word (rget regs v))
    | Blockplan.Bounds_load_elem (k, d, a, i, l) ->
      acc := !acc + c.Cost.bounds_check;
      let idx = Value.to_int (rget regs i)
      and len = Value.to_int (rget regs l) in
      if idx < 0 || idx >= len then
        raise (Ctx.App_exception Ctx.exc_out_of_bounds);
      acc := !acc + c.Cost.load;
      let addr = Ctx.elem_addr (as_ref (rget regs a)) idx in
      rset regs d (Value.of_word k (read addr))
    | Blockplan.Bounds_store_elem (_, a, i, v, l) ->
      acc := !acc + c.Cost.bounds_check;
      let idx = Value.to_int (rget regs i)
      and len = Value.to_int (rget regs l) in
      if idx < 0 || idx >= len then
        raise (Ctx.App_exception Ctx.exc_out_of_bounds);
      acc := !acc + c.Cost.store;
      let addr = Ctx.elem_addr (as_ref (rget regs a)) idx in
      write addr (Value.to_word (rget regs v))
    | Blockplan.Load_elem_op (k, dl, a, i, op, d2, x, y) ->
      acc := !acc + c.Cost.load;
      let addr =
        Ctx.elem_addr (as_ref (rget regs a)) (Value.to_int (rget regs i))
      in
      rset regs dl (Value.of_word k (read addr));
      acc := !acc + Exec.binop_cost c op (rget regs x);
      rset regs d2 (Exec.eval_binop_arm op (rget regs x) (rget regs y))
  in
  let exec_seg_fast (sg : Blockplan.seg) =
    let ops = sg.Blockplan.sg_ops in
    match
      for k = 0 to Array.length ops - 1 do
        exec_mop_fast (Array.unsafe_get ops k)
      done
    with
    | () -> flush ()
    | exception Invalid_argument msg ->
      (* charges up to the faulting micro-op are already in [acc]; flushing
         makes the crash-time cycle count exact *)
      flush ();
      raise (Exec.Segfault msg)
    | exception e ->
      flush ();
      raise e
  in
  (* [fp_regs_ok] licenses [exec_mop_fast]'s unchecked register accesses;
     without the proof every segment takes the exact checked path, which
     reproduces the reference's out-of-range failure bit for bit. *)
  let regs_ok = fp.Blockplan.fp_regs_ok in
  let run_part p =
    match p with
    | Blockplan.Straight sg ->
      if regs_ok && ctx.Ctx.cycles + sg.Blockplan.sg_bound <= ctx.Ctx.fuel
      then exec_seg_fast sg
      else exec_seg_exact sg
    | Blockplan.Barrier i -> exec_mop ~charge:charge_exact (Blockplan.Op i)
  in
  let branch_cost hint taken =
    Ctx.charge ctx (c.Cost.branch + fetch_penalty);
    match hint, taken with
    | Hir.Predict_taken, true | Hir.Predict_not_taken, false -> ()
    | Hir.Predict_taken, false | Hir.Predict_not_taken, true ->
      Ctx.charge ctx c.Cost.branch_miss
    | Hir.Predict_none, _ -> Ctx.charge ctx (c.Cost.branch_miss / 2)
  in
  let nblocks = Array.length fp.Blockplan.fp_blocks in
  let result = ref None in
  let running = ref true in
  let bid = ref f.Hir.f_entry in
  while !running do
    (match !Exec.block_hook with
     | Some h -> h f.Hir.f_mid !bid ctx.Ctx.cycles
     | None -> ());
    let bp =
      if !bid >= 0 && !bid < nblocks then fp.Blockplan.fp_blocks.(!bid)
      else None
    in
    match bp with
    | None ->
      (* a dispatch target outside the plan table: reproduce [Hir.block]'s
         failure, unconverted (the reference raises it outside the
         instruction wrapper) *)
      invalid_arg
        (Printf.sprintf "Hir.block: no block %d in %s" !bid f.Hir.f_name)
    | Some bp ->
      let parts = bp.Blockplan.bp_parts in
      for k = 0 to Array.length parts - 1 do
        run_part (Array.unsafe_get parts k)
      done;
      (* terminators run on the exact path; the compare half of a fused
         compare-and-branch is wrapped like the instruction it was, the
         branch half is not (matching the reference's loop body) *)
      (match bp.Blockplan.bp_term with
       | Blockplan.Tgoto t ->
         Ctx.charge ctx (c.Cost.branch + fetch_penalty);
         bid := t
       | Blockplan.Tif (cond, a, rhs, bt, be, hint) ->
         let vb =
           match rhs with
           | Some rb -> regs.(rb)
           | None -> Exec.zero_like regs.(a)
         in
         let taken = Interp.eval_cond cond regs.(a) vb in
         branch_cost hint taken;
         bid := if taken then bt else be
       | Blockplan.Tcmp_if (op, d, x, y, cond, rhs, bt, be, hint) ->
         (try
            Ctx.charge ctx (Exec.binop_cost c op regs.(x));
            regs.(d) <- Exec.eval_binop_arm op regs.(x) regs.(y)
          with Invalid_argument msg -> raise (Exec.Segfault msg));
         let vb =
           match rhs with
           | Some rb -> regs.(rb)
           | None -> Exec.zero_like regs.(d)
         in
         let taken = Interp.eval_cond cond regs.(d) vb in
         branch_cost hint taken;
         bid := if taken then bt else be
       | Blockplan.Tret r ->
         Ctx.charge ctx c.Cost.int_alu;
         result := Option.map (fun r -> regs.(r)) r;
         (match !result with
          | Some v when fault_wrong_ret ->
            Faults.record Faults.Exec_wrong_ret;
            result := Some (Exec.perturb_value v)
          | Some _ | None -> ());
         running := false
       | Blockplan.Tthrow r ->
         Ctx.charge ctx c.Cost.throw_cost;
         raise (Ctx.App_exception (Value.to_int regs.(r)))
       | Blockplan.Tmissing msg -> invalid_arg msg)
  done;
  !result

let dispatcher plan binary =
  fun (ctx : Ctx.t) mid args ->
    match Hashtbl.find_opt plan.Blockplan.pl_funcs mid with
    | Some fp ->
      if ctx.Ctx.sample_period > 0 then
        (* profiling replay: the sampler inside [Ctx.charge] must observe
           every intermediate cycle value, which batched charging skips —
           take the reference per-instruction path for this call *)
        (match Binary.find binary mid with
         | Some g -> Exec.run_func ctx g args
         | None -> Interp.interpret ctx mid args)
      else run_plan ctx fp args
    | None -> Interp.interpret ctx mid args

let install ctx binary =
  let plan = Blockplan.plan_for ~cost:ctx.Ctx.cost binary in
  Ctx.set_dispatch ctx (dispatcher plan binary)

let install_engine engine ctx binary =
  match engine with
  | Ref -> Exec.install ctx binary
  | Fused -> install ctx binary
