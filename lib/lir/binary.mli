(** A compiled binary: the set of optimized method graphs installed for an
    application, plus its code size (the GA's tiebreaker). *)

type t = {
  funcs : (int, Repro_hgraph.Hir.func) Hashtbl.t;  (** method id -> code *)
  mutable size : int;                               (** total instructions *)
  mutable dig : string option;
  (** memoized content digest; filled by [create] before the binary can
      cross domains, invalidated by [recompute_size] *)
}

val create : Repro_hgraph.Hir.func list -> t
val find : t -> int -> Repro_hgraph.Hir.func option
val mids : t -> int list
val recompute_size : t -> unit

val digest : t -> string
(** Hex digest of the printed method graphs in ascending-mid order — the
    binary memo key ([Pipeline.binary_key] delegates here) and the key of
    the block-plan cache.  Memoized; [create] fills it eagerly so
    cross-domain reads never race a lazy fill. *)
