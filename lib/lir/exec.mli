(** The LIR executor: runs decomposed-dialect graphs under the cycle cost
    model — the "hardware" the compiled binaries execute on.

    Unlike the interpreter, it performs no implicit checks: safety comes
    only from the Guard* instructions present in the code.  If an unsound
    optimization removed a guard the raw access proceeds, yielding either a
    silently wrong value (a mapped but wrong address) or a {!Segfault}
    (unmapped address) — the two runtime failure modes of Figure 1.

    Integer division follows ARM semantics: [x / 0 = 0] (no trap); the Java
    exception is produced by [GuardDivZero]. *)

exception Segfault of string

(** {2 Cost/semantics helpers shared with {!Blockexec}}

    The block-fused engine must charge byte-identical cycles and raise
    byte-identical failures; it reuses these rather than re-deriving them. *)

val pressure_of : Repro_hgraph.Hir.func -> int
(** Cached register-pressure estimate (reads [f_pressure] when filled). *)

val fetch_penalty_of : Repro_hgraph.Hir.func -> int
(** Per-function static control-transfer penalty: instruction-cache
    pressure + register-spill reloads.  Charged on every branch. *)

val binop_cost : Repro_vm.Cost.model -> Repro_dex.Ast.binop -> Repro_vm.Value.t -> int
(** Cycle cost of a binop given its (runtime) first operand. *)

val eval_binop_arm :
  Repro_dex.Ast.binop -> Repro_vm.Value.t -> Repro_vm.Value.t -> Repro_vm.Value.t
(** ARM-style division semantics: [x / 0 = 0], [x % 0 = x], no trap. *)

val zero_like : Repro_vm.Value.t -> Repro_vm.Value.t
(** The typed zero an [If] with no second operand compares against. *)

val perturb_value : Repro_vm.Value.t -> Repro_vm.Value.t
(** Shape-preserving corruption used by the [Exec_wrong_ret] fault point. *)

val block_hook : (int -> int -> int -> unit) option ref
(** Lockstep observation point: when set, both executors fire it at every
    block entry with (method id, block id, cycles-so-far).  Used by the
    differential tests to locate the first divergent block.  Not
    domain-safe; intended for single-domain test harnesses only. *)

val run_func :
  Repro_vm.Exec_ctx.t -> Repro_hgraph.Hir.func ->
  Repro_vm.Value.t list -> Repro_vm.Value.t option
(** Execute one compiled method; callees are routed through
    {!Repro_vm.Exec_ctx.invoke}.
    @raise Segfault, Repro_vm.Exec_ctx.App_exception, Timeout. *)

val dispatcher :
  Binary.t ->
  (Repro_vm.Exec_ctx.t -> int -> Repro_vm.Value.t list -> Repro_vm.Value.t option)
(** A dispatch function executing methods present in the binary as compiled
    code and everything else through the interpreter — the mixed-mode
    runtime of a real Android process. *)

val install : Repro_vm.Exec_ctx.t -> Binary.t -> unit
