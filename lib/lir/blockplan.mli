(** Decode-time basic-block analysis backing the block-fused executor
    {!Blockexec}.

    Per function, the plan records: straightened per-dispatch-target
    micro-op streams (Goto chains inlined), segments of straight-line code
    between barrier instructions each carrying a static worst-case cycle
    bound (so one headroom check against the fuel replaces the reference
    engine's per-instruction checks), and peephole-fused micro-ops for the
    guard+access / load+op / compare+branch pairs the translator emits.

    The analysis never changes semantics: fused ops charge the same costs
    in the same order as their expansion, barriers execute exactly, and
    malformed graphs are given poison plans that reproduce the reference
    failure at the same point.  Counters (emitted at build when tracing is
    enabled): [blockexec.blocks_formed], [blockexec.ops_fused],
    [blockexec.checks_hoisted], [blockexec.plan_builds],
    [blockexec.plan_cache_hits]. *)

type mop =
  | Op of Repro_hgraph.Hir.instr
  | Goto_seam of int * Repro_hgraph.Hir.bid
      (** straightened [Goto]: (branch + fetch-penalty charge, target bid) *)
  | Null_load_len of Repro_hgraph.Hir.reg * Repro_hgraph.Hir.reg
  | Null_load_field of
      Repro_dex.Bytecode.elem_kind * Repro_hgraph.Hir.reg
      * Repro_hgraph.Hir.reg * int
  | Null_store_field of
      Repro_dex.Bytecode.elem_kind * Repro_hgraph.Hir.reg
      * Repro_hgraph.Hir.reg * int
  | Bounds_load_elem of
      Repro_dex.Bytecode.elem_kind * Repro_hgraph.Hir.reg
      * Repro_hgraph.Hir.reg * Repro_hgraph.Hir.reg * Repro_hgraph.Hir.reg
      (** (kind, dst, arr, idx, len) *)
  | Bounds_store_elem of
      Repro_dex.Bytecode.elem_kind * Repro_hgraph.Hir.reg
      * Repro_hgraph.Hir.reg * Repro_hgraph.Hir.reg * Repro_hgraph.Hir.reg
      (** (kind, arr, idx, src, len) *)
  | Load_elem_op of
      Repro_dex.Bytecode.elem_kind * Repro_hgraph.Hir.reg
      * Repro_hgraph.Hir.reg * Repro_hgraph.Hir.reg
      * Repro_dex.Ast.binop * Repro_hgraph.Hir.reg * Repro_hgraph.Hir.reg
      * Repro_hgraph.Hir.reg
      (** (kind, load dst, arr, idx, op, binop dst, lhs, rhs) *)

type seg = {
  sg_ops : mop array;
  sg_bound : int;
      (** static worst-case cycles: [cycles + sg_bound <= fuel] at entry
          proves no interior charge can raise Timeout *)
  sg_insns : int;  (** underlying charge sites covered *)
}

type part =
  | Straight of seg
  | Barrier of Repro_hgraph.Hir.instr
      (** dynamic-cost / counter-observing instruction, executed exactly *)

type tplan =
  | Tgoto of Repro_hgraph.Hir.bid
  | Tif of
      Repro_dex.Bytecode.cond * Repro_hgraph.Hir.reg
      * Repro_hgraph.Hir.reg option * Repro_hgraph.Hir.bid
      * Repro_hgraph.Hir.bid * Repro_hgraph.Hir.hint
  | Tcmp_if of
      Repro_dex.Ast.binop * Repro_hgraph.Hir.reg * Repro_hgraph.Hir.reg
      * Repro_hgraph.Hir.reg * Repro_dex.Bytecode.cond
      * Repro_hgraph.Hir.reg option * Repro_hgraph.Hir.bid
      * Repro_hgraph.Hir.bid * Repro_hgraph.Hir.hint
      (** fused [Binop (op, d, x, y); If (cond, d, rhs, ...)] *)
  | Tret of Repro_hgraph.Hir.reg option
  | Tthrow of Repro_hgraph.Hir.reg
  | Tmissing of string
      (** dispatch target absent from the graph; raises
          [Invalid_argument msg] at entry, matching [Hir.block] *)

type bplan = { bp_parts : part array; bp_term : tplan }

type fplan = {
  fp_func : Repro_hgraph.Hir.func;
  fp_fetch : int;  (** {!Exec.fetch_penalty_of} of the function *)
  fp_blocks : bplan option array;  (** indexed by bid; [None] = not a
      dispatch target (inlined into predecessors) or unreachable *)
  fp_regs_ok : bool;  (** plan-time proof that every register index the
      function mentions lies in [0, nregs): licenses the executor's
      unchecked register-file accesses on the fast path.  When [false]
      (malformed code), all segments run on the exact checked path. *)
}

type t = {
  pl_cost : Repro_vm.Cost.model;
  pl_funcs : (int, fplan) Hashtbl.t;
}

val is_barrier : Repro_hgraph.Hir.instr -> bool

val build : Repro_vm.Cost.model -> Binary.t -> t
(** Analyze every function of the binary (no caching). *)

val plan_for : ?cost:Repro_vm.Cost.model -> Binary.t -> t
(** Cached {!build}, keyed by ([Binary.digest], cost model) with a typed
    {!Repro_vm.Cost.equal} match — never polymorphic compare.  Thread-safe;
    build/hit counters are deterministic across [-j] levels. *)

val reset_cache : unit -> unit
