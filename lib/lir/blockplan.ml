(* Decode-time basic-block analysis for the block-fused execution engine
   (ROADMAP item 2; see the guillotine EVM analysis notes in SNIPPETS.md).

   For every function of a compiled binary we precompute, once per binary:

   - a *plan* per dispatch-target block (the entry block, conditional-branch
     targets, and straightening cut points).  Goto chains are straightened
     into the plan, so unconditional control transfers cost a single
     micro-op instead of a dispatch round trip;

   - a split of each plan's straight-line code into *segments* separated by
     barrier instructions (calls, allocation, suspend checks — anything
     whose cycle charge is dynamic or whose callee can observe the cycle
     counter).  Each segment carries a static worst-case cycle bound, the
     moral equivalent of the BEGINBLOCK gas/stack rollup: at run time one
     headroom comparison against the remaining fuel replaces the
     per-instruction fuel checks of the reference executor;

   - peephole-fused micro-ops for the hot pairs the translator emits
     (guard+access, load+op) and a fused compare-and-branch terminator.
     Fused ops charge the same costs in the same order as their unfused
     expansion — fusion only removes dispatch, never accounting.

   The analysis is pure bookkeeping: the executor in [Blockexec] remains
   bit-identical to [Exec] on cycle accounting, observable memory, return
   values and crash/hang classification.  Plans are immutable after
   construction and cached keyed by ([Binary.digest], cost model). *)

module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast
module Hir = Repro_hgraph.Hir
module Cost = Repro_vm.Cost
module Trace = Repro_util.Trace

(* ------------------------------ micro-ops --------------------------- *)

type mop =
  | Op of Hir.instr
  (* a straightened [Goto]: charge (branch + fetch penalty) and fall
     through into the inlined target block's code.  Carries the target bid
     so the lockstep block hook can fire at the seam exactly where the
     reference engine re-enters its dispatch loop. *)
  | Goto_seam of int * Hir.bid
  (* GuardNull a; LoadLen (d, a) *)
  | Null_load_len of Hir.reg * Hir.reg
  (* GuardNull o; LoadField (k, d, o, off) *)
  | Null_load_field of B.elem_kind * Hir.reg * Hir.reg * int
  (* GuardNull o; StoreField (k, o, v, off) *)
  | Null_store_field of B.elem_kind * Hir.reg * Hir.reg * int
  (* GuardBounds (i, l); LoadElem (k, d, a, i) *)
  | Bounds_load_elem of B.elem_kind * Hir.reg * Hir.reg * Hir.reg * Hir.reg
  (* GuardBounds (i, l); StoreElem (k, a, i, v) *)
  | Bounds_store_elem of B.elem_kind * Hir.reg * Hir.reg * Hir.reg * Hir.reg
  (* LoadElem (k, dl, a, i); Binop (op, d2, x, y) with x = dl or y = dl *)
  | Load_elem_op of
      B.elem_kind * Hir.reg * Hir.reg * Hir.reg
      * Ast.binop * Hir.reg * Hir.reg * Hir.reg

type seg = {
  sg_ops : mop array;
  sg_bound : int;
  (* static worst-case cycles of the whole segment: if
     [cycles + sg_bound <= fuel] holds at segment entry, no charge inside
     the segment can raise Timeout, so the per-instruction fuel checks are
     provably dead and the segment runs on a local accumulator *)
  sg_insns : int;
  (* underlying charge sites covered (fused micro-ops count each half) —
     the number of reference-engine fuel checks the headroom test hoists,
     minus the one test itself *)
}

type part =
  | Straight of seg
  | Barrier of Hir.instr
  (* executed exactly (per-charge fuel checks): calls (callees observe the
     cycle counter), allocation (dynamic or dx-dependent cost, can GC/OOM),
     suspend checks (GC pause cost depends on live heap), Nclock (reads the
     cycle counter), and composite-dialect instructions (which the
     reference executor rejects; kept so the failure reproduces exactly) *)

type tplan =
  | Tgoto of Hir.bid                      (* straightening cut point *)
  | Tif of B.cond * Hir.reg * Hir.reg option * Hir.bid * Hir.bid * Hir.hint
  (* Binop (op, d, x, y); If (cond, d, rhs, bt, be, hint) — the fused
     compare-and-branch pair *)
  | Tcmp_if of
      Ast.binop * Hir.reg * Hir.reg * Hir.reg
      * B.cond * Hir.reg option * Hir.bid * Hir.bid * Hir.hint
  | Tret of Hir.reg option
  | Tthrow of Hir.reg
  | Tmissing of string
  (* dispatch target without a block: raising [Invalid_argument msg] at
     block entry reproduces [Hir.block]'s failure at the same point *)

type bplan = {
  bp_parts : part array;
  bp_term : tplan;
}

type fplan = {
  fp_func : Hir.func;
  fp_fetch : int;                         (* Exec.fetch_penalty_of *)
  fp_blocks : bplan option array;         (* indexed by bid *)
  fp_regs_ok : bool;
  (* every register index the function mentions lies in [0, nregs): the
     fast path may use unchecked register-file accesses.  Functions that
     fail the proof (malformed genomes) run all segments on the exact
     path, whose checked accesses reproduce the reference failure. *)
}

type t = {
  pl_cost : Cost.model;
  pl_funcs : (int, fplan) Hashtbl.t;
}

(* ------------------------- static cost bounds ----------------------- *)

(* Worst case over the runtime operand types [Exec.binop_cost] can see. *)
let max_binop_cost (c : Cost.model) op =
  match op with
  | Ast.Add | Ast.Sub -> max c.Cost.float_alu c.Cost.int_alu
  | Ast.Mul -> max c.Cost.float_mul c.Cost.int_mul
  | Ast.Div | Ast.Rem -> max c.Cost.float_div c.Cost.int_div
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr -> c.Cost.int_alu
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    max c.Cost.float_alu c.Cost.int_alu
  | Ast.Land | Ast.Lor -> c.Cost.int_alu

let is_barrier (i : Hir.instr) =
  match i with
  | Hir.NewObj _ | Hir.NewArr _ | Hir.CallStatic _ | Hir.CallVirtual _
  | Hir.SuspendCheck -> true
  | Hir.CallNative (_, B.Nclock, _, _) -> true
  | Hir.CallNative _ -> false
  | Hir.ALoadC _ | Hir.AStoreC _ | Hir.ArrLenC _ | Hir.IGetC _
  | Hir.IPutC _ -> true
  | Hir.Const _ | Hir.Move _ | Hir.Binop _ | Hir.Fma _ | Hir.Select _
  | Hir.Unop _ | Hir.I2f _ | Hir.F2i _ | Hir.GuardNull _ | Hir.GuardBounds _
  | Hir.GuardDivZero _ | Hir.LoadElem _ | Hir.StoreElem _ | Hir.LoadLen _
  | Hir.LoadField _ | Hir.StoreField _ | Hir.LoadClass _ | Hir.SGet _
  | Hir.SPut _ -> false

(* Static upper bound on what one non-barrier instruction charges. *)
let instr_bound (c : Cost.model) (i : Hir.instr) =
  match i with
  | Hir.Const _ -> c.Cost.const
  | Hir.Move _ -> c.Cost.move
  | Hir.Binop (op, _, _, _) -> max_binop_cost c op
  | Hir.Fma _ -> c.Cost.float_mul
  | Hir.Select _ -> c.Cost.int_alu
  | Hir.Unop (Ast.Neg, _, _) -> max c.Cost.int_alu c.Cost.float_alu
  | Hir.Unop (Ast.Not, _, _) -> c.Cost.int_alu
  | Hir.I2f _ | Hir.F2i _ -> c.Cost.float_conv
  | Hir.GuardNull _ | Hir.GuardDivZero _ -> c.Cost.null_check
  | Hir.GuardBounds _ -> c.Cost.bounds_check
  | Hir.LoadElem _ | Hir.LoadLen _ | Hir.LoadField _ | Hir.LoadClass _
  | Hir.SGet _ -> c.Cost.load
  | Hir.StoreElem _ | Hir.StoreField _ | Hir.SPut _ -> c.Cost.store
  | Hir.CallNative (_, n, _, mode) ->
    (* Jni.call charges transition + native work; both are static per
       (native, mode), so non-Nclock natives can stay inside a segment *)
    (match mode with
     | Hir.Jni -> c.Cost.jni_call
     | Hir.Intrinsic -> c.Cost.intrinsic_call)
    + Cost.native_work n
  | Hir.NewObj _ | Hir.NewArr _ | Hir.CallStatic _ | Hir.CallVirtual _
  | Hir.SuspendCheck | Hir.ALoadC _ | Hir.AStoreC _ | Hir.ArrLenC _
  | Hir.IGetC _ | Hir.IPutC _ ->
    invalid_arg "Blockplan.instr_bound: barrier instruction"

let mop_bound c = function
  | Op i -> instr_bound c i
  | Goto_seam (n, _) -> n
  | Null_load_len _ -> c.Cost.null_check + c.Cost.load
  | Null_load_field _ -> c.Cost.null_check + c.Cost.load
  | Null_store_field _ -> c.Cost.null_check + c.Cost.store
  | Bounds_load_elem _ -> c.Cost.bounds_check + c.Cost.load
  | Bounds_store_elem _ -> c.Cost.bounds_check + c.Cost.store
  | Load_elem_op (_, _, _, _, op, _, _, _) ->
    c.Cost.load + max_binop_cost c op

let mop_insns = function
  | Op _ | Goto_seam _ -> 1
  | Null_load_len _ | Null_load_field _ | Null_store_field _
  | Bounds_load_elem _ | Bounds_store_elem _ | Load_elem_op _ -> 2

(* ----------------------------- fusion ------------------------------- *)

(* Peephole over one block's instruction list.  Patterns mirror exactly
   what [Translate] emits for decomposed accesses, so the pairs are
   adjacent in practice; fusion is suppressed across block seams (a branch
   can land between the halves) because this runs strictly per block. *)
let fuse_block ~fused insns =
  let rec go acc = function
    | Hir.GuardNull r :: Hir.LoadLen (d, a) :: rest when a = r ->
      incr fused;
      go (Null_load_len (d, a) :: acc) rest
    | Hir.GuardNull r :: Hir.LoadField (k, d, o, off) :: rest when o = r ->
      incr fused;
      go (Null_load_field (k, d, o, off) :: acc) rest
    | Hir.GuardNull r :: Hir.StoreField (k, o, v, off) :: rest when o = r ->
      incr fused;
      go (Null_store_field (k, o, v, off) :: acc) rest
    | Hir.GuardBounds (i, l) :: Hir.LoadElem (k, d, a, i2) :: rest
      when i2 = i ->
      incr fused;
      go (Bounds_load_elem (k, d, a, i, l) :: acc) rest
    | Hir.GuardBounds (i, l) :: Hir.StoreElem (k, a, i2, v) :: rest
      when i2 = i ->
      incr fused;
      go (Bounds_store_elem (k, a, i2, v, l) :: acc) rest
    | Hir.LoadElem (k, d, a, i) :: Hir.Binop (op, d2, x, y) :: rest
      when x = d || y = d ->
      incr fused;
      go (Load_elem_op (k, d, a, i, op, d2, x, y) :: acc) rest
    | i :: rest -> go (Op i :: acc) rest
    | [] -> List.rev acc
  in
  go [] insns

(* --------------------------- straightening -------------------------- *)

(* Hard limits in the spirit of the guillotine analysis: bound the work and
   memory of any single plan up front instead of trusting input shape.
   Chains cut here end in [Tgoto], which dispatches to the target's own
   plan — correctness never depends on how far straightening went. *)
let max_chain = 8
let max_stream = 512

let block_missing_msg (f : Hir.func) bid =
  Printf.sprintf "Hir.block: no block %d in %s" bid f.f_name

(* Collect the straightened micro-op stream starting at [bid0] and the
   terminator that ends it. *)
let collect_stream c fetch ~fused (f : Hir.func) bid0 =
  let rev_stream = ref [] in
  let count = ref 0 in
  let rec walk bid visited =
    match Hashtbl.find_opt f.Hir.f_blocks bid with
    | None -> Tmissing (block_missing_msg f bid)
    | Some b ->
      let mops = fuse_block ~fused b.Hir.insns in
      rev_stream := List.rev_append mops !rev_stream;
      count := !count + List.length mops;
      (match b.Hir.term with
       | Hir.Goto t
         when (not (List.mem t visited))
              && List.length visited < max_chain
              && !count < max_stream
              && Hashtbl.mem f.Hir.f_blocks t ->
         rev_stream :=
           Goto_seam (c.Cost.branch + fetch, t) :: !rev_stream;
         walk t (t :: visited)
       | Hir.Goto t -> Tgoto t
       | Hir.If (cond, a, rhs, bt, be, hint) ->
         (* compare-and-branch fusion: the stream's last micro-op computes
            the tested register.  The binop moves into the terminator and
            is charged exactly there, preserving the reference's
            charge order. *)
         (match !rev_stream with
          | Op (Hir.Binop (op, d, x, y)) :: rest when d = a ->
            incr fused;
            rev_stream := rest;
            Tcmp_if (op, d, x, y, cond, rhs, bt, be, hint)
          | _ -> Tif (cond, a, rhs, bt, be, hint))
       | Hir.Ret r -> Tret r
       | Hir.ThrowT r -> Tthrow r)
  in
  let term = walk bid0 [ bid0 ] in
  (List.rev !rev_stream, term)

(* Split a micro-op stream into segments at barrier instructions and attach
   the static headroom bounds. *)
let split_parts c ~hoisted mops =
  let parts = ref [] in
  let cur = ref [] in
  let flush () =
    match !cur with
    | [] -> ()
    | ops ->
      let ops = Array.of_list (List.rev ops) in
      let bound = Array.fold_left (fun a m -> a + mop_bound c m) 0 ops in
      let insns = Array.fold_left (fun a m -> a + mop_insns m) 0 ops in
      hoisted := !hoisted + max 0 (insns - 1);
      cur := [];
      parts := Straight { sg_ops = ops; sg_bound = bound; sg_insns = insns }
               :: !parts
  in
  List.iter
    (fun m ->
       match m with
       | Op i when is_barrier i ->
         flush ();
         parts := Barrier i :: !parts
       | m -> cur := m :: !cur)
    mops;
  flush ();
  Array.of_list (List.rev !parts)

let targets_of_term = function
  | Tgoto t -> [ t ]
  | Tif (_, _, _, bt, be, _) | Tcmp_if (_, _, _, _, _, _, bt, be, _) ->
    [ bt; be ]
  | Tret _ | Tthrow _ | Tmissing _ -> []

(* Plan-time range proof backing [fp_regs_ok]: the executor's register
   file has [max nregs 1] slots, so if every use and def across every
   block (fused micro-ops reference the same registers as their unfused
   halves) is inside [0, nregs), no fast-path access can be out of
   bounds. *)
let regs_in_range (f : Hir.func) =
  let limit = max f.Hir.f_nregs 1 in
  let ok r = r >= 0 && r < limit in
  Hashtbl.fold
    (fun _ b acc ->
       acc
       && List.for_all
            (fun i ->
               List.for_all ok (Hir.uses_of i)
               && (match Hir.def_of i with Some d -> ok d | None -> true))
            b.Hir.insns
       && List.for_all ok (Hir.uses_of_term b.Hir.term))
    f.Hir.f_blocks true

(* Build plans for every dispatch-target block reachable from the entry:
   the entry itself, conditional-branch targets, and straightening cut
   points.  Blocks only ever reached by straightened gotos need no plan of
   their own (their code is inlined into their predecessors' streams). *)
let build_fplan c (f : Hir.func) ~blocks_formed ~fused ~hoisted =
  let fetch = Exec.fetch_penalty_of f in
  let nb = max f.Hir.f_next_bid (f.Hir.f_entry + 1) in
  let blocks = Array.make nb None in
  let pending = Queue.create () in
  let want bid =
    if bid >= 0 && bid < nb then Queue.add bid pending
  in
  want f.Hir.f_entry;
  while not (Queue.is_empty pending) do
    let bid = Queue.pop pending in
    if blocks.(bid) = None then begin
      let stream, term = collect_stream c fetch ~fused f bid in
      let bp = { bp_parts = split_parts c ~hoisted stream; bp_term = term } in
      blocks.(bid) <- Some bp;
      incr blocks_formed;
      List.iter want (targets_of_term term)
    end
  done;
  { fp_func = f; fp_fetch = fetch; fp_blocks = blocks;
    fp_regs_ok = regs_in_range f }

(* ----------------------------- plan cache --------------------------- *)

let build cost binary =
  let blocks_formed = ref 0 and fused = ref 0 and hoisted = ref 0 in
  let pl_funcs = Hashtbl.create 16 in
  List.iter
    (fun mid ->
       match Binary.find binary mid with
       | Some f ->
         Hashtbl.replace pl_funcs mid
           (build_fplan cost f ~blocks_formed ~fused ~hoisted)
       | None -> ())
    (Binary.mids binary);
  Trace.incr "blockexec.plan_builds";
  Trace.add "blockexec.blocks_formed" !blocks_formed;
  Trace.add "blockexec.ops_fused" !fused;
  Trace.add "blockexec.checks_hoisted" !hoisted;
  { pl_cost = cost; pl_funcs }

(* Keyed by (binary digest, cost model): [Replay.run ?cost] may replay the
   same binary under different models, and segment bounds depend on the
   model.  Lookup and build both run under the lock so the build/hit
   counters are deterministic for every -j level: exactly one build per
   unique key, every other install is a hit. *)
let cache : (string, (Cost.model * t) list) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let max_cached = 256

let plan_for ?(cost = Cost.default) binary =
  let key = Binary.digest binary in
  Mutex.protect cache_lock @@ fun () ->
  let entries = Option.value (Hashtbl.find_opt cache key) ~default:[] in
  match List.find_opt (fun (c0, _) -> Cost.equal c0 cost) entries with
  | Some (_, plan) ->
    Trace.incr "blockexec.plan_cache_hits";
    plan
  | None ->
    let entries =
      if Hashtbl.length cache >= max_cached && entries = [] then begin
        (* size backstop: the GA's working set is far below this; on
           overflow drop everything rather than track recency *)
        Hashtbl.reset cache;
        Trace.incr "blockexec.plan_cache_flushes";
        []
      end
      else entries
    in
    let plan = build cost binary in
    Hashtbl.replace cache key ((cost, plan) :: entries);
    plan

let reset_cache () =
  Mutex.protect cache_lock @@ fun () -> Hashtbl.reset cache
