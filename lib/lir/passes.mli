(** The LLVM-style optimization pass catalog — the search space of the
    genetic algorithm (paper §3.6).

    Passes operate on decomposed-dialect graphs (after {!Translate.func}).
    Each catalog entry declares integer parameters with valid ranges;
    applying a pass with an out-of-range parameter raises {!Bad_param},
    which the driver reports as a compile error (the real toolchain rejects
    invalid flag combinations the same way).

    The catalog deliberately contains *unsafe* passes ([safe = false]):
    value-changing float rewrites, guard removal without proof, alias-blind
    motion.  They reproduce the behaviour of Figure 1: randomly composed
    sequences sometimes produce binaries that crash, hang or silently
    compute wrong results, which only the replay-based verification map can
    filter out. *)

module Hir = Repro_hgraph.Hir

type env = {
  dx : Repro_dex.Bytecode.dexfile;
  get_func : int -> Hir.func option;
  (** decomposed, unoptimized callee bodies for the inliner *)
  profile : (Hir.site -> (int * int) list) option;
  (** dispatch-type histogram per call site (class id, count), descending;
      collected by interpreted replay (§3.4) *)
}

type param = { pname : string; pmin : int; pmax : int; pdefault : int }

type t = {
  name : string;
  params : param list;
  safe : bool;
  descr : string;
  apply : env -> int array -> Hir.func -> Hir.func;
}

exception Bad_param of string

val catalog : t list
val find : string -> t
(** @raise Not_found *)

val run : env -> t -> int array -> Hir.func -> Hir.func
(** Validate parameters then apply.  @raise Bad_param. *)

val canon_token : string -> int array -> string
(** Canonical rendering of one (pass name, parameters) gene: the shared
    identity used by the Evalpool genome memo ([Genome.canon]) and the
    {!Stagecache} prefix fingerprints.  Two genes get the same token iff
    they are behaviourally indistinguishable to {!run}: parameter values
    of an arity-mismatched gene are folded away (validation rejects the
    gene on the count alone, before reading any value), everything else —
    including out-of-range values, which [Bad_param] messages quote — is
    kept verbatim. *)

(** {2 Fault-injection mutators}

    Semantic-miscompilation generators for the robustness net
    ([Repro_util.Faults], injected by {!Compile.llvm_binary} at the
    [Miscompile] point): each takes a decomposed-dialect function and
    returns a damaged copy, or [None] when the function has no applicable
    site.  The input function is never modified.  Site selection is
    deterministic in the supplied rng stream (blocks in ascending id
    order), so the same stream always plants the same fault. *)

type mutator = {
  m_name : string;   (** stable name, e.g. ["flip-branch"] *)
  m_descr : string;
  m_apply : Repro_util.Rng.t -> Hir.func -> Hir.func option;
}

val mutators : mutator list
(** The four mutator classes: [flip-branch] (swap a conditional's
    successors), [drop-store] (delete a heap/static store),
    [corrupt-const] (perturb a constant), [reorder-suspend] (move a GC
    suspend check within its block — typically benign for the
    verification map, which is exactly what the differential tests must
    establish). *)

val mutate : Repro_util.Rng.t -> Hir.func -> (string * Hir.func) option
(** Apply one applicable mutator (chosen by the rng stream), returning its
    name and the damaged copy; [None] if no mutator applies. *)
