(* Process-global, domain-safe LRU cache of per-(method, pass-prefix) IR
   states.  See stagecache.mli for the contract; compile.ml is the only
   writer/reader on the hot path. *)

module Hir = Repro_hgraph.Hir
module Trace = Repro_util.Trace

type entry = {
  sc_func : Hir.func;
  sc_charges : int array;
}

type binary_entry = {
  sb_binary : Binary.t;
  sb_charges : int array;
}

(* Prefix IR states and materialized binaries share one table, one LRU
   clock and one byte budget. *)
type payload =
  | P_prefix of entry
  | P_binary of binary_entry

(* One slot in the table: the payload plus LRU/byte bookkeeping. *)
type slot = {
  s_payload : payload;
  s_bytes : int;
  mutable s_tick : int;
}

type stats = {
  prefix_hits : int;
  prefix_misses : int;
  binary_hits : int;
  binary_misses : int;
  genes_reused : int;
  genes_run : int;
  longest_prefix : int;
  inserts : int;
  evictions : int;
  entries : int;
  bytes_held : int;
  frontend_funcs : int;
}

(* Everything below the mutex: entries, LRU clock, byte budget, counters.
   A single lock is fine — each operation is O(prefix length) at worst and
   the per-operation work it guards is tiny next to running a pass. *)
let lock = Mutex.create ()
let table : (string, slot) Hashtbl.t = Hashtbl.create 256
let tick = ref 0
let bytes_held = ref 0
let enabled_flag = ref true
let capacity = ref (256 * 1024 * 1024)

let c_prefix_hits = ref 0
let c_prefix_misses = ref 0
let c_binary_hits = ref 0
let c_binary_misses = ref 0
let c_genes_reused = ref 0
let c_genes_run = ref 0
let c_longest = ref 0
let c_inserts = ref 0
let c_evictions = ref 0
let c_frontend_funcs = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = locked (fun () -> !enabled_flag)
let set_enabled b = locked (fun () -> enabled_flag := b)
let capacity_bytes () = locked (fun () -> !capacity)

(* Rough resident-size estimate for one cached IR state: the block table,
   per-instruction boxes and the charge array.  Only relative accuracy
   matters — the budget bounds growth, it is not an allocator.  The last
   recorded charge is exactly [Hir.size] of the cached function (the
   compiler charges the post-pass size), so no O(size) walk is needed. *)
let slot_bytes entry =
  let n = Array.length entry.sc_charges in
  let ir_size = if n = 0 then Hir.size entry.sc_func else entry.sc_charges.(n - 1) in
  256 + (112 * ir_size) + (8 * n)

let binary_slot_bytes be =
  512 + (112 * be.sb_binary.Binary.size) + (8 * Array.length be.sb_charges)

let key ~frontend ~mid fp = Printf.sprintf "%s|%d|%s" frontend mid fp

(* Materialized binaries key on the whole genome and region: the full
   canonical fingerprint plus the method list the binary was built from.
   Front-end digests are hex (or "anon-..."), so "bin|" cannot collide
   with a prefix key. *)
let binary_key ~frontend ~mids fp =
  Printf.sprintf "bin|%s|%s|%s" frontend
    (String.concat "," (List.map string_of_int mids))
    fp

let evict_locked () =
  (* Evict least-recently-used slots until back under budget.  O(n) scans,
     but eviction is rare (only when the budget is crossed) and the table
     stays small under any sane budget. *)
  while !bytes_held > !capacity && Hashtbl.length table > 0 do
    let victim =
      Hashtbl.fold
        (fun k s acc ->
           match acc with
           | Some (_, best) when best.s_tick <= s.s_tick -> acc
           | _ -> Some (k, s))
        table None
    in
    match victim with
    | None -> ()
    | Some (k, s) ->
      Hashtbl.remove table k;
      bytes_held := !bytes_held - s.s_bytes;
      incr c_evictions;
      Trace.incr "stagecache.evictions"
  done

let set_capacity_bytes n =
  locked (fun () ->
      capacity := max 0 n;
      evict_locked ())

let fingerprints ~frontend spec =
  let acc = ref frontend in
  Array.of_list
    (List.map
       (fun (name, args) ->
          acc := Digest.to_hex
              (Digest.string (!acc ^ "/" ^ Passes.canon_token name args));
          !acc)
       spec)

let lookup ~frontend ~mid ~fps =
  locked (fun () ->
      if not !enabled_flag then None
      else begin
        let rec probe k =
          if k = 0 then None
          else
            match Hashtbl.find_opt table (key ~frontend ~mid fps.(k - 1)) with
            | Some ({ s_payload = P_prefix e; _ } as s) ->
              incr tick;
              s.s_tick <- !tick;
              Some (k, e)
            | Some _ | None -> probe (k - 1)
        in
        match probe (Array.length fps) with
        | Some (k, e) ->
          incr c_prefix_hits;
          c_genes_reused := !c_genes_reused + k;
          if k > !c_longest then c_longest := k;
          Trace.incr "stagecache.prefix_hits";
          Trace.add "stagecache.genes_reused" k;
          Some (k, e)
        | None ->
          incr c_prefix_misses;
          Trace.incr "stagecache.prefix_misses";
          None
      end)

let insert_slot_locked k payload bytes =
  if not (Hashtbl.mem table k) then begin
    incr tick;
    Hashtbl.add table k { s_payload = payload; s_bytes = bytes; s_tick = !tick };
    bytes_held := !bytes_held + bytes;
    incr c_inserts;
    Trace.incr "stagecache.inserts";
    evict_locked ();
    Trace.gauge "stagecache.bytes_held" (float_of_int !bytes_held)
  end

let insert ~frontend ~mid ~fp entry =
  locked (fun () ->
      if !enabled_flag then
        insert_slot_locked (key ~frontend ~mid fp) (P_prefix entry)
          (slot_bytes entry))

let lookup_binary ~frontend ~mids ~fp =
  locked (fun () ->
      if not !enabled_flag then None
      else
        match Hashtbl.find_opt table (binary_key ~frontend ~mids fp) with
        | Some ({ s_payload = P_binary be; _ } as s) ->
          incr tick;
          s.s_tick <- !tick;
          incr c_binary_hits;
          Trace.incr "stagecache.binary_hits";
          Some be
        | Some _ | None ->
          incr c_binary_misses;
          Trace.incr "stagecache.binary_misses";
          None)

let insert_binary ~frontend ~mids ~fp be =
  locked (fun () ->
      if !enabled_flag then
        insert_slot_locked (binary_key ~frontend ~mids fp) (P_binary be)
          (binary_slot_bytes be))

let note_gene_run () =
  locked (fun () -> incr c_genes_run);
  Trace.incr "stagecache.genes_run"

let note_frontend_func () =
  locked (fun () -> incr c_frontend_funcs);
  Trace.incr "stagecache.frontend_funcs"

let stats () =
  locked (fun () ->
      { prefix_hits = !c_prefix_hits;
        prefix_misses = !c_prefix_misses;
        binary_hits = !c_binary_hits;
        binary_misses = !c_binary_misses;
        genes_reused = !c_genes_reused;
        genes_run = !c_genes_run;
        longest_prefix = !c_longest;
        inserts = !c_inserts;
        evictions = !c_evictions;
        entries = Hashtbl.length table;
        bytes_held = !bytes_held;
        frontend_funcs = !c_frontend_funcs })

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      tick := 0;
      bytes_held := 0;
      c_prefix_hits := 0;
      c_prefix_misses := 0;
      c_binary_hits := 0;
      c_binary_misses := 0;
      c_genes_reused := 0;
      c_genes_run := 0;
      c_longest := 0;
      c_inserts := 0;
      c_evictions := 0;
      c_frontend_funcs := 0)

let print_stats ?(label = "stage cache") s =
  let total = s.prefix_hits + s.prefix_misses in
  let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  Printf.printf
    "%s: %d/%d prefix hits (%.0f%%), %d/%d whole-binary hits, %d/%d genes \
     reused (%.0f%%), longest reused prefix %d\n"
    label s.prefix_hits total
    (pct s.prefix_hits total)
    s.binary_hits
    (s.binary_hits + s.binary_misses)
    s.genes_reused
    (s.genes_reused + s.genes_run)
    (pct s.genes_reused (s.genes_reused + s.genes_run))
    s.longest_prefix;
  Printf.printf
    "  %d entries holding %.2f MB (%d inserts, %d evictions); %d front-end \
     templates built\n"
    s.entries
    (float_of_int s.bytes_held /. 1048576.)
    s.inserts s.evictions s.frontend_funcs
