module Hir = Repro_hgraph.Hir

type t = {
  funcs : (int, Hir.func) Hashtbl.t;
  mutable size : int;
}

let create fs =
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun f ->
       (* Precompute the register-pressure cache while the binary is still
          private to the building domain: executor reads of [f_pressure]
          from concurrent Evalpool workers must never race a lazy fill. *)
       if f.Hir.f_pressure = None then
         f.Hir.f_pressure <- Some (Repro_hgraph.Analysis.pressure f);
       Hashtbl.replace funcs f.Hir.f_mid f)
    fs;
  { funcs; size = List.fold_left (fun acc f -> acc + Hir.size f) 0 fs }

let find t mid = Hashtbl.find_opt t.funcs mid
let mids t =
  Hashtbl.fold (fun mid _ acc -> mid :: acc) t.funcs []
  |> List.sort Int.compare

let recompute_size t =
  t.size <- Hashtbl.fold (fun _ f acc -> acc + Hir.size f) t.funcs 0
