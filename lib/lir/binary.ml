module Hir = Repro_hgraph.Hir

type t = {
  funcs : (int, Hir.func) Hashtbl.t;
  mutable size : int;
  mutable dig : string option;
}

let find t mid = Hashtbl.find_opt t.funcs mid
let mids t =
  Hashtbl.fold (fun mid _ acc -> mid :: acc) t.funcs []
  |> List.sort Int.compare

(* Content digest over the printed graphs in ascending-mid order — the memo
   key Evalpool uses to deduplicate identical binaries, and the key of the
   block-plan cache.  Absent methods contribute an empty part so the digest
   stays byte-compatible with the historical [Pipeline.binary_key]. *)
let compute_digest t =
  let parts =
    List.map
      (fun mid ->
         match find t mid with
         | Some f -> Hir.to_string f
         | None -> "")
      (mids t)
  in
  Digest.to_hex (Digest.string (String.concat "\n" parts))

let digest t =
  match t.dig with
  | Some d -> d
  | None ->
    let d = compute_digest t in
    t.dig <- Some d;
    d

let create fs =
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun f ->
       (* Precompute the register-pressure cache while the binary is still
          private to the building domain: executor reads of [f_pressure]
          from concurrent Evalpool workers must never race a lazy fill. *)
       if f.Hir.f_pressure = None then
         f.Hir.f_pressure <- Some (Repro_hgraph.Analysis.pressure f);
       Hashtbl.replace funcs f.Hir.f_mid f)
    fs;
  let t =
    { funcs; size = List.fold_left (fun acc f -> acc + Hir.size f) 0 fs;
      dig = None }
  in
  (* Same single-domain discipline as [f_pressure]: fill the digest before
     the binary can cross domains, so concurrent [digest] reads never race
     a lazy fill.  The cost is already paid today — every candidate's memo
     key performs exactly this walk. *)
  t.dig <- Some (compute_digest t);
  t

let recompute_size t =
  t.size <- Hashtbl.fold (fun _ f acc -> acc + Hir.size f) t.funcs 0;
  (* the function table changed (overlay): the cached digest is stale *)
  t.dig <- None
