let pass name = (name, [||])

let o0 : Compile.spec = []

let o1 : Compile.spec =
  [ pass "simplifycfg"; pass "constfold"; pass "instsimplify"; pass "copyprop";
    pass "gvn"; pass "dce"; pass "guard-dedupe"; pass "branch-predict" ]

let o2 : Compile.spec =
  [ pass "simplifycfg"; pass "constfold"; pass "instsimplify"; pass "copyprop";
    ("inline", [| 60; |]); pass "constfold"; pass "instsimplify";
    pass "copyprop"; pass "gvn"; pass "lse"; pass "licm"; pass "guard-dedupe";
    pass "bce"; pass "reassociate"; pass "dce"; pass "simplifycfg";
    pass "branch-predict" ]

let o3 : Compile.spec =
  [ pass "simplifycfg"; pass "constfold"; pass "instsimplify"; pass "copyprop";
    ("inline", [| 120 |]); pass "constfold"; pass "instsimplify";
    pass "copyprop"; pass "gvn"; pass "lse"; pass "licm"; pass "guard-dedupe";
    pass "bce"; pass "reassociate";
    ("unroll", [| 4; 64; 0 |]);
    pass "constfold"; pass "copyprop"; pass "gvn"; pass "lse";
    pass "guard-dedupe"; pass "dce"; pass "simplifycfg"; pass "branch-predict" ]

(* o1/o2/o3 share their leading genes (o2 and o3 agree on the first four,
   o1 on the same head minus the inline block), which is what makes the
   preset family a natural stage-cache workload: compiling them in order
   reuses each predecessor's common prefix. *)
let all = [ ("O0", o0); ("O1", o1); ("O2", o2); ("O3", o3) ]

let of_name name =
  match String.lowercase_ascii name with
  | "o0" -> Some o0
  | "o1" -> Some o1
  | "o2" -> Some o2
  | "o3" -> Some o3
  | _ -> None
