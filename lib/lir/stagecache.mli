(** The staged-compilation cache: content-addressed memoization of
    per-pass-prefix IR states and materialized region binaries for
    {!Compile.llvm_binary_staged}.

    The GA mutates and recombines pass sequences a few genes at a time, so
    most of a generation's compile work re-runs prefixes that were already
    compiled for a parent genome.  This cache remembers, per (front-end
    digest, method, canonical gene-prefix fingerprint), the IR state after
    that prefix together with the {e recorded work charges} the prefix
    incurred, so a later compile resumes at its first divergent gene and
    pays only for the changed suffix.  A second stage memoizes the
    finished region binary under the whole-genome fingerprint, so exact
    recompiles (elite survivors, re-proposed hill-climb neighbours, any
    repeat under [--no-cache]) skip materialization — register-pressure
    precomputation and the content digest — entirely.

    {b Accounting transparency.}  An entry carries the per-pass
    [Hir.size] charges its prefix accumulated; on a hit the compiler
    replays them through its live work counter with the same
    [work_limit] check a real run performs.  [Compile_timeout]
    classification — and therefore every search history built on it — is
    byte-identical with the cache on or off, at any [-j].

    {b Identity.}  Prefix fingerprints hash {!Passes.canon_token} renderings
    of each gene, chained from the front-end digest — exactly the
    canonicalization the Evalpool genome memo uses ([Genome.canon]), so
    the two caches can never disagree on genome identity.

    {b Domain safety and bounds.}  One process-global table behind a
    mutex, shared by all Evalpool worker domains; cached funcs are never
    mutated after insertion (the compiler copies before materializing a
    binary from them).  Residency is bounded by an LRU byte budget with
    eviction counters.  All counters are mirrored as [stagecache.*] trace
    counters when tracing is enabled. *)

type entry = {
  sc_func : Repro_hgraph.Hir.func;
  (** IR state after the prefix; treat as immutable — copy before any
      mutating consumer ([Binary.create], fault mutators). *)
  sc_charges : int array;
  (** per-pass [Hir.size] work charges of genes [1..k], for replay *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Default on.  Disabling never changes results, only compile time
    (the [--no-stage-cache] knob). *)

val capacity_bytes : unit -> int
val set_capacity_bytes : int -> unit
(** LRU byte budget over held IR (default 256 MiB); shrinking evicts
    immediately. *)

val fingerprints : frontend:string -> (string * int array) list -> string array
(** [fingerprints ~frontend spec] chains {!Passes.canon_token} tokens from
    the front-end digest: element [k-1] identifies the [k]-gene canonical
    prefix of [spec] under that front-end. *)

val lookup :
  frontend:string -> mid:int -> fps:string array -> (int * entry) option
(** Longest cached prefix for this (front-end, method): [Some (k, entry)]
    means [entry] is the state after genes [1..k] ([fps.(k-1)]).  Bumps
    hit/miss and reuse counters; [None] when disabled. *)

val insert : frontend:string -> mid:int -> fp:string -> entry -> unit
(** Publish the state after a freshly-run prefix (first writer wins; the
    value is a pure function of the key, so racing duplicates are
    identical).  May evict least-recently-used entries to stay under the
    byte budget.  No-op when disabled. *)

type binary_entry = {
  sb_binary : Binary.t;
  (** the finished region binary, with register pressure and digest
      already computed; shared read-only across domains like Evalpool's
      binary memo *)
  sb_charges : int array;
  (** every work charge of the full compile, in compile order across the
      region, for replay (a recompile under a lower {e work limit} must
      still time out at the same point) *)
}

val lookup_binary :
  frontend:string -> mids:int list -> fp:string -> binary_entry option
(** Materialized binary for (front-end, region method list, whole-genome
    fingerprint).  Sound only for genomes that completed: completion
    implies every gene was arity- and range-valid, so the canonical
    fingerprint pins the raw parameter values (and with them the
    fault-injection site key).  {!Compile} bypasses this stage while
    [Repro_util.Faults] is armed so a binary cached clean is never
    returned where a fresh compile would have been sabotaged. *)

val insert_binary :
  frontend:string -> mids:int list -> fp:string -> binary_entry -> unit
(** Publish a finished binary (first writer wins); same budget/eviction
    rules as prefix entries.  No-op when disabled. *)

val note_gene_run : unit -> unit
(** One pass actually executed (the denominator of the reuse ratio). *)

val note_frontend_func : unit -> unit
(** One front-end template (bytecode→HGraph→translate of one method)
    actually built. *)

type stats = {
  prefix_hits : int;      (** method-compiles resumed from a cached prefix *)
  prefix_misses : int;    (** method-compiles with no usable prefix *)
  binary_hits : int;      (** whole compiles served as materialized binaries *)
  binary_misses : int;    (** binary-stage probes that fell through *)
  genes_reused : int;     (** passes skipped by prefix reuse *)
  genes_run : int;        (** passes actually executed *)
  longest_prefix : int;   (** longest prefix ever reused, in genes *)
  inserts : int;
  evictions : int;
  entries : int;          (** live entries *)
  bytes_held : int;       (** estimated resident bytes of live entries *)
  frontend_funcs : int;   (** front-end templates built across frontends *)
}

val stats : unit -> stats
val reset : unit -> unit
(** Drop all entries and zero the counters (between independent runs and
    tests). *)

val print_stats : ?label:string -> stats -> unit
(** Human-readable end-of-run report, printed alongside the Evalpool cache
    report. *)
