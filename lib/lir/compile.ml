module B = Repro_dex.Bytecode
module Hir = Repro_hgraph.Hir
module Build = Repro_hgraph.Build
module Android = Repro_hgraph.Android
module Trace = Repro_util.Trace
module Faults = Repro_util.Faults

exception Compile_error of string
exception Compile_timeout

type spec = (string * int array) list

let size_limit = 20_000
let work_limit = 600_000

(* Test hook: searches always run with the constant above, but the
   work-limit boundary tests need to park the ceiling exactly on a
   genome's total charge.  Set/restored sequentially, outside any worker
   domains. *)
let effective_work_limit = ref work_limit

let with_work_limit limit f =
  let prev = !effective_work_limit in
  effective_work_limit := limit;
  Fun.protect ~finally:(fun () -> effective_work_limit := prev) f

(* The LLVM path uses the work-in-progress (naive) translation. *)
let translated_unopt dx mid =
  match Build.func dx mid with
  | f -> Some (Translate.func ~naive:true dx f)
  | exception Build.Uncompilable _ -> None

let pass_env ?profile dx =
  { Passes.dx; get_func = translated_unopt dx; profile }

let android_binary dx mids =
  Trace.span ~cat:"compile" "compile:android" @@ fun () ->
  let funcs =
    List.filter_map
      (fun mid ->
         match Android.compile_method dx mid with
         | f -> Some (Translate.func dx f)
         | exception Build.Uncompilable _ -> None)
      mids
  in
  Binary.create funcs

(* ------------------------- hoisted front-end ------------------------- *)

(* Everything about a compile that does not depend on the genome: the
   dexfile, the dispatch-type profile, and the translated unoptimized
   bodies (which double as the inliner's callee source).  Built once per
   (app, capture, profile) and shared by every genome and every Evalpool
   worker domain; the memo table is mutex-protected and the funcs in it
   are immutable by the pass convention (every pass copies its input, and
   the staged driver copies before materializing a binary). *)
type frontend = {
  fe_dx : B.dexfile;
  fe_profile : (Hir.site -> (int * int) list) option;
  fe_digest : string;
  (** content key of (app, profile): namespaces the stage cache *)
  fe_cacheable : bool;
  (** anonymous frontends (the legacy [llvm_binary] entry point) carry a
      nonce digest and never touch the stage cache *)
  fe_lock : Mutex.t;
  fe_funcs : (int, Hir.func option) Hashtbl.t;
}

let frontend_func fe mid =
  Mutex.lock fe.fe_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock fe.fe_lock) @@ fun () ->
  match Hashtbl.find_opt fe.fe_funcs mid with
  | Some r -> r
  | None ->
    let r =
      Trace.span ~cat:"compile" "compile:frontend"
        ~args:[ ("mid", string_of_int mid) ]
      @@ fun () -> translated_unopt fe.fe_dx mid
    in
    Hashtbl.add fe.fe_funcs mid r;
    Stagecache.note_frontend_func ();
    r

let fe_pass_env fe =
  { Passes.dx = fe.fe_dx;
    get_func = (fun mid -> frontend_func fe mid);
    profile = fe.fe_profile }

let frontend ?profile ?(prewarm = []) ~key dx =
  let fe =
    { fe_dx = dx; fe_profile = profile;
      fe_digest = Digest.to_hex (Digest.string key);
      fe_cacheable = true;
      fe_lock = Mutex.create ();
      fe_funcs = Hashtbl.create 64 }
  in
  List.iter (fun mid -> ignore (frontend_func fe mid)) prewarm;
  fe

let frontend_digest fe = fe.fe_digest

(* A one-shot front-end for the legacy entry point: still memoizes callee
   translations within the call (the inliner asks for the same bodies
   repeatedly), but its nonce digest keeps it out of the shared stage
   cache — an arbitrary [?profile] closure has no content address. *)
let fe_nonce = Atomic.make 0

let anonymous_frontend ?profile dx =
  { fe_dx = dx; fe_profile = profile;
    fe_digest =
      Printf.sprintf "anon-%d-%d" (Domain.self () :> int)
        (Atomic.fetch_and_add fe_nonce 1);
    fe_cacheable = false;
    fe_lock = Mutex.create ();
    fe_funcs = Hashtbl.create 16 }

(* Site key for the [Miscompile] fault point: depends only on the method
   and the (raw) pass specification, so whether a given compile is
   sabotaged is a pure function of the genome — deterministic across
   worker domains, cache states and retries, exactly like a real
   miscompiling optimization sequence. *)
let spec_hash spec =
  Faults.hash_string
    (String.concat ";"
       (List.map
          (fun (name, args) ->
             name ^ ":"
             ^ String.concat "," (List.map string_of_int (Array.to_list args)))
          spec))

(* --------------------------- staged driver --------------------------- *)

(* The pass loop proper.  Order of operations per gene is exactly the
   historical one — run the pass, charge [Hir.size] to the shared work
   counter, size check, work check — and a cached prefix replays its
   recorded charges through the same counter and checks, so timeout
   classification cannot depend on the cache.  Entries are published
   after the checks pass, i.e. only states a real run survives. *)
let llvm_binary_staged fe spec mids =
  Trace.span ~cat:"compile" "compile:llvm" @@ fun () ->
  let env = fe_pass_env fe in
  let resolved =
    Array.of_list
      (List.map
         (fun (name, args) ->
            match Passes.find name with
            | pass -> (pass, args)
            | exception Not_found ->
              raise (Compile_error ("unknown pass " ^ name)))
         spec)
  in
  let n = Array.length resolved in
  let use_cache = fe.fe_cacheable && Stagecache.enabled () in
  let fps =
    if use_cache then Stagecache.fingerprints ~frontend:fe.fe_digest spec
    else [||]
  in
  let work = ref 0 in
  let charge size =
    work := !work + size;
    if size > size_limit then raise Compile_timeout;
    if !work > !effective_work_limit then raise Compile_timeout
  in
  (* The materialization stage: a completed compile is pure in (front-end,
     region, whole-genome canonical fingerprint) — completion implies
     every gene was arity- and range-valid, so the canonical fingerprint
     pins the raw spec, and with it the miscompile-fault site key.  Armed
     fault injection bypasses the stage anyway: the cache must never
     answer with a clean binary where a fresh compile would have been
     sabotaged (entries are only written clean, see below). *)
  let bin_cache = use_cache && n > 0 && not (Faults.active ()) in
  let full_fp = if bin_cache then Some fps.(n - 1) else None in
  let flat_rev = ref [] in   (* every charge of this compile, newest first *)
  let shash = spec_hash spec in
  let compile_one mid =
    match frontend_func fe mid with
    | None -> None
    | Some f0 ->
      let start, f0, charges0 =
        match
          if use_cache then
            Stagecache.lookup ~frontend:fe.fe_digest ~mid ~fps
          else None
        with
        | Some (k, e) ->
          (* Resume after the cached prefix; its recorded charges flow
             through the live counter first, preserving the exact point
             at which a mid-major compile would have timed out. *)
          Array.iter charge e.Stagecache.sc_charges;
          (k, e.Stagecache.sc_func, List.rev (Array.to_list e.Stagecache.sc_charges))
        | None -> (0, f0, [])
      in
      let f = ref f0 in
      let charges = ref charges0 in   (* newest first *)
      for i = start to n - 1 do
        let pass, args = resolved.(i) in
        let f' =
          Trace.span ~cat:"pass" ("pass:" ^ pass.Passes.name)
          @@ fun () ->
          match Passes.run env pass args !f with
          | f -> f
          | exception Passes.Bad_param msg -> raise (Compile_error msg)
        in
        let size = Hir.size f' in
        Trace.add "compile.work" size;
        charge size;
        Stagecache.note_gene_run ();
        f := f';
        charges := size :: !charges;
        if use_cache then
          Stagecache.insert ~frontend:fe.fe_digest ~mid ~fp:fps.(i)
            { Stagecache.sc_func = f';
              sc_charges = Array.of_list (List.rev !charges) }
      done;
      flat_rev := !charges @ !flat_rev;
      (* The final state may be shared (a cache entry, or the front-end
         template when the spec is empty): copy before the mutating
         consumers below.  [Hir.copy] preserves the printed form, so
         binary digests are unchanged. *)
      let f = Hir.copy !f in
      (* Fault injection: with the registry armed, a fired [Miscompile]
         plants one semantic mutation in the optimized function — the
         miscompiled binary the verification net must later discard. *)
      let key = Faults.combine mid shash in
      let f =
        if Faults.fire Faults.Miscompile ~key then
          match Passes.mutate (Faults.rng Faults.Miscompile ~key) f with
          | Some (_, f') ->
            Faults.record Faults.Miscompile;
            f'
          | None -> f
        else f
      in
      Some f
  in
  match full_fp with
  | Some fp ->
    (match Stagecache.lookup_binary ~frontend:fe.fe_digest ~mids ~fp with
     | Some be ->
       (* Replay the whole compile's recorded charges: a repeat under a
          tighter [effective_work_limit] still times out at the exact
          point the uncached run would have. *)
       Array.iter charge be.Stagecache.sb_charges;
       be.Stagecache.sb_binary
     | None ->
       let b = Binary.create (List.filter_map compile_one mids) in
       Stagecache.insert_binary ~frontend:fe.fe_digest ~mids ~fp
         { Stagecache.sb_binary = b;
           sb_charges = Array.of_list (List.rev !flat_rev) };
       b)
  | None -> Binary.create (List.filter_map compile_one mids)

let llvm_binary ?profile dx spec mids =
  llvm_binary_staged (anonymous_frontend ?profile dx) spec mids
