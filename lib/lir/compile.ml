module B = Repro_dex.Bytecode
module Hir = Repro_hgraph.Hir
module Build = Repro_hgraph.Build
module Android = Repro_hgraph.Android
module Trace = Repro_util.Trace
module Faults = Repro_util.Faults

exception Compile_error of string
exception Compile_timeout

type spec = (string * int array) list

let size_limit = 20_000
let work_limit = 600_000

(* The LLVM path uses the work-in-progress (naive) translation. *)
let translated_unopt dx mid =
  match Build.func dx mid with
  | f -> Some (Translate.func ~naive:true dx f)
  | exception Build.Uncompilable _ -> None

let pass_env ?profile dx =
  { Passes.dx; get_func = translated_unopt dx; profile }

let android_binary dx mids =
  Trace.span ~cat:"compile" "compile:android" @@ fun () ->
  let funcs =
    List.filter_map
      (fun mid ->
         match Android.compile_method dx mid with
         | f -> Some (Translate.func dx f)
         | exception Build.Uncompilable _ -> None)
      mids
  in
  Binary.create funcs

(* Site key for the [Miscompile] fault point: depends only on the method
   and the (canonical) pass specification, so whether a given compile is
   sabotaged is a pure function of the genome — deterministic across
   worker domains, cache states and retries, exactly like a real
   miscompiling optimization sequence. *)
let spec_hash spec =
  Faults.hash_string
    (String.concat ";"
       (List.map
          (fun (name, args) ->
             name ^ ":"
             ^ String.concat "," (List.map string_of_int (Array.to_list args)))
          spec))

let llvm_binary ?profile dx spec mids =
  Trace.span ~cat:"compile" "compile:llvm" @@ fun () ->
  let env = pass_env ?profile dx in
  let resolved =
    List.map
      (fun (name, args) ->
         match Passes.find name with
         | pass -> (pass, args)
         | exception Not_found -> raise (Compile_error ("unknown pass " ^ name)))
      spec
  in
  let work = ref 0 in
  let shash = spec_hash spec in
  let compile_one mid =
    match translated_unopt dx mid with
    | None -> None
    | Some f0 ->
      let f =
        List.fold_left
          (fun f (pass, args) ->
             let f =
               Trace.span ~cat:"pass" ("pass:" ^ pass.Passes.name)
               @@ fun () ->
               match Passes.run env pass args f with
               | f -> f
               | exception Passes.Bad_param msg -> raise (Compile_error msg)
             in
             let size = Hir.size f in
             work := !work + size;
             if size > size_limit then raise Compile_timeout;
             if !work > work_limit then raise Compile_timeout;
             f)
          f0 resolved
      in
      (* Fault injection: with the registry armed, a fired [Miscompile]
         plants one semantic mutation in the optimized function — the
         miscompiled binary the verification net must later discard. *)
      let key = Faults.combine mid shash in
      let f =
        if Faults.fire Faults.Miscompile ~key then
          match Passes.mutate (Faults.rng Faults.Miscompile ~key) f with
          | Some (_, f') ->
            Faults.record Faults.Miscompile;
            f'
          | None -> f
        else f
      in
      Some f
  in
  Binary.create (List.filter_map compile_one mids)
