(** One driver per table/figure of the paper's evaluation (§5).  Each
    experiment returns structured data plus a printer that renders rows in
    the shape the paper reports.  See DESIGN.md's per-experiment index. *)

module Ga = Repro_search.Ga

(* ------------------------------- Table 1 --------------------------- *)

val table1 : unit -> (string * string * string) list
(** (type, name, description) rows. *)

val print_table1 : unit -> unit

(* ------------------------------- Figure 1 -------------------------- *)

type fig1_outcome =
  | F1_compiler_error
  | F1_compile_timeout
  | F1_runtime_crash
  | F1_runtime_timeout
  | F1_wrong_output
  | F1_correct

type fig1 = {
  f1_counts : (fig1_outcome * int) list;
  f1_total : int;
}

val fig1 : ?sequences:int -> ?seed:int -> ?jobs:int -> ?cache:bool -> unit -> fig1
(** Random optimization sequences applied to the FFT kernel, classified by
    compilation/replay outcome (paper: ~60% correct, ~15% compiler
    error/timeout, ~25% runtime-visible misbehaviour).  The sweep runs on
    an {!Repro_search.Evalpool}: [jobs] worker domains, [cache] memoizing
    duplicate genomes/binaries; counts are identical for any setting. *)

val print_fig1 : fig1 -> unit

(* ------------------------------- Figure 2 -------------------------- *)

type fig2 = {
  f2_speedups : float array;     (** vs the Android compiler, ascending *)
  f2_android_ms : float;
}

val fig2 : ?binaries:int -> ?seed:int -> ?jobs:int -> ?cache:bool -> unit -> fig2
(** Replay speedup over the Android compiler for randomly generated
    *correct* binaries of the FFT kernel.  Evaluated in parallel batches;
    the draw stream and stopping rule match the sequential loop. *)

val print_fig2 : fig2 -> unit

(* ------------------------------- Figure 3 -------------------------- *)

type fig3_row = {
  f3_evals : int;
  f3_online : float;        (** single-trajectory estimate *)
  f3_online_lo75 : float;
  f3_online_hi75 : float;
  f3_online_lo95 : float;
  f3_online_hi95 : float;
  f3_offline : float;
}

type fig3 = {
  f3_rows : fig3_row list;
  f3_true_speedup : float;        (** O1 over O0 on the largest input *)
  f3_online_settle : int option;  (** evals until the online estimate stays
                                      within 10% of the true value *)
  f3_offline_settle : int option;
}

val fig3 : ?max_evals:int -> ?trajectories:int -> ?seed:int -> unit -> fig3

val print_fig3 : fig3 -> unit

(* ----------------------------- Figures 7/8/9 ----------------------- *)

type fig7_row = {
  f7_app : string;
  f7_cls : string;
  f7_o3 : float;
  f7_ga : float;
}

val fig7 :
  ?cfg:Ga.config -> ?seed:int -> ?apps:string list -> ?jobs:int ->
  ?cache:bool -> unit -> fig7_row list
val print_fig7 : fig7_row list -> unit

type fig8_row = {
  f8_app : string;
  f8_fractions : (string * float) list;   (** category name -> share *)
}

val fig8 : ?cfg:Ga.config -> ?seed:int -> ?apps:string list -> unit -> fig8_row list
val print_fig8 : fig8_row list -> unit

type fig9_point = {
  f9_generation : int;
  f9_best : float;    (** speedup over Android of the best genome so far *)
  f9_worst : float;   (** of the worst measured genome in the generation *)
}

type fig9_row = { f9_app : string; f9_points : fig9_point list }

val fig9 :
  ?cfg:Ga.config -> ?seed:int -> ?apps:string list -> ?jobs:int ->
  ?cache:bool -> unit -> fig9_row list
val print_fig9 : fig9_row list -> unit

(* ----------------------------- Figures 10/11 ----------------------- *)

type fig10_row = {
  f10_app : string;
  f10_fork : float;
  f10_prep : float;
  f10_faults_cow : float;
  f10_total : float;
}

val fig10 : ?seed:int -> ?eager:bool -> ?apps:string list -> unit -> fig10_row list
(** [eager] switches to the CERE-style copy-at-fault ablation. *)

val print_fig10 : fig10_row list -> unit

type fig11_row = {
  f11_app : string;
  f11_program_mb : float;
  f11_common_mb : float;
}

val fig11 : ?seed:int -> ?apps:string list -> unit -> fig11_row list
val print_fig11 : fig11_row list -> unit

val average : float list -> float

(** {1 Unsafe-pass survival vs corpus size}

    The experiment the source paper does not have: how many unsafe
    binaries does single-input replay verification let through, and how
    fast does a multi-input capture corpus (cross-input verification)
    close the hole? *)

type survival_genome = {
  sg_app : string;
  sg_label : string;
  sg_killed_at : int option;
  (** smallest corpus size K whose verification rejects the binary:
      [Some 1] means the primary capture already catches it, [None] that
      it survives the whole corpus *)
}

type survival_point = { sp_k : int; sp_tested : int; sp_survived : int }

type survival = {
  su_seed : int;
  su_kmax : int;
  su_points : survival_point list;   (** k = 1..kmax, survivors per k *)
  su_genomes : survival_genome list; (** per-(app, genome) kill positions *)
  su_pinned_killed_at : int option;  (** o2+unsafe-bce on FFT — the pinned
                                         guard-stripping genome *)
  su_corpus_entries : int;           (** secondary captures made *)
  su_capture_ms : float;             (** mean online ms per secondary capture *)
  su_corpus_checks : int;            (** corpus checks run (short-circuited) *)
}

val pinned_unsafe_genome : unit -> Repro_search.Genome.t
(** The regression-pinned guard-stripping genome: the Android pipeline's
    O2 body with every bounds guard dropped afterwards.  Passes K=1
    verification on FFT (guards never fire on the captured input) and is
    rejected by the corpus. *)

val survival : ?seed:int -> ?kmax:int -> ?apps:string list -> unit -> survival
(** Capture a [kmax]-input corpus per app (default: the five Scimark
    kernels) and find, for a fixed family of unsafe genomes, the smallest
    K at which each binary is rejected.  Deterministic in [(seed, kmax,
    apps)]: the only timings involved are the capture model's simulated
    milliseconds. *)

val print_survival : survival -> unit
