(** The replay-based iterative compilation pipeline (paper Figure 6),
    assembled from the substrate libraries:

    online run (Android code) -> profile -> hot region -> capture ->
    interpreted replay (verification map + dispatch profile) -> GA over
    compile+verified-replay evaluations -> best binary installed. *)

module App = Repro_apps.Registry

type online = {
  ctx : Repro_vm.Exec_ctx.t;      (** finished online run *)
  profile : Repro_profiler.Profile.t;
  cycles : int;
  ret : Repro_vm.Value.t option;
}

val android_binary_for : App.t -> Repro_lir.Binary.t
(** The device's default code: every compilable method, Android pipeline. *)

val online_run :
  ?seed:int -> ?binary:Repro_lir.Binary.t -> ?sample_period:int -> App.t ->
  online
(** One full online execution (out of the box: the Android binary). *)

val hot_region_of : App.t -> online -> int option
val region_methods : App.t -> int -> int list

type captured = {
  snapshot : Repro_capture.Snapshot.t;
  overhead : Repro_capture.Capture.overhead;
  hot_mid : int;
  online_with_capture : online;
}

val capture_once : ?seed:int -> ?capture_at:int -> App.t -> captured option
(** Run online under the Android binary with a capture scheduled for the
    [capture_at]-th entry into the hot region (default 2: captures warm
    state, after first-call initialization); [None] when no replayable hot
    region exists.  When a device store is attached
    ({!Repro_capture.Snapshot.set_store}), the captured pages are enqueued
    to it — content hashing and dedup happen later, at the idle-priority
    drains between GA evaluation batches. *)

(** One secondary corpus capture: a distinct input's snapshot, its
    cross-input verification reference (a map, or the reference's own
    trap), the dispatch-type profile its interpreted replay recorded, and
    what the capture cost online. *)
type corpus_entry = {
  ce_input : App.input;
  ce_snapshot : Repro_capture.Snapshot.t;
  ce_reference : Repro_capture.Verify.reference;
  ce_typeprof : Repro_capture.Typeprof.t;
  ce_overhead : Repro_capture.Capture.overhead;
}

(** A multi-input capture corpus: the primary capture (fitness is always
    measured on it, so single-input figures are unchanged) plus secondary
    entries for the app's other inputs. *)
type corpus = {
  co_app : App.t;
  co_seed : int;
  co_primary : captured;
  co_entries : corpus_entry list;   (** in corpus (verification) order *)
}

val capture_corpus : ?seed:int -> k:int -> App.t -> corpus option
(** Capture {!App.input_variants}[ ~seed ~k]: the primary capture exactly
    as {!capture_once}, then one capture per variant input — first entry
    into the same hot region, harvested even when the region traps (the
    adversarial inputs are chosen to do exactly that), online run aborted
    right after the capture.  Variants whose run never reaches the region
    or whose reference replay hangs are dropped, so the corpus may hold
    fewer than [k] entries.  Snapshots are spooled to the attached device
    store like the primary's (identical pages — shared boot images —
    dedup to shared frames, which is what makes corpus storage cost
    sublinear in K).  Each capture bumps the [corpus.captures] counter.
    Pure in [(app, seed, k)].  [None] when no replayable hot region
    exists. *)

(** {1 Quarantine accounting}

    Binaries (and persisted artifacts) discarded as untrustworthy are
    recorded in a {!quarantine_log}.  Logs are per-run values: the serve
    scheduler gives every tenant its own, so concurrent searches can
    never see — or reset — each other's entries.  Call sites that don't
    pass [?log] use the process-wide default, which keeps the one-shot
    CLI behaviour. *)

(** One row of the quarantine report: a binary discarded as a
    deterministic miscompile under fault injection, or a persisted
    artifact (genome bank, checkpoint) that failed its integrity
    checks. *)
type quarantine_entry = {
  q_binary : string;    (** {!binary_key} of the discarded binary, or an
                            artifact key like ["bank:FILE"] /
                            ["checkpoint:FILE"] *)
  q_reason : string;    (** first verdict and retry verdict *)
  q_count : int;        (** times it was (re-)verified into quarantine *)
}

(** A mutex-protected quarantine log (the verify stage runs on worker
    domains). *)
type quarantine_log

val create_quarantine_log : unit -> quarantine_log

val global_quarantine : quarantine_log
(** The process-wide default log — what every [?log]-less call uses. *)

val quarantine_summary : ?log:quarantine_log -> unit -> quarantine_entry list
(** The log's entries since its last {!reset_quarantine}, sorted by key
    (deterministic across worker counts). *)

val reset_quarantine : ?log:quarantine_log -> unit -> unit
(** Clear one log (call between independent runs/tests).  Only touches
    [log] (default: the global one) — a tenant reset can no longer clobber
    other tenants' reports. *)

val record_quarantine :
  ?log:quarantine_log -> key:string -> reason:string -> unit -> unit
(** Add an entry directly.  Used by subsystems that detect persistent
    corruption outside [verify_core] — e.g. the fleet genome bank or the
    checkpoint loader routing a corrupted-file load into the same
    quarantine policy — so every "discarded as untrustworthy" event shows
    up in one report.  Bumps the [verify.quarantined] counter. *)

val quarantine_entries : quarantine_log -> (string * string * int) list
(** Raw [(key, reason, count)] rows in key order — the representation
    checkpoints persist. *)

val restore_quarantine : quarantine_log -> (string * string * int) list -> unit
(** Replace/insert rows from a checkpoint into the log (resume path). *)

type evaluation_env = {
  dx : Repro_dex.Bytecode.dexfile;
  app : App.t;
  capture : captured;
  vmap : Repro_capture.Verify.t;
  typeprof : Repro_capture.Typeprof.t;
  region : int list;
  frontend : Repro_lir.Compile.frontend;
  (** hoisted genome-independent front-end (translated templates +
      profile), shared by every genome and worker domain; its content
      digest namespaces this environment's {!Repro_lir.Stagecache}
      entries *)
  corpus : corpus_entry list;
  (** secondary verification inputs; [[]] gives exactly the historical
      single-input behaviour *)
  android_region_ms : float;     (** replay fitness of the Android code *)
  o3_region_ms : float;
  replays_per_eval : int;
  noise_sigma : float;
  measure_seed : int;
  (** noise streams are [Rng.of_pair measure_seed ev_index]: measured
      times depend only on the evaluation's identity, never on worker
      count, batching, or cache state *)
  quarantine : quarantine_log;
  (** where this run's verify/artifact quarantines are recorded *)
}

val make_eval_env :
  ?seed:int -> ?replays:int -> ?corpus:corpus_entry list ->
  ?quarantine:quarantine_log ->
  App.t -> captured -> evaluation_env
(** Interpreted replay for the verification map and type profile, plus
    baseline replay measurements.  [corpus] (default none) adds secondary
    verification inputs; fitness and baselines stay on the primary
    capture.  [quarantine] (default: {!global_quarantine}) scopes the
    run's quarantine entries. *)

(** The deterministic part of one evaluation (everything but measurement
    noise): what {!make_pool} memoizes. *)
type eval_core =
  | Core_measured of { cycles : int; size : int; key : string }
  | Core_compile_failed of string
  | Core_compile_timeout
  | Core_crashed of string
  | Core_hung
  | Core_wrong_output
  | Core_quarantined of string
  (** persistently failed verification under fault injection (failed, then
      failed the retry too): discarded as a deterministic miscompile.
      Only produced while [Repro_util.Faults] is armed. *)

val compile_core :
  evaluation_env -> Repro_search.Genome.t ->
  (Repro_lir.Binary.t, eval_core) result
(** Compile the genome for the region; [Error] is an immediate failure
    core.  Pure per-call: safe to run on worker domains. *)

val verify_core : evaluation_env -> Repro_lir.Binary.t -> eval_core
(** Verified replay of a compiled binary against the capture — and, when
    the environment carries a corpus, against {e every} corpus entry in
    corpus order with a first-failure short-circuit
    ([verify.corpus_checks] / [verify.corpus_kills] counters).  Fitness
    cycles always come from the primary capture.  Pure per-call: safe to
    run on worker domains.

    While [Repro_util.Faults] is armed, the candidate replay runs inside a
    fault scope keyed by [(binary, attempt)] and a failed verification is
    retried once under a different scope key: a transient injected
    replay/executor fault does not re-fire on the retry (the binary is
    measured normally, counted by the [verify.retried] trace counter),
    while a deterministic miscompile fails again and the binary is
    {e quarantined} ({!Core_quarantined}, the [verify.quarantined] counter,
    and the environment's {!quarantine_log}).  Every decision is a pure
    function of the fault seed and the binary, preserving the
    [-j N]/[--no-cache] determinism contract. *)

val outcome_of_core :
  evaluation_env -> ev_index:int -> eval_core -> Repro_search.Ga.outcome
(** Expand the deterministic replay cycle count into [replays_per_eval]
    measurements through the offline noise model (replays run on an idle,
    frequency-pinned device: §4), seeded from [(measure_seed, ev_index)]. *)

val make_pool :
  ?jobs:int -> ?cache:bool -> ?memo_budget:int ->
  ?pool:Repro_search.Domainpool.t -> evaluation_env ->
  (Repro_lir.Binary.t, eval_core, Repro_search.Ga.outcome) Repro_search.Evalpool.t
(** A parallel memoizing evaluator over [compile_core]/[verify_core] for
    this environment; feed {!Repro_search.Evalpool.evaluate_batch} to
    {!Repro_search.Ga.run}.  [memo_budget] bounds the genome/binary memos
    ({!Repro_search.Evalpool.default_memo_budget} entries by default);
    [pool] runs batches on a shared persistent domain pool instead of
    spawning [jobs] domains per batch (the serve scheduler's mode). *)

val make_core_pool :
  ?jobs:int -> ?cache:bool -> ?memo_budget:int ->
  ?pool:Repro_search.Domainpool.t -> evaluation_env ->
  (Repro_lir.Binary.t, eval_core, eval_core) Repro_search.Evalpool.t
(** Like {!make_pool}, but the finished value is the raw {!eval_core}
    (no noise applied): the fleet coordinator synthesizes measurement
    times per device — each device re-seeds its own noise stream from
    [(device noise seed, ev_index)] — so it needs the deterministic core,
    not a pre-noised {!Repro_search.Ga.outcome}. *)

val evaluate_genome :
  ?ev_index:int ->
  evaluation_env -> Repro_search.Genome.t -> Repro_search.Ga.outcome
(** One sequential compile + verify + measure, equivalent to a pool
    evaluation of [(ev_index, genome)] (default index 0). *)

val replay_ms : evaluation_env -> Repro_lir.Binary.t -> float option
(** Mean verified replay time of an arbitrary binary, [None] on failure. *)

val binary_key : Repro_lir.Binary.t -> string
(** Digest of the binary's code: identical keys mean identical binaries
    (the identical-binaries halting rule and the pool's binary memo). *)

type optimized = {
  env : evaluation_env;
  ga : Repro_search.Ga.result;
  best_genome : Repro_search.Genome.t option;
  best_fitness : float option;              (** after the hill climb *)
  best_binary : Repro_lir.Binary.t option;  (** verified best, if any *)
  pool_stats : Repro_search.Evalpool.stats; (** cache/worker counters *)
}

val search_digest : optimized -> string
(** Hex digest over the whole search outcome: the GA history digest plus
    the hill climb's final genome and fitness bits.  This is the value
    the determinism contract asserts byte-identical across [-j N],
    [--no-cache], scheduler interleavings and — via checkpoints —
    process restarts. *)

val optimize :
  ?seed:int -> ?cfg:Repro_search.Ga.config -> ?jobs:int -> ?cache:bool ->
  ?memo_budget:int -> ?pool:Repro_search.Domainpool.t ->
  ?corpus:corpus_entry list -> ?seed_genomes:Repro_search.Genome.t list ->
  ?quarantine:quarantine_log -> ?checkpoint:string -> ?abort_after:int ->
  App.t -> captured -> optimized
(** The full search, including the final hill-climbing step.  [jobs]
    (default 1) evaluates each generation on that many domains; [cache]
    (default true) memoizes repeated genomes and binaries (bounded by
    [memo_budget]).  [corpus] makes every candidate verify against the
    secondary inputs too (the corpus verdict folds into the same
    retry/quarantine policy under fault injection).  Results are
    identical for every [jobs]/[cache] combination, and independent of
    corpus evaluation order.

    [checkpoint] arms crash-safe resume: after every live evaluation
    batch the search journal is atomically rewritten to that file, and a
    restarted run with the same configuration replays the journal before
    going live — the final {!search_digest} is byte-identical to an
    uninterrupted run's.  [abort_after] is the simulated-kill hook: raise
    {!Checkpoint.Injected_abort} immediately after the [n]-th live
    batch's checkpoint write.  See {!start_search} for the stepping
    interface this wraps.

    When a device store is attached, a bounded chunk of the spool queue is
    drained between evaluation batches — the paper's idle-priority flash
    writer.  Stored contents are a pure function of what was captured, so
    spool timing cannot affect search results. *)

(** {1 Stepped (checkpointed) searches}

    {!optimize} in resumable, schedulable form: {!start_search} builds a
    suspended search, {!search_step} advances it by exactly one
    evaluation batch.  The serve scheduler round-robins [search_step]
    across tenants; the checkpoint machinery journals each live batch. *)

type search_session

type step_outcome = [ `Live | `Replayed | `Finished of optimized ]

val start_search :
  ?seed:int -> ?cfg:Repro_search.Ga.config -> ?jobs:int -> ?cache:bool ->
  ?memo_budget:int -> ?pool:Repro_search.Domainpool.t ->
  ?corpus:corpus_entry list -> ?seed_genomes:Repro_search.Genome.t list ->
  ?quarantine:quarantine_log -> ?checkpoint:string -> ?abort_after:int ->
  App.t -> captured -> search_session
(** Build the environment and a suspended search.  With [checkpoint], an
    existing journal is loaded and validated here: a missing file starts
    cold silently; a damaged file or one whose fingerprint doesn't match
    this configuration is quarantined (key ["checkpoint:FILE"]), warned
    about ({!session_warnings}) and ignored; a valid journal seeds the
    eval pool's memos and will be replayed batch-for-batch.  The
    fingerprint covers app, seed, GA config, corpus and warm-start seeds
    — but deliberately {e not} [jobs]/[cache]/[memo_budget], which are
    result-invariant: a checkpoint taken at [-j4] resumes at
    [-j1 --no-cache] and vice versa. *)

val search_step : search_session -> step_outcome
(** Advance by one batch.  [`Replayed]: the journal's next batch matched
    the search's request (RNG cursor, evaluation indices, canonical
    genomes) and was served without evaluating anything.  [`Live]: the
    batch was evaluated on the pool and the checkpoint file (if any)
    atomically rewritten; raises {!Checkpoint.Injected_abort} right after
    the write once [abort_after] live batches have run.  A journal batch
    that {e doesn't} match falls back to a full cold restart (fresh pool,
    fresh RNG, empty journal) with a warning and a quarantine entry —
    recorded state that diverges from the configured search cannot be
    trusted at all.  [`Finished] yields the result (also via
    {!session_result}). *)

val session_result : search_session -> optimized option
val session_env : search_session -> evaluation_env

val session_warnings : search_session -> string list
(** Checkpoint damage/mismatch warnings, oldest first. *)

val session_live_batches : search_session -> int
(** Batches evaluated live this process (the resume-overhead metric). *)

val session_replayed_batches : search_session -> int
(** Batches served from the journal this process. *)

val final_binary : optimized -> Repro_lir.Binary.t
(** Android code with the GA-optimized region installed on top. *)

val o3_binary : evaluation_env -> Repro_lir.Binary.t
(** Android code with the region compiled at LLVM -O3 instead. *)

type speedups = {
  android_cycles : float;
  o3_cycles : float;
  ga_cycles : float;
  o3_speedup : float;
  ga_speedup : float;
}

val measure_speedups :
  ?runs:int -> App.t -> optimized -> speedups
(** Whole-program execution outside the replay environment (paper §4): the
    same online runs under the three binaries, averaged over several
    fixed-seed executions. *)
