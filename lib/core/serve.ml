(* Round-robin multi-app scheduler over one shared evaluation pool.  See
   the interface for the model.  Scheduling lives on the calling domain;
   only batch compile/verify work is parallel (the shared Domainpool), so
   per-job state needs no locking. *)

module App = Repro_apps.Registry
module Ga = Repro_search.Ga
module Domainpool = Repro_search.Domainpool
module Trace = Repro_util.Trace

type request = {
  r_app : App.t;
  r_seed : int;
  r_cfg : Ga.config;
  r_corpus_k : int;
  r_checkpoint : string option;
}

let request ?(seed = 7) ?(cfg = Ga.quick_config) ?(corpus_k = 1) ?checkpoint
    app =
  { r_app = app; r_seed = seed; r_cfg = cfg; r_corpus_k = corpus_k;
    r_checkpoint = checkpoint }

type job = {
  j_request : request;
  j_quarantine : Pipeline.quarantine_log;
  mutable j_session : Pipeline.search_session option;
  mutable j_outcome : [ `Running | `Finished | `Failed of string | `Unstarted ];
  mutable j_turns : int;
  mutable j_rounds_present : int;
}

type t = {
  pool : Domainpool.t option;
  jobs : int;
  cache : bool;
  memo_budget : int option;
  max_active : int;
  queue_capacity : int;
  abort_after : int option;
  queue : job Queue.t;
  mutable active : job list;        (* admission order *)
  mutable all_rev : job list;       (* submission order, newest first *)
  mutable rounds : int;
  mutable concurrent_rounds : int;
  mutable peak_active : int;
  mutable live_batches : int;
  mutable rejected : int;
}

let create ?(jobs = 1) ?(cache = true) ?memo_budget ?(queue_capacity = 16)
    ?abort_after ~max_active () =
  if max_active < 1 then invalid_arg "Serve.create: max_active < 1";
  { pool = (if jobs > 1 then Some (Domainpool.create ~workers:jobs) else None);
    jobs; cache; memo_budget; max_active; queue_capacity; abort_after;
    queue = Queue.create (); active = []; all_rev = []; rounds = 0;
    concurrent_rounds = 0; peak_active = 0; live_batches = 0; rejected = 0 }

(* Admission: the capture and search construction run here, on the
   scheduling domain.  The search-seed derivation matches the one-shot
   [repro optimize] CLI (capture at [seed], search at [seed + 13]), so a
   served job's digest is comparable 1:1 with a standalone run's. *)
let start_job t job =
  let r = job.j_request in
  Trace.incr "serve.admitted";
  (match Pipeline.capture_corpus ~seed:r.r_seed ~k:r.r_corpus_k r.r_app with
   | None -> job.j_outcome <- `Failed "no replayable hot region"
   | Some co ->
     (match
        Pipeline.start_search ~seed:(r.r_seed + 13) ~cfg:r.r_cfg
          ~jobs:t.jobs ~cache:t.cache ?memo_budget:t.memo_budget
          ?pool:t.pool ~corpus:co.Pipeline.co_entries
          ~quarantine:job.j_quarantine ?checkpoint:r.r_checkpoint
          r.r_app co.Pipeline.co_primary
      with
      | s ->
        job.j_session <- Some s;
        job.j_outcome <- `Running;
        t.active <- t.active @ [ job ];
        t.peak_active <- max t.peak_active (List.length t.active)
      | exception e -> job.j_outcome <- `Failed (Printexc.to_string e)))

type admission = [ `Admitted | `Queued of int | `Rejected ]

let submit t request : admission =
  let job =
    { j_request = request;
      j_quarantine = Pipeline.create_quarantine_log ();
      j_session = None; j_outcome = `Unstarted; j_turns = 0;
      j_rounds_present = 0 }
  in
  t.all_rev <- job :: t.all_rev;
  if List.length t.active < t.max_active then begin
    start_job t job;
    `Admitted
  end
  else if Queue.length t.queue < t.queue_capacity then begin
    Queue.push job t.queue;
    `Queued (Queue.length t.queue)
  end
  else begin
    t.rejected <- t.rejected + 1;
    Trace.incr "serve.rejected";
    `Rejected
  end

let admit_from_queue t =
  while List.length t.active < t.max_active && not (Queue.is_empty t.queue) do
    start_job t (Queue.pop t.queue)
  done

(* One turn: drain any checkpoint-replayed batches (they cost nothing and
   must not count as this round's unit of work), then exactly one live
   batch — the fairness quantum. *)
let turn t job =
  match job.j_session with
  | None -> ()
  | Some s ->
    job.j_turns <- job.j_turns + 1;
    let rec step () =
      match Pipeline.search_step s with
      | `Replayed -> step ()
      | `Live ->
        t.live_batches <- t.live_batches + 1;
        (match t.abort_after with
         | Some n when t.live_batches >= n -> raise Checkpoint.Injected_abort
         | _ -> ())
      | `Finished _ -> job.j_outcome <- `Finished
    in
    (try step () with
     | Checkpoint.Injected_abort as e -> raise e
     | e -> job.j_outcome <- `Failed (Printexc.to_string e))

let drive t =
  admit_from_queue t;
  while t.active <> [] do
    t.rounds <- t.rounds + 1;
    Trace.incr "serve.rounds";
    let stepping = t.active in
    if List.length stepping >= 2 then
      t.concurrent_rounds <- t.concurrent_rounds + 1;
    List.iter
      (fun job ->
         job.j_rounds_present <- job.j_rounds_present + 1;
         turn t job)
      stepping;
    t.active <-
      List.filter (fun job -> job.j_outcome = `Running) t.active;
    admit_from_queue t
  done

let shutdown t =
  match t.pool with None -> () | Some p -> Domainpool.shutdown p

let jobs_in_order t = List.rev t.all_rev

type report = {
  rp_app : string;
  rp_checkpoint : string option;
  rp_outcome : [ `Finished | `Failed of string | `Unstarted ];
  rp_digest : string option;
  rp_best_ms : float option;
  rp_evaluations : int;
  rp_live_batches : int;
  rp_replayed_batches : int;
  rp_turns : int;
  rp_quarantined : int;
  rp_warnings : string list;
}

let report_of job =
  let session = job.j_session in
  let result = Option.bind session Pipeline.session_result in
  { rp_app = job.j_request.r_app.App.name;
    rp_checkpoint = job.j_request.r_checkpoint;
    rp_outcome =
      (match job.j_outcome with
       | `Finished -> `Finished
       | `Failed why -> `Failed why
       | `Running -> `Failed "still running (aborted)"
       | `Unstarted -> `Unstarted);
    rp_digest = Option.map Pipeline.search_digest result;
    rp_best_ms = Option.bind result (fun r -> r.Pipeline.best_fitness);
    rp_evaluations =
      (match result with
       | Some r -> r.Pipeline.ga.Ga.evaluations
       | None -> 0);
    rp_live_batches =
      (match session with
       | Some s -> Pipeline.session_live_batches s
       | None -> 0);
    rp_replayed_batches =
      (match session with
       | Some s -> Pipeline.session_replayed_batches s
       | None -> 0);
    rp_turns = job.j_turns;
    rp_quarantined =
      List.length (Pipeline.quarantine_summary ~log:job.j_quarantine ());
    rp_warnings =
      (match session with
       | Some s -> Pipeline.session_warnings s
       | None -> []) }

let reports t = List.map report_of (jobs_in_order t)

let quarantine_of t app_name =
  List.concat_map
    (fun job ->
       if job.j_request.r_app.App.name = app_name then
         Pipeline.quarantine_summary ~log:job.j_quarantine ()
       else [])
    (jobs_in_order t)

type stats = {
  st_rounds : int;
  st_concurrent_rounds : int;
  st_peak_active : int;
  st_live_batches : int;
  st_fairness_spread : float;
  st_rejected : int;
}

let stats t =
  let ratios =
    List.filter_map
      (fun job ->
         if job.j_rounds_present > 0 then
           Some (float_of_int job.j_turns /. float_of_int job.j_rounds_present)
         else None)
      (jobs_in_order t)
  in
  let spread =
    match ratios with
    | [] -> 0.
    | r :: rest ->
      List.fold_left max r rest -. List.fold_left min r rest
  in
  { st_rounds = t.rounds; st_concurrent_rounds = t.concurrent_rounds;
    st_peak_active = t.peak_active; st_live_batches = t.live_batches;
    st_fairness_spread = spread; st_rejected = t.rejected }
