(* Record/replay journal for crash-safe search resume.  See the interface
   for the model.  The text image is line-oriented, tab-separated; every
   free-form field goes through String.escaped (round-tripped with
   Scanf.unescaped) so tabs and newlines cannot corrupt the framing, and
   binary digests survive as printable escapes. *)

module Storage = Repro_os.Storage
module Trace = Repro_util.Trace

type core =
  | C_measured of { cycles : int; size : int; key : string }
  | C_compile_failed of string
  | C_compile_timeout
  | C_crashed of string
  | C_hung
  | C_wrong_output
  | C_quarantined of string

type task = {
  t_ev_index : int;
  t_canon : string;
  t_core : core;
}

type batch = {
  b_cursor : int64;
  b_tasks : task list;
}

type t = {
  fingerprint : string;
  batches : batch list;
  quarantine : (string * string * int) list;
}

exception Injected_abort

let magic = "REPROCKPT1"

(* ----------------------------- rendering ----------------------------- *)

let esc = String.escaped

exception Malformed of string

let unesc s =
  match Scanf.unescaped s with
  | s -> s
  | exception Scanf.Scan_failure _ -> raise (Malformed "bad escape")

let render_core buf = function
  | C_measured { cycles; size; key } ->
    Buffer.add_string buf (Printf.sprintf "M\t%d\t%d\t%s" cycles size (esc key))
  | C_compile_failed msg -> Buffer.add_string buf ("CF\t" ^ esc msg)
  | C_compile_timeout -> Buffer.add_string buf "CT"
  | C_crashed msg -> Buffer.add_string buf ("RC\t" ^ esc msg)
  | C_hung -> Buffer.add_string buf "RH"
  | C_wrong_output -> Buffer.add_string buf "WO"
  | C_quarantined msg -> Buffer.add_string buf ("QU\t" ^ esc msg)

let core_of_fields = function
  | [ "M"; cycles; size; key ] ->
    C_measured
      { cycles = int_of_string cycles; size = int_of_string size;
        key = unesc key }
  | [ "CF"; msg ] -> C_compile_failed (unesc msg)
  | [ "CT" ] -> C_compile_timeout
  | [ "RC"; msg ] -> C_crashed (unesc msg)
  | [ "RH" ] -> C_hung
  | [ "WO" ] -> C_wrong_output
  | [ "QU"; msg ] -> C_quarantined (unesc msg)
  | _ -> raise (Malformed "bad core record")

let render_batches t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun b ->
       Buffer.add_string buf (Printf.sprintf "b\t%Lx\n" b.b_cursor);
       List.iter
         (fun tk ->
            Buffer.add_string buf
              (Printf.sprintf "t\t%d\t%s\t" tk.t_ev_index (esc tk.t_canon));
            render_core buf tk.t_core;
            Buffer.add_char buf '\n')
         b.b_tasks)
    t.batches;
  Buffer.contents buf

let memo_digest t = Digest.to_hex (Digest.string (render_batches t))

let to_text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "fp\t%s\n" (esc t.fingerprint));
  Buffer.add_string buf (Printf.sprintf "md\t%s\n" (memo_digest t));
  List.iter
    (fun (key, reason, count) ->
       Buffer.add_string buf
         (Printf.sprintf "q\t%s\t%s\t%d\n" (esc key) (esc reason) count))
    t.quarantine;
  Buffer.add_string buf (render_batches t);
  Buffer.contents buf

let of_text text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest when header = magic ->
    let fingerprint = ref None in
    let declared_md = ref None in
    let quarantine_rev = ref [] in
    let batches_rev = ref [] in         (* (cursor, tasks_rev) *)
    List.iter
      (fun line ->
         if line <> "" then
           match String.split_on_char '\t' line with
           | [ "fp"; fp ] -> fingerprint := Some (unesc fp)
           | [ "md"; d ] -> declared_md := Some d
           | [ "q"; key; reason; count ] ->
             quarantine_rev :=
               (unesc key, unesc reason, int_of_string count)
               :: !quarantine_rev
           | [ "b"; cursor ] ->
             batches_rev :=
               (Int64.of_string ("0x" ^ cursor), ref []) :: !batches_rev
           | "t" :: ev_index :: canon :: core_fields ->
             (match !batches_rev with
              | [] -> raise (Malformed "task before any batch")
              | (_, tasks_rev) :: _ ->
                tasks_rev :=
                  { t_ev_index = int_of_string ev_index;
                    t_canon = unesc canon;
                    t_core = core_of_fields core_fields }
                  :: !tasks_rev)
           | _ -> raise (Malformed ("bad record: " ^ line)))
      rest;
    let fingerprint =
      match !fingerprint with
      | Some fp -> fp
      | None -> raise (Malformed "no fingerprint")
    in
    let batches =
      List.rev_map
        (fun (cursor, tasks_rev) ->
           { b_cursor = cursor; b_tasks = List.rev !tasks_rev })
        !batches_rev
    in
    let t =
      { fingerprint; batches; quarantine = List.rev !quarantine_rev }
    in
    (match !declared_md with
     | Some d when d <> memo_digest t ->
       raise (Malformed "journal digest mismatch")
     | Some _ | None -> ());
    t
  | _ -> raise (Malformed "bad header")

(* ------------------------------ on disk ------------------------------ *)

let blob_label = "checkpoint"

let save t file =
  let st = Storage.create () in
  Storage.write st ~label:blob_label
    ~pages:(Storage.pages_of_string (to_text t));
  Storage.flush st;
  let tmp = file ^ ".tmp" in
  Storage.save st tmp;
  Sys.rename tmp file;
  Trace.incr "ckpt.saves";
  Trace.add "ckpt.batches_saved" (List.length t.batches)

let load file =
  if not (Sys.file_exists file) then `Absent
  else begin
    Trace.incr "ckpt.loads";
    let damaged why =
      Trace.incr "ckpt.damaged";
      `Damaged why
    in
    match Storage.load file with
    | exception Sys_error why -> damaged why
    | st, warnings ->
      if not (Storage.contains st ~label:blob_label) then
        damaged "no checkpoint blob in store"
      else
        match Storage.read st ~label:blob_label with
        | Error e -> damaged (Storage.describe e)
        | Ok pages ->
          (match Storage.string_of_pages pages with
           | Error why -> damaged why
           | Ok text ->
             (match of_text text with
              | t -> `Loaded (t, warnings)
              | exception Malformed why -> damaged why
              | exception _ -> damaged "unparseable checkpoint payload"))
  end
