(** Multi-app optimization service: N concurrent searches multiplexed
    over one shared evaluation domain pool.

    The paper's deployment is a long-lived service: many applications'
    searches in flight at once, sharing the device's compile/verify
    capacity.  This module is that scheduler.  Each submitted request
    becomes a {e job} — its own capture, evaluation environment,
    quarantine log and (optionally) checkpoint file — and {!drive}
    round-robins single evaluation batches across all admitted jobs: one
    batch per job per round, so every tenant makes progress at the same
    batch rate regardless of arrival order (fairness is structural, and
    reported as a spread you can gate on).

    Concurrency model: jobs take turns on the {e calling} domain; what is
    parallel is each batch's compile/verify work, fanned out over one
    shared {!Repro_search.Domainpool} instead of per-search domain
    spawns.  Admission control bounds the working set ([max_active]) and
    a bounded submission queue provides backpressure ([`Rejected]).

    Determinism: each job's search is exactly {!Pipeline.optimize} with
    the same app/seed/config — same draws, same evaluation indices, same
    {!Pipeline.search_digest} — no matter how many other tenants run
    beside it, in what order they were submitted, or whether the job was
    killed and resumed from its checkpoint. *)

type request = {
  r_app : Repro_apps.Registry.t;
  r_seed : int;              (** capture seed; the search derives its own *)
  r_cfg : Repro_search.Ga.config;
  r_corpus_k : int;          (** 1 = single capture, >1 adds corpus inputs *)
  r_checkpoint : string option;  (** journal file for crash-safe resume *)
}

val request :
  ?seed:int -> ?cfg:Repro_search.Ga.config -> ?corpus_k:int ->
  ?checkpoint:string -> Repro_apps.Registry.t -> request
(** Defaults: seed 7, {!Repro_search.Ga.quick_config}, corpus 1, no
    checkpoint — matching the one-shot [repro optimize] CLI. *)

type t

val create :
  ?jobs:int -> ?cache:bool -> ?memo_budget:int -> ?queue_capacity:int ->
  ?abort_after:int -> max_active:int -> unit -> t
(** A scheduler whose shared domain pool runs [jobs] workers (default 1:
    everything on the calling domain).  At most [max_active] jobs run
    concurrently; further submissions queue up to [queue_capacity]
    (default 16) and are admitted as active jobs finish.  [abort_after]
    is the simulated-crash hook: {!drive} raises
    {!Checkpoint.Injected_abort} right after the [n]-th live batch
    {e across all jobs} — immediately after that batch's checkpoint
    write, exactly where a process kill would land. *)

type admission = [ `Admitted | `Queued of int | `Rejected ]

val submit : t -> request -> admission
(** Admit the request now if a slot is free (capture + search start run
    here), queue it ([`Queued pos], 1-based) if the queue has room, or
    reject it outright — the backpressure signal. *)

val drive : t -> unit
(** Run rounds until every admitted and queued job has finished or
    failed.  Each round gives every active job one turn: replayed
    (checkpointed) batches are drained for free, then exactly one live
    batch is evaluated on the shared pool.  A job whose search raises
    is marked failed; the scheduler keeps going.
    {!Checkpoint.Injected_abort} propagates (the simulated kill). *)

val shutdown : t -> unit
(** Join the shared pool's worker domains.  Call exactly once, also
    after an [Injected_abort] (use [Fun.protect]). *)

(** Final state of one job, in submission order. *)
type report = {
  rp_app : string;
  rp_checkpoint : string option;
  rp_outcome : [ `Finished | `Failed of string | `Unstarted ];
    (** [`Unstarted]: still queued when {!drive} aborted *)
  rp_digest : string option;       (** {!Pipeline.search_digest} *)
  rp_best_ms : float option;       (** best replay fitness *)
  rp_evaluations : int;
  rp_live_batches : int;           (** evaluated in this process *)
  rp_replayed_batches : int;       (** served from its checkpoint *)
  rp_turns : int;                  (** rounds in which it got a step *)
  rp_quarantined : int;            (** entries in its private log *)
  rp_warnings : string list;       (** checkpoint damage/mismatch *)
}

val reports : t -> report list

val quarantine_of : t -> string -> Pipeline.quarantine_entry list
(** The private quarantine entries of every job for an app name
    (submission order) — isolated per tenant, never mixed with the
    process-wide log. *)

(** Scheduler-level counters. *)
type stats = {
  st_rounds : int;
  st_concurrent_rounds : int;  (** rounds in which >= 2 jobs stepped *)
  st_peak_active : int;
  st_live_batches : int;       (** across all jobs *)
  st_fairness_spread : float;
    (** max - min over jobs of (turns taken / rounds present): 0 means
        every tenant stepped in every round it was active *)
  st_rejected : int;
}

val stats : t -> stats
