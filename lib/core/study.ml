module App = Repro_apps.Registry
module Ga = Repro_search.Ga

type t = {
  app : App.t;
  capture : Pipeline.captured;
  opt : Pipeline.optimized;
  speedups : Pipeline.speedups;
}

let cache : (string * int, t option) Hashtbl.t = Hashtbl.create 32

let config_id (cfg : Ga.config) =
  Hashtbl.hash (cfg.Ga.population, cfg.Ga.generations, cfg.Ga.max_identical)

(* [jobs]/[cache] are deliberately absent from the memo key: the pool
   guarantees identical results for every combination, so studies computed
   at different parallelism levels are interchangeable. *)
let run ?(seed = 7) ?(cfg = Ga.quick_config) ?jobs ?cache:pool_cache app =
  let key = (app.App.name, config_id cfg + seed) in
  match Hashtbl.find_opt cache key with
  | Some s -> s
  | None ->
    let study =
      match Pipeline.capture_once ~seed app with
      | None -> None
      | Some capture ->
        let opt =
          Pipeline.optimize ~seed:(seed + 13) ~cfg ?jobs ?cache:pool_cache app
            capture
        in
        let speedups = Pipeline.measure_speedups app opt in
        Some { app; capture; opt; speedups }
    in
    Hashtbl.replace cache key study;
    study

let clear_cache () = Hashtbl.reset cache
