(** Crash-safe search checkpoints: a record/replay journal for the GA.

    The pipeline's searches are deterministic by construction — every
    batch's tasks and outcomes are a pure function of the run
    configuration — so a checkpoint does not need to serialize GA
    internals (population, selection state, halting counters).  It records
    what was {e observed}: for every completed evaluation batch, the RNG
    cursor at the moment the batch was requested and each task's
    [(evaluation index, canonical genome, deterministic core result)].  A
    resumed run re-executes the same search code and serves recorded
    batches from the journal (validating cursor, indices and canons as it
    goes), then continues live from the first unrecorded batch — producing
    a history digest byte-identical to an uninterrupted run at any
    [-j]/[--no-cache] setting.

    On disk a checkpoint is a text image framed into checksummed
    {!Repro_os.Storage} pages and written with [Storage.save]'s
    deterministic layout, via a temp file and atomic rename — a crash
    mid-save leaves the previous checkpoint intact, and the same state
    always produces the same bytes.  Damage is detected by the store's
    per-page checksums (plus a whole-journal digest) and degrades to a
    cold start, routed through the quarantine policy by the caller. *)

(** Mirror of [Pipeline.eval_core]: the deterministic part of one
    evaluation.  (A separate type keeps this module independent of the
    pipeline, which sits above it.) *)
type core =
  | C_measured of { cycles : int; size : int; key : string }
  | C_compile_failed of string
  | C_compile_timeout
  | C_crashed of string
  | C_hung
  | C_wrong_output
  | C_quarantined of string

type task = {
  t_ev_index : int;
  t_canon : string;      (** canonical genome (memo identity) *)
  t_core : core;
}

type batch = {
  b_cursor : int64;      (** RNG cursor when the batch was requested *)
  b_tasks : task list;   (** in task order *)
}

type t = {
  fingerprint : string;
  (** identity of the run configuration (app, seed, GA config, corpus,
      warm-start seeds); resume refuses journals from a different
      configuration *)
  batches : batch list;              (** chronological *)
  quarantine : (string * string * int) list;
  (** the run's quarantine log at save time: (key, reason, count) *)
}

exception Injected_abort
(** Raised by the simulated-crash hook (the [--ckpt-abort] flag and the
    kill/resume tests) immediately {e after} a checkpoint write — the
    process dies exactly where a real kill between batches would. *)

val memo_digest : t -> string
(** Hex digest over the journal's recorded (canon, core) pairs — the
    persisted genome/binary memo contents a resume will seed the eval
    pool with.  Recorded inside the image and re-checked on load, an
    end-to-end integrity net on top of the per-page checksums. *)

val save : t -> string -> unit
(** Serialize to [file] atomically (temp file + rename).  Byte-
    deterministic: equal values produce equal files. *)

val load :
  string -> [ `Absent | `Loaded of t * string list | `Damaged of string ]
(** Read a checkpoint back.  [`Absent] when [file] does not exist;
    [`Loaded (t, warnings)] on success (warnings from the underlying
    store load, normally empty); [`Damaged reason] when the store, the
    page checksums, the journal digest or the text parse reject the file
    — the caller warns, quarantines the file key and starts cold. *)
