(** Per-application study: capture + search + measurements, computed once
    and shared by every experiment that needs it (Figures 7, 8, 9). *)

type t = {
  app : Repro_apps.Registry.t;
  capture : Pipeline.captured;
  opt : Pipeline.optimized;
  speedups : Pipeline.speedups;
}

val run :
  ?seed:int -> ?cfg:Repro_search.Ga.config -> ?jobs:int -> ?cache:bool ->
  Repro_apps.Registry.t -> t option
(** [None] if the app exposes no replayable hot region.  Results are
    memoized per (app, config identity), so figure drivers share work.
    [jobs]/[cache] control the evaluation pool only; they cannot change
    results, so they are not part of the memo key. *)

val clear_cache : unit -> unit
