module App = Repro_apps.Registry
module B = Repro_dex.Bytecode
module Ga = Repro_search.Ga
module Genome = Repro_search.Genome
module Evalpool = Repro_search.Evalpool
module Compile = Repro_lir.Compile
module Binary = Repro_lir.Binary
module Verify = Repro_capture.Verify
module Capture = Repro_capture.Capture
module Snapshot = Repro_capture.Snapshot
module Breakdown = Repro_profiler.Breakdown
module Rng = Repro_util.Rng
module Stats = Repro_util.Stats
module Table = Repro_util.Table
module Cost = Repro_vm.Cost

let average xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let apps_of ?apps () =
  match apps with
  | None -> App.all
  | Some names -> List.filter_map App.find names

(* ------------------------------- Table 1 --------------------------- *)

let table1 () =
  List.map
    (fun app -> (App.class_name app.App.cls, app.App.name, app.App.descr))
    App.all

let print_table1 () =
  print_endline "Table 1. Android applications used in our experiments.";
  Table.print
    ~aligns:[ Table.Left; Table.Left; Table.Left ]
    ~header:[ "Type"; "Name"; "Description" ]
    (List.map (fun (t, n, d) -> [ t; n; d ]) (table1 ()))

(* ------------------------------- Figure 1 -------------------------- *)

type fig1_outcome =
  | F1_compiler_error
  | F1_compile_timeout
  | F1_runtime_crash
  | F1_runtime_timeout
  | F1_wrong_output
  | F1_correct

let fig1_outcome_name = function
  | F1_compiler_error -> "compiler error"
  | F1_compile_timeout -> "compiler timeout"
  | F1_runtime_crash -> "runtime crash"
  | F1_runtime_timeout -> "runtime timeout"
  | F1_wrong_output -> "wrong output"
  | F1_correct -> "correct output"

type fig1 = {
  f1_counts : (fig1_outcome * int) list;
  f1_total : int;
}

let fft_env ?(seed = 7) () =
  let app = Option.get (App.find "FFT") in
  let capture = Option.get (Pipeline.capture_once ~seed app) in
  Pipeline.make_eval_env ~seed:(seed + 1) app capture

let fig1_of_core = function
  | Pipeline.Core_measured { cycles; _ } -> (F1_correct, Some cycles)
  | Pipeline.Core_compile_failed _ -> (F1_compiler_error, None)
  | Pipeline.Core_compile_timeout -> (F1_compile_timeout, None)
  | Pipeline.Core_crashed _ -> (F1_runtime_crash, None)
  | Pipeline.Core_hung -> (F1_runtime_timeout, None)
  | Pipeline.Core_wrong_output -> (F1_wrong_output, None)
  (* quarantined = persistently failed verification (fault-injection runs
     only); for Figure 1 purposes that is a discarded wrong-output binary *)
  | Pipeline.Core_quarantined _ -> (F1_wrong_output, None)

(* A pool whose outcome is the Figure 1 classification (plus the raw replay
   cycle count, which Figure 2 turns into a noise-free speedup). *)
let classify_pool ?jobs ?cache env =
  Evalpool.create ?jobs ?cache ~canon:Genome.to_string
    ~compile:(Pipeline.compile_core env) ~key_of:Pipeline.binary_key
    ~verify:(Pipeline.verify_core env)
    ~finish:(fun ~ev_index:_ core -> fig1_of_core core)
    ()

(* Draw [n] genomes in stream order ([List.init]'s evaluation order is
   unspecified, and each draw advances [rng]). *)
let draw_genomes rng n =
  let rec go k acc =
    if k = n then List.rev acc else go (k + 1) (Genome.random rng :: acc)
  in
  go 0 []

let fig1 ?(sequences = 100) ?(seed = 7) ?jobs ?cache () =
  let env = fft_env ~seed () in
  let pool = classify_pool ?jobs ?cache env in
  let rng = Rng.create (seed * 31 + 5) in
  let tasks =
    Array.of_list
      (List.mapi (fun i g -> (i + 1, g)) (draw_genomes rng sequences))
  in
  let outcomes = Evalpool.evaluate_batch pool tasks in
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun (outcome, _) ->
       Hashtbl.replace counts outcome
         (1 + Option.value ~default:0 (Hashtbl.find_opt counts outcome)))
    outcomes;
  let order =
    [ F1_compiler_error; F1_compile_timeout; F1_runtime_crash;
      F1_runtime_timeout; F1_wrong_output; F1_correct ]
  in
  { f1_counts =
      List.map
        (fun o -> (o, Option.value ~default:0 (Hashtbl.find_opt counts o)))
        order;
    f1_total = sequences }

let print_fig1 f =
  print_endline
    "Figure 1. Compilation outcome for randomly generated optimization";
  print_endline "sequences on the FFT kernel.";
  Table.print ~header:[ "Outcome"; "Sequences"; "Share" ]
    (List.map
       (fun (o, n) ->
          [ fig1_outcome_name o; string_of_int n;
            Table.fmt_pct (float_of_int n /. float_of_int f.f1_total) ])
       f.f1_counts)

(* ------------------------------- Figure 2 -------------------------- *)

type fig2 = {
  f2_speedups : float array;
  f2_android_ms : float;
}

let fig2 ?(binaries = 50) ?(seed = 11) ?jobs ?cache () =
  let env = fft_env ~seed () in
  let pool = classify_pool ?jobs ?cache env in
  let rng = Rng.create (seed * 77 + 3) in
  let cost = Cost.default in
  let speedups = ref [] in
  let found = ref 0 in
  let attempts = ref 0 in
  (* Same genome stream and stopping rule as a sequential draw-until-found
     loop, evaluated one chunk (batch) at a time; results past the stopping
     point are discarded in order, so the chunk size cannot matter. *)
  let max_attempts = binaries * 20 in
  while !found < binaries && !attempts < max_attempts do
    let chunk = min binaries (max_attempts - !attempts) in
    let tasks =
      Array.of_list
        (List.mapi (fun i g -> (!attempts + i + 1, g)) (draw_genomes rng chunk))
    in
    let outcomes = Evalpool.evaluate_batch pool tasks in
    Array.iter
      (fun outcome ->
         if !found < binaries && !attempts < max_attempts then begin
           incr attempts;
           match outcome with
           | F1_correct, Some cycles ->
             let ms =
               float_of_int cycles /. float_of_int cost.Cost.cycles_per_ms
             in
             speedups := (env.Pipeline.android_region_ms /. ms) :: !speedups;
             incr found
           | _ -> ()
         end)
      outcomes
  done;
  let arr = Array.of_list !speedups in
  Array.sort compare arr;
  { f2_speedups = arr; f2_android_ms = env.Pipeline.android_region_ms }

let print_fig2 f =
  print_endline
    "Figure 2. Replay speedup over the Android compiler for randomly";
  print_endline "generated correct FFT binaries (sorted ascending).";
  let n = Array.length f.f2_speedups in
  let slower =
    Array.fold_left (fun acc s -> if s < 1.0 then acc + 1 else acc) 0
      f.f2_speedups
  in
  Array.iteri
    (fun i s -> if i mod 5 = 0 || i = n - 1 then
        Printf.printf "  #%02d  %s\n" (i + 1) (Table.fmt_speedup s))
    f.f2_speedups;
  if n > 0 then begin
    Printf.printf "  min %s / median %s / max %s; %d of %d slower than Android\n"
      (Table.fmt_speedup f.f2_speedups.(0))
      (Table.fmt_speedup (Stats.median f.f2_speedups))
      (Table.fmt_speedup f.f2_speedups.(n - 1))
      slower n
  end

(* ------------------------------- Figure 3 -------------------------- *)

type fig3_row = {
  f3_evals : int;
  f3_online : float;
  f3_online_lo75 : float;
  f3_online_hi75 : float;
  f3_online_lo95 : float;
  f3_online_hi95 : float;
  f3_offline : float;
}

type fig3 = {
  f3_rows : fig3_row list;
  f3_true_speedup : float;
  f3_online_settle : int option;
  f3_offline_settle : int option;
}

(* FFT with a configurable input size: the template is the registry source
   with the size constant substituted. *)
let replace_once ~needle ~replacement haystack =
  match Astring.String.find_sub ~sub:needle haystack with
  | None -> invalid_arg "replace_once: needle absent"
  | Some i ->
    String.sub haystack 0 i ^ replacement
    ^ String.sub haystack
        (i + String.length needle)
        (String.length haystack - i - String.length needle)

let fft_sized_source size =
  replace_once ~needle:"static int size = 256;"
    ~replacement:(Printf.sprintf "static int size = %d;" size)
    (Option.get (App.find "FFT")).App.source

let fig3_sizes = [ 64; 128; 256; 512; 1024 ]

let fig3_cycles () =
  (* real executions: whole-program cycles for O0 and O1 region code at each
     input size *)
  List.map
    (fun size ->
       let dx = Repro_dex.Lower.compile (fft_sized_source size) in
       let mids =
         Array.to_list (Array.map (fun m -> m.B.cm_id) dx.B.dx_methods)
       in
       let android = Compile.android_binary dx mids in
       let region =
         List.filter
           (fun mid ->
              let m = dx.B.dx_methods.(mid) in
              m.B.cm_class_name = "FFT")
           mids
       in
       let with_region spec =
         let reg = Compile.llvm_binary dx spec region in
         let combined =
           Binary.create
             (List.filter_map (Binary.find android) (Binary.mids android))
         in
         List.iter
           (fun mid ->
              match Binary.find reg mid with
              | Some f -> Hashtbl.replace combined.Binary.funcs mid f
              | None -> ())
           (Binary.mids reg);
         combined
       in
       let run binary =
         let ctx = Repro_vm.Image.build ~seed:5 dx in
         Repro_lir.Exec.install ctx binary;
         ignore (Repro_vm.Interp.run_main ctx);
         ctx.Repro_vm.Exec_ctx.cycles
       in
       (size, run (with_region Repro_lir.Pipelines.o0),
        run (with_region Repro_lir.Pipelines.o1)))
    fig3_sizes

let online_sigma = 0.10

let fig3 ?(max_evals = 10_000) ?(trajectories = 200) ?(seed = 3) () =
  let cycles = fig3_cycles () in
  let arr = Array.of_list cycles in
  let _, c0_max, c1_max = arr.(Array.length arr - 1) in
  let truth = float_of_int c0_max /. float_of_int c1_max in
  let cpms = float_of_int Cost.default.Cost.cycles_per_ms in
  let checkpoints =
    let rec grow acc v =
      if v > max_evals then List.rev acc
      else grow (v :: acc) (max (v + 1) (v * 14 / 10))
    in
    grow [] 1
  in
  (* one online trajectory: estimate of speedup(O1 over O0) per checkpoint *)
  let online_trajectory rng =
    let sum0 = ref 0.0 and n0 = ref 0 in
    let sum1 = ref 0.0 and n1 = ref 0 in
    let results = ref [] in
    let next_cp = ref checkpoints in
    for i = 1 to max_evals do
      let _, c0, c1 = Rng.pick rng arr in
      let version_o0 = i mod 2 = 0 in
      let cycles = if version_o0 then c0 else c1 in
      let t = float_of_int cycles /. cpms *. Rng.lognormal rng ~mu:0.0 ~sigma:online_sigma in
      if version_o0 then begin
        sum0 := !sum0 +. t;
        incr n0
      end
      else begin
        sum1 := !sum1 +. t;
        incr n1
      end;
      (match !next_cp with
       | cp :: rest when cp = i ->
         let est =
           if !n0 = 0 || !n1 = 0 then nan
           else (!sum0 /. float_of_int !n0) /. (!sum1 /. float_of_int !n1)
         in
         results := est :: !results;
         next_cp := rest
       | _ -> ())
    done;
    Array.of_list (List.rev !results)
  in
  let offline_trajectory rng =
    (* fixed largest input, idle device, pinned frequency *)
    let sum0 = ref 0.0 and n0 = ref 0 in
    let sum1 = ref 0.0 and n1 = ref 0 in
    let results = ref [] in
    let next_cp = ref checkpoints in
    for i = 1 to max_evals do
      let version_o0 = i mod 2 = 0 in
      let cycles = if version_o0 then c0_max else c1_max in
      let t = float_of_int cycles /. cpms *. Rng.lognormal rng ~mu:0.0 ~sigma:0.012 in
      if version_o0 then begin
        sum0 := !sum0 +. t;
        incr n0
      end
      else begin
        sum1 := !sum1 +. t;
        incr n1
      end;
      (match !next_cp with
       | cp :: rest when cp = i ->
         let est =
           if !n0 = 0 || !n1 = 0 then nan
           else (!sum0 /. float_of_int !n0) /. (!sum1 /. float_of_int !n1)
         in
         results := est :: !results;
         next_cp := rest
       | _ -> ())
    done;
    Array.of_list (List.rev !results)
  in
  let rng = Rng.create seed in
  let main_online = online_trajectory (Rng.split rng) in
  let main_offline = offline_trajectory (Rng.split rng) in
  let fleet =
    Array.init trajectories (fun _ -> online_trajectory (Rng.split rng))
  in
  let ncp = List.length checkpoints in
  let rows =
    List.mapi
      (fun idx cp ->
         let column =
           Array.map
             (fun traj -> if idx < Array.length traj then traj.(idx) else nan)
             fleet
           |> Array.to_list
           |> List.filter (fun x -> not (Float.is_nan x))
           |> Array.of_list
         in
         { f3_evals = cp;
           f3_online = (if idx < Array.length main_online then main_online.(idx) else nan);
           f3_online_lo75 = Stats.percentile column 12.5;
           f3_online_hi75 = Stats.percentile column 87.5;
           f3_online_lo95 = Stats.percentile column 2.5;
           f3_online_hi95 = Stats.percentile column 97.5;
           f3_offline = (if idx < Array.length main_offline then main_offline.(idx) else nan) })
      checkpoints
  in
  ignore ncp;
  let settle series =
    (* first checkpoint from which the estimate stays within 10% of truth *)
    let ok v = (not (Float.is_nan v)) && abs_float (v -. truth) /. truth <= 0.1 in
    let rec scan = function
      | [] -> None
      | (cp, _) :: _ as rest when List.for_all (fun (_, v) -> ok v) rest ->
        Some cp
      | _ :: rest -> scan rest
    in
    scan (List.map2 (fun cp row -> (cp, row)) checkpoints series)
  in
  { f3_rows = rows;
    f3_true_speedup = truth;
    f3_online_settle = settle (List.map (fun r -> r.f3_online) rows);
    f3_offline_settle = settle (List.map (fun r -> r.f3_offline) rows) }

let print_fig3 f =
  print_endline
    "Figure 3. Estimating the speedup of LLVM -O1 over -O0 for FFT as the";
  print_endline
    "number of evaluations grows.  Online draws random input sizes in a";
  print_endline "noisy environment; offline replays the largest input.";
  Printf.printf "true speedup (largest input): %s\n" (Table.fmt_speedup f.f3_true_speedup);
  Table.print
    ~header:[ "evals"; "online est"; "75% band"; "95% band"; "offline est" ]
    (List.map
       (fun r ->
          [ string_of_int r.f3_evals;
            Table.fmt_f r.f3_online;
            Printf.sprintf "[%s, %s]" (Table.fmt_f r.f3_online_lo75)
              (Table.fmt_f r.f3_online_hi75);
            Printf.sprintf "[%s, %s]" (Table.fmt_f r.f3_online_lo95)
              (Table.fmt_f r.f3_online_hi95);
            Table.fmt_f r.f3_offline ])
       f.f3_rows);
  let show = function None -> ">max" | Some n -> string_of_int n in
  Printf.printf
    "evaluations until the estimate stays within 10%%: online %s, offline %s\n"
    (show f.f3_online_settle) (show f.f3_offline_settle)

(* ----------------------------- Figures 7/8/9 ----------------------- *)

type fig7_row = {
  f7_app : string;
  f7_cls : string;
  f7_o3 : float;
  f7_ga : float;
}

let fig7 ?cfg ?(seed = 7) ?apps ?jobs ?cache () =
  List.filter_map
    (fun app ->
       match Study.run ~seed ?cfg ?jobs ?cache app with
       | None -> None
       | Some s ->
         Some
           { f7_app = app.App.name;
             f7_cls = App.class_name app.App.cls;
             f7_o3 = s.Study.speedups.Pipeline.o3_speedup;
             f7_ga = s.Study.speedups.Pipeline.ga_speedup })
    (apps_of ?apps ())

let print_fig7 rows =
  print_endline
    "Figure 7. Whole-program speedup over the Android compiler.";
  Table.print ~header:[ "App"; "Type"; "LLVM -O3"; "LLVM GA" ]
    (List.map
       (fun r ->
          [ r.f7_app; r.f7_cls; Table.fmt_speedup r.f7_o3;
            Table.fmt_speedup r.f7_ga ])
       rows);
  let o3s = List.map (fun r -> r.f7_o3) rows in
  let gas = List.map (fun r -> r.f7_ga) rows in
  Printf.printf "AVERAGE: LLVM -O3 %s, LLVM GA %s over the Android compiler\n"
    (Table.fmt_speedup (average o3s))
    (Table.fmt_speedup (average gas))

type fig8_row = {
  f8_app : string;
  f8_fractions : (string * float) list;
}

let fig8 ?cfg ?(seed = 7) ?apps () =
  ignore cfg;
  List.filter_map
    (fun app ->
       let online = Pipeline.online_run ~seed app in
       let region =
         match Pipeline.hot_region_of app online with
         | Some hot -> Pipeline.region_methods app hot
         | None -> []
       in
       let fractions =
         Breakdown.of_profile (App.dexfile app) ~region online.Pipeline.profile
         |> List.map (fun (c, f) -> (Breakdown.category_name c, f))
       in
       Some { f8_app = app.App.name; f8_fractions = fractions })
    (apps_of ?apps ())

let print_fig8 rows =
  print_endline
    "Figure 8. Runtime code breakdown (sample-based profile, online).";
  let header =
    "App" :: List.map fst (match rows with r :: _ -> r.f8_fractions | [] -> [])
  in
  Table.print ~header
    (List.map
       (fun r -> r.f8_app :: List.map (fun (_, f) -> Table.fmt_pct f) r.f8_fractions)
       rows);
  (match rows with
   | [] -> ()
   | r0 :: _ ->
     let cats = List.map fst r0.f8_fractions in
     let avg cat =
       average
         (List.map (fun r -> List.assoc cat r.f8_fractions) rows)
     in
     Printf.printf "AVERAGE: %s\n"
       (String.concat "  "
          (List.map (fun c -> Printf.sprintf "%s %s" c (Table.fmt_pct (avg c))) cats)))

type fig9_point = {
  f9_generation : int;
  f9_best : float;
  f9_worst : float;
}

type fig9_row = { f9_app : string; f9_points : fig9_point list }

let fig9 ?cfg ?(seed = 7) ?apps ?jobs ?cache () =
  List.filter_map
    (fun app ->
       match Study.run ~seed ?cfg ?jobs ?cache app with
       | None -> None
       | Some s ->
         let android_ms = s.Study.opt.Pipeline.env.Pipeline.android_region_ms in
         let by_gen = Hashtbl.create 16 in
         List.iter
           (fun ev ->
              match ev.Ga.ev_fitness with
              | None -> ()
              | Some fit ->
                let sp = android_ms /. fit in
                let g = ev.Ga.ev_generation in
                let best, worst =
                  Option.value ~default:(neg_infinity, infinity)
                    (Hashtbl.find_opt by_gen g)
                in
                Hashtbl.replace by_gen g (max best sp, min worst sp))
           s.Study.opt.Pipeline.ga.Ga.history;
         let gens =
           Hashtbl.fold (fun g _ acc -> g :: acc) by_gen [] |> List.sort compare
         in
         (* best line is cumulative (best genome so far) *)
         let points =
           let best_so_far = ref neg_infinity in
           List.map
             (fun g ->
                let best, worst = Hashtbl.find by_gen g in
                best_so_far := max !best_so_far best;
                { f9_generation = g; f9_best = !best_so_far; f9_worst = worst })
             gens
         in
         Some { f9_app = app.App.name; f9_points = points })
    (apps_of ?apps ())

let print_fig9 rows =
  print_endline
    "Figure 9. Best/worst measured genome per generation (speedup over";
  print_endline "the Android compiler, hot region replay).";
  List.iter
    (fun r ->
       Printf.printf "%s:\n" r.f9_app;
       Table.print ~header:[ "generation"; "best"; "worst" ]
         (List.map
            (fun p ->
               [ string_of_int p.f9_generation;
                 Table.fmt_speedup p.f9_best;
                 Table.fmt_speedup p.f9_worst ])
            r.f9_points))
    rows

(* ----------------------------- Figures 10/11 ----------------------- *)

type fig10_row = {
  f10_app : string;
  f10_fork : float;
  f10_prep : float;
  f10_faults_cow : float;
  f10_total : float;
}

let fig10 ?(seed = 7) ?(eager = false) ?apps () =
  let saved = !Capture.eager_mode in
  Capture.eager_mode := eager;
  let rows =
    List.filter_map
      (fun app ->
         match Pipeline.capture_once ~seed app with
         | None -> None
         | Some cap ->
           let o = cap.Pipeline.overhead in
           Some
             { f10_app = app.App.name;
               f10_fork = o.Capture.fork_ms;
               f10_prep = o.Capture.preparation_ms;
               f10_faults_cow = o.Capture.fault_cow_ms;
               f10_total = Capture.total_ms o })
      (apps_of ?apps ())
  in
  Capture.eager_mode := saved;
  rows

let print_fig10 rows =
  print_endline
    "Figure 10. Online capture overhead breakdown (milliseconds).";
  Table.print
    ~header:[ "App"; "Fork"; "Preparation"; "Faults+CoW"; "Total" ]
    (List.map
       (fun r ->
          [ r.f10_app; Table.fmt_f ~decimals:1 r.f10_fork;
            Table.fmt_f ~decimals:1 r.f10_prep;
            Table.fmt_f ~decimals:1 r.f10_faults_cow;
            Table.fmt_f ~decimals:1 r.f10_total ])
       rows);
  Printf.printf "AVERAGE total: %.1f ms (max %.1f ms)\n"
    (average (List.map (fun r -> r.f10_total) rows))
    (List.fold_left (fun acc r -> max acc r.f10_total) 0.0 rows)

type fig11_row = {
  f11_app : string;
  f11_program_mb : float;
  f11_common_mb : float;
}

let fig11 ?(seed = 7) ?apps () =
  List.filter_map
    (fun app ->
       match Pipeline.capture_once ~seed app with
       | None -> None
       | Some cap ->
         let snap = cap.Pipeline.snapshot in
         Some
           { f11_app = app.App.name;
             f11_program_mb =
               float_of_int (Snapshot.program_bytes snap) /. 1048576.0;
             f11_common_mb =
               float_of_int (Snapshot.common_bytes snap) /. 1048576.0 })
    (apps_of ?apps ())

let print_fig11 rows =
  print_endline
    "Figure 11. Capture storage: program-specific pages vs boot-common";
  print_endline "pages (stored once per boot).";
  Table.print ~header:[ "App"; "Program (MB)"; "Common (MB)" ]
    (List.map
       (fun r ->
          [ r.f11_app; Table.fmt_f r.f11_program_mb; Table.fmt_f r.f11_common_mb ])
       rows);
  Printf.printf "AVERAGE program-specific: %.2f MB\n"
    (average (List.map (fun r -> r.f11_program_mb) rows))

(* ------------------ unsafe-pass survival vs corpus size ------------- *)

(* The experiment the paper does not have: how many unsafe binaries does
   single-input verification let through, and how fast does a multi-input
   corpus close the hole?  For every Scimark app and a fixed family of
   unsafe genomes, find the smallest corpus size K at which verification
   rejects the binary.  Fitness never enters: this is purely about the
   verification net. *)

type survival_genome = {
  sg_app : string;
  sg_label : string;
  sg_killed_at : int option;
  (* smallest K whose corpus rejects it: 1 = primary capture already
     catches it; None = survives the whole corpus *)
}

type survival_point = { sp_k : int; sp_tested : int; sp_survived : int }

type survival = {
  su_seed : int;
  su_kmax : int;
  su_points : survival_point list;         (* k = 1..kmax *)
  su_genomes : survival_genome list;
  su_pinned_killed_at : int option;        (* o2+unsafe-bce on FFT *)
  su_corpus_entries : int;                 (* secondary captures made *)
  su_capture_ms : float;                   (* mean online ms per secondary capture *)
  su_corpus_checks : int;                  (* corpus checks run (after short-circuit) *)
}

(* The pinned guard-stripping genome of the regression test: the Android
   pipeline's body with every bounds guard dropped afterwards. *)
let pinned_unsafe_genome () =
  List.map
    (fun (name, ps) -> { Genome.g_pass = name; g_params = ps })
    (Repro_lir.Pipelines.o2 @ [ ("unsafe-bce", [||]) ])

let survival_genomes () =
  let of_spec label spec =
    (label,
     List.map
       (fun (name, ps) -> { Genome.g_pass = name; g_params = ps })
       spec)
  in
  let o2 = Repro_lir.Pipelines.o2 in
  [ of_spec "o2+unsafe-bce" (o2 @ [ ("unsafe-bce", [||]) ]);
    of_spec "o2+unsafe-null-elim" (o2 @ [ ("unsafe-null-elim", [||]) ]);
    of_spec "o2+unsafe-div-lower" (o2 @ [ ("unsafe-div-lower", [||]) ]);
    of_spec "o2+unsafe-lsf" (o2 @ [ ("unsafe-lsf", [||]) ]);
    of_spec "o2+unsafe-licm" (o2 @ [ ("unsafe-licm", [||]) ]);
    of_spec "o2+fast-math" (o2 @ [ ("fast-math", [| 1; 1 |]) ]);
    of_spec "o2+fast-math:recip" (o2 @ [ ("fast-math", [| 1; 0 |]) ]);
    of_spec "o2+fast-math:contract" (o2 @ [ ("fast-math", [| 0; 1 |]) ]);
    of_spec "o2+unsafe-bce+fast-math"
      (o2 @ [ ("unsafe-bce", [||]); ("fast-math", [| 1; 1 |]) ]);
    of_spec "unsafe-bce-only" [ ("unsafe-bce", [||]) ] ]

(* First corpus size K at which the binary is rejected: primary check
   first (K=1), then the corpus entries in order (entry i covers K=i+1).
   Counts every check it actually runs in [checks]. *)
let killed_at env checks binary =
  match Repro_capture.Verify.check env.Pipeline.dx
          env.Pipeline.capture.Pipeline.snapshot env.Pipeline.vmap binary
  with
  | Repro_capture.Verify.Passed _ ->
    let rec loop i = function
      | [] -> None
      | ce :: rest ->
        incr checks;
        (match Repro_capture.Verify.check_ref env.Pipeline.dx
                 ce.Pipeline.ce_snapshot ce.Pipeline.ce_reference binary
         with
         | Repro_capture.Verify.Passed _ -> loop (i + 1) rest
         | _ -> Some (i + 1))
    in
    loop 1 env.Pipeline.corpus
  | _ -> Some 1

let scimark_names =
  [ "FFT"; "SOR"; "MonteCarlo"; "Sparse matmult"; "LU" ]

let survival ?(seed = 7) ?(kmax = 8) ?(apps = scimark_names) () =
  let checks = ref 0 in
  let entries = ref 0 in
  let capture_ms = ref [] in
  let genomes =
    List.concat_map
      (fun app ->
         match Pipeline.capture_corpus ~seed ~k:kmax app with
         | None -> []
         | Some co ->
           entries := !entries + List.length co.Pipeline.co_entries;
           List.iter
             (fun ce ->
                capture_ms :=
                  Capture.total_ms ce.Pipeline.ce_overhead :: !capture_ms)
             co.Pipeline.co_entries;
           let env =
             Pipeline.make_eval_env ~seed:(seed + 1)
               ~corpus:co.Pipeline.co_entries app co.Pipeline.co_primary
           in
           List.filter_map
             (fun (label, genome) ->
                match Pipeline.compile_core env genome with
                | Error _ -> None
                | Ok binary ->
                  Some
                    { sg_app = app.App.name;
                      sg_label = label;
                      sg_killed_at = killed_at env checks binary })
             (survival_genomes ()))
      (apps_of ~apps ())
  in
  let tested = List.length genomes in
  let points =
    List.init kmax (fun i ->
        let k = i + 1 in
        let survived =
          List.length
            (List.filter
               (fun g ->
                  match g.sg_killed_at with
                  | None -> true
                  | Some kk -> kk > k)
               genomes)
        in
        { sp_k = k; sp_tested = tested; sp_survived = survived })
  in
  let pinned =
    List.find_opt
      (fun g -> g.sg_app = "FFT" && g.sg_label = "o2+unsafe-bce")
      genomes
  in
  { su_seed = seed;
    su_kmax = kmax;
    su_points = points;
    su_genomes = genomes;
    su_pinned_killed_at = Option.bind pinned (fun g -> g.sg_killed_at);
    su_corpus_entries = !entries;
    su_capture_ms = average !capture_ms;
    su_corpus_checks = !checks }

let print_survival s =
  print_endline
    "Unsafe-pass survival vs corpus size K (cross-input verification).";
  Printf.printf "seed %d, %d (app, genome) pairs, %d secondary captures\n"
    s.su_seed
    (List.length s.su_genomes)
    s.su_corpus_entries;
  Table.print ~header:[ "K"; "Tested"; "Survive"; "Rate" ]
    (List.map
       (fun p ->
          [ string_of_int p.sp_k; string_of_int p.sp_tested;
            string_of_int p.sp_survived;
            Table.fmt_f ~decimals:1
              (100.0 *. float_of_int p.sp_survived
               /. float_of_int (max 1 p.sp_tested)) ])
       s.su_points);
  Table.print ~header:[ "App"; "Genome"; "Killed at K" ]
    (List.map
       (fun g ->
          [ g.sg_app; g.sg_label;
            (match g.sg_killed_at with
             | Some k -> string_of_int k
             | None -> "never") ])
       s.su_genomes);
  (match s.su_pinned_killed_at with
   | Some k ->
     Printf.printf
       "pinned o2+unsafe-bce on FFT: passes K<%d, rejected at K=%d\n" k k
   | None ->
     print_endline "pinned o2+unsafe-bce on FFT: NOT killed (hole open!)");
  Printf.printf
    "corpus cost: %.1f ms mean online overhead per secondary capture; \
     %d corpus checks\n"
    s.su_capture_ms s.su_corpus_checks
