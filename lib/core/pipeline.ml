module App = Repro_apps.Registry
module B = Repro_dex.Bytecode
module Ctx = Repro_vm.Exec_ctx
module Interp = Repro_vm.Interp
module Cost = Repro_vm.Cost
module Value = Repro_vm.Value
module Binary = Repro_lir.Binary
module Compile = Repro_lir.Compile
module Exec = Repro_lir.Exec
module Capture = Repro_capture.Capture
module Snapshot = Repro_capture.Snapshot
module Replay = Repro_capture.Replay
module Verify = Repro_capture.Verify
module Typeprof = Repro_capture.Typeprof
module Profile = Repro_profiler.Profile
module Regions = Repro_profiler.Regions
module Genome = Repro_search.Genome
module Ga = Repro_search.Ga
module Evalpool = Repro_search.Evalpool
module Rng = Repro_util.Rng
module Stats = Repro_util.Stats
module Storage = Repro_os.Storage
module Trace = Repro_util.Trace
module Faults = Repro_util.Faults

type online = {
  ctx : Ctx.t;
  profile : Profile.t;
  cycles : int;
  ret : Value.t option;
}

let all_mids dx = Array.to_list (Array.map (fun m -> m.B.cm_id) dx.B.dx_methods)

let android_cache : (string, Binary.t) Hashtbl.t = Hashtbl.create 32

let android_binary_for app =
  match Hashtbl.find_opt android_cache app.App.name with
  | Some b -> b
  | None ->
    let dx = App.dexfile app in
    let b = Compile.android_binary dx (all_mids dx) in
    Hashtbl.add android_cache app.App.name b;
    b

let online_run ?(seed = 42) ?binary ?(sample_period = 20_000) app =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "online_run"
  @@ fun () ->
  let ctx = App.build_ctx ~seed app in
  ctx.Ctx.sample_period <- sample_period;
  ctx.Ctx.next_sample <- sample_period;
  (match binary with
   | Some b -> Exec.install ctx b
   | None -> Exec.install ctx (android_binary_for app));
  let ret = Interp.run_main ctx in
  { ctx; profile = Profile.of_ctx ctx; cycles = ctx.Ctx.cycles; ret }

let hot_region_of app online =
  Regions.hot_region (App.dexfile app) online.profile

let region_methods app mid = Regions.compilable_region (App.dexfile app) mid

type captured = {
  snapshot : Snapshot.t;
  overhead : Capture.overhead;
  hot_mid : int;
  online_with_capture : online;
}

let capture_once ?(seed = 42) ?(capture_at = 2) app =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "capture_once"
  @@ fun () ->
  (* a first run finds the hot region; the capture run targets it *)
  let scout = online_run ~seed app in
  match hot_region_of app scout with
  | None -> None
  | Some hot_mid ->
    let ctx = App.build_ctx ~seed app in
    ctx.Ctx.sample_period <- 20_000;
    ctx.Ctx.next_sample <- 20_000;
    let binary = android_binary_for app in
    let base = Exec.dispatcher binary in
    let result = ref None in
    let entries = ref 0 in
    let dispatch ctx' mid args =
      if mid = hot_mid then incr entries;
      if mid = hot_mid && !entries = capture_at && !result = None then begin
        let r =
          Capture.capture_region ~app:app.App.name ctx' ~mid ~args
            ~run:(fun () -> base ctx' mid args)
        in
        result := Some r;
        r.Capture.region_ret
      end
      else base ctx' mid args
    in
    Ctx.set_dispatch ctx dispatch;
    let ret = Interp.run_main ctx in
    (match !result with
     | None -> None
     | Some r ->
       (* spool the captured pages to the device store, when one is
          attached; hashing/dedup happens at the idle-priority drains
          between GA evaluation batches *)
       (match Snapshot.current_store () with
        | Some storage -> Snapshot.store storage r.Capture.snapshot
        | None -> ());
       Some
         { snapshot = r.Capture.snapshot;
           overhead = r.Capture.overhead;
           hot_mid;
           online_with_capture =
             { ctx; profile = Profile.of_ctx ctx; cycles = ctx.Ctx.cycles; ret } })

(* ------------------------- multi-input corpus ------------------------ *)

type corpus_entry = {
  ce_input : App.input;
  ce_snapshot : Snapshot.t;
  ce_reference : Verify.reference;
  ce_typeprof : Typeprof.t;
  ce_overhead : Capture.overhead;
}

type corpus = {
  co_app : App.t;
  co_seed : int;
  co_primary : captured;
  co_entries : corpus_entry list;
}

(* One secondary capture: re-run the app online under the Android binary
   with the variant input poked in, capture the *first* entry into the
   primary's hot region (adversarial inputs may trap before a second
   entry happens), and abort the rest of the online run — variants exist
   only to be replayed, their online completion is not needed.  The
   capture harvests even when the region traps: the forked child's pages
   predate the region. *)
let capture_variant app ~seed ~hot_mid input =
  Trace.span ~cat:"pipeline"
    ~args:[ ("app", app.App.name); ("input", input.App.in_label) ]
    "capture_variant"
  @@ fun () ->
  let exception Captured_stop in
  let ctx = App.build_ctx ~seed ~input app in
  ctx.Ctx.sample_period <- 20_000;
  ctx.Ctx.next_sample <- 20_000;
  let binary = android_binary_for app in
  let base = Exec.dispatcher binary in
  let result = ref None in
  let dispatch ctx' mid args =
    if mid = hot_mid && !result = None then begin
      let r =
        Capture.capture_region ~app:app.App.name ~harvest_on_exn:true ctx' ~mid
          ~args
          ~run:(fun () -> base ctx' mid args)
      in
      result := Some r;
      raise_notrace Captured_stop
    end
    else base ctx' mid args
  in
  Ctx.set_dispatch ctx dispatch;
  (* the variant input may legitimately crash the driver before (or
     after) the region; only a completed capture matters here *)
  (try ignore (Interp.run_main ctx) with Captured_stop | _ -> ());
  match !result with
  | None -> None
  | Some r ->
    (match Snapshot.current_store () with
     | Some storage -> Snapshot.store storage r.Capture.snapshot
     | None -> ());
    let typeprof = Typeprof.create () in
    (match
       Verify.collect_ref
         ~record_vcall:(fun site cid -> Typeprof.record typeprof site cid)
         (App.dexfile app) r.Capture.snapshot
     with
     | reference ->
       Trace.incr "corpus.captures";
       Some
         { ce_input = input;
           ce_snapshot = r.Capture.snapshot;
           ce_reference = reference;
           ce_typeprof = typeprof;
           ce_overhead = r.Capture.overhead }
     | exception Failure _ -> None)

let capture_corpus ?(seed = 42) ~k app =
  Trace.span ~cat:"pipeline"
    ~args:[ ("app", app.App.name); ("k", string_of_int k) ]
    "capture_corpus"
  @@ fun () ->
  match capture_once ~seed app with
  | None -> None
  | Some primary ->
    Trace.incr "corpus.captures";
    let variants =
      match App.input_variants app ~seed ~k with
      | [] -> []
      | _default :: rest -> rest
    in
    let entries =
      List.filter_map
        (capture_variant app ~seed ~hot_mid:primary.hot_mid)
        variants
    in
    Some { co_app = app; co_seed = seed; co_primary = primary;
           co_entries = entries }

type evaluation_env = {
  dx : B.dexfile;
  app : App.t;
  capture : captured;
  vmap : Verify.t;
  typeprof : Typeprof.t;
  region : int list;
  frontend : Compile.frontend;
  corpus : corpus_entry list;
  android_region_ms : float;
  o3_region_ms : float;
  replays_per_eval : int;
  noise_sigma : float;
  measure_seed : int;
}

(* Offline replays run on an idle device with pinned frequency (§4): the
   remaining noise is small and multiplicative. *)
let default_noise_sigma = 0.012

let synth_times rng ~replays ~sigma cycles cost =
  let ms = float_of_int cycles /. float_of_int cost.Cost.cycles_per_ms in
  Array.init replays (fun _ -> ms *. Rng.lognormal rng ~mu:0.0 ~sigma)

(* Every measurement draws its noise from a stream derived from
   [(measure_seed, ev_index)] alone, so measured times depend only on the
   evaluation's identity — not on worker count, batching, or cache state.
   Negative indices are reserved for the fixed baseline measurements. *)
let android_noise_index = -1
let o3_noise_index = -2
let replay_ms_noise_index = -3

let noise_times env ~ev_index cycles =
  let rng = Rng.of_pair env.measure_seed ev_index in
  synth_times rng ~replays:env.replays_per_eval ~sigma:env.noise_sigma cycles
    Cost.default

let region_binary_android env =
  let b = android_binary_for env.app in
  Binary.create (List.filter_map (Binary.find b) env.region)

let replay_cycles_of_binary dx snap vmap binary =
  match Verify.check dx snap vmap binary with
  | Verify.Passed cycles -> Some cycles
  | Verify.Wrong_output | Verify.Crashed _ | Verify.Hung -> None

let make_eval_env ?(seed = 1234) ?(replays = 10) ?(corpus = []) app capture =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "make_eval_env"
  @@ fun () ->
  let dx = App.dexfile app in
  let typeprof = Typeprof.create () in
  let snap = capture.snapshot in
  (* interpreted replay: verification map + dispatch-type profile (§3.4) *)
  let r =
    Replay.run dx snap Replay.Interpreter
      ~record_vcall:(fun site cid -> Typeprof.record typeprof site cid)
  in
  let vmap =
    match r.Replay.outcome with
    | Replay.Finished (ret, _) ->
      { Verify.writes = Verify.diff_against_snapshot r.Replay.ctx snap; ret }
    | Replay.Crashed msg -> failwith ("interpreted replay crashed: " ^ msg)
    | Replay.Hung -> failwith "interpreted replay hung"
  in
  let region = Regions.compilable_region dx capture.hot_mid in
  (* The genome-independent front-end, hoisted: one template per (app,
     capture, profile), content-keyed so independent environments with the
     same profile share stage-cache entries, and prewarmed over the region
     so search-time lookups are read-mostly. *)
  let frontend =
    Compile.frontend ~profile:(Typeprof.lookup typeprof) ~prewarm:region
      ~key:(Printf.sprintf "app=%s;typeprof=%s" app.App.name
              (Typeprof.digest typeprof))
      dx
  in
  let env0 =
    { dx; app; capture; vmap; typeprof; region; frontend; corpus;
      android_region_ms = nan; o3_region_ms = nan;
      replays_per_eval = replays; noise_sigma = default_noise_sigma;
      measure_seed = seed }
  in
  let ms_of_binary ~noise_index binary =
    match replay_cycles_of_binary dx snap vmap binary with
    | Some cycles ->
      Stats.mean
        (Stats.remove_outliers_mad
           (noise_times env0 ~ev_index:noise_index cycles))
    | None -> nan
  in
  let android_ms =
    ms_of_binary ~noise_index:android_noise_index (region_binary_android env0)
  in
  let o3 =
    match Compile.llvm_binary_staged frontend Repro_lir.Pipelines.o3 region with
    | b -> ms_of_binary ~noise_index:o3_noise_index b
    | exception (Compile.Compile_error _ | Compile.Compile_timeout) -> nan
  in
  { env0 with android_region_ms = android_ms; o3_region_ms = o3 }

(* Delegates to the binary's memoized content digest: the same key now
   identifies a binary in the Evalpool memo and in the block-plan cache, so
   their hit counts can be cross-checked. *)
let binary_key = Binary.digest

(* The deterministic part of one evaluation: everything except the
   synthesized measurement noise.  This is what Evalpool memoizes — two
   genomes (or two cache states) producing the same core always yield the
   same final outcome once [outcome_of_core] re-synthesizes the times from
   the evaluation index. *)
type eval_core =
  | Core_measured of { cycles : int; size : int; key : string }
  | Core_compile_failed of string
  | Core_compile_timeout
  | Core_crashed of string
  | Core_hung
  | Core_wrong_output
  | Core_quarantined of string

let compile_core env genome =
  match
    Compile.llvm_binary_staged env.frontend (Genome.to_spec genome) env.region
  with
  | binary -> Ok binary
  | exception Compile.Compile_error msg -> Error (Core_compile_failed msg)
  | exception Compile.Compile_timeout -> Error Core_compile_timeout

(* ----------------------- quarantine accounting ---------------------- *)

(* Process-wide record of binaries discarded under fault injection: the
   verify stage runs on worker domains, so the log is mutex-protected.
   Trace counters mirror it ([verify.quarantined], [verify.retried]) but
   the log itself is always on — the CLI's quarantine report must not
   require --trace. *)
type quarantine_entry = {
  q_binary : string;
  q_reason : string;
  q_count : int;
}

let quarantine_mutex = Mutex.create ()
let quarantine_log : (string, string * int) Hashtbl.t = Hashtbl.create 16

let reset_quarantine () =
  Mutex.lock quarantine_mutex;
  Hashtbl.reset quarantine_log;
  Mutex.unlock quarantine_mutex

let record_quarantine ~key ~reason =
  Mutex.lock quarantine_mutex;
  (match Hashtbl.find_opt quarantine_log key with
   | Some (r, n) -> Hashtbl.replace quarantine_log key (r, n + 1)
   | None -> Hashtbl.add quarantine_log key (reason, 1));
  Mutex.unlock quarantine_mutex;
  Trace.incr "verify.quarantined"

let quarantine_summary () =
  Mutex.lock quarantine_mutex;
  let entries =
    Hashtbl.fold
      (fun key (reason, n) acc ->
         { q_binary = key; q_reason = reason; q_count = n } :: acc)
      quarantine_log []
  in
  Mutex.unlock quarantine_mutex;
  List.sort (fun a b -> String.compare a.q_binary b.q_binary) entries

let reason_of_check = function
  | Verify.Passed _ -> "passed"
  | Verify.Wrong_output -> "wrong output"
  | Verify.Crashed msg -> "crashed: " ^ msg
  | Verify.Hung -> "hung"

(* One full verification pass: the primary capture first (its cycles are
   the fitness measurement), then every corpus entry in corpus order with
   a first-failure short-circuit.  [site] keys the fault scopes when
   fault injection is armed: the primary keeps the historical key and
   entry [i] gets [combine site i], so every corpus check's fault
   decisions stay a pure function of (seed, binary, attempt, entry) —
   independent of worker count and evaluation order. *)
let check_corpus env ?site binary =
  let fkey i =
    match site with
    | None -> None
    | Some s -> Some (if i = 0 then s else Faults.combine s i)
  in
  match
    Verify.check ?faults_key:(fkey 0) env.dx env.capture.snapshot env.vmap
      binary
  with
  | Verify.Passed cycles ->
    let rec loop i = function
      | [] -> Verify.Passed cycles
      | ce :: rest ->
        Trace.incr "verify.corpus_checks";
        (match
           Verify.check_ref ?faults_key:(fkey i) env.dx ce.ce_snapshot
             ce.ce_reference binary
         with
         | Verify.Passed _ -> loop (i + 1) rest
         | bad ->
           Trace.incr "verify.corpus_kills";
           bad)
    in
    loop 1 env.corpus
  | bad -> bad

let verify_core env binary =
  let measured cycles =
    Core_measured
      { cycles; size = binary.Binary.size; key = binary_key binary }
  in
  if not (Faults.active ()) then
    (* Fault injection off (the normal pipeline): single attempt, and a
       failed verification keeps its precise verdict. *)
    match check_corpus env binary with
    | Verify.Passed cycles -> measured cycles
    | Verify.Wrong_output -> Core_wrong_output
    | Verify.Crashed msg -> Core_crashed msg
    | Verify.Hung -> Core_hung
  else begin
    (* Fault injection on: the candidate replay runs inside a fault scope
       keyed by (binary, attempt).  A first failure is retried once under
       attempt 1 — transient replay/loader/executor faults are keyed by the
       scope and (almost surely) don't re-fire, while a deterministic
       miscompile (the fault is in the binary) fails again and the binary
       is quarantined.  All decisions are pure functions of the fault seed
       and the binary, so results stay byte-identical across -jN/cache. *)
    let key = binary_key binary in
    let site attempt = Faults.combine (Faults.hash_string key) attempt in
    match check_corpus env ~site:(site 0) binary with
    | Verify.Passed cycles -> measured cycles
    | first ->
      Trace.incr "verify.retried";
      (match check_corpus env ~site:(site 1) binary with
       | Verify.Passed cycles -> measured cycles   (* transient fault *)
       | second ->
         let reason =
           Printf.sprintf "%s; retry: %s" (reason_of_check first)
             (reason_of_check second)
         in
         record_quarantine ~key ~reason;
         Core_quarantined reason)
  end

let outcome_of_core env ~ev_index core =
  match core with
  | Core_measured { cycles; size; key } ->
    Ga.Measured { times = noise_times env ~ev_index cycles; size; key }
  | Core_compile_failed msg -> Ga.Compile_failed msg
  | Core_compile_timeout -> Ga.Compile_failed "compile timeout"
  | Core_crashed msg -> Ga.Runtime_crashed msg
  | Core_hung -> Ga.Runtime_hung
  | Core_wrong_output -> Ga.Wrong_output
  | Core_quarantined msg -> Ga.Quarantined msg

let make_pool ?jobs ?cache env =
  Evalpool.create ?jobs ?cache ~canon:Genome.canon
    ~compile:(compile_core env) ~key_of:binary_key ~verify:(verify_core env)
    ~finish:(fun ~ev_index core -> outcome_of_core env ~ev_index core)
    ()

(* Same pool, but [finish] returns the raw deterministic core instead of a
   noised GA outcome: the fleet coordinator synthesizes per-device times
   itself (each device re-seeds noise from its own profile), so it needs
   the core before noise is applied. *)
let make_core_pool ?jobs ?cache env =
  Evalpool.create ?jobs ?cache ~canon:Genome.canon
    ~compile:(compile_core env) ~key_of:binary_key ~verify:(verify_core env)
    ~finish:(fun ~ev_index:_ core -> core)
    ()

let evaluate_genome ?(ev_index = 0) env genome =
  let core =
    match compile_core env genome with
    | Ok binary -> verify_core env binary
    | Error core -> core
  in
  outcome_of_core env ~ev_index core

let replay_ms env binary =
  match replay_cycles_of_binary env.dx env.capture.snapshot env.vmap binary with
  | Some cycles ->
    Some
      (Stats.mean
         (Stats.remove_outliers_mad
            (noise_times env ~ev_index:replay_ms_noise_index cycles)))
  | None -> None

type optimized = {
  env : evaluation_env;
  ga : Ga.result;
  best_genome : Genome.t option;
  best_binary : Binary.t option;
  pool_stats : Evalpool.stats;
}

let compile_genome env genome =
  match
    Compile.llvm_binary_staged env.frontend (Genome.to_spec genome) env.region
  with
  | b -> Some b
  | exception (Compile.Compile_error _ | Compile.Compile_timeout) -> None

(* Idle-priority spooler model (paper §3.2): the device hashes and stores
   captured pages while the search is otherwise idle — in the gaps between
   GA evaluation batches.  A bounded chunk per gap keeps the model honest
   (the spool drains over time, not instantly); results cannot depend on
   it, because the store's contents are a pure function of what was
   captured — never of when the drain ran. *)
let idle_drain_chunk = 256

let idle_drain () =
  match Snapshot.current_store () with
  | None -> ()
  | Some storage -> ignore (Storage.drain ~max_pages:idle_drain_chunk storage)

let optimize ?(seed = 99) ?(cfg = Ga.quick_config) ?jobs ?cache ?(corpus = [])
    app capture =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "optimize"
  @@ fun () ->
  let env = make_eval_env ~seed:(seed + 1) ~corpus app capture in
  let pool = make_pool ?jobs ?cache env in
  let rng = Rng.create seed in
  let evaluate_batch tasks =
    let out = Evalpool.evaluate_batch pool tasks in
    idle_drain ();
    out
  in
  let ga =
    Ga.run rng cfg ~evaluate_batch
      ?baseline_ms:
        (if Float.is_nan env.android_region_ms then None
         else Some env.android_region_ms)
      ?o3_ms:(if Float.is_nan env.o3_region_ms then None else Some env.o3_region_ms)
      ()
  in
  let best =
    match ga.Ga.best with
    | None -> None
    | Some (genome, fit) ->
      Some
        (Ga.hill_climb_batch ~ev_base:ga.Ga.evaluations rng
           ~evaluate_batch (genome, fit)
           ~rounds:2)
  in
  let best_genome = Option.map fst best in
  let best_binary = Option.bind best_genome (compile_genome env) in
  { env; ga; best_genome; best_binary; pool_stats = Evalpool.stats pool }

let overlay base overlay_binary =
  let funcs =
    List.filter_map (Binary.find base) (Binary.mids base)
  in
  let combined = Binary.create funcs in
  List.iter
    (fun mid ->
       match Binary.find overlay_binary mid with
       | Some f -> Hashtbl.replace combined.Binary.funcs mid f
       | None -> ())
    (Binary.mids overlay_binary);
  Binary.recompute_size combined;
  combined

let final_binary opt =
  let base = android_binary_for opt.env.app in
  match opt.best_binary with
  | Some b -> overlay base b
  | None -> base

let o3_binary env =
  let base = android_binary_for env.app in
  match
    Compile.llvm_binary_staged env.frontend Repro_lir.Pipelines.o3 env.region
  with
  | b -> overlay base b
  | exception (Compile.Compile_error _ | Compile.Compile_timeout) -> base

type speedups = {
  android_cycles : float;
  o3_cycles : float;
  ga_cycles : float;
  o3_speedup : float;
  ga_speedup : float;
}

let measure_speedups ?(runs = 5) app opt =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "measure_speedups"
  @@ fun () ->
  let android = android_binary_for app in
  let o3 = o3_binary opt.env in
  let ga = final_binary opt in
  let mean_cycles binary =
    let samples =
      Array.init runs (fun i ->
          float_of_int (online_run ~seed:(1000 + i) ~binary app).cycles)
    in
    Stats.mean samples
  in
  let android_cycles = mean_cycles android in
  let o3_cycles = mean_cycles o3 in
  let ga_cycles = mean_cycles ga in
  { android_cycles; o3_cycles; ga_cycles;
    o3_speedup = android_cycles /. o3_cycles;
    ga_speedup = android_cycles /. ga_cycles }
