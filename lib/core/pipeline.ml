module App = Repro_apps.Registry
module B = Repro_dex.Bytecode
module Ctx = Repro_vm.Exec_ctx
module Interp = Repro_vm.Interp
module Cost = Repro_vm.Cost
module Value = Repro_vm.Value
module Binary = Repro_lir.Binary
module Compile = Repro_lir.Compile
module Exec = Repro_lir.Exec
module Capture = Repro_capture.Capture
module Snapshot = Repro_capture.Snapshot
module Replay = Repro_capture.Replay
module Verify = Repro_capture.Verify
module Typeprof = Repro_capture.Typeprof
module Profile = Repro_profiler.Profile
module Regions = Repro_profiler.Regions
module Genome = Repro_search.Genome
module Ga = Repro_search.Ga
module Evalpool = Repro_search.Evalpool
module Rng = Repro_util.Rng
module Stats = Repro_util.Stats
module Storage = Repro_os.Storage
module Trace = Repro_util.Trace
module Faults = Repro_util.Faults

type online = {
  ctx : Ctx.t;
  profile : Profile.t;
  cycles : int;
  ret : Value.t option;
}

let all_mids dx = Array.to_list (Array.map (fun m -> m.B.cm_id) dx.B.dx_methods)

let android_cache : (string, Binary.t) Hashtbl.t = Hashtbl.create 32

let android_binary_for app =
  match Hashtbl.find_opt android_cache app.App.name with
  | Some b -> b
  | None ->
    let dx = App.dexfile app in
    let b = Compile.android_binary dx (all_mids dx) in
    Hashtbl.add android_cache app.App.name b;
    b

let online_run ?(seed = 42) ?binary ?(sample_period = 20_000) app =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "online_run"
  @@ fun () ->
  let ctx = App.build_ctx ~seed app in
  ctx.Ctx.sample_period <- sample_period;
  ctx.Ctx.next_sample <- sample_period;
  (match binary with
   | Some b -> Exec.install ctx b
   | None -> Exec.install ctx (android_binary_for app));
  let ret = Interp.run_main ctx in
  { ctx; profile = Profile.of_ctx ctx; cycles = ctx.Ctx.cycles; ret }

let hot_region_of app online =
  Regions.hot_region (App.dexfile app) online.profile

let region_methods app mid = Regions.compilable_region (App.dexfile app) mid

type captured = {
  snapshot : Snapshot.t;
  overhead : Capture.overhead;
  hot_mid : int;
  online_with_capture : online;
}

let capture_once ?(seed = 42) ?(capture_at = 2) app =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "capture_once"
  @@ fun () ->
  (* a first run finds the hot region; the capture run targets it *)
  let scout = online_run ~seed app in
  match hot_region_of app scout with
  | None -> None
  | Some hot_mid ->
    let ctx = App.build_ctx ~seed app in
    ctx.Ctx.sample_period <- 20_000;
    ctx.Ctx.next_sample <- 20_000;
    let binary = android_binary_for app in
    let base = Exec.dispatcher binary in
    let result = ref None in
    let entries = ref 0 in
    let dispatch ctx' mid args =
      if mid = hot_mid then incr entries;
      if mid = hot_mid && !entries = capture_at && !result = None then begin
        let r =
          Capture.capture_region ~app:app.App.name ctx' ~mid ~args
            ~run:(fun () -> base ctx' mid args)
        in
        result := Some r;
        r.Capture.region_ret
      end
      else base ctx' mid args
    in
    Ctx.set_dispatch ctx dispatch;
    let ret = Interp.run_main ctx in
    (match !result with
     | None -> None
     | Some r ->
       (* spool the captured pages to the device store, when one is
          attached; hashing/dedup happens at the idle-priority drains
          between GA evaluation batches *)
       (match Snapshot.current_store () with
        | Some storage -> Snapshot.store storage r.Capture.snapshot
        | None -> ());
       Some
         { snapshot = r.Capture.snapshot;
           overhead = r.Capture.overhead;
           hot_mid;
           online_with_capture =
             { ctx; profile = Profile.of_ctx ctx; cycles = ctx.Ctx.cycles; ret } })

(* ------------------------- multi-input corpus ------------------------ *)

type corpus_entry = {
  ce_input : App.input;
  ce_snapshot : Snapshot.t;
  ce_reference : Verify.reference;
  ce_typeprof : Typeprof.t;
  ce_overhead : Capture.overhead;
}

type corpus = {
  co_app : App.t;
  co_seed : int;
  co_primary : captured;
  co_entries : corpus_entry list;
}

(* One secondary capture: re-run the app online under the Android binary
   with the variant input poked in, capture the *first* entry into the
   primary's hot region (adversarial inputs may trap before a second
   entry happens), and abort the rest of the online run — variants exist
   only to be replayed, their online completion is not needed.  The
   capture harvests even when the region traps: the forked child's pages
   predate the region. *)
let capture_variant app ~seed ~hot_mid input =
  Trace.span ~cat:"pipeline"
    ~args:[ ("app", app.App.name); ("input", input.App.in_label) ]
    "capture_variant"
  @@ fun () ->
  let exception Captured_stop in
  let ctx = App.build_ctx ~seed ~input app in
  ctx.Ctx.sample_period <- 20_000;
  ctx.Ctx.next_sample <- 20_000;
  let binary = android_binary_for app in
  let base = Exec.dispatcher binary in
  let result = ref None in
  let dispatch ctx' mid args =
    if mid = hot_mid && !result = None then begin
      let r =
        Capture.capture_region ~app:app.App.name ~harvest_on_exn:true ctx' ~mid
          ~args
          ~run:(fun () -> base ctx' mid args)
      in
      result := Some r;
      raise_notrace Captured_stop
    end
    else base ctx' mid args
  in
  Ctx.set_dispatch ctx dispatch;
  (* the variant input may legitimately crash the driver before (or
     after) the region; only a completed capture matters here *)
  (try ignore (Interp.run_main ctx) with Captured_stop | _ -> ());
  match !result with
  | None -> None
  | Some r ->
    (match Snapshot.current_store () with
     | Some storage -> Snapshot.store storage r.Capture.snapshot
     | None -> ());
    let typeprof = Typeprof.create () in
    (match
       Verify.collect_ref
         ~record_vcall:(fun site cid -> Typeprof.record typeprof site cid)
         (App.dexfile app) r.Capture.snapshot
     with
     | reference ->
       Trace.incr "corpus.captures";
       Some
         { ce_input = input;
           ce_snapshot = r.Capture.snapshot;
           ce_reference = reference;
           ce_typeprof = typeprof;
           ce_overhead = r.Capture.overhead }
     | exception Failure _ -> None)

let capture_corpus ?(seed = 42) ~k app =
  Trace.span ~cat:"pipeline"
    ~args:[ ("app", app.App.name); ("k", string_of_int k) ]
    "capture_corpus"
  @@ fun () ->
  match capture_once ~seed app with
  | None -> None
  | Some primary ->
    Trace.incr "corpus.captures";
    let variants =
      match App.input_variants app ~seed ~k with
      | [] -> []
      | _default :: rest -> rest
    in
    let entries =
      List.filter_map
        (capture_variant app ~seed ~hot_mid:primary.hot_mid)
        variants
    in
    Some { co_app = app; co_seed = seed; co_primary = primary;
           co_entries = entries }

(* ----------------------- quarantine accounting ---------------------- *)

(* Record of binaries (and persisted artifacts) discarded as
   untrustworthy.  The verify stage runs on worker domains, so a log is
   mutex-protected.  Logs are per-run values: the serve scheduler gives
   every tenant its own, so one tenant's entries (and resets) can never
   leak into another's report; the process-wide default log keeps the
   one-shot CLI behaviour.  Trace counters mirror the log
   ([verify.quarantined], [verify.retried]) but the log itself is always
   on — the CLI's quarantine report must not require --trace. *)
type quarantine_entry = {
  q_binary : string;
  q_reason : string;
  q_count : int;
}

type quarantine_log = {
  ql_mutex : Mutex.t;
  ql_tbl : (string, string * int) Hashtbl.t;
}

let create_quarantine_log () =
  { ql_mutex = Mutex.create (); ql_tbl = Hashtbl.create 16 }

let global_quarantine = create_quarantine_log ()

let reset_quarantine ?(log = global_quarantine) () =
  Mutex.protect log.ql_mutex (fun () -> Hashtbl.reset log.ql_tbl)

let record_quarantine ?(log = global_quarantine) ~key ~reason () =
  Mutex.protect log.ql_mutex (fun () ->
      match Hashtbl.find_opt log.ql_tbl key with
      | Some (r, n) -> Hashtbl.replace log.ql_tbl key (r, n + 1)
      | None -> Hashtbl.add log.ql_tbl key (reason, 1));
  Trace.incr "verify.quarantined"

let quarantine_summary ?(log = global_quarantine) () =
  Mutex.protect log.ql_mutex (fun () ->
      Hashtbl.fold
        (fun key (reason, n) acc ->
           { q_binary = key; q_reason = reason; q_count = n } :: acc)
        log.ql_tbl [])
  |> List.sort (fun a b -> String.compare a.q_binary b.q_binary)

(* Raw (key, reason, count) view for checkpoint persistence. *)
let quarantine_entries log =
  List.map
    (fun e -> (e.q_binary, e.q_reason, e.q_count))
    (quarantine_summary ~log ())

let restore_quarantine log entries =
  Mutex.protect log.ql_mutex (fun () ->
      List.iter
        (fun (key, reason, count) ->
           Hashtbl.replace log.ql_tbl key (reason, count))
        entries)

type evaluation_env = {
  dx : B.dexfile;
  app : App.t;
  capture : captured;
  vmap : Verify.t;
  typeprof : Typeprof.t;
  region : int list;
  frontend : Compile.frontend;
  corpus : corpus_entry list;
  android_region_ms : float;
  o3_region_ms : float;
  replays_per_eval : int;
  noise_sigma : float;
  measure_seed : int;
  quarantine : quarantine_log;
}

(* Offline replays run on an idle device with pinned frequency (§4): the
   remaining noise is small and multiplicative. *)
let default_noise_sigma = 0.012

let synth_times rng ~replays ~sigma cycles cost =
  let ms = float_of_int cycles /. float_of_int cost.Cost.cycles_per_ms in
  Array.init replays (fun _ -> ms *. Rng.lognormal rng ~mu:0.0 ~sigma)

(* Every measurement draws its noise from a stream derived from
   [(measure_seed, ev_index)] alone, so measured times depend only on the
   evaluation's identity — not on worker count, batching, or cache state.
   Negative indices are reserved for the fixed baseline measurements. *)
let android_noise_index = -1
let o3_noise_index = -2
let replay_ms_noise_index = -3

let noise_times env ~ev_index cycles =
  let rng = Rng.of_pair env.measure_seed ev_index in
  synth_times rng ~replays:env.replays_per_eval ~sigma:env.noise_sigma cycles
    Cost.default

let region_binary_android env =
  let b = android_binary_for env.app in
  Binary.create (List.filter_map (Binary.find b) env.region)

let replay_cycles_of_binary dx snap vmap binary =
  match Verify.check dx snap vmap binary with
  | Verify.Passed cycles -> Some cycles
  | Verify.Wrong_output | Verify.Crashed _ | Verify.Hung -> None

let make_eval_env ?(seed = 1234) ?(replays = 10) ?(corpus = [])
    ?(quarantine = global_quarantine) app capture =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "make_eval_env"
  @@ fun () ->
  let dx = App.dexfile app in
  let typeprof = Typeprof.create () in
  let snap = capture.snapshot in
  (* interpreted replay: verification map + dispatch-type profile (§3.4) *)
  let r =
    Replay.run dx snap Replay.Interpreter
      ~record_vcall:(fun site cid -> Typeprof.record typeprof site cid)
  in
  let vmap =
    match r.Replay.outcome with
    | Replay.Finished (ret, _) ->
      { Verify.writes = Verify.diff_against_snapshot r.Replay.ctx snap; ret }
    | Replay.Crashed msg -> failwith ("interpreted replay crashed: " ^ msg)
    | Replay.Hung -> failwith "interpreted replay hung"
  in
  let region = Regions.compilable_region dx capture.hot_mid in
  (* The genome-independent front-end, hoisted: one template per (app,
     capture, profile), content-keyed so independent environments with the
     same profile share stage-cache entries, and prewarmed over the region
     so search-time lookups are read-mostly. *)
  let frontend =
    Compile.frontend ~profile:(Typeprof.lookup typeprof) ~prewarm:region
      ~key:(Printf.sprintf "app=%s;typeprof=%s" app.App.name
              (Typeprof.digest typeprof))
      dx
  in
  let env0 =
    { dx; app; capture; vmap; typeprof; region; frontend; corpus;
      android_region_ms = nan; o3_region_ms = nan;
      replays_per_eval = replays; noise_sigma = default_noise_sigma;
      measure_seed = seed; quarantine }
  in
  let ms_of_binary ~noise_index binary =
    match replay_cycles_of_binary dx snap vmap binary with
    | Some cycles ->
      Stats.mean
        (Stats.remove_outliers_mad
           (noise_times env0 ~ev_index:noise_index cycles))
    | None -> nan
  in
  let android_ms =
    ms_of_binary ~noise_index:android_noise_index (region_binary_android env0)
  in
  let o3 =
    match Compile.llvm_binary_staged frontend Repro_lir.Pipelines.o3 region with
    | b -> ms_of_binary ~noise_index:o3_noise_index b
    | exception (Compile.Compile_error _ | Compile.Compile_timeout) -> nan
  in
  { env0 with android_region_ms = android_ms; o3_region_ms = o3 }

(* Delegates to the binary's memoized content digest: the same key now
   identifies a binary in the Evalpool memo and in the block-plan cache, so
   their hit counts can be cross-checked. *)
let binary_key = Binary.digest

(* The deterministic part of one evaluation: everything except the
   synthesized measurement noise.  This is what Evalpool memoizes — two
   genomes (or two cache states) producing the same core always yield the
   same final outcome once [outcome_of_core] re-synthesizes the times from
   the evaluation index. *)
type eval_core =
  | Core_measured of { cycles : int; size : int; key : string }
  | Core_compile_failed of string
  | Core_compile_timeout
  | Core_crashed of string
  | Core_hung
  | Core_wrong_output
  | Core_quarantined of string

let compile_core env genome =
  match
    Compile.llvm_binary_staged env.frontend (Genome.to_spec genome) env.region
  with
  | binary -> Ok binary
  | exception Compile.Compile_error msg -> Error (Core_compile_failed msg)
  | exception Compile.Compile_timeout -> Error Core_compile_timeout

let reason_of_check = function
  | Verify.Passed _ -> "passed"
  | Verify.Wrong_output -> "wrong output"
  | Verify.Crashed msg -> "crashed: " ^ msg
  | Verify.Hung -> "hung"

(* One full verification pass: the primary capture first (its cycles are
   the fitness measurement), then every corpus entry in corpus order with
   a first-failure short-circuit.  [site] keys the fault scopes when
   fault injection is armed: the primary keeps the historical key and
   entry [i] gets [combine site i], so every corpus check's fault
   decisions stay a pure function of (seed, binary, attempt, entry) —
   independent of worker count and evaluation order. *)
let check_corpus env ?site binary =
  let fkey i =
    match site with
    | None -> None
    | Some s -> Some (if i = 0 then s else Faults.combine s i)
  in
  match
    Verify.check ?faults_key:(fkey 0) env.dx env.capture.snapshot env.vmap
      binary
  with
  | Verify.Passed cycles ->
    let rec loop i = function
      | [] -> Verify.Passed cycles
      | ce :: rest ->
        Trace.incr "verify.corpus_checks";
        (match
           Verify.check_ref ?faults_key:(fkey i) env.dx ce.ce_snapshot
             ce.ce_reference binary
         with
         | Verify.Passed _ -> loop (i + 1) rest
         | bad ->
           Trace.incr "verify.corpus_kills";
           bad)
    in
    loop 1 env.corpus
  | bad -> bad

let verify_core env binary =
  let measured cycles =
    Core_measured
      { cycles; size = binary.Binary.size; key = binary_key binary }
  in
  if not (Faults.active ()) then
    (* Fault injection off (the normal pipeline): single attempt, and a
       failed verification keeps its precise verdict. *)
    match check_corpus env binary with
    | Verify.Passed cycles -> measured cycles
    | Verify.Wrong_output -> Core_wrong_output
    | Verify.Crashed msg -> Core_crashed msg
    | Verify.Hung -> Core_hung
  else begin
    (* Fault injection on: the candidate replay runs inside a fault scope
       keyed by (binary, attempt).  A first failure is retried once under
       attempt 1 — transient replay/loader/executor faults are keyed by the
       scope and (almost surely) don't re-fire, while a deterministic
       miscompile (the fault is in the binary) fails again and the binary
       is quarantined.  All decisions are pure functions of the fault seed
       and the binary, so results stay byte-identical across -jN/cache. *)
    let key = binary_key binary in
    let site attempt = Faults.combine (Faults.hash_string key) attempt in
    match check_corpus env ~site:(site 0) binary with
    | Verify.Passed cycles -> measured cycles
    | first ->
      Trace.incr "verify.retried";
      (match check_corpus env ~site:(site 1) binary with
       | Verify.Passed cycles -> measured cycles   (* transient fault *)
       | second ->
         let reason =
           Printf.sprintf "%s; retry: %s" (reason_of_check first)
             (reason_of_check second)
         in
         record_quarantine ~log:env.quarantine ~key ~reason ();
         Core_quarantined reason)
  end

let outcome_of_core env ~ev_index core =
  match core with
  | Core_measured { cycles; size; key } ->
    Ga.Measured { times = noise_times env ~ev_index cycles; size; key }
  | Core_compile_failed msg -> Ga.Compile_failed msg
  | Core_compile_timeout -> Ga.Compile_failed "compile timeout"
  | Core_crashed msg -> Ga.Runtime_crashed msg
  | Core_hung -> Ga.Runtime_hung
  | Core_wrong_output -> Ga.Wrong_output
  | Core_quarantined msg -> Ga.Quarantined msg

let make_pool ?jobs ?cache ?memo_budget ?pool env =
  Evalpool.create ?jobs ?cache ?memo_budget ?pool ~canon:Genome.canon
    ~compile:(compile_core env) ~key_of:binary_key ~verify:(verify_core env)
    ~finish:(fun ~ev_index core -> outcome_of_core env ~ev_index core)
    ()

(* Same pool, but [finish] returns the raw deterministic core instead of a
   noised GA outcome: the fleet coordinator synthesizes per-device times
   itself (each device re-seeds noise from its own profile), so it needs
   the core before noise is applied. *)
let make_core_pool ?jobs ?cache ?memo_budget ?pool env =
  Evalpool.create ?jobs ?cache ?memo_budget ?pool ~canon:Genome.canon
    ~compile:(compile_core env) ~key_of:binary_key ~verify:(verify_core env)
    ~finish:(fun ~ev_index:_ core -> core)
    ()

let evaluate_genome ?(ev_index = 0) env genome =
  let core =
    match compile_core env genome with
    | Ok binary -> verify_core env binary
    | Error core -> core
  in
  outcome_of_core env ~ev_index core

let replay_ms env binary =
  match replay_cycles_of_binary env.dx env.capture.snapshot env.vmap binary with
  | Some cycles ->
    Some
      (Stats.mean
         (Stats.remove_outliers_mad
            (noise_times env ~ev_index:replay_ms_noise_index cycles)))
  | None -> None

type optimized = {
  env : evaluation_env;
  ga : Ga.result;
  best_genome : Genome.t option;
  best_fitness : float option;
  best_binary : Binary.t option;
  pool_stats : Evalpool.stats;
}

(* Digest over everything the search decided: the GA history (already
   byte-rendered by [Ga.history_digest]) plus the hill-climb's final
   winner, which the GA history does not cover.  This is the value the
   kill/resume contract asserts byte-identical across restarts. *)
let search_digest opt =
  let best_txt =
    match opt.best_genome with None -> "-" | Some g -> Genome.to_text g
  in
  let fit_txt =
    match opt.best_fitness with
    | None -> "-"
    | Some f -> Printf.sprintf "%Lx" (Int64.bits_of_float f)
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\n" [ Ga.history_digest opt.ga; best_txt; fit_txt ]))

let compile_genome env genome =
  match
    Compile.llvm_binary_staged env.frontend (Genome.to_spec genome) env.region
  with
  | b -> Some b
  | exception (Compile.Compile_error _ | Compile.Compile_timeout) -> None

(* Idle-priority spooler model (paper §3.2): the device hashes and stores
   captured pages while the search is otherwise idle — in the gaps between
   GA evaluation batches.  A bounded chunk per gap keeps the model honest
   (the spool drains over time, not instantly); results cannot depend on
   it, because the store's contents are a pure function of what was
   captured — never of when the drain ran. *)
let idle_drain_chunk = 256

let idle_drain () =
  match Snapshot.current_store () with
  | None -> ()
  | Some storage -> ignore (Storage.drain ~max_pages:idle_drain_chunk storage)

(* ---------------------- checkpointed search driver ------------------- *)

let ckpt_of_core = function
  | Core_measured { cycles; size; key } ->
    Checkpoint.C_measured { cycles; size; key }
  | Core_compile_failed m -> Checkpoint.C_compile_failed m
  | Core_compile_timeout -> Checkpoint.C_compile_timeout
  | Core_crashed m -> Checkpoint.C_crashed m
  | Core_hung -> Checkpoint.C_hung
  | Core_wrong_output -> Checkpoint.C_wrong_output
  | Core_quarantined m -> Checkpoint.C_quarantined m

let core_of_ckpt = function
  | Checkpoint.C_measured { cycles; size; key } ->
    Core_measured { cycles; size; key }
  | Checkpoint.C_compile_failed m -> Core_compile_failed m
  | Checkpoint.C_compile_timeout -> Core_compile_timeout
  | Checkpoint.C_crashed m -> Core_crashed m
  | Checkpoint.C_hung -> Core_hung
  | Checkpoint.C_wrong_output -> Core_wrong_output
  | Checkpoint.C_quarantined m -> Core_quarantined m

let config_fingerprint (cfg : Ga.config) =
  Printf.sprintf
    "pop=%d;gens=%d;seedr=%d;gmut=%h;pmut=%h;tsz=%d;tp=%h;maxid=%d;noimp=%d;\
     elites=%d;alpha=%h"
    cfg.Ga.population cfg.Ga.generations cfg.Ga.seed_retries
    cfg.Ga.genome_mutation_prob cfg.Ga.gene_mutation_prob
    cfg.Ga.tournament_size cfg.Ga.tournament_p cfg.Ga.max_identical
    cfg.Ga.no_improve_generations cfg.Ga.elites cfg.Ga.size_tiebreak_alpha

(* Identity of a run configuration.  Everything the recorded evaluation
   sequence depends on is covered; [jobs]/[cache]/[memo_budget] are
   deliberately {e not} — the determinism contract makes them
   result-invariant, so a checkpoint taken at [-j4] resumes fine at
   [-j1 --no-cache] and vice versa. *)
let run_fingerprint ~app ~seed ~cfg ~corpus ~seed_genomes ~replays =
  let corpus_txt =
    String.concat ","
      (List.map (fun ce -> ce.ce_input.App.in_label) corpus)
  in
  let seeds_txt =
    Digest.to_hex
      (Digest.string
         (String.concat "\n" (List.map Genome.to_text seed_genomes)))
  in
  Printf.sprintf "ckpt-v1;app=%s;seed=%d;replays=%d;%s;corpus=%s;seeds=%s"
    app.App.name seed replays (config_fingerprint cfg) corpus_txt seeds_txt

type search_session = {
  ss_env : evaluation_env;
  ss_file : string option;
  ss_fingerprint : string;
  ss_abort_after : int option;
  ss_mk_pool : unit -> (Binary.t, eval_core, eval_core) Evalpool.t;
  ss_pool : (Binary.t, eval_core, eval_core) Evalpool.t ref;
  ss_mk_search : unit -> Rng.t * optimized Ga.step;
  mutable ss_rng : Rng.t;
  mutable ss_step : optimized Ga.step;
  mutable ss_journal : Checkpoint.batch list;       (* left to replay *)
  mutable ss_recorded_rev : Checkpoint.batch list;  (* completed, newest first *)
  mutable ss_live : int;
  mutable ss_replayed : int;
  mutable ss_warnings : string list;
  mutable ss_result : optimized option;
}

type step_outcome = [ `Live | `Replayed | `Finished of optimized ]

let session_warnings s = List.rev s.ss_warnings
let session_live_batches s = s.ss_live
let session_replayed_batches s = s.ss_replayed
let session_result s = s.ss_result
let session_env s = s.ss_env

(* Seed the pool's memos with everything the journal already knows: a
   resumed run's live batches then hit the genome/binary memos exactly as
   the uninterrupted run's would have — the persisted-memo half of the
   checkpoint (a no-op under --no-cache). *)
let seed_pool_from_journal pool batches =
  let genomes = ref [] and keys = ref [] in
  List.iter
    (fun b ->
       List.iter
         (fun tk ->
            let core = core_of_ckpt tk.Checkpoint.t_core in
            genomes := (tk.Checkpoint.t_canon, core) :: !genomes;
            match core with
            | Core_measured { key; _ } -> keys := (key, core) :: !keys
            | _ -> ())
         b.Checkpoint.b_tasks)
    batches;
  Evalpool.seed_caches pool ~genomes:!genomes ~keys:!keys

let start_search ?(seed = 99) ?(cfg = Ga.quick_config) ?jobs ?cache
    ?memo_budget ?pool ?(corpus = []) ?(seed_genomes = []) ?quarantine
    ?checkpoint ?abort_after app capture =
  let qlog =
    match quarantine with Some q -> q | None -> global_quarantine
  in
  let env = make_eval_env ~seed:(seed + 1) ~corpus ~quarantine:qlog app capture in
  let mk_pool () = make_core_pool ?jobs ?cache ?memo_budget ?pool env in
  let the_pool = ref (mk_pool ()) in
  let fingerprint =
    run_fingerprint ~app ~seed ~cfg ~corpus ~seed_genomes ~replays:10
  in
  let mk_search () =
    let rng = Rng.create seed in
    let body ~evaluate_batch =
      let ga =
        Ga.run ~seed_genomes rng cfg ~evaluate_batch
          ?baseline_ms:
            (if Float.is_nan env.android_region_ms then None
             else Some env.android_region_ms)
          ?o3_ms:
            (if Float.is_nan env.o3_region_ms then None
             else Some env.o3_region_ms)
          ()
      in
      let best =
        match ga.Ga.best with
        | None -> None
        | Some (genome, fit) ->
          Some
            (Ga.hill_climb_batch ~ev_base:ga.Ga.evaluations rng
               ~evaluate_batch (genome, fit)
               ~rounds:2)
      in
      let best_genome = Option.map fst best in
      let best_binary = Option.bind best_genome (compile_genome env) in
      { env; ga; best_genome; best_fitness = Option.map snd best;
        best_binary; pool_stats = Evalpool.stats !the_pool }
    in
    (rng, Ga.coop body)
  in
  let journal, warnings =
    match checkpoint with
    | None -> ([], [])
    | Some file ->
      let cold why =
        record_quarantine ~log:qlog ~key:("checkpoint:" ^ file) ~reason:why ();
        ( [],
          [ Printf.sprintf "checkpoint %s: %s (starting cold)" file why ] )
      in
      (match Checkpoint.load file with
       | `Absent -> ([], [])
       | `Damaged why -> cold why
       | `Loaded (t, store_warnings) ->
         if t.Checkpoint.fingerprint <> fingerprint then
           cold "run configuration mismatch"
         else begin
           restore_quarantine qlog t.Checkpoint.quarantine;
           seed_pool_from_journal !the_pool t.Checkpoint.batches;
           Trace.add "ckpt.batches_resumed"
             (List.length t.Checkpoint.batches);
           ( t.Checkpoint.batches,
             List.map
               (fun w -> Printf.sprintf "checkpoint %s: %s" file w)
               store_warnings )
         end)
  in
  let rng, step = mk_search () in
  { ss_env = env; ss_file = checkpoint; ss_fingerprint = fingerprint;
    ss_abort_after = abort_after; ss_mk_pool = mk_pool; ss_pool = the_pool;
    ss_mk_search = mk_search; ss_rng = rng; ss_step = step;
    ss_journal = journal; ss_recorded_rev = []; ss_live = 0;
    ss_replayed = 0; ss_warnings = List.rev warnings; ss_result = None }

let save_checkpoint s =
  match s.ss_file with
  | None -> ()
  | Some file ->
    Checkpoint.save
      { Checkpoint.fingerprint = s.ss_fingerprint;
        batches = List.rev s.ss_recorded_rev;
        quarantine = quarantine_entries s.ss_env.quarantine }
      file

(* The journal diverged from what the configured search asked for (same
   fingerprint but different draws — a damaged-but-parseable journal, or a
   code/configuration skew the fingerprint missed).  Nothing derived from
   it can be trusted: warn, quarantine the file, and redo the whole search
   live from scratch on a fresh pool. *)
let cold_restart s why =
  Trace.incr "ckpt.cold_restarts";
  (match s.ss_file with
   | Some file ->
     record_quarantine ~log:s.ss_env.quarantine
       ~key:("checkpoint:" ^ file) ~reason:why ();
     s.ss_warnings <-
       Printf.sprintf "checkpoint %s: %s (restarting cold)" file why
       :: s.ss_warnings
   | None ->
     s.ss_warnings <-
       Printf.sprintf "checkpoint: %s (restarting cold)" why
       :: s.ss_warnings);
  s.ss_journal <- [];
  s.ss_recorded_rev <- [];
  s.ss_live <- 0;
  s.ss_replayed <- 0;
  s.ss_pool := s.ss_mk_pool ();
  let rng, step = s.ss_mk_search () in
  s.ss_rng <- rng;
  s.ss_step <- step

let batch_matches b ~cursor tasks =
  b.Checkpoint.b_cursor = cursor
  && List.length b.Checkpoint.b_tasks = Array.length tasks
  && List.for_all2
       (fun tk (ev_index, genome) ->
          tk.Checkpoint.t_ev_index = ev_index
          && tk.Checkpoint.t_canon = Genome.canon genome)
       b.Checkpoint.b_tasks
       (Array.to_list tasks)

let rec search_step s : step_outcome =
  match s.ss_step with
  | Ga.Step_done r ->
    s.ss_result <- Some r;
    `Finished r
  | Ga.Step_eval (tasks, resume) ->
    let cursor = Rng.cursor s.ss_rng in
    (match s.ss_journal with
     | b :: rest when batch_matches b ~cursor tasks ->
       s.ss_journal <- rest;
       s.ss_recorded_rev <- b :: s.ss_recorded_rev;
       s.ss_replayed <- s.ss_replayed + 1;
       Trace.incr "ckpt.batches_replayed";
       let outcomes =
         Array.of_list
           (List.map
              (fun tk ->
                 outcome_of_core s.ss_env ~ev_index:tk.Checkpoint.t_ev_index
                   (core_of_ckpt tk.Checkpoint.t_core))
              b.Checkpoint.b_tasks)
       in
       s.ss_step <- resume outcomes;
       `Replayed
     | _ :: _ ->
       cold_restart s "journal diverged from the configured search";
       search_step s
     | [] ->
       let cores = Evalpool.evaluate_batch !(s.ss_pool) tasks in
       idle_drain ();
       let recorded =
         { Checkpoint.b_cursor = cursor;
           b_tasks =
             Array.to_list
               (Array.mapi
                  (fun i core ->
                     let ev_index, genome = tasks.(i) in
                     { Checkpoint.t_ev_index = ev_index;
                       t_canon = Genome.canon genome;
                       t_core = ckpt_of_core core })
                  cores) }
       in
       s.ss_recorded_rev <- recorded :: s.ss_recorded_rev;
       s.ss_live <- s.ss_live + 1;
       save_checkpoint s;
       (match s.ss_abort_after with
        | Some n when s.ss_live >= n -> raise Checkpoint.Injected_abort
        | _ -> ());
       let outcomes =
         Array.mapi
           (fun i core ->
              outcome_of_core s.ss_env ~ev_index:(fst tasks.(i)) core)
           cores
       in
       s.ss_step <- resume outcomes;
       `Live)

let optimize ?seed ?cfg ?jobs ?cache ?memo_budget ?pool ?(corpus = [])
    ?seed_genomes ?quarantine ?checkpoint ?abort_after app capture =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "optimize"
  @@ fun () ->
  let s =
    start_search ?seed ?cfg ?jobs ?cache ?memo_budget ?pool ~corpus
      ?seed_genomes ?quarantine ?checkpoint ?abort_after app capture
  in
  let rec go () =
    match search_step s with
    | `Finished r -> r
    | `Live | `Replayed -> go ()
  in
  go ()

let overlay base overlay_binary =
  let funcs =
    List.filter_map (Binary.find base) (Binary.mids base)
  in
  let combined = Binary.create funcs in
  List.iter
    (fun mid ->
       match Binary.find overlay_binary mid with
       | Some f -> Hashtbl.replace combined.Binary.funcs mid f
       | None -> ())
    (Binary.mids overlay_binary);
  Binary.recompute_size combined;
  combined

let final_binary opt =
  let base = android_binary_for opt.env.app in
  match opt.best_binary with
  | Some b -> overlay base b
  | None -> base

let o3_binary env =
  let base = android_binary_for env.app in
  match
    Compile.llvm_binary_staged env.frontend Repro_lir.Pipelines.o3 env.region
  with
  | b -> overlay base b
  | exception (Compile.Compile_error _ | Compile.Compile_timeout) -> base

type speedups = {
  android_cycles : float;
  o3_cycles : float;
  ga_cycles : float;
  o3_speedup : float;
  ga_speedup : float;
}

let measure_speedups ?(runs = 5) app opt =
  Trace.span ~cat:"pipeline" ~args:[ ("app", app.App.name) ] "measure_speedups"
  @@ fun () ->
  let android = android_binary_for app in
  let o3 = o3_binary opt.env in
  let ga = final_binary opt in
  let mean_cycles binary =
    let samples =
      Array.init runs (fun i ->
          float_of_int (online_run ~seed:(1000 + i) ~binary app).cycles)
    in
    Stats.mean samples
  in
  let android_cycles = mean_cycles android in
  let o3_cycles = mean_cycles o3 in
  let ga_cycles = mean_cycles ga in
  { android_cycles; o3_cycles; ga_cycles;
    o3_speedup = android_cycles /. o3_cycles;
    ga_speedup = android_cycles /. ga_cycles }
