(** The cycle cost model: the reproduction's stand-in for the Snapdragon 855.

    Both the interpreter and the LIR executor charge cycles from this table,
    so the relative performance of code versions emerges from the
    instructions actually executed.  Latencies are loosely calibrated to a
    big out-of-order ARM core; the absolute values matter less than the
    ratios (memory vs ALU, call overhead vs body, JNI transition cost). *)

type model = {
  int_alu : int;          (** add/sub/logic/compare *)
  int_mul : int;
  int_div : int;
  float_alu : int;
  float_mul : int;
  float_div : int;
  float_conv : int;       (** int<->float conversion *)
  move : int;
  const : int;
  load : int;             (** L1-hit memory load *)
  store : int;
  branch : int;           (** correctly predicted branch *)
  branch_miss : int;      (** misprediction penalty *)
  null_check : int;
  bounds_check : int;
  safepoint : int;        (** GC suspend-check runtime call: load, test, predicted branch *)
  alloc_base : int;
  alloc_per_word : int;
  call_overhead : int;    (** frame setup + argument moves *)
  virtual_extra : int;    (** receiver class load + vtable load + indirect jump *)
  intrinsic_call : int;   (** inlined intrinsic dispatch cost *)
  jni_call : int;         (** JNI transition overhead, both directions *)
  throw_cost : int;
  interp_dispatch : int;  (** interpreter per-bytecode decode overhead *)
  gc_pause_base : int;
  gc_words_divisor : int; (** pause += resident words / divisor *)
  gc_threshold_words : int;
  cycles_per_ms : int;    (** model cycles per simulated millisecond *)
}

val default : model

val equal : model -> model -> bool
(** Structural field-by-field equality — the typed comparator used by
    cost-keyed caches (e.g. the block-plan cache). *)

val native_work : Repro_dex.Bytecode.native -> int
(** Cycles for the computational core of a native (excluding call overhead):
    e.g. sqrt ~ 20, sin/cos ~ 40. *)
