module B = Repro_dex.Bytecode

type model = {
  int_alu : int;
  int_mul : int;
  int_div : int;
  float_alu : int;
  float_mul : int;
  float_div : int;
  float_conv : int;
  move : int;
  const : int;
  load : int;
  store : int;
  branch : int;
  branch_miss : int;
  null_check : int;
  bounds_check : int;
  safepoint : int;
  alloc_base : int;
  alloc_per_word : int;
  call_overhead : int;
  virtual_extra : int;
  intrinsic_call : int;
  jni_call : int;
  throw_cost : int;
  interp_dispatch : int;
  gc_pause_base : int;
  gc_words_divisor : int;
  gc_threshold_words : int;
  cycles_per_ms : int;
}

let default = {
  int_alu = 1;
  int_mul = 3;
  int_div = 12;
  float_alu = 3;
  float_mul = 4;
  float_div = 15;
  float_conv = 3;
  move = 1;
  const = 1;
  load = 4;
  store = 3;
  branch = 1;
  branch_miss = 14;
  null_check = 1;
  bounds_check = 2;
  safepoint = 14;
  alloc_base = 40;
  alloc_per_word = 1;
  call_overhead = 18;
  virtual_extra = 14;
  intrinsic_call = 3;
  jni_call = 90;
  throw_cost = 250;
  interp_dispatch = 14;
  gc_pause_base = 3000;
  gc_words_divisor = 4;
  gc_threshold_words = 48 * 1024;
  cycles_per_ms = 200_000;
}

(* Field-by-field equality (the record is all ints, so this is total and
   deterministic); destructuring [a] makes adding a field a compile error
   here rather than a silently incomplete comparison. *)
let equal (a : model) (b : model) =
  let { int_alu; int_mul; int_div; float_alu; float_mul; float_div;
        float_conv; move; const; load; store; branch; branch_miss;
        null_check; bounds_check; safepoint; alloc_base; alloc_per_word;
        call_overhead; virtual_extra; intrinsic_call; jni_call; throw_cost;
        interp_dispatch; gc_pause_base; gc_words_divisor; gc_threshold_words;
        cycles_per_ms } = a
  in
  int_alu = b.int_alu && int_mul = b.int_mul && int_div = b.int_div
  && float_alu = b.float_alu && float_mul = b.float_mul
  && float_div = b.float_div && float_conv = b.float_conv && move = b.move
  && const = b.const && load = b.load && store = b.store && branch = b.branch
  && branch_miss = b.branch_miss && null_check = b.null_check
  && bounds_check = b.bounds_check && safepoint = b.safepoint
  && alloc_base = b.alloc_base && alloc_per_word = b.alloc_per_word
  && call_overhead = b.call_overhead && virtual_extra = b.virtual_extra
  && intrinsic_call = b.intrinsic_call && jni_call = b.jni_call
  && throw_cost = b.throw_cost && interp_dispatch = b.interp_dispatch
  && gc_pause_base = b.gc_pause_base && gc_words_divisor = b.gc_words_divisor
  && gc_threshold_words = b.gc_threshold_words
  && cycles_per_ms = b.cycles_per_ms

let native_work = function
  | B.Nsqrt -> 18
  | B.Nsin | B.Ncos -> 40
  | B.Nexp | B.Nlog -> 35
  | B.Npow -> 55
  | B.Nfloor -> 4
  | B.Nabs_f | B.Nabs_i -> 2
  | B.Nmin_i | B.Nmax_i | B.Nmin_f | B.Nmax_f -> 2
  | B.Nprint_i | B.Nprint_f -> 400
  | B.Ndraw -> 900
  | B.Nrand -> 25
  | B.Nclock -> 30
