(* The compiler IR: a CFG of basic blocks over unbounded virtual registers.

   The same datatype hosts two dialects, mirroring the paper's two IRs:

   - the *composite* dialect is what the HGraph builder produces from dex
     bytecode: array/field accesses carry their null/bounds checks
     implicitly and Div/Rem check for zero, exactly as the Android compiler
     sees them.  The conservative Android optimizations (lib/hgraph/android)
     work at this level.

   - the *decomposed* dialect is what the HGraph-to-LLVM translation
     (lib/lir/translate) produces: checks become explicit Guard*
     instructions and accesses become raw loads/stores.  The LLVM-style
     optimization space (lib/lir/passes) works at this level, where guards
     can be moved, de-duplicated or (unsoundly) dropped. *)

module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast

type reg = int
type bid = int

type hint = Predict_taken | Predict_not_taken | Predict_none

type native_mode = Jni | Intrinsic

type site = int * int

type instr =
  | Const of reg * B.const
  | Move of reg * reg
  | Binop of Ast.binop * reg * reg * reg   (* composite: Div/Rem zero-checked *)
  | Fma of reg * reg * reg * reg
  (* d = a*b + c with a single rounding; produced only by fast-math
     contraction, hence value-changing vs the separate mul+add *)
  | Select of reg * reg * reg * reg
  (* d = cond ? a : b, where cond holds a bool; branch-free conditional
     move, produced by if-conversion *)
  | Unop of Ast.unop * reg * reg
  | I2f of reg * reg
  | F2i of reg * reg
  | NewObj of reg * int
  | NewArr of reg * B.elem_kind * reg
  (* composite dialect: implicit checks *)
  | ALoadC of B.elem_kind * reg * reg * reg       (* dst, arr, idx *)
  | AStoreC of B.elem_kind * reg * reg * reg      (* arr, idx, src *)
  | ArrLenC of reg * reg
  | IGetC of B.elem_kind * reg * reg * int        (* dst, obj, off *)
  | IPutC of B.elem_kind * reg * reg * int        (* obj, src, off *)
  (* decomposed dialect: explicit guards, raw accesses *)
  | GuardNull of reg
  | GuardBounds of reg * reg                      (* idx, len *)
  | GuardDivZero of reg
  | LoadElem of B.elem_kind * reg * reg * reg
  | StoreElem of B.elem_kind * reg * reg * reg
  | LoadLen of reg * reg
  | LoadField of B.elem_kind * reg * reg * int
  | StoreField of B.elem_kind * reg * reg * int
  | LoadClass of reg * reg                        (* dst = class id of obj *)
  (* both dialects *)
  | SGet of B.elem_kind * reg * int
  | SPut of B.elem_kind * int * reg
  | CallStatic of reg option * int * reg list
  | CallVirtual of reg option * int * reg list * site
  (* vtable slot; receiver first; site = (defining method id, bytecode pc),
     the key used by dispatch-type profiles for devirtualization *)
  | CallNative of reg option * B.native * reg list * native_mode
  | SuspendCheck

type term =
  | Goto of bid
  | If of B.cond * reg * reg option * bid * bid * hint
  (* [None] second operand compares against the typed zero *)
  | Ret of reg option
  | ThrowT of reg

type block = {
  mutable insns : instr list;
  mutable term : term;
}

type func = {
  f_mid : int;
  f_name : string;
  f_nparams : int;
  mutable f_nregs : int;
  f_blocks : (bid, block) Hashtbl.t;
  mutable f_entry : bid;
  mutable f_next_bid : bid;
  mutable f_pressure : int option;
  (* cached register-pressure estimate (max live across block boundaries),
     filled in by [Binary.create] before the binary can cross domains;
     invalidated by [copy] *)
}

(* ------------------------------------------------------------------ *)
(* Construction helpers                                                *)
(* ------------------------------------------------------------------ *)

let fresh_reg f =
  let r = f.f_nregs in
  f.f_nregs <- r + 1;
  r

let add_block f insns term =
  let bid = f.f_next_bid in
  f.f_next_bid <- bid + 1;
  Hashtbl.replace f.f_blocks bid { insns; term };
  bid

let block f bid =
  match Hashtbl.find_opt f.f_blocks bid with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Hir.block: no block %d in %s" bid f.f_name)

let succs_of_term = function
  | Goto b -> [ b ]
  | If (_, _, _, t, e, _) -> [ t; e ]
  | Ret _ | ThrowT _ -> []

let cfg f =
  Repro_util.Cfg.analyze ~entry:f.f_entry
    ~succs:(fun bid -> succs_of_term (block f bid).term)

(* ------------------------------------------------------------------ *)
(* Instruction properties                                              *)
(* ------------------------------------------------------------------ *)

let def_of = function
  | Const (d, _) | Move (d, _) | Binop (_, d, _, _) | Fma (d, _, _, _)
  | Select (d, _, _, _) | Unop (_, d, _)
  | I2f (d, _) | F2i (d, _) | NewObj (d, _) | NewArr (d, _, _)
  | ALoadC (_, d, _, _) | ArrLenC (d, _) | IGetC (_, d, _, _)
  | LoadElem (_, d, _, _) | LoadLen (d, _) | LoadField (_, d, _, _)
  | LoadClass (d, _) | SGet (_, d, _) -> Some d
  | CallStatic (ret, _, _) | CallVirtual (ret, _, _, _)
  | CallNative (ret, _, _, _) -> ret
  | AStoreC _ | IPutC _ | GuardNull _ | GuardBounds _ | GuardDivZero _
  | StoreElem _ | StoreField _ | SPut _ | SuspendCheck -> None

let uses_of = function
  | Const _ | SuspendCheck -> []
  | Move (_, s) | Unop (_, _, s) | I2f (_, s) | F2i (_, s) | NewArr (_, _, s)
  | ArrLenC (_, s) | IGetC (_, _, s, _) | LoadLen (_, s)
  | LoadField (_, _, s, _) | LoadClass (_, s) | GuardNull s | GuardDivZero s
  | SPut (_, _, s) -> [ s ]
  | Binop (_, _, a, b) | ALoadC (_, _, a, b) | GuardBounds (a, b)
  | LoadElem (_, _, a, b) -> [ a; b ]
  | Fma (_, a, b, c) | Select (_, a, b, c) -> [ a; b; c ]
  | AStoreC (_, a, b, c) | StoreElem (_, a, b, c) -> [ a; b; c ]
  | IPutC (_, o, s, _) | StoreField (_, o, s, _) -> [ o; s ]
  | NewObj _ | SGet _ -> []
  | CallStatic (_, _, args) -> args
  | CallVirtual (_, _, args, _) -> args
  | CallNative (_, _, args, _) -> args

let uses_of_term = function
  | Goto _ -> []
  | If (_, a, Some b, _, _, _) -> [ a; b ]
  | If (_, a, None, _, _, _) -> [ a ]
  | Ret (Some r) -> [ r ]
  | Ret None -> []
  | ThrowT r -> [ r ]

(* Pure = no side effect, no exception, no memory dependence: safe to
   remove if dead and to reuse under value numbering. *)
let is_pure = function
  | Const _ | Move _ | Unop _ | I2f _ | F2i _ -> true
  | Binop ((Ast.Div | Ast.Rem), _, _, _) -> false  (* composite zero check *)
  | Binop _ | Fma _ | Select _ -> true
  | LoadLen _ | LoadClass _ -> true
  (* array length and class id are immutable once allocated, but the raw
     loads still require a valid pointer; treat as pure for CSE yet keep
     them ordered after their guard via the guard's own effect. *)
  | NewObj _ | NewArr _ | ALoadC _ | AStoreC _ | ArrLenC _ | IGetC _ | IPutC _
  | GuardNull _ | GuardBounds _ | GuardDivZero _ | LoadElem _ | StoreElem _
  | LoadField _ | StoreField _ | SGet _ | SPut _ | CallStatic _ | CallVirtual _
  | CallNative _ | SuspendCheck -> false

(* Does executing this instruction potentially raise or have effects beyond
   writing its destination register?  (Memory reads are handled separately.) *)
let has_side_effect i = not (is_pure i)

(* May this instruction write to memory or transfer control (invalidating
   memory-dependent facts)? *)
let clobbers_memory = function
  | AStoreC _ | IPutC _ | StoreElem _ | StoreField _ | SPut _
  | CallStatic _ | CallVirtual _ | CallNative (_, _, _, Jni) -> true
  | CallNative (_, _, _, Intrinsic) -> false   (* intrinsics are pure math *)
  | Const _ | Move _ | Binop _ | Fma _ | Select _ | Unop _ | I2f _ | F2i _
  | NewObj _ | NewArr _ | ALoadC _ | ArrLenC _ | IGetC _ | GuardNull _
  | GuardBounds _ | GuardDivZero _ | LoadElem _ | LoadLen _ | LoadField _
  | LoadClass _ | SGet _ | SuspendCheck -> false

let reads_memory = function
  | ALoadC _ | ArrLenC _ | IGetC _ | LoadElem _ | LoadLen _ | LoadField _
  | LoadClass _ | SGet _ -> true
  | Const _ | Move _ | Binop _ | Fma _ | Select _ | Unop _ | I2f _ | F2i _
  | NewObj _ | NewArr _ | AStoreC _ | IPutC _ | GuardNull _ | GuardBounds _
  | GuardDivZero _ | StoreElem _ | StoreField _ | SPut _ | CallStatic _
  | CallVirtual _ | CallNative _ | SuspendCheck -> false

let rename_instr subst i =
  let s r = match subst r with Some r' -> r' | None -> r in
  let so = Option.map (fun r -> match subst r with Some r' -> r' | None -> r) in
  match i with
  | Const (d, c) -> Const (s d, c)
  | Move (d, a) -> Move (s d, s a)
  | Binop (op, d, a, b) -> Binop (op, s d, s a, s b)
  | Fma (d, a, b, c) -> Fma (s d, s a, s b, s c)
  | Select (d, c, a, b) -> Select (s d, s c, s a, s b)
  | Unop (op, d, a) -> Unop (op, s d, s a)
  | I2f (d, a) -> I2f (s d, s a)
  | F2i (d, a) -> F2i (s d, s a)
  | NewObj (d, c) -> NewObj (s d, c)
  | NewArr (d, k, n) -> NewArr (s d, k, s n)
  | ALoadC (k, d, a, i) -> ALoadC (k, s d, s a, s i)
  | AStoreC (k, a, i, v) -> AStoreC (k, s a, s i, s v)
  | ArrLenC (d, a) -> ArrLenC (s d, s a)
  | IGetC (k, d, o, f) -> IGetC (k, s d, s o, f)
  | IPutC (k, o, v, f) -> IPutC (k, s o, s v, f)
  | GuardNull r -> GuardNull (s r)
  | GuardBounds (i, l) -> GuardBounds (s i, s l)
  | GuardDivZero r -> GuardDivZero (s r)
  | LoadElem (k, d, a, i) -> LoadElem (k, s d, s a, s i)
  | StoreElem (k, a, i, v) -> StoreElem (k, s a, s i, s v)
  | LoadLen (d, a) -> LoadLen (s d, s a)
  | LoadField (k, d, o, f) -> LoadField (k, s d, s o, f)
  | StoreField (k, o, v, f) -> StoreField (k, s o, s v, f)
  | LoadClass (d, o) -> LoadClass (s d, s o)
  | SGet (k, d, slot) -> SGet (k, s d, slot)
  | SPut (k, slot, v) -> SPut (k, slot, s v)
  | CallStatic (ret, mid, args) -> CallStatic (so ret, mid, List.map s args)
  | CallVirtual (ret, slot, args, site) ->
    CallVirtual (so ret, slot, List.map s args, site)
  | CallNative (ret, n, args, m) -> CallNative (so ret, n, List.map s args, m)
  | SuspendCheck -> SuspendCheck

(* Replace only the destination register, leaving operands untouched. *)
let rename_def d' i =
  match i with
  | Const (_, c) -> Const (d', c)
  | Move (_, s) -> Move (d', s)
  | Binop (op, _, a, b) -> Binop (op, d', a, b)
  | Fma (_, a, b, c) -> Fma (d', a, b, c)
  | Select (_, c, a, b) -> Select (d', c, a, b)
  | Unop (op, _, a) -> Unop (op, d', a)
  | I2f (_, a) -> I2f (d', a)
  | F2i (_, a) -> F2i (d', a)
  | NewObj (_, c) -> NewObj (d', c)
  | NewArr (_, k, n) -> NewArr (d', k, n)
  | ALoadC (k, _, a, i) -> ALoadC (k, d', a, i)
  | ArrLenC (_, a) -> ArrLenC (d', a)
  | IGetC (k, _, o, f) -> IGetC (k, d', o, f)
  | LoadElem (k, _, a, i) -> LoadElem (k, d', a, i)
  | LoadLen (_, a) -> LoadLen (d', a)
  | LoadField (k, _, o, f) -> LoadField (k, d', o, f)
  | LoadClass (_, o) -> LoadClass (d', o)
  | SGet (k, _, slot) -> SGet (k, d', slot)
  | CallStatic (Some _, mid, args) -> CallStatic (Some d', mid, args)
  | CallVirtual (Some _, slot, args, site) -> CallVirtual (Some d', slot, args, site)
  | CallNative (Some _, n, args, m) -> CallNative (Some d', n, args, m)
  | CallStatic (None, _, _) | CallVirtual (None, _, _, _)
  | CallNative (None, _, _, _)
  | AStoreC _ | IPutC _ | GuardNull _ | GuardBounds _ | GuardDivZero _
  | StoreElem _ | StoreField _ | SPut _ | SuspendCheck -> i

let rename_term subst t =
  let s r = match subst r with Some r' -> r' | None -> r in
  match t with
  | Goto b -> Goto b
  | If (c, a, b, bt, be, h) -> If (c, s a, Option.map s b, bt, be, h)
  | Ret r -> Ret (Option.map s r)
  | ThrowT r -> ThrowT (s r)

let retarget_term ~from ~to_ t =
  match t with
  | Goto b -> Goto (if b = from then to_ else b)
  | If (c, a, b, bt, be, h) ->
    If (c, a, b, (if bt = from then to_ else bt), (if be = from then to_ else be), h)
  | Ret _ | ThrowT _ -> t

let size f =
  Hashtbl.fold (fun _ b acc -> acc + List.length b.insns + 1) f.f_blocks 0

let copy f =
  let blocks = Hashtbl.create (Hashtbl.length f.f_blocks) in
  Hashtbl.iter
    (fun bid b -> Hashtbl.replace blocks bid { insns = b.insns; term = b.term })
    f.f_blocks;
  { f with f_blocks = blocks; f_pressure = None }

let iter_blocks f g = Hashtbl.iter (fun bid b -> g bid b) f.f_blocks

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let string_of_const = function
  | B.Cint k -> string_of_int k
  | B.Cfloat x -> Printf.sprintf "%g" x
  | B.Cbool b -> string_of_bool b
  | B.Cnull -> "null"

let string_of_cond = function
  | B.Ceq -> "eq" | B.Cne -> "ne" | B.Clt -> "lt"
  | B.Cle -> "le" | B.Cgt -> "gt" | B.Cge -> "ge"

let r k = "%" ^ string_of_int k
let rs l = String.concat ", " (List.map r l)
let retpfx = function Some d -> r d ^ " = " | None -> ""

let string_of_instr = function
  | Const (d, c) -> Printf.sprintf "%s = const %s" (r d) (string_of_const c)
  | Move (d, a) -> Printf.sprintf "%s = %s" (r d) (r a)
  | Binop (op, d, a, b) ->
    Printf.sprintf "%s = %s %s %s" (r d) (r a) (Ast.string_of_binop op) (r b)
  | Fma (d, a, b, c) ->
    Printf.sprintf "%s = fma %s * %s + %s" (r d) (r a) (r b) (r c)
  | Select (d, c, a, b) ->
    Printf.sprintf "%s = select %s ? %s : %s" (r d) (r c) (r a) (r b)
  | Unop (Ast.Neg, d, a) -> Printf.sprintf "%s = neg %s" (r d) (r a)
  | Unop (Ast.Not, d, a) -> Printf.sprintf "%s = not %s" (r d) (r a)
  | I2f (d, a) -> Printf.sprintf "%s = i2f %s" (r d) (r a)
  | F2i (d, a) -> Printf.sprintf "%s = f2i %s" (r d) (r a)
  | NewObj (d, c) -> Printf.sprintf "%s = new obj#%d" (r d) c
  | NewArr (d, _, n) -> Printf.sprintf "%s = newarr [%s]" (r d) (r n)
  | ALoadC (_, d, a, i) -> Printf.sprintf "%s = aload! %s[%s]" (r d) (r a) (r i)
  | AStoreC (_, a, i, v) -> Printf.sprintf "astore! %s[%s] = %s" (r a) (r i) (r v)
  | ArrLenC (d, a) -> Printf.sprintf "%s = len! %s" (r d) (r a)
  | IGetC (_, d, o, f) -> Printf.sprintf "%s = iget! %s.f%d" (r d) (r o) f
  | IPutC (_, o, v, f) -> Printf.sprintf "iput! %s.f%d = %s" (r o) f (r v)
  | GuardNull a -> Printf.sprintf "guard.null %s" (r a)
  | GuardBounds (i, l) -> Printf.sprintf "guard.bounds %s < %s" (r i) (r l)
  | GuardDivZero a -> Printf.sprintf "guard.nz %s" (r a)
  | LoadElem (_, d, a, i) -> Printf.sprintf "%s = elem %s[%s]" (r d) (r a) (r i)
  | StoreElem (_, a, i, v) -> Printf.sprintf "elem %s[%s] = %s" (r a) (r i) (r v)
  | LoadLen (d, a) -> Printf.sprintf "%s = len %s" (r d) (r a)
  | LoadField (_, d, o, f) -> Printf.sprintf "%s = field %s.f%d" (r d) (r o) f
  | StoreField (_, o, v, f) -> Printf.sprintf "field %s.f%d = %s" (r o) f (r v)
  | LoadClass (d, o) -> Printf.sprintf "%s = classof %s" (r d) (r o)
  | SGet (_, d, slot) -> Printf.sprintf "%s = sget s%d" (r d) slot
  | SPut (_, slot, v) -> Printf.sprintf "sput s%d = %s" slot (r v)
  | CallStatic (ret, mid, args) ->
    Printf.sprintf "%scall m%d(%s)" (retpfx ret) mid (rs args)
  | CallVirtual (ret, slot, args, (smid, spc)) ->
    Printf.sprintf "%scallv slot%d(%s) @%d:%d" (retpfx ret) slot (rs args) smid spc
  | CallNative (ret, n, args, mode) ->
    Printf.sprintf "%s%s %s(%s)" (retpfx ret)
      (match mode with Jni -> "calljni" | Intrinsic -> "intrinsic")
      (B.native_name n) (rs args)
  | SuspendCheck -> "suspend_check"

let string_of_hint = function
  | Predict_taken -> " [taken]"
  | Predict_not_taken -> " [not-taken]"
  | Predict_none -> ""

let string_of_term = function
  | Goto b -> Printf.sprintf "goto b%d" b
  | If (c, a, Some b, bt, be, h) ->
    Printf.sprintf "if.%s %s, %s -> b%d else b%d%s" (string_of_cond c) (r a)
      (r b) bt be (string_of_hint h)
  | If (c, a, None, bt, be, h) ->
    Printf.sprintf "if.%sz %s -> b%d else b%d%s" (string_of_cond c) (r a) bt be
      (string_of_hint h)
  | Ret (Some a) -> Printf.sprintf "ret %s" (r a)
  | Ret None -> "ret"
  | ThrowT a -> Printf.sprintf "throw %s" (r a)

let to_string f =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "func %s (mid=%d, params=%d, regs=%d, entry=b%d)\n"
    f.f_name f.f_mid f.f_nparams f.f_nregs f.f_entry;
  let bids =
    Hashtbl.fold (fun bid _ acc -> bid :: acc) f.f_blocks [] |> List.sort Int.compare
  in
  List.iter
    (fun bid ->
       let b = block f bid in
       Printf.bprintf buf "b%d:\n" bid;
       List.iter (fun i -> Printf.bprintf buf "  %s\n" (string_of_instr i)) b.insns;
       Printf.bprintf buf "  %s\n" (string_of_term b.term))
    bids;
  Buffer.contents buf
