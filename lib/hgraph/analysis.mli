(** Dataflow analyses over the IR, shared by the Android pipeline and the
    LLVM-style pass library. *)

module ISet : Set.S with type elt = int

val liveness : Hir.func -> Repro_util.Cfg.t -> (int, ISet.t) Hashtbl.t
(** Live-out register set per block (backward may analysis). *)

val live_before :
  ISet.t -> Hir.instr list -> Hir.term -> ISet.t list
(** Given a block's live-out set, the live set *before* each instruction, in
    instruction order (same length as the instruction list). *)

val defs_of_block : Hir.block -> ISet.t
val uses_of_block : Hir.block -> ISet.t

val def_count : Hir.func -> (int, int) Hashtbl.t
(** Number of static definitions of each register over the whole function. *)

val block_freq : Hir.func -> Repro_util.Cfg.t -> (int, float) Hashtbl.t
(** Static execution-frequency estimate: 10^loop-depth. *)

val pressure : Hir.func -> int
(** Register pressure: the largest live-out set over all blocks.  Pure (no
    caching); see [Hir.f_pressure] for the per-function cache that
    [Repro_lir.Binary.create] fills exactly once, before a binary can be
    shared across evaluation domains. *)
