module Cfg = Repro_util.Cfg
module ISet = Set.Make (Int)

let defs_of_block (b : Hir.block) =
  List.fold_left
    (fun acc i ->
       match Hir.def_of i with Some d -> ISet.add d acc | None -> acc)
    ISet.empty b.Hir.insns

(* Upward-exposed uses: used before any local (re)definition. *)
let uses_of_block (b : Hir.block) =
  let rec walk defined acc = function
    | [] ->
      List.fold_left
        (fun acc u -> if ISet.mem u defined then acc else ISet.add u acc)
        acc (Hir.uses_of_term b.Hir.term)
    | i :: rest ->
      let acc =
        List.fold_left
          (fun acc u -> if ISet.mem u defined then acc else ISet.add u acc)
          acc (Hir.uses_of i)
      in
      let defined =
        match Hir.def_of i with Some d -> ISet.add d defined | None -> defined
      in
      walk defined acc rest
  in
  walk ISet.empty ISet.empty b.Hir.insns

let liveness (f : Hir.func) (g : Cfg.t) =
  let live_out : (int, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let live_in : (int, ISet.t) Hashtbl.t = Hashtbl.create 16 in
  let get tbl bid = Option.value ~default:ISet.empty (Hashtbl.find_opt tbl bid) in
  let nodes = Cfg.nodes g in
  let uses = Hashtbl.create 16 and defs = Hashtbl.create 16 in
  List.iter
    (fun bid ->
       let b = Hir.block f bid in
       Hashtbl.replace uses bid (uses_of_block b);
       Hashtbl.replace defs bid (defs_of_block b))
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    (* reverse RPO converges quickly for backward problems *)
    List.iter
      (fun bid ->
         let out =
           List.fold_left
             (fun acc s -> ISet.union acc (get live_in s))
             ISet.empty (Cfg.succs g bid)
         in
         let inn =
           ISet.union (Hashtbl.find uses bid) (ISet.diff out (Hashtbl.find defs bid))
         in
         if not (ISet.equal out (get live_out bid)) then begin
           Hashtbl.replace live_out bid out;
           changed := true
         end;
         if not (ISet.equal inn (get live_in bid)) then begin
           Hashtbl.replace live_in bid inn;
           changed := true
         end)
      (List.rev nodes)
  done;
  live_out

let live_before live_out insns term =
  (* walk backwards accumulating, then reverse *)
  let after_term =
    List.fold_left (fun acc u -> ISet.add u acc) live_out (Hir.uses_of_term term)
  in
  let rec back acc live = function
    | [] -> acc
    | i :: rest ->
      let live =
        match Hir.def_of i with Some d -> ISet.remove d live | None -> live
      in
      let live = List.fold_left (fun s u -> ISet.add u s) live (Hir.uses_of i) in
      back (live :: acc) live rest
  in
  back [] after_term (List.rev insns)

let def_count (f : Hir.func) =
  let counts = Hashtbl.create 32 in
  Hir.iter_blocks f (fun _ b ->
      List.iter
        (fun i ->
           match Hir.def_of i with
           | Some d ->
             Hashtbl.replace counts d
               (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
           | None -> ())
        b.Hir.insns);
  counts

let block_freq f g =
  ignore f;
  let freq = Hashtbl.create 16 in
  List.iter
    (fun bid ->
       Hashtbl.replace freq bid (10.0 ** float_of_int (Cfg.loop_depth g bid)))
    (Cfg.nodes g);
  freq

(* Register pressure: the largest live-out set across the function's
   blocks.  Pure — callers decide whether to cache it in
   [Hir.f_pressure]; mutating that cache from worker domains is a data
   race, so [Repro_lir.Binary.create] precomputes it once per binary. *)
let pressure (f : Hir.func) =
  let g = Hir.cfg f in
  let live_out = liveness f g in
  Hashtbl.fold (fun _ live acc -> max acc (ISet.cardinal live)) live_out 0
