module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast
module Cfg = Repro_util.Cfg
module ISet = Analysis.ISet
open Hir

let instr_count = Hir.size

(* ------------------------------------------------------------------ *)
(* Constant evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let eval_binop_const op a b : B.const option =
  match op, a, b with
  | Ast.Add, B.Cint x, B.Cint y -> Some (B.Cint (x + y))
  | Ast.Sub, B.Cint x, B.Cint y -> Some (B.Cint (x - y))
  | Ast.Mul, B.Cint x, B.Cint y -> Some (B.Cint (x * y))
  | Ast.Div, B.Cint x, B.Cint y when y <> 0 -> Some (B.Cint (x / y))
  | Ast.Rem, B.Cint x, B.Cint y when y <> 0 -> Some (B.Cint (x mod y))
  | Ast.Band, B.Cint x, B.Cint y -> Some (B.Cint (x land y))
  | Ast.Bor, B.Cint x, B.Cint y -> Some (B.Cint (x lor y))
  | Ast.Bxor, B.Cint x, B.Cint y -> Some (B.Cint (x lxor y))
  | Ast.Shl, B.Cint x, B.Cint y -> Some (B.Cint (x lsl (y land 63)))
  | Ast.Shr, B.Cint x, B.Cint y -> Some (B.Cint (x asr (y land 63)))
  | Ast.Add, B.Cfloat x, B.Cfloat y -> Some (B.Cfloat (x +. y))
  | Ast.Sub, B.Cfloat x, B.Cfloat y -> Some (B.Cfloat (x -. y))
  | Ast.Mul, B.Cfloat x, B.Cfloat y -> Some (B.Cfloat (x *. y))
  | Ast.Div, B.Cfloat x, B.Cfloat y -> Some (B.Cfloat (x /. y))
  | Ast.Rem, B.Cfloat x, B.Cfloat y -> Some (B.Cfloat (Float.rem x y))
  | Ast.Lt, B.Cint x, B.Cint y -> Some (B.Cbool (x < y))
  | Ast.Le, B.Cint x, B.Cint y -> Some (B.Cbool (x <= y))
  | Ast.Gt, B.Cint x, B.Cint y -> Some (B.Cbool (x > y))
  | Ast.Ge, B.Cint x, B.Cint y -> Some (B.Cbool (x >= y))
  | Ast.Lt, B.Cfloat x, B.Cfloat y -> Some (B.Cbool (x < y))
  | Ast.Le, B.Cfloat x, B.Cfloat y -> Some (B.Cbool (x <= y))
  | Ast.Gt, B.Cfloat x, B.Cfloat y -> Some (B.Cbool (x > y))
  | Ast.Ge, B.Cfloat x, B.Cfloat y -> Some (B.Cbool (x >= y))
  | Ast.Eq, B.Cint x, B.Cint y -> Some (B.Cbool (x = y))
  | Ast.Ne, B.Cint x, B.Cint y -> Some (B.Cbool (x <> y))
  | Ast.Eq, B.Cfloat x, B.Cfloat y -> Some (B.Cbool (x = y))
  | Ast.Ne, B.Cfloat x, B.Cfloat y -> Some (B.Cbool (x <> y))
  | Ast.Eq, B.Cbool x, B.Cbool y -> Some (B.Cbool (x = y))
  | Ast.Ne, B.Cbool x, B.Cbool y -> Some (B.Cbool (x <> y))
  | Ast.Eq, B.Cnull, B.Cnull -> Some (B.Cbool true)
  | Ast.Ne, B.Cnull, B.Cnull -> Some (B.Cbool false)
  | Ast.Land, B.Cbool x, B.Cbool y -> Some (B.Cbool (x && y))
  | Ast.Lor, B.Cbool x, B.Cbool y -> Some (B.Cbool (x || y))
  | _ -> None

let eval_unop_const op c : B.const option =
  match op, c with
  | Ast.Neg, B.Cint x -> Some (B.Cint (-x))
  | Ast.Neg, B.Cfloat x -> Some (B.Cfloat (-.x))
  | Ast.Not, B.Cbool b -> Some (B.Cbool (not b))
  | _ -> None

let eval_cond_const cond a b : bool option =
  let cmp c = Some c in
  let of_int c = match cond with
    | B.Ceq -> cmp (c = 0) | B.Cne -> cmp (c <> 0) | B.Clt -> cmp (c < 0)
    | B.Cle -> cmp (c <= 0) | B.Cgt -> cmp (c > 0) | B.Cge -> cmp (c >= 0)
  in
  match a, b with
  | B.Cint x, B.Cint y -> of_int (compare x y)
  | B.Cfloat x, B.Cfloat y -> of_int (compare x y)
  | B.Cbool x, B.Cbool y -> of_int (compare x y)
  | B.Cnull, B.Cnull -> of_int 0
  | _ -> None

let zero_const_like = function
  | B.Cint _ -> Some (B.Cint 0)
  | B.Cfloat _ -> Some (B.Cfloat 0.0)
  | B.Cbool _ -> Some (B.Cbool false)
  | B.Cnull -> Some B.Cnull

(* ------------------------------------------------------------------ *)
(* Local rewrite engine: tracks constants and copies per block          *)
(* ------------------------------------------------------------------ *)

type local_env = {
  consts : (int, B.const) Hashtbl.t;
  copies : (int, int) Hashtbl.t;
}

let env_create () = { consts = Hashtbl.create 16; copies = Hashtbl.create 16 }

let env_kill env d =
  Hashtbl.remove env.consts d;
  Hashtbl.remove env.copies d;
  (* invalidate copies whose source was overwritten *)
  let stale =
    Hashtbl.fold (fun k v acc -> if v = d then k :: acc else acc) env.copies []
  in
  List.iter (Hashtbl.remove env.copies) stale

let env_record env i =
  match i with
  | Const (d, c) ->
    env_kill env d;
    Hashtbl.replace env.consts d c
  | Move (d, s) when d <> s ->
    env_kill env d;
    (match Hashtbl.find_opt env.consts s with
     | Some c -> Hashtbl.replace env.consts d c
     | None ->
       let root = Option.value ~default:s (Hashtbl.find_opt env.copies s) in
       Hashtbl.replace env.copies d root)
  | other -> (match def_of other with Some d -> env_kill env d | None -> ())

let const_of env r = Hashtbl.find_opt env.consts r

(* Run a local rewrite over every block.  [rw] may return a replacement
   instruction; [rw_term] a replacement terminator. *)
let local_rewrite f ~rw ~rw_term =
  let f = copy f in
  iter_blocks f (fun _ b ->
      let env = env_create () in
      let insns =
        List.map
          (fun i ->
             let i = rw env i in
             env_record env i;
             i)
          b.insns
      in
      b.insns <- insns;
      b.term <- rw_term env b.term);
  f

(* ---------------------------- const_fold --------------------------- *)

let const_fold f =
  let rw env i =
    match i with
    | Binop (op, d, a, b) ->
      (match const_of env a, const_of env b with
       | Some ca, Some cb ->
         (match eval_binop_const op ca cb with
          | Some c -> Const (d, c)
          | None -> i)
       | _ -> i)
    | Unop (op, d, a) ->
      (match const_of env a with
       | Some ca ->
         (match eval_unop_const op ca with Some c -> Const (d, c) | None -> i)
       | None -> i)
    | I2f (d, a) ->
      (match const_of env a with
       | Some (B.Cint k) -> Const (d, B.Cfloat (float_of_int k))
       | _ -> i)
    | F2i (d, a) ->
      (match const_of env a with
       | Some (B.Cfloat x) -> Const (d, B.Cint (int_of_float x))
       | _ -> i)
    | Move (d, s) ->
      (match const_of env s with Some c -> Const (d, c) | None -> i)
    | _ -> i
  in
  let rw_term env t =
    match t with
    | If (cond, a, b, bt, be, _) ->
      let cb =
        match b with
        | Some b -> const_of env b
        | None -> Option.bind (const_of env a) zero_const_like
      in
      (match const_of env a, cb with
       | Some ca, Some cb ->
         (match eval_cond_const cond ca cb with
          | Some true -> Goto bt
          | Some false -> Goto be
          | None -> t)
       | _ -> t)
    | _ -> t
  in
  local_rewrite f ~rw ~rw_term

(* ----------------------------- simplify ---------------------------- *)

let is_pow2 k = k > 0 && k land (k - 1) = 0
let log2 k = int_of_float (Float.round (log (float_of_int k) /. log 2.0))

let simplify f =
  let f = copy f in
  iter_blocks f (fun _ b ->
      let env = env_create () in
      let rule i =
        match i with
        | Binop (op, d, a, b) ->
          let ca = const_of env a and cb = const_of env b in
          (match op, ca, cb with
           | Ast.Add, _, Some (B.Cint 0) -> [ Move (d, a) ]
           | Ast.Add, Some (B.Cint 0), _ -> [ Move (d, b) ]
           | Ast.Sub, _, Some (B.Cint 0) -> [ Move (d, a) ]
           | Ast.Sub, _, _ when a = b -> [ Const (d, B.Cint 0) ]
           | Ast.Mul, _, Some (B.Cint 1) -> [ Move (d, a) ]
           | Ast.Mul, Some (B.Cint 1), _ -> [ Move (d, b) ]
           | Ast.Mul, _, Some (B.Cint 0) -> [ Const (d, B.Cint 0) ]
           | Ast.Mul, Some (B.Cint 0), _ -> [ Const (d, B.Cint 0) ]
           | Ast.Mul, _, Some (B.Cint k) when is_pow2 k && k > 1 ->
             (* x * 2^k  ->  x << log2 k, with a fresh amount register *)
             let r = fresh_reg f in
             [ Const (r, B.Cint (log2 k)); Binop (Ast.Shl, d, a, r) ]
           | Ast.Div, _, Some (B.Cint 1) -> [ Move (d, a) ]
           | Ast.Band, _, _ when a = b -> [ Move (d, a) ]
           | Ast.Bor, _, _ when a = b -> [ Move (d, a) ]
           | Ast.Bxor, _, _ when a = b -> [ Const (d, B.Cint 0) ]
           | Ast.Shl, _, Some (B.Cint 0) -> [ Move (d, a) ]
           | Ast.Shr, _, Some (B.Cint 0) -> [ Move (d, a) ]
           (* float: only +0.0-safe identities *)
           | Ast.Mul, _, Some (B.Cfloat 1.0) -> [ Move (d, a) ]
           | Ast.Div, _, Some (B.Cfloat 1.0) -> [ Move (d, a) ]
           | _ -> [ i ])
        | Unop (Ast.Neg, d, a) ->
          (match const_of env a with
           | Some (B.Cint k) -> [ Const (d, B.Cint (-k)) ]
           | _ -> [ i ])
        | _ -> [ i ]
      in
      let insns =
        List.concat_map
          (fun i ->
             let out = rule i in
             List.iter (env_record env) out;
             out)
          b.insns
      in
      b.insns <- insns);
  f

(* ---------------------------- copy_prop ---------------------------- *)

let copy_prop f =
  let rw env i =
    let subst r = Hashtbl.find_opt env.copies r in
    (* substitute uses only: the destination register must stay *)
    let renamed = rename_instr subst i in
    match def_of i with
    | Some d -> rename_def d renamed
    | None -> renamed
  in
  let rw_term env t =
    let subst r = Hashtbl.find_opt env.copies r in
    rename_term subst t
  in
  local_rewrite f ~rw ~rw_term

(* ------------------------------- dce ------------------------------- *)

let remove_unreachable f =
  let f = copy f in
  let g = cfg f in
  let reachable = Cfg.nodes g in
  let all = Hashtbl.fold (fun bid _ acc -> bid :: acc) f.f_blocks [] in
  List.iter
    (fun bid -> if not (List.mem bid reachable) then Hashtbl.remove f.f_blocks bid)
    all;
  f

let dce f =
  let f = remove_unreachable f in
  let changed = ref true in
  let f = copy f in
  while !changed do
    changed := false;
    let g = cfg f in
    let live_out = Analysis.liveness f g in
    iter_blocks f (fun bid b ->
        let out = Option.value ~default:ISet.empty (Hashtbl.find_opt live_out bid) in
        (* walk backwards, keeping track of liveness *)
        let after_term =
          List.fold_left (fun acc u -> ISet.add u acc) out (uses_of_term b.term)
        in
        let rec back live kept = function
          | [] -> kept
          | i :: rest ->
            let dead =
              match def_of i with
              | Some d -> is_pure i && not (ISet.mem d live)
              | None -> false
            in
            if dead then begin
              changed := true;
              back live kept rest
            end
            else begin
              let live =
                match def_of i with Some d -> ISet.remove d live | None -> live
              in
              let live =
                List.fold_left (fun s u -> ISet.add u s) live (uses_of i)
              in
              back live (i :: kept) rest
            end
        in
        b.insns <- back after_term [] (List.rev b.insns))
  done;
  f

(* ----------------------------- cse_local --------------------------- *)

(* Value-numbering key for an instruction given operand value numbers. *)
type vn_key =
  | Kbin of Ast.binop * int * int
  | Kun of Ast.unop * int
  | Ki2f of int
  | Kf2i of int
  | Kconst of B.const
  | Klen of int * int          (* epoch not needed: length immutable *)
  | Kclass of int
  | Kload_field of int * int * int    (* obj vn, offset, epoch *)
  | Kload_elem of int * int * int     (* arr vn, idx vn, epoch *)
  | Ksget of int * int                (* slot, epoch *)
  | Kiget_c of int * int * int
  | Kaload_c of int * int * int
  | Karrlen_c of int

let cse_local f =
  let f = copy f in
  iter_blocks f (fun _ b ->
      let vn : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let next_vn = ref 0 in
      let fresh_vn () = incr next_vn; !next_vn in
      let vn_of r =
        match Hashtbl.find_opt vn r with
        | Some v -> v
        | None ->
          let v = fresh_vn () in
          Hashtbl.replace vn r v;
          v
      in
      let table : (vn_key, int) Hashtbl.t = Hashtbl.create 16 in
      let epoch = ref 0 in
      let key_of = function
        | Binop (op, _, a, b) when is_pure (Binop (op, 0, a, b)) ->
          Some (Kbin (op, vn_of a, vn_of b))
        | Unop (op, _, a) -> Some (Kun (op, vn_of a))
        | I2f (_, a) -> Some (Ki2f (vn_of a))
        | F2i (_, a) -> Some (Kf2i (vn_of a))
        | Const (_, c) -> Some (Kconst c)
        | LoadLen (_, a) -> Some (Klen (vn_of a, 0))
        | LoadClass (_, a) -> Some (Kclass (vn_of a))
        | LoadField (_, _, o, off) -> Some (Kload_field (vn_of o, off, !epoch))
        | LoadElem (_, _, a, i) -> Some (Kload_elem (vn_of a, vn_of i, !epoch))
        | SGet (_, _, slot) -> Some (Ksget (slot, !epoch))
        | IGetC (_, _, o, off) -> Some (Kiget_c (vn_of o, off, !epoch))
        | ALoadC (_, _, a, i) -> Some (Kaload_c (vn_of a, vn_of i, !epoch))
        | ArrLenC (_, a) -> Some (Karrlen_c (vn_of a))
        | _ -> None
      in
      (* registers currently holding each available value *)
      let holder : (int, int) Hashtbl.t = Hashtbl.create 16 in  (* vn -> reg *)
      let insns =
        List.map
          (fun i ->
             if clobbers_memory i then incr epoch;
             match i with
             | Move (d, s) ->
               let v = vn_of s in
               Hashtbl.replace vn d v;
               Hashtbl.replace holder v d;
               i
             | _ ->
               (match key_of i, def_of i with
                | Some key, Some d ->
                  (match Hashtbl.find_opt table key with
                   | Some v ->
                     (match Hashtbl.find_opt holder v with
                      | Some src when Hashtbl.find_opt vn src = Some v && src <> d ->
                        Hashtbl.replace vn d v;
                        Hashtbl.replace holder v d;
                        Move (d, src)
                      | _ ->
                        (* value known but no register holds it anymore:
                           recompute, re-establish the holder *)
                        Hashtbl.replace vn d v;
                        Hashtbl.replace holder v d;
                        i)
                   | None ->
                     let v = fresh_vn () in
                     Hashtbl.replace table key v;
                     Hashtbl.replace vn d v;
                     Hashtbl.replace holder v d;
                     i)
                | _, Some d ->
                  Hashtbl.replace vn d (fresh_vn ());
                  i
                | _, None -> i))
          b.insns
      in
      b.insns <- insns);
  f

(* -------------------------- load_store_elim ------------------------ *)

type mem_loc =
  | Mfield of int * int      (* obj vn, offset *)
  | Melem of int * int       (* arr vn, idx vn *)
  | Mstatic of int

let load_store_elim f =
  let f = copy f in
  iter_blocks f (fun _ b ->
      let vn : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let next_vn = ref 0 in
      let vn_of r =
        match Hashtbl.find_opt vn r with
        | Some v -> v
        | None -> incr next_vn; Hashtbl.replace vn r !next_vn; !next_vn
      in
      let kill d = Hashtbl.replace vn d (incr next_vn; !next_vn) in
      (* available stored/loaded values: loc -> (value reg, its vn) *)
      let avail : (mem_loc, int * int) Hashtbl.t = Hashtbl.create 16 in
      let clobber () = Hashtbl.reset avail in
      let lookup loc =
        match Hashtbl.find_opt avail loc with
        | Some (r, v) when Hashtbl.find_opt vn r = Some v -> Some r
        | _ -> None
      in
      let insns =
        List.map
          (fun i ->
             let result =
               match i with
               | StoreField (_, o, v, off) ->
                 (* a store to a field invalidates all field locations that
                    may alias (same offset, unknown object identity) *)
                 let loc = Mfield (vn_of o, off) in
                 let stale =
                   Hashtbl.fold
                     (fun l _ acc ->
                        match l with
                        | Mfield (ov, off') when off' = off && ov <> vn_of o ->
                          l :: acc
                        | _ -> acc)
                     avail []
                 in
                 List.iter (Hashtbl.remove avail) stale;
                 Hashtbl.replace avail loc (v, vn_of v);
                 i
               | StoreElem (_, a, idx, v) ->
                 let loc = Melem (vn_of a, vn_of idx) in
                 let stale =
                   Hashtbl.fold
                     (fun l _ acc ->
                        match l with Melem _ when l <> loc -> l :: acc | _ -> acc)
                     avail []
                 in
                 List.iter (Hashtbl.remove avail) stale;
                 Hashtbl.replace avail loc (v, vn_of v);
                 i
               | SPut (_, slot, v) ->
                 Hashtbl.replace avail (Mstatic slot) (v, vn_of v);
                 i
               | LoadField (_, d, o, off) ->
                 (match lookup (Mfield (vn_of o, off)) with
                  | Some src -> Move (d, src)
                  | None ->
                    Hashtbl.replace avail (Mfield (vn_of o, off)) (d, -1);
                    i)
               | LoadElem (_, d, a, idx) ->
                 (match lookup (Melem (vn_of a, vn_of idx)) with
                  | Some src -> Move (d, src)
                  | None ->
                    Hashtbl.replace avail (Melem (vn_of a, vn_of idx)) (d, -1);
                    i)
               | SGet (_, d, slot) ->
                 (match lookup (Mstatic slot) with
                  | Some src -> Move (d, src)
                  | None ->
                    Hashtbl.replace avail (Mstatic slot) (d, -1);
                    i)
               | IGetC (_, d, o, off) ->
                 (match lookup (Mfield (vn_of o, off)) with
                  | Some src -> Move (d, src)
                  | None ->
                    Hashtbl.replace avail (Mfield (vn_of o, off)) (d, -1);
                    i)
               | IPutC (_, o, v, off) ->
                 let loc = Mfield (vn_of o, off) in
                 let stale =
                   Hashtbl.fold
                     (fun l _ acc ->
                        match l with
                        | Mfield (ov, off') when off' = off && ov <> vn_of o ->
                          l :: acc
                        | _ -> acc)
                     avail []
                 in
                 List.iter (Hashtbl.remove avail) stale;
                 Hashtbl.replace avail loc (v, vn_of v);
                 i
               | ALoadC (_, d, a, idx) ->
                 (match lookup (Melem (vn_of a, vn_of idx)) with
                  | Some src -> Move (d, src)
                  | None ->
                    Hashtbl.replace avail (Melem (vn_of a, vn_of idx)) (d, -1);
                    i)
               | AStoreC (_, a, idx, v) ->
                 let loc = Melem (vn_of a, vn_of idx) in
                 let stale =
                   Hashtbl.fold
                     (fun l _ acc ->
                        match l with Melem _ when l <> loc -> l :: acc | _ -> acc)
                     avail []
                 in
                 List.iter (Hashtbl.remove avail) stale;
                 Hashtbl.replace avail loc (v, vn_of v);
                 i
               | CallStatic _ | CallVirtual _ | CallNative (_, _, _, Jni) ->
                 clobber ();
                 i
               | _ -> i
             in
             (* fix up loaded-value vn: a load makes d hold the loc's value *)
             (match result, def_of result with
              | Move (d, s), _ -> Hashtbl.replace vn d (vn_of s)
              | _, Some d ->
                kill d;
                (* re-associate the load destination with its location *)
                (match result with
                 | LoadField (_, d', o, off) when d' = d ->
                   Hashtbl.replace avail (Mfield (vn_of o, off)) (d, vn_of d)
                 | LoadElem (_, d', a, idx) when d' = d ->
                   Hashtbl.replace avail (Melem (vn_of a, vn_of idx)) (d, vn_of d)
                 | SGet (_, d', slot) when d' = d ->
                   Hashtbl.replace avail (Mstatic slot) (d, vn_of d)
                 | IGetC (_, d', o, off) when d' = d ->
                   Hashtbl.replace avail (Mfield (vn_of o, off)) (d, vn_of d)
                 | ALoadC (_, d', a, idx) when d' = d ->
                   Hashtbl.replace avail (Melem (vn_of a, vn_of idx)) (d, vn_of d)
                 | _ -> ())
              | _, None -> ());
             result)
          b.insns
      in
      b.insns <- insns);
  f

(* ------------------------------- licm ------------------------------ *)

let licm f =
  let f = copy f in
  let loops0 = Cfg.loops (cfg f) in
  (* Smallest (innermost) loops first; each loop identified by stable block
     ids, so analyses can be recomputed after earlier loops were rewritten. *)
  let loops =
    List.sort
      (fun a b ->
         compare (List.length a.Cfg.body) (List.length b.Cfg.body))
      loops0
  in
  List.iter
    (fun loop ->
       let live_out = Analysis.liveness f (cfg f) in
       let body = loop.Cfg.body in
       let header = loop.Cfg.header in
       (* registers (re)defined anywhere in the loop, with def counts *)
       let def_counts = Hashtbl.create 16 in
       List.iter
         (fun bid ->
            match Hashtbl.find_opt f.f_blocks bid with
            | None -> ()
            | Some b ->
              List.iter
                (fun i ->
                   match def_of i with
                   | Some d ->
                     Hashtbl.replace def_counts d
                       (1 + Option.value ~default:0 (Hashtbl.find_opt def_counts d))
                   | None -> ())
                b.insns)
         body;
       (* live into the header from outside: hoisting must not clobber *)
       let header_live =
         match Hashtbl.find_opt f.f_blocks header with
         | None -> ISet.empty
         | Some hb ->
           (match
              Analysis.live_before
                (Option.value ~default:ISet.empty (Hashtbl.find_opt live_out header))
                hb.insns hb.term
            with
            | first :: _ -> first
            | [] ->
              List.fold_left (fun s u -> ISet.add u s)
                (Option.value ~default:ISet.empty (Hashtbl.find_opt live_out header))
                (uses_of_term hb.term))
       in
       let invariant_regs = Hashtbl.create 16 in
       let is_invariant r =
         (not (Hashtbl.mem def_counts r)) || Hashtbl.mem invariant_regs r
       in
       let hoistable i =
         is_pure i
         && (match i with Move _ -> false | _ -> true)
         && List.for_all is_invariant (uses_of i)
         &&
         (match def_of i with
          | Some d ->
            Hashtbl.find_opt def_counts d = Some 1
            && not (ISet.mem d header_live)
          | None -> false)
       in
       let hoisted = ref [] in
       List.iter
         (fun bid ->
            match Hashtbl.find_opt f.f_blocks bid with
            | None -> ()
            | Some b ->
              let keep =
                List.filter
                  (fun i ->
                     if hoistable i then begin
                       hoisted := i :: !hoisted;
                       (match def_of i with
                        | Some d -> Hashtbl.replace invariant_regs d ()
                        | None -> ());
                       false
                     end
                     else true)
                  b.insns
              in
              b.insns <- keep)
         body;
       if !hoisted <> [] then begin
         (* build a preheader and retarget entry edges *)
         let pre = add_block f (List.rev !hoisted) (Goto header) in
         iter_blocks f (fun bid b ->
             if bid <> pre && not (List.mem bid body) then
               b.term <- retarget_term ~from:header ~to_:pre b.term);
         if f.f_entry = header then f.f_entry <- pre
       end)
    loops;
  f

(* ---------------------------- simplify_cfg ------------------------- *)

let simplify_cfg f =
  let f = remove_unreachable f in
  let f = copy f in
  (* Thread trivial goto blocks. *)
  let redirect = Hashtbl.create 8 in
  iter_blocks f (fun bid b ->
      match b.insns, b.term with
      | [], Goto t when t <> bid -> Hashtbl.replace redirect bid t
      | _ -> ());
  let rec resolve bid seen =
    if List.mem bid seen then bid
    else
      match Hashtbl.find_opt redirect bid with
      | Some t -> resolve t (bid :: seen)
      | None -> bid
  in
  iter_blocks f (fun _ b ->
      b.term <-
        (match b.term with
         | Goto t -> Goto (resolve t [])
         | If (c, a, o, bt, be, h) -> If (c, a, o, resolve bt [], resolve be [], h)
         | (Ret _ | ThrowT _) as t -> t));
  (* entry may itself be a trivial goto: keep it (it now points past chains) *)
  let f = remove_unreachable f in
  (* Merge straight-line pairs: b -> c, c has exactly one predecessor. *)
  let f = copy f in
  let merged = ref true in
  while !merged do
    merged := false;
    let g = cfg f in
    let candidates =
      List.filter_map
        (fun bid ->
           match Hashtbl.find_opt f.f_blocks bid with
           | Some b ->
             (match b.term with
              | Goto t when t <> bid && t <> f.f_entry
                         && List.length (Cfg.preds g t) = 1 ->
                Some (bid, t)
              | _ -> None)
           | None -> None)
        (Cfg.nodes g)
    in
    (match candidates with
     | (bid, t) :: _ ->
       let b = block f bid in
       let c = block f t in
       b.insns <- b.insns @ c.insns;
       b.term <- c.term;
       Hashtbl.remove f.f_blocks t;
       merged := true
     | [] -> ())
  done;
  f

(* --------------------------- predict_static ------------------------ *)

let predict_static f =
  let f = copy f in
  let g = cfg f in
  let loops = Cfg.loops g in
  let in_same_loop src dst =
    List.exists
      (fun l -> l.Cfg.header = dst && List.mem src l.Cfg.body)
      loops
  in
  iter_blocks f (fun bid b ->
      b.term <-
        (match b.term with
         | If (c, a, o, bt, be, _) ->
           if in_same_loop bid bt then If (c, a, o, bt, be, Predict_taken)
           else if in_same_loop bid be then If (c, a, o, bt, be, Predict_not_taken)
           else If (c, a, o, bt, be, Predict_none)
         | t -> t));
  f

(* ------------------------------ inline ----------------------------- *)

let inline_calls ~get_func ~threshold ?(max_depth = 3) f =
  let rec go depth f =
    if depth > max_depth then f
    else begin
      let f = copy f in
      let did_inline = ref false in
      let bids =
        Hashtbl.fold (fun bid _ acc -> bid :: acc) f.f_blocks []
        |> List.sort Int.compare
      in
      List.iter
        (fun bid ->
           match Hashtbl.find_opt f.f_blocks bid with
           | None -> ()
           | Some b ->
             (* find the first inlinable call in this block *)
             let rec split before = function
               | [] -> None
               | (CallStatic (ret, callee_mid, args) as call) :: after
                 when callee_mid <> f.f_mid ->
                 (match get_func callee_mid with
                  | Some callee when Hir.size callee <= threshold ->
                    Some (List.rev before, (ret, callee, args), after)
                  | Some _ | None -> split (call :: before) after)
               | i :: after -> split (i :: before) after
             in
             (match split [] b.insns with
              | None -> ()
              | Some (before, (ret, callee, args), after) ->
                did_inline := true;
                let reg_off = f.f_nregs in
                f.f_nregs <- f.f_nregs + callee.f_nregs;
                let bid_map = Hashtbl.create 8 in
                Hir.iter_blocks callee (fun cbid _ ->
                    Hashtbl.replace bid_map cbid
                      (let nb = f.f_next_bid in
                       f.f_next_bid <- nb + 1;
                       nb));
                let cont_bid = f.f_next_bid in
                f.f_next_bid <- cont_bid + 1;
                let subst r = Some (r + reg_off) in
                Hir.iter_blocks callee (fun cbid cb ->
                    let insns = List.map (rename_instr subst) cb.insns in
                    let term =
                      match rename_term subst cb.term with
                      | Goto t -> Goto (Hashtbl.find bid_map t)
                      | If (c, a, o, bt, be, h) ->
                        If (c, a, o, Hashtbl.find bid_map bt,
                            Hashtbl.find bid_map be, h)
                      | Ret (Some r) ->
                        (match ret with
                         | Some d ->
                           Hashtbl.replace f.f_blocks (Hashtbl.find bid_map cbid)
                             { insns = insns @ [ Move (d, r) ]; term = Goto cont_bid };
                           Goto cont_bid
                         | None -> Goto cont_bid)
                      | Ret None -> Goto cont_bid
                      | ThrowT r -> ThrowT r
                    in
                    if not (Hashtbl.mem f.f_blocks (Hashtbl.find bid_map cbid)) then
                      Hashtbl.replace f.f_blocks (Hashtbl.find bid_map cbid)
                        { insns; term });
                (* argument moves into the callee's parameter registers *)
                let arg_moves =
                  List.mapi (fun i a -> Move (i + reg_off, a)) args
                in
                let entry' = Hashtbl.find bid_map callee.f_entry in
                Hashtbl.replace f.f_blocks cont_bid
                  { insns = after; term = b.term };
                b.insns <- before @ arg_moves;
                b.term <- Goto entry'))
        bids;
      if !did_inline then go (depth + 1) f else f
    end
  in
  go 1 f
