(* Content-addressed snapshot page store.  See storage.mli for the model.

   Layout: [frames] maps the raw MD5 digest of a page's serialized bytes
   to the stored bytes plus a refcount; [blobs] maps a label to an ordered
   manifest of (page index, digest) entries.  The digest is both the
   content address (dedup) and the integrity checksum (any byte flip makes
   the stored bytes disagree with their key).  Writes are spooled: [write]
   enqueues raw page images and [drain] does the hashing/storing work,
   modelling the paper's idle-priority flash writer. *)

module Trace = Repro_util.Trace

let page_bytes = Mem.page_size
let page_words = Mem.words_per_page

type error =
  | Missing_blob of { label : string }
  | Missing_page of { label : string; index : int; hash : string }
  | Truncated_page of
      { label : string; index : int; hash : string; expected : int; got : int }
  | Corrupt_page of { label : string; index : int; hash : string }

exception Integrity of error

let describe = function
  | Missing_blob { label } -> Printf.sprintf "%s: blob not in store" label
  | Missing_page { label; index; hash } ->
      Printf.sprintf "%s: page %d (frame %s) missing from store" label index
        (Digest.to_hex hash)
  | Truncated_page { label; index; hash; expected; got } ->
      Printf.sprintf "%s: page %d (frame %s) truncated: %d bytes, expected %d"
        label index (Digest.to_hex hash) got expected
  | Corrupt_page { label; index; hash } ->
      Printf.sprintf "%s: page %d (frame %s) failed checksum" label index
        (Digest.to_hex hash)

type frame = { mutable fr_bytes : Bytes.t; mutable fr_refs : int }

type blob = {
  bl_label : string;
  bl_gen : int;                               (* write generation *)
  mutable bl_entries : (int * string) list;   (* (page, digest), reversed *)
  mutable bl_pending : int;                   (* queued, not yet spooled *)
  mutable bl_tick : int;                      (* last touch, for LRU tiering *)
}

type pending = {
  p_label : string;
  p_gen : int;              (* dropped at drain if the blob was replaced *)
  p_index : int;
  p_data : int64 array;
}

type t = {
  frames : (string, frame) Hashtbl.t;
  blobs : (string, blob) Hashtbl.t;
  queue : pending Queue.t;
  mutable gen : int;
  mutable tick : int;          (* access clock for blob LRU eviction *)
  lock : Mutex.t;
}

(* caller holds the lock *)
let touch_blob t bl =
  t.tick <- t.tick + 1;
  bl.bl_tick <- t.tick

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v -> Mutex.unlock t.lock; v
  | exception e -> Mutex.unlock t.lock; raise e

let create () =
  { frames = Hashtbl.create 1024;
    blobs = Hashtbl.create 16;
    queue = Queue.create ();
    gen = 0;
    tick = 0;
    lock = Mutex.create () }

(* -- serialization of one page ------------------------------------------ *)

let serialize_page (data : int64 array) =
  let b = Bytes.create page_bytes in
  for w = 0 to page_words - 1 do
    Bytes.set_int64_le b (w * 8) data.(w)
  done;
  b

let deserialize_page (b : Bytes.t) =
  let data = Array.make page_words 0L in
  for w = 0 to page_words - 1 do
    data.(w) <- Bytes.get_int64_le b (w * 8)
  done;
  data

let page_hash data = Digest.bytes (serialize_page data)

(* -- refcount plumbing (caller holds the lock) -------------------------- *)

let release_frame t hash =
  match Hashtbl.find_opt t.frames hash with
  | None -> ()
  | Some fr ->
      fr.fr_refs <- fr.fr_refs - 1;
      if fr.fr_refs <= 0 then Hashtbl.remove t.frames hash

let release_blob t bl =
  List.iter (fun (_, hash) -> release_frame t hash) bl.bl_entries;
  Hashtbl.remove t.blobs bl.bl_label

(* -- write path --------------------------------------------------------- *)

let write t ~label ~pages =
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.blobs label with
      | Some old -> release_blob t old
      | None -> ());
      t.gen <- t.gen + 1;
      let bl =
        { bl_label = label; bl_gen = t.gen; bl_entries = [];
          bl_pending = List.length pages; bl_tick = 0 }
      in
      touch_blob t bl;
      Hashtbl.replace t.blobs label bl;
      List.iter
        (fun (p_index, p_data) ->
          Queue.add { p_label = label; p_gen = t.gen; p_index; p_data } t.queue)
        pages;
      Trace.add "storage.pages_enqueued" (List.length pages))

(* queued pages of a deleted blob are dropped lazily at drain time: their
   generation no longer matches any live blob *)
let delete t ~label =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.blobs label with
      | None -> ()
      | Some bl -> release_blob t bl)

(* hash/store one queued page; caller holds the lock.  Returns false when
   the page's blob was replaced or deleted after it was enqueued. *)
let spool_one t (p : pending) =
  match Hashtbl.find_opt t.blobs p.p_label with
  | Some bl when bl.bl_gen = p.p_gen ->
      let bytes = serialize_page p.p_data in
      let hash = Digest.bytes bytes in
      (match Hashtbl.find_opt t.frames hash with
      | Some fr ->
          fr.fr_refs <- fr.fr_refs + 1;
          Trace.incr "storage.pages_deduped"
      | None ->
          Hashtbl.replace t.frames hash { fr_bytes = bytes; fr_refs = 1 };
          Trace.add "storage.bytes_written" page_bytes);
      bl.bl_entries <- (p.p_index, hash) :: bl.bl_entries;
      bl.bl_pending <- bl.bl_pending - 1;
      true
  | _ -> false

(* caller holds the lock *)
let drain_locked ?max_pages t =
  let budget = match max_pages with None -> max_int | Some n -> n in
  let stored = ref 0 in
  while !stored < budget && not (Queue.is_empty t.queue) do
    if spool_one t (Queue.pop t.queue) then incr stored
  done;
  if !stored > 0 then begin
    Trace.add "storage.pages_spooled" !stored;
    Trace.incr "storage.drains"
  end;
  !stored

let drain ?max_pages t = with_lock t (fun () -> drain_locked ?max_pages t)
let flush t = ignore (drain t)
let pending t = with_lock t (fun () -> Queue.length t.queue)

(* spool every queued page belonging to [label] (other labels stay queued);
   caller holds the lock.  Readers call this so they never see a torn blob. *)
let settle_label t label =
  match Hashtbl.find_opt t.blobs label with
  | None -> ()
  | Some bl when bl.bl_pending = 0 -> ()
  | Some _ ->
      Trace.incr "storage.read_flushes";
      let rest = Queue.create () in
      let n = ref 0 in
      Queue.iter
        (fun p ->
          if String.equal p.p_label label then begin
            if spool_one t p then incr n
          end
          else Queue.add p rest)
        t.queue;
      Queue.clear t.queue;
      Queue.transfer rest t.queue;
      if !n > 0 then Trace.add "storage.pages_spooled" !n

(* -- read path ---------------------------------------------------------- *)

(* walk a manifest validating each frame; [consume] sees the (possibly
   damaged) serialized bytes of every page that passes.  Caller holds the
   lock. *)
let validate_entries t ~label ~damage ~consume entries =
  let rec go pos = function
    | [] -> Ok ()
    | (index, hash) :: rest -> (
        match Hashtbl.find_opt t.frames hash with
        | None -> Error (Missing_page { label; index; hash })
        | Some fr ->
            let bytes =
              match damage with
              | None -> fr.fr_bytes
              | Some f -> f pos (Bytes.copy fr.fr_bytes)
            in
            if Bytes.length bytes <> page_bytes then begin
              Trace.incr "storage.checksum_failures";
              Error
                (Truncated_page
                   { label; index; hash; expected = page_bytes;
                     got = Bytes.length bytes })
            end
            else if not (String.equal (Digest.bytes bytes) hash) then begin
              Trace.incr "storage.checksum_failures";
              Error (Corrupt_page { label; index; hash })
            end
            else begin
              consume index bytes;
              go (pos + 1) rest
            end)
  in
  go 0 entries

let read ?damage t ~label =
  with_lock t (fun () ->
      Trace.incr "storage.reads";
      settle_label t label;
      match Hashtbl.find_opt t.blobs label with
      | None -> Error (Missing_blob { label })
      | Some bl ->
          touch_blob t bl;
          let acc = ref [] in
          let consume index bytes =
            acc := (index, deserialize_page bytes) :: !acc
          in
          (match
             validate_entries t ~label ~damage ~consume
               (List.rev bl.bl_entries)
           with
          | Ok () -> Ok (List.rev !acc)
          | Error e -> Error e))

let validate t ~label =
  with_lock t (fun () ->
      settle_label t label;
      match Hashtbl.find_opt t.blobs label with
      | None -> Error (Missing_blob { label })
      | Some bl ->
          touch_blob t bl;
          validate_entries t ~label ~damage:None
            ~consume:(fun _ _ -> ())
            (List.rev bl.bl_entries))

let contains t ~label = with_lock t (fun () -> Hashtbl.mem t.blobs label)

let manifest t ~label =
  with_lock t (fun () ->
      settle_label t label;
      match Hashtbl.find_opt t.blobs label with
      | None -> None
      | Some bl ->
          touch_blob t bl;
          Some (List.rev bl.bl_entries))

let frame_refs t ~hash =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.frames hash with
      | None -> None
      | Some fr -> Some fr.fr_refs)

(* -- accounting --------------------------------------------------------- *)

let labels t =
  with_lock t (fun () ->
      Hashtbl.fold (fun l _ acc -> l :: acc) t.blobs []
      |> List.sort String.compare)

let blob_pages bl = List.length bl.bl_entries + bl.bl_pending

let blob_bytes t ~label =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.blobs label with
      | None -> None
      | Some bl -> Some (blob_pages bl * page_bytes))

let total_bytes t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ bl acc -> acc + (blob_pages bl * page_bytes))
        t.blobs 0)

let physical_bytes t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ fr acc -> acc + Bytes.length fr.fr_bytes) t.frames 0)

type accounting = {
  ac_blobs : int;
  ac_pages : int;
  ac_logical_bytes : int;
  ac_frames : int;
  ac_physical_bytes : int;
  ac_shared_bytes : int;
  ac_dedup_saved_bytes : int;
  ac_pending_pages : int;
}

(* digest -> distinct labels referencing it; caller holds the lock *)
let frame_owners t =
  let owners = Hashtbl.create (max 16 (Hashtbl.length t.frames)) in
  Hashtbl.iter
    (fun label bl ->
      List.iter
        (fun (_, hash) ->
          let cur =
            match Hashtbl.find_opt owners hash with Some l -> l | None -> []
          in
          if not (List.exists (String.equal label) cur) then
            Hashtbl.replace owners hash (label :: cur))
        bl.bl_entries)
    t.blobs;
  owners

let is_shared owners hash =
  match Hashtbl.find_opt owners hash with
  | Some (_ :: _ :: _) -> true
  | _ -> false

let accounting t =
  with_lock t (fun () ->
      let owners = frame_owners t in
      let shared = ref 0 and physical = ref 0 in
      Hashtbl.iter
        (fun hash fr ->
          physical := !physical + Bytes.length fr.fr_bytes;
          if is_shared owners hash then
            shared := !shared + Bytes.length fr.fr_bytes)
        t.frames;
      let pages, logical =
        Hashtbl.fold
          (fun _ bl (p, b) ->
            (p + blob_pages bl, b + (blob_pages bl * page_bytes)))
          t.blobs (0, 0)
      in
      { ac_blobs = Hashtbl.length t.blobs;
        ac_pages = pages;
        ac_logical_bytes = logical;
        ac_frames = Hashtbl.length t.frames;
        ac_physical_bytes = !physical;
        ac_shared_bytes = !shared;
        ac_dedup_saved_bytes = logical - !physical;
        ac_pending_pages = Queue.length t.queue })

type blob_accounting = {
  ba_label : string;
  ba_pages : int;
  ba_bytes : int;
  ba_shared_bytes : int;
  ba_exclusive_bytes : int;
}

let blob_accounting t =
  with_lock t (fun () ->
      let owners = frame_owners t in
      Hashtbl.fold
        (fun label bl acc ->
          let shared = ref 0 and exclusive = ref 0 in
          List.iter
            (fun (_, hash) ->
              let sz =
                match Hashtbl.find_opt t.frames hash with
                | Some fr -> Bytes.length fr.fr_bytes
                | None -> page_bytes
              in
              if is_shared owners hash then shared := !shared + sz
              else exclusive := !exclusive + sz)
            bl.bl_entries;
          { ba_label = label;
            ba_pages = blob_pages bl;
            ba_bytes = blob_pages bl * page_bytes;
            ba_shared_bytes = !shared;
            ba_exclusive_bytes = !exclusive }
          :: acc)
        t.blobs []
      |> List.sort (fun a b -> String.compare a.ba_label b.ba_label))

(* -- tiering / eviction ------------------------------------------------- *)

let physical_bytes_locked t =
  Hashtbl.fold (fun _ fr acc -> acc + Bytes.length fr.fr_bytes) t.frames 0

(* Evict whole blobs, least-recently-touched first (ties broken by label
   so the result is deterministic), until the deduped footprint fits the
   budget.  Refcounts do the tiering work: dropping a blob only reclaims
   the frames no surviving blob references, so hot shared pages (the
   boot-common image) stay resident while cold exclusive snapshots are
   the ones that actually free bytes. *)
let evict_to t ~budget_bytes =
  with_lock t (fun () ->
      ignore (drain_locked t);
      let evicted = ref [] in
      let continue_ = ref true in
      while !continue_ && physical_bytes_locked t > budget_bytes do
        let victim =
          Hashtbl.fold
            (fun _ bl acc ->
              match acc with
              | Some best
                when (best.bl_tick, best.bl_label) <= (bl.bl_tick, bl.bl_label)
                -> acc
              | _ -> Some bl)
            t.blobs None
        in
        match victim with
        | None -> continue_ := false
        | Some bl ->
            release_blob t bl;
            Trace.incr "storage.blob_evictions";
            evicted := bl.bl_label :: !evicted
      done;
      List.rev !evicted)

(* -- string framing ------------------------------------------------------

   Frame an arbitrary string into whole store pages: an 8-byte LE length
   prefix, then the payload, zero-padded.  The genome bank and the search
   checkpoints both persist text payloads this way, inheriting the store's
   per-page checksums and deterministic on-disk layout. *)

let pages_of_string text =
  let payload = Bytes.of_string text in
  let framed_len = 8 + Bytes.length payload in
  let n_pages = (framed_len + page_bytes - 1) / page_bytes in
  let n_pages = max n_pages 1 in
  let image = Bytes.make (n_pages * page_bytes) '\000' in
  Bytes.set_int64_le image 0 (Int64.of_int (Bytes.length payload));
  Bytes.blit payload 0 image 8 (Bytes.length payload);
  List.init n_pages (fun p ->
      ( p,
        Array.init page_words (fun w ->
            Bytes.get_int64_le image ((p * page_bytes) + (w * 8))) ))

let string_of_pages pages =
  let pages = List.sort (fun (a, _) (b, _) -> compare a b) pages in
  let n_pages = List.length pages in
  if List.exists (fun (_, words) -> Array.length words <> page_words) pages
  then Error "bad page geometry"
  else begin
    let image = Bytes.create (n_pages * page_bytes) in
    List.iteri
      (fun p (_, words) ->
        Array.iteri
          (fun w word ->
            Bytes.set_int64_le image ((p * page_bytes) + (w * 8)) word)
          words)
      pages;
    if Bytes.length image < 8 then Error "empty image"
    else
      let len = Int64.to_int (Bytes.get_int64_le image 0) in
      if len < 0 || len > Bytes.length image - 8 then
        Error "bad payload length"
      else Ok (Bytes.sub_string image 8 len)
  end

(* -- damage hooks ------------------------------------------------------- *)

let corrupt t ~hash ~byte =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.frames hash with
      | None -> ()
      | Some fr ->
          let len = Bytes.length fr.fr_bytes in
          if len > 0 then begin
            let i = ((byte mod len) + len) mod len in
            Bytes.set fr.fr_bytes i
              (Char.chr (Char.code (Bytes.get fr.fr_bytes i) lxor 0xFF))
          end)

let truncate t ~hash ~keep =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.frames hash with
      | None -> ()
      | Some fr ->
          let keep = max 0 (min keep (Bytes.length fr.fr_bytes)) in
          fr.fr_bytes <- Bytes.sub fr.fr_bytes 0 keep)

(* -- on-disk format -----------------------------------------------------

   magic line, then a frame section and a blob section:

     REPRO-STORE v1\n
     int: frame count
     per frame:  int hash_len, hash bytes, int data_len, data bytes
     int: blob count
     per blob:   int label_len, label bytes, int entry count,
                 per entry: int page index, int hash_len, hash bytes

   Integers via output_binary_int (4-byte big-endian).  Frames are written
   sorted by digest and blobs by label, so the byte stream is a
   deterministic function of the store's contents.  Refcounts are not
   stored; [load] recomputes them from the manifests. *)

let magic = "REPRO-STORE v1\n"

let out_string oc s =
  output_binary_int oc (String.length s);
  output_string oc s

let save t file =
  with_lock t (fun () ->
      ignore (drain_locked t);
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc magic;
          let frames =
            Hashtbl.fold (fun h fr acc -> (h, fr) :: acc) t.frames []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          output_binary_int oc (List.length frames);
          List.iter
            (fun (hash, fr) ->
              out_string oc hash;
              out_string oc (Bytes.to_string fr.fr_bytes))
            frames;
          let blobs =
            Hashtbl.fold (fun _ bl acc -> bl :: acc) t.blobs []
            |> List.sort (fun a b -> String.compare a.bl_label b.bl_label)
          in
          output_binary_int oc (List.length blobs);
          List.iter
            (fun bl ->
              out_string oc bl.bl_label;
              let entries = List.rev bl.bl_entries in
              output_binary_int oc (List.length entries);
              List.iter
                (fun (index, hash) ->
                  output_binary_int oc index;
                  out_string oc hash)
                entries)
            blobs))

exception Short_file of string

let in_int ic what =
  try input_binary_int ic with End_of_file -> raise (Short_file what)

let in_string ic what =
  let len = in_int ic what in
  if len < 0 || len > 16 * 1024 * 1024 then
    raise (Short_file (what ^ " (implausible length)"));
  try really_input_string ic len with End_of_file -> raise (Short_file what)

let load file =
  let t = create () in
  let warnings = ref [] in
  let warn fmt =
    Printf.ksprintf
      (fun s ->
        Trace.incr "storage.load_warnings";
        warnings := s :: !warnings)
      fmt
  in
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         let m =
           try really_input_string ic (String.length magic)
           with End_of_file -> raise (Short_file "magic")
         in
         if not (String.equal m magic) then raise (Short_file "bad magic");
         let nframes = in_int ic "frame count" in
         for _ = 1 to nframes do
           let hash = in_string ic "frame hash" in
           let data = in_string ic "frame data" in
           (* a frame whose stored bytes fail their own checksum is damage
              on disk: drop it; blobs referencing it degrade to
              Missing_page and quarantine downstream *)
           if String.equal (Digest.string data) hash then
             Hashtbl.replace t.frames hash
               { fr_bytes = Bytes.of_string data; fr_refs = 0 }
           else
             warn "frame %s dropped: stored bytes fail checksum"
               (Digest.to_hex hash)
         done;
         let nblobs = in_int ic "blob count" in
         for _ = 1 to nblobs do
           let label = in_string ic "blob label" in
           let nentries = in_int ic "entry count" in
           let entries = ref [] in
           for _ = 1 to nentries do
             let index = in_int ic "entry index" in
             let hash = in_string ic "entry hash" in
             entries := (index, hash) :: !entries
           done;
           t.gen <- t.gen + 1;
           Hashtbl.replace t.blobs label
             { bl_label = label; bl_gen = t.gen; bl_entries = !entries;
               bl_pending = 0; bl_tick = 0 }
         done
       with Short_file what -> warn "store file truncated at %s" what);
      (* recompute refcounts from the surviving manifests; reclaim frames
         nothing references *)
      Hashtbl.iter
        (fun _ bl ->
          List.iter
            (fun (_, hash) ->
              match Hashtbl.find_opt t.frames hash with
              | Some fr -> fr.fr_refs <- fr.fr_refs + 1
              | None -> ())
            bl.bl_entries)
        t.blobs;
      let orphans =
        Hashtbl.fold
          (fun h fr acc -> if fr.fr_refs = 0 then h :: acc else acc)
          t.frames []
      in
      List.iter
        (fun h ->
          warn "frame %s dropped: referenced by no blob" (Digest.to_hex h);
          Hashtbl.remove t.frames h)
        orphans;
      (t, List.rev !warnings))
