module Trace = Repro_util.Trace

let page_size = 4096
let words_per_page = page_size / 8

type region_kind = Rheap | Rstatics | Rruntime | Rcode | Rgc_aux | Rstack

type mapping = {
  map_base : int;
  map_npages : int;
  map_kind : region_kind;
  map_name : string;
}

type stats = {
  mutable n_faults : int;
  mutable n_cow : int;
  mutable n_reads : int;
  mutable n_writes : int;
}

(* A physical frame, shareable between address spaces after fork/clone.
   Refcounts are plain ints: the sharing discipline (one snapshot template
   per domain, clones live and die on the domain that made them) keeps every
   frame confined to a single domain, so no atomics are needed. *)
type frame = { data : int64 array; mutable refcount : int }

(* The one frame every never-written page shares.  Its data is all-zero and
   immutable (the write path always un-shares before storing), so it is safe
   to share across domains; its refcount is never touched. *)
let zero_frame = { data = Array.make words_per_page 0L; refcount = 0 }
let some_zero_frame = Some zero_frame

(* Flat per-mapping page table: one contiguous slot array per mapping, so a
   page access is mapping-lookup + array index instead of a Hashtbl probe.
   [mt_protected] is allocated lazily — only capture ever protects pages, so
   replay clones never pay for it. *)
type mtbl = {
  mt_map : mapping;
  mt_first : int;                         (* first page index *)
  mt_frames : frame option array;         (* one slot per page *)
  mutable mt_protected : Bytes.t option;  (* '\001' = next access faults *)
}

type t = {
  mutable tbls : mtbl array;              (* ascending by base *)
  mutable last : mtbl option;             (* one-entry mapping cache *)
  mutable handler : (int -> unit) option;
  st : stats;
  mutable dirty : int list;               (* pages privatized in this space *)
  mutable n_mat : int;                    (* materialized (non-None) slots *)
  origin : t option;                      (* the clone source, if any *)
}

let create () = {
  tbls = [||];
  last = None;
  handler = None;
  st = { n_faults = 0; n_cow = 0; n_reads = 0; n_writes = 0 };
  dirty = [];
  n_mat = 0;
  origin = None;
}

let page_of_addr addr = addr / page_size
let addr_of_page page = page * page_size

let overlaps m base npages =
  let e1 = m.map_base + (m.map_npages * page_size) in
  let e2 = base + (npages * page_size) in
  base < e1 && m.map_base < e2

let map t ~base ~npages ~kind ~name =
  if base mod page_size <> 0 then invalid_arg "Mem.map: unaligned base";
  if npages <= 0 then invalid_arg "Mem.map: empty mapping";
  Array.iter
    (fun mt ->
       if overlaps mt.mt_map base npages then
         invalid_arg
           (Printf.sprintf "Mem.map: %s overlaps %s" name mt.mt_map.map_name))
    t.tbls;
  let m = { map_base = base; map_npages = npages; map_kind = kind; map_name = name } in
  let mt =
    { mt_map = m; mt_first = base / page_size;
      mt_frames = Array.make npages None; mt_protected = None }
  in
  let tbls = Array.append t.tbls [| mt |] in
  Array.sort (fun a b -> Int.compare a.mt_first b.mt_first) tbls;
  t.tbls <- tbls

let mappings t = Array.to_list (Array.map (fun mt -> mt.mt_map) t.tbls)
let stats t = t.st

let reset_stats t =
  t.st.n_faults <- 0;
  t.st.n_cow <- 0;
  t.st.n_reads <- 0;
  t.st.n_writes <- 0

let in_tbl mt page =
  let i = page - mt.mt_first in
  i >= 0 && i < mt.mt_map.map_npages

(* Mapping lookup: one-entry cache, then binary search over the (few,
   sorted) mappings. *)
let find_tbl t page =
  match t.last with
  | Some mt when in_tbl mt page -> Some mt
  | _ ->
    let tbls = t.tbls in
    let rec go lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) / 2 in
        let mt = tbls.(mid) in
        if page < mt.mt_first then go lo mid
        else if page >= mt.mt_first + mt.mt_map.map_npages then go (mid + 1) hi
        else begin
          t.last <- Some mt;
          Some mt
        end
    in
    go 0 (Array.length tbls)

let mapping_of_page t page = Option.map (fun mt -> mt.mt_map) (find_tbl t page)
let kind_of_page t page = Option.map (fun m -> m.map_kind) (mapping_of_page t page)

let unmapped_fail op page =
  invalid_arg
    (Printf.sprintf "Mem.%s: unmapped address %#x" op (addr_of_page page))

let tbl_of t page op =
  match find_tbl t page with
  | Some mt -> mt
  | None -> unmapped_fail op page

(* Take the protection fault, if any: run the handler once, then restore
   access so the access can proceed (§3.2 step 3). *)
let check_fault t mt page idx =
  match mt.mt_protected with
  | Some b when Bytes.get b idx <> '\000' ->
    Bytes.set b idx '\000';
    t.st.n_faults <- t.st.n_faults + 1;
    (match t.handler with Some h -> h page | None -> ())
  | Some _ | None -> ()

let fresh_frame () = { data = Array.make words_per_page 0L; refcount = 1 }

let read_word t addr =
  let page = addr / page_size in
  let mt = tbl_of t page "read" in
  let idx = page - mt.mt_first in
  check_fault t mt page idx;
  t.st.n_reads <- t.st.n_reads + 1;
  match mt.mt_frames.(idx) with
  | Some f -> f.data.((addr mod page_size) / 8)
  | None ->
    (* cold read: materialize as the shared zero frame — no allocation *)
    mt.mt_frames.(idx) <- some_zero_frame;
    t.n_mat <- t.n_mat + 1;
    0L

let write_word t addr v =
  let page = addr / page_size in
  let mt = tbl_of t page "write" in
  let idx = page - mt.mt_first in
  check_fault t mt page idx;
  t.st.n_writes <- t.st.n_writes + 1;
  let w = (addr mod page_size) / 8 in
  match mt.mt_frames.(idx) with
  | Some f when f == zero_frame ->
    (* first write to a never-touched page of this space *)
    let nf = fresh_frame () in
    mt.mt_frames.(idx) <- Some nf;
    t.dirty <- page :: t.dirty;
    nf.data.(w) <- v
  | Some f when f.refcount > 1 ->
    (* Copy-on-Write: un-share the frame before modifying it *)
    let copy = { data = Array.copy f.data; refcount = 1 } in
    f.refcount <- f.refcount - 1;
    mt.mt_frames.(idx) <- Some copy;
    t.st.n_cow <- t.st.n_cow + 1;
    t.dirty <- page :: t.dirty;
    Trace.incr "mem.cow_pages";
    copy.data.(w) <- v
  | Some f -> f.data.(w) <- v
  | None ->
    let nf = fresh_frame () in
    mt.mt_frames.(idx) <- Some nf;
    t.n_mat <- t.n_mat + 1;
    t.dirty <- page :: t.dirty;
    nf.data.(w) <- v

let read_int t addr = Int64.to_int (read_word t addr)
let write_int t addr v = write_word t addr (Int64.of_int v)
let read_float t addr = Int64.float_of_bits (read_word t addr)
let write_float t addr v = write_word t addr (Int64.bits_of_float v)

let protect t ~page =
  match find_tbl t page with
  | None -> ()
  | Some mt ->
    let idx = page - mt.mt_first in
    if mt.mt_frames.(idx) <> None then begin
      let b =
        match mt.mt_protected with
        | Some b -> b
        | None ->
          let b = Bytes.make mt.mt_map.map_npages '\000' in
          mt.mt_protected <- Some b;
          b
      in
      Bytes.set b idx '\001'
    end

let unprotect t ~page =
  match find_tbl t page with
  | Some mt ->
    (match mt.mt_protected with
     | Some b -> Bytes.set b (page - mt.mt_first) '\000'
     | None -> ())
  | None -> ()

let protected t ~page =
  match find_tbl t page with
  | Some mt ->
    (match mt.mt_protected with
     | Some b -> Bytes.get b (page - mt.mt_first) <> '\000'
     | None -> false)
  | None -> false

let set_fault_handler t h = t.handler <- h

(* Duplicate the page table of [t] into a fresh space sharing every physical
   frame.  [on_zero] decides what a zero-frame slot becomes in the child
   (fork upgrades them to real shared frames to mirror the historical
   Hashtbl behaviour; clone keeps sharing the zero frame). *)
let dup_tbls t ~on_zero =
  Array.map
    (fun mt ->
       let n = Array.length mt.mt_frames in
       let frames = Array.make n None in
       for i = 0 to n - 1 do
         match mt.mt_frames.(i) with
         | None -> ()
         | Some f when f == zero_frame -> frames.(i) <- on_zero mt i
         | Some f ->
           f.refcount <- f.refcount + 1;
           frames.(i) <- mt.mt_frames.(i)
       done;
       { mt with mt_frames = frames; mt_protected = None })
    t.tbls

let fork t =
  let tbls =
    dup_tbls t ~on_zero:(fun mt i ->
        (* a cold-read page becomes a real zero-filled frame shared by
           parent and child, exactly as if the read had materialized it *)
        let nf = { data = Array.make words_per_page 0L; refcount = 2 } in
        mt.mt_frames.(i) <- Some nf;
        Some nf)
  in
  { tbls; last = None; handler = None;
    st = { n_faults = 0; n_cow = 0; n_reads = 0; n_writes = 0 };
    dirty = []; n_mat = t.n_mat; origin = None }

let clone t =
  let tbls = dup_tbls t ~on_zero:(fun _ _ -> some_zero_frame) in
  Trace.add "mem.clone_pages" t.n_mat;
  { tbls; last = None; handler = None;
    st = { n_faults = 0; n_cow = 0; n_reads = 0; n_writes = 0 };
    dirty = []; n_mat = t.n_mat; origin = Some t }

let cloned_from t = t.origin

let drop t =
  Array.iter
    (fun mt ->
       Array.iteri
         (fun i slot ->
            (match slot with
             | Some f when f != zero_frame -> f.refcount <- f.refcount - 1
             | Some _ | None -> ());
            mt.mt_frames.(i) <- None)
         mt.mt_frames)
    t.tbls;
  t.tbls <- [||];
  t.last <- None;
  t.dirty <- [];
  t.n_mat <- 0

let install_page t ~page data =
  if Array.length data <> words_per_page then
    invalid_arg "Mem.install_page: bad image size";
  let mt = tbl_of t page "install_page" in
  let idx = page - mt.mt_first in
  (match mt.mt_frames.(idx) with
   | None -> t.n_mat <- t.n_mat + 1
   | Some f when f != zero_frame -> f.refcount <- f.refcount - 1
   | Some _ -> ());
  (match mt.mt_protected with
   | Some b -> Bytes.set b idx '\000'
   | None -> ());
  mt.mt_frames.(idx) <- Some { data = Array.copy data; refcount = 1 };
  t.dirty <- page :: t.dirty

let page_data t ~page =
  match find_tbl t page with
  | None -> None
  | Some mt ->
    (match mt.mt_frames.(page - mt.mt_first) with
     | Some f -> Some (Array.copy f.data)
     | None -> None)

let page_words t ~page =
  match find_tbl t page with
  | None -> None
  | Some mt ->
    (match mt.mt_frames.(page - mt.mt_first) with
     | Some f -> Some f.data
     | None -> None)

let touched_pages t ~kind =
  let acc = ref [] in
  for ti = Array.length t.tbls - 1 downto 0 do
    let mt = t.tbls.(ti) in
    if mt.mt_map.map_kind = kind then
      for i = Array.length mt.mt_frames - 1 downto 0 do
        if mt.mt_frames.(i) <> None then acc := (mt.mt_first + i) :: !acc
      done
  done;
  !acc

let dirty_pages t ~kind =
  List.sort_uniq Int.compare
    (List.filter (fun page -> kind_of_page t page = Some kind) t.dirty)

let refcount t ~page =
  match find_tbl t page with
  | None -> None
  | Some mt ->
    (match mt.mt_frames.(page - mt.mt_first) with
     | Some f when f != zero_frame -> Some f.refcount
     | Some _ | None -> None)

let shares_frame a b ~page =
  match page_words a ~page, page_words b ~page with
  | Some fa, Some fb -> fa == fb
  | _ -> false

let word_count t = t.n_mat * words_per_page
