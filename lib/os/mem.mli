(** Paged virtual address space with protection, fault hooks and
    fork/Copy-on-Write — the kernel facilities the capture mechanism
    repurposes (paper §3.2).

    Addresses are byte addresses; accesses are word (8-byte) granular.
    Pages are 4 KiB.  A page that has never been touched reads as zero.

    The page table is flat: one contiguous slot array per mapping, fronted
    by a one-entry mapping cache, so a load/store is an array index rather
    than a hash probe.  Never-written pages share one immutable zero frame
    and cost no allocation to read.

    [fork] produces a second address space sharing all physical pages; the
    first write to a shared page from either side copies it (Copy-on-Write),
    and the copy event is counted.  [clone] is the replay-oriented variant:
    an O(page-table) snapshot of an immutable {e template} space whose
    privatized ("dirty") pages are tracked, so verification can scan only
    the pages a replay actually wrote (still physically shared pages are
    equal to the template by construction).  [protect] removes access to a
    page; the next access triggers the installed fault handler (which
    typically records the page and restores access), mirroring [mprotect] +
    SIGSEGV handling.

    {b Domain safety.}  Frame refcounts are plain ints.  The sharing
    discipline that keeps this safe: a space and every space sharing frames
    with it (its forks, its clones, its template) must be used from a single
    domain.  [Repro_capture.Snapshot.template] maintains one template per
    domain for exactly this reason.  The global zero frame is immutable and
    its refcount is never touched, so sharing it across domains is safe. *)

type t

type region_kind =
  | Rheap        (** application heap: captured on demand *)
  | Rstatics     (** static fields: captured on demand *)
  | Rruntime     (** runtime immutable objects: boot-common, captured once per boot *)
  | Rcode        (** memory-mapped code/files: never captured, only paths logged *)
  | Rgc_aux      (** GC auxiliary structures: cannot be protected, always stored *)
  | Rstack       (** stack pages: cannot be protected, always stored *)

type mapping = {
  map_base : int;          (** byte address of first page *)
  map_npages : int;
  map_kind : region_kind;
  map_name : string;
}

type stats = {
  mutable n_faults : int;        (** protection faults taken *)
  mutable n_cow : int;           (** pages copied by Copy-on-Write *)
  mutable n_reads : int;
  mutable n_writes : int;
}

val page_size : int
(** 4096 bytes. *)

val words_per_page : int

val create : unit -> t

val map : t -> base:int -> npages:int -> kind:region_kind -> name:string -> unit
(** Add a mapping.  Overlapping mappings are a programming error.
    @raise Invalid_argument on overlap or unaligned base. *)

val mappings : t -> mapping list
(** The /proc/self/maps view: every mapping in ascending address order. *)

val stats : t -> stats
val reset_stats : t -> unit

val read_word : t -> int -> int64
(** @raise Fault-handler effects first if the page is protected.
    @raise Invalid_argument if the address is unmapped. *)

val write_word : t -> int -> int64 -> unit

val read_int : t -> int -> int
val write_int : t -> int -> int -> unit
val read_float : t -> int -> float
val write_float : t -> int -> float -> unit

val page_of_addr : int -> int
(** Page index (address / page size). *)

val addr_of_page : int -> int

val kind_of_page : t -> int -> region_kind option
(** Kind of the mapping containing the page, if mapped. *)

val protect : t -> page:int -> unit
(** Remove access: the next read or write faults.  No effect on unmapped or
    never-touched pages (they are protected anyway when materialized). *)

val unprotect : t -> page:int -> unit

val protected : t -> page:int -> bool

val set_fault_handler : t -> (int -> unit) option -> unit
(** Handler receives the faulting page index *before* the access proceeds.
    The handler runs once per fault; access permission is restored
    automatically after the handler returns (matching the capture handler's
    behaviour in §3.2 step 3). *)

val fork : t -> t
(** Copy-on-Write clone of the address space.  The clone has no protection,
    no fault handler and fresh stats. *)

val clone : t -> t
(** Copy-on-Write clone optimized for replay: shares every frame of the
    source (the {e template}), copies only the page table, and starts an
    empty dirty set.  Cost is O(mapped pages) pointer copies plus one
    refcount bump per materialized page — no 4 KiB page copies.  Bumps the
    [mem.clone_pages] trace counter by the number of shared pages. *)

val cloned_from : t -> t option
(** The space this one was [clone]d from, if any ([fork] children return
    [None]). *)

val dirty_pages : t -> kind:region_kind -> int list
(** Pages of [kind] privatized in {e this} space since it was created or
    cloned — i.e. every page whose contents may differ from the clone
    source.  Sorted ascending, duplicate-free.  Pages still physically
    sharing the source's frame are never reported. *)

val drop : t -> unit
(** Release the space's frame references (refcount decrements) and empty
    its page table.  The space must not be used afterwards; useful to keep
    refcounts exact in long clone chains and in tests. *)

val refcount : t -> page:int -> int option
(** Sharing count of the physical frame backing [page]: [Some rc] for a
    real frame, [None] for unmapped, never-touched, or zero-frame pages. *)

val shares_frame : t -> t -> page:int -> bool
(** Whether the two spaces are backed by the same physical frame at
    [page] (including the shared zero frame). *)

val install_page : t -> page:int -> int64 array -> unit
(** Bulk-restore a page image (the replay loader's page placement).  The
    data is copied; protection is cleared.  @raise Invalid_argument if the
    page is unmapped or the image is not page-sized. *)

val page_data : t -> page:int -> int64 array option
(** Current contents of a materialized page (a copy); [None] if the page was
    never touched in this address space. *)

val page_words : t -> page:int -> int64 array option
(** Like {!page_data} but returns the live backing array without copying.
    Callers must treat it as read-only; writing through it would corrupt
    frames shared with other spaces.  For verification scans. *)

val touched_pages : t -> kind:region_kind -> int list
(** Materialized (ever-accessed or installed) pages of all mappings of a
    kind, ascending. *)

val word_count : t -> int
(** Total words in materialized pages, a measure of resident size. *)
