(** Content-addressed snapshot page store with cross-snapshot dedup,
    per-page checksums and an idle-priority spooler (paper §3.2/Figure 11).

    The capture mechanism spools the original contents of every recorded
    page to device flash at idle priority; the footprint stays practical
    because pages are {e shared}: boot-common runtime pages are identical
    across applications and must be stored once per boot.  This module
    models that store faithfully:

    - {b Content addressing.}  A stored page ("frame") is keyed by the
      digest of its serialized bytes and refcounted; writing the same page
      content again — from the same blob or from another application's
      capture — stores nothing new.  The digest doubles as the frame's
      checksum.
    - {b Blobs.}  A labeled blob is an ordered manifest of
      [(page index, frame digest)] entries — one blob per capture region
      (program-specific pages) or per app boot image (boot-common pages).
      Replacing or deleting a blob decrements the refcounts of the frames
      it referenced; frames are reclaimed at zero.
    - {b Spooling.}  {!write} only enqueues; {!drain} (bounded) and
      {!flush} perform the actual hashing and storage, modelling the
      idle-priority writer.  {!read} of a blob with pages still queued
      spools those pages through first, so readers never observe a torn
      blob.
    - {b Integrity.}  Every {!read} re-validates each frame against its
      content address: a frame whose bytes are not exactly page-sized is
      reported as truncated, one whose digest no longer matches its key as
      corrupt.  Errors are returned as data (or raised as {!Integrity} by
      the template-materialization path) so the pipeline can quarantine
      the damaged artifact instead of crashing.
    - {b Persistence.}  {!save}/{!load} serialize the store; the load path
      degrades gracefully on partial or damaged files, keeping every
      record that parses and validates, and reporting the rest as
      warnings.

    {b Domain safety.}  Every operation takes the store's internal mutex:
    worker domains materializing replay templates may read concurrently
    with the main domain's idle drains.

    Trace counters (under [storage.*]): [pages_enqueued], [pages_spooled],
    [pages_deduped], [bytes_written], [drains], [reads], [read_flushes],
    [checksum_failures], [load_warnings]. *)

type t

val page_bytes : int
(** Serialized size of one page: {!Repro_os.Mem.page_size} bytes. *)

type error =
  | Missing_blob of { label : string }
  | Missing_page of { label : string; index : int; hash : string }
      (** The manifest references a frame that is no longer present. *)
  | Truncated_page of
      { label : string; index : int; hash : string; expected : int; got : int }
      (** The frame's bytes are shorter (or longer) than one page. *)
  | Corrupt_page of { label : string; index : int; hash : string }
      (** The frame's digest no longer matches its content address. *)

exception Integrity of error
(** Raised by the snapshot-template materialization path
    ({!Repro_capture.Snapshot.template}) when a stored page fails
    validation; the replay loader turns it into a crashed replay that the
    verification net quarantines. *)

val describe : error -> string
(** One-line human-readable rendering (always starts with the label). *)

val create : unit -> t

(** {1 Write path (spooler)} *)

val write : t -> label:string -> pages:(int * int64 array) list -> unit
(** [write t ~label ~pages] replaces the blob under [label]: frames of the
    previous manifest are released and [pages] — [(page index, word
    contents)], caller must not mutate the arrays afterwards — are
    enqueued for spooling.  No hashing happens until {!drain}/{!flush} (or
    a {!read} of this label). *)

val delete : t -> label:string -> unit
(** Drop the blob and release its frames (shared frames survive while any
    other blob references them).  Pages of [label] still queued are
    discarded. *)

val drain : ?max_pages:int -> t -> int
(** Spool up to [max_pages] queued pages (default: all), oldest first:
    serialize, hash, dedup against existing frames, append to the owning
    blob's manifest.  Returns the number of pages actually stored.  The
    pipeline calls this between GA evaluation batches — the idle-priority
    model. *)

val flush : t -> unit
(** [drain] everything. *)

val pending : t -> int
(** Pages enqueued but not yet spooled. *)

(** {1 Read path} *)

val read :
  ?damage:(int -> Bytes.t -> Bytes.t) ->
  t -> label:string -> ((int * int64 array) list, error) result
(** Read a blob back, validating every frame against its content address;
    the first failure is returned.  Pages of this label still queued are
    spooled through first.  [damage], used by the fault-injection net and
    the corruption tests, is applied to a {e copy} of each frame's bytes
    (argument: position within the blob) before validation — so an
    injected single-byte flip or truncation must be caught by the same
    checksum machinery that guards real corruption. *)

val validate : t -> label:string -> (unit, error) result
(** {!read} without materializing the pages. *)

val contains : t -> label:string -> bool

val manifest : t -> label:string -> (int * string) list option
(** The blob's [(page index, frame digest)] entries in page order, after
    spooling its queued pages.  Digests are raw 16-byte strings (hex them
    with [Digest.to_hex]). *)

val page_hash : int64 array -> string
(** Content address a page image would be stored under. *)

val frame_refs : t -> hash:string -> int option
(** Reference count of a frame: the number of manifest entries (across all
    blobs) pointing at it.  [None] once reclaimed. *)

(** {1 Accounting (Figure 11)} *)

val labels : t -> string list
(** All blob labels, sorted. *)

val blob_bytes : t -> label:string -> int option
(** Logical size of a blob: (stored + queued pages) × {!page_bytes}. *)

val total_bytes : t -> int
(** Logical bytes across all blobs — what a store without sharing would
    pay. *)

val physical_bytes : t -> int
(** Bytes actually held after dedup: one copy per distinct frame. *)

type accounting = {
  ac_blobs : int;
  ac_pages : int;              (** manifest entries across all blobs *)
  ac_logical_bytes : int;      (** {!total_bytes} *)
  ac_frames : int;             (** distinct frames *)
  ac_physical_bytes : int;     (** {!physical_bytes} *)
  ac_shared_bytes : int;       (** physical bytes of frames referenced by
                                   two or more distinct blobs — the
                                   boot-common sharing of Figure 11 *)
  ac_dedup_saved_bytes : int;  (** logical - physical *)
  ac_pending_pages : int;
}

val accounting : t -> accounting

type blob_accounting = {
  ba_label : string;
  ba_pages : int;
  ba_bytes : int;             (** logical *)
  ba_shared_bytes : int;      (** its frames also referenced by other blobs *)
  ba_exclusive_bytes : int;   (** frames only this blob references *)
}

val blob_accounting : t -> blob_accounting list
(** One row per blob, sorted by label. *)

(** {1 Tiering / eviction} *)

val evict_to : t -> budget_bytes:int -> string list
(** Evict whole blobs — least-recently-accessed first (write/read/validate/
    manifest all count as access), ties broken by label — until
    {!physical_bytes} is at or under [budget_bytes]; the spool queue is
    drained first so accounting is exact.  Returns the evicted labels in
    eviction order.  Refcounts drive what an eviction actually frees:
    frames shared with surviving blobs (boot-common pages) stay resident,
    so cold exclusive snapshots are evicted preferentially in effect.
    Each eviction bumps the [storage.blob_evictions] counter.  A
    long-running service calls this after checkpoint/bank saves to keep
    thousands of accumulated snapshots inside a flash budget. *)

(** {1 String framing} *)

val pages_of_string : string -> (int * int64 array) list
(** Frame an arbitrary string into whole store pages (8-byte LE length
    prefix, zero padding): the payload a text image (genome bank, search
    checkpoint) hands to {!write} so it inherits per-page checksums and
    the deterministic save layout. *)

val string_of_pages : (int * int64 array) list -> (string, string) result
(** Invert {!pages_of_string} on pages returned by {!read}; [Error]
    describes a malformed frame geometry or length prefix. *)

(** {1 Damage hooks (tests, fault campaigns)} *)

val corrupt : t -> hash:string -> byte:int -> unit
(** Persistently flip one byte of a stored frame (position taken modulo
    the frame's length).  Every subsequent read of any blob referencing
    the frame fails its checksum. *)

val truncate : t -> hash:string -> keep:int -> unit
(** Persistently cut a stored frame to its first [keep] bytes. *)

(** {1 On-disk format} *)

val save : t -> string -> unit
(** Serialize the store (after flushing the spool queue) to [file].  The
    byte layout is deterministic: frames sorted by digest, blobs by
    label. *)

val load : string -> t * string list
(** Rebuild a store from a file written by {!save}.  Partial writes and
    damaged records degrade gracefully: parsing stops at the first
    truncated record, frames whose bytes fail their checksum are dropped,
    manifest entries pointing at missing frames are kept (their blobs
    read back as {!Missing_page} and get quarantined downstream), and
    every such event is reported in the returned warning list. *)
