(* Command-line interface to the reproduction: inspect apps, run them under
   different code versions, capture and replay hot regions, run the full
   replay-based iterative compilation, and regenerate the paper's
   tables/figures. *)

open Cmdliner
module App = Repro_apps.Registry
module B = Repro_dex.Bytecode
module Pipeline = Repro_core.Pipeline
module E = Repro_core.Experiments
module Ga = Repro_search.Ga

let app_conv =
  let parse s =
    match App.find s with
    | Some app -> Ok app
    | None ->
      Error (`Msg (Printf.sprintf "unknown app %S; try `repro list'" s))
  in
  Arg.conv (parse, fun fmt app -> Format.pp_print_string fmt app.App.name)

let app_arg =
  Arg.(required & pos 0 (some app_conv) None & info [] ~docv:"APP")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed.")

let full_arg =
  Arg.(value & flag
       & info [ "full" ]
         ~doc:"Use the paper-scale GA (11 generations x 50 genomes).")

let jobs_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None ->
        Error (`Msg "expected a positive number of worker domains")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt pos_int 1
       & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Evaluate each GA generation on $(docv) worker domains. \
               Results are independent of $(docv).")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
         ~doc:"Disable memoization of repeated genomes and identical \
               binaries (results do not change, only time).")

let no_stage_cache_arg =
  Arg.(value & flag
       & info [ "no-stage-cache" ]
         ~doc:"Disable the staged-compilation cache (memoized per-method \
               pass-prefix IR states keyed by canonical genome prefixes). \
               Results are byte-identical either way — cached prefixes \
               replay their recorded work charges, so even compile-timeout \
               classification is unchanged; only compile time differs.")

let with_stage_cache disabled f =
  if not disabled then f ()
  else begin
    let prev = Repro_lir.Stagecache.enabled () in
    Repro_lir.Stagecache.set_enabled false;
    Fun.protect
      ~finally:(fun () -> Repro_lir.Stagecache.set_enabled prev)
      f
  end

let engine_conv =
  let parse s =
    match Repro_lir.Blockexec.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg "expected `ref' or `fused'")
  in
  Arg.conv
    (parse, fun fmt e ->
       Format.pp_print_string fmt (Repro_lir.Blockexec.engine_name e))

let engine_arg =
  Arg.(value & opt engine_conv Repro_lir.Blockexec.Fused
       & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Replay execution engine: $(b,fused) (block-fused, the \
               default) or $(b,ref) (per-instruction reference). The two \
               are bit-identical in results, cycle counts and search \
               histories; only wall-clock time differs.")

let with_engine engine f =
  let prev = Repro_lir.Blockexec.default_engine () in
  Repro_lir.Blockexec.set_default_engine engine;
  Fun.protect
    ~finally:(fun () -> Repro_lir.Blockexec.set_default_engine prev)
    f

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a pipeline trace and write it to $(docv) as Chrome \
               trace_event JSON (open in chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
         ~doc:"Print a span/counter summary table when the command \
               finishes.")

(* Shared observability wrapper: enable tracing for the command's body,
   then export the trace file and/or summary — also on error exits. *)
let with_trace trace metrics f =
  if trace <> None || metrics then Repro_util.Trace.enable ();
  let finish () =
    (match trace with
     | Some file ->
       Repro_util.Trace.write_chrome file;
       Printf.printf "trace written to %s\n" file
     | None -> ());
    if metrics then Repro_util.Trace.print_summary ()
  in
  Fun.protect ~finally:finish f

(* Cache/worker report for commands that run evaluation pools, plus the
   staged-compilation cache totals right beside it. *)
let print_pool_report () =
  Repro_search.Evalpool.print_stats (Repro_search.Evalpool.cumulative_stats ());
  Repro_lir.Stagecache.print_stats (Repro_lir.Stagecache.stats ())

(* ----------------------------- device store ------------------------- *)

module Storage = Repro_os.Storage
module Snapshot = Repro_capture.Snapshot

let mb bytes = float_of_int bytes /. 1048576.

(* Figure 11-style storage accounting: one row per blob (an app's
   program-specific capture or its boot-common page set), with the bytes
   its frames share with other blobs broken out — the cross-app sharing
   that keeps the paper's footprint at ~5 MB program-specific plus one
   copy of the boot-common pages. *)
let print_storage_table storage =
  Storage.flush storage;
  let rows = Storage.blob_accounting storage in
  Repro_util.Table.print
    ~aligns:[ Repro_util.Table.Left; Repro_util.Table.Right;
              Repro_util.Table.Right; Repro_util.Table.Right;
              Repro_util.Table.Right ]
    ~header:[ "Blob"; "Pages"; "MB"; "Shared MB"; "Exclusive MB" ]
    (List.map
       (fun r ->
          [ r.Storage.ba_label;
            string_of_int r.Storage.ba_pages;
            Repro_util.Table.fmt_f (mb r.Storage.ba_bytes);
            Repro_util.Table.fmt_f (mb r.Storage.ba_shared_bytes);
            Repro_util.Table.fmt_f (mb r.Storage.ba_exclusive_bytes) ])
       rows);
  let ac = Storage.accounting storage in
  Printf.printf
    "store: %d blobs, %d pages; logical %.2f MB stored as %.2f MB \
     (%.2f MB shared across blobs, dedup saves %.2f MB)\n"
    ac.Storage.ac_blobs ac.Storage.ac_pages
    (mb ac.Storage.ac_logical_bytes) (mb ac.Storage.ac_physical_bytes)
    (mb ac.Storage.ac_shared_bytes) (mb ac.Storage.ac_dedup_saved_bytes)

let store_arg =
  Arg.(value & flag
       & info [ "store" ]
         ~doc:"Attach a content-addressed device store for the run: \
               captured pages are spooled to it at idle priority (drained \
               between GA evaluation batches), replay templates \
               materialize from checksum-validated store reads, and a \
               storage accounting table is printed at the end. Results \
               are byte-identical with and without the store.")

(* Attach a fresh device store for the command's body; print the
   accounting table and detach afterwards — also on error exits. *)
let with_store enabled f =
  if not enabled then f ()
  else begin
    let storage = Storage.create () in
    Snapshot.set_store (Some storage);
    Fun.protect
      ~finally:(fun () ->
          print_storage_table storage;
          Snapshot.set_store None;
          Snapshot.invalidate_templates ())
      f
  end

(* --------------------------- fault injection ------------------------ *)

module Faults = Repro_util.Faults

let faults_conv =
  let parse s =
    match Faults.parse_spec s with
    | Ok cfg -> Ok cfg
    | Error msg -> Error (`Msg ("--faults: " ^ msg))
  in
  Arg.conv (parse, fun fmt cfg -> Format.pp_print_string fmt (Faults.spec_string cfg))

let faults_arg =
  Arg.(value & opt (some faults_conv) None
       & info [ "faults" ] ~docv:"SPEC"
         ~doc:"Arm deterministic fault injection for the run: \
               $(docv) is seed=N,rate=FLOAT[,only=p1+p2]. Points: \
               miscompile, replay-collision, replay-truncate, replay-regs, \
               exec-crash, exec-hang, exec-wrong-ret, store-corrupt, \
               store-truncate (the store-* points need --store and damage \
               the snapshot blob on its read path, caught by per-page \
               checksums). Candidate binaries \
               that persistently fail verification are quarantined (worst \
               fitness) and reported in a summary table; results remain \
               byte-identical for every -j/--no-cache combination.")

let print_fault_report cfg =
  Printf.printf "fault injection (%s): %d faults injected\n"
    (Faults.spec_string cfg) (Faults.injected ());
  List.iter
    (fun (p, n) ->
       if n > 0 then Printf.printf "  %-18s %d\n" (Faults.point_name p) n)
    (Faults.injected_by_point ());
  match Pipeline.quarantine_summary () with
  | [] ->
    print_endline
      "quarantine: empty (no binary persistently failed verification)"
  | entries ->
    Printf.printf "quarantine: %d binary(ies) discarded as deterministic \
                   miscompiles\n" (List.length entries);
    Repro_util.Table.print
      ~aligns:[ Repro_util.Table.Left; Repro_util.Table.Left;
                Repro_util.Table.Right ]
      ~header:[ "Binary"; "Verdicts (first; retry)"; "Hits" ]
      (List.map
         (fun e ->
            let key =
              if String.length e.Pipeline.q_binary > 12 then
                String.sub e.Pipeline.q_binary 0 12 ^ "..."
              else e.Pipeline.q_binary
            in
            [ key; e.Pipeline.q_reason; string_of_int e.Pipeline.q_count ])
         entries)

(* Arm the registry for the command's body; report and disarm afterwards —
   also on error exits, so a crashed search still prints its quarantine. *)
let with_faults faults f =
  match faults with
  | None -> f ()
  | Some cfg ->
    Faults.enable cfg;
    Pipeline.reset_quarantine ();
    Fun.protect
      ~finally:(fun () ->
          print_fault_report cfg;
          Faults.disable ())
      f

(* ------------------------------ list ------------------------------- *)

let list_cmd =
  let run () = E.print_table1 () in
  Cmd.v (Cmd.info "list" ~doc:"List the 21 evaluation applications (Table 1).")
    Term.(const run $ const ())

(* ------------------------------ passes ----------------------------- *)

let passes_cmd =
  let run () =
    Repro_util.Table.print
      ~aligns:[ Repro_util.Table.Left; Repro_util.Table.Left;
                Repro_util.Table.Left; Repro_util.Table.Left ]
      ~header:[ "Pass"; "Safe"; "Parameters"; "Description" ]
      (List.map
         (fun p ->
            [ p.Repro_lir.Passes.name;
              (if p.Repro_lir.Passes.safe then "yes" else "NO");
              String.concat ", "
                (List.map
                   (fun pr ->
                      Printf.sprintf "%s:%d..%d" pr.Repro_lir.Passes.pname
                        pr.Repro_lir.Passes.pmin pr.Repro_lir.Passes.pmax)
                   p.Repro_lir.Passes.params);
              p.Repro_lir.Passes.descr ])
         Repro_lir.Passes.catalog)
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"List the LLVM-style optimization pass catalog (the GA's space).")
    Term.(const run $ const ())

(* ------------------------------- run ------------------------------- *)

let version_arg =
  Arg.(value & opt (enum [ ("android", `Android); ("interp", `Interp);
                           ("o0", `O0); ("o3", `O3) ]) `Android
       & info [ "code" ] ~doc:"Code version: android, interp, o0 or o3.")

let run_cmd =
  let run app version seed trace metrics =
    with_trace trace metrics @@ fun () ->
    let dx = App.dexfile app in
    let mids =
      Array.to_list (Array.map (fun m -> m.B.cm_id) dx.B.dx_methods)
    in
    let online =
      match version with
      | `Interp ->
        let ctx = App.build_ctx ~seed app in
        Repro_vm.Interp.install ctx;
        let ret = Repro_vm.Interp.run_main ctx in
        { Pipeline.ctx; profile = Repro_profiler.Profile.of_ctx ctx;
          cycles = ctx.Repro_vm.Exec_ctx.cycles; ret }
      | `Android -> Pipeline.online_run ~seed app
      | `O0 ->
        Pipeline.online_run ~seed
          ~binary:(Repro_lir.Compile.llvm_binary dx Repro_lir.Pipelines.o0 mids)
          app
      | `O3 ->
        Pipeline.online_run ~seed
          ~binary:(Repro_lir.Compile.llvm_binary dx Repro_lir.Pipelines.o3 mids)
          app
    in
    Printf.printf "%s: %d cycles (%.2f simulated ms), result=%s, gc runs=%d\n"
      app.App.name online.Pipeline.cycles
      (Repro_vm.Exec_ctx.elapsed_ms online.Pipeline.ctx)
      (match online.Pipeline.ret with
       | Some v -> Repro_vm.Value.to_string v
       | None -> "()")
      online.Pipeline.ctx.Repro_vm.Exec_ctx.gc_count;
    let io = Buffer.contents online.Pipeline.ctx.Repro_vm.Exec_ctx.io in
    Printf.printf "io: %d bytes%s\n" (String.length io)
      (if String.length io < 200 then ":\n" ^ io else " (truncated)")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an application online under a code version.")
    Term.(const run $ app_arg $ version_arg $ seed_arg $ trace_arg
          $ metrics_arg)

(* ------------------------------- hot ------------------------------- *)

let hot_cmd =
  let run app seed trace metrics =
    with_trace trace metrics @@ fun () ->
    let online = Pipeline.online_run ~seed app in
    let dx = App.dexfile app in
    match Pipeline.hot_region_of app online with
    | None -> print_endline "no replayable hot region found"
    | Some hot ->
      let region = Pipeline.region_methods app hot in
      Printf.printf "hot region: %s\n"
        (B.method_full_name dx.B.dx_methods.(hot));
      Printf.printf "compilable region (%d methods): %s\n" (List.length region)
        (String.concat ", "
           (List.map
              (fun mid -> B.method_full_name dx.B.dx_methods.(mid))
              region));
      print_endline "code breakdown (Figure 8 for this app):";
      List.iter
        (fun (c, f) ->
           Printf.printf "  %-14s %s\n"
             (Repro_profiler.Breakdown.category_name c)
             (Repro_util.Table.fmt_pct f))
        (Repro_profiler.Breakdown.of_profile dx ~region online.Pipeline.profile)
  in
  Cmd.v
    (Cmd.info "hot"
       ~doc:"Profile an app and show its hot region (Algorithm 1).")
    Term.(const run $ app_arg $ seed_arg $ trace_arg $ metrics_arg)

(* ----------------------------- capture ----------------------------- *)

let capture_cmd =
  let run app seed trace metrics =
    with_trace trace metrics @@ fun () ->
    match Pipeline.capture_once ~seed app with
    | None -> print_endline "no replayable hot region: nothing to capture"
    | Some cap ->
      let o = cap.Pipeline.overhead in
      let snap = cap.Pipeline.snapshot in
      Printf.printf "captured %s (method %s) with args [%s]\n"
        app.App.name
        (B.method_full_name
           (App.dexfile app).B.dx_methods.(cap.Pipeline.hot_mid))
        (String.concat "; "
           (List.map Repro_vm.Value.to_string
              snap.Repro_capture.Snapshot.snap_args));
      Printf.printf
        "overhead: fork %.1f ms, preparation %.1f ms, faults+CoW %.1f ms \
         (total %.1f ms; %d faults, %d CoW, %d map entries, %d protected)\n"
        o.Repro_capture.Capture.fork_ms o.Repro_capture.Capture.preparation_ms
        o.Repro_capture.Capture.fault_cow_ms
        (Repro_capture.Capture.total_ms o) o.Repro_capture.Capture.n_faults
        o.Repro_capture.Capture.n_cow o.Repro_capture.Capture.n_map_entries
        o.Repro_capture.Capture.n_protected;
      Printf.printf
        "storage: %.2f MB program-specific, %.2f MB boot-common, %d code files logged\n"
        (float_of_int (Repro_capture.Snapshot.program_bytes snap) /. 1048576.)
        (float_of_int (Repro_capture.Snapshot.common_bytes snap) /. 1048576.)
        (List.length snap.Repro_capture.Snapshot.snap_code_files)
  in
  Cmd.v
    (Cmd.info "capture"
       ~doc:"Capture the app's hot region during an online run (Figure 4).")
    Term.(const run $ app_arg $ seed_arg $ trace_arg $ metrics_arg)

(* ----------------------------- optimize ---------------------------- *)

let corpus_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "expected a corpus size >= 1")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt pos_int 1
       & info [ "corpus" ] ~docv:"K"
         ~doc:"Capture a $(docv)-input corpus and verify every candidate \
               against all of it (cross-input verification). $(docv)=1 is \
               the classic single-capture pipeline; larger $(docv) adds \
               adversarial inputs that retire guard-stripping binaries. \
               Fitness always comes from the primary capture.")

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Crash-safe search: journal every evaluated batch to $(docv) \
               (checksummed store pages, written atomically after each \
               batch). Re-running the same command after a kill resumes \
               from the journal and produces a search history byte-identical \
               to an uninterrupted run, for every -j/--no-cache combination. \
               A damaged or mismatched checkpoint is quarantined and the \
               search restarts cold with a warning.")

let ckpt_abort_arg =
  Arg.(value & opt (some int) None
       & info [ "ckpt-abort" ] ~docv:"N"
         ~doc:"Testing aid: simulate a crash by aborting the process (exit \
               code 3) after $(docv) live evaluation batches, after their \
               checkpoints are on disk. Use with $(b,--checkpoint) to \
               exercise kill/resume.")

let print_session_warnings warnings =
  List.iter (fun w -> Printf.printf "warning: %s\n" w) warnings

let optimize_cmd =
  let run app seed full jobs no_cache no_stage_cache engine trace metrics
      faults store corpus_k checkpoint ckpt_abort =
    with_trace trace metrics @@ fun () ->
    with_engine engine @@ fun () ->
    with_stage_cache no_stage_cache @@ fun () ->
    with_store store @@ fun () ->
    with_faults faults @@ fun () ->
    let cfg = if full then Ga.default_config else Ga.quick_config in
    match Pipeline.capture_corpus ~seed ~k:corpus_k app with
    | None -> print_endline "no replayable hot region: nothing to optimize"
    | Some co ->
      let cap = co.Pipeline.co_primary in
      if co.Pipeline.co_entries <> [] then
        Printf.printf "corpus: %d secondary capture(s): %s\n"
          (List.length co.Pipeline.co_entries)
          (String.concat ", "
             (List.map
                (fun ce -> ce.Pipeline.ce_input.App.in_label)
                co.Pipeline.co_entries));
      let session =
        Pipeline.start_search ~seed:(seed + 13) ~cfg ~jobs
          ~cache:(not no_cache) ~corpus:co.Pipeline.co_entries
          ?checkpoint ?abort_after:ckpt_abort app cap
      in
      print_session_warnings (Pipeline.session_warnings session);
      let opt =
        match
          let rec loop () =
            match Pipeline.search_step session with
            | `Live | `Replayed -> loop ()
            | `Finished r -> r
          in
          loop ()
        with
        | r -> r
        | exception Repro_core.Checkpoint.Injected_abort ->
          Printf.printf
            "aborted after %d live batch(es) (--ckpt-abort); checkpoint %s \
             is resumable\n"
            (Pipeline.session_live_batches session)
            (Option.value checkpoint ~default:"(none)");
          Stdlib.exit 3
      in
      if Pipeline.session_replayed_batches session > 0 then
        Printf.printf "resumed from checkpoint: %d batch(es) replayed, %d \
                       evaluated live\n"
          (Pipeline.session_replayed_batches session)
          (Pipeline.session_live_batches session);
      Printf.printf "replay baselines: Android %.3f ms, LLVM -O3 %.3f ms\n"
        opt.Pipeline.env.Pipeline.android_region_ms
        opt.Pipeline.env.Pipeline.o3_region_ms;
      Printf.printf "GA: %d evaluations%s\n" opt.Pipeline.ga.Ga.evaluations
        (match opt.Pipeline.ga.Ga.halted_early with
         | Some r -> " (halted early: " ^ r ^ ")"
         | None -> "");
      (match opt.Pipeline.best_genome, opt.Pipeline.ga.Ga.best with
       | Some g, Some (_, fit) ->
         Printf.printf "best replay fitness: %.3f ms\nbest genome: %s\n" fit
           (Repro_search.Genome.to_string g)
       | _ -> print_endline "no verified binary found");
      let sp = Pipeline.measure_speedups app opt in
      Printf.printf
        "whole-program speedup over Android: LLVM -O3 %.2fx, LLVM GA %.2fx\n"
        sp.Pipeline.o3_speedup sp.Pipeline.ga_speedup;
      Printf.printf "search digest: %s\n" (Pipeline.search_digest opt);
      print_pool_report ()
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Run the full replay-based iterative compilation (Figure 6).")
    Term.(const run $ app_arg $ seed_arg $ full_arg $ jobs_arg $ no_cache_arg
          $ no_stage_cache_arg $ engine_arg $ trace_arg $ metrics_arg
          $ faults_arg $ store_arg $ corpus_arg $ checkpoint_arg
          $ ckpt_abort_arg)

(* ------------------------------ serve ------------------------------ *)

module Serve = Repro_core.Serve

let serve_apps_arg =
  Arg.(non_empty & pos_all app_conv [] & info [] ~docv:"APP")

let max_active_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "expected a positive number of slots")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some pos_int) None
       & info [ "max-active" ] ~docv:"N"
         ~doc:"Admission control: at most $(docv) searches run \
               concurrently; further submissions queue (bounded) and then \
               bounce. Defaults to the number of requested apps.")

let queue_arg =
  Arg.(value & opt int 16
       & info [ "queue" ] ~docv:"N"
         ~doc:"Backpressure bound: at most $(docv) submissions wait behind \
               the active set before new ones are rejected.")

let ckpt_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint-dir" ] ~docv:"DIR"
         ~doc:"Give every tenant a crash-safe journal at \
               $(docv)/<app>.ckpt. Re-running the same serve command after \
               a kill resumes each search from its journal with a \
               byte-identical history. The directory must exist.")

let serve_cmd =
  let run apps seed full jobs no_cache no_stage_cache engine trace metrics
      max_active queue_capacity ckpt_dir ckpt_abort =
    with_trace trace metrics @@ fun () ->
    with_engine engine @@ fun () ->
    with_stage_cache no_stage_cache @@ fun () ->
    let cfg = if full then Ga.default_config else Ga.quick_config in
    let max_active = Option.value max_active ~default:(List.length apps) in
    let t =
      Serve.create ~jobs ~cache:(not no_cache) ~queue_capacity
        ?abort_after:ckpt_abort ~max_active ()
    in
    Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
    List.iter
      (fun app ->
         let checkpoint =
           Option.map
             (fun dir -> Filename.concat dir (app.App.name ^ ".ckpt"))
             ckpt_dir
         in
         let r = Serve.request ~seed ~cfg ?checkpoint app in
         match Serve.submit t r with
         | `Admitted -> Printf.printf "%s: admitted\n" app.App.name
         | `Queued n -> Printf.printf "%s: queued (position %d)\n" app.App.name n
         | `Rejected -> Printf.printf "%s: rejected (queue full)\n" app.App.name)
      apps;
    (match Serve.drive t with
     | () -> ()
     | exception Repro_core.Checkpoint.Injected_abort ->
       List.iter
         (fun r ->
            Printf.printf "%s: interrupted (%d live batch(es) journaled%s)\n"
              r.Serve.rp_app r.Serve.rp_live_batches
              (match r.Serve.rp_checkpoint with
               | Some f -> " in " ^ f
               | None -> ", no checkpoint"))
         (Serve.reports t);
       Printf.printf
         "serve aborted after %d live batch(es) (--ckpt-abort); re-run the \
          same command to resume\n"
         (Serve.stats t).Serve.st_live_batches;
       Stdlib.exit 3);
    List.iter
      (fun r ->
         print_session_warnings r.Serve.rp_warnings;
         match r.Serve.rp_outcome with
         | `Finished ->
           Printf.printf
             "%s: best %s ms, %d evaluations, %d live + %d replayed \
              batch(es)%s\n  digest %s\n"
             r.Serve.rp_app
             (match r.Serve.rp_best_ms with
              | Some ms -> Printf.sprintf "%.3f" ms
              | None -> "-")
             r.Serve.rp_evaluations r.Serve.rp_live_batches
             r.Serve.rp_replayed_batches
             (if r.Serve.rp_quarantined > 0 then
                Printf.sprintf ", %d quarantined" r.Serve.rp_quarantined
              else "")
             (Option.value r.Serve.rp_digest ~default:"-")
         | `Failed why -> Printf.printf "%s: failed (%s)\n" r.Serve.rp_app why
         | `Unstarted -> Printf.printf "%s: not started\n" r.Serve.rp_app)
      (Serve.reports t);
    let s = Serve.stats t in
    Printf.printf
      "scheduler: %d rounds (%d concurrent), peak %d active, %d live \
       batch(es), fairness spread %.3f, %d rejected\n"
      s.Serve.st_rounds s.Serve.st_concurrent_rounds s.Serve.st_peak_active
      s.Serve.st_live_batches s.Serve.st_fairness_spread s.Serve.st_rejected;
    print_pool_report ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the pipeline as a service: multiplex several apps' \
             searches over one shared worker pool with round-robin \
             fairness, admission control and per-tenant crash-safe \
             checkpoints.")
    Term.(const run $ serve_apps_arg $ seed_arg $ full_arg $ jobs_arg
          $ no_cache_arg $ no_stage_cache_arg $ engine_arg $ trace_arg
          $ metrics_arg $ max_active_arg $ queue_arg $ ckpt_dir_arg
          $ ckpt_abort_arg)

(* ------------------------------ fleet ------------------------------ *)

module Fleet = Repro_fleet.Fleet
module Bank = Repro_fleet.Bank
module Device = Repro_fleet.Device

let devices_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "expected a fleet size >= 1")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt pos_int 100
       & info [ "devices" ] ~docv:"N"
         ~doc:"Simulate a fleet of $(docv) devices. Profiles (installed \
               apps, DVFS noise multiplier, availability schedule) are \
               derived deterministically from the seed.")

let gens_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "expected a generation count >= 1")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some pos_int) None
       & info [ "gens" ] ~docv:"G"
         ~doc:"GA generations (default: the quick config's; with --full, \
               the paper-scale config's).")

let bank_arg =
  Arg.(value & opt (some string) None
       & info [ "bank" ] ~docv:"FILE"
         ~doc:"Persistent cross-device genome bank. Loaded before the \
               search (warm-starting the GA from previous winners for \
               this app, matching device-feature bucket first) and saved \
               back with this search's winner. A corrupted bank file is \
               quarantined and the search starts cold.")

let sched_seed_arg =
  Arg.(value & opt int 0
       & info [ "sched-seed" ] ~docv:"S"
         ~doc:"Shuffle the order in which assigned devices are processed. \
               Results are byte-identical for every $(docv) — the \
               determinism contract the fleet smoke test asserts.")

let fleet_cmd =
  let run app seed full jobs no_cache no_stage_cache engine trace metrics
      devices gens bank_file sched_seed corpus_k =
    with_trace trace metrics @@ fun () ->
    with_engine engine @@ fun () ->
    with_stage_cache no_stage_cache @@ fun () ->
    let ga_base = if full then Ga.default_config else Ga.quick_config in
    let ga_cfg =
      match gens with
      | None -> ga_base
      | Some g -> { ga_base with Ga.generations = g }
    in
    let cfg = { Fleet.default_config with Fleet.ga = ga_cfg } in
    match Pipeline.capture_corpus ~seed ~k:corpus_k app with
    | None -> print_endline "no replayable hot region: nothing to optimize"
    | Some co ->
      let env =
        Pipeline.make_eval_env ~seed:(seed + 1)
          ~corpus:co.Pipeline.co_entries app co.Pipeline.co_primary
      in
      let bank =
        match bank_file with
        | None -> None
        | Some file ->
          let bank, warnings = Bank.load file in
          List.iter (fun w -> Printf.printf "bank warning: %s\n" w) warnings;
          Printf.printf "bank: %d entries loaded from %s\n" (Bank.size bank)
            file;
          Some bank
      in
      let r =
        Fleet.run ~jobs ~cache:(not no_cache) ~sched_seed ?bank
          ~cfg ~seed ~devices env
      in
      Printf.printf "fleet: %d devices (%d with %s installed)\n" r.Fleet.devices
        r.Fleet.capable app.App.name;
      Printf.printf "reference %s\n" (Device.describe (Device.make ~fleet_seed:seed 0));
      let avail = Array.of_list (List.map float_of_int r.Fleet.avail_trace) in
      Printf.printf
        "availability: %.0f-%.0f capable devices online per round \
         (%d rounds, %d rescued by whole-fleet fallback)\n"
        (Array.fold_left min infinity avail)
        (Array.fold_left max neg_infinity avail)
        r.Fleet.ticks r.Fleet.empty_rounds;
      Printf.printf "replay baselines: Android %.3f ms, LLVM -O3 %.3f ms\n"
        env.Pipeline.android_region_ms env.Pipeline.o3_region_ms;
      Printf.printf "GA: %d evaluations, %d device samples%s\n"
        r.Fleet.ga.Ga.evaluations r.Fleet.fleet_samples
        (match r.Fleet.ga.Ga.halted_early with
         | Some reason -> " (halted early: " ^ reason ^ ")"
         | None -> "");
      if r.Fleet.bank_seeds > 0 then
        Printf.printf "bank warm start: %d seed genome(s)\n" r.Fleet.bank_seeds;
      (match r.Fleet.ga.Ga.best with
       | Some (g, fit) ->
         Printf.printf "best pooled fitness: %.3f ms\nbest genome: %s\n" fit
           (Repro_search.Genome.to_string g)
       | None -> print_endline "no verified binary found");
      (match r.Fleet.winner_ms with
       | Some ms -> Printf.printf "winner on reference device: %.3f ms\n" ms
       | None -> ());
      Printf.printf "history digest: %s\n" r.Fleet.history_digest;
      (match (bank, bank_file) with
       | Some bank, Some file ->
         Bank.save bank file;
         Printf.printf "bank: %d entries saved to %s\n" (Bank.size bank) file
       | _ -> ());
      print_pool_report ()
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Crowdsourced iterative compilation: shard one app's GA \
             across a simulated device fleet (the paper's deployment \
             model). Compilation and verification run once per genome on \
             the shared pool; measurements are contributed by the devices \
             online each round and pooled in device-id order, so the \
             search history is byte-identical across -j, --sched-seed \
             and availability interleaving.")
    Term.(const run $ app_arg $ seed_arg $ full_arg $ jobs_arg $ no_cache_arg
          $ no_stage_cache_arg $ engine_arg $ trace_arg $ metrics_arg
          $ devices_arg $ gens_arg $ bank_arg $ sched_seed_arg $ corpus_arg)

(* ----------------------------- storage ----------------------------- *)

let storage_cmd =
  let apps_arg =
    Arg.(value & pos_all app_conv []
         & info [] ~docv:"APP"
           ~doc:"Applications to capture into one shared store \
                 (default: FFT LU).")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE"
           ~doc:"Serialize the store to $(docv) (deterministic byte \
                 layout), then reload it and report any degradation \
                 warnings — an end-to-end check of the on-disk format.")
  in
  let run apps seed save trace metrics =
    with_trace trace metrics @@ fun () ->
    let apps =
      match apps with
      | [] ->
        List.filter_map App.find [ "FFT"; "LU" ]
      | apps -> apps
    in
    let storage = Storage.create () in
    Snapshot.set_store (Some storage);
    Fun.protect
      ~finally:(fun () ->
          Snapshot.set_store None;
          Snapshot.invalidate_templates ())
      (fun () ->
         List.iter
           (fun app ->
              match Pipeline.capture_once ~seed app with
              | None ->
                Printf.printf "%s: no replayable hot region, skipped\n"
                  app.App.name
              | Some cap ->
                let snap = cap.Pipeline.snapshot in
                Printf.printf
                  "%s: captured %d program-specific + %d boot-common pages \
                   (%d queued for idle spooling)\n"
                  app.App.name
                  (List.length snap.Repro_capture.Snapshot.snap_pages)
                  (List.length snap.Repro_capture.Snapshot.snap_common)
                  (Storage.pending storage))
           apps;
         print_endline
           "\nFigure 11-style storage accounting (content-addressed, \
            deduplicated):";
         print_storage_table storage;
         match save with
         | None -> ()
         | Some file ->
           Storage.save storage file;
           let size =
             In_channel.with_open_bin file In_channel.length
             |> Int64.to_int
           in
           Printf.printf "saved to %s (%.2f MB on disk)\n" file (mb size);
           let reloaded, warnings = Storage.load file in
           List.iter (fun w -> Printf.printf "  load warning: %s\n" w) warnings;
           Printf.printf "reload: %d blobs, %.2f MB physical, %d warnings\n"
             (List.length (Storage.labels reloaded))
             (mb (Storage.physical_bytes reloaded))
             (List.length warnings))
  in
  Cmd.v
    (Cmd.info "storage"
       ~doc:"Capture several apps into one content-addressed device store \
             and print the Figure 11-style accounting table (shared vs \
             program-specific bytes).")
    Term.(const run $ apps_arg $ seed_arg $ save_arg $ trace_arg
          $ metrics_arg)

(* ---------------------------- experiment --------------------------- *)

let experiment_cmd =
  let names =
    [ "table1"; "fig1"; "fig2"; "fig3"; "fig7"; "fig8"; "fig9"; "fig10";
      "fig11"; "survival" ]
  in
  let name_arg =
    Arg.(required
         & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
         & info [] ~docv:"EXPERIMENT")
  in
  let eager_arg =
    Arg.(value & flag
         & info [ "eager" ]
           ~doc:"Figure 10 ablation: CERE-style eager page copying.")
  in
  let run name full eager jobs no_cache engine trace metrics faults =
    with_trace trace metrics @@ fun () ->
    with_engine engine @@ fun () ->
    with_faults faults @@ fun () ->
    let cfg = if full then Ga.default_config else Ga.quick_config in
    let cache = not no_cache in
    (match name with
     | "table1" -> E.print_table1 ()
     | "fig1" -> E.print_fig1 (E.fig1 ~jobs ~cache ())
     | "fig2" -> E.print_fig2 (E.fig2 ~jobs ~cache ())
     | "fig3" -> E.print_fig3 (E.fig3 ())
     | "fig7" -> E.print_fig7 (E.fig7 ~cfg ~jobs ~cache ())
     | "fig8" -> E.print_fig8 (E.fig8 ())
     | "fig9" -> E.print_fig9 (E.fig9 ~cfg ~jobs ~cache ())
     | "fig10" -> E.print_fig10 (E.fig10 ~eager ())
     | "fig11" -> E.print_fig11 (E.fig11 ())
     | "survival" -> E.print_survival (E.survival ())
     | _ -> assert false);
    (match name with
     | "fig1" | "fig2" | "fig7" | "fig9" -> print_pool_report ()
     | _ -> ())
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one of the paper's tables or figures.")
    Term.(const run $ name_arg $ full_arg $ eager_arg $ jobs_arg $ no_cache_arg
          $ engine_arg $ trace_arg $ metrics_arg $ faults_arg)

(* ----------------------------- disasm ------------------------------ *)

let disasm_cmd =
  let method_arg =
    Arg.(value & opt (some string) None
         & info [ "method" ] ~docv:"Class.method"
           ~doc:"Limit output to one method.")
  in
  let run app meth =
    let dx = App.dexfile app in
    match meth with
    | None -> print_string (Repro_dex.Disasm.dexfile dx)
    | Some qualified ->
      (match String.index_opt qualified '.' with
       | None -> prerr_endline "expected Class.method"
       | Some i ->
         let cls = String.sub qualified 0 i in
         let name =
           String.sub qualified (i + 1) (String.length qualified - i - 1)
         in
         (match B.find_method dx cls name with
          | Some m -> print_string (Repro_dex.Disasm.method_ dx m)
          | None -> prerr_endline "no such method"))
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble an app's bytecode.")
    Term.(const run $ app_arg $ method_arg)

let () =
  let doc =
    "Replay-based offline iterative compilation for interactive \
     applications (PLDI 2021 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "repro" ~doc)
          [ list_cmd; passes_cmd; run_cmd; hot_cmd; capture_cmd; optimize_cmd;
            serve_cmd;
            fleet_cmd; storage_cmd; experiment_cmd; disasm_cmd ]))
