(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus a bechamel
   micro-benchmark suite over the experiment kernels.

   Usage:
     bench/main.exe                 run every experiment (quick GA config)
     bench/main.exe table1 fig10    run selected experiments
     bench/main.exe --full ...      paper-scale GA (11 generations x 50)
     bench/main.exe fig9 -j 4       evaluate GA generations on 4 domains
     bench/main.exe --no-cache ...  disable genome/binary memoization
     bench/main.exe fig10 --eager   CERE-style capture ablation
     bench/main.exe bechamel        micro-benchmarks via bechamel
     bench/main.exe replay          CoW replay setup/verify microbenchmark
                                    (writes BENCH_replay.json)
     bench/main.exe storage         content-addressed store microbenchmark:
                                    spool/read throughput, FFT+LU dedup
                                    ratio, save/load (BENCH_storage.json)
     bench/main.exe corpus          unsafe-pass survival vs corpus size K,
                                    plus corpus capture/verify overhead
                                    (writes BENCH_corpus.json)
     bench/main.exe exec            block-fused vs reference replay engine:
                                    contract check, fusion counters, speedup
                                    (writes BENCH_exec.json)
     bench/main.exe compile         staged-compilation cache microbenchmark:
                                    cold vs cached generation compile time
                                    on FFT, prefix-hit rate
                                    (writes BENCH_compile.json)
     bench/main.exe fleet           device-fleet benchmark: evals/sec vs
                                    fleet size and -j, convergence vs the
                                    single-device GA, genome-bank warm
                                    starts (writes BENCH_fleet.json)
     bench/main.exe serve           service-mode benchmark: N apps over one
                                    shared pool, throughput vs admission
                                    width, kill/resume overhead
                                    (writes BENCH_serve.json)
     bench/main.exe --no-stage-cache  disable the pass-prefix stage cache
                                    (results identical, only compile time)
     bench/main.exe --engine E      replay engine for the experiments:
                                    fused (default) or ref
     bench/main.exe --trace FILE    record a Chrome trace_event JSON trace
     bench/main.exe --metrics       print a span/counter summary table
     bench/main.exe --faults SPEC   arm deterministic fault injection
                                    (seed=N,rate=F[,only=p1+p2]); prints the
                                    injection totals and quarantine report *)

module E = Repro_core.Experiments
module Ga = Repro_search.Ga

let run_fig3 () =
  (* the full 10^4-evaluation sweep is cheap: measurements are synthesized
     on top of the five real per-size executions *)
  E.print_fig3 (E.fig3 ())

let quick_apps_note cfg =
  if cfg == Ga.quick_config then
    print_endline
      "(quick GA config: 6 generations x 14 genomes; pass --full for the \
       paper's 11 x 50)"

let run_all ~cfg ~eager ~jobs ~cache names =
  let sep title =
    Printf.printf "\n============ %s ============\n%!" title
  in
  let want name = names = [] || List.mem name names in
  if want "table1" then begin
    sep "Table 1";
    E.print_table1 ()
  end;
  if want "fig1" then begin
    sep "Figure 1";
    E.print_fig1 (E.fig1 ~jobs ~cache ())
  end;
  if want "fig2" then begin
    sep "Figure 2";
    E.print_fig2 (E.fig2 ~jobs ~cache ())
  end;
  if want "fig3" then begin
    sep "Figure 3";
    run_fig3 ()
  end;
  if want "fig7" then begin
    sep "Figure 7";
    quick_apps_note cfg;
    E.print_fig7 (E.fig7 ~cfg ~jobs ~cache ())
  end;
  if want "fig8" then begin
    sep "Figure 8";
    E.print_fig8 (E.fig8 ())
  end;
  if want "fig9" then begin
    sep "Figure 9";
    quick_apps_note cfg;
    E.print_fig9 (E.fig9 ~cfg ~jobs ~cache ())
  end;
  if want "fig10" then begin
    sep (if eager then "Figure 10 (eager/CERE ablation)" else "Figure 10");
    E.print_fig10 (E.fig10 ~eager ())
  end;
  if want "fig11" then begin
    sep "Figure 11";
    E.print_fig11 (E.fig11 ())
  end

(* ------------------------- bechamel suite -------------------------- *)

let bechamel_suite () =
  let open Bechamel in
  let app name = Option.get (Repro_apps.Registry.find name) in
  let fft = app "FFT" in
  let dx = Repro_apps.Registry.dexfile fft in
  let mids =
    Array.to_list
      (Array.map (fun m -> m.Repro_dex.Bytecode.cm_id)
         dx.Repro_dex.Bytecode.dx_methods)
  in
  let capture = Option.get (Repro_core.Pipeline.capture_once fft) in
  let env = Repro_core.Pipeline.make_eval_env fft capture in
  let rng = Repro_util.Rng.create 5 in
  let tests =
    [ (* Table 1 / app substrate: one full interpreted online run *)
      Test.make ~name:"table1:online-run-interpreted"
        (Staged.stage (fun () ->
             let ctx = Repro_apps.Registry.build_ctx fft in
             Repro_vm.Interp.install ctx;
             ignore (Repro_vm.Interp.run_main ctx)));
      (* Figures 1/2 kernel: compile one random sequence *)
      Test.make ~name:"fig1:compile-random-sequence"
        (Staged.stage (fun () ->
             let g = Repro_search.Genome.random rng in
             match
               Repro_lir.Compile.llvm_binary dx
                 (Repro_search.Genome.to_spec g) env.Repro_core.Pipeline.region
             with
             | (_ : Repro_lir.Binary.t) -> ()
             | exception Repro_lir.Compile.Compile_error _ -> ()
             | exception Repro_lir.Compile.Compile_timeout -> ()));
      (* Figure 3 kernel: one noisy online evaluation draw *)
      Test.make ~name:"fig3:online-noise-draw"
        (Staged.stage (fun () ->
             ignore (Repro_util.Rng.lognormal rng ~mu:0.0 ~sigma:0.1)));
      (* Figure 7 kernel: one verified replay of the Android region code *)
      Test.make ~name:"fig7:verified-replay"
        (Staged.stage (fun () ->
             let b = Repro_lir.Compile.android_binary dx mids in
             ignore
               (Repro_capture.Verify.check dx
                  capture.Repro_core.Pipeline.snapshot
                  env.Repro_core.Pipeline.vmap b)));
      (* Figure 8 kernel: classify a profile *)
      Test.make ~name:"fig8:breakdown"
        (Staged.stage (fun () ->
             let online = Repro_core.Pipeline.online_run fft in
             ignore
               (Repro_profiler.Breakdown.of_profile dx
                  ~region:env.Repro_core.Pipeline.region
                  online.Repro_core.Pipeline.profile)));
      (* Figure 9 kernel: one GA genome evaluation *)
      Test.make ~name:"fig9:genome-evaluation"
        (Staged.stage (fun () ->
             ignore
               (Repro_core.Pipeline.evaluate_genome env
                  (Repro_search.Genome.random rng))));
      (* Figure 10 kernel: one capture *)
      Test.make ~name:"fig10:capture"
        (Staged.stage (fun () ->
             ignore (Repro_core.Pipeline.capture_once fft)));
      (* Figure 11 kernel: snapshot accounting *)
      Test.make ~name:"fig11:snapshot-size"
        (Staged.stage (fun () ->
             ignore
               (Repro_capture.Snapshot.program_bytes
                  capture.Repro_core.Pipeline.snapshot)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"experiments" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
       match Analyze.OLS.estimates r with
       | Some (e :: _) -> Printf.printf "bechamel %-42s %12.0f ns/run\n%!" name e
       | Some [] | None -> Printf.printf "bechamel %-42s (no estimate)\n%!" name)
    (List.sort compare rows)

(* one warm-up call, then the mean wall-clock over [iters] runs *)
let time_ns ~iters f =
  f ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do f () done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

(* ------------------------ replay micro-benchmark -------------------- *)

(* Quantifies the CoW-template replay path against the legacy
   rebuild-the-address-space-per-replay loader on the fig7-style workload
   (FFT, Android-pipeline binary).  Writes BENCH_replay.json for CI. *)

let replay_bench () =
  let module Mem = Repro_os.Mem in
  let module Snapshot = Repro_capture.Snapshot in
  let module Replay = Repro_capture.Replay in
  let module Verify = Repro_capture.Verify in
  let module Trace = Repro_util.Trace in
  let app = Option.get (Repro_apps.Registry.find "FFT") in
  let dx = Repro_apps.Registry.dexfile app in
  let mids =
    Array.to_list
      (Array.map (fun m -> m.Repro_dex.Bytecode.cm_id)
         dx.Repro_dex.Bytecode.dx_methods)
  in
  let capture = Option.get (Repro_core.Pipeline.capture_once app) in
  let snap = capture.Repro_core.Pipeline.snapshot in
  let binary = Repro_lir.Compile.android_binary dx mids in
  let vmap = Verify.collect dx snap in
  let snapshot_pages =
    List.length snap.Snapshot.snap_pages + List.length snap.Snapshot.snap_common
  in
  (* per-evaluation setup: legacy full rebuild vs CoW clone of the template *)
  let legacy_build () =
    let mem = Mem.create () in
    List.iter
      (fun m ->
         Mem.map mem ~base:m.Mem.map_base ~npages:m.Mem.map_npages
           ~kind:m.Mem.map_kind ~name:m.Mem.map_name)
      snap.Snapshot.snap_maps;
    List.iter
      (fun p -> Mem.install_page mem ~page:p.Snapshot.pg_index p.Snapshot.pg_data)
      snap.Snapshot.snap_common;
    List.iter
      (fun p -> Mem.install_page mem ~page:p.Snapshot.pg_index p.Snapshot.pg_data)
      snap.Snapshot.snap_pages
  in
  let template = Snapshot.template snap in
  let clone_build () = Mem.drop (Mem.clone template) in
  let legacy_ns = time_ns ~iters:40 legacy_build in
  let clone_ns = time_ns ~iters:2000 clone_build in
  (* dirty-page accounting for one replay, via the trace counters *)
  Trace.enable ();
  Trace.reset ();
  let r = Replay.run dx snap Replay.Interpreter in
  let ctx = r.Repro_capture.Replay.ctx in
  let cloned_refs = Trace.counter_value "mem.clone_pages" in
  let cow_pages = Trace.counter_value "mem.cow_pages" in
  let scanned0 = Trace.counter_value "verify.pages_scanned" in
  ignore (Verify.diff_against_snapshot ctx snap);
  let pages_scanned_dirty = Trace.counter_value "verify.pages_scanned" - scanned0 in
  Trace.disable ();
  let mem = ctx.Repro_vm.Exec_ctx.mem in
  let pages_scanned_full =
    List.length (Mem.touched_pages mem ~kind:Mem.Rheap)
    + List.length (Mem.touched_pages mem ~kind:Mem.Rstatics)
  in
  (* verification scan: dirty-page walk vs the full reference scan *)
  let dirty_scan_ns =
    time_ns ~iters:400 (fun () -> ignore (Verify.diff_against_snapshot ctx snap))
  in
  let full_scan_ns =
    time_ns ~iters:100
      (fun () -> ignore (Verify.diff_against_snapshot_full ctx snap))
  in
  (* end-to-end verified replay (replay + compare), as fig7 runs it *)
  let check_ns =
    time_ns ~iters:25 (fun () -> ignore (Verify.check dx snap vmap binary))
  in
  let setup_speedup = legacy_ns /. clone_ns in
  let scan_speedup = full_scan_ns /. dirty_scan_ns in
  let combined_before = legacy_ns +. full_scan_ns in
  let combined_after = clone_ns +. dirty_scan_ns in
  let combined_speedup = combined_before /. combined_after in
  let oc = open_out "BENCH_replay.json" in
  Printf.fprintf oc
    {|{
  "workload": "FFT fig7-style verified replay (Android-pipeline binary)",
  "snapshot_pages": %d,
  "setup": {
    "legacy_rebuild_ns": %.0f,
    "cow_clone_ns": %.0f,
    "speedup": %.1f
  },
  "pages": {
    "copied_per_replay_legacy": %d,
    "ref_shared_per_clone": %d,
    "cow_copied_per_replay": %d
  },
  "verify": {
    "full_scan_ns": %.0f,
    "dirty_scan_ns": %.0f,
    "speedup": %.1f,
    "pages_scanned_dirty": %d,
    "pages_scanned_full": %d
  },
  "check": {
    "ns_per_check": %.0f,
    "checks_per_sec": %.1f
  },
  "combined": {
    "setup_plus_verify_before_ns": %.0f,
    "setup_plus_verify_after_ns": %.0f,
    "speedup": %.1f
  }
}
|}
    snapshot_pages legacy_ns clone_ns setup_speedup snapshot_pages cloned_refs
    cow_pages full_scan_ns dirty_scan_ns scan_speedup pages_scanned_dirty
    pages_scanned_full check_ns (1e9 /. check_ns) combined_before
    combined_after combined_speedup;
  close_out oc;
  Printf.printf "replay microbenchmark (FFT, %d snapshot pages)\n" snapshot_pages;
  Printf.printf "  setup   legacy rebuild %10.0f ns   CoW clone %8.0f ns   %6.1fx\n"
    legacy_ns clone_ns setup_speedup;
  Printf.printf "  pages   legacy copies %d/replay;  clone refs %d, CoW-copies %d\n"
    snapshot_pages cloned_refs cow_pages;
  Printf.printf "  verify  full scan %12.0f ns  dirty scan %8.0f ns   %6.1fx\n"
    full_scan_ns dirty_scan_ns scan_speedup;
  Printf.printf "          pages scanned: %d dirty vs %d materialized\n"
    pages_scanned_dirty pages_scanned_full;
  Printf.printf "  check   %.0f ns end-to-end (%.1f verified replays/sec)\n"
    check_ns (1e9 /. check_ns);
  Printf.printf "  combined setup+verify speedup: %.1fx %s\n"
    combined_speedup
    (if combined_speedup >= 3.0 then "(meets the 3x target)"
     else "(BELOW the 3x target)");
  print_endline "wrote BENCH_replay.json"

(* ----------------------- storage micro-benchmark --------------------- *)

(* Quantifies the content-addressed device store on the Figure 11-style
   workload: FFT and LU captured into one store.  Measures idle-spool
   throughput (enqueue + hash + dedup per page), the cross-app dedup
   ratio, validated (checksummed) read throughput, and the on-disk
   save/load round-trip.  Writes BENCH_storage.json for CI. *)

let storage_bench () =
  let module Storage = Repro_os.Storage in
  let module Snapshot = Repro_capture.Snapshot in
  let snaps =
    List.filter_map
      (fun name ->
         let app = Option.get (Repro_apps.Registry.find name) in
         Option.map
           (fun c -> (app, c.Repro_core.Pipeline.snapshot))
           (Repro_core.Pipeline.capture_once app))
      [ "FFT"; "LU" ]
  in
  let fill storage =
    List.iter (fun (_, snap) -> Snapshot.store storage snap) snaps
  in
  (* spool path: enqueue both captures, then hash+dedup+store every page *)
  let reference = Storage.create () in
  fill reference;
  let total_pages = Storage.pending reference in
  Storage.flush reference;
  let spool_ns =
    time_ns ~iters:5 (fun () ->
        let storage = Storage.create () in
        fill storage;
        Storage.flush storage)
    /. float_of_int total_pages
  in
  (* dedup accounting across the two apps (paper Figure 11 sharing) *)
  let ac = Storage.accounting reference in
  let dedup_ratio =
    float_of_int ac.Storage.ac_logical_bytes
    /. float_of_int ac.Storage.ac_physical_bytes
  in
  (* validated read: every page of every blob re-checksummed on the way out *)
  let read_ns =
    time_ns ~iters:10 (fun () ->
        List.iter
          (fun label ->
             match Storage.read reference ~label with
             | Ok _ -> ()
             | Error e -> failwith (Storage.describe e))
          (Storage.labels reference))
    /. float_of_int total_pages
  in
  (* on-disk round-trip: deterministic serialization, degradation-checked
     load *)
  let file = Filename.temp_file "repro_store" ".bin" in
  let save_ns = time_ns ~iters:5 (fun () -> Storage.save reference file) in
  let file_bytes =
    In_channel.with_open_bin file In_channel.length |> Int64.to_int
  in
  let load_warnings = ref 0 in
  let load_ns =
    time_ns ~iters:5 (fun () ->
        let _, warnings = Storage.load file in
        load_warnings := List.length warnings)
  in
  Sys.remove file;
  let mb bytes = float_of_int bytes /. 1048576. in
  let oc = open_out "BENCH_storage.json" in
  Printf.fprintf oc
    {|{
  "workload": "FFT+LU captures into one content-addressed store",
  "pages": %d,
  "spool": {
    "ns_per_page": %.0f,
    "pages_per_sec": %.0f
  },
  "dedup": {
    "logical_bytes": %d,
    "physical_bytes": %d,
    "ratio": %.2f,
    "shared_bytes": %d,
    "saved_bytes": %d
  },
  "read": {
    "ns_per_page": %.0f,
    "pages_per_sec": %.0f
  },
  "disk": {
    "file_bytes": %d,
    "save_ns": %.0f,
    "load_ns": %.0f,
    "load_warnings": %d
  }
}
|}
    total_pages spool_ns (1e9 /. spool_ns) ac.Storage.ac_logical_bytes
    ac.Storage.ac_physical_bytes dedup_ratio ac.Storage.ac_shared_bytes
    ac.Storage.ac_dedup_saved_bytes read_ns (1e9 /. read_ns) file_bytes
    save_ns load_ns !load_warnings;
  close_out oc;
  Printf.printf "storage microbenchmark (FFT+LU, %d pages)\n" total_pages;
  Printf.printf "  spool   %8.0f ns/page  (%.0f pages/sec hashed+deduped)\n"
    spool_ns (1e9 /. spool_ns);
  Printf.printf
    "  dedup   logical %.2f MB stored as %.2f MB  (%.2fx; %.2f MB shared \
     across apps)\n"
    (mb ac.Storage.ac_logical_bytes) (mb ac.Storage.ac_physical_bytes)
    dedup_ratio (mb ac.Storage.ac_shared_bytes);
  Printf.printf "  read    %8.0f ns/page validated (%.0f pages/sec)\n"
    read_ns (1e9 /. read_ns);
  Printf.printf
    "  disk    %.2f MB file; save %.1f ms, load+verify %.1f ms, %d warnings\n"
    (mb file_bytes) (save_ns /. 1e6) (load_ns /. 1e6) !load_warnings;
  print_endline "wrote BENCH_storage.json"

(* ----------------------- corpus benchmark --------------------------- *)

(* The cross-input verification experiment: unsafe-pass survival rate as a
   function of corpus size K (the headline table), plus the *measured* cost
   of a corpus — wall-clock capture time, per-candidate verification time
   with and without the corpus, and how far content-addressed dedup
   compresses K snapshots of the same app.  Writes BENCH_corpus.json. *)

let corpus_bench () =
  let module Storage = Repro_os.Storage in
  let module Snapshot = Repro_capture.Snapshot in
  let module Verify = Repro_capture.Verify in
  let module P = Repro_core.Pipeline in
  let s = E.survival () in
  E.print_survival s;
  (* wall-clock corpus capture on FFT: primary alone vs a K=4 corpus *)
  let app = Option.get (Repro_apps.Registry.find "FFT") in
  let k = 4 in
  let primary_ns =
    time_ns ~iters:3 (fun () -> ignore (P.capture_once app))
  in
  let corpus_ns =
    time_ns ~iters:3 (fun () -> ignore (P.capture_corpus ~k app))
  in
  let co = Option.get (P.capture_corpus ~k app) in
  let env =
    P.make_eval_env ~corpus:co.P.co_entries app co.P.co_primary
  in
  let binary = P.android_binary_for app in
  (* per-candidate verification: primary-only vs full-corpus (the Android
     binary passes everywhere, so this is the no-short-circuit worst case) *)
  let verify1_ns =
    time_ns ~iters:10 (fun () ->
        ignore (Verify.check env.P.dx env.P.capture.P.snapshot env.P.vmap binary))
  in
  let verifyk_ns =
    time_ns ~iters:10 (fun () -> ignore (P.verify_core env binary))
  in
  (* storage cost of the corpus: K snapshots of one app, deduped *)
  let storage = Storage.create () in
  Snapshot.store storage co.P.co_primary.P.snapshot;
  List.iter (fun ce -> Snapshot.store storage ce.P.ce_snapshot) co.P.co_entries;
  Storage.flush storage;
  let ac = Storage.accounting storage in
  let dedup_ratio =
    float_of_int ac.Storage.ac_logical_bytes
    /. float_of_int (max 1 ac.Storage.ac_physical_bytes)
  in
  let n_entries = List.length co.P.co_entries in
  let oc = open_out "BENCH_corpus.json" in
  let points_json =
    String.concat ",\n    "
      (List.map
         (fun p ->
            Printf.sprintf
              {|{ "k": %d, "tested": %d, "survived": %d, "rate": %.4f }|}
              p.E.sp_k p.E.sp_tested p.E.sp_survived
              (float_of_int p.E.sp_survived
               /. float_of_int (max 1 p.E.sp_tested)))
         s.E.su_points)
  in
  let genomes_json =
    String.concat ",\n    "
      (List.map
         (fun g ->
            Printf.sprintf {|{ "app": %S, "genome": %S, "killed_at": %s }|}
              g.E.sg_app g.E.sg_label
              (match g.E.sg_killed_at with
               | Some k -> string_of_int k
               | None -> "null"))
         s.E.su_genomes)
  in
  Printf.fprintf oc
    {|{
  "workload": "unsafe-pass survival vs corpus size (five Scimark kernels)",
  "seed": %d,
  "kmax": %d,
  "survival": [
    %s
  ],
  "genomes": [
    %s
  ],
  "pinned_killed_at": %s,
  "corpus_entries": %d,
  "corpus_checks": %d,
  "capture": {
    "simulated_ms_per_entry": %.2f,
    "primary_only_ns": %.0f,
    "corpus_k%d_ns": %.0f,
    "overhead_ratio": %.2f
  },
  "verify": {
    "primary_only_ns": %.0f,
    "corpus_k%d_ns": %.0f,
    "overhead_ratio": %.2f
  },
  "storage": {
    "snapshots": %d,
    "logical_bytes": %d,
    "physical_bytes": %d,
    "dedup_ratio": %.2f
  }
}
|}
    s.E.su_seed s.E.su_kmax points_json genomes_json
    (match s.E.su_pinned_killed_at with
     | Some k -> string_of_int k
     | None -> "null")
    s.E.su_corpus_entries s.E.su_corpus_checks s.E.su_capture_ms primary_ns
    k corpus_ns (corpus_ns /. primary_ns) verify1_ns k verifyk_ns
    (verifyk_ns /. verify1_ns) (1 + n_entries) ac.Storage.ac_logical_bytes
    ac.Storage.ac_physical_bytes dedup_ratio;
  close_out oc;
  Printf.printf "\ncorpus cost (FFT, K=%d: primary + %d secondaries)\n"
    k n_entries;
  Printf.printf "  capture  primary %8.1f ms   corpus %8.1f ms   %.2fx\n"
    (primary_ns /. 1e6) (corpus_ns /. 1e6) (corpus_ns /. primary_ns);
  Printf.printf "  verify   primary %8.2f ms   corpus %8.2f ms   %.2fx \
                 (pass-everywhere worst case)\n"
    (verify1_ns /. 1e6) (verifyk_ns /. 1e6) (verifyk_ns /. verify1_ns);
  Printf.printf "  storage  %d snapshots: %.2f MB logical -> %.2f MB \
                 physical (%.2fx dedup)\n"
    (1 + n_entries)
    (float_of_int ac.Storage.ac_logical_bytes /. 1048576.)
    (float_of_int ac.Storage.ac_physical_bytes /. 1048576.)
    dedup_ratio;
  print_endline "wrote BENCH_corpus.json"

(* --------------------- execution-engine benchmark -------------------- *)

(* Block-fused executor vs the per-instruction reference engine on the
   fig7-style workload: FFT verified replays under both the Android
   pipeline binary and the LLVM -O3 region binary.  Re-checks the
   bit-identical contract on the way (outcome and final cycle counter
   agree per binary per engine) and writes BENCH_exec.json so CI can
   assert the >=1.3x replay speedup and nonzero fusion/hoisting
   counters. *)
let exec_bench () =
  let module Replay = Repro_capture.Replay in
  let module Blockexec = Repro_lir.Blockexec in
  let module Blockplan = Repro_lir.Blockplan in
  let module Trace = Repro_util.Trace in
  let module P = Repro_core.Pipeline in
  let app = Option.get (Repro_apps.Registry.find "FFT") in
  let dx = Repro_apps.Registry.dexfile app in
  let capture = Option.get (P.capture_once app) in
  let snap = capture.P.snapshot in
  let env = P.make_eval_env app capture in
  let mids =
    Array.to_list
      (Array.map (fun m -> m.Repro_dex.Bytecode.cm_id)
         dx.Repro_dex.Bytecode.dx_methods)
  in
  let android = Repro_lir.Compile.android_binary dx mids in
  let workloads =
    [ ("android", Replay.Android_code android);
      ("o3", Replay.Optimized (P.o3_binary env)) ]
  in
  let run engine version = Replay.run ~engine dx snap version in
  let outcome_str = function
    | Replay.Finished (_, c) -> Printf.sprintf "finished:%d" c
    | Replay.Crashed m -> "crashed:" ^ m
    | Replay.Hung -> "hung"
  in
  (* the contract first: identical outcome and cycle accounting *)
  List.iter
    (fun (name, version) ->
       let a = run Blockexec.Ref version in
       let b = run Blockexec.Fused version in
       if
         outcome_str a.Replay.outcome <> outcome_str b.Replay.outcome
         || a.Replay.ctx.Repro_vm.Exec_ctx.cycles
            <> b.Replay.ctx.Repro_vm.Exec_ctx.cycles
       then
         failwith
           (Printf.sprintf "engine divergence on the %s workload: %s@%d vs %s@%d"
              name (outcome_str a.Replay.outcome)
              a.Replay.ctx.Repro_vm.Exec_ctx.cycles
              (outcome_str b.Replay.outcome)
              b.Replay.ctx.Repro_vm.Exec_ctx.cycles))
    workloads;
  (* fusion/hoisting/caching statistics: one cold pass builds the plans,
     a second pass must be served from the digest-keyed cache *)
  Trace.enable ();
  Trace.reset ();
  Blockplan.reset_cache ();
  List.iter (fun (_, v) -> ignore (run Blockexec.Fused v)) workloads;
  List.iter (fun (_, v) -> ignore (run Blockexec.Fused v)) workloads;
  let blocks_formed = Trace.counter_value "blockexec.blocks_formed" in
  let ops_fused = Trace.counter_value "blockexec.ops_fused" in
  let checks_hoisted = Trace.counter_value "blockexec.checks_hoisted" in
  let plan_builds = Trace.counter_value "blockexec.plan_builds" in
  let plan_cache_hits = Trace.counter_value "blockexec.plan_cache_hits" in
  Trace.reset ();
  Trace.disable ();
  (* wall-clock, tracing off (plans warm for both engines) *)
  let timed =
    List.map
      (fun (name, version) ->
         let ref_ns =
           time_ns ~iters:30 (fun () -> ignore (run Blockexec.Ref version))
         in
         let fused_ns =
           time_ns ~iters:30 (fun () -> ignore (run Blockexec.Fused version))
         in
         (name, ref_ns, fused_ns, ref_ns /. fused_ns))
      workloads
  in
  let android_speedup =
    match timed with (_, _, _, s) :: _ -> s | [] -> 0.0
  in
  let target = 1.3 in
  let entries =
    String.concat ",\n"
      (List.map
         (fun (name, r, f, s) ->
            Printf.sprintf
              "    \"%s\": { \"ref_ns\": %.0f, \"fused_ns\": %.0f, \
               \"speedup\": %.2f }"
              name r f s)
         timed)
  in
  let oc = open_out "BENCH_exec.json" in
  Printf.fprintf oc
    {|{
  "workload": "FFT verified replay: reference vs block-fused engine",
  "binaries": {
%s
  },
  "plan": {
    "blocks_formed": %d,
    "ops_fused": %d,
    "checks_hoisted": %d,
    "plan_builds": %d,
    "plan_cache_hits": %d
  },
  "target_speedup": %.2f,
  "android_speedup": %.2f,
  "meets_target": %b
}
|}
    entries blocks_formed ops_fused checks_hoisted plan_builds plan_cache_hits
    target android_speedup (android_speedup >= target);
  close_out oc;
  Printf.printf "execution-engine benchmark (FFT verified replay)\n";
  List.iter
    (fun (name, r, f, s) ->
       Printf.printf "  %-8s ref %12.0f ns   fused %12.0f ns   %5.2fx\n"
         name r f s)
    timed;
  Printf.printf
    "  plan     %d blocks, %d ops fused, %d checks hoisted \
     (%d builds, %d cache hits)\n"
    blocks_formed ops_fused checks_hoisted plan_builds plan_cache_hits;
  Printf.printf "  android speedup: %.2fx %s\n" android_speedup
    (if android_speedup >= target then "(meets the 1.3x target)"
     else "(BELOW the 1.3x target)");
  print_endline "wrote BENCH_exec.json"

(* --------------------- staged-compilation benchmark ------------------ *)

(* Cold vs cached generation compile time on a two-generation FFT search
   shape: generation 1 (parents) warms the stage cache, then the
   generation-2 compile stream — elite survivors, crossover/mutation
   children, and the hill-climbing neighborhood (single-gene deletions
   plus parameter tweaks of the best genome, re-proposed across rounds)
   that [Pipeline.optimize] always runs after the GA generations — is
   timed three ways: the legacy per-genome path (front-end rebuilt every
   compile, no prefix reuse: the pre-stage-cache cost), the staged path
   with the cache disabled (hoisted front-end only), and the staged path
   with the cache warmed by generation 1.  The stream is what reaches the
   compile stage itself (the Evalpool genome memo sits above it and is
   measured separately; under [--no-cache] this is exactly the submitted
   workload).  A differential check runs first: per genome, the legacy
   and staged paths must agree on outcome classification and binary
   digest.  Writes BENCH_compile.json so CI can gate the >=2x
   cached-generation speedup with nonzero prefix hits. *)
let compile_bench () =
  let module P = Repro_core.Pipeline in
  let module Compile = Repro_lir.Compile in
  let module Stagecache = Repro_lir.Stagecache in
  let module Genome = Repro_search.Genome in
  let module Rng = Repro_util.Rng in
  let app = Option.get (Repro_apps.Registry.find "FFT") in
  let capture = Option.get (P.capture_once app) in
  let env = P.make_eval_env app capture in
  let fe = env.P.frontend in
  let dx = env.P.dx and region = env.P.region in
  let profile = Repro_capture.Typeprof.lookup env.P.typeprof in
  let rng = Rng.create 42 in
  (* quick_config shapes: population 14, 2 elites carried per generation *)
  let n_parents = 14 and n_children = 14 in
  let parents =
    List.init n_parents (fun _ -> Genome.dedup_adjacent (Genome.random rng))
  in
  let parent () = List.nth parents (Rng.int rng n_parents) in
  let children =
    (* the quick-config GA keeps 2 elites per generation and breeds the
       rest by single-point crossover plus light per-gene mutation *)
    List.init n_children (fun i ->
        if i < 2 then List.nth parents i
        else
          Genome.mutate rng ~gene_prob:0.1
            (Genome.crossover rng (parent ()) (parent ())))
  in
  let parent_cost g =
    (* total recorded pass work of a parent, read back from the stage
       cache warmed below; 0 when the compile aborted (no full entry) *)
    let fps = Stagecache.fingerprints ~frontend:(Compile.frontend_digest fe)
        (Genome.to_spec g)
    in
    List.fold_left
      (fun acc mid ->
         match Stagecache.lookup ~frontend:(Compile.frontend_digest fe) ~mid
                 ~fps with
         | Some (k, e) when k = Array.length fps ->
           acc + Array.fold_left ( + ) 0 e.Stagecache.sc_charges
         | _ -> acc)
      0 region
  in
  let neighborhood best =
    (* one Ga.hill_climb_batch round around the incumbent best: every
       single-gene deletion plus six parameter-tweak mutants *)
    let deletions =
      List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) best) best
    in
    let tweaks =
      List.init 6 (fun _ -> Genome.mutate rng ~gene_prob:0.15 best)
    in
    List.filter
      (fun g -> List.length g >= Genome.min_length)
      (deletions @ tweaks)
  in
  let classify f =
    match f () with
    | b -> "ok:" ^ Repro_lir.Binary.digest b
    | exception Compile.Compile_error msg -> "error:" ^ msg
    | exception Compile.Compile_timeout -> "timeout"
  in
  let staged g () = Compile.llvm_binary_staged fe (Genome.to_spec g) region in
  let legacy g () =
    Compile.llvm_binary ~profile dx (Genome.to_spec g) region
  in
  let compile_all path gs = List.iter (fun g -> ignore (classify (path g))) gs in
  (* warm the cache with generation 1, then finish the generation-2
     stream: the hill-climb neighborhood forms around the incumbent best,
     for which the most expensive parent stands in (the survivors worth
     climbing from are the heavily optimizing genomes) *)
  Stagecache.reset ();
  compile_all staged parents;
  let best =
    List.fold_left
      (fun acc g -> if parent_cost g > parent_cost acc then g else acc)
      (List.hd parents) (List.tl parents)
  in
  let rounds = 2 in
  let children =
    children @ List.concat (List.init rounds (fun _ -> neighborhood best))
  in
  let n_children = List.length children in
  (* the transparency contract first: warm cache vs legacy, genome by
     genome — identical classification, identical binary digests *)
  List.iteri
    (fun i g ->
       let a = classify (legacy g) in
       let b = classify (staged g) in
       if a <> b then
         failwith
           (Printf.sprintf "stage-cache divergence on generation-2 genome %d: \
                            legacy %s vs staged %s" i a b))
    children;
  (* prefix-reuse accounting for one honest generation-2 compile *)
  Stagecache.reset ();
  compile_all staged parents;
  let s0 = Stagecache.stats () in
  compile_all staged children;
  let s1 = Stagecache.stats () in
  let hits = s1.Stagecache.prefix_hits - s0.Stagecache.prefix_hits in
  let misses = s1.Stagecache.prefix_misses - s0.Stagecache.prefix_misses in
  let bhits = s1.Stagecache.binary_hits - s0.Stagecache.binary_hits in
  let bmisses = s1.Stagecache.binary_misses - s0.Stagecache.binary_misses in
  let reused = s1.Stagecache.genes_reused - s0.Stagecache.genes_reused in
  let ran = s1.Stagecache.genes_run - s0.Stagecache.genes_run in
  let frac a b = if a + b = 0 then 0.0 else float_of_int a /. float_of_int (a + b) in
  (* wall-clock: per-iteration cache preparation is excluded *)
  let time_gen2 ~iters ~prepare f =
    prepare ();
    f ();
    let total = ref 0.0 in
    for _ = 1 to iters do
      prepare ();
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      f ();
      total := !total +. (Unix.gettimeofday () -. t0)
    done;
    !total *. 1e9 /. float_of_int iters
  in
  let iters = 4 in
  let cold_ns =
    time_gen2 ~iters ~prepare:(fun () -> ())
      (fun () -> compile_all legacy children)
  in
  Stagecache.set_enabled false;
  let nocache_ns =
    time_gen2 ~iters ~prepare:(fun () -> ())
      (fun () -> compile_all staged children)
  in
  Stagecache.set_enabled true;
  (* first visit: generation 2 compiled with only generation 1 cached —
     partial prefix reuse plus whole-binary hits on exact re-proposals *)
  let gen2_ns =
    time_gen2 ~iters
      ~prepare:(fun () ->
          Stagecache.reset ();
          compile_all staged parents)
      (fun () -> compile_all staged children)
  in
  (* steady state: the same generation with its states resident — what a
     repeated generation costs once the cache holds it (under [--no-cache]
     every genome a converged population re-breeds reaches the compile
     stage again; this is also the cache's ceiling) *)
  let warm_ns =
    time_gen2 ~iters ~prepare:(fun () -> ())
      (fun () -> compile_all staged children)
  in
  let speedup = cold_ns /. warm_ns in
  let gen2_speedup = cold_ns /. gen2_ns in
  let frontend_speedup = cold_ns /. nocache_ns in
  let prefix_speedup = nocache_ns /. gen2_ns in
  let target = 2.0 in
  let meets = speedup >= target && gen2_speedup > 1.0 && hits > 0 in
  let oc = open_out "BENCH_compile.json" in
  Printf.fprintf oc
    {|{
  "workload": "FFT 2-generation search: generation-2 compile time (%d genomes, %d region methods)",
  "generation": { "parents": %d, "children": %d },
  "cold_ns": %.0f,
  "staged_nocache_ns": %.0f,
  "gen2_ns": %.0f,
  "warm_ns": %.0f,
  "speedup": %.2f,
  "gen2_speedup": %.2f,
  "frontend_speedup": %.2f,
  "prefix_speedup": %.2f,
  "stage": {
    "prefix_hits": %d,
    "prefix_misses": %d,
    "hit_rate": %.3f,
    "binary_hits": %d,
    "binary_misses": %d,
    "genes_reused": %d,
    "genes_run": %d,
    "reuse_frac": %.3f,
    "longest_prefix": %d,
    "entries": %d,
    "bytes_held": %d,
    "evictions": %d
  },
  "target_speedup": %.2f,
  "meets_target": %b
}
|}
    n_children (List.length region) n_parents n_children cold_ns nocache_ns
    gen2_ns warm_ns speedup gen2_speedup frontend_speedup prefix_speedup
    hits misses
    (frac hits misses) bhits bmisses reused ran (frac reused ran)
    s1.Stagecache.longest_prefix s1.Stagecache.entries
    s1.Stagecache.bytes_held s1.Stagecache.evictions target meets;
  close_out oc;
  Printf.printf "staged-compilation benchmark (FFT, generation of %d genomes)\n"
    n_children;
  Printf.printf
    "  gen-2 compile   cold %9.1f ms   nocache %9.1f ms   first visit \
     %9.1f ms   warm %7.1f ms\n"
    (cold_ns /. 1e6) (nocache_ns /. 1e6) (gen2_ns /. 1e6) (warm_ns /. 1e6);
  Printf.printf
    "  speedup         %.2fx warm (gated), %.2fx first visit (%.2fx \
     hoisted front-end, %.2fx prefix reuse)\n"
    speedup gen2_speedup frontend_speedup prefix_speedup;
  Printf.printf
    "  stage cache     %d/%d prefix hits (%.0f%%), %d/%d whole-binary hits, \
     %d/%d genes reused (%.0f%%), longest prefix %d\n"
    hits (hits + misses)
    (100.0 *. frac hits misses)
    bhits (bhits + bmisses)
    reused (reused + ran)
    (100.0 *. frac reused ran)
    s1.Stagecache.longest_prefix;
  Printf.printf "  residency       %d entries, %.2f MB, %d evictions\n"
    s1.Stagecache.entries
    (float_of_int s1.Stagecache.bytes_held /. 1048576.)
    s1.Stagecache.evictions;
  Printf.printf "  %.2fx %s\n" speedup
    (if meets then "(meets the 2x target)" else "(BELOW the 2x target)");
  print_endline "wrote BENCH_compile.json"

(* --------------------------- fleet benchmark ------------------------- *)

(* The crowdsourced-deployment benchmark: one app's GA sharded across a
   simulated device fleet (Repro_fleet).  Measures (a) fleet throughput —
   device samples and GA evaluations per second — as fleet size and worker
   count grow, re-asserting the byte-identical-history contract across -j
   on the way; (b) convergence against the single-device GA at the same
   evaluation budget (winners compared by verified replay on the reference
   environment); and (c) the genome bank's warm-start value: hit rate and
   generations saved on a second search against the same bank.  Writes
   BENCH_fleet.json for CI. *)
let fleet_bench ~jobs () =
  let module P = Repro_core.Pipeline in
  let module Fleet = Repro_fleet.Fleet in
  let module Bank = Repro_fleet.Bank in
  let module Rng = Repro_util.Rng in
  let module Evalpool = Repro_search.Evalpool in
  let seed = 7 in
  let app = Option.get (Repro_apps.Registry.find "FFT") in
  let co = Option.get (P.capture_corpus ~seed ~k:2 app) in
  let env =
    P.make_eval_env ~seed:(seed + 1) ~corpus:co.P.co_entries app
      co.P.co_primary
  in
  let cfg =
    { Fleet.default_config with
      Fleet.ga = { Ga.quick_config with Ga.generations = 3 } }
  in
  let timed_run ?bank ~jobs ~devices () =
    (* every timed run compiles cold: the process-global stage cache would
       otherwise hand later runs their compiles for free and swamp the
       j1-vs-jN comparison *)
    Repro_lir.Stagecache.reset ();
    let t0 = Unix.gettimeofday () in
    let r = Fleet.run ~jobs ~cache:true ?bank ~cfg ~seed ~devices env in
    (r, Unix.gettimeofday () -. t0)
  in
  (* (a) throughput scaling over fleet size and worker count, with the
     determinism contract re-checked across -j per size *)
  let j_hi = max jobs 4 in
  let sizes = [ 50; 250; 1000 ] in
  let scaling =
    List.map
      (fun devices ->
         let r1, w1 = timed_run ~jobs:1 ~devices () in
         let rj, wj = timed_run ~jobs:j_hi ~devices () in
         if r1.Fleet.history_digest <> rj.Fleet.history_digest then
           failwith
             (Printf.sprintf
                "fleet determinism violation at %d devices: -j1 %s vs -j%d %s"
                devices r1.Fleet.history_digest j_hi rj.Fleet.history_digest);
         (devices, r1, w1, rj, wj))
      sizes
  in
  let evals_per_sec r w = float_of_int r.Fleet.ga.Ga.evaluations /. w in
  let samples_per_sec r w = float_of_int r.Fleet.fleet_samples /. w in
  (* (b) convergence vs the single-device GA at the same budget *)
  let fleet_big, _ =
    match List.rev scaling with
    | (_, _, _, rj, wj) :: _ -> (rj, wj)
    | [] -> assert false
  in
  let pool = P.make_pool ~jobs:j_hi env in
  let ga_single =
    Ga.run (Rng.create seed) cfg.Fleet.ga
      ~evaluate_batch:(Evalpool.evaluate_batch pool)
      ~baseline_ms:env.P.android_region_ms ~o3_ms:env.P.o3_region_ms ()
  in
  let winner_ms ga =
    match ga.Ga.best with
    | None -> None
    | Some (g, _) ->
      (match P.compile_core env g with
       | Ok b -> P.replay_ms env b
       | Error _ -> None)
  in
  let single_ms = winner_ms ga_single in
  let fleet_ms = fleet_big.Fleet.winner_ms in
  let converges =
    match (fleet_ms, single_ms) with
    | Some f, Some s -> f <= s *. 1.05
    | _ -> false
  in
  (* (c) bank warm start: a cold search populates the bank, a second
     search seeds from it *)
  let bank = Bank.create () in
  let cold, _ = timed_run ~bank ~jobs:j_hi ~devices:250 () in
  let warm, _ = timed_run ~bank ~jobs:j_hi ~devices:250 () in
  let hit_rate =
    float_of_int warm.Fleet.bank_seeds
    /. float_of_int cfg.Fleet.ga.Ga.population
  in
  (* generation at which each search first reached its final best fitness *)
  let gen_of_best ga =
    match ga.Ga.best with
    | None -> None
    | Some (_, fit) ->
      List.find_map
        (fun r ->
           if r.Ga.ev_fitness = Some fit then Some r.Ga.ev_generation
           else None)
        ga.Ga.history
  in
  let gens_saved =
    match (gen_of_best cold.Fleet.ga, gen_of_best warm.Fleet.ga) with
    | Some c, Some w -> c - w
    | _ -> 0
  in
  let fmt_ms = function Some ms -> Printf.sprintf "%.3f" ms | None -> "null" in
  let scaling_json =
    String.concat ",\n    "
      (List.map
         (fun (devices, r1, w1, rj, wj) ->
            Printf.sprintf
              {|{ "devices": %d, "capable": %d, "evaluations": %d, "fleet_samples": %d, "j1": { "wall_s": %.2f, "evals_per_sec": %.2f, "samples_per_sec": %.0f }, "j%d": { "wall_s": %.2f, "evals_per_sec": %.2f, "samples_per_sec": %.0f }, "digest": "%s" }|}
              devices r1.Fleet.capable r1.Fleet.ga.Ga.evaluations
              r1.Fleet.fleet_samples w1 (evals_per_sec r1 w1)
              (samples_per_sec r1 w1) j_hi wj (evals_per_sec rj wj)
              (samples_per_sec rj wj) r1.Fleet.history_digest)
         scaling)
  in
  (* judged on the largest fleet: the most work per run, so scheduling
     overhead is smallest relative to the evaluations themselves.  On a
     single-core box extra domains can only time-slice, so the scaling
     expectation is conditional on the hardware (CI gates on
     scales_with_jobs || cores == 1). *)
  let cores = Domain.recommended_domain_count () in
  let scales =
    match List.rev scaling with
    | (_, r1, w1, rj, wj) :: _ ->
      evals_per_sec rj wj > evals_per_sec r1 w1
    | [] -> false
  in
  let oc = open_out "BENCH_fleet.json" in
  Printf.fprintf oc
    {|{
  "workload": "FFT GA sharded over a simulated device fleet (quick config, 3 generations)",
  "seed": %d,
  "jobs_hi": %d,
  "cores": %d,
  "scaling": [
    %s
  ],
  "scales_with_jobs": %b,
  "convergence": {
    "budget_evaluations": { "fleet": %d, "single": %d },
    "fleet_winner_ms": %s,
    "single_winner_ms": %s,
    "fleet_within_5pct": %b
  },
  "bank": {
    "cold_entries": %d,
    "warm_seeds_used": %d,
    "hit_rate": %.3f,
    "gen_of_best_cold": %d,
    "gen_of_best_warm": %d,
    "generations_saved": %d,
    "cold_digest": "%s",
    "warm_digest": "%s"
  }
}
|}
    seed j_hi cores scaling_json scales fleet_big.Fleet.ga.Ga.evaluations
    ga_single.Ga.evaluations (fmt_ms fleet_ms) (fmt_ms single_ms) converges
    (Bank.size bank) warm.Fleet.bank_seeds hit_rate
    (Option.value ~default:(-1) (gen_of_best cold.Fleet.ga))
    (Option.value ~default:(-1) (gen_of_best warm.Fleet.ga))
    gens_saved cold.Fleet.history_digest warm.Fleet.history_digest;
  close_out oc;
  Printf.printf "fleet benchmark (FFT, %d-generation quick GA)\n"
    cfg.Fleet.ga.Ga.generations;
  List.iter
    (fun (devices, r1, w1, rj, wj) ->
       Printf.printf
         "  %5d devices  j1 %6.1f s (%5.1f evals/s, %6.0f samples/s)   \
          j%d %6.1f s (%5.1f evals/s, %6.0f samples/s)\n"
         devices w1 (evals_per_sec r1 w1) (samples_per_sec r1 w1) j_hi wj
         (evals_per_sec rj wj) (samples_per_sec rj wj))
    scaling;
  Printf.printf
    "  histories byte-identical across -j1/-j%d at every size (%d core(s): \
     %s)\n"
    j_hi cores
    (if scales then "evals/sec scales with -j"
     else if cores <= 1 then "single core, -j scaling not expected"
     else "evals/sec did NOT scale with -j");
  Printf.printf
    "  convergence: fleet winner %s ms vs single-device %s ms at equal \
     budget %s\n"
    (fmt_ms fleet_ms) (fmt_ms single_ms)
    (if converges then "(within 5%)" else "(NOT within 5%)");
  Printf.printf
    "  bank: %d entries after cold run; warm run used %d seed(s) \
     (hit rate %.2f), %d generation(s) saved to best\n"
    (Bank.size bank) warm.Fleet.bank_seeds hit_rate gens_saved;
  print_endline "wrote BENCH_fleet.json"

(* --------------------------- serve benchmark ------------------------- *)

(* The service-mode benchmark: N apps' searches multiplexed over one shared
   evaluation pool by the round-robin scheduler (Repro_core.Serve).
   Measures (a) the digest contract — every served tenant reproduces the
   digest of a standalone [Pipeline.optimize] run, at every admission
   width; (b) throughput as the admission-control width grows (1, 4 and 8
   concurrent apps over the same request set), with the fairness spread of
   the round-robin scheduler; and (c) kill/resume cost: a serve run
   aborted mid-search and resumed from its per-tenant checkpoints must
   spend no extra live evaluation batches versus an uninterrupted run
   (journal replay serves recorded outcomes without evaluating), with the
   wall-clock overhead — mostly the re-run captures — reported beside it.
   Writes BENCH_serve.json for CI. *)
let serve_bench ~jobs () =
  let module P = Repro_core.Pipeline in
  let module Serve = Repro_core.Serve in
  let seed = 7 in
  let cfg = { Ga.quick_config with Ga.population = 8; Ga.generations = 3 } in
  let apps =
    List.filter_map
      (fun n ->
         match Repro_apps.Registry.find n with
         | Some a when P.capture_corpus ~seed ~k:1 a <> None -> Some a
         | Some _ | None -> None)
      [ "FFT"; "SOR"; "MonteCarlo"; "LU"; "Sieve"; "BubbleSort";
        "SelectionSort"; "Fibonacci.iter" ]
  in
  let n_apps = List.length apps in
  let name_of a = a.Repro_apps.Registry.name in
  (* (a) the contract's right-hand side: what each app's standalone
     [repro optimize APP --seed 7] produces *)
  let standalone =
    List.map
      (fun a ->
         Repro_lir.Stagecache.reset ();
         let t0 = Unix.gettimeofday () in
         let co = Option.get (P.capture_corpus ~seed ~k:1 a) in
         let opt =
           P.optimize ~seed:(seed + 13) ~cfg
             ~quarantine:(P.create_quarantine_log ())
             ~corpus:co.P.co_entries a co.P.co_primary
         in
         (name_of a, P.search_digest opt, Unix.gettimeofday () -. t0))
      apps
  in
  let standalone_wall =
    List.fold_left (fun acc (_, _, w) -> acc +. w) 0. standalone
  in
  (* one serve run over the full request set; checkpoints and the abort
     injection are optional.  Stage cache reset so every run compiles cold,
     like a fresh service process. *)
  let serve_run ?abort_after ?ckpts ~max_active () =
    Repro_lir.Stagecache.reset ();
    let t =
      Serve.create ~jobs ~queue_capacity:n_apps ?abort_after ~max_active ()
    in
    let t0 = Unix.gettimeofday () in
    let aborted =
      try
        List.iter
          (fun a ->
             let checkpoint =
               Option.map (fun c -> List.assoc (name_of a) c) ckpts
             in
             ignore (Serve.submit t (Serve.request ~seed ~cfg ?checkpoint a)))
          apps;
        Serve.drive t;
        false
      with Repro_core.Checkpoint.Injected_abort -> true
    in
    let wall = Unix.gettimeofday () -. t0 in
    let reports = Serve.reports t in
    let stats = Serve.stats t in
    Serve.shutdown t;
    (aborted, wall, reports, stats)
  in
  let digests_match reports =
    List.for_all2
      (fun (app, digest, _) r ->
         r.Serve.rp_app = app && r.Serve.rp_digest = Some digest)
      standalone reports
  in
  let live_batches reports =
    List.fold_left (fun acc r -> acc + r.Serve.rp_live_batches) 0 reports
  in
  (* (b) throughput vs admission width over the same request set *)
  let widths = List.filter (fun w -> w <= n_apps) [ 1; 4; 8 ] in
  let throughput =
    List.map
      (fun max_active ->
         let aborted, wall, reports, stats = serve_run ~max_active () in
         if aborted then failwith "serve aborted without an injection";
         if not (digests_match reports) then
           failwith
             (Printf.sprintf
                "serve digest contract violation at max_active=%d" max_active);
         (max_active, wall, stats))
      widths
  in
  (* (c) kill after a few live batches, resume from the checkpoints *)
  let ckpts =
    List.map
      (fun a ->
         let f = Filename.temp_file "repro_bench_serve" ".ckpt" in
         Sys.remove f;
         (name_of a, f))
      apps
  in
  Fun.protect
    ~finally:(fun () ->
        List.iter (fun (_, f) -> if Sys.file_exists f then Sys.remove f) ckpts)
  @@ fun () ->
  let abort_after = n_apps in
  let full_run =
    let aborted, wall, reports, _ = serve_run ~ckpts ~max_active:n_apps () in
    if aborted || not (digests_match reports) then
      failwith "checkpointed full serve run broke the digest contract";
    (wall, live_batches reports)
  in
  List.iter (fun (_, f) -> if Sys.file_exists f then Sys.remove f) ckpts;
  let interrupted =
    let aborted, wall, reports, _ =
      serve_run ~ckpts ~abort_after ~max_active:n_apps ()
    in
    if not aborted then failwith "abort injection did not fire";
    (wall, live_batches reports)
  in
  let resumed =
    let aborted, wall, reports, _ = serve_run ~ckpts ~max_active:n_apps () in
    if aborted || not (digests_match reports) then
      failwith "resumed serve run broke the digest contract";
    let replayed =
      List.fold_left (fun acc r -> acc + r.Serve.rp_replayed_batches) 0 reports
    in
    if replayed = 0 then failwith "resumed run replayed nothing";
    (wall, live_batches reports, replayed)
  in
  let wall_full, live_full = full_run in
  let wall_int, live_int = interrupted in
  let wall_res, live_res, replayed = resumed in
  let extra_live = live_int + live_res - live_full in
  let overhead_batches = float_of_int extra_live /. float_of_int live_full in
  let overhead_wall = (wall_int +. wall_res -. wall_full) /. wall_full in
  let concurrent_progress =
    List.for_all
      (fun (w, _, s) -> w < 2 || s.Serve.st_concurrent_rounds >= 2)
      throughput
  in
  let fairness_worst =
    List.fold_left
      (fun acc (_, _, s) -> Float.max acc s.Serve.st_fairness_spread)
      0. throughput
  in
  let throughput_json =
    String.concat ",\n    "
      (List.map
         (fun (w, wall, s) ->
            Printf.sprintf
              {|{ "max_active": %d, "wall_s": %.2f, "apps_per_min": %.2f, "rounds": %d, "concurrent_rounds": %d, "peak_active": %d, "fairness_spread": %.4f, "digests_match": true }|}
              w wall
              (float_of_int n_apps /. wall *. 60.)
              s.Serve.st_rounds s.Serve.st_concurrent_rounds
              s.Serve.st_peak_active s.Serve.st_fairness_spread)
         throughput)
  in
  let standalone_json =
    String.concat ",\n    "
      (List.map
         (fun (app, digest, w) ->
            Printf.sprintf {|{ "app": "%s", "digest": "%s", "wall_s": %.2f }|}
              app digest w)
         standalone)
  in
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    {|{
  "workload": "%d apps served over one shared pool (quick config, %d generations x %d genomes)",
  "seed": %d,
  "jobs": %d,
  "apps": %d,
  "standalone": [
    %s
  ],
  "standalone_wall_s": %.2f,
  "throughput": [
    %s
  ],
  "concurrent_progress": %b,
  "fairness_spread_worst": %.4f,
  "resume": {
    "abort_after_batches": %d,
    "full": { "wall_s": %.2f, "live_batches": %d },
    "interrupted": { "wall_s": %.2f, "live_batches": %d },
    "resumed": { "wall_s": %.2f, "live_batches": %d, "replayed_batches": %d },
    "extra_live_batches": %d,
    "resume_overhead_batches": %.4f,
    "resume_overhead_wall": %.4f,
    "digests_match": true
  }
}
|}
    n_apps cfg.Ga.generations cfg.Ga.population seed jobs n_apps
    standalone_json standalone_wall throughput_json concurrent_progress
    fairness_worst abort_after wall_full live_full wall_int live_int wall_res
    live_res replayed extra_live overhead_batches overhead_wall;
  close_out oc;
  Printf.printf "serve benchmark (%d apps, -j %d)\n" n_apps jobs;
  List.iter
    (fun (w, wall, s) ->
       Printf.printf
         "  max_active %d: %6.1f s (%5.2f apps/min), %d rounds (%d \
          concurrent), fairness spread %.4f\n"
         w wall
         (float_of_int n_apps /. wall *. 60.)
         s.Serve.st_rounds s.Serve.st_concurrent_rounds
         s.Serve.st_fairness_spread)
    throughput;
  Printf.printf
    "  every tenant matched its standalone digest at every width \
     (standalone total %.1f s)\n"
    standalone_wall;
  Printf.printf
    "  kill after %d batches + resume: %d extra live batch(es) (%.1f%% of \
     %d), wall %.2f s + %.2f s vs %.2f s uninterrupted (%.1f%% overhead), \
     %d batch(es) replayed from journals\n"
    abort_after extra_live (100. *. overhead_batches) live_full wall_int
    wall_res wall_full (100. *. overhead_wall) replayed;
  print_endline "wrote BENCH_serve.json"

let () =
  let full = ref false in
  let eager = ref false in
  let jobs = ref 1 in
  let no_cache = ref false in
  let trace = ref None in
  let metrics = ref false in
  let faults = ref None in
  let names_rev = ref [] in
  let usage () =
    prerr_endline
      "usage: bench/main.exe [EXPERIMENT...] [--full] [--eager] [-j N] \
       [--no-cache] [--no-stage-cache] [--engine ref|fused] [--trace FILE] \
       [--metrics] [--faults SPEC]";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest -> full := true; parse rest
    | "--eager" :: rest -> eager := true; parse rest
    | "--no-cache" :: rest -> no_cache := true; parse rest
    | "--no-stage-cache" :: rest ->
      Repro_lir.Stagecache.set_enabled false;
      parse rest
    | "--metrics" :: rest -> metrics := true; parse rest
    | "--engine" :: e :: rest ->
      (match Repro_lir.Blockexec.engine_of_string e with
       | Some eng -> Repro_lir.Blockexec.set_default_engine eng; parse rest
       | None ->
         Printf.eprintf "bench: --engine expects ref or fused, got %s\n" e;
         usage ())
    | [ "--engine" ] ->
      prerr_endline "bench: --engine expects ref or fused";
      usage ()
    | "--trace" :: file :: rest -> trace := Some file; parse rest
    | [ "--trace" ] ->
      prerr_endline "bench: --trace expects a file name";
      usage ()
    | "--faults" :: spec :: rest ->
      (match Repro_util.Faults.parse_spec spec with
       | Ok cfg -> faults := Some cfg; parse rest
       | Error msg ->
         Printf.eprintf "bench: --faults: %s\n" msg;
         usage ())
    | [ "--faults" ] ->
      prerr_endline "bench: --faults expects a specification";
      usage ()
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
       | Some v when v >= 1 -> jobs := v; parse rest
       | Some _ | None ->
         prerr_endline "bench: -j expects a positive integer";
         usage ())
    | [ "-j" ] | [ "--jobs" ] ->
      prerr_endline "bench: -j expects a positive integer";
      usage ()
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
      Printf.eprintf "bench: unknown option %s\n" a;
      usage ()
    | a :: rest -> names_rev := a :: !names_rev; parse rest
  in
  parse (Array.to_list Sys.argv |> List.tl);
  let names = List.rev !names_rev in
  let cfg = if !full then Ga.default_config else Ga.quick_config in
  if !trace <> None || !metrics then Repro_util.Trace.enable ();
  (match !faults with
   | Some cfg ->
     Repro_util.Faults.enable cfg;
     Repro_core.Pipeline.reset_quarantine ()
   | None -> ());
  let export_observability () =
    (match !trace with
     | Some file ->
       Repro_util.Trace.write_chrome file;
       Printf.printf "trace written to %s\n" file
     | None -> ());
    if !metrics then Repro_util.Trace.print_summary ();
    (match !faults with
     | Some cfg ->
       let module F = Repro_util.Faults in
       Printf.printf "fault injection (%s): %d faults injected\n"
         (F.spec_string cfg) (F.injected ());
       List.iter
         (fun (p, n) ->
            if n > 0 then Printf.printf "  %-18s %d\n" (F.point_name p) n)
         (F.injected_by_point ());
       let entries = Repro_core.Pipeline.quarantine_summary () in
       Printf.printf "quarantine: %d binary(ies) persistently failed \
                      verification\n"
         (List.length entries);
       F.disable ()
     | None -> ())
  in
  if names = [ "bechamel" ] then bechamel_suite ()
  else if names = [ "replay" ] then replay_bench ()
  else if names = [ "storage" ] then storage_bench ()
  else if names = [ "corpus" ] then corpus_bench ()
  else if names = [ "exec" ] then exec_bench ()
  else if names = [ "compile" ] then compile_bench ()
  else if names = [ "fleet" ] then fleet_bench ~jobs:!jobs ()
  else if names = [ "serve" ] then serve_bench ~jobs:!jobs ()
  else begin
    Fun.protect ~finally:export_observability (fun () ->
        run_all ~cfg ~eager:!eager ~jobs:!jobs ~cache:(not !no_cache) names;
        print_newline ();
        Repro_search.Evalpool.print_stats ~label:"evaluation pools"
          (Repro_search.Evalpool.cumulative_stats ());
        Repro_lir.Stagecache.print_stats (Repro_lir.Stagecache.stats ()));
    print_endline "done.  See EXPERIMENTS.md for paper-vs-measured notes."
  end
