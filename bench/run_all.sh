#!/bin/sh
# Reproduce every paper figure and benchmark artifact in one command.
#
#   ./bench/run_all.sh             # quick GA config (CI-sized searches)
#   ./bench/run_all.sh --full      # the paper's 11x50 GA configuration
#
# Prints the paper-figure tables (Table 1, Figures 1-3 and 7-11) to stdout
# and leaves one JSON per microbenchmark in the repository root:
#
#   BENCH_replay.json    replay setup/verify/throughput microbenchmark
#   BENCH_exec.json      block-fused vs reference execution engine
#   BENCH_compile.json   staged-compilation cache (cold vs cached)
#   BENCH_storage.json   content-addressed device store + dedup ratio
#   BENCH_corpus.json    multi-input verification survival experiment
#   BENCH_fleet.json     device-fleet scaling, convergence, genome bank
#   BENCH_serve.json     multi-app serve scheduler + kill/resume overhead
#
# EXPERIMENTS.md has a reading guide for each file.  Every run is
# fixed-seed: re-running produces the same tables and the same JSON
# (modulo wall-clock fields).

set -e
cd "$(dirname "$0")/.."

run() {
  echo
  echo "------------------------------------------------------------"
  echo ">> bench/main.exe $*"
  echo "------------------------------------------------------------"
  opam exec -- dune exec bench/main.exe -- "$@"
}

opam exec -- dune build

# paper-figure tables (no arguments = every table/figure experiment)
run "$@"

# microbenchmarks, one JSON artifact each
run replay
run exec
run compile
run storage
run corpus
run fleet
run serve

echo
echo "artifacts:"
ls -l BENCH_*.json
