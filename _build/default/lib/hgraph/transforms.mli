(** Dialect-agnostic IR transformations.

    These are the building blocks of both compilers in the system: the
    conservative Android pipeline ({!Android}) composes the safe ones with
    fixed parameters; the LLVM-style optimization space (lib/lir) re-exposes
    them with tunable parameters alongside its decomposed-dialect passes.
    Every function returns a new function graph; inputs are not mutated. *)

val const_fold : Hir.func -> Hir.func
(** Block-local constant folding, including branch folding of [If]
    terminators whose operands are known constants.  Division by a known
    zero is left in place (it must raise at runtime). *)

val simplify : Hir.func -> Hir.func
(** Algebraic instruction simplification: additive/multiplicative
    identities, multiplication by a power of two to shift, [x-x], double
    negation, comparison canonicalization.  Integer-only where value-exact;
    float identities are restricted to [+0.0]-safe cases. *)

val copy_prop : Hir.func -> Hir.func
(** Block-local copy propagation into operands. *)

val dce : Hir.func -> Hir.func
(** Liveness-based dead code elimination of pure instructions, plus removal
    of unreachable blocks. *)

val cse_local : Hir.func -> Hir.func
(** Block-local value numbering over pure instructions and memory loads
    (with a memory epoch invalidated by stores and calls).  Redundant
    composite accesses are replaced wholesale, which also removes their
    implicit checks — the sound equivalent of ART's GVN over checked
    HInstructions. *)

val load_store_elim : Hir.func -> Hir.func
(** Block-local store-to-load forwarding and dead-store elimination. *)

val licm : Hir.func -> Hir.func
(** Loop-invariant code motion of pure instructions into a freshly created
    preheader.  Memory operations are never moved (the unsafe variant in the
    LLVM space does that). *)

val simplify_cfg : Hir.func -> Hir.func
(** Remove unreachable blocks, thread trivial goto blocks, merge blocks with
    a unique predecessor/successor pair. *)

val predict_static : Hir.func -> Hir.func
(** Static branch prediction: back edges predicted taken. *)

val inline_calls :
  get_func:(int -> Hir.func option) -> threshold:int -> ?max_depth:int ->
  Hir.func -> Hir.func
(** Inline static calls whose callee body has at most [threshold]
    instructions.  [get_func] supplies callee graphs (and None for
    uncompilable callees).  Recursion is refused; [max_depth] bounds nested
    inlining (default 3). *)

val instr_count : Hir.func -> int
