(** HGraph construction: dex bytecode to the composite IR dialect.

    Splits the linear bytecode into basic blocks, converts instructions
    one-to-one into composite (implicitly checked) IR, and inserts a
    [SuspendCheck] in every natural-loop header as the Android compiler
    does.  Methods the Android compiler cannot process are rejected
    ({!Uncompilable}): in this model, methods with try/catch handlers, with
    pathologically many registers, or with huge bodies. *)

exception Uncompilable of string

val func : Repro_dex.Bytecode.dexfile -> int -> Hir.func
(** Build the graph for one method id.  @raise Uncompilable. *)

val compilable : Repro_dex.Bytecode.dexfile -> int -> bool

val max_registers : int
val max_code_length : int
