(** The baseline Android compiler: HGraph plus a fixed, conservative
    optimization pipeline, "designed to be safe rather than highly
    optimizing" (paper §3.5).

    The real dex2oat backend registers 18 distinct optimizations
    ([art_optimization_names]); this model implements the data-flow core of
    that set on the composite dialect with deliberately conservative
    parameters (tiny inlining threshold, block-local value numbering, no
    loop restructuring). *)

val art_optimization_names : string list
(** The 18 optimization names of the Android 10 optimizing backend, for
    documentation and the CLI. *)

val pipeline :
  get_func:(int -> Hir.func option) -> Hir.func -> Hir.func
(** Run the Android optimization pipeline on a composite-dialect graph.
    [get_func] resolves callees for the (conservative) inliner. *)

val inline_threshold : int

val compile_method :
  Repro_dex.Bytecode.dexfile -> int -> Hir.func
(** Build + optimize one method: the "Android compiler" path.
    @raise Build.Uncompilable *)
