let art_optimization_names = [
  "bounds_check_elimination";
  "cha_guard_optimization";
  "code_sinking";
  "constant_folding";
  "constructor_fence_redundancy_elimination";
  "dead_code_elimination";
  "global_value_numbering";
  "induction_variable_analysis";
  "inliner";
  "instruction_simplifier";
  "intrinsics_recognition";
  "licm";
  "load_store_analysis";
  "load_store_elimination";
  "loop_optimization";
  "scheduling";
  "select_generator";
  "side_effects_analysis";
]

let inline_threshold = 18

let pipeline ~get_func f =
  let ( |> ) = Stdlib.( |> ) in
  f
  |> Transforms.simplify_cfg
  |> Transforms.const_fold
  |> Transforms.simplify
  |> Transforms.copy_prop
  |> Transforms.dce
  |> Transforms.inline_calls ~get_func ~threshold:inline_threshold ~max_depth:2
  |> Transforms.const_fold
  |> Transforms.simplify
  |> Transforms.copy_prop
  |> Transforms.cse_local
  |> Transforms.load_store_elim
  |> Transforms.licm
  |> Transforms.dce
  |> Transforms.simplify_cfg
  |> Transforms.predict_static

(* Callee resolver that never fails: uncompilable callees stay as calls. *)
let rec compile_method dx mid = pipeline ~get_func:(builder dx) (Build.func dx mid)

and builder dx mid =
  match Build.func dx mid with
  | f -> Some f
  | exception Build.Uncompilable _ -> None
