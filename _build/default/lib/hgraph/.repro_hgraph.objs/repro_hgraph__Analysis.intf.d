lib/hgraph/analysis.mli: Hashtbl Hir Repro_util Set
