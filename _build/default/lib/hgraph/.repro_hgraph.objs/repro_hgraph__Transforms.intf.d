lib/hgraph/transforms.mli: Hir
