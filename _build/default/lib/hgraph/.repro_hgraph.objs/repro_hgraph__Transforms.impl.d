lib/hgraph/transforms.ml: Analysis Float Hashtbl Hir List Option Repro_dex Repro_util
