lib/hgraph/android.ml: Build Stdlib Transforms
