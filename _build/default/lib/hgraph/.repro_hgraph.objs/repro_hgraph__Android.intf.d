lib/hgraph/android.mli: Hir Repro_dex
