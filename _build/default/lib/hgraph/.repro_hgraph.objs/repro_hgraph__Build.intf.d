lib/hgraph/build.mli: Hir Repro_dex
