lib/hgraph/build.ml: Array Hashtbl Hir List Option Repro_dex Repro_util
