lib/hgraph/analysis.ml: Hashtbl Hir Int List Option Repro_util Set
