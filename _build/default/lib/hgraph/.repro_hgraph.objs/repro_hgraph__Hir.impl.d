lib/hgraph/hir.ml: Buffer Hashtbl List Option Printf Repro_dex Repro_util String
