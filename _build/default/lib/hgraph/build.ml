module B = Repro_dex.Bytecode

exception Uncompilable of string

let max_registers = 256
let max_code_length = 4000

let check_compilable (m : B.compiled_method) =
  if m.B.cm_has_try then
    raise (Uncompilable "try/catch handlers are not supported by the backend");
  if m.B.cm_nregs > max_registers then
    raise (Uncompilable "too many registers");
  if Array.length m.B.cm_code > max_code_length then
    raise (Uncompilable "method body too large")

let compilable dx mid =
  match check_compilable dx.B.dx_methods.(mid) with
  | () -> true
  | exception Uncompilable _ -> false

(* Leaders: entry, branch targets, and instructions following a terminator. *)
let leaders (code : B.insn array) =
  let n = Array.length code in
  let lead = Array.make n false in
  lead.(0) <- true;
  Array.iteri
    (fun pc insn ->
       let mark t = if t < n then lead.(t) <- true in
       match insn with
       | B.If (_, _, _, t) | B.Ifz (_, _, t) ->
         mark t;
         mark (pc + 1)
       | B.Goto t ->
         mark t;
         mark (pc + 1)
       | B.Ret _ | B.Throw _ -> mark (pc + 1)
       | B.Const _ | B.Move _ | B.Binop _ | B.Unop _ | B.IntToFloat _
       | B.FloatToInt _ | B.NewObj _ | B.NewArr _ | B.ALoad _ | B.AStore _
       | B.ArrLen _ | B.IGet _ | B.IPut _ | B.SGet _ | B.SPut _
       | B.InvokeStatic _ | B.InvokeVirtual _ | B.InvokeNative _ -> ())
    code;
  lead

let instr_of_bytecode ~mid ~pc (insn : B.insn) : Hir.instr =
  match insn with
  | B.Const (d, c) -> Hir.Const (d, c)
  | B.Move (d, s) -> Hir.Move (d, s)
  | B.Binop (op, d, a, b) -> Hir.Binop (op, d, a, b)
  | B.Unop (op, d, a) -> Hir.Unop (op, d, a)
  | B.IntToFloat (d, a) -> Hir.I2f (d, a)
  | B.FloatToInt (d, a) -> Hir.F2i (d, a)
  | B.NewObj (d, c) -> Hir.NewObj (d, c)
  | B.NewArr (d, k, n) -> Hir.NewArr (d, k, n)
  | B.ALoad (k, d, a, i) -> Hir.ALoadC (k, d, a, i)
  | B.AStore (k, a, i, s) -> Hir.AStoreC (k, a, i, s)
  | B.ArrLen (d, a) -> Hir.ArrLenC (d, a)
  | B.IGet (k, d, o, f) -> Hir.IGetC (k, d, o, f)
  | B.IPut (k, o, s, f) -> Hir.IPutC (k, o, s, f)
  | B.SGet (k, d, slot) -> Hir.SGet (k, d, slot)
  | B.SPut (k, slot, s) -> Hir.SPut (k, slot, s)
  | B.InvokeStatic (ret, mid, args) -> Hir.CallStatic (ret, mid, args)
  | B.InvokeVirtual (ret, slot, args) -> Hir.CallVirtual (ret, slot, args, (mid, pc))
  | B.InvokeNative (ret, n, args) -> Hir.CallNative (ret, n, args, Hir.Jni)
  | B.If _ | B.Ifz _ | B.Goto _ | B.Ret _ | B.Throw _ ->
    invalid_arg "Build.instr_of_bytecode: terminator"

let func (dx : B.dexfile) mid : Hir.func =
  let m = dx.B.dx_methods.(mid) in
  check_compilable m;
  let code = m.B.cm_code in
  let n = Array.length code in
  let lead = leaders code in
  (* Block id of each leader pc. *)
  let bid_of_pc = Hashtbl.create 16 in
  let next = ref 0 in
  for pc = 0 to n - 1 do
    if lead.(pc) then begin
      Hashtbl.replace bid_of_pc pc !next;
      incr next
    end
  done;
  let blocks = Hashtbl.create 16 in
  let f = {
    Hir.f_mid = mid;
    f_name = B.method_full_name m;
    f_nparams = m.B.cm_nparams;
    f_nregs = m.B.cm_nregs;
    f_blocks = blocks;
    f_entry = 0;
    f_next_bid = !next;
    f_pressure = None;
  } in
  let target pc =
    match Hashtbl.find_opt bid_of_pc pc with
    | Some b -> b
    | None -> invalid_arg "Build.func: branch into middle of block"
  in
  let pc = ref 0 in
  while !pc < n do
    let start = !pc in
    let bid = target start in
    let insns = ref [] in
    let term = ref None in
    let continue_ = ref true in
    while !continue_ do
      let cur = !pc in
      (match code.(cur) with
       | B.If (c, a, b, t) ->
         term := Some (Hir.If (c, a, Some b, target t, target (cur + 1), Hir.Predict_none));
         continue_ := false
       | B.Ifz (c, a, t) ->
         term := Some (Hir.If (c, a, None, target t, target (cur + 1), Hir.Predict_none));
         continue_ := false
       | B.Goto t ->
         term := Some (Hir.Goto (target t));
         continue_ := false
       | B.Ret r ->
         term := Some (Hir.Ret r);
         continue_ := false
       | B.Throw r ->
         term := Some (Hir.ThrowT r);
         continue_ := false
       | other -> insns := instr_of_bytecode ~mid ~pc:cur other :: !insns);
      incr pc;
      if !continue_ && (!pc >= n || lead.(!pc)) then begin
        (* fall through into the next leader *)
        term := Some (Hir.Goto (target !pc));
        continue_ := false
      end
    done;
    Hashtbl.replace blocks bid
      { Hir.insns = List.rev !insns; term = Option.get !term }
  done;
  (* A suspend check ("check call", paper §3.5) at the top of every
     back-edge source block: one check per loop iteration.  Loop
     restructuring passes duplicate these blocks, which is exactly what the
     custom GC-check optimization later cleans up. *)
  let g = Hir.cfg f in
  let latches =
    List.concat_map (fun l -> l.Repro_util.Cfg.back_edges) (Repro_util.Cfg.loops g)
    |> List.sort_uniq compare
  in
  List.iter
    (fun bid ->
       let b = Hir.block f bid in
       b.Hir.insns <- Hir.SuspendCheck :: b.Hir.insns)
    latches;
  f
