(** A compiled binary: the set of optimized method graphs installed for an
    application, plus its code size (the GA's tiebreaker). *)

type t = {
  funcs : (int, Repro_hgraph.Hir.func) Hashtbl.t;  (** method id -> code *)
  mutable size : int;                               (** total instructions *)
}

val create : Repro_hgraph.Hir.func list -> t
val find : t -> int -> Repro_hgraph.Hir.func option
val mids : t -> int list
val recompute_size : t -> unit
