(** The LIR executor: runs decomposed-dialect graphs under the cycle cost
    model — the "hardware" the compiled binaries execute on.

    Unlike the interpreter, it performs no implicit checks: safety comes
    only from the Guard* instructions present in the code.  If an unsound
    optimization removed a guard the raw access proceeds, yielding either a
    silently wrong value (a mapped but wrong address) or a {!Segfault}
    (unmapped address) — the two runtime failure modes of Figure 1.

    Integer division follows ARM semantics: [x / 0 = 0] (no trap); the Java
    exception is produced by [GuardDivZero]. *)

exception Segfault of string

val run_func :
  Repro_vm.Exec_ctx.t -> Repro_hgraph.Hir.func ->
  Repro_vm.Value.t list -> Repro_vm.Value.t option
(** Execute one compiled method; callees are routed through
    {!Repro_vm.Exec_ctx.invoke}.
    @raise Segfault, Repro_vm.Exec_ctx.App_exception, Timeout. *)

val dispatcher :
  Binary.t ->
  (Repro_vm.Exec_ctx.t -> int -> Repro_vm.Value.t list -> Repro_vm.Value.t option)
(** A dispatch function executing methods present in the binary as compiled
    code and everything else through the interpreter — the mixed-mode
    runtime of a real Android process. *)

val install : Repro_vm.Exec_ctx.t -> Binary.t -> unit
