(** End-to-end compilation driver: bytecode -> HGraph -> translate ->
    (pass sequence) -> binary.

    Mirrors the paper's `opt`/`llc` invocation: a sequence of named passes
    with integer parameters is applied to every compilable method of the
    region.  Compile failures are first-class outcomes, matching Figure 1's
    taxonomy: invalid parameters raise {!Compile_error}; code-size or
    pass-work explosion raises {!Compile_timeout}. *)

exception Compile_error of string
exception Compile_timeout

type spec = (string * int array) list
(** Pass sequence: (catalog name, parameter values). *)

val size_limit : int
(** Per-function instruction ceiling; beyond it the compile times out. *)

val work_limit : int
(** Total instructions processed across passes before timing out. *)

val android_binary : Repro_dex.Bytecode.dexfile -> int list -> Binary.t
(** Baseline: the Android pipeline per method, then translation.  Methods
    that are uncompilable are silently skipped (they stay interpreted). *)

val llvm_binary :
  ?profile:(Repro_hgraph.Hir.site -> (int * int) list) ->
  Repro_dex.Bytecode.dexfile -> spec -> int list -> Binary.t
(** The LLVM-backend path: build HGraph, translate to the decomposed
    dialect, then apply the pass sequence to every (compilable) method.
    @raise Compile_error on unknown passes or invalid parameters.
    @raise Compile_timeout when budgets are exceeded. *)

val pass_env :
  ?profile:(Repro_hgraph.Hir.site -> (int * int) list) ->
  Repro_dex.Bytecode.dexfile -> Passes.env
