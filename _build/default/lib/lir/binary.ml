module Hir = Repro_hgraph.Hir

type t = {
  funcs : (int, Hir.func) Hashtbl.t;
  mutable size : int;
}

let create fs =
  let funcs = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace funcs f.Hir.f_mid f) fs;
  { funcs; size = List.fold_left (fun acc f -> acc + Hir.size f) 0 fs }

let find t mid = Hashtbl.find_opt t.funcs mid
let mids t = Hashtbl.fold (fun mid _ acc -> mid :: acc) t.funcs [] |> List.sort compare

let recompute_size t =
  t.size <- Hashtbl.fold (fun _ f acc -> acc + Hir.size f) t.funcs 0
