lib/lir/compile.ml: Binary List Passes Repro_dex Repro_hgraph Translate
