lib/lir/binary.ml: Hashtbl List Repro_hgraph
