lib/lir/passes.ml: Array Float Hashtbl List Option Printf Repro_dex Repro_hgraph Repro_util Translate
