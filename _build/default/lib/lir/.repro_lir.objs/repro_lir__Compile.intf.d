lib/lir/compile.mli: Binary Passes Repro_dex Repro_hgraph
