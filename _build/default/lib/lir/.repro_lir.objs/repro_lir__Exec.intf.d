lib/lir/exec.mli: Binary Repro_hgraph Repro_vm
