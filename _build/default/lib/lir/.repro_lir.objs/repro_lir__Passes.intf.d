lib/lir/passes.mli: Repro_dex Repro_hgraph
