lib/lir/translate.ml: Array List Repro_dex Repro_hgraph
