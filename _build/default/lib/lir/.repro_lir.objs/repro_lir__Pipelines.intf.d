lib/lir/pipelines.mli: Compile
