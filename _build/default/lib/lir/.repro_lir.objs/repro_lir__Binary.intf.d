lib/lir/binary.mli: Hashtbl Repro_hgraph
