lib/lir/pipelines.ml: Compile String
