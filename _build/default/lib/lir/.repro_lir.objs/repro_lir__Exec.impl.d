lib/lir/exec.ml: Array Binary Float Hashtbl Int64 List Option Repro_dex Repro_hgraph Repro_os Repro_vm
