lib/lir/translate.mli: Repro_dex Repro_hgraph
