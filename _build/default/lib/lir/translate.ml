module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast
module Hir = Repro_hgraph.Hir
open Hir

let kind_of_typ : Ast.typ -> B.elem_kind = function
  | Ast.Tint -> B.Kint
  | Ast.Tfloat -> B.Kfloat
  | Ast.Tbool -> B.Kbool
  | Ast.Tvoid -> B.Kint
  | Ast.Tarray _ | Ast.Tobj _ -> B.Kref

let kind_of_const = function
  | B.Cint _ -> B.Kint
  | B.Cfloat _ -> B.Kfloat
  | B.Cbool _ -> B.Kbool
  | B.Cnull -> B.Kref

let native_ret_kind (n : B.native) : B.elem_kind =
  match n with
  | B.Nsqrt | B.Nsin | B.Ncos | B.Nfloor | B.Nexp | B.Nlog | B.Npow
  | B.Nabs_f | B.Nmin_f | B.Nmax_f -> B.Kfloat
  | B.Nabs_i | B.Nmin_i | B.Nmax_i | B.Nrand | B.Nclock
  | B.Nprint_i | B.Nprint_f | B.Ndraw -> B.Kint

(* Registers have a unique kind in code produced by our lowering (each temp
   and local has one type); a fixpoint handles Move chains across blocks. *)
let infer_kinds (dx : B.dexfile) (f : Hir.func) : B.elem_kind array =
  let kinds = Array.make (max f.f_nregs 1) B.Kint in
  let known = Array.make (max f.f_nregs 1) false in
  let m = dx.B.dx_methods.(f.f_mid) in
  Array.iteri
    (fun i k ->
       if i < f.f_nregs then begin
         kinds.(i) <- k;
         known.(i) <- true
       end)
    m.B.cm_param_kinds;
  let set r k =
    if r < Array.length kinds && not known.(r) then begin
      kinds.(r) <- k;
      known.(r) <- true
    end
  in
  let ret_kind_of_mid mid = kind_of_typ dx.B.dx_methods.(mid).B.cm_ret in
  let changed = ref true in
  let pass () =
    Hir.iter_blocks f (fun _ b ->
        List.iter
          (fun i ->
             match i with
             | Const (d, c) -> set d (kind_of_const c)
             | Move (d, s) -> if known.(s) && not known.(d) then begin
                 set d kinds.(s);
                 changed := true
               end
             | Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne
                      | Ast.Land | Ast.Lor), d, _, _) -> set d B.Kbool
             | Binop (_, d, a, b) ->
               if known.(a) && not known.(d) then begin
                 set d kinds.(a);
                 changed := true
               end
               else if known.(b) && not known.(d) then begin
                 set d kinds.(b);
                 changed := true
               end
             | Fma (d, _, _, _) -> set d B.Kfloat
             | Select (d, _, a, b) ->
               if known.(a) && not known.(d) then begin
                 set d kinds.(a);
                 changed := true
               end
               else if known.(b) && not known.(d) then begin
                 set d kinds.(b);
                 changed := true
               end
             | Unop (Ast.Not, d, _) -> set d B.Kbool
             | Unop (Ast.Neg, d, a) ->
               if known.(a) && not known.(d) then begin
                 set d kinds.(a);
                 changed := true
               end
             | I2f (d, _) -> set d B.Kfloat
             | F2i (d, _) -> set d B.Kint
             | NewObj (d, _) | NewArr (d, _, _) -> set d B.Kref
             | ALoadC (k, d, _, _) | IGetC (k, d, _, _) | SGet (k, d, _)
             | LoadElem (k, d, _, _) | LoadField (k, d, _, _) -> set d k
             | ArrLenC (d, _) | LoadLen (d, _) | LoadClass (d, _) -> set d B.Kint
             | CallStatic (Some d, mid, _) -> set d (ret_kind_of_mid mid)
             | CallVirtual (Some d, _, _, _) ->
               (* virtual return kinds are uniform across overrides; leave
                  unknown destinations as Kint unless a later use refines *)
               set d B.Kint
             | CallNative (Some d, n, _, _) -> set d (native_ret_kind n)
             | CallStatic (None, _, _) | CallVirtual (None, _, _, _)
             | CallNative (None, _, _, _)
             | AStoreC _ | IPutC _ | SPut _ | GuardNull _ | GuardBounds _
             | GuardDivZero _ | StoreElem _ | StoreField _ | SuspendCheck -> ())
          b.insns)
  in
  while !changed do
    changed := false;
    pass ()
  done;
  kinds

(* Route a defining instruction's result through a fresh register: the
   redundancy a mature instruction selection would avoid. *)
let with_redundant_move f i =
  match Hir.def_of i with
  | None -> [ i ]
  | Some d ->
    let t = Hir.fresh_reg f in
    [ Hir.rename_def t i; Hir.Move (d, t) ]

let func ?(naive = false) (dx : B.dexfile) (f0 : Hir.func) : Hir.func =
  let f = Hir.copy f0 in
  let kinds = infer_kinds dx f in
  let kind r = if r < Array.length kinds then kinds.(r) else B.Kint in
  Hir.iter_blocks f (fun _ b ->
      let expand i =
        match i with
        | ALoadC (k, d, a, idx) ->
          let len = Hir.fresh_reg f in
          [ GuardNull a; LoadLen (len, a); GuardBounds (idx, len);
            LoadElem (k, d, a, idx) ]
        | AStoreC (k, a, idx, v) ->
          let len = Hir.fresh_reg f in
          [ GuardNull a; LoadLen (len, a); GuardBounds (idx, len);
            StoreElem (k, a, idx, v) ]
        | ArrLenC (d, a) -> [ GuardNull a; LoadLen (d, a) ]
        | IGetC (k, d, o, off) -> [ GuardNull o; LoadField (k, d, o, off) ]
        | IPutC (k, o, v, off) -> [ GuardNull o; StoreField (k, o, v, off) ]
        | Binop ((Ast.Div | Ast.Rem), _, _, den) when kind den = B.Kint ->
          [ GuardDivZero den; i ]
        | CallVirtual (_, _, recv :: _, _) -> [ GuardNull recv; i ]
        | _ -> [ i ]
      in
      let expand i =
        if naive then List.concat_map (with_redundant_move f) (expand i)
        else expand i
      in
      b.insns <- List.concat_map expand b.insns);
  f
