(** The HGraph-to-LLVM translation (paper §3.5): converts the composite
    dialect into the decomposed one.

    Every implicitly checked operation becomes explicit guards followed by a
    raw access; virtual calls get an explicit receiver null guard; integer
    division gets a zero guard (float division does not trap).  A simple
    whole-function register-kind inference distinguishes int from float
    division.  The output is what the LLVM-style pass space operates on. *)

val infer_kinds :
  Repro_dex.Bytecode.dexfile -> Repro_hgraph.Hir.func ->
  Repro_dex.Bytecode.elem_kind array
(** Kind of each virtual register (length [f_nregs]); registers never
    defined or used default to [Kint]. *)

val func :
  ?naive:bool ->
  Repro_dex.Bytecode.dexfile -> Repro_hgraph.Hir.func -> Repro_hgraph.Hir.func
(** Translate a composite-dialect graph into a decomposed-dialect graph.
    The input is not mutated.

    With [naive:true] (the LLVM-backend path), the translation is the
    work-in-progress one the paper describes (§3.5/§7): every produced
    value goes through an extra register move and every access re-derives
    its guards.  Cleanup passes (copyprop, dce, gvn, guard-dedupe) recover
    the lost ground — which is why unoptimized or randomly-optimized
    LLVM-path binaries are usually slower than the Android compiler's
    output (Figure 2), while a well-chosen sequence beats it. *)
