(** The LLVM-style optimization pass catalog — the search space of the
    genetic algorithm (paper §3.6).

    Passes operate on decomposed-dialect graphs (after {!Translate.func}).
    Each catalog entry declares integer parameters with valid ranges;
    applying a pass with an out-of-range parameter raises {!Bad_param},
    which the driver reports as a compile error (the real toolchain rejects
    invalid flag combinations the same way).

    The catalog deliberately contains *unsafe* passes ([safe = false]):
    value-changing float rewrites, guard removal without proof, alias-blind
    motion.  They reproduce the behaviour of Figure 1: randomly composed
    sequences sometimes produce binaries that crash, hang or silently
    compute wrong results, which only the replay-based verification map can
    filter out. *)

module Hir = Repro_hgraph.Hir

type env = {
  dx : Repro_dex.Bytecode.dexfile;
  get_func : int -> Hir.func option;
  (** decomposed, unoptimized callee bodies for the inliner *)
  profile : (Hir.site -> (int * int) list) option;
  (** dispatch-type histogram per call site (class id, count), descending;
      collected by interpreted replay (§3.4) *)
}

type param = { pname : string; pmin : int; pmax : int; pdefault : int }

type t = {
  name : string;
  params : param list;
  safe : bool;
  descr : string;
  apply : env -> int array -> Hir.func -> Hir.func;
}

exception Bad_param of string

val catalog : t list
val find : string -> t
(** @raise Not_found *)

val run : env -> t -> int array -> Hir.func -> Hir.func
(** Validate parameters then apply.  @raise Bad_param. *)
