(** Replaying captured executions (paper §3.3, Figure 5).

    The loader rebuilds a partial Android process from the snapshot —
    mappings recreated, captured pages placed at their original addresses
    (collisions with the loader's own range are placed via the break-free
    relocation step), allocator and GC accounting restored — and then jumps
    into the hot region under one of three code versions: the original
    Android-compiled code, the interpreter, or a candidate optimized
    binary. *)

type code_version =
  | Android_code of Repro_lir.Binary.t
  | Interpreter
  | Optimized of Repro_lir.Binary.t

type outcome =
  | Finished of Repro_vm.Value.t option * int   (** result, cycles *)
  | Crashed of string
  | Hung                                        (** exceeded the replay fuel *)

type run = {
  outcome : outcome;
  ctx : Repro_vm.Exec_ctx.t;      (** post-replay state, for verification *)
  loader_collisions : int;        (** captured pages that hit loader pages *)
}

val loader_base : int
val loader_pages : int

val run :
  ?fuel:int -> ?cost:Repro_vm.Cost.model ->
  ?record_vcall:(Typeprof.site -> int -> unit) ->
  Repro_dex.Bytecode.dexfile -> Snapshot.t -> code_version -> run
(** Default fuel: 200M cycles (a replay that runs 100x longer than any
    sensible region is declared hung, like a watchdog would). *)

val cycles : run -> int option
(** Cycles if the replay finished. *)
