module Mem = Repro_os.Mem
module Storage = Repro_os.Storage

type page_image = { pg_index : int; pg_data : int64 array }

type t = {
  snap_app : string;
  snap_mid : int;
  snap_args : Repro_vm.Value.t list;
  snap_maps : Mem.mapping list;
  snap_pages : page_image list;
  snap_common : page_image list;
  snap_code_files : (string * int) list;
  snap_heap_next : int;
  snap_alloc_since_gc : int;
}

let program_bytes t = List.length t.snap_pages * Mem.page_size
let common_bytes t = List.length t.snap_common * Mem.page_size

let boot_common_label = "boot-common-pages"

let store storage t =
  Storage.write storage ~label:(t.snap_app ^ "/capture") ~bytes:(program_bytes t);
  if Storage.size storage ~label:boot_common_label = None then
    Storage.write storage ~label:boot_common_label ~bytes:(common_bytes t)

let discard storage t = Storage.delete storage ~label:(t.snap_app ^ "/capture")
