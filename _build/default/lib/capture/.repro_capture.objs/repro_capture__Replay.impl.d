lib/capture/replay.ml: List Printf Repro_dex Repro_lir Repro_os Repro_vm Snapshot
