lib/capture/typeprof.mli: Repro_vm
