lib/capture/verify.mli: Repro_dex Repro_lir Repro_vm Snapshot
