lib/capture/verify.ml: Array Hashtbl List Replay Repro_dex Repro_os Repro_vm Snapshot
