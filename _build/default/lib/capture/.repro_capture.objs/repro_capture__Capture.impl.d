lib/capture/capture.ml: List Repro_os Repro_vm Snapshot
