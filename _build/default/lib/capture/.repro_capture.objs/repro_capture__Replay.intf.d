lib/capture/replay.mli: Repro_dex Repro_lir Repro_vm Snapshot Typeprof
