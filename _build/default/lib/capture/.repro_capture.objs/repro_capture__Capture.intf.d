lib/capture/capture.mli: Repro_vm Snapshot
