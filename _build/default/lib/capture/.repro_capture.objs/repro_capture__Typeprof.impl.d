lib/capture/typeprof.ml: Hashtbl List Option Repro_vm
