lib/capture/snapshot.mli: Repro_os Repro_vm
