lib/capture/snapshot.ml: List Repro_os Repro_vm
