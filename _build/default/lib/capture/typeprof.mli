(** Dispatch-type profiles collected during interpreted replays (§3.4):
    for every virtual call site, the histogram of observed receiver
    classes.  Drives speculative devirtualization and branch hints. *)

type t

type site = int * int
(** (defining method id, bytecode pc) *)

val create : unit -> t

val record : t -> site -> int -> unit
(** Count one dispatch of class id at a site. *)

val lookup : t -> site -> (int * int) list
(** Histogram (class id, count), descending by count; [] if never seen. *)

val install : t -> Repro_vm.Exec_ctx.t -> unit
(** Hook the context so interpreted execution records into this profile. *)

val sites : t -> site list
val total : t -> int
