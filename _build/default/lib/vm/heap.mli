(** Bump-pointer allocation over the paged heap mapping.

    Collection is modelled as a pause charged at safepoint polls (see
    {!Exec_ctx.safepoint}); memory is reclaimed between executions by
    rebuilding the process image, which is how replays run anyway. *)

type t

exception Out_of_memory

val create : Repro_os.Mem.t -> base:int -> npages:int -> t

val restore : Repro_os.Mem.t -> base:int -> npages:int -> next:int -> t
(** Rebuild an allocator whose bump pointer is at [next] — used by the
    replay loader so re-executed regions allocate the same addresses. *)

val alloc : t -> nwords:int -> int
(** Returns the byte address of a zeroed block.  @raise Out_of_memory. *)

val used_words : t -> int
val base : t -> int
val next_addr : t -> int
(** First unallocated address; allocations are contiguous from [base]. *)
