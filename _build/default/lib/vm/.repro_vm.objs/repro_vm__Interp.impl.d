lib/vm/interp.ml: Array Cost Exec_ctx Float Jni List Option Repro_dex Repro_os Value
