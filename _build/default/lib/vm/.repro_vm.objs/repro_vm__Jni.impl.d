lib/vm/jni.ml: Buffer Cost Exec_ctx Float Printf Repro_dex Repro_util Value
