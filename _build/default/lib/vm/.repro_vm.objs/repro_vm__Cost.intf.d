lib/vm/cost.mli: Repro_dex
