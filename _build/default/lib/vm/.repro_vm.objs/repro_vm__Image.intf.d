lib/vm/image.mli: Cost Exec_ctx Repro_dex
