lib/vm/heap.ml: Repro_os
