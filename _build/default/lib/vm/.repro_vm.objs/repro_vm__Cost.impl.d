lib/vm/cost.ml: Repro_dex
