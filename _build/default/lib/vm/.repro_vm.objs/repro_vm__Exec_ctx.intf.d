lib/vm/exec_ctx.mli: Buffer Cost Heap Repro_dex Repro_os Repro_util Value
