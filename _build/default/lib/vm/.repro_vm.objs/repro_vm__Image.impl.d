lib/vm/image.ml: Exec_ctx Heap Int64 List Printf Repro_dex Repro_os
