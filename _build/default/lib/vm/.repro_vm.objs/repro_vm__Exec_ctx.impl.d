lib/vm/exec_ctx.ml: Array Buffer Cost Heap Repro_dex Repro_os Repro_util Value
