lib/vm/jni.mli: Exec_ctx Repro_dex Value
