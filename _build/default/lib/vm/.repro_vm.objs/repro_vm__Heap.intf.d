lib/vm/heap.mli: Repro_os
