lib/vm/interp.mli: Exec_ctx Repro_dex Value
