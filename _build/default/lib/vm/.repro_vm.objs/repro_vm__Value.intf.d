lib/vm/value.mli: Repro_dex
