module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem

type config = {
  runtime_pages : int;
  code_pages : int;
  heap_pages : int;
  stack_pages : int;
  gc_aux_pages : int;
  extra_maps : int;
  warm_heap_pages : int;
}

let default_config = {
  runtime_pages = 3225;        (* 12.6 MB of boot-common runtime objects *)
  code_pages = 2048;
  heap_pages = 16384;          (* 64 MB heap capacity *)
  stack_pages = 8;
  gc_aux_pages = 16;
  extra_maps = 24;
  warm_heap_pages = 64;        (* live objects predating the hot region *)
}

let runtime_base = 0x1000_0000
let code_base = 0x2000_0000
let statics_base = 0x3000_0000
let heap_base = 0x4000_0000
let stack_base = 0x5000_0000
let gc_aux_base = 0x6000_0000
let extra_base = 0x7000_0000

(* Fill pages with position-dependent words so captures have real content. *)
let materialize mem ~base ~npages =
  for p = 0 to npages - 1 do
    let addr = base + (p * Mem.page_size) in
    Mem.write_word mem addr (Int64.of_int (0x5EED + p))
  done

let build ?(config = default_config) ?cost ?seed ?fuel (dx : B.dexfile) =
  let mem = Mem.create () in
  Mem.map mem ~base:runtime_base ~npages:config.runtime_pages ~kind:Mem.Rruntime
    ~name:"[anon:dalvik-runtime]";
  Mem.map mem ~base:code_base ~npages:config.code_pages ~kind:Mem.Rcode
    ~name:"/system/framework/boot.oat";
  let statics_pages = max 1 ((dx.B.dx_nstatics * 8 / Mem.page_size) + 1) in
  Mem.map mem ~base:statics_base ~npages:statics_pages ~kind:Mem.Rstatics
    ~name:"[anon:dalvik-statics]";
  Mem.map mem ~base:heap_base ~npages:config.heap_pages ~kind:Mem.Rheap
    ~name:"[anon:dalvik-main-space]";
  Mem.map mem ~base:stack_base ~npages:config.stack_pages ~kind:Mem.Rstack
    ~name:"[stack]";
  Mem.map mem ~base:gc_aux_base ~npages:config.gc_aux_pages ~kind:Mem.Rgc_aux
    ~name:"[anon:dalvik-gc-cards]";
  for i = 0 to config.extra_maps - 1 do
    Mem.map mem ~base:(extra_base + (i * 4 * Mem.page_size)) ~npages:2
      ~kind:Mem.Rcode ~name:(Printf.sprintf "/system/lib64/lib%02d.so" i)
  done;
  materialize mem ~base:runtime_base ~npages:config.runtime_pages;
  materialize mem ~base:stack_base ~npages:config.stack_pages;
  materialize mem ~base:gc_aux_base ~npages:config.gc_aux_pages;
  (* Static initializers. *)
  List.iter
    (fun { B.si_slot; si_value } ->
       let addr = statics_base + (8 * si_slot) in
       let word =
         match si_value with
         | B.Cint k -> Int64.of_int k
         | B.Cfloat f -> Int64.bits_of_float f
         | B.Cbool b -> if b then 1L else 0L
         | B.Cnull -> 0L
       in
       Mem.write_word mem addr word)
    dx.B.dx_static_inits;
  let heap = Heap.create mem ~base:heap_base ~npages:config.heap_pages in
  (* pre-existing live objects: the app state built up before the region
     of interest runs (assets, caches).  They sit at the bottom of the
     heap; the bump pointer moves past them. *)
  let warm = min config.warm_heap_pages (config.heap_pages - 1) in
  if warm > 0 then begin
    let addr = Heap.alloc heap ~nwords:(warm * Mem.words_per_page) in
    for p = 0 to warm - 1 do
      Mem.write_word mem (addr + (p * Mem.page_size)) (Int64.of_int (0xA11E + p))
    done
  end;
  Mem.reset_stats mem;
  Exec_ctx.create ?cost ?seed ?fuel dx mem heap ~statics_base
