module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem

exception App_exception of int
exception Timeout

let exc_null_pointer = 1000
let exc_out_of_bounds = 1001
let exc_div_by_zero = 1002
let exc_negative_size = 1003
let exc_out_of_memory = 1004
let exc_stack_overflow = 1005

type sample = { s_method : int; s_native : bool }
type call_site = int * int

type t = {
  dx : B.dexfile;
  mem : Mem.t;
  heap : Heap.t;
  cost : Cost.model;
  statics_base : int;
  mutable cycles : int;
  mutable fuel : int;
  rng : Repro_util.Rng.t;
  io : Buffer.t;
  mutable dispatch : t -> int -> Value.t list -> Value.t option;
  mutable on_entry : (int -> Value.t list -> unit) option;
  mutable on_exit : (int -> Value.t option -> unit) option;
  mutable record_vcall : (call_site -> int -> unit) option;
  mutable sample_period : int;
  mutable next_sample : int;
  mutable samples : sample list;
  mutable stack : int list;
  mutable in_native : bool;
  mutable depth : int;
  mutable alloc_since_gc : int;
  mutable gc_count : int;
  mutable gc_cycles : int;
}

let no_dispatch _ _ _ = failwith "Exec_ctx: no dispatcher installed"

let create ?(cost = Cost.default) ?(seed = 0) ?(fuel = 2_000_000_000) dx mem heap
    ~statics_base =
  {
    dx; mem; heap; cost; statics_base;
    cycles = 0;
    fuel;
    rng = Repro_util.Rng.create seed;
    io = Buffer.create 256;
    dispatch = no_dispatch;
    on_entry = None;
    on_exit = None;
    record_vcall = None;
    sample_period = 0;
    next_sample = max_int;
    samples = [];
    stack = [];
    in_native = false;
    depth = 0;
    alloc_since_gc = 0;
    gc_count = 0;
    gc_cycles = 0;
  }

let set_dispatch t d = t.dispatch <- d

let take_sample t =
  let s_method = match t.stack with m :: _ -> m | [] -> -1 in
  t.samples <- { s_method; s_native = t.in_native } :: t.samples;
  t.next_sample <- t.cycles + t.sample_period

let charge t n =
  t.cycles <- t.cycles + n;
  if t.cycles >= t.next_sample && t.sample_period > 0 then take_sample t;
  if t.cycles > t.fuel then raise Timeout

let max_depth = 2000

let invoke t mid args =
  if t.depth >= max_depth then raise (App_exception exc_stack_overflow);
  (match t.on_entry with Some h -> h mid args | None -> ());
  t.stack <- mid :: t.stack;
  t.depth <- t.depth + 1;
  let pop () =
    t.depth <- t.depth - 1;
    t.stack <- (match t.stack with _ :: rest -> rest | [] -> [])
  in
  match t.dispatch t mid args with
  | ret ->
    pop ();
    (match t.on_exit with Some h -> h mid ret | None -> ());
    ret
  | exception e ->
    pop ();
    raise e

(* GC pause model: a collection is triggered at a suspend check once the
   allocation budget is spent; its cost scales with resident heap words. *)
let safepoint t =
  charge t t.cost.Cost.safepoint;
  if t.alloc_since_gc > t.cost.Cost.gc_threshold_words then begin
    let live = Heap.used_words t.heap in
    let pause = t.cost.Cost.gc_pause_base + (live / t.cost.Cost.gc_words_divisor) in
    t.gc_count <- t.gc_count + 1;
    t.gc_cycles <- t.gc_cycles + pause;
    t.alloc_since_gc <- 0;
    charge t pause
  end

let raw_alloc t nwords =
  charge t (t.cost.Cost.alloc_base + (t.cost.Cost.alloc_per_word * nwords));
  t.alloc_since_gc <- t.alloc_since_gc + nwords;
  match Heap.alloc t.heap ~nwords with
  | addr -> addr
  | exception Heap.Out_of_memory -> raise (App_exception exc_out_of_memory)

let alloc_object t cid =
  let nfields = t.dx.B.dx_classes.(cid).B.ci_nfields in
  let addr = raw_alloc t (1 + nfields) in
  Mem.write_int t.mem addr cid;
  addr

let alloc_array t len =
  if len < 0 then raise (App_exception exc_negative_size);
  let addr = raw_alloc t (1 + len) in
  Mem.write_int t.mem addr len;
  addr

let obj_class t addr =
  charge t t.cost.Cost.load;
  Mem.read_int t.mem addr

let array_length t addr =
  charge t t.cost.Cost.load;
  Mem.read_int t.mem addr

let field_addr obj i = obj + (8 * (1 + i))
let elem_addr arr i = arr + (8 * (1 + i))
let static_addr t slot = t.statics_base + (8 * slot)

let elapsed_ms t = float_of_int t.cycles /. float_of_int t.cost.Cost.cycles_per_ms

let vtable_target t ~recv_class ~slot = t.dx.B.dx_classes.(recv_class).B.ci_vtable.(slot)
