(** Implementations of the built-in natives ([Math.*], [Sys.*]).

    The computational work of each native is charged to the context; the
    *transition* cost (JNI trampoline vs inlined intrinsic) is charged by the
    caller, which is how the backend's JNI-to-intrinsic replacement pass
    (paper §3.5) becomes profitable. *)

val call :
  ?as_native:bool ->
  Exec_ctx.t -> Repro_dex.Bytecode.native -> Value.t list -> Value.t option
(** [as_native] (default true) attributes the time to JNI in profiler
    samples; intrinsic-inlined calls pass false so the cycles count as
    compiled code.
    @raise Invalid_argument on arity/type errors (lowering prevents them). *)
