(** The bytecode interpreter — the "Android interpreter" of the paper.

    Used for cold code in online runs and for the interpreted replays that
    build verification maps and dispatch-type profiles (§3.4).  Every memory
    access goes through the paged address space, so captures observe the
    interpreter's page-access behaviour.  All null/bounds/zero checks are
    performed unconditionally. *)

val eval_binop : Repro_dex.Ast.binop -> Value.t -> Value.t -> Value.t
(** Shared arithmetic semantics (also used by the LIR executor).
    @raise Exec_ctx.App_exception on integer division by zero. *)

val eval_cond : Repro_dex.Bytecode.cond -> Value.t -> Value.t -> bool

val interpret : Exec_ctx.t -> int -> Value.t list -> Value.t option
(** Execute one method body, routing callees through {!Exec_ctx.invoke}.
    @raise Exec_ctx.App_exception on an uncaught MiniDex exception.
    @raise Exec_ctx.Timeout when fuel runs out. *)

val install : Exec_ctx.t -> unit
(** Make the context dispatch every call to the interpreter. *)

val run_main : Exec_ctx.t -> Value.t option
(** [invoke] the program entry point with no arguments. *)
