(** Standard process image: the memory layout of a running app.

    Builds the mappings the capture mechanism later walks through
    /proc/self/maps: immutable runtime pages (boot-common), memory-mapped
    code files (never captured, only their paths are logged), static fields,
    heap, stack and GC auxiliary structures (unsafe to protect, always
    stored).  The page counts are per-app configuration, which is what makes
    the capture-cost and storage experiments (Figures 10/11) vary across
    applications. *)

type config = {
  runtime_pages : int;   (** materialized immutable runtime objects *)
  code_pages : int;
  heap_pages : int;      (** heap capacity *)
  stack_pages : int;
  gc_aux_pages : int;
  extra_maps : int;      (** additional small .so mappings (maps entries) *)
  warm_heap_pages : int; (** live heap pages predating the hot region *)
}

val default_config : config

val runtime_base : int
val code_base : int
val statics_base : int
val heap_base : int
val stack_base : int
val gc_aux_base : int
val extra_base : int

val build :
  ?config:config -> ?cost:Cost.model -> ?seed:int -> ?fuel:int ->
  Repro_dex.Bytecode.dexfile -> Exec_ctx.t
(** Fresh address space with all regions mapped, runtime/stack/GC pages
    materialized, static initializers applied, and an execution context
    around it (no dispatcher installed yet). *)
