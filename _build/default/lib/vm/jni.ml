module B = Repro_dex.Bytecode
module Rng = Repro_util.Rng

let f1 args =
  match args with
  | [ v ] -> Value.to_float v
  | _ -> invalid_arg "Jni: arity"

let f2 args =
  match args with
  | [ a; b ] -> (Value.to_float a, Value.to_float b)
  | _ -> invalid_arg "Jni: arity"

let i1 args =
  match args with
  | [ v ] -> Value.to_int v
  | _ -> invalid_arg "Jni: arity"

let i2 args =
  match args with
  | [ a; b ] -> (Value.to_int a, Value.to_int b)
  | _ -> invalid_arg "Jni: arity"

let call ?(as_native = true) (ctx : Exec_ctx.t) native args =
  let was_native = ctx.Exec_ctx.in_native in
  if as_native then ctx.Exec_ctx.in_native <- true;
  (* transition cost: full JNI trampoline, or the cheap inlined-intrinsic
     dispatch; charged inside the native window so profiler samples
     attribute it to JNI time (Figure 8) *)
  Exec_ctx.charge ctx
    (if as_native then ctx.Exec_ctx.cost.Cost.jni_call
     else ctx.Exec_ctx.cost.Cost.intrinsic_call);
  Exec_ctx.charge ctx (Cost.native_work native);
  let vf x = Some (Value.Vfloat x) in
  let vi x = Some (Value.Vint x) in
  let result =
    match native with
    | B.Nsqrt -> vf (sqrt (f1 args))
    | B.Nsin -> vf (sin (f1 args))
    | B.Ncos -> vf (cos (f1 args))
    | B.Nfloor -> vf (floor (f1 args))
    | B.Nexp -> vf (exp (f1 args))
    | B.Nlog -> vf (log (f1 args))
    | B.Npow -> let a, b = f2 args in vf (a ** b)
    | B.Nabs_f -> vf (abs_float (f1 args))
    | B.Nabs_i -> vi (abs (i1 args))
    | B.Nmin_i -> let a, b = i2 args in vi (min a b)
    | B.Nmax_i -> let a, b = i2 args in vi (max a b)
    | B.Nmin_f -> let a, b = f2 args in vf (Float.min a b)
    | B.Nmax_f -> let a, b = f2 args in vf (Float.max a b)
    | B.Nprint_i ->
      Buffer.add_string ctx.Exec_ctx.io (string_of_int (i1 args) ^ "\n");
      None
    | B.Nprint_f ->
      Buffer.add_string ctx.Exec_ctx.io (Printf.sprintf "%g\n" (f1 args));
      None
    | B.Ndraw ->
      (match args with
       | [ x; y; c ] ->
         Buffer.add_string ctx.Exec_ctx.io
           (Printf.sprintf "draw %d %d %d\n" (Value.to_int x) (Value.to_int y)
              (Value.to_int c));
         None
       | _ -> invalid_arg "Jni: draw arity")
    | B.Nrand ->
      let bound = i1 args in
      vi (if bound <= 0 then 0 else Rng.int ctx.Exec_ctx.rng bound)
    | B.Nclock -> vi (int_of_float (Exec_ctx.elapsed_ms ctx))
  in
  ctx.Exec_ctx.in_native <- was_native;
  result
