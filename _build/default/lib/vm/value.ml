module B = Repro_dex.Bytecode

type t =
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vref of int

let null = Vref 0

let to_word = function
  | Vint k -> Int64.of_int k
  | Vfloat f -> Int64.bits_of_float f
  | Vbool b -> if b then 1L else 0L
  | Vref a -> Int64.of_int a

let of_word kind w =
  match kind with
  | B.Kint -> Vint (Int64.to_int w)
  | B.Kfloat -> Vfloat (Int64.float_of_bits w)
  | B.Kbool -> Vbool (w <> 0L)
  | B.Kref -> Vref (Int64.to_int w)

let to_int = function
  | Vint k -> k
  | v -> invalid_arg ("Value.to_int: " ^ (match v with
      | Vfloat _ -> "float" | Vbool _ -> "bool" | Vref _ -> "ref" | Vint _ -> "int"))

let to_float = function
  | Vfloat f -> f
  | Vint k -> float_of_int k
  | Vbool _ | Vref _ -> invalid_arg "Value.to_float"

let to_bool = function
  | Vbool b -> b
  | Vint k -> k <> 0
  | Vfloat _ | Vref _ -> invalid_arg "Value.to_bool"

let to_ref = function
  | Vref a -> a
  | Vint _ | Vfloat _ | Vbool _ -> invalid_arg "Value.to_ref"

let is_truthy = function
  | Vbool b -> b
  | Vint k -> k <> 0
  | Vfloat f -> f <> 0.0
  | Vref a -> a <> 0

let equal a b =
  match a, b with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Vbool x, Vbool y -> x = y
  | Vref x, Vref y -> x = y
  | (Vint _ | Vfloat _ | Vbool _ | Vref _), _ -> false

let to_string = function
  | Vint k -> string_of_int k
  | Vfloat f -> Printf.sprintf "%g" f
  | Vbool b -> string_of_bool b
  | Vref 0 -> "null"
  | Vref a -> Printf.sprintf "ref%#x" a
