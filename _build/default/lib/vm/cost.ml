module B = Repro_dex.Bytecode

type model = {
  int_alu : int;
  int_mul : int;
  int_div : int;
  float_alu : int;
  float_mul : int;
  float_div : int;
  float_conv : int;
  move : int;
  const : int;
  load : int;
  store : int;
  branch : int;
  branch_miss : int;
  null_check : int;
  bounds_check : int;
  safepoint : int;
  alloc_base : int;
  alloc_per_word : int;
  call_overhead : int;
  virtual_extra : int;
  intrinsic_call : int;
  jni_call : int;
  throw_cost : int;
  interp_dispatch : int;
  gc_pause_base : int;
  gc_words_divisor : int;
  gc_threshold_words : int;
  cycles_per_ms : int;
}

let default = {
  int_alu = 1;
  int_mul = 3;
  int_div = 12;
  float_alu = 3;
  float_mul = 4;
  float_div = 15;
  float_conv = 3;
  move = 1;
  const = 1;
  load = 4;
  store = 3;
  branch = 1;
  branch_miss = 14;
  null_check = 1;
  bounds_check = 2;
  safepoint = 14;
  alloc_base = 40;
  alloc_per_word = 1;
  call_overhead = 18;
  virtual_extra = 14;
  intrinsic_call = 3;
  jni_call = 90;
  throw_cost = 250;
  interp_dispatch = 14;
  gc_pause_base = 3000;
  gc_words_divisor = 4;
  gc_threshold_words = 48 * 1024;
  cycles_per_ms = 200_000;
}

let native_work = function
  | B.Nsqrt -> 18
  | B.Nsin | B.Ncos -> 40
  | B.Nexp | B.Nlog -> 35
  | B.Npow -> 55
  | B.Nfloor -> 4
  | B.Nabs_f | B.Nabs_i -> 2
  | B.Nmin_i | B.Nmax_i | B.Nmin_f | B.Nmax_f -> 2
  | B.Nprint_i | B.Nprint_f -> 400
  | B.Ndraw -> 900
  | B.Nrand -> 25
  | B.Nclock -> 30
