(** Runtime values held in virtual registers.

    In simulated memory every value is one 64-bit word; the element kind
    recorded in the instruction tells the VM how to decode it. *)

type t =
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vref of int    (** heap address; 0 is null *)

val null : t

val to_word : t -> int64
(** Raw memory encoding (floats as IEEE bits). *)

val of_word : Repro_dex.Bytecode.elem_kind -> int64 -> t

val to_int : t -> int
(** @raise Invalid_argument when not a [Vint]. *)

val to_float : t -> float
val to_bool : t -> bool
val to_ref : t -> int
val is_truthy : t -> bool
(** Non-zero / true / non-null. *)

val equal : t -> t -> bool
val to_string : t -> string
