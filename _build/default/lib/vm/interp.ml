module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast
module Mem = Repro_os.Mem
open Value

let binop_cost (c : Cost.model) op (a : Value.t) =
  let is_float = match a with Vfloat _ -> true | Vint _ | Vbool _ | Vref _ -> false in
  match op with
  | Ast.Add | Ast.Sub -> if is_float then c.Cost.float_alu else c.Cost.int_alu
  | Ast.Mul -> if is_float then c.Cost.float_mul else c.Cost.int_mul
  | Ast.Div | Ast.Rem -> if is_float then c.Cost.float_div else c.Cost.int_div
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr -> c.Cost.int_alu
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    if is_float then c.Cost.float_alu else c.Cost.int_alu
  | Ast.Land | Ast.Lor -> c.Cost.int_alu

let eval_binop op a b =
  match op, a, b with
  | Ast.Add, Vint x, Vint y -> Vint (x + y)
  | Ast.Sub, Vint x, Vint y -> Vint (x - y)
  | Ast.Mul, Vint x, Vint y -> Vint (x * y)
  | Ast.Div, Vint x, Vint y ->
    if y = 0 then raise (Exec_ctx.App_exception Exec_ctx.exc_div_by_zero)
    else Vint (x / y)
  | Ast.Rem, Vint x, Vint y ->
    if y = 0 then raise (Exec_ctx.App_exception Exec_ctx.exc_div_by_zero)
    else Vint (x mod y)
  | Ast.Add, Vfloat x, Vfloat y -> Vfloat (x +. y)
  | Ast.Sub, Vfloat x, Vfloat y -> Vfloat (x -. y)
  | Ast.Mul, Vfloat x, Vfloat y -> Vfloat (x *. y)
  | Ast.Div, Vfloat x, Vfloat y -> Vfloat (x /. y)
  | Ast.Rem, Vfloat x, Vfloat y -> Vfloat (Float.rem x y)
  | Ast.Band, Vint x, Vint y -> Vint (x land y)
  | Ast.Bor, Vint x, Vint y -> Vint (x lor y)
  | Ast.Bxor, Vint x, Vint y -> Vint (x lxor y)
  | Ast.Shl, Vint x, Vint y -> Vint (x lsl (y land 63))
  | Ast.Shr, Vint x, Vint y -> Vint (x asr (y land 63))
  | Ast.Lt, Vint x, Vint y -> Vbool (x < y)
  | Ast.Le, Vint x, Vint y -> Vbool (x <= y)
  | Ast.Gt, Vint x, Vint y -> Vbool (x > y)
  | Ast.Ge, Vint x, Vint y -> Vbool (x >= y)
  | Ast.Lt, Vfloat x, Vfloat y -> Vbool (x < y)
  | Ast.Le, Vfloat x, Vfloat y -> Vbool (x <= y)
  | Ast.Gt, Vfloat x, Vfloat y -> Vbool (x > y)
  | Ast.Ge, Vfloat x, Vfloat y -> Vbool (x >= y)
  | Ast.Eq, x, y -> Vbool (Value.equal x y)
  | Ast.Ne, x, y -> Vbool (not (Value.equal x y))
  | Ast.Land, Vbool x, Vbool y -> Vbool (x && y)
  | Ast.Lor, Vbool x, Vbool y -> Vbool (x || y)
  | _ -> invalid_arg "Interp: ill-typed binop"

let eval_cond cond a b =
  let c =
    match a, b with
    | Vint x, Vint y -> compare x y
    | Vfloat x, Vfloat y -> compare x y
    | Vbool x, Vbool y -> compare x y
    | Vref x, Vref y -> compare x y
    | _ -> invalid_arg "Interp: ill-typed comparison"
  in
  match cond with
  | B.Ceq -> c = 0
  | B.Cne -> c <> 0
  | B.Clt -> c < 0
  | B.Cle -> c <= 0
  | B.Cgt -> c > 0
  | B.Cge -> c >= 0

let null_check ctx addr =
  Exec_ctx.charge ctx ctx.Exec_ctx.cost.Cost.null_check;
  if addr = 0 then raise (Exec_ctx.App_exception Exec_ctx.exc_null_pointer)

let bounds_check ctx idx len =
  Exec_ctx.charge ctx ctx.Exec_ctx.cost.Cost.bounds_check;
  if idx < 0 || idx >= len then
    raise (Exec_ctx.App_exception Exec_ctx.exc_out_of_bounds)

(* Innermost handler covering [pc]: greatest start; ties (nested ranges that
   open together) go to the smaller range. *)
let find_handler (m : B.compiled_method) pc =
  let best = ref None in
  Array.iter
    (fun ((s, e, _, _) as h) ->
       if s <= pc && pc < e then
         match !best with
         | Some (s', e', _, _) when s' > s || (s' = s && e' <= e) -> ()
         | Some _ | None -> best := Some h)
    m.B.cm_handlers;
  !best

let interpret (ctx : Exec_ctx.t) mid args =
  let c = ctx.Exec_ctx.cost in
  let dx = ctx.Exec_ctx.dx in
  let mem = ctx.Exec_ctx.mem in
  let m = dx.B.dx_methods.(mid) in
  let regs = Array.make (max m.B.cm_nregs 1) (Vint 0) in
  List.iteri (fun i v -> regs.(i) <- v) args;
  let pc = ref 0 in
  let return_value = ref None in
  let running = ref true in
  let dispatch_charge extra = Exec_ctx.charge ctx (c.Cost.interp_dispatch + extra) in
  while !running do
    let cur = !pc in
    match
      (match m.B.cm_code.(cur) with
       | B.Const (d, const) ->
         dispatch_charge c.Cost.const;
         regs.(d) <-
           (match const with
            | B.Cint k -> Vint k
            | B.Cfloat f -> Vfloat f
            | B.Cbool b -> Vbool b
            | B.Cnull -> Value.null);
         incr pc
       | B.Move (d, s) ->
         dispatch_charge c.Cost.move;
         regs.(d) <- regs.(s);
         incr pc
       | B.Binop (op, d, a, b) ->
         dispatch_charge (binop_cost c op regs.(a));
         regs.(d) <- eval_binop op regs.(a) regs.(b);
         incr pc
       | B.Unop (Ast.Neg, d, a) ->
         (match regs.(a) with
          | Vint x ->
            dispatch_charge c.Cost.int_alu;
            regs.(d) <- Vint (-x)
          | Vfloat x ->
            dispatch_charge c.Cost.float_alu;
            regs.(d) <- Vfloat (-.x)
          | Vbool _ | Vref _ -> invalid_arg "Interp: neg");
         incr pc
       | B.Unop (Ast.Not, d, a) ->
         dispatch_charge c.Cost.int_alu;
         regs.(d) <- Vbool (not (Value.to_bool regs.(a)));
         incr pc
       | B.IntToFloat (d, a) ->
         dispatch_charge c.Cost.float_conv;
         regs.(d) <- Vfloat (float_of_int (Value.to_int regs.(a)));
         incr pc
       | B.FloatToInt (d, a) ->
         dispatch_charge c.Cost.float_conv;
         regs.(d) <- Vint (int_of_float (Value.to_float regs.(a)));
         incr pc
       | B.If (cond, a, b, target) ->
         dispatch_charge c.Cost.branch;
         if eval_cond cond regs.(a) regs.(b) then begin
           if target <= cur then Exec_ctx.safepoint ctx;
           pc := target
         end
         else incr pc
       | B.Ifz (cond, a, target) ->
         dispatch_charge c.Cost.branch;
         let zero =
           match regs.(a) with
           | Vint _ -> Vint 0
           | Vfloat _ -> Vfloat 0.0
           | Vbool _ -> Vbool false
           | Vref _ -> Vref 0
         in
         if eval_cond cond regs.(a) zero then begin
           if target <= cur then Exec_ctx.safepoint ctx;
           pc := target
         end
         else incr pc
       | B.Goto target ->
         dispatch_charge c.Cost.branch;
         if target <= cur then Exec_ctx.safepoint ctx;
         pc := target
       | B.NewObj (d, cid) ->
         dispatch_charge 0;
         regs.(d) <- Vref (Exec_ctx.alloc_object ctx cid);
         incr pc
       | B.NewArr (d, _, len) ->
         dispatch_charge 0;
         regs.(d) <- Vref (Exec_ctx.alloc_array ctx (Value.to_int regs.(len)));
         incr pc
       | B.ALoad (kind, d, a, i) ->
         dispatch_charge c.Cost.load;
         let arr = Value.to_ref regs.(a) in
         null_check ctx arr;
         let len = Exec_ctx.array_length ctx arr in
         let idx = Value.to_int regs.(i) in
         bounds_check ctx idx len;
         regs.(d) <- Value.of_word kind (Mem.read_word mem (Exec_ctx.elem_addr arr idx));
         incr pc
       | B.AStore (_, a, i, s) ->
         dispatch_charge c.Cost.store;
         let arr = Value.to_ref regs.(a) in
         null_check ctx arr;
         let len = Exec_ctx.array_length ctx arr in
         let idx = Value.to_int regs.(i) in
         bounds_check ctx idx len;
         Mem.write_word mem (Exec_ctx.elem_addr arr idx) (Value.to_word regs.(s));
         incr pc
       | B.ArrLen (d, a) ->
         dispatch_charge 0;
         let arr = Value.to_ref regs.(a) in
         null_check ctx arr;
         regs.(d) <- Vint (Exec_ctx.array_length ctx arr);
         incr pc
       | B.IGet (kind, d, o, off) ->
         dispatch_charge c.Cost.load;
         let obj = Value.to_ref regs.(o) in
         null_check ctx obj;
         regs.(d) <- Value.of_word kind (Mem.read_word mem (Exec_ctx.field_addr obj off));
         incr pc
       | B.IPut (_, o, s, off) ->
         dispatch_charge c.Cost.store;
         let obj = Value.to_ref regs.(o) in
         null_check ctx obj;
         Mem.write_word mem (Exec_ctx.field_addr obj off) (Value.to_word regs.(s));
         incr pc
       | B.SGet (kind, d, slot) ->
         dispatch_charge c.Cost.load;
         regs.(d) <-
           Value.of_word kind (Mem.read_word mem (Exec_ctx.static_addr ctx slot));
         incr pc
       | B.SPut (_, slot, s) ->
         dispatch_charge c.Cost.store;
         Mem.write_word mem (Exec_ctx.static_addr ctx slot) (Value.to_word regs.(s));
         incr pc
       | B.InvokeStatic (ret, callee, argregs) ->
         dispatch_charge c.Cost.call_overhead;
         let cargs = List.map (fun r -> regs.(r)) argregs in
         let result = Exec_ctx.invoke ctx callee cargs in
         (match ret, result with
          | Some d, Some v -> regs.(d) <- v
          | Some _, None | None, (Some _ | None) -> ());
         incr pc
       | B.InvokeVirtual (ret, slot, argregs) ->
         dispatch_charge (c.Cost.call_overhead + c.Cost.virtual_extra);
         let cargs = List.map (fun r -> regs.(r)) argregs in
         let recv =
           match cargs with
           | r :: _ -> Value.to_ref r
           | [] -> invalid_arg "Interp: virtual call without receiver"
         in
         null_check ctx recv;
         let cid = Exec_ctx.obj_class ctx recv in
         (match ctx.Exec_ctx.record_vcall with
          | Some h -> h (mid, cur) cid
          | None -> ());
         let callee = Exec_ctx.vtable_target ctx ~recv_class:cid ~slot in
         let result = Exec_ctx.invoke ctx callee cargs in
         (match ret, result with
          | Some d, Some v -> regs.(d) <- v
          | Some _, None | None, (Some _ | None) -> ());
         incr pc
       | B.InvokeNative (ret, native, argregs) ->
         dispatch_charge 0;
         let cargs = List.map (fun r -> regs.(r)) argregs in
         let result = Jni.call ctx native cargs in
         (match ret, result with
          | Some d, Some v -> regs.(d) <- v
          | Some _, None | None, (Some _ | None) -> ());
         incr pc
       | B.Ret r ->
         dispatch_charge c.Cost.int_alu;
         return_value := Option.map (fun r -> regs.(r)) r;
         running := false
       | B.Throw r ->
         dispatch_charge c.Cost.throw_cost;
         raise (Exec_ctx.App_exception (Value.to_int regs.(r))))
    with
    | () -> ()
    | exception Exec_ctx.App_exception code ->
      (match find_handler m cur with
       | Some (_, _, rexc, handler) ->
         regs.(rexc) <- Vint code;
         pc := handler
       | None -> raise (Exec_ctx.App_exception code))
  done;
  !return_value

let install ctx = Exec_ctx.set_dispatch ctx interpret

let run_main ctx = Exec_ctx.invoke ctx ctx.Exec_ctx.dx.B.dx_main []
