module Mem = Repro_os.Mem

type t = {
  mem : Mem.t;
  base_ : int;
  limit : int;
  mutable next : int;
}

exception Out_of_memory

let create mem ~base ~npages =
  ignore mem;
  { mem; base_ = base; limit = base + (npages * Mem.page_size); next = base }

let restore mem ~base ~npages ~next =
  let t = create mem ~base ~npages in
  if next < base || next > t.limit then invalid_arg "Heap.restore: bad pointer";
  t.next <- next;
  t

let alloc t ~nwords =
  let bytes = nwords * 8 in
  if t.next + bytes > t.limit then raise Out_of_memory;
  let addr = t.next in
  t.next <- t.next + bytes;
  addr

let used_words t = (t.next - t.base_) / 8
let base t = t.base_
let next_addr t = t.next
