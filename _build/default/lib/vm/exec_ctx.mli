(** Execution context shared by the bytecode interpreter and the LIR
    executor: the simulated device state for one program run.

    It owns the cycle counter (the measured quantity), the sampling profiler
    hook, the GC accounting, the method-call dispatcher that routes each call
    to interpreted or compiled code, and the capture/replay hooks fired
    around every method invocation. *)

module B = Repro_dex.Bytecode

exception App_exception of int
(** A MiniDex-level exception carrying its int error code.  Runtime errors
    use the reserved codes below. *)

exception Timeout
(** Raised when the cycle budget ([fuel]) is exhausted. *)

val exc_null_pointer : int
val exc_out_of_bounds : int
val exc_div_by_zero : int
val exc_negative_size : int
val exc_out_of_memory : int
val exc_stack_overflow : int

type sample = { s_method : int; s_native : bool }

type call_site = int * int  (** method id, pc *)

type t = {
  dx : B.dexfile;
  mem : Repro_os.Mem.t;
  heap : Heap.t;
  cost : Cost.model;
  statics_base : int;
  mutable cycles : int;
  mutable fuel : int;
  rng : Repro_util.Rng.t;            (** feeds Sys.rand *)
  io : Buffer.t;                     (** output of Sys.print / Sys.draw *)
  mutable dispatch : t -> int -> Value.t list -> Value.t option;
  mutable on_entry : (int -> Value.t list -> unit) option;
  mutable on_exit : (int -> Value.t option -> unit) option;
  mutable record_vcall : (call_site -> int -> unit) option;
  (** observed receiver class at a virtual call site (interpreted replay) *)
  mutable sample_period : int;       (** cycles between samples; 0 = off *)
  mutable next_sample : int;
  mutable samples : sample list;
  mutable stack : int list;          (** current method ids, innermost first *)
  mutable in_native : bool;
  mutable depth : int;
  mutable alloc_since_gc : int;      (** words *)
  mutable gc_count : int;
  mutable gc_cycles : int;
}

val create :
  ?cost:Cost.model -> ?seed:int -> ?fuel:int ->
  B.dexfile -> Repro_os.Mem.t -> Heap.t -> statics_base:int -> t
(** Default fuel is 2e9 cycles.  The dispatcher defaults to a function that
    fails; install one with {!set_dispatch} (the interpreter provides
    {!Interp.install}). *)

val set_dispatch : t -> (t -> int -> Value.t list -> Value.t option) -> unit

val charge : t -> int -> unit
(** Add cycles; takes a profiler sample when the period elapses.
    @raise Timeout when fuel is exhausted. *)

val invoke : t -> int -> Value.t list -> Value.t option
(** Call a method through the dispatcher, firing the entry/exit hooks and
    maintaining the method stack.  This is the only call path; compiled and
    interpreted code both route callees through it.
    @raise App_exception if the callee throws. *)

val safepoint : t -> unit
(** Charge a suspend-check poll and run the GC pause model if the allocation
    budget since the last collection is exceeded. *)

val alloc_object : t -> int -> int
(** [alloc_object ctx class_id] returns the address of a fresh object
    (header word = class id). *)

val alloc_array : t -> int -> int
(** [alloc_array ctx len] returns the address of a fresh array
    (header word = length).  @raise App_exception negative-size. *)

val obj_class : t -> int -> int
(** Read an object's class id (charges a load). *)

val array_length : t -> int -> int

val field_addr : int -> int -> int
(** [field_addr obj i] — address of instance field slot [i]. *)

val elem_addr : int -> int -> int
(** [elem_addr arr i] — address of array element [i]. *)

val static_addr : t -> int -> int

val elapsed_ms : t -> float
(** Simulated milliseconds for the cycles charged so far. *)

val vtable_target : t -> recv_class:int -> slot:int -> int
(** Dynamic dispatch: method id in the receiver class's vtable. *)
