lib/profiler/profile.ml: Hashtbl List Option Repro_vm
