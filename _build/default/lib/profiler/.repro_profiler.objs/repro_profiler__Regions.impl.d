lib/profiler/regions.ml: Array Hashtbl List Profile Repro_dex Repro_hgraph
