lib/profiler/breakdown.mli: Profile Repro_dex
