lib/profiler/regions.mli: Profile Repro_dex
