lib/profiler/profile.mli: Repro_vm
