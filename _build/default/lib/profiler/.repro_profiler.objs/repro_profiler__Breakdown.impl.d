lib/profiler/breakdown.ml: Hashtbl List Option Profile Regions Repro_dex Repro_hgraph
