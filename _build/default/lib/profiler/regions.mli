(** Hot-region detection (paper §3.1, Algorithm 1).

    A method is *replayable* when its behaviour is fully determined by its
    memory state: no I/O natives, no non-determinism (clock/PRNG), no JNI
    without an intrinsic replacement, no exceptions.  A region rooted at a
    method is replayable when every method transitively reachable from it
    is.  The *compilable region* is the root plus its transitively
    compilable callees; the hot region is the candidate maximizing the
    exclusive profile time summed over its compilable region. *)

val replayable : Repro_dex.Bytecode.dexfile -> int -> bool
(** One method in isolation. *)

val unreplayable_reason : Repro_dex.Bytecode.dexfile -> int -> string option

val callees : Repro_dex.Bytecode.dexfile -> int -> int list
(** Possible direct callees: static targets plus every vtable
    implementation a virtual site could dispatch to (class-hierarchy
    over-approximation). *)

val reachable : Repro_dex.Bytecode.dexfile -> int -> int list
(** Transitive closure of {!callees}, including the root. *)

val region_replayable : Repro_dex.Bytecode.dexfile -> int -> bool

val compilable_region : Repro_dex.Bytecode.dexfile -> int -> int list
(** Algorithm 1's [compilableRegion]: root + transitively compilable
    callees (exploration cut at uncompilable methods). *)

val estimate : Repro_dex.Bytecode.dexfile -> Profile.t -> int -> int option
(** Algorithm 1's [estimateRegionRuntime]: [None] for unreplayable
    regions, otherwise the summed exclusive samples. *)

val hot_region : Repro_dex.Bytecode.dexfile -> Profile.t -> int option
(** The method with the biggest replayable, compilable region. *)
