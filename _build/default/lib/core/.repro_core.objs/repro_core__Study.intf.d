lib/core/study.mli: Pipeline Repro_apps Repro_search
