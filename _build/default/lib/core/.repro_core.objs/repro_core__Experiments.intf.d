lib/core/experiments.mli: Repro_search
