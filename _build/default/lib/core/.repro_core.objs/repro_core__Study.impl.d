lib/core/study.ml: Hashtbl Pipeline Repro_apps Repro_search
