lib/core/pipeline.ml: Array Digest Float Hashtbl List Option Repro_apps Repro_capture Repro_dex Repro_hgraph Repro_lir Repro_profiler Repro_search Repro_util Repro_vm String
