lib/core/pipeline.mli: Repro_apps Repro_capture Repro_dex Repro_lir Repro_profiler Repro_search Repro_util Repro_vm
