(** Hand-written lexer for MiniDex source text. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string         (** reserved word *)
  | PUNCT of string      (** operator or delimiter, e.g. ["<="], ["{"] *)
  | EOF

exception Lex_error of string * int  (** message, line number *)

val tokenize : string -> (token * int) list
(** [tokenize src] returns the token stream with line numbers.
    @raise Lex_error on malformed input. *)

val string_of_token : token -> string
