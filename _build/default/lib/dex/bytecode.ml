(* Register-based bytecode in the style of Dalvik.  A program is lowered to a
   [dexfile]: a set of classes with field layouts and vtables, plus one
   register-machine code array per method.  This is the representation the
   online interpreter executes and from which the HGraph IR is built. *)

type reg = int

type const =
  | Cint of int
  | Cfloat of float
  | Cbool of bool
  | Cnull

(* Built-in native methods.  These model JNI and platform calls: [Math]
   methods are JNI natives that the LLVM backend may replace with intrinsics
   (paper §3.5); [Nprint]/[Ndraw] are I/O; [Nrand]/[Nclock] are sources of
   non-determinism.  The last four make a method unreplayable (§3.1). *)
type native =
  | Nsqrt | Nsin | Ncos | Nabs_f | Nabs_i | Nfloor | Nexp | Nlog | Npow
  | Nmin_i | Nmax_i | Nmin_f | Nmax_f
  | Nprint_i | Nprint_f
  | Ndraw
  | Nrand
  | Nclock

type cond = Ceq | Cne | Clt | Cle | Cgt | Cge

type insn =
  | Const of reg * const
  | Move of reg * reg
  | Binop of Ast.binop * reg * reg * reg       (* dst, a, b *)
  | Unop of Ast.unop * reg * reg
  | IntToFloat of reg * reg
  | FloatToInt of reg * reg
  | If of cond * reg * reg * int               (* branch target = insn index *)
  | Ifz of cond * reg * int                    (* compare against zero/null *)
  | Goto of int
  | NewObj of reg * int                        (* dst, class id *)
  | NewArr of reg * elem_kind * reg            (* dst, kind, length reg *)
  | ALoad of elem_kind * reg * reg * reg       (* dst, array, index *)
  | AStore of elem_kind * reg * reg * reg      (* array, index, src *)
  | ArrLen of reg * reg
  | IGet of elem_kind * reg * reg * int        (* dst, obj, field offset *)
  | IPut of elem_kind * reg * reg * int        (* obj, src, field offset *)
  | SGet of elem_kind * reg * int              (* dst, static slot *)
  | SPut of elem_kind * int * reg              (* static slot, src *)
  | InvokeStatic of reg option * int * reg list       (* ret, method id, args *)
  | InvokeVirtual of reg option * int * reg list      (* ret, vtable slot, args;
                                                         receiver is first arg *)
  | InvokeNative of reg option * native * reg list
  | Ret of reg option
  | Throw of reg

and elem_kind = Kint | Kfloat | Kbool | Kref

type compiled_method = {
  cm_id : int;
  cm_class : int;                      (* defining class id; -1 for none *)
  cm_class_name : string;
  cm_name : string;
  cm_static : bool;
  cm_nparams : int;                    (* includes [this] for virtuals *)
  cm_param_kinds : elem_kind array;    (* one per parameter register *)
  cm_nregs : int;
  cm_code : insn array;
  cm_ret : Ast.typ;
  cm_has_try : bool;                   (* methods with try/catch are
                                          "uncompilable" by the Android
                                          backend in our model *)
  cm_handlers : (int * int * reg * int) array;
  (* (start, end_) protected insn range, exception value register, handler
     entry index; innermost handler listed first *)
}

type class_info = {
  ci_id : int;
  ci_name : string;
  ci_super : int option;
  ci_nfields : int;                    (* instance slots incl. inherited *)
  ci_field_offset : (string * int) list;
  ci_vtable : int array;               (* vtable slot -> method id *)
  ci_vslot_names : string array;       (* slot -> method name, for debug *)
}

type static_init = { si_slot : int; si_value : const }

type dexfile = {
  dx_classes : class_info array;
  dx_methods : compiled_method array;
  dx_nstatics : int;
  dx_static_names : (string * int) list;   (* "Class.field" -> slot *)
  dx_static_inits : static_init list;
  dx_main : int;                            (* method id of Main.main *)
}

let native_name = function
  | Nsqrt -> "Math.sqrt" | Nsin -> "Math.sin" | Ncos -> "Math.cos"
  | Nabs_f -> "Math.fabs" | Nabs_i -> "Math.abs" | Nfloor -> "Math.floor"
  | Nexp -> "Math.exp" | Nlog -> "Math.log" | Npow -> "Math.pow"
  | Nmin_i -> "Math.min" | Nmax_i -> "Math.max"
  | Nmin_f -> "Math.fmin" | Nmax_f -> "Math.fmax"
  | Nprint_i -> "Sys.print" | Nprint_f -> "Sys.printf"
  | Ndraw -> "Sys.draw" | Nrand -> "Sys.rand" | Nclock -> "Sys.clock"

(* Is this native an I/O operation (observable side effect outside memory)? *)
let native_is_io = function
  | Nprint_i | Nprint_f | Ndraw -> true
  | Nsqrt | Nsin | Ncos | Nabs_f | Nabs_i | Nfloor | Nexp | Nlog | Npow
  | Nmin_i | Nmax_i | Nmin_f | Nmax_f | Nrand | Nclock -> false

(* Is this native non-deterministic? *)
let native_is_nondet = function
  | Nrand | Nclock -> true
  | Nsqrt | Nsin | Ncos | Nabs_f | Nabs_i | Nfloor | Nexp | Nlog | Npow
  | Nmin_i | Nmax_i | Nmin_f | Nmax_f | Nprint_i | Nprint_f | Ndraw -> false

(* Math natives have pure LLVM-IR equivalents (intrinsics); they do not make
   a region unreplayable and the backend's JNI->intrinsic pass can inline
   them (§3.5). *)
let native_has_intrinsic n = not (native_is_io n) && not (native_is_nondet n)

let find_class dx name =
  let rec loop i =
    if i >= Array.length dx.dx_classes then None
    else if dx.dx_classes.(i).ci_name = name then Some dx.dx_classes.(i)
    else loop (i + 1)
  in
  loop 0

let find_method dx cls_name m_name =
  let rec loop i =
    if i >= Array.length dx.dx_methods then None
    else begin
      let m = dx.dx_methods.(i) in
      if m.cm_class_name = cls_name && m.cm_name = m_name then Some m
      else loop (i + 1)
    end
  in
  loop 0

let method_full_name m = m.cm_class_name ^ "." ^ m.cm_name
