open Ast

type texpr = { e : texpr_desc; t : Ast.typ }

and texpr_desc =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tbool_lit of bool
  | Tnull
  | Tlocal of string
  | Tthis
  | Tbinop of Ast.binop * texpr * texpr
  | Tunop of Ast.unop * texpr
  | Tstatic_call of string * string * texpr list
  | Tvirtual_call of texpr * string * texpr list
  | Tnative_call of Bytecode.native * texpr list
  | Tnew of string * texpr list
  | Tnew_array of Ast.typ * texpr
  | Tindex of texpr * texpr
  | Tfield of texpr * string
  | Tstatic_field of string * string
  | Tlen of texpr
  | Tcast of Ast.typ * texpr

type tlvalue =
  | TLlocal of string
  | TLindex of texpr * texpr
  | TLfield of texpr * string
  | TLstatic of string * string

type tstmt =
  | TSdecl of Ast.typ * string * texpr option
  | TSassign of tlvalue * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSreturn of texpr option
  | TSexpr of texpr
  | TSthrow of texpr
  | TStry of tstmt list * string * tstmt list
  | TSbreak
  | TScontinue

type tmethod = {
  tm_name : string;
  tm_class : string;
  tm_static : bool;
  tm_ret : Ast.typ;
  tm_params : (Ast.typ * string) list;
  tm_body : tstmt list;
}

type tclass = {
  tc_name : string;
  tc_super : string option;
  tc_instance_fields : (string * Ast.typ) list;
  tc_static_fields : (string * Ast.typ * Bytecode.const) list;
  tc_methods : tmethod list;
}

type tprogram = tclass list

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Symbol tables built from the raw AST                                *)
(* ------------------------------------------------------------------ *)

type class_tbl = (string, class_def) Hashtbl.t

let build_class_tbl (prog : program) : class_tbl =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
       if Hashtbl.mem tbl c.c_name then err "duplicate class %s" c.c_name;
       Hashtbl.add tbl c.c_name c)
    prog;
  tbl

let lookup_class tbl name =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None -> err "unknown class %s" name

(* Superclass chain from [name] to the root, cycle-checked. *)
let ancestry tbl name =
  let rec loop acc n =
    if List.mem n acc then err "inheritance cycle through %s" n;
    let c = lookup_class tbl n in
    match c.c_super with
    | None -> List.rev (n :: acc)
    | Some s -> loop (n :: acc) s
  in
  loop [] name

let rec is_subclass tbl sub super =
  sub = super
  ||
  match (lookup_class tbl sub).c_super with
  | None -> false
  | Some s -> is_subclass tbl s super

(* Instance fields in layout order: inherited first. *)
let instance_fields tbl name =
  let chain = List.rev (ancestry tbl name) in
  List.concat_map
    (fun cn ->
       let c = lookup_class tbl cn in
       List.filter_map
         (fun f -> if f.f_static then None else Some (f.f_name, f.f_typ))
         c.c_fields)
    chain

let find_instance_field tbl cls fname =
  let rec loop cn =
    let c = lookup_class tbl cn in
    match List.find_opt (fun f -> not f.f_static && f.f_name = fname) c.c_fields with
    | Some f -> Some f.f_typ
    | None -> (match c.c_super with None -> None | Some s -> loop s)
  in
  loop cls

let find_static_field tbl cls fname =
  if not (Hashtbl.mem tbl cls) then None
  else begin
    let rec loop cn =
      let c = lookup_class tbl cn in
      match List.find_opt (fun f -> f.f_static && f.f_name = fname) c.c_fields with
      | Some f -> Some (cn, f.f_typ)
      | None -> (match c.c_super with None -> None | Some s -> loop s)
    in
    loop cls
  end

let find_method tbl cls mname =
  if not (Hashtbl.mem tbl cls) then None
  else begin
    let rec loop cn =
      let c = lookup_class tbl cn in
      match List.find_opt (fun m -> m.m_name = mname) c.c_methods with
      | Some m -> Some (cn, m)
      | None -> (match c.c_super with None -> None | Some s -> loop s)
    in
    loop cls
  end

(* ------------------------------------------------------------------ *)
(* Native (Math/Sys) resolution                                        *)
(* ------------------------------------------------------------------ *)

let is_native_class c = c = "Math" || c = "Sys"

(* Resolve an overloaded native by the types of its arguments. *)
let resolve_native cls name (arg_typs : typ list) : (Bytecode.native * typ list * typ) option =
  let f = Tfloat and i = Tint in
  match cls, name, arg_typs with
  | "Math", "sqrt", [ _ ] -> Some (Nsqrt, [ f ], f)
  | "Math", "sin", [ _ ] -> Some (Nsin, [ f ], f)
  | "Math", "cos", [ _ ] -> Some (Ncos, [ f ], f)
  | "Math", "floor", [ _ ] -> Some (Nfloor, [ f ], f)
  | "Math", "exp", [ _ ] -> Some (Nexp, [ f ], f)
  | "Math", "log", [ _ ] -> Some (Nlog, [ f ], f)
  | "Math", "pow", [ _; _ ] -> Some (Npow, [ f; f ], f)
  | "Math", "abs", [ Tint ] -> Some (Nabs_i, [ i ], i)
  | "Math", "abs", [ _ ] -> Some (Nabs_f, [ f ], f)
  | "Math", "min", [ Tint; Tint ] -> Some (Nmin_i, [ i; i ], i)
  | "Math", "min", [ _; _ ] -> Some (Nmin_f, [ f; f ], f)
  | "Math", "max", [ Tint; Tint ] -> Some (Nmax_i, [ i; i ], i)
  | "Math", "max", [ _; _ ] -> Some (Nmax_f, [ f; f ], f)
  | "Sys", "print", [ Tint ] -> Some (Nprint_i, [ i ], Tvoid)
  | "Sys", "print", [ _ ] -> Some (Nprint_f, [ f ], Tvoid)
  | "Sys", "draw", [ _; _; _ ] -> Some (Ndraw, [ i; i; i ], Tvoid)
  | "Sys", "rand", [ _ ] -> Some (Nrand, [ i ], i)   (* rand(bound) *)
  | "Sys", "clock", [] -> Some (Nclock, [], i)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression checking                                                 *)
(* ------------------------------------------------------------------ *)

type ctx = {
  tbl : class_tbl;
  cur_class : string;
  cur_static : bool;
  ret_typ : typ;
  mutable locals : (string * typ) list;  (* innermost scope first *)
  in_loop : bool;
}

let rec valid_typ tbl = function
  | Tint | Tfloat | Tbool | Tvoid -> true
  | Tarray t -> valid_typ tbl t
  | Tobj c -> Hashtbl.mem tbl c

let typ_eq = ( = )

(* Implicit coercions: int -> float, and null -> any reference type. *)
let coerce ctx (e : texpr) (want : typ) : texpr =
  if typ_eq e.t want then e
  else
    match e.t, want with
    | Tint, Tfloat -> { e = Tcast (Tfloat, e); t = Tfloat }
    | Tobj "null", (Tobj _ | Tarray _) -> { e = e.e; t = want }
    | Tobj sub, Tobj super when is_subclass ctx.tbl sub super -> { e = e.e; t = want }
    | _ ->
      err "type mismatch: expected %s, got %s" (string_of_typ want) (string_of_typ e.t)

let lookup_local ctx name = List.assoc_opt name ctx.locals

let rec check_expr (ctx : ctx) (expr : expr) : texpr =
  match expr with
  | Eint k -> { e = Tint_lit k; t = Tint }
  | Efloat f -> { e = Tfloat_lit f; t = Tfloat }
  | Ebool b -> { e = Tbool_lit b; t = Tbool }
  | Enull -> { e = Tnull; t = Tobj "null" }
  | Ethis ->
    if ctx.cur_static then err "this used in static method %s" ctx.cur_class;
    { e = Tthis; t = Tobj ctx.cur_class }
  | Evar name ->
    (match lookup_local ctx name with
     | Some t -> { e = Tlocal name; t }
     | None ->
       (* implicit this.field, then static field of the current class *)
       if (not ctx.cur_static) && find_instance_field ctx.tbl ctx.cur_class name <> None
       then check_expr ctx (Efield (Ethis, name))
       else begin
         match find_static_field ctx.tbl ctx.cur_class name with
         | Some (owner, t) -> { e = Tstatic_field (owner, name); t }
         | None -> err "unbound variable %s in %s" name ctx.cur_class
       end)
  | Ebinop (op, a, b) -> check_binop ctx op a b
  | Eunop (Neg, a) ->
    let ta = check_expr ctx a in
    (match ta.t with
     | Tint | Tfloat -> { e = Tunop (Neg, ta); t = ta.t }
     | _ -> err "negation of non-numeric value")
  | Eunop (Not, a) ->
    let ta = check_expr ctx a in
    if ta.t <> Tbool then err "! applied to non-bool";
    { e = Tunop (Not, ta); t = Tbool }
  | Estatic_call (cls, name, args) -> check_call ctx cls name args
  | Evirtual_call (recv, name, args) ->
    (* [recv] may actually be a class name: [Foo.bar()] parses as a virtual
       call on [Evar "Foo"] when Foo is not a local. *)
    (match recv with
     | Evar v when lookup_local ctx v = None
                && (is_native_class v || Hashtbl.mem ctx.tbl v) ->
       check_call ctx v name args
     | _ ->
       let trecv = check_expr ctx recv in
       (match trecv.t with
        | Tobj cls ->
          (match find_method ctx.tbl cls name with
           | Some (_, m) when not m.m_static ->
             let targs = check_args ctx (List.map fst m.m_params) args in
             { e = Tvirtual_call (trecv, name, targs); t = m.m_ret }
           | Some _ -> err "%s.%s is static, called virtually" cls name
           | None -> err "no method %s in class %s" name cls)
        | _ -> err "method call on non-object (%s)" (string_of_typ trecv.t)))
  | Enew (cls, args) ->
    let _ = lookup_class ctx.tbl cls in
    (match find_method ctx.tbl cls "init" with
     | Some (_, m) when not m.m_static ->
       let targs = check_args ctx (List.map fst m.m_params) args in
       { e = Tnew (cls, targs); t = Tobj cls }
     | Some _ -> err "constructor init of %s must not be static" cls
     | None ->
       if args <> [] then err "class %s has no constructor" cls;
       { e = Tnew (cls, []); t = Tobj cls })
  | Enew_array (elem, len) ->
    if not (valid_typ ctx.tbl elem) then err "bad array element type";
    let tlen = coerce ctx (check_expr ctx len) Tint in
    { e = Tnew_array (elem, tlen); t = Tarray elem }
  | Eindex (arr, idx) ->
    let tarr = check_expr ctx arr in
    (match tarr.t with
     | Tarray elem ->
       let tidx = coerce ctx (check_expr ctx idx) Tint in
       { e = Tindex (tarr, tidx); t = elem }
     | _ -> err "indexing a non-array (%s)" (string_of_typ tarr.t))
  | Efield (obj, fname) ->
    (* [Evar c .f] where c is a class name = static field access. *)
    (match obj with
     | Evar v when lookup_local ctx v = None && Hashtbl.mem ctx.tbl v ->
       (match find_static_field ctx.tbl v fname with
        | Some (owner, t) -> { e = Tstatic_field (owner, fname); t }
        | None -> err "no static field %s in class %s" fname v)
     | _ ->
       let tobj = check_expr ctx obj in
       (match tobj.t with
        | Tobj cls ->
          (match find_instance_field ctx.tbl cls fname with
           | Some t -> { e = Tfield (tobj, fname); t }
           | None -> err "no field %s in class %s" fname cls)
        | _ -> err "field access on non-object (%s)" (string_of_typ tobj.t)))
  | Estatic_field (cls, fname) ->
    (match find_static_field ctx.tbl cls fname with
     | Some (owner, t) -> { e = Tstatic_field (owner, fname); t }
     | None -> err "no static field %s in class %s" fname cls)
  | Elen arr ->
    let tarr = check_expr ctx arr in
    (match tarr.t with
     | Tarray _ -> { e = Tlen tarr; t = Tint }
     | _ -> err ".length on non-array")
  | Ecast (t, e) ->
    let te = check_expr ctx e in
    (match t, te.t with
     | Tint, Tfloat | Tfloat, Tint -> { e = Tcast (t, te); t }
     | Tint, Tint | Tfloat, Tfloat -> te
     | _ -> err "unsupported cast to %s" (string_of_typ t))

and check_binop ctx op a b =
  let ta = check_expr ctx a and tb = check_expr ctx b in
  let numeric () =
    match ta.t, tb.t with
    | Tint, Tint -> (ta, tb, Tint)
    | (Tfloat | Tint), (Tfloat | Tint) ->
      (coerce ctx ta Tfloat, coerce ctx tb Tfloat, Tfloat)
    | _ ->
      err "numeric operator %s on %s and %s" (string_of_binop op)
        (string_of_typ ta.t) (string_of_typ tb.t)
  in
  match op with
  | Add | Sub | Mul | Div | Rem ->
    let a, b, t = numeric () in
    { e = Tbinop (op, a, b); t }
  | Band | Bor | Bxor | Shl | Shr ->
    if ta.t <> Tint || tb.t <> Tint then err "bitwise operator on non-int";
    { e = Tbinop (op, ta, tb); t = Tint }
  | Lt | Le | Gt | Ge ->
    let a, b, _ = numeric () in
    { e = Tbinop (op, a, b); t = Tbool }
  | Eq | Ne ->
    (match ta.t, tb.t with
     | Tint, Tint | Tbool, Tbool -> { e = Tbinop (op, ta, tb); t = Tbool }
     | (Tfloat | Tint), (Tfloat | Tint) ->
       { e = Tbinop (op, coerce ctx ta Tfloat, coerce ctx tb Tfloat); t = Tbool }
     | (Tobj _ | Tarray _), (Tobj _ | Tarray _) ->
       { e = Tbinop (op, ta, tb); t = Tbool }
     | _ -> err "equality between %s and %s" (string_of_typ ta.t) (string_of_typ tb.t))
  | Land | Lor ->
    if ta.t <> Tbool || tb.t <> Tbool then err "&&/|| on non-bool";
    { e = Tbinop (op, ta, tb); t = Tbool }

and check_args ctx (param_typs : typ list) (args : expr list) : texpr list =
  if List.length param_typs <> List.length args then
    err "wrong number of arguments (%d expected, %d given)"
      (List.length param_typs) (List.length args);
  List.map2 (fun pt a -> coerce ctx (check_expr ctx a) pt) param_typs args

(* Calls of the form Class.m(args) or unqualified m(args) (cls = "").
   [x.m(args)] on a local variable also parses into this shape, so a leading
   identifier that names a local resolves to a virtual call. *)
and check_call ctx cls name args =
  match lookup_local ctx cls with
  | Some _ -> check_expr ctx (Evirtual_call (Evar cls, name, args))
  | None -> check_call_static ctx cls name args

and check_call_static ctx cls name args =
  if is_native_class cls then begin
    let targs = List.map (check_expr ctx) args in
    match resolve_native cls name (List.map (fun a -> a.t) targs) with
    | Some (native, want, ret) ->
      let targs = List.map2 (fun a w -> coerce ctx a w) targs want in
      { e = Tnative_call (native, targs); t = ret }
    | None -> err "unknown native %s.%s/%d" cls name (List.length args)
  end
  else begin
    let owner = if cls = "" then ctx.cur_class else cls in
    match find_method ctx.tbl owner name with
    | Some (defining, m) ->
      let targs = check_args ctx (List.map fst m.m_params) args in
      if m.m_static then
        { e = Tstatic_call (defining, name, targs); t = m.m_ret }
      else if cls = "" then begin
        if ctx.cur_static then
          err "instance method %s called from static context" name;
        { e = Tvirtual_call ({ e = Tthis; t = Tobj ctx.cur_class }, name, targs);
          t = m.m_ret }
      end
      else err "instance method %s.%s called statically" cls name
    | None -> err "no method %s in class %s" name owner
  end

(* ------------------------------------------------------------------ *)
(* Statement checking                                                  *)
(* ------------------------------------------------------------------ *)

let rec check_stmts ctx stmts = List.map (check_stmt ctx) stmts

and check_block ctx stmts =
  let saved = ctx.locals in
  let result = check_stmts ctx stmts in
  ctx.locals <- saved;
  result

and check_stmt ctx = function
  | Sdecl (t, name, init) ->
    if not (valid_typ ctx.tbl t) || t = Tvoid then
      err "bad type for variable %s" name;
    if List.mem_assoc name ctx.locals then err "shadowed variable %s" name;
    let tinit = Option.map (fun e -> coerce ctx (check_expr ctx e) t) init in
    ctx.locals <- (name, t) :: ctx.locals;
    TSdecl (t, name, tinit)
  | Sassign (lv, rhs) ->
    let tlv, t = check_lvalue ctx lv in
    TSassign (tlv, coerce ctx (check_expr ctx rhs) t)
  | Sif (c, th, el) ->
    let tc = check_expr ctx c in
    if tc.t <> Tbool then err "if condition is not bool";
    TSif (tc, check_block ctx th, check_block ctx el)
  | Swhile (c, body) ->
    let tc = check_expr ctx c in
    if tc.t <> Tbool then err "while condition is not bool";
    TSwhile (tc, check_block { ctx with in_loop = true; locals = ctx.locals } body)
  | Sfor (init, cond, step, body) ->
    (* Desugar to { init; while (cond) { body; step } }.  [continue] inside a
       for body must still run the step, so the step is appended after a
       rewrite of continue into a step+continue pair at lowering time; here
       we keep the desugared shape simple: MiniDex forbids [continue] inside
       [for] bodies (the checker rejects it), apps use while when needed. *)
    let saved = ctx.locals in
    let tinit = Option.map (check_stmt ctx) init in
    let tcond = check_expr ctx cond in
    if tcond.t <> Tbool then err "for condition is not bool";
    let ctx_loop = { ctx with in_loop = true; locals = ctx.locals } in
    let tbody = check_block ctx_loop body in
    let reject_continue () =
      let rec scan = function
        | TScontinue -> err "continue inside for is not supported; use while"
        | TSif (_, a, b) -> List.iter scan a; List.iter scan b
        | TStry (a, _, b) -> List.iter scan a; List.iter scan b
        | TSwhile _ (* its continues bind to the inner loop *)
        | TSdecl _ | TSassign _ | TSreturn _ | TSexpr _ | TSthrow _
        | TSbreak -> ()
      in
      List.iter scan tbody
    in
    reject_continue ();
    let tstep = Option.map (check_stmt ctx_loop) step in
    ctx.locals <- saved;
    let while_body = tbody @ Option.to_list tstep in
    let desugared = TSwhile (tcond, while_body) in
    (match tinit with
     | None -> desugared
     | Some i ->
       (* wrap in an if(true) block to scope the induction variable *)
       TSif ({ e = Tbool_lit true; t = Tbool }, [ i; desugared ], []))
  | Sreturn None ->
    if ctx.ret_typ <> Tvoid then err "missing return value";
    TSreturn None
  | Sreturn (Some e) ->
    if ctx.ret_typ = Tvoid then err "return with value in void method";
    TSreturn (Some (coerce ctx (check_expr ctx e) ctx.ret_typ))
  | Sexpr e -> TSexpr (check_expr ctx e)
  | Sblock stmts ->
    TSif ({ e = Tbool_lit true; t = Tbool }, check_block ctx stmts, [])
  | Sthrow e ->
    let te = check_expr ctx e in
    if te.t <> Tint then err "throw requires an int error code";
    TSthrow te
  | Stry (body, name, handler) ->
    let tbody = check_block ctx body in
    let saved = ctx.locals in
    ctx.locals <- (name, Tint) :: ctx.locals;
    let thandler = check_stmts ctx handler in
    ctx.locals <- saved;
    TStry (tbody, name, thandler)
  | Sbreak ->
    if not ctx.in_loop then err "break outside loop";
    TSbreak
  | Scontinue ->
    if not ctx.in_loop then err "continue outside loop";
    TScontinue

and check_lvalue ctx = function
  | Lvar name ->
    (match lookup_local ctx name with
     | Some t -> (TLlocal name, t)
     | None ->
       if (not ctx.cur_static)
       && find_instance_field ctx.tbl ctx.cur_class name <> None
       then begin
         let t = Option.get (find_instance_field ctx.tbl ctx.cur_class name) in
         (TLfield ({ e = Tthis; t = Tobj ctx.cur_class }, name), t)
       end
       else begin
         match find_static_field ctx.tbl ctx.cur_class name with
         | Some (owner, t) -> (TLstatic (owner, name), t)
         | None -> err "unbound assignment target %s" name
       end)
  | Lindex (arr, idx) ->
    let te = check_expr ctx (Eindex (arr, idx)) in
    (match te.e with
     | Tindex (a, i) -> (TLindex (a, i), te.t)
     | _ -> assert false)
  | Lfield (obj, f) ->
    let te = check_expr ctx (Efield (obj, f)) in
    (match te.e with
     | Tfield (o, f) -> (TLfield (o, f), te.t)
     | Tstatic_field (c, f) -> (TLstatic (c, f), te.t)
     | _ -> assert false)
  | Lstatic (c, f) ->
    let te = check_expr ctx (Estatic_field (c, f)) in
    (match te.e with
     | Tstatic_field (c, f) -> (TLstatic (c, f), te.t)
     | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Program checking                                                    *)
(* ------------------------------------------------------------------ *)

let const_of_init cls fname typ = function
  | None ->
    (match typ with
     | Tint -> Bytecode.Cint 0
     | Tfloat -> Bytecode.Cfloat 0.0
     | Tbool -> Bytecode.Cbool false
     | Tarray _ | Tobj _ -> Bytecode.Cnull
     | Tvoid -> err "void field %s.%s" cls fname)
  | Some (Eint k) ->
    (match typ with
     | Tint -> Bytecode.Cint k
     | Tfloat -> Bytecode.Cfloat (float_of_int k)
     | _ -> err "bad initializer for %s.%s" cls fname)
  | Some (Efloat f) when typ = Tfloat -> Bytecode.Cfloat f
  | Some (Eunop (Neg, Eint k)) when typ = Tint -> Bytecode.Cint (-k)
  | Some (Eunop (Neg, Efloat f)) when typ = Tfloat -> Bytecode.Cfloat (-.f)
  | Some (Ebool b) when typ = Tbool -> Bytecode.Cbool b
  | Some Enull ->
    (match typ with
     | Tarray _ | Tobj _ -> Bytecode.Cnull
     | _ -> err "null initializer for scalar %s.%s" cls fname)
  | Some _ -> err "static initializer of %s.%s must be a literal" cls fname

let check_method tbl (c : class_def) (m : method_def) : tmethod =
  if is_native_class c.c_name then err "class name %s is reserved" c.c_name;
  List.iter
    (fun (t, p) ->
       if not (valid_typ tbl t) || t = Tvoid then
         err "bad parameter %s in %s.%s" p c.c_name m.m_name)
    m.m_params;
  if not (valid_typ tbl m.m_ret) then
    err "bad return type in %s.%s" c.c_name m.m_name;
  let ctx = {
    tbl;
    cur_class = c.c_name;
    cur_static = m.m_static;
    ret_typ = m.m_ret;
    locals = List.map (fun (t, p) -> (p, t)) m.m_params;
    in_loop = false;
  } in
  let body = check_stmts ctx m.m_body in
  { tm_name = m.m_name; tm_class = c.c_name; tm_static = m.m_static;
    tm_ret = m.m_ret; tm_params = m.m_params; tm_body = body }

(* Overriding methods must preserve the signature (vtable slots are shared). *)
let check_override tbl (c : class_def) (m : method_def) =
  match c.c_super with
  | None -> ()
  | Some super ->
    (match find_method tbl super m.m_name with
     | Some (_, parent) when not m.m_static && not parent.m_static ->
       if parent.m_ret <> m.m_ret
       || List.map fst parent.m_params <> List.map fst m.m_params then
         err "override %s.%s changes signature" c.c_name m.m_name
     | Some (_, parent) when m.m_static <> parent.m_static ->
       err "%s.%s mixes static/virtual with inherited method" c.c_name m.m_name
     | _ -> ())

let check (prog : program) : tprogram =
  let tbl = build_class_tbl prog in
  List.iter (fun c -> ignore (ancestry tbl c.c_name)) prog;
  List.map
    (fun c ->
       List.iter (check_override tbl c) c.c_methods;
       let methods = List.map (check_method tbl c) c.c_methods in
       let statics =
         List.filter_map
           (fun f ->
              if f.f_static then
                Some (f.f_name, f.f_typ, const_of_init c.c_name f.f_name f.f_typ f.f_init)
              else begin
                if f.f_init <> None then
                  err "instance field %s.%s cannot have an initializer"
                    c.c_name f.f_name;
                None
              end)
           c.c_fields
       in
       { tc_name = c.c_name; tc_super = c.c_super;
         tc_instance_fields = instance_fields tbl c.c_name;
         tc_static_fields = statics; tc_methods = methods })
    prog

let field_typ (prog : tprogram) cls fname =
  let rec find cls =
    match List.find_opt (fun c -> c.tc_name = cls) prog with
    | None -> err "field_typ: unknown class %s" cls
    | Some c ->
      (match List.assoc_opt fname c.tc_instance_fields with
       | Some t -> t
       | None ->
         (match c.tc_super with
          | Some s -> find s
          | None -> err "field_typ: no field %s in %s" fname cls))
  in
  find cls

let method_sig (prog : tprogram) cls name =
  let rec find cls =
    match List.find_opt (fun c -> c.tc_name = cls) prog with
    | None -> None
    | Some c ->
      (match List.find_opt (fun m -> m.tm_name = name) c.tc_methods with
       | Some m -> Some (m.tm_static, m.tm_ret, List.map fst m.tm_params)
       | None ->
         (match c.tc_super with Some s -> find s | None -> None))
  in
  find cls
