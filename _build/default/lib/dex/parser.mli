(** Recursive-descent parser for MiniDex. *)

exception Parse_error of string * int  (** message, line number *)

val parse_program : string -> Ast.program
(** Parse a full source file (a list of class definitions).
    @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression; used by tests. *)
