lib/dex/disasm.mli: Bytecode
