lib/dex/ast.ml:
