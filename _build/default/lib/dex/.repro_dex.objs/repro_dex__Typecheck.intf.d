lib/dex/typecheck.mli: Ast Bytecode
