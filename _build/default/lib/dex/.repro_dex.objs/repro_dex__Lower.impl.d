lib/dex/lower.ml: Array Ast Bytecode Hashtbl List Option Parser Printf Typecheck
