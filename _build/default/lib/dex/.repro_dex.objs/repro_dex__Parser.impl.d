lib/dex/parser.ml: Array Ast Lexer List Printf
