lib/dex/lexer.mli:
