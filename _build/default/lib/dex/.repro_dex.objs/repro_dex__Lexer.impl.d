lib/dex/lexer.ml: List Printf String
