lib/dex/typecheck.ml: Ast Bytecode Hashtbl List Option Printf
