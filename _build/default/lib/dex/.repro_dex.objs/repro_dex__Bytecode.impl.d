lib/dex/bytecode.ml: Array Ast
