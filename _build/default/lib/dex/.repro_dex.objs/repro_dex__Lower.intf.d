lib/dex/lower.mli: Bytecode Typecheck
