lib/dex/disasm.ml: Array Ast Buffer Bytecode List Printf String
