lib/dex/parser.mli: Ast
