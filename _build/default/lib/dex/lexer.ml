type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

exception Lex_error of string * int

let keywords =
  [ "class"; "extends"; "static"; "int"; "float"; "bool"; "void";
    "if"; "else"; "while"; "for"; "return"; "new"; "true"; "false";
    "null"; "this"; "throw"; "try"; "catch"; "break"; "continue" ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Two-character punctuation must be matched before single characters. *)
let punct2 = [ "<="; ">="; "=="; "!="; "&&"; "||"; "<<"; ">>" ]
let punct1 = "+-*/%<>=!&|^(){}[];,."

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let emit t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while not !closed do
        if !i + 1 >= n then raise (Lex_error ("unterminated comment", !line));
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float =
        !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1]
      in
      if is_float then begin
        incr i;
        while !i < n && is_digit src.[!i] do incr i done;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      emit (if is_keyword s then KW s else IDENT s)
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some p when List.mem p punct2 ->
        emit (PUNCT p);
        i := !i + 2
      | _ ->
        if String.contains punct1 c then begin
          emit (PUNCT (String.make 1 c));
          incr i
        end
        else raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  List.rev ((EOF, !line) :: !toks)

let string_of_token = function
  | INT k -> string_of_int k
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
