open Typecheck
module B = Bytecode

exception Lower_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Global layout: class ids, vtable slots, static slots, method ids    *)
(* ------------------------------------------------------------------ *)

type layout = {
  prog : tprogram;
  class_id : (string, int) Hashtbl.t;
  (* per class: method name -> vtable slot (inherited slots included) *)
  vslots : (string, (string * int) list) Hashtbl.t;
  field_off : (string, (string * int) list) Hashtbl.t;
  static_slot : (string, int) Hashtbl.t;        (* "Class.field" -> slot *)
  method_id : (string, int) Hashtbl.t;          (* "Class.method" -> id *)
  mutable nstatics : int;
}

let class_of lay name =
  match List.find_opt (fun c -> c.tc_name = name) lay.prog with
  | Some c -> c
  | None -> err "unknown class %s" name

let rec build_vslots lay name =
  match Hashtbl.find_opt lay.vslots name with
  | Some s -> s
  | None ->
    let c = class_of lay name in
    let inherited =
      match c.tc_super with Some s -> build_vslots lay s | None -> []
    in
    let next = ref (List.length inherited) in
    let own =
      List.filter_map
        (fun m ->
           if m.tm_static then None
           else if List.mem_assoc m.tm_name inherited then None
           else begin
             let slot = !next in
             incr next;
             Some (m.tm_name, slot)
           end)
        c.tc_methods
    in
    let slots = inherited @ own in
    Hashtbl.add lay.vslots name slots;
    slots

let build_layout (prog : tprogram) : layout =
  let lay = {
    prog;
    class_id = Hashtbl.create 16;
    vslots = Hashtbl.create 16;
    field_off = Hashtbl.create 16;
    static_slot = Hashtbl.create 16;
    method_id = Hashtbl.create 64;
    nstatics = 0;
  } in
  List.iteri (fun i c -> Hashtbl.add lay.class_id c.tc_name i) prog;
  List.iter
    (fun c ->
       ignore (build_vslots lay c.tc_name);
       Hashtbl.add lay.field_off c.tc_name
         (List.mapi (fun i (f, _) -> (f, i)) c.tc_instance_fields);
       List.iter
         (fun (f, _, _) ->
            Hashtbl.add lay.static_slot (c.tc_name ^ "." ^ f) lay.nstatics;
            lay.nstatics <- lay.nstatics + 1)
         c.tc_static_fields)
    prog;
  let mid = ref 0 in
  List.iter
    (fun c ->
       List.iter
         (fun m ->
            Hashtbl.add lay.method_id (c.tc_name ^ "." ^ m.tm_name) !mid;
            incr mid)
         c.tc_methods)
    prog;
  lay

(* Static-field slot, searching the superclass chain for the owner. *)
let rec static_slot lay cls fname =
  match Hashtbl.find_opt lay.static_slot (cls ^ "." ^ fname) with
  | Some s -> s
  | None ->
    (match (class_of lay cls).tc_super with
     | Some s -> static_slot lay s fname
     | None -> err "no static slot %s.%s" cls fname)

let rec field_offset lay cls fname =
  match List.assoc_opt fname (Hashtbl.find lay.field_off cls) with
  | Some off -> off
  | None ->
    (match (class_of lay cls).tc_super with
     | Some s -> field_offset lay s fname
     | None -> err "no field offset %s.%s" cls fname)

let vslot lay cls mname =
  match List.assoc_opt mname (build_vslots lay cls) with
  | Some s -> s
  | None -> err "no vtable slot for %s.%s" cls mname

(* Method id for a statically-resolved target (searching ancestors). *)
let rec resolve_method_id lay cls mname =
  match Hashtbl.find_opt lay.method_id (cls ^ "." ^ mname) with
  | Some id -> id
  | None ->
    (match (class_of lay cls).tc_super with
     | Some s -> resolve_method_id lay s mname
     | None -> err "no method id for %s.%s" cls mname)

let elem_kind_of_typ : Ast.typ -> B.elem_kind = function
  | Ast.Tint -> B.Kint
  | Ast.Tfloat -> B.Kfloat
  | Ast.Tbool -> B.Kbool
  | Ast.Tobj _ | Ast.Tarray _ -> B.Kref
  | Ast.Tvoid -> err "void array element"

(* ------------------------------------------------------------------ *)
(* Per-method emission                                                 *)
(* ------------------------------------------------------------------ *)

(* Instructions are emitted with symbolic labels, resolved in a second
   pass.  [Pinsn] wraps final instructions whose operands are complete. *)
type pre =
  | Pinsn of B.insn
  | Plabel of int
  | Pif of B.cond * B.reg * B.reg * int     (* label *)
  | Pifz of B.cond * B.reg * int
  | Pgoto of int
  | Ptry_start of int                       (* try id *)
  | Ptry_end of int

type emitter = {
  lay : layout;
  cur_class : string;
  mutable buf : pre list;                   (* reversed *)
  mutable next_reg : int;
  mutable next_label : int;
  mutable env : (string * B.reg) list;
  mutable loop_stack : (int * int) list;    (* (break label, continue label) *)
  mutable tries : (int * B.reg * int) list; (* try id, exc reg, handler label *)
  mutable next_try : int;
  mutable has_try : bool;
}

let emit em p = em.buf <- p :: em.buf
let fresh_reg em = let r = em.next_reg in em.next_reg <- r + 1; r
let fresh_label em = let l = em.next_label in em.next_label <- l + 1; l

let cond_of_binop : Ast.binop -> B.cond option = function
  | Ast.Lt -> Some B.Clt | Ast.Le -> Some B.Cle
  | Ast.Gt -> Some B.Cgt | Ast.Ge -> Some B.Cge
  | Ast.Eq -> Some B.Ceq | Ast.Ne -> Some B.Cne
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem | Ast.Band | Ast.Bor
  | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Land | Ast.Lor -> None

let rec lower_expr em (e : texpr) : B.reg =
  match e.e with
  | Tint_lit k -> let r = fresh_reg em in emit em (Pinsn (B.Const (r, B.Cint k))); r
  | Tfloat_lit f -> let r = fresh_reg em in emit em (Pinsn (B.Const (r, B.Cfloat f))); r
  | Tbool_lit b -> let r = fresh_reg em in emit em (Pinsn (B.Const (r, B.Cbool b))); r
  | Tnull -> let r = fresh_reg em in emit em (Pinsn (B.Const (r, B.Cnull))); r
  | Tlocal name ->
    (match List.assoc_opt name em.env with
     | Some r -> r
     | None -> err "lower: unbound local %s" name)
  | Tthis -> 0
  | Tbinop ((Ast.Land | Ast.Lor), _, _) -> lower_bool_expr em e
  | Tbinop (op, a, b) ->
    let ra = lower_expr em a in
    let rb = lower_expr em b in
    let r = fresh_reg em in
    emit em (Pinsn (B.Binop (op, r, ra, rb)));
    r
  | Tunop (op, a) ->
    let ra = lower_expr em a in
    let r = fresh_reg em in
    emit em (Pinsn (B.Unop (op, r, ra)));
    r
  | Tcast (Ast.Tfloat, a) ->
    let ra = lower_expr em a in
    let r = fresh_reg em in
    emit em (Pinsn (B.IntToFloat (r, ra)));
    r
  | Tcast (Ast.Tint, a) ->
    let ra = lower_expr em a in
    let r = fresh_reg em in
    emit em (Pinsn (B.FloatToInt (r, ra)));
    r
  | Tcast (_, _) -> err "lower: unsupported cast"
  | Tstatic_call (cls, name, args) ->
    let rargs = List.map (lower_expr em) args in
    let mid = resolve_method_id em.lay cls name in
    let ret = if e.t = Ast.Tvoid then None else Some (fresh_reg em) in
    emit em (Pinsn (B.InvokeStatic (ret, mid, rargs)));
    (match ret with Some r -> r | None -> 0)
  | Tvirtual_call (recv, name, args) ->
    let rrecv = lower_expr em recv in
    let rargs = List.map (lower_expr em) args in
    let cls =
      match recv.t with
      | Ast.Tobj c -> c
      | _ -> err "virtual call on non-object"
    in
    let slot = vslot em.lay cls name in
    let ret = if e.t = Ast.Tvoid then None else Some (fresh_reg em) in
    emit em (Pinsn (B.InvokeVirtual (ret, slot, rrecv :: rargs)));
    (match ret with Some r -> r | None -> 0)
  | Tnative_call (n, args) ->
    let rargs = List.map (lower_expr em) args in
    let ret = if e.t = Ast.Tvoid then None else Some (fresh_reg em) in
    emit em (Pinsn (B.InvokeNative (ret, n, rargs)));
    (match ret with Some r -> r | None -> 0)
  | Tnew (cls, args) ->
    let cid =
      match Hashtbl.find_opt em.lay.class_id cls with
      | Some i -> i
      | None -> err "new of unknown class %s" cls
    in
    let robj = fresh_reg em in
    emit em (Pinsn (B.NewObj (robj, cid)));
    if args <> [] || Typecheck.method_sig em.lay.prog cls "init" <> None then begin
      match Typecheck.method_sig em.lay.prog cls "init" with
      | Some (false, _, _) ->
        let rargs = List.map (lower_expr em) args in
        let slot = vslot em.lay cls "init" in
        emit em (Pinsn (B.InvokeVirtual (None, slot, robj :: rargs)))
      | Some (true, _, _) -> err "static constructor in %s" cls
      | None -> ()
    end;
    robj
  | Tnew_array (elem, len) ->
    let rlen = lower_expr em len in
    let r = fresh_reg em in
    emit em (Pinsn (B.NewArr (r, elem_kind_of_typ elem, rlen)));
    r
  | Tindex (arr, idx) ->
    let ra = lower_expr em arr in
    let ri = lower_expr em idx in
    let r = fresh_reg em in
    emit em (Pinsn (B.ALoad (elem_kind_of_typ e.t, r, ra, ri)));
    r
  | Tfield (obj, fname) ->
    let robj = lower_expr em obj in
    let cls = match obj.t with Ast.Tobj c -> c | _ -> err "field on non-object" in
    let off = field_offset em.lay cls fname in
    let r = fresh_reg em in
    emit em (Pinsn (B.IGet (elem_kind_of_typ e.t, r, robj, off)));
    r
  | Tstatic_field (cls, fname) ->
    let slot = static_slot em.lay cls fname in
    let r = fresh_reg em in
    emit em (Pinsn (B.SGet (elem_kind_of_typ e.t, r, slot)));
    r
  | Tlen arr ->
    let ra = lower_expr em arr in
    let r = fresh_reg em in
    emit em (Pinsn (B.ArrLen (r, ra)));
    r

(* Lower a boolean expression used as a value (&& and || short-circuit). *)
and lower_bool_expr em (e : texpr) : B.reg =
  let r = fresh_reg em in
  let l_true = fresh_label em in
  let l_false = fresh_label em in
  let l_end = fresh_label em in
  lower_cond em e ~if_true:l_true ~if_false:l_false;
  emit em (Plabel l_true);
  emit em (Pinsn (B.Const (r, B.Cbool true)));
  emit em (Pgoto l_end);
  emit em (Plabel l_false);
  emit em (Pinsn (B.Const (r, B.Cbool false)));
  emit em (Plabel l_end);
  r

(* Lower a condition into control flow, fusing integer comparisons into
   compare-and-branch instructions as dex does. *)
and lower_cond em (e : texpr) ~if_true ~if_false =
  match e.e with
  | Tbool_lit true -> emit em (Pgoto if_true)
  | Tbool_lit false -> emit em (Pgoto if_false)
  | Tunop (Ast.Not, inner) -> lower_cond em inner ~if_true:if_false ~if_false:if_true
  | Tbinop (Ast.Land, a, b) ->
    let l_mid = fresh_label em in
    lower_cond em a ~if_true:l_mid ~if_false;
    emit em (Plabel l_mid);
    lower_cond em b ~if_true ~if_false
  | Tbinop (Ast.Lor, a, b) ->
    let l_mid = fresh_label em in
    lower_cond em a ~if_true ~if_false:l_mid;
    emit em (Plabel l_mid);
    lower_cond em b ~if_true ~if_false
  | Tbinop (op, a, b) when cond_of_binop op <> None ->
    let c = Option.get (cond_of_binop op) in
    let ra = lower_expr em a in
    let rb = lower_expr em b in
    emit em (Pif (c, ra, rb, if_true));
    emit em (Pgoto if_false)
  | Tint_lit _ | Tfloat_lit _ | Tnull | Tlocal _ | Tthis | Tbinop _ | Tunop _
  | Tstatic_call _ | Tvirtual_call _ | Tnative_call _ | Tnew _ | Tnew_array _
  | Tindex _ | Tfield _ | Tstatic_field _ | Tlen _ | Tcast _ ->
    let r = lower_expr em e in
    emit em (Pifz (B.Cne, r, if_true));
    emit em (Pgoto if_false)

let lower_lvalue_store em (lv : tlvalue) (rsrc : B.reg) (t : Ast.typ) =
  match lv with
  | TLlocal name ->
    (match List.assoc_opt name em.env with
     | Some r -> emit em (Pinsn (B.Move (r, rsrc)))
     | None -> err "lower: unbound local %s" name)
  | TLindex (arr, idx) ->
    let ra = lower_expr em arr in
    let ri = lower_expr em idx in
    emit em (Pinsn (B.AStore (elem_kind_of_typ t, ra, ri, rsrc)))
  | TLfield (obj, fname) ->
    let robj = lower_expr em obj in
    let cls = match obj.t with Ast.Tobj c -> c | _ -> err "field on non-object" in
    emit em (Pinsn (B.IPut (elem_kind_of_typ t, robj, rsrc, field_offset em.lay cls fname)))
  | TLstatic (cls, fname) ->
    emit em (Pinsn (B.SPut (elem_kind_of_typ t, static_slot em.lay cls fname, rsrc)))

let rec lower_stmts em stmts = List.iter (lower_stmt em) stmts

and lower_block em stmts =
  let saved = em.env in
  lower_stmts em stmts;
  em.env <- saved

and lower_stmt em = function
  | TSdecl (t, name, init) ->
    let r = fresh_reg em in
    (match init with
     | Some e ->
       let rv = lower_expr em e in
       emit em (Pinsn (B.Move (r, rv)))
     | None ->
       let default =
         match t with
         | Ast.Tint -> B.Cint 0
         | Ast.Tfloat -> B.Cfloat 0.0
         | Ast.Tbool -> B.Cbool false
         | Ast.Tarray _ | Ast.Tobj _ -> B.Cnull
         | Ast.Tvoid -> err "void local"
       in
       emit em (Pinsn (B.Const (r, default))));
    em.env <- (name, r) :: em.env
  | TSassign (lv, rhs) ->
    let t = rhs.t in
    let r = lower_expr em rhs in
    lower_lvalue_store em lv r t
  | TSif (cond, th, el) ->
    let l_then = fresh_label em in
    let l_else = fresh_label em in
    let l_end = fresh_label em in
    lower_cond em cond ~if_true:l_then ~if_false:l_else;
    emit em (Plabel l_then);
    lower_block em th;
    emit em (Pgoto l_end);
    emit em (Plabel l_else);
    lower_block em el;
    emit em (Plabel l_end)
  | TSwhile (cond, body) ->
    let l_head = fresh_label em in
    let l_body = fresh_label em in
    let l_end = fresh_label em in
    emit em (Plabel l_head);
    lower_cond em cond ~if_true:l_body ~if_false:l_end;
    emit em (Plabel l_body);
    em.loop_stack <- (l_end, l_head) :: em.loop_stack;
    lower_block em body;
    em.loop_stack <- List.tl em.loop_stack;
    emit em (Pgoto l_head);
    emit em (Plabel l_end)
  | TSreturn None -> emit em (Pinsn (B.Ret None))
  | TSreturn (Some e) ->
    let r = lower_expr em e in
    emit em (Pinsn (B.Ret (Some r)))
  | TSexpr e -> ignore (lower_expr em e)
  | TSthrow e ->
    let r = lower_expr em e in
    emit em (Pinsn (B.Throw r))
  | TStry (body, name, handler) ->
    em.has_try <- true;
    let try_id = em.next_try in
    em.next_try <- try_id + 1;
    let rexc = fresh_reg em in
    let l_handler = fresh_label em in
    let l_end = fresh_label em in
    em.tries <- (try_id, rexc, l_handler) :: em.tries;
    emit em (Ptry_start try_id);
    lower_block em body;
    emit em (Ptry_end try_id);
    emit em (Pgoto l_end);
    emit em (Plabel l_handler);
    let saved = em.env in
    em.env <- (name, rexc) :: em.env;
    lower_stmts em handler;
    em.env <- saved;
    emit em (Plabel l_end)
  | TSbreak ->
    (match em.loop_stack with
     | (l_break, _) :: _ -> emit em (Pgoto l_break)
     | [] -> err "break outside loop")
  | TScontinue ->
    (match em.loop_stack with
     | (_, l_cont) :: _ -> emit em (Pgoto l_cont)
     | [] -> err "continue outside loop")

(* Resolve labels to instruction indices and build handler ranges. *)
let assemble em : B.insn array * (int * int * B.reg * int) array =
  let pres = List.rev em.buf in
  let label_pos = Hashtbl.create 64 in
  let try_start = Hashtbl.create 8 in
  let try_end = Hashtbl.create 8 in
  let pc = ref 0 in
  List.iter
    (fun p ->
       match p with
       | Plabel l -> Hashtbl.replace label_pos l !pc
       | Ptry_start id -> Hashtbl.replace try_start id !pc
       | Ptry_end id -> Hashtbl.replace try_end id !pc
       | Pinsn _ | Pif _ | Pifz _ | Pgoto _ -> incr pc)
    pres;
  let resolve l =
    match Hashtbl.find_opt label_pos l with
    | Some p -> p
    | None -> err "unresolved label %d" l
  in
  let code =
    List.filter_map
      (fun p ->
         match p with
         | Plabel _ | Ptry_start _ | Ptry_end _ -> None
         | Pinsn i -> Some i
         | Pif (c, a, b, l) -> Some (B.If (c, a, b, resolve l))
         | Pifz (c, a, l) -> Some (B.Ifz (c, a, resolve l))
         | Pgoto l -> Some (B.Goto (resolve l)))
      pres
  in
  let handlers =
    List.rev_map
      (fun (id, rexc, l_handler) ->
         (Hashtbl.find try_start id, Hashtbl.find try_end id, rexc,
          resolve l_handler))
      em.tries
  in
  (Array.of_list code, Array.of_list handlers)

let lower_method lay cid (c : tclass) mid (m : tmethod) : B.compiled_method =
  let nparams = List.length m.tm_params + if m.tm_static then 0 else 1 in
  let em = {
    lay;
    cur_class = c.tc_name;
    buf = [];
    next_reg = nparams;
    next_label = 0;
    env = [];
    loop_stack = [];
    tries = [];
    next_try = 0;
    has_try = false;
  } in
  ignore em.cur_class;
  let param_base = if m.tm_static then 0 else 1 in
  em.env <-
    List.mapi (fun i (_, name) -> (name, param_base + i)) m.tm_params;
  lower_stmts em m.tm_body;
  (* implicit return for fall-through *)
  (match m.tm_ret with
   | Ast.Tvoid -> emit em (Pinsn (B.Ret None))
   | Ast.Tint | Ast.Tbool ->
     let r = fresh_reg em in
     emit em (Pinsn (B.Const (r, B.Cint 0)));
     emit em (Pinsn (B.Ret (Some r)))
   | Ast.Tfloat ->
     let r = fresh_reg em in
     emit em (Pinsn (B.Const (r, B.Cfloat 0.0)));
     emit em (Pinsn (B.Ret (Some r)))
   | Ast.Tarray _ | Ast.Tobj _ ->
     let r = fresh_reg em in
     emit em (Pinsn (B.Const (r, B.Cnull)));
     emit em (Pinsn (B.Ret (Some r))));
  let code, handlers = assemble em in
  let param_kinds =
    let own = List.map (fun (t, _) -> elem_kind_of_typ t) m.tm_params in
    Array.of_list (if m.tm_static then own else B.Kref :: own)
  in
  { B.cm_id = mid;
    cm_class = cid;
    cm_class_name = c.tc_name;
    cm_name = m.tm_name;
    cm_static = m.tm_static;
    cm_nparams = nparams;
    cm_param_kinds = param_kinds;
    cm_nregs = em.next_reg;
    cm_code = code;
    cm_ret = m.tm_ret;
    cm_has_try = em.has_try;
    cm_handlers = handlers }

let lower (prog : tprogram) : B.dexfile =
  let lay = build_layout prog in
  let classes =
    List.map
      (fun c ->
         let cid = Hashtbl.find lay.class_id c.tc_name in
         let slots = build_vslots lay c.tc_name in
         let nslots = List.length slots in
         let vtable = Array.make nslots (-1) in
         let names = Array.make nslots "" in
         List.iter
           (fun (name, slot) ->
              vtable.(slot) <- resolve_method_id lay c.tc_name name;
              names.(slot) <- name)
           slots;
         { B.ci_id = cid;
           ci_name = c.tc_name;
           ci_super =
             Option.map (fun s -> Hashtbl.find lay.class_id s) c.tc_super;
           ci_nfields = List.length c.tc_instance_fields;
           ci_field_offset = Hashtbl.find lay.field_off c.tc_name;
           ci_vtable = vtable;
           ci_vslot_names = names })
      prog
  in
  let methods =
    List.concat_map
      (fun c ->
         let cid = Hashtbl.find lay.class_id c.tc_name in
         List.map
           (fun m ->
              let mid = Hashtbl.find lay.method_id (c.tc_name ^ "." ^ m.tm_name) in
              lower_method lay cid c mid m)
           c.tc_methods)
      prog
  in
  let methods = List.sort (fun a b -> compare a.B.cm_id b.B.cm_id) methods in
  let static_inits =
    List.concat_map
      (fun c ->
         List.map
           (fun (f, _, const) ->
              { B.si_slot = Hashtbl.find lay.static_slot (c.tc_name ^ "." ^ f);
                si_value = const })
           c.tc_static_fields)
      prog
  in
  let static_names = Hashtbl.fold (fun k v acc -> (k, v) :: acc) lay.static_slot [] in
  let main =
    match Hashtbl.find_opt lay.method_id "Main.main" with
    | Some id -> id
    | None -> err "program has no Main.main"
  in
  { B.dx_classes = Array.of_list classes;
    dx_methods = Array.of_list methods;
    dx_nstatics = lay.nstatics;
    dx_static_names = static_names;
    dx_static_inits = static_inits;
    dx_main = main }

let compile src = lower (Typecheck.check (Parser.parse_program src))

let vtable_slot dx cls mname =
  match B.find_class dx cls with
  | None -> None
  | Some ci ->
    let n = Array.length ci.B.ci_vslot_names in
    let rec loop i =
      if i >= n then None
      else if ci.B.ci_vslot_names.(i) = mname then Some i
      else loop (i + 1)
    in
    loop 0
