(** Type checking and name resolution for MiniDex.

    The checker validates a parsed {!Ast.program} and produces a typed AST in
    which every name is resolved: bare identifiers become locals, implicit
    [this] field accesses, or static fields; unqualified calls are attached to
    the defining class; [Math.*]/[Sys.*] calls become native calls; implicit
    int-to-float coercions are made explicit. *)

type texpr = { e : texpr_desc; t : Ast.typ }

and texpr_desc =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tbool_lit of bool
  | Tnull
  | Tlocal of string
  | Tthis
  | Tbinop of Ast.binop * texpr * texpr
  | Tunop of Ast.unop * texpr
  | Tstatic_call of string * string * texpr list
  | Tvirtual_call of texpr * string * texpr list
  | Tnative_call of Bytecode.native * texpr list
  | Tnew of string * texpr list
  | Tnew_array of Ast.typ * texpr          (** element type, length *)
  | Tindex of texpr * texpr
  | Tfield of texpr * string
  | Tstatic_field of string * string
  | Tlen of texpr
  | Tcast of Ast.typ * texpr               (** int<->float conversion *)

type tlvalue =
  | TLlocal of string
  | TLindex of texpr * texpr
  | TLfield of texpr * string
  | TLstatic of string * string

type tstmt =
  | TSdecl of Ast.typ * string * texpr option
  | TSassign of tlvalue * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSreturn of texpr option
  | TSexpr of texpr
  | TSthrow of texpr
  | TStry of tstmt list * string * tstmt list
  | TSbreak
  | TScontinue

type tmethod = {
  tm_name : string;
  tm_class : string;
  tm_static : bool;
  tm_ret : Ast.typ;
  tm_params : (Ast.typ * string) list;
  tm_body : tstmt list;
}

type tclass = {
  tc_name : string;
  tc_super : string option;
  tc_instance_fields : (string * Ast.typ) list;
  (** layout order, inherited fields first *)
  tc_static_fields : (string * Ast.typ * Bytecode.const) list;
  tc_methods : tmethod list;
}

type tprogram = tclass list

exception Type_error of string

val check : Ast.program -> tprogram
(** @raise Type_error on ill-typed or unresolvable programs. *)

val field_typ : tprogram -> string -> string -> Ast.typ
(** [field_typ prog cls field] is the type of an instance field, searching
    the superclass chain.  @raise Type_error if absent. *)

val method_sig : tprogram -> string -> string ->
  (bool * Ast.typ * Ast.typ list) option
(** [method_sig prog cls name] finds a method in [cls] or its ancestors and
    returns (static, return type, parameter types). *)
