(** Lowering of a type-checked MiniDex program to register bytecode.

    Assigns class ids, instance-field layouts, vtable slots and static-field
    slots, then compiles each method body to a {!Bytecode.compiled_method}.
    The resulting {!Bytecode.dexfile} is what the interpreter executes and
    what the HGraph builder consumes. *)

exception Lower_error of string

val lower : Typecheck.tprogram -> Bytecode.dexfile
(** @raise Lower_error if the program has no [Main.main] static method. *)

val compile : string -> Bytecode.dexfile
(** [compile src] = parse, type-check and lower a source string.
    @raise Parser.Parse_error, Typecheck.Type_error or Lower_error. *)

val vtable_slot : Bytecode.dexfile -> string -> string -> int option
(** [vtable_slot dx cls method] returns the vtable slot used for a virtual
    call on static receiver type [cls]. *)
