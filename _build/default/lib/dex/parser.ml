open Ast

exception Parse_error of string * int

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s (got %s)" msg
                        (Lexer.string_of_token (peek st)), line st))

let eat_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let eat_kw st k =
  match peek st with
  | Lexer.KW q when q = k -> advance st
  | _ -> fail st (Printf.sprintf "expected keyword %S" k)

let try_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st; true
  | _ -> false

let try_kw st k =
  match peek st with
  | Lexer.KW q when q = k -> advance st; true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | _ -> fail st "expected identifier"

(* Types: base type followed by zero or more [] suffixes. *)
let rec parse_type st =
  let base =
    if try_kw st "int" then Tint
    else if try_kw st "float" then Tfloat
    else if try_kw st "bool" then Tbool
    else if try_kw st "void" then Tvoid
    else
      match peek st with
      | Lexer.IDENT s -> advance st; Tobj s
      | _ -> fail st "expected type"
  in
  array_suffix st base

and array_suffix st t =
  if try_punct st "[" then begin
    eat_punct st "]";
    array_suffix st (Tarray t)
  end
  else t

(* A type can only start a declaration when followed by an identifier; this
   disambiguates [Foo x = ...;] from the expression statement [Foo.bar();]. *)
let looks_like_decl st =
  match peek st with
  | Lexer.KW ("int" | "float" | "bool") -> true
  | Lexer.IDENT _ ->
    (* IDENT then (IDENT | "[" "]" ... IDENT) *)
    let rec after_brackets k =
      match fst st.toks.(k), fst st.toks.(k + 1) with
      | Lexer.PUNCT "[", Lexer.PUNCT "]" -> after_brackets (k + 2)
      | Lexer.IDENT _, _ -> true
      | _ -> false
    in
    after_brackets (st.pos + 1)
  | _ -> false

let rec parse_args st =
  if try_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expression st in
      if try_punct st "," then loop (e :: acc)
      else begin
        eat_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* Postfix chain: calls, field access, indexing, .length. *)
and parse_postfix st e =
  if try_punct st "." then begin
    let name = ident st in
    if try_punct st "(" then
      parse_postfix st (Evirtual_call (e, name, parse_args st))
    else if name = "length" then parse_postfix st (Elen e)
    else parse_postfix st (Efield (e, name))
  end
  else if try_punct st "[" then begin
    let idx = parse_expression st in
    eat_punct st "]";
    parse_postfix st (Eindex (e, idx))
  end
  else e

and parse_primary st =
  match peek st with
  | Lexer.INT k -> advance st; parse_postfix st (Eint k)
  | Lexer.FLOAT f -> advance st; parse_postfix st (Efloat f)
  | Lexer.KW "true" -> advance st; Ebool true
  | Lexer.KW "false" -> advance st; Ebool false
  | Lexer.KW "null" -> advance st; Enull
  | Lexer.KW "this" -> advance st; parse_postfix st Ethis
  | Lexer.KW "new" ->
    advance st;
    let t =
      if try_kw st "int" then Tint
      else if try_kw st "float" then Tfloat
      else if try_kw st "bool" then Tbool
      else Tobj (ident st)
    in
    if try_punct st "[" then begin
      let len = parse_expression st in
      eat_punct st "]";
      (* multi-dim suffixes like new int[n][] are not supported *)
      let rec elem_type t =
        if try_punct st "[" then begin
          eat_punct st "]";
          elem_type (Tarray t)
        end
        else t
      in
      let t = elem_type t in
      parse_postfix st (Enew_array (t, len))
    end
    else begin
      match t with
      | Tobj cname ->
        eat_punct st "(";
        parse_postfix st (Enew (cname, parse_args st))
      | Tint | Tfloat | Tbool | Tvoid | Tarray _ ->
        fail st "new on a non-class type requires [size]"
    end
  | Lexer.PUNCT "(" ->
    advance st;
    (* Either a cast "(int) e" / "(float) e" or a parenthesised expression. *)
    (match peek st with
     | Lexer.KW ("int" | "float" as tname) ->
       advance st;
       eat_punct st ")";
       let e = parse_unary st in
       Ecast ((if tname = "int" then Tint else Tfloat), e)
     | _ ->
       let e = parse_expression st in
       eat_punct st ")";
       parse_postfix st e)
  | Lexer.IDENT name ->
    advance st;
    if try_punct st "(" then
      (* Unqualified call: a call on the current class, resolved later. *)
      parse_postfix st (Estatic_call ("", name, parse_args st))
    else if try_punct st "." then begin
      let member = ident st in
      if try_punct st "(" then
        parse_postfix st (Estatic_call (name, member, parse_args st))
      else if member = "length" then parse_postfix st (Elen (Evar name))
      else
        (* Could be instance field of a local, or a static field of a class;
           the type checker resolves the ambiguity. *)
        parse_postfix st (Efield (Evar name, member))
    end
    else if try_punct st "[" then begin
      let idx = parse_expression st in
      eat_punct st "]";
      parse_postfix st (Eindex (Evar name, idx))
    end
    else Evar name
  | _ -> fail st "expected expression"

and parse_unary st =
  if try_punct st "-" then Eunop (Neg, parse_unary st)
  else if try_punct st "!" then Eunop (Not, parse_unary st)
  else parse_primary st

(* Precedence climbing. *)
and binop_of_punct = function
  | "*" -> Some (Mul, 10) | "/" -> Some (Div, 10) | "%" -> Some (Rem, 10)
  | "+" -> Some (Add, 9) | "-" -> Some (Sub, 9)
  | "<<" -> Some (Shl, 8) | ">>" -> Some (Shr, 8)
  | "<" -> Some (Lt, 7) | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7) | ">=" -> Some (Ge, 7)
  | "==" -> Some (Eq, 6) | "!=" -> Some (Ne, 6)
  | "&" -> Some (Band, 5)
  | "^" -> Some (Bxor, 4)
  | "|" -> Some (Bor, 3)
  | "&&" -> Some (Land, 2)
  | "||" -> Some (Lor, 1)
  | _ -> None

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Lexer.PUNCT p ->
      (match binop_of_punct p with
       | Some (op, prec) when prec >= min_prec ->
         advance st;
         let rhs = parse_binary st (prec + 1) in
         loop (Ebinop (op, lhs, rhs))
       | _ -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_expression st = parse_binary st 1

let lvalue_of_expr st = function
  | Evar v -> Lvar v
  | Eindex (a, i) -> Lindex (a, i)
  | Efield (o, f) -> Lfield (o, f)
  | Estatic_field (c, f) -> Lstatic (c, f)
  | _ -> fail st "invalid assignment target"

let rec parse_stmt st =
  match peek st with
  | Lexer.PUNCT "{" ->
    advance st;
    Sblock (parse_stmts_until st "}")
  | Lexer.KW "if" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expression st in
    eat_punct st ")";
    let then_b = parse_branch st in
    let else_b = if try_kw st "else" then parse_branch st else [] in
    Sif (cond, then_b, else_b)
  | Lexer.KW "while" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expression st in
    eat_punct st ")";
    Swhile (cond, parse_branch st)
  | Lexer.KW "for" ->
    advance st;
    eat_punct st "(";
    let init =
      if try_punct st ";" then None
      else begin
        let s = parse_simple_stmt st in
        eat_punct st ";";
        Some s
      end
    in
    let cond =
      if try_punct st ";" then Ebool true
      else begin
        let e = parse_expression st in
        eat_punct st ";";
        e
      end
    in
    let step =
      if try_punct st ")" then None
      else begin
        let s = parse_simple_stmt st in
        eat_punct st ")";
        Some s
      end
    in
    Sfor (init, cond, step, parse_branch st)
  | Lexer.KW "return" ->
    advance st;
    if try_punct st ";" then Sreturn None
    else begin
      let e = parse_expression st in
      eat_punct st ";";
      Sreturn (Some e)
    end
  | Lexer.KW "throw" ->
    advance st;
    let e = parse_expression st in
    eat_punct st ";";
    Sthrow e
  | Lexer.KW "break" -> advance st; eat_punct st ";"; Sbreak
  | Lexer.KW "continue" -> advance st; eat_punct st ";"; Scontinue
  | Lexer.KW "try" ->
    advance st;
    eat_punct st "{";
    let body = parse_stmts_until st "}" in
    eat_kw st "catch";
    eat_punct st "(";
    eat_kw st "int";
    let name = ident st in
    eat_punct st ")";
    eat_punct st "{";
    let handler = parse_stmts_until st "}" in
    Stry (body, name, handler)
  | _ ->
    let s = parse_simple_stmt st in
    eat_punct st ";";
    s

and parse_branch st =
  if try_punct st "{" then parse_stmts_until st "}" else [ parse_stmt st ]

(* Declaration, assignment or expression statement (no trailing ';'). *)
and parse_simple_stmt st =
  if looks_like_decl st then begin
    let t = parse_type st in
    let name = ident st in
    let init = if try_punct st "=" then Some (parse_expression st) else None in
    Sdecl (t, name, init)
  end
  else begin
    let e = parse_expression st in
    if try_punct st "=" then begin
      let rhs = parse_expression st in
      Sassign (lvalue_of_expr st e, rhs)
    end
    else Sexpr e
  end

and parse_stmts_until st closer =
  let rec loop acc =
    if try_punct st closer then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

let parse_member st =
  let is_static = try_kw st "static" in
  let t = parse_type st in
  let name = ident st in
  if try_punct st "(" then begin
    let params =
      if try_punct st ")" then []
      else begin
        let rec loop acc =
          let pt = parse_type st in
          let pn = ident st in
          if try_punct st "," then loop ((pt, pn) :: acc)
          else begin
            eat_punct st ")";
            List.rev ((pt, pn) :: acc)
          end
        in
        loop []
      end
    in
    eat_punct st "{";
    let body = parse_stmts_until st "}" in
    `Method { m_name = name; m_static = is_static; m_ret = t;
              m_params = params; m_body = body }
  end
  else begin
    let init = if try_punct st "=" then Some (parse_expression st) else None in
    eat_punct st ";";
    `Field { f_name = name; f_typ = t; f_static = is_static; f_init = init }
  end

let parse_class st =
  eat_kw st "class";
  let name = ident st in
  let super = if try_kw st "extends" then Some (ident st) else None in
  eat_punct st "{";
  let rec loop fields methods =
    if try_punct st "}" then (List.rev fields, List.rev methods)
    else
      match parse_member st with
      | `Field f -> loop (f :: fields) methods
      | `Method m -> loop fields (m :: methods)
  in
  let fields, methods = loop [] [] in
  { c_name = name; c_super = super; c_fields = fields; c_methods = methods }

let parse_program src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec loop acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ -> loop (parse_class st :: acc)
  in
  loop []

let parse_expr src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = parse_expression st in
  match peek st with
  | Lexer.EOF -> e
  | _ -> fail st "trailing tokens after expression"
