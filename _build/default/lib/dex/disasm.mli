(** Human-readable dumps of bytecode, for debugging and the CLI. *)

val insn : Bytecode.dexfile -> Bytecode.insn -> string
val method_ : Bytecode.dexfile -> Bytecode.compiled_method -> string
val dexfile : Bytecode.dexfile -> string
