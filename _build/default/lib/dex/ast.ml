(* Abstract syntax of MiniDex, the small Java-like language in which the
   evaluation applications are written.  MiniDex stands in for Dalvik/Java
   source in the reproduction: it has classes with single inheritance and
   virtual dispatch, static methods and fields, int/float/bool scalars,
   arrays, exceptions, and a set of built-in "native" calls (the [Sys] and
   [Math] pseudo-classes) that model JNI, I/O and non-determinism. *)

type typ =
  | Tint
  | Tfloat
  | Tbool
  | Tvoid
  | Tarray of typ
  | Tobj of string

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type unop = Neg | Not

type expr =
  | Eint of int
  | Efloat of float
  | Ebool of bool
  | Enull
  | Evar of string
  | Ethis
  | Ebinop of binop * expr * expr
  | Eunop of unop * expr
  | Estatic_call of string * string * expr list  (* Class.method(args) *)
  | Evirtual_call of expr * string * expr list   (* obj.method(args) *)
  | Enew of string * expr list                   (* new C(args) *)
  | Enew_array of typ * expr                     (* new t[n] *)
  | Eindex of expr * expr                        (* a[i] *)
  | Efield of expr * string                      (* obj.f *)
  | Estatic_field of string * string             (* Class.f *)
  | Elen of expr                                 (* a.length *)
  | Ecast of typ * expr                          (* (int)e / (float)e *)

type lvalue =
  | Lvar of string
  | Lindex of expr * expr
  | Lfield of expr * string
  | Lstatic of string * string

type stmt =
  | Sdecl of typ * string * expr option
  | Sassign of lvalue * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr * stmt option * stmt list
  | Sreturn of expr option
  | Sexpr of expr
  | Sblock of stmt list
  | Sthrow of expr
  | Stry of stmt list * string * stmt list  (* try body / catch (int name) / handler *)
  | Sbreak
  | Scontinue

type method_def = {
  m_name : string;
  m_static : bool;
  m_ret : typ;
  m_params : (typ * string) list;
  m_body : stmt list;
}

type field_def = {
  f_name : string;
  f_typ : typ;
  f_static : bool;
  f_init : expr option;  (* static fields only; must be a constant *)
}

type class_def = {
  c_name : string;
  c_super : string option;
  c_fields : field_def list;
  c_methods : method_def list;
}

type program = class_def list

let rec string_of_typ = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"
  | Tvoid -> "void"
  | Tarray t -> string_of_typ t ^ "[]"
  | Tobj c -> c

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"
