module B = Bytecode

let const = function
  | B.Cint k -> string_of_int k
  | B.Cfloat f -> Printf.sprintf "%g" f
  | B.Cbool b -> string_of_bool b
  | B.Cnull -> "null"

let cond = function
  | B.Ceq -> "eq" | B.Cne -> "ne" | B.Clt -> "lt"
  | B.Cle -> "le" | B.Cgt -> "gt" | B.Cge -> "ge"

let kind = function
  | B.Kint -> "i" | B.Kfloat -> "f" | B.Kbool -> "b" | B.Kref -> "r"

let r k = "r" ^ string_of_int k
let regs rs = String.concat ", " (List.map r rs)

let mname (dx : B.dexfile) mid = B.method_full_name dx.B.dx_methods.(mid)

let insn dx = function
  | B.Const (d, c) -> Printf.sprintf "%s = const %s" (r d) (const c)
  | B.Move (d, s) -> Printf.sprintf "%s = %s" (r d) (r s)
  | B.Binop (op, d, a, b) ->
    Printf.sprintf "%s = %s %s %s" (r d) (r a) (Ast.string_of_binop op) (r b)
  | B.Unop (Ast.Neg, d, a) -> Printf.sprintf "%s = neg %s" (r d) (r a)
  | B.Unop (Ast.Not, d, a) -> Printf.sprintf "%s = not %s" (r d) (r a)
  | B.IntToFloat (d, a) -> Printf.sprintf "%s = i2f %s" (r d) (r a)
  | B.FloatToInt (d, a) -> Printf.sprintf "%s = f2i %s" (r d) (r a)
  | B.If (c, a, b, t) -> Printf.sprintf "if-%s %s, %s -> @%d" (cond c) (r a) (r b) t
  | B.Ifz (c, a, t) -> Printf.sprintf "if-%sz %s -> @%d" (cond c) (r a) t
  | B.Goto t -> Printf.sprintf "goto @%d" t
  | B.NewObj (d, cid) ->
    Printf.sprintf "%s = new %s" (r d) dx.B.dx_classes.(cid).B.ci_name
  | B.NewArr (d, k, len) ->
    Printf.sprintf "%s = new-array.%s [%s]" (r d) (kind k) (r len)
  | B.ALoad (k, d, a, i) ->
    Printf.sprintf "%s = aload.%s %s[%s]" (r d) (kind k) (r a) (r i)
  | B.AStore (k, a, i, s) ->
    Printf.sprintf "astore.%s %s[%s] = %s" (kind k) (r a) (r i) (r s)
  | B.ArrLen (d, a) -> Printf.sprintf "%s = len %s" (r d) (r a)
  | B.IGet (k, d, o, off) -> Printf.sprintf "%s = iget.%s %s.f%d" (r d) (kind k) (r o) off
  | B.IPut (k, o, s, off) -> Printf.sprintf "iput.%s %s.f%d = %s" (kind k) (r o) off (r s)
  | B.SGet (k, d, slot) -> Printf.sprintf "%s = sget.%s s%d" (r d) (kind k) slot
  | B.SPut (k, slot, s) -> Printf.sprintf "sput.%s s%d = %s" (kind k) slot (r s)
  | B.InvokeStatic (ret, mid, args) ->
    Printf.sprintf "%sinvoke-static %s(%s)"
      (match ret with Some d -> r d ^ " = " | None -> "")
      (mname dx mid) (regs args)
  | B.InvokeVirtual (ret, slot, args) ->
    Printf.sprintf "%sinvoke-virtual vslot%d(%s)"
      (match ret with Some d -> r d ^ " = " | None -> "")
      slot (regs args)
  | B.InvokeNative (ret, n, args) ->
    Printf.sprintf "%sinvoke-native %s(%s)"
      (match ret with Some d -> r d ^ " = " | None -> "")
      (B.native_name n) (regs args)
  | B.Ret None -> "ret"
  | B.Ret (Some a) -> Printf.sprintf "ret %s" (r a)
  | B.Throw a -> Printf.sprintf "throw %s" (r a)

let method_ dx (m : B.compiled_method) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s %s.%s (params=%d regs=%d)\n"
    (if m.B.cm_static then "static" else "virtual")
    m.B.cm_class_name m.B.cm_name m.B.cm_nparams m.B.cm_nregs;
  Array.iteri
    (fun i ins -> Printf.bprintf buf "  @%-3d %s\n" i (insn dx ins))
    m.B.cm_code;
  Array.iter
    (fun (s, e, rexc, h) ->
       Printf.bprintf buf "  try [@%d, @%d) catch -> @%d (exc in %s)\n" s e h (r rexc))
    m.B.cm_handlers;
  Buffer.contents buf

let dexfile dx =
  let buf = Buffer.create 1024 in
  Array.iter (fun m -> Buffer.add_string buf (method_ dx m)) dx.B.dx_methods;
  Buffer.contents buf
