type t = { blobs : (string, int) Hashtbl.t }

let create () = { blobs = Hashtbl.create 16 }
let write t ~label ~bytes = Hashtbl.replace t.blobs label bytes
let delete t ~label = Hashtbl.remove t.blobs label
let size t ~label = Hashtbl.find_opt t.blobs label
let total_bytes t = Hashtbl.fold (fun _ b acc -> acc + b) t.blobs 0
let labels t = Hashtbl.fold (fun l _ acc -> l :: acc) t.blobs [] |> List.sort compare
