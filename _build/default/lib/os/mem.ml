let page_size = 4096
let words_per_page = page_size / 8

type region_kind = Rheap | Rstatics | Rruntime | Rcode | Rgc_aux | Rstack

type mapping = {
  map_base : int;
  map_npages : int;
  map_kind : region_kind;
  map_name : string;
}

type stats = {
  mutable n_faults : int;
  mutable n_cow : int;
  mutable n_reads : int;
  mutable n_writes : int;
}

(* A physical frame, shareable between address spaces after fork. *)
type frame = { data : int64 array; mutable refcount : int }

(* Per-address-space view of a page. *)
type entry = { mutable frame : frame; mutable protected_ : bool }

type t = {
  table : (int, entry) Hashtbl.t;       (* page index -> entry *)
  mutable maps : mapping list;          (* ascending by base *)
  mutable handler : (int -> unit) option;
  st : stats;
}

let create () = {
  table = Hashtbl.create 1024;
  maps = [];
  handler = None;
  st = { n_faults = 0; n_cow = 0; n_reads = 0; n_writes = 0 };
}

let page_of_addr addr = addr / page_size
let addr_of_page page = page * page_size

let overlaps m base npages =
  let e1 = m.map_base + (m.map_npages * page_size) in
  let e2 = base + (npages * page_size) in
  base < e1 && m.map_base < e2

let map t ~base ~npages ~kind ~name =
  if base mod page_size <> 0 then invalid_arg "Mem.map: unaligned base";
  if npages <= 0 then invalid_arg "Mem.map: empty mapping";
  List.iter
    (fun m ->
       if overlaps m base npages then
         invalid_arg (Printf.sprintf "Mem.map: %s overlaps %s" name m.map_name))
    t.maps;
  let m = { map_base = base; map_npages = npages; map_kind = kind; map_name = name } in
  t.maps <- List.sort (fun a b -> compare a.map_base b.map_base) (m :: t.maps)

let mappings t = t.maps
let stats t = t.st

let reset_stats t =
  t.st.n_faults <- 0;
  t.st.n_cow <- 0;
  t.st.n_reads <- 0;
  t.st.n_writes <- 0

let mapping_of_page t page =
  let addr = addr_of_page page in
  List.find_opt
    (fun m -> addr >= m.map_base && addr < m.map_base + (m.map_npages * page_size))
    t.maps

let kind_of_page t page = Option.map (fun m -> m.map_kind) (mapping_of_page t page)

let require_mapped t page op =
  if mapping_of_page t page = None then
    invalid_arg
      (Printf.sprintf "Mem.%s: unmapped address %#x" op (addr_of_page page))

let fresh_frame () = { data = Array.make words_per_page 0L; refcount = 1 }

let entry_of t page op =
  match Hashtbl.find_opt t.table page with
  | Some e -> e
  | None ->
    require_mapped t page op;
    let e = { frame = fresh_frame (); protected_ = false } in
    Hashtbl.add t.table page e;
    e

(* Take the protection fault, if any: run the handler once, then restore
   access so the access can proceed (§3.2 step 3). *)
let check_fault t page (e : entry) =
  if e.protected_ then begin
    t.st.n_faults <- t.st.n_faults + 1;
    e.protected_ <- false;
    match t.handler with Some h -> h page | None -> ()
  end

let read_word t addr =
  let page = page_of_addr addr in
  let e = entry_of t page "read" in
  check_fault t page e;
  t.st.n_reads <- t.st.n_reads + 1;
  e.frame.data.((addr mod page_size) / 8)

let write_word t addr v =
  let page = page_of_addr addr in
  let e = entry_of t page "write" in
  check_fault t page e;
  (* Copy-on-Write: un-share the frame before modifying it. *)
  if e.frame.refcount > 1 then begin
    let copy = { data = Array.copy e.frame.data; refcount = 1 } in
    e.frame.refcount <- e.frame.refcount - 1;
    e.frame <- copy;
    t.st.n_cow <- t.st.n_cow + 1
  end;
  t.st.n_writes <- t.st.n_writes + 1;
  e.frame.data.((addr mod page_size) / 8) <- v

let read_int t addr = Int64.to_int (read_word t addr)
let write_int t addr v = write_word t addr (Int64.of_int v)
let read_float t addr = Int64.float_of_bits (read_word t addr)
let write_float t addr v = write_word t addr (Int64.bits_of_float v)

let protect t ~page =
  match Hashtbl.find_opt t.table page with
  | Some e -> e.protected_ <- true
  | None -> ()

let unprotect t ~page =
  match Hashtbl.find_opt t.table page with
  | Some e -> e.protected_ <- false
  | None -> ()

let protected t ~page =
  match Hashtbl.find_opt t.table page with
  | Some e -> e.protected_
  | None -> false

let set_fault_handler t h = t.handler <- h

let fork t =
  let child = create () in
  child.maps <- t.maps;
  Hashtbl.iter
    (fun page e ->
       e.frame.refcount <- e.frame.refcount + 1;
       Hashtbl.add child.table page { frame = e.frame; protected_ = false })
    t.table;
  child

let install_page t ~page data =
  if Array.length data <> words_per_page then
    invalid_arg "Mem.install_page: bad image size";
  require_mapped t page "install_page";
  Hashtbl.replace t.table page
    { frame = { data = Array.copy data; refcount = 1 }; protected_ = false }

let page_data t ~page =
  Option.map (fun e -> Array.copy e.frame.data) (Hashtbl.find_opt t.table page)

let touched_pages t ~kind =
  Hashtbl.fold
    (fun page _ acc -> if kind_of_page t page = Some kind then page :: acc else acc)
    t.table []
  |> List.sort compare

let word_count t = Hashtbl.length t.table * words_per_page
