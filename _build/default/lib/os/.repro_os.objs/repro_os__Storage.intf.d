lib/os/storage.mli:
