lib/os/mem.mli:
