lib/os/storage.ml: Hashtbl List
