lib/os/mem.ml: Array Hashtbl Int64 List Option Printf
