(** Device flash storage model: tracks the bytes each capture spools out, so
    the storage-overhead experiment (Figure 11) can account for
    program-specific pages vs. boot-common pages stored once per boot. *)

type t

val create : unit -> t

val write : t -> label:string -> bytes:int -> unit
(** Append a blob.  Writing the same label again replaces it. *)

val delete : t -> label:string -> unit
val size : t -> label:string -> int option
val total_bytes : t -> int
val labels : t -> string list
