(** Statistical methodology from the paper's experimental setup (§4).

    During search each transformation is evaluated 10 times through replay;
    outliers are removed with the median absolute deviation; the relative
    merit of two transformation sets is decided with a two-sided t-test; the
    online-vs-offline study (Figure 3) uses bootstrapped confidence
    intervals. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (division by n-1); 0 for fewer than 2 points. *)

val stddev : float array -> float
val median : float array -> float
(** Median of the values; does not modify the input array. *)

val mad : float array -> float
(** Median absolute deviation around the median. *)

val remove_outliers_mad : ?threshold:float -> float array -> float array
(** Keep points whose modified z-score [0.6745 * |x - median| / MAD] is at
    most [threshold] (default 3.5).  If the MAD is zero the input is returned
    unchanged. *)

val welch_t_test : float array -> float array -> float
(** [welch_t_test a b] returns the two-sided p-value for the null hypothesis
    that [a] and [b] have equal means, using Welch's unequal-variance t-test
    with a normal approximation of the t distribution (adequate for the
    sample sizes used here). *)

val significantly_less : ?alpha:float -> float array -> float array -> bool
(** [significantly_less a b] holds when mean [a] < mean [b] and the t-test
    rejects equality at level [alpha] (default 0.05). *)

type ci = { lo : float; hi : float }

val bootstrap_ci : Rng.t -> ?rounds:int -> confidence:float ->
  (float array -> float) -> float array -> ci
(** Percentile bootstrap confidence interval for a statistic. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100]; linear interpolation. *)

val geomean : float array -> float
