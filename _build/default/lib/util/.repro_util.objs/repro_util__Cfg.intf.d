lib/util/cfg.mli:
