lib/util/rng.mli:
