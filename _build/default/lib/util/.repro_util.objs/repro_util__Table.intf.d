lib/util/table.mli:
