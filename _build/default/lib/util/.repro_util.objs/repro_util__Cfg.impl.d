lib/util/cfg.ml: Array Hashtbl List Option
