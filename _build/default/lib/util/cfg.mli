(** Control-flow-graph analyses shared by the HGraph and LIR libraries.

    Nodes are integer block ids; the graph is given extensionally as an entry
    node and a successor function.  Provides reachability, predecessors,
    reverse postorder, immediate dominators (Cooper-Harvey-Kennedy) and
    natural loops. *)

type t

val analyze : entry:int -> succs:(int -> int list) -> t
(** Explores from [entry]; unreachable nodes are absent from every result. *)

val nodes : t -> int list
(** Reachable nodes in reverse postorder. *)

val preds : t -> int -> int list
val succs : t -> int -> int list

val rpo_index : t -> int -> int
(** Position in reverse postorder; entry is 0. *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry node. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does [a] dominate [b] (reflexive)? *)

type loop = {
  header : int;
  back_edges : int list;   (** sources of the back edges into the header *)
  body : int list;         (** all blocks of the natural loop, incl. header *)
}

val loops : t -> loop list
(** Natural loops (back edges whose target dominates their source); one
    entry per header, merged over its back edges.  Ordered outermost-ish by
    header RPO. *)

val loop_depth : t -> int -> int
(** Number of natural loops containing the block. *)
