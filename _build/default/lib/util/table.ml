type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.make ncols 0 in
  let note_row r =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) r
  in
  note_row header;
  List.iter note_row rows;
  let line r =
    String.concat "  "
      (List.mapi (fun i cell ->
           let a = try List.nth aligns i with _ -> Right in
           pad a widths.(i) cell)
         r)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ?aligns ~header rows = print_endline (render ?aligns ~header rows)

let fmt_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_speedup x = Printf.sprintf "%.2fx" x
let fmt_pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
