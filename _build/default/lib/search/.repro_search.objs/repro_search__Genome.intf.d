lib/search/genome.mli: Repro_lir Repro_util
