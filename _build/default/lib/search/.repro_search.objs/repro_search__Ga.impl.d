lib/search/ga.ml: Array Genome Hashtbl List Option Repro_util
