lib/search/genome.ml: Array List Printf Repro_lir Repro_util String
