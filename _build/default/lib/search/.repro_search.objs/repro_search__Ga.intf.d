lib/search/ga.mli: Genome Repro_util
