(* The "Art" benchmark set (Table 1): programs used by Google and third
   parties to evaluate the Android compiler, ported to MiniDex. *)

let lcg = Scimark.lcg

let sieve = {|
class Sieve {
  static int primes(bool[] flags) {
    int n = flags.length;
    for (int i = 0; i < n; i = i + 1) { flags[i] = true; }
    int count = 0;
    for (int i = 2; i < n; i = i + 1) {
      if (flags[i]) {
        count = count + 1;
        for (int k = i + i; k < n; k = k + i) { flags[k] = false; }
      }
    }
    return count;
  }
}
class Main {
  static int size = 16384;
  static int rounds = 4;
  static int main() {
    int count = 0;
    bool[] flags = new bool[size];
    for (int r = 0; r < rounds; r = r + 1) {
      count = Sieve.primes(flags);
      Sys.print(count);
    }
    return count;
  }
}
|}

let bubblesort = lcg ^ {|
class BubbleSort {
  static int sort(int[] a) {
    int n = a.length;
    for (int i = 0; i < n - 1; i = i + 1) {
      for (int j = 0; j < n - 1 - i; j = j + 1) {
        if (a[j] > a[j + 1]) {
          int t = a[j];
          a[j] = a[j + 1];
          a[j + 1] = t;
        }
      }
    }
    return a[0] + a[n / 2] + a[n - 1];
  }
}
class Main {
  static int size = 220;
  static int rounds = 4;
  static int main() {
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      int[] a = new int[size];
      for (int i = 0; i < size; i = i + 1) { a[i] = Lcg.next() % 100000; }
      check = BubbleSort.sort(a);
      Sys.print(check);
    }
    return check;
  }
}
|}

let selectionsort = lcg ^ {|
class SelectionSort {
  static int sort(int[] a) {
    int n = a.length;
    for (int i = 0; i < n - 1; i = i + 1) {
      int min = i;
      for (int j = i + 1; j < n; j = j + 1) {
        if (a[j] < a[min]) { min = j; }
      }
      int t = a[i];
      a[i] = a[min];
      a[min] = t;
    }
    return a[0] + a[n / 2] + a[n - 1];
  }
}
class Main {
  static int size = 260;
  static int rounds = 4;
  static int main() {
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      int[] a = new int[size];
      for (int i = 0; i < size; i = i + 1) { a[i] = Lcg.next() % 100000; }
      check = SelectionSort.sort(a);
      Sys.print(check);
    }
    return check;
  }
}
|}

let linpack = lcg ^ {|
class Linpack {
  static void daxpy(int n, float da, float[] dx, int xoff, float[] dy, int yoff) {
    if (da == 0.0) { return; }
    for (int i = 0; i < n; i = i + 1) {
      dy[yoff + i] = dy[yoff + i] + da * dx[xoff + i];
    }
  }
  static float gefa(float[] a, int lda, int n) {
    float norm = 0.0;
    for (int k = 0; k < n - 1; k = k + 1) {
      int col = k * lda;
      int pivot = k;
      float vmax = Math.abs(a[col + k]);
      for (int i = k + 1; i < n; i = i + 1) {
        float v = Math.abs(a[col + i]);
        if (v > vmax) { vmax = v; pivot = i; }
      }
      if (a[col + pivot] != 0.0) {
        if (pivot != k) {
          float t = a[col + pivot];
          a[col + pivot] = a[col + k];
          a[col + k] = t;
        }
        float recp = 0.0 - 1.0 / a[col + k];
        for (int i = k + 1; i < n; i = i + 1) {
          a[col + i] = a[col + i] * recp;
        }
        for (int j = k + 1; j < n; j = j + 1) {
          int cj = j * lda;
          float t = a[cj + pivot];
          if (pivot != k) {
            a[cj + pivot] = a[cj + k];
            a[cj + k] = t;
          }
          daxpy(n - k - 1, t, a, col + k + 1, a, cj + k + 1);
        }
        norm = norm + vmax;
      }
    }
    return norm;
  }
}
class Main {
  static int n = 40;
  static int rounds = 4;
  static int main() {
    float acc = 0.0;
    for (int r = 0; r < rounds; r = r + 1) {
      float[] a = new float[n * n];
      for (int i = 0; i < a.length; i = i + 1) { a[i] = Lcg.nextFloat() - 0.5; }
      acc = acc + Linpack.gefa(a, n, n);
      Sys.print((int) (acc * 100.0));
    }
    return (int) (acc * 100.0);
  }
}
|}

let fibonacci_iter = {|
class Fib {
  static int iter(int n) {
    int a = 0;
    int b = 1;
    for (int i = 0; i < n; i = i + 1) {
      int t = a + b;
      a = b;
      b = t;
    }
    return a;
  }
  static int run(int n, int reps) {
    int s = 0;
    for (int i = 0; i < reps; i = i + 1) { s = s + Fib.iter(n) % 1000003; }
    return s;
  }
}
class Main {
  static int rounds = 4;
  static int main() {
    int s = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      s = Fib.run(60, 900);
      Sys.print(s);
    }
    return s;
  }
}
|}

let fibonacci_recv = {|
class Fib {
  static int rec(int n) {
    if (n < 2) { return n; }
    return rec(n - 1) + rec(n - 2);
  }
  static int run(int n) { return Fib.rec(n); }
}
class Main {
  static int rounds = 4;
  static int main() {
    int s = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      s = Fib.run(19);
      Sys.print(s);
    }
    return s;
  }
}
|}

(* Dhrystone's record/array/branch mix: record assignments through object
   references, enumeration switches, character-buffer comparisons. *)
let dhrystone = lcg ^ {|
class Record {
  Record next;
  int discr;
  int enumComp;
  int intComp;
  int[] chars;
  void init() {
    chars = new int[30];
    for (int i = 0; i < 30; i = i + 1) { chars[i] = 65 + i % 26; }
  }
}
class Dhry {
  static int proc1(Record r) {
    Record n = r.next;
    n.intComp = r.intComp;
    n.discr = r.discr;
    n.enumComp = proc6(r.enumComp);
    if (n.discr == 0) {
      n.intComp = 6;
      n.enumComp = proc6(n.enumComp);
    } else {
      n.intComp = n.intComp + 10;
    }
    return n.intComp;
  }
  static int proc6(int e) {
    if (e == 0) { return 2; }
    if (e == 1) { return 0; }
    if (e == 2) { return 1; }
    return 3;
  }
  static int func2(int[] s1, int[] s2) {
    int idx = 1;
    while (idx <= 1) {
      if (s1[idx] == s2[idx + 1]) { idx = idx + 1; }
      else { return idx + 100; }
    }
    int sum = 0;
    for (int i = 0; i < s1.length && i < s2.length; i = i + 1) {
      if (s1[i] == s2[i]) { sum = sum + 1; }
    }
    return sum;
  }
  static int run(Record a, Record b, int loops) {
    int check = 0;
    for (int i = 0; i < loops; i = i + 1) {
      check = check + proc1(a);
      check = check + func2(a.chars, b.chars);
      int[] arr = new int[16];
      for (int k = 0; k < 16; k = k + 1) { arr[k] = k * 3 + check % 7; }
      check = check + arr[(check % 16 + 16) % 16];
    }
    return check;
  }
}
class Validate {
  static int records(Record a, Record b, int reps) {
    int s = 0;
    try {
      for (int r = 0; r < reps; r = r + 1) {
        for (int i = 0; i < a.chars.length; i = i + 1) {
          s = s + a.chars[i] - b.chars[i] + r;
        }
      }
      if (s < 0 - 1000000) { throw 3; }
    } catch (int e) { s = e; }
    return s;
  }
}
class Main {
  static int loops = 1200;
  static int rounds = 4;
  static int main() {
    Record a = new Record();
    Record b = new Record();
    a.next = b;
    b.next = a;
    a.discr = 0;
    a.intComp = 40;
    a.enumComp = 2;
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      check = Dhry.run(a, b, loops) + Validate.records(a, b, 12) % 2;
      Sys.print(check);
    }
    return check;
  }
}
|}
