module Image = Repro_vm.Image

type app_class = Scimark_suite | Art_suite | Interactive_suite

type t = {
  name : string;
  cls : app_class;
  descr : string;
  source : string;
  image : Image.config;
  expect_hot : (string * string) list;
}

let class_name = function
  | Scimark_suite -> "Scimark"
  | Art_suite -> "Art"
  | Interactive_suite -> "Interactive"

(* Memory footprints: the boot-common runtime image is the same for every
   process (12.6 MB, Figure 11); apps differ in mapped libraries (maps
   entries, Figure 10's preparation cost) and in how much heap their hot
   region touches (their own code determines that). *)
let image ?(extra_maps = 80) ?(warm = 64) ?(heap_pages = 16384) () =
  { Image.default_config with extra_maps; heap_pages; warm_heap_pages = warm }

let bench ?extra_maps ?warm name descr source expect_hot cls =
  { name; cls; descr; source; image = image ?extra_maps ?warm (); expect_hot }

let all = [
  bench "FFT" ~warm:90 "Fast Fourier Transform" Scimark.fft
    [ ("FFT", "run") ] Scimark_suite ~extra_maps:60;
  bench "SOR" ~warm:110 "Jacobi successive over-relaxation" Scimark.sor
    [ ("SOR", "execute") ] Scimark_suite ~extra_maps:54;
  bench "MonteCarlo" ~warm:60 "Estimates pi value" Scimark.montecarlo
    [ ("MonteCarlo", "integrate") ] Scimark_suite ~extra_maps:58;
  bench "Sparse matmult" ~warm:130 "Indirection and addressing" Scimark.sparse_matmult
    [ ("Sparse", "matmult") ] Scimark_suite ~extra_maps:66;
  bench "LU" ~warm:100 "Linear algebra kernels" Scimark.lu
    [ ("LU", "factor") ] Scimark_suite ~extra_maps:62;
  bench "Sieve" ~warm:50 "Lists prime numbers" Art.sieve
    [ ("Sieve", "primes") ] Art_suite ~extra_maps:50;
  bench "BubbleSort" ~warm:60 "Simple sorting algorithm" Art.bubblesort
    [ ("BubbleSort", "sort") ] Art_suite ~extra_maps:48;
  bench "SelectionSort" ~warm:55 "Simple sorting algorithm" Art.selectionsort
    [ ("SelectionSort", "sort") ] Art_suite ~extra_maps:48;
  bench "Linpack" ~warm:120 "Numerical linear algebra" Art.linpack
    [ ("Linpack", "gefa") ] Art_suite ~extra_maps:70;
  bench "Fibonacci.iter" ~warm:40 "Fibonacci sequence iterative" Art.fibonacci_iter
    [ ("Fib", "run"); ("Fib", "iter") ] Art_suite ~extra_maps:44;
  bench "Fibonacci.recv" ~warm:40 "Fibonacci sequence recursive" Art.fibonacci_recv
    [ ("Fib", "run"); ("Fib", "rec") ] Art_suite ~extra_maps:44;
  bench "Dhrystone" ~warm:80 "Representative general CPU performance" Art.dhrystone
    [ ("Dhry", "run") ] Art_suite ~extra_maps:52;
  bench "MaterialLife" ~warm:600 "Game of life" Interactive.materiallife
    [ ("Life", "generation"); ("Life", "step") ] Interactive_suite
    ~extra_maps:170;
  bench "4inaRow" ~warm:700 "Puzzle game" Interactive.fourinarow
    [ ("Ai", "best") ] Interactive_suite ~extra_maps:210;
  bench "DroidFish" ~warm:1400 "Chess game" Interactive.droidfish
    [ ("Search", "think"); ("Search", "quiesce") ] Interactive_suite
    ~extra_maps:240;
  bench "ColorOverflow" ~warm:500 "Strategic game" Interactive.coloroverflow
    [ ("Game", "overflow") ] Interactive_suite ~extra_maps:160;
  bench "Brainstonz" ~warm:420 "Board game" Interactive.brainstonz
    [ ("Ai", "pick"); ("Ai", "search") ] Interactive_suite ~extra_maps:150;
  bench "Blokish" ~warm:800 "Board game" Interactive.blokish
    [ ("Blok", "bestPlacement") ] Interactive_suite ~extra_maps:190;
  bench "Svarka Calculator" ~warm:380 "Generates odds for a card game" Interactive.svarka
    [ ("Svarka", "odds") ] Interactive_suite ~extra_maps:140;
  bench "Reversi Android" ~warm:640 "Board game" Interactive.reversi
    [ ("Reversi", "bestMove"); ("Reversi", "flipsFor") ] Interactive_suite ~extra_maps:180;
  bench "Poker Odds (Vitosha)" ~warm:300 "Statistical analysis for poker cards"
    Interactive.pokerodds
    [ ("Poker", "simulate") ] Interactive_suite ~extra_maps:130;
]

let names = List.map (fun a -> a.name) all
let find name = List.find_opt (fun a -> a.name = name) all

let cache : (string, Repro_dex.Bytecode.dexfile) Hashtbl.t = Hashtbl.create 32

let dexfile app =
  match Hashtbl.find_opt cache app.name with
  | Some dx -> dx
  | None ->
    let dx = Repro_dex.Lower.compile app.source in
    Hashtbl.add cache app.name dx;
    dx

let build_ctx ?(seed = 42) ?fuel app =
  Image.build ~config:app.image ?fuel ~seed (dexfile app)
