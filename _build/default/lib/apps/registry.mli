(** The 21 evaluation applications (paper Table 1): 5 Scimark kernels, 7
    Android-compiler benchmarks, 9 interactive apps. *)

type app_class = Scimark_suite | Art_suite | Interactive_suite

type t = {
  name : string;
  cls : app_class;
  descr : string;
  source : string;                 (** MiniDex source text *)
  image : Repro_vm.Image.config;   (** process memory footprint *)
  expect_hot : (string * string) list;
  (** acceptable hot regions as (class, method); used by tests and docs *)
}

val all : t list
val find : string -> t option
val names : string list

val class_name : app_class -> string

val dexfile : t -> Repro_dex.Bytecode.dexfile
(** Compile (memoized) the app's source. *)

val build_ctx : ?seed:int -> ?fuel:int -> t -> Repro_vm.Exec_ctx.t
(** Fresh process image for one online run of the app. *)
