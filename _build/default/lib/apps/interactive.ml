(* The nine interactive applications of Table 1, modelled as MiniDex
   programs with the same structure as the real apps: an outer event loop
   doing rendering (JNI draw calls) and input (non-deterministic), around a
   pure, replayable computational kernel — the AI move search, the board
   evaluation, the odds calculator — which is what the capture mechanism
   targets.  Kernels lean on virtual dispatch where the real apps do
   (strategy/heuristic objects), giving the replay-profile-driven
   devirtualization something to find. *)

let lcg = Scimark.lcg

(* Conway's Game of Life (MaterialLife). *)
let materiallife = lcg ^ {|
class Life {
  static int step(bool[] grid, bool[] next, int w, int h) {
    int alive = 0;
    for (int y = 0; y < h; y = y + 1) {
      for (int x = 0; x < w; x = x + 1) {
        int n = 0;
        for (int dy = 0 - 1; dy <= 1; dy = dy + 1) {
          for (int dx = 0 - 1; dx <= 1; dx = dx + 1) {
            if (dx != 0 || dy != 0) {
              int nx = (x + dx + w) % w;
              int ny = (y + dy + h) % h;
              if (grid[ny * w + nx]) { n = n + 1; }
            }
          }
        }
        bool cell = grid[y * w + x];
        if (cell && (n == 2 || n == 3)) { next[y * w + x] = true; }
        else if (!cell && n == 3) { next[y * w + x] = true; }
        else { next[y * w + x] = false; }
        if (next[y * w + x]) { alive = alive + 1; }
      }
    }
    for (int i = 0; i < grid.length; i = i + 1) { grid[i] = next[i]; }
    return alive;
  }
  static int generation(bool[] grid, bool[] next, int w, int h, int steps) {
    int alive = 0;
    for (int s = 0; s < steps; s = s + 1) { alive = Life.step(grid, next, w, h); }
    return alive;
  }
}
class Census {
  static int tally(bool[] grid, int gen) {
    int s = 0;
    try {
      for (int i = 0; i < grid.length; i = i + 1) {
        if (grid[i]) { s = s + 1; }
      }
      if (s > grid.length) { throw 2; }
    } catch (int e) { s = e; }
    return s + gen;
  }
}
class Main {
  static int w = 64;
  static int h = 48;
  static int frames = 3;
  static int main() {
    bool[] grid = new bool[w * h];
    bool[] next = new bool[w * h];
    for (int i = 0; i < grid.length; i = i + 1) {
      grid[i] = Sys.rand(100) < 35;
    }
    int alive = 0;
    for (int f = 0; f < frames; f = f + 1) {
      alive = Life.generation(grid, next, w, h, 3) + Census.tally(grid, f) % 2;
      for (int y = 0; y < h; y = y + 1) {
        for (int x = 0; x < w; x = x + 1) {
          int c = 0;
          if (grid[y * w + x]) { c = 1; }
          Sys.draw(x, y, c);
        }
      }
    }
    return alive;
  }
}
|}

(* Connect four (4inaRow): negamax with a large history/score table that
   dominates the capture's memory footprint (the paper's 41 MB outlier). *)
let fourinarow = lcg ^ {|
class Board {
  int[] cells;
  int[] heights;
  void init() {
    cells = new int[7 * 6];
    heights = new int[7];
  }
  bool canPlay(int col) { return heights[col] < 6; }
  void play(int col, int player) {
    cells[heights[col] * 7 + col] = player;
    heights[col] = heights[col] + 1;
  }
  void undo(int col) {
    heights[col] = heights[col] - 1;
    cells[heights[col] * 7 + col] = 0;
  }
  int lineScore(int player) {
    int score = 0;
    for (int y = 0; y < 6; y = y + 1) {
      for (int x = 0; x < 4; x = x + 1) {
        int run = 0;
        for (int k = 0; k < 4; k = k + 1) {
          if (cells[y * 7 + x + k] == player) { run = run + 1; }
        }
        score = score + run * run;
      }
    }
    for (int x = 0; x < 7; x = x + 1) {
      for (int y = 0; y < 3; y = y + 1) {
        int run = 0;
        for (int k = 0; k < 4; k = k + 1) {
          if (cells[(y + k) * 7 + x] == player) { run = run + 1; }
        }
        score = score + run * run;
      }
    }
    return score;
  }
}
class Ai {
  static int[] history;
  static void ensure() {
    if (history == null) {
      history = new int[400000];
    }
  }
  static int negamax(Board b, int depth, int player) {
    if (depth == 0) { return b.lineScore(player) - b.lineScore(3 - player); }
    int best = 0 - 1000000;
    for (int c = 0; c < 7; c = c + 1) {
      if (b.canPlay(c)) {
        b.play(c, player);
        int v = 0 - negamax(b, depth - 1, 3 - player);
        b.undo(c);
        if (v > best) { best = v; }
      }
    }
    return best;
  }
  static int best(Board b, int player) {
    ensure();
    for (int i = 0; i < history.length; i = i + 512) {
      history[i] = history[i] / 2;
    }
    int bestCol = 0;
    int bestVal = 0 - 1000000;
    for (int c = 0; c < 7; c = c + 1) {
      if (b.canPlay(c)) {
        b.play(c, player);
        int v = 0 - negamax(b, 2, 3 - player);
        b.undo(c);
        v = v + history[(c * 5000) % history.length];
        if (v > bestVal) { bestVal = v; bestCol = c; }
      }
    }
    history[(bestCol * 77777) % history.length] = bestVal;
    return bestCol;
  }
}
class Main {
  static int moves = 8;
  static int main() {
    Board b = new Board();
    int player = 1;
    int last = 0;
    for (int m = 0; m < moves; m = m + 1) {
      int col = 0;
      if (player == 1) { col = Ai.best(b, 1); }
      else { col = Sys.rand(7); }
      if (b.canPlay(col)) { b.play(col, player); last = col; }
      for (int frame = 0; frame < 24; frame = frame + 1) {
        for (int y = 0; y < 6; y = y + 1) {
          for (int x = 0; x < 7; x = x + 1) {
            Sys.draw(x, y, b.cells[y * 7 + x] + frame % 2);
          }
        }
      }
      player = 3 - player;
    }
    return last;
  }
}
|}

(* Chess app (DroidFish): most of the real app's time is inside a native
   engine — modelled by an unreplayable clock-guided native-math routine —
   with only a small Java-side search being optimizable. *)
let droidfish = lcg ^ {|
class Eval {
  int material(int[] board) {
    int score = 0;
    for (int i = 0; i < board.length; i = i + 1) {
      int p = board[i];
      if (p == 1) { score = score + 100; }
      else if (p == 2) { score = score + 320; }
      else if (p == 3) { score = score + 330; }
      else if (p == 4) { score = score + 500; }
      else if (p == 5) { score = score + 900; }
      else if (p < 0) { score = score - 111; }
    }
    return score;
  }
}
class Book {
  static int[] data;
  static void load() {
    data = new int[60000];
    for (int i = 0; i < data.length; i = i + 1) {
      data[i] = (i * 1103515245 + 12345) % 1000;
    }
  }
}
class Search {
  static int quiesce(int[] board, Eval e, int depth) {
    int stand = e.material(board);
    if (depth == 0) { return stand; }
    int best = stand;
    for (int i = 0; i < 14; i = i + 1) {
      int from = (i * 7) % 64;
      int to = (i * 11 + 3) % 64;
      int captured = board[to];
      board[to] = board[from];
      board[from] = 0;
      int v = 0 - quiesce(board, e, depth - 1) / 2;
      board[from] = board[to];
      board[to] = captured;
      if (v > best) { best = v; }
    }
    return best;
  }
  static int think(int[] board, Eval e) {
    int bonus = 0;
    for (int i = 0; i < Book.data.length; i = i + 512) {
      bonus = bonus + Book.data[i];
    }
    return quiesce(board, e, 2) + bonus % 7;
  }
}
class Engine {
  static float nps = 0.0;
  static int nativeSearch(int budget) {
    int t0 = Sys.clock();
    float acc = 0.0;
    for (int i = 0; i < budget; i = i + 1) {
      acc = acc + Math.sin(i * 0.1) * Math.cos(i * 0.05) + Math.pow(1.001, i % 64);
    }
    nps = acc;
    int t1 = Sys.clock();
    return (int) acc + (t1 - t0);
  }
}
class Main {
  static int moves = 5;
  static int main() {
    Book.load();
    int[] board = new int[64];
    for (int i = 0; i < 16; i = i + 1) { board[i] = i % 6; }
    for (int i = 48; i < 64; i = i + 1) { board[i] = 0 - (i % 6); }
    Eval e = new Eval();
    int score = 0;
    for (int m = 0; m < moves; m = m + 1) {
      score = Search.think(board, e);
      score = score + Engine.nativeSearch(6000) % 64;
      board[(score % 64 + 64) % 64] = (score % 5 + 5) % 5;
      for (int sq = 0; sq < 64; sq = sq + 1) {
        Sys.draw(sq % 8, sq / 8, board[sq]);
      }
    }
    return score;
  }
}
|}

(* ColorOverflow: flood-fill territory game with strategy objects. *)
let coloroverflow = lcg ^ {|
class Strategy {
  int score(int[] board, int w, int h, int cell) { return 0; }
}
class EdgeStrategy extends Strategy {
  int score(int[] board, int w, int h, int cell) {
    int x = cell % w;
    int y = cell / w;
    int s = 0;
    if (x == 0 || x == w - 1) { s = s + 3; }
    if (y == 0 || y == h - 1) { s = s + 3; }
    return s + board[cell];
  }
}
class GreedyStrategy extends Strategy {
  int score(int[] board, int w, int h, int cell) {
    int s = board[cell] * 2;
    if (cell + 1 < board.length) { s = s + board[cell + 1]; }
    if (cell - 1 >= 0) { s = s + board[cell - 1]; }
    return s;
  }
}
class Game {
  static int overflow(int[] board, int w, int h, Strategy strat, int iters) {
    int total = 0;
    for (int it = 0; it < iters; it = it + 1) {
      for (int c = 0; c < board.length; c = c + 1) {
        int s = strat.score(board, w, h, c);
        board[c] = (board[c] + s) % 5;
        if (board[c] >= 4) {
          board[c] = 0;
          if (c + 1 < board.length) { board[c + 1] = board[c + 1] + 1; }
          if (c >= 1) { board[c - 1] = board[c - 1] + 1; }
          if (c + w < board.length) { board[c + w] = board[c + w] + 1; }
          if (c >= w) { board[c - w] = board[c - w] + 1; }
          total = total + 1;
        }
      }
    }
    return total;
  }
}
class Main {
  static int w = 24;
  static int h = 18;
  static int turns = 6;
  static int main() {
    int[] board = new int[w * h];
    for (int i = 0; i < board.length; i = i + 1) { board[i] = Sys.rand(4); }
    Strategy a = new EdgeStrategy();
    Strategy b = new GreedyStrategy();
    int total = 0;
    for (int t = 0; t < turns; t = t + 1) {
      Strategy s = a;
      if (t % 2 == 1) { s = b; }
      total = total + Game.overflow(board, w, h, s, 10);
      for (int c = 0; c < board.length; c = c + 1) {
        Sys.draw(c % w, c / w, board[c]);
      }
    }
    return total;
  }
}
|}

(* Brainstonz: 4x4 stone-placement game with two-ply search. *)
let brainstonz = lcg ^ {|
class Board {
  int[] cells;
  void init() { cells = new int[16]; }
  int evaluate(int player) {
    int score = 0;
    for (int i = 0; i < 16; i = i + 1) {
      if (cells[i] == player) {
        score = score + 4;
        int x = i % 4;
        int y = i / 4;
        if (x > 0 && cells[i - 1] == player) { score = score + 3; }
        if (x < 3 && cells[i + 1] == player) { score = score + 3; }
        if (y > 0 && cells[i - 4] == player) { score = score + 3; }
        if (y < 3 && cells[i + 4] == player) { score = score + 3; }
      }
    }
    return score;
  }
}
class Ai {
  static int search(Board b, int player, int depth) {
    if (depth == 0) { return b.evaluate(player) - b.evaluate(3 - player); }
    int best = 0 - 100000;
    for (int i = 0; i < 16; i = i + 1) {
      if (b.cells[i] == 0) {
        b.cells[i] = player;
        int v = 0 - search(b, 3 - player, depth - 1);
        b.cells[i] = 0;
        if (v > best) { best = v; }
      }
    }
    return best;
  }
  static int pick(Board b, int player) {
    int bestMove = 0;
    int bestVal = 0 - 100000;
    for (int i = 0; i < 16; i = i + 1) {
      if (b.cells[i] == 0) {
        b.cells[i] = player;
        int v = 0 - search(b, 3 - player, 2);
        b.cells[i] = 0;
        if (v > bestVal) { bestVal = v; bestMove = i; }
      }
    }
    return bestMove;
  }
}
class Main {
  static int main() {
    Board b = new Board();
    int move = 0;
    for (int t = 0; t < 6; t = t + 1) {
      int player = t % 2 + 1;
      if (player == 1) { move = Ai.pick(b, 1); }
      else { move = Sys.rand(16); }
      if (b.cells[move] == 0) { b.cells[move] = player; }
      for (int frame = 0; frame < 30; frame = frame + 1) {
        for (int c = 0; c < 16; c = c + 1) {
          Sys.draw(c % 4, c / 4, b.cells[c] + frame % 3);
        }
      }
    }
    return move;
  }
}
|}

(* Blokish: polyomino placement scoring over a 14x14 board. *)
let blokish = lcg ^ {|
class Piece {
  int[] dx;
  int[] dy;
  void init(int variant) {
    dx = new int[4];
    dy = new int[4];
    for (int i = 0; i < 4; i = i + 1) {
      dx[i] = (variant * 3 + i * 2) % 3;
      dy[i] = (variant + i) % 3;
    }
  }
}
class Blok {
  static int bestPlacement(int[] board, int size, Piece[] pieces, int player) {
    int best = 0 - 1;
    int bestScore = 0 - 100000;
    for (int p = 0; p < pieces.length; p = p + 1) {
      Piece piece = pieces[p];
      for (int y = 0; y < size - 3; y = y + 1) {
        for (int x = 0; x < size - 3; x = x + 1) {
          bool fits = true;
          int touch = 0;
          for (int k = 0; k < 4; k = k + 1) {
            int cx = x + piece.dx[k];
            int cy = y + piece.dy[k];
            if (board[cy * size + cx] != 0) { fits = false; }
            if (cx > 0 && board[cy * size + cx - 1] == player) { touch = touch + 1; }
            if (cy > 0 && board[(cy - 1) * size + cx] == player) { touch = touch + 1; }
          }
          if (fits) {
            int score = touch * 5 + (size - x) + (size - y) + p;
            if (score > bestScore) {
              bestScore = score;
              best = (p * size + y) * size + x;
            }
          }
        }
      }
    }
    return best;
  }
}
class Scores {
  static int checksum(int[] board, int rounds) {
    int s = 0;
    try {
      for (int r = 0; r < rounds; r = r + 1) {
        for (int i = 0; i < board.length; i = i + 1) {
          s = s + board[i] * (i + r);
        }
      }
      if (s < 0) { throw 1; }
    } catch (int e) { s = e; }
    return s;
  }
}
class Main {
  static int size = 14;
  static int main() {
    int[] board = new int[size * size];
    Piece[] pieces = new Piece[8];
    for (int i = 0; i < pieces.length; i = i + 1) { pieces[i] = new Piece(i); }
    int last = 0;
    for (int turn = 0; turn < 7; turn = turn + 1) {
      int player = turn % 2 + 1;
      int placement = Blok.bestPlacement(board, size, pieces, player);
      if (placement >= 0) {
        int cell = placement % (size * size);
        board[cell] = player;
        last = cell;
      }
      for (int c = 0; c < board.length; c = c + 1) {
        Sys.draw(c % size, c / size, board[c]);
      }
      if (Sys.rand(10) < 2) { board[Sys.rand(size * size)] = 0; }
      last = last + Scores.checksum(board, 3) % 2;
    }
    return last;
  }
}
|}

(* Svarka odds calculator: enumerates three-card draws and scores hands. *)
let svarka = lcg ^ {|
class Svarka {
  static int[] strength;
  static void prep() {
    strength = new int[180000];
    for (int i = 0; i < strength.length; i = i + 1) {
      strength[i] = (i * 2654435761) % 97;
    }
  }
  static int handValue(int c1, int c2, int c3) {
    int r1 = c1 % 8 + 7;
    int r2 = c2 % 8 + 7;
    int r3 = c3 % 8 + 7;
    int s1 = c1 / 8;
    int s2 = c2 / 8;
    int s3 = c3 / 8;
    int best = 0;
    if (s1 == s2) { best = r1 + r2; }
    if (s1 == s3 && r1 + r3 > best) { best = r1 + r3; }
    if (s2 == s3 && r2 + r3 > best) { best = r2 + r3; }
    if (s1 == s2 && s2 == s3) { best = r1 + r2 + r3; }
    if (r1 == 7 && best < 11) { best = 11; }
    if (r1 == r2 && r2 == r3) { best = r1 * 3 + 30; }
    if (best < r1 && best < r2 && best < r3) {
      best = r1;
      if (r2 > best) { best = r2; }
      if (r3 > best) { best = r3; }
    }
    return best;
  }
  static int odds(int c1, int c2) {
    int wins = 0;
    int total = 0;
    for (int o1 = 0; o1 < 32; o1 = o1 + 1) {
      for (int o2 = 0; o2 < 32; o2 = o2 + 1) {
        for (int o3 = 0; o3 < 32; o3 = o3 + 4) {
          if (o1 != c1 && o1 != c2 && o2 != c1 && o2 != c2 && o1 != o2
              && o3 != o1 && o3 != o2) {
            int mine = handValue(c1, c2, o3);
            int theirs = handValue(o1, o2, o3);
            mine = mine
                 + strength[(mine * 7919 + theirs * 1047 + o1 * 31 + o2)
                            % strength.length] % 3;
            if (mine >= theirs) { wins = wins + 1; }
            total = total + 1;
          }
        }
      }
    }
    return wins * 100 / total;
  }
}
class Main {
  static int main() {
    Svarka.prep();
    int pct = 0;
    for (int hand = 0; hand < 5; hand = hand + 1) {
      int c1 = Sys.rand(32);
      int c2 = (c1 + 1 + Sys.rand(31)) % 32;
      pct = Svarka.odds(c1, c2);
      for (int spr = 0; spr < 520; spr = spr + 1) {
        Sys.draw(spr % 12, spr / 12, (c1 + spr) % 32);
      }
      Sys.print(pct);
    }
    return pct;
  }
}
|}

(* Reversi: othello with pluggable heuristics (virtual dispatch). *)
let reversi = lcg ^ {|
class Heuristic {
  int weight(int cell, int size) { return 1; }
}
class CornerHeuristic extends Heuristic {
  int weight(int cell, int size) {
    int x = cell % size;
    int y = cell / size;
    int w = 1;
    if ((x == 0 || x == size - 1) && (y == 0 || y == size - 1)) { w = 12; }
    else if (x == 0 || x == size - 1 || y == 0 || y == size - 1) { w = 4; }
    return w;
  }
}
class Reversi {
  static int flipsFor(int[] board, int size, int cell, int player) {
    if (board[cell] != 0) { return 0 - 1; }
    int x0 = cell % size;
    int y0 = cell / size;
    int flips = 0;
    for (int dy = 0 - 1; dy <= 1; dy = dy + 1) {
      for (int dx = 0 - 1; dx <= 1; dx = dx + 1) {
        if (dx != 0 || dy != 0) {
          int x = x0 + dx;
          int y = y0 + dy;
          int run = 0;
          while (x >= 0 && x < size && y >= 0 && y < size
                 && board[y * size + x] == 3 - player) {
            run = run + 1;
            x = x + dx;
            y = y + dy;
          }
          if (run > 0 && x >= 0 && x < size && y >= 0 && y < size
              && board[y * size + x] == player) {
            flips = flips + run;
          }
        }
      }
    }
    return flips;
  }
  static int bestMove(int[] board, int size, int player, Heuristic h) {
    int best = 0 - 1;
    int bestScore = 0 - 1;
    for (int c = 0; c < board.length; c = c + 1) {
      int flips = flipsFor(board, size, c, player);
      if (flips > 0) {
        int score = flips * h.weight(c, size);
        if (score > bestScore) { bestScore = score; best = c; }
      }
    }
    return best;
  }
}
class Main {
  static int size = 8;
  static int main() {
    int[] board = new int[size * size];
    board[27] = 1; board[28] = 2; board[35] = 2; board[36] = 1;
    Heuristic h = new CornerHeuristic();
    int last = 0;
    for (int turn = 0; turn < 16; turn = turn + 1) {
      int player = turn % 2 + 1;
      int move = 0 - 1;
      if (player == 1) { move = Reversi.bestMove(board, size, 1, h); }
      else {
        int tries = 0;
        while (move < 0 && tries < 10) {
          int cand = Sys.rand(size * size);
          if (Reversi.flipsFor(board, size, cand, 2) > 0) { move = cand; }
          tries = tries + 1;
        }
      }
      if (move >= 0) {
        board[move] = player;
        last = move;
      }
      for (int c = 0; c < board.length; c = c + 1) {
        Sys.draw(c % size, c / size, board[c]);
      }
    }
    return last;
  }
}
|}

(* Poker odds (Vitosha): Monte-Carlo showdown sampling with an internal
   PRNG; the smallest capture in the set (0.35 MB in the paper). *)
let pokerodds = lcg ^ {|
class Poker {
  static int rank(int[] hand) {
    int[] counts = new int[13];
    int flush = 1;
    for (int i = 0; i < 5; i = i + 1) {
      counts[hand[i] % 13] = counts[hand[i] % 13] + 1;
      if (hand[i] / 13 != hand[0] / 13) { flush = 0; }
    }
    int pairs = 0;
    int trips = 0;
    int quads = 0;
    int high = 0;
    for (int v = 0; v < 13; v = v + 1) {
      if (counts[v] == 2) { pairs = pairs + 1; }
      if (counts[v] == 3) { trips = trips + 1; }
      if (counts[v] == 4) { quads = quads + 1; }
      if (counts[v] > 0) { high = v; }
    }
    if (quads > 0) { return 700 + high; }
    if (trips > 0 && pairs > 0) { return 600 + high; }
    if (flush == 1) { return 500 + high; }
    if (trips > 0) { return 300 + high; }
    if (pairs == 2) { return 200 + high; }
    if (pairs == 1) { return 100 + high; }
    return high;
  }
  static int simulate(int[] mine, int samples) {
    int wins = 0;
    int[] theirs = new int[5];
    for (int s = 0; s < samples; s = s + 1) {
      for (int i = 0; i < 5; i = i + 1) {
        theirs[i] = Lcg.next() % 52;
      }
      if (rank(mine) >= rank(theirs)) { wins = wins + 1; }
    }
    return wins * 100 / samples;
  }
}
class Main {
  static int main() {
    int[] mine = new int[5];
    int pct = 0;
    for (int round = 0; round < 5; round = round + 1) {
      for (int i = 0; i < 5; i = i + 1) { mine[i] = Sys.rand(52); }
      pct = Poker.simulate(mine, 800);
      for (int spr = 0; spr < 560; spr = spr + 1) {
        Sys.draw(spr % 10, spr / 10, mine[spr % 5]);
      }
      Sys.print(pct);
    }
    return pct;
  }
}
|}
