lib/apps/registry.mli: Repro_dex Repro_vm
