lib/apps/scimark.ml:
