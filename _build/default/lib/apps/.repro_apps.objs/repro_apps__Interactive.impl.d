lib/apps/interactive.ml: Scimark
