lib/apps/registry.ml: Art Hashtbl Interactive List Repro_dex Repro_vm Scimark
