lib/apps/art.ml: Scimark
