(* Quickstart: compile a MiniDex program, execute it under the three code
   versions of the paper (interpreter, Android compiler, LLVM -O3), then
   capture its hot region and replay it.

   Run with:  dune exec examples/quickstart.exe *)

module B = Repro_dex.Bytecode

let source = {|
class Main {
  static float kernel(float[] xs) {
    float acc = 0.0;
    for (int i = 0; i < xs.length; i = i + 1) {
      acc = acc + Math.sqrt(xs[i] * xs[i] + 1.0);
    }
    return acc;
  }
  static int main() {
    float[] xs = new float[4096];
    for (int i = 0; i < xs.length; i = i + 1) { xs[i] = i * 0.5; }
    float total = 0.0;
    for (int round = 0; round < 4; round = round + 1) {
      total = total + Main.kernel(xs);
      Sys.print((int) total);
    }
    return (int) total;
  }
}
|}

let () =
  (* 1. Frontend: parse, type-check, lower to dex-style bytecode. *)
  let dx = Repro_dex.Lower.compile source in
  Printf.printf "compiled %d methods, %d classes\n"
    (Array.length dx.B.dx_methods)
    (Array.length dx.B.dx_classes);

  (* 2. Execute under three code versions. *)
  let mids = Array.to_list (Array.map (fun m -> m.B.cm_id) dx.B.dx_methods) in
  let run label install =
    let ctx = Repro_vm.Image.build ~seed:1 dx in
    install ctx;
    let ret = Repro_vm.Interp.run_main ctx in
    Printf.printf "%-22s %10d cycles  result=%s\n" label
      ctx.Repro_vm.Exec_ctx.cycles
      (match ret with Some v -> Repro_vm.Value.to_string v | None -> "()");
    ctx.Repro_vm.Exec_ctx.cycles
  in
  let interp = run "interpreter" Repro_vm.Interp.install in
  let android =
    run "Android compiler"
      (fun ctx ->
         Repro_lir.Exec.install ctx (Repro_lir.Compile.android_binary dx mids))
  in
  let o3 =
    run "LLVM -O3"
      (fun ctx ->
         Repro_lir.Exec.install ctx
           (Repro_lir.Compile.llvm_binary dx Repro_lir.Pipelines.o3 mids))
  in
  Printf.printf "Android is %.1fx faster than the interpreter; -O3 %.2fx over Android\n"
    (float_of_int interp /. float_of_int android)
    (float_of_int android /. float_of_int o3);

  (* 3. Capture the hot region during an online run, then replay it. *)
  let ctx = Repro_vm.Image.build ~seed:1 dx in
  let binary = Repro_lir.Compile.android_binary dx mids in
  let base = Repro_lir.Exec.dispatcher binary in
  let kernel_mid = (Option.get (B.find_method dx "Main" "kernel")).B.cm_id in
  let captured = ref None in
  Repro_vm.Exec_ctx.set_dispatch ctx (fun ctx' mid args ->
      if mid = kernel_mid && !captured = None then begin
        let r =
          Repro_capture.Capture.capture_region ~app:"quickstart" ctx' ~mid
            ~args ~run:(fun () -> base ctx' mid args)
        in
        captured := Some r;
        r.Repro_capture.Capture.region_ret
      end
      else base ctx' mid args);
  ignore (Repro_vm.Interp.run_main ctx);
  let r = Option.get !captured in
  Printf.printf "capture: %.1f ms overhead, %d KB program-specific state\n"
    (Repro_capture.Capture.total_ms r.Repro_capture.Capture.overhead)
    (Repro_capture.Snapshot.program_bytes r.Repro_capture.Capture.snapshot / 1024);

  let snap = r.Repro_capture.Capture.snapshot in
  let replay version label =
    let run = Repro_capture.Replay.run dx snap version in
    match run.Repro_capture.Replay.outcome with
    | Repro_capture.Replay.Finished (_, cycles) ->
      Printf.printf "replay under %-18s %10d cycles\n" label cycles
    | Repro_capture.Replay.Crashed msg -> Printf.printf "replay crashed: %s\n" msg
    | Repro_capture.Replay.Hung -> print_endline "replay hung"
  in
  replay Repro_capture.Replay.Interpreter "interpreter:";
  replay (Repro_capture.Replay.Android_code binary) "Android code:";
  replay
    (Repro_capture.Replay.Optimized
       (Repro_lir.Compile.llvm_binary dx
          (Repro_lir.Pipelines.o3 @ [ ("jni-to-intrinsic", [||]) ])
          [ kernel_mid ]))
    "O3+intrinsics:"
