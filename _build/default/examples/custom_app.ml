(* Bringing your own application: write a MiniDex program, wrap it in a
   registry entry, and run the entire developer-and-user-transparent
   pipeline on it — profiling, hot-region detection, capture, search,
   final measurement.  Nothing in the pipeline is FFT- or game-specific.

   Run with:  dune exec examples/custom_app.exe *)

module App = Repro_apps.Registry
module Pipeline = Repro_core.Pipeline
module B = Repro_dex.Bytecode

(* An n-body-ish kinematics simulation: float math, arrays, a pure kernel
   (replayable) and a rendering loop (I/O, unreplayable). *)
let source = {|
class Body {
  float x; float y; float vx; float vy;
  void init(float ax, float ay) { x = ax; y = ay; vx = 0.0; vy = 0.0; }
}
class Sim {
  static float step(Body[] bodies, float dt) {
    float energy = 0.0;
    for (int i = 0; i < bodies.length; i = i + 1) {
      Body b = bodies[i];
      float fx = 0.0;
      float fy = 0.0;
      for (int j = 0; j < bodies.length; j = j + 1) {
        if (i != j) {
          Body o = bodies[j];
          float dx = o.x - b.x;
          float dy = o.y - b.y;
          float d2 = dx * dx + dy * dy + 0.01;
          float inv = 1.0 / (d2 * Math.sqrt(d2));
          fx = fx + dx * inv;
          fy = fy + dy * inv;
        }
      }
      b.vx = b.vx + fx * dt;
      b.vy = b.vy + fy * dt;
      b.x = b.x + b.vx * dt;
      b.y = b.y + b.vy * dt;
      energy = energy + b.vx * b.vx + b.vy * b.vy;
    }
    return energy;
  }
}
class Main {
  static int frames = 6;
  static int main() {
    Body[] bodies = new Body[48];
    for (int i = 0; i < bodies.length; i = i + 1) {
      bodies[i] = new Body(i % 7, i / 7);
    }
    float e = 0.0;
    for (int f = 0; f < frames; f = f + 1) {
      e = Sim.step(bodies, 0.01);
      for (int i = 0; i < bodies.length; i = i + 8) {
        Sys.draw((int) bodies[i].x, (int) bodies[i].y, i);
      }
    }
    return (int) (e * 1000.0);
  }
}
|}

let () =
  let app =
    { App.name = "NBody";
      cls = App.Interactive_suite;
      descr = "custom kinematics demo";
      source;
      image = { Repro_vm.Image.default_config with
                Repro_vm.Image.extra_maps = 120; warm_heap_pages = 200 };
      expect_hot = [ ("Sim", "step") ] }
  in
  let dx = App.dexfile app in
  let online = Pipeline.online_run ~seed:3 app in
  Printf.printf "online run: %d cycles\n" online.Pipeline.cycles;
  (match Pipeline.hot_region_of app online with
   | Some hot ->
     Printf.printf "detected hot region: %s\n"
       (B.method_full_name dx.B.dx_methods.(hot))
   | None -> print_endline "no hot region");
  match Pipeline.capture_once ~seed:3 app with
  | None -> print_endline "nothing captured"
  | Some cap ->
    let opt = Pipeline.optimize ~seed:5 app cap in
    (match opt.Pipeline.best_genome with
     | Some g ->
       Printf.printf "best genome: %s\n" (Repro_search.Genome.to_string g)
     | None -> print_endline "no improvement found");
    let sp = Pipeline.measure_speedups app opt in
    Printf.printf "speedups over Android: -O3 %.2fx, GA %.2fx\n"
      sp.Pipeline.o3_speedup sp.Pipeline.ga_speedup
