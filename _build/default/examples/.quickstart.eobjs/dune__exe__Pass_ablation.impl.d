examples/pass_ablation.ml: Array List Option Printf Repro_apps Repro_capture Repro_core Repro_lir Repro_vm Sys
