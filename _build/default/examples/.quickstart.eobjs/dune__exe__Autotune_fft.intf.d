examples/autotune_fft.mli:
