examples/quickstart.mli:
