examples/custom_app.ml: Array Printf Repro_apps Repro_core Repro_dex Repro_search Repro_vm
