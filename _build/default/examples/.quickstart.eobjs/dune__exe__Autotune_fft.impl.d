examples/autotune_fft.ml: Array Hashtbl List Option Printf Repro_apps Repro_capture Repro_core Repro_search Sys
