examples/capture_replay_game.ml: Array List Option Printf Repro_apps Repro_capture Repro_core Repro_dex Repro_lir Repro_vm String
