examples/pass_ablation.mli:
