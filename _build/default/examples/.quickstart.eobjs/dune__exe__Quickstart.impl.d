examples/quickstart.ml: Array Option Printf Repro_capture Repro_dex Repro_lir Repro_vm
