examples/capture_replay_game.mli:
