(* Autotuning a Scimark kernel exactly as the paper's system does: one
   online capture, then an offline genetic search over verified replays,
   and finally an out-of-replay measurement of the chosen binary.

   Run with:  dune exec examples/autotune_fft.exe [APP] *)

module Pipeline = Repro_core.Pipeline
module Ga = Repro_search.Ga

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "FFT" in
  let app =
    match Repro_apps.Registry.find name with
    | Some app -> app
    | None ->
      Printf.eprintf "unknown app %S\n" name;
      exit 1
  in
  Printf.printf "== %s ==\n%!" app.Repro_apps.Registry.name;
  match Pipeline.capture_once ~seed:7 app with
  | None ->
    print_endline "no replayable hot region";
    exit 1
  | Some cap ->
    Printf.printf "captured hot region with %.1f ms online overhead\n%!"
      (Repro_capture.Capture.total_ms cap.Pipeline.overhead);
    let cfg = { Ga.quick_config with Ga.population = 20; generations = 8 } in
    let opt = Pipeline.optimize ~seed:23 ~cfg app cap in
    Printf.printf "replay fitness: Android %.3f ms, -O3 %.3f ms\n"
      opt.Pipeline.env.Pipeline.android_region_ms
      opt.Pipeline.env.Pipeline.o3_region_ms;
    (* evolution trace, one line per generation (Figure 9 for this app) *)
    let by_gen = Hashtbl.create 8 in
    List.iter
      (fun ev ->
         match ev.Ga.ev_fitness with
         | None -> ()
         | Some fit ->
           let g = ev.Ga.ev_generation in
           let best, worst, n =
             Option.value ~default:(infinity, neg_infinity, 0)
               (Hashtbl.find_opt by_gen g)
           in
           Hashtbl.replace by_gen g (min best fit, max worst fit, n + 1))
      opt.Pipeline.ga.Ga.history;
    Hashtbl.fold (fun g v acc -> (g, v) :: acc) by_gen []
    |> List.sort compare
    |> List.iter (fun (g, (best, worst, n)) ->
        Printf.printf
          "  generation %2d: best %.3f ms, worst %.3f ms (%d measured)\n" g
          best worst n);
    (match opt.Pipeline.best_genome with
     | Some genome ->
       Printf.printf "best genome:\n  %s\n" (Repro_search.Genome.to_string genome)
     | None -> print_endline "search found no verified improvement");
    let sp = Pipeline.measure_speedups app opt in
    Printf.printf
      "whole-program speedups over the Android compiler (outside replay):\n\
      \  LLVM -O3: %.2fx\n  LLVM GA:  %.2fx\n"
      sp.Pipeline.o3_speedup sp.Pipeline.ga_speedup
