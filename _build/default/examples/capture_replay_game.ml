(* Capture and replay for an interactive application, demonstrating the
   two §3.4 byproducts of the interpreted replay: the verification map
   that rejects miscompiled binaries, and the dispatch-type profile that
   powers speculative devirtualization.

   Run with:  dune exec examples/capture_replay_game.exe *)

module Pipeline = Repro_core.Pipeline
module Verify = Repro_capture.Verify
module Typeprof = Repro_capture.Typeprof
module Replay = Repro_capture.Replay
module Compile = Repro_lir.Compile
module B = Repro_dex.Bytecode

let () =
  let app = Option.get (Repro_apps.Registry.find "Reversi Android") in
  let dx = Repro_apps.Registry.dexfile app in
  let cap = Option.get (Pipeline.capture_once ~seed:11 app) in
  Printf.printf "captured %s's hot region: %s\n" app.Repro_apps.Registry.name
    (B.method_full_name dx.B.dx_methods.(cap.Pipeline.hot_mid));

  (* interpreted replay: verification map + dispatch-type profile *)
  let typeprof = Typeprof.create () in
  let r =
    Replay.run dx cap.Pipeline.snapshot Replay.Interpreter
      ~record_vcall:(fun site cid -> Typeprof.record typeprof site cid)
  in
  let vmap =
    match r.Replay.outcome with
    | Replay.Finished (ret, cycles) ->
      Printf.printf "interpreted replay: %d cycles, return %s\n" cycles
        (match ret with Some v -> Repro_vm.Value.to_string v | None -> "()");
      { Verify.writes = Verify.diff_against_snapshot r.Replay.ctx cap.Pipeline.snapshot;
        ret }
    | _ -> failwith "interpreted replay failed"
  in
  Printf.printf "verification map: %d externally visible writes\n"
    (List.length vmap.Verify.writes);
  List.iter
    (fun site ->
       let hist = Typeprof.lookup typeprof site in
       Printf.printf "  call site %d:%d dispatches to: %s\n" (fst site) (snd site)
         (String.concat ", "
            (List.map
               (fun (cid, n) ->
                  Printf.sprintf "%s x%d" dx.B.dx_classes.(cid).B.ci_name n)
               hist)))
    (Typeprof.sites typeprof);

  let region = Pipeline.region_methods app cap.Pipeline.hot_mid in
  let check label spec =
    let outcome =
      match
        Compile.llvm_binary ~profile:(Typeprof.lookup typeprof) dx spec region
      with
      | binary ->
        (match Verify.check dx cap.Pipeline.snapshot vmap binary with
         | Verify.Passed cycles -> Printf.sprintf "verified, %d cycles" cycles
         | Verify.Wrong_output -> "REJECTED: wrong output"
         | Verify.Crashed msg -> "REJECTED: crashed (" ^ msg ^ ")"
         | Verify.Hung -> "REJECTED: hung")
      | exception Compile.Compile_error msg -> "compile error: " ^ msg
      | exception Compile.Compile_timeout -> "compile timeout"
    in
    Printf.printf "%-36s %s\n" label outcome
  in
  check "LLVM -O2" Repro_lir.Pipelines.o2;
  check "-O2 + profile-guided devirt + inline"
    (Repro_lir.Pipelines.o2
     @ [ ("devirtualize", [| 90 |]); ("inline", [| 80 |]); ("dce", [||]) ]);
  (* Reversi's kernel is integer-only and read-only, so even the unsafe
     passes cannot change its behaviour on the captured input.  To see the
     verification map reject a miscompile, aim a value-changing float
     rewrite at a numeric kernel: *)
  print_newline ();
  let lu = Option.get (Repro_apps.Registry.find "LU") in
  let lu_dx = Repro_apps.Registry.dexfile lu in
  let lu_cap = Option.get (Pipeline.capture_once ~seed:11 lu) in
  let lu_env = Pipeline.make_eval_env lu lu_cap in
  Printf.printf "now %s (float kernel):\n" lu.Repro_apps.Registry.name;
  let check_lu label spec =
    let outcome =
      match Compile.llvm_binary lu_dx spec lu_env.Pipeline.region with
      | binary ->
        (match
           Verify.check lu_dx lu_cap.Pipeline.snapshot lu_env.Pipeline.vmap
             binary
         with
         | Verify.Passed cycles -> Printf.sprintf "verified, %d cycles" cycles
         | Verify.Wrong_output -> "REJECTED: wrong output"
         | Verify.Crashed msg -> "REJECTED: crashed (" ^ msg ^ ")"
         | Verify.Hung -> "REJECTED: hung")
      | exception Compile.Compile_error msg -> "compile error: " ^ msg
      | exception Compile.Compile_timeout -> "compile timeout"
    in
    Printf.printf "%-36s %s\n" label outcome
  in
  check_lu "LLVM -O2" Repro_lir.Pipelines.o2;
  check_lu "-O2 + fast-math (value-changing)"
    (Repro_lir.Pipelines.o2 @ [ ("fast-math", [| 1; 1 |]) ])
