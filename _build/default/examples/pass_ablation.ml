(* Per-pass ablation: how much does each optimization contribute on one
   captured region?  Three views:

   1. each safe pass alone on the naive-translated region;
   2. -O3 with one pass family knocked out;
   3. -O3 plus each replay-enabled custom pass (the GA's private arsenal).

   Run with:  dune exec examples/pass_ablation.exe [APP] *)

module Pipeline = Repro_core.Pipeline
module Compile = Repro_lir.Compile
module Passes = Repro_lir.Passes
module Verify = Repro_capture.Verify
module Typeprof = Repro_capture.Typeprof

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "SOR" in
  let app =
    match Repro_apps.Registry.find name with
    | Some app -> app
    | None ->
      Printf.eprintf "unknown app %S\n" name;
      exit 1
  in
  let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
  let env = Pipeline.make_eval_env app cap in
  let dx = env.Pipeline.dx in
  let profile = Typeprof.lookup env.Pipeline.typeprof in
  let cycles_of spec =
    match Compile.llvm_binary ~profile dx spec env.Pipeline.region with
    | binary ->
      (match
         Verify.check dx cap.Pipeline.snapshot env.Pipeline.vmap binary
       with
       | Verify.Passed cycles -> Some cycles
       | Verify.Wrong_output | Verify.Crashed _ | Verify.Hung -> None)
    | exception (Compile.Compile_error _ | Compile.Compile_timeout) -> None
  in
  let show label = function
    | Some c -> Printf.printf "  %-42s %9d cycles\n" label c
    | None -> Printf.printf "  %-42s %9s\n" label "rejected"
  in
  Printf.printf "== %s: hot-region replay cycles under pass selections ==\n"
    app.Repro_apps.Registry.name;
  let o0 = cycles_of Repro_lir.Pipelines.o0 in
  show "O0 (naive translation, no passes)" o0;
  show "Android compiler (for reference)"
    (Some
       (int_of_float
          (env.Pipeline.android_region_ms
           *. float_of_int Repro_vm.Cost.default.Repro_vm.Cost.cycles_per_ms)));

  print_endline "-- each safe pass alone on the naive translation --";
  List.iter
    (fun pass ->
       if pass.Passes.safe then begin
         let defaults =
           Array.of_list (List.map (fun p -> p.Passes.pdefault) pass.Passes.params)
         in
         show pass.Passes.name (cycles_of [ (pass.Passes.name, defaults) ])
       end)
    Passes.catalog;

  print_endline "-- -O3 with one ingredient removed --";
  show "-O3 (full)" (cycles_of Repro_lir.Pipelines.o3);
  List.iter
    (fun removed ->
       let spec =
         List.filter (fun (n, _) -> n <> removed) Repro_lir.Pipelines.o3
       in
       show ("-O3 minus " ^ removed) (cycles_of spec))
    [ "inline"; "gvn"; "licm"; "guard-dedupe"; "bce"; "unroll"; "dce" ];

  print_endline "-- -O3 plus the replay-enabled custom passes --";
  List.iter
    (fun (label, extra) ->
       show label (cycles_of (Repro_lir.Pipelines.o3 @ extra)))
    [ ("-O3 + gc-check-elim", [ ("gc-check-elim", [||]) ]);
      ("-O3 + jni-to-intrinsic", [ ("jni-to-intrinsic", [||]) ]);
      ("-O3 + devirtualize + inline",
       [ ("devirtualize", [| 90 |]); ("inline", [| 60 |]); ("dce", [||]) ]);
      ("-O3 + guard-hoist", [ ("guard-hoist", [||]) ]);
      ("-O3 + if-convert", [ ("if-convert", [||]) ]);
      ("-O3 + all of the above",
       [ ("gc-check-elim", [||]); ("jni-to-intrinsic", [||]);
         ("devirtualize", [| 90 |]); ("inline", [| 60 |]);
         ("guard-hoist", [||]); ("if-convert", [||]); ("gvn", [||]);
         ("dce", [||]); ("simplifycfg", [||]) ]) ]
