(* Tests for the VM: values, heap, memory image, interpreter semantics. *)

open Repro_vm
module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem

let run_src src =
  let dx = Repro_dex.Lower.compile src in
  let ctx = Image.build ~seed:1 dx in
  Interp.install ctx;
  (ctx, Interp.run_main ctx)

let expect_int src expected =
  let _, result = run_src src in
  match result with
  | Some (Value.Vint k) -> Alcotest.(check int) "result" expected k
  | _ -> Alcotest.fail "expected int result"

let expect_float src expected =
  let _, result = run_src src in
  match result with
  | Some (Value.Vfloat f) -> Alcotest.(check (float 1e-9)) "result" expected f
  | _ -> Alcotest.fail "expected float result"

(* ------------------------------ Value ------------------------------- *)

let test_value_roundtrip () =
  let check v kind =
    Alcotest.(check bool) "roundtrip" true
      (Value.equal v (Value.of_word kind (Value.to_word v)))
  in
  check (Value.Vint 42) B.Kint;
  check (Value.Vint (-7)) B.Kint;
  check (Value.Vfloat 3.25) B.Kfloat;
  check (Value.Vfloat (-0.0)) B.Kfloat;
  check (Value.Vbool true) B.Kbool;
  check (Value.Vref 0x40000000) B.Kref

(* ------------------------------- Heap ------------------------------- *)

let test_heap_alloc () =
  let mem = Mem.create () in
  Mem.map mem ~base:0x1000 ~npages:2 ~kind:Mem.Rheap ~name:"heap";
  let h = Heap.create mem ~base:0x1000 ~npages:2 in
  let a = Heap.alloc h ~nwords:4 in
  let b = Heap.alloc h ~nwords:4 in
  Alcotest.(check int) "first at base" 0x1000 a;
  Alcotest.(check int) "contiguous" (0x1000 + 32) b;
  Alcotest.(check int) "used words" 8 (Heap.used_words h);
  (try
     ignore (Heap.alloc h ~nwords:10000);
     Alcotest.fail "expected OOM"
   with Heap.Out_of_memory -> ())

(* --------------------------- Interpreter ---------------------------- *)

let test_arith () =
  expect_int "class Main { static int main() { return (3 + 4) * 5 - 100 / 3 % 7; } }"
    ((3 + 4) * 5 - (100 / 3 mod 7))

let test_float_arith () =
  expect_float
    "class Main { static float main() { float x = 1.5; return x * 4.0 + 1.0 / 2.0; } }"
    6.5

let test_loops () =
  expect_int
    "class Main { static int main() {
       int s = 0;
       for (int i = 1; i <= 100; i = i + 1) { s = s + i; }
       return s;
     } }"
    5050

let test_while_break_continue () =
  expect_int
    "class Main { static int main() {
       int s = 0;
       int i = 0;
       while (true) {
         i = i + 1;
         if (i > 10) { break; }
         if (i % 2 == 0) { continue; }
         s = s + i;
       }
       return s;
     } }"
    25

let test_arrays () =
  expect_int
    "class Main { static int main() {
       int[] a = new int[10];
       for (int i = 0; i < a.length; i = i + 1) { a[i] = i * i; }
       int s = 0;
       for (int i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
       return s;
     } }"
    285

let test_float_arrays () =
  expect_float
    "class Main { static float main() {
       float[] a = new float[4];
       a[0] = 0.5; a[1] = 1.5; a[2] = 2.5; a[3] = 3.5;
       return a[0] + a[1] + a[2] + a[3];
     } }"
    8.0

let test_objects_and_fields () =
  expect_int
    "class Point {
       int x; int y;
       void init(int ax, int ay) { x = ax; y = ay; }
       int sum() { return x + y; }
     }
     class Main { static int main() {
       Point p = new Point(3, 4);
       p.x = p.x + 10;
       return p.sum();
     } }"
    17

let test_static_fields () =
  expect_int
    "class Counter { static int n = 100; }
     class Main { static int main() {
       Counter.n = Counter.n + 5;
       return Counter.n;
     } }"
    105

let test_virtual_dispatch () =
  expect_int
    "class Shape { int area() { return 0; } }
     class Square extends Shape { int side; void init(int s) { side = s; }
       int area() { return side * side; } }
     class Rect extends Shape { int w; int h;
       void init(int aw, int ah) { w = aw; h = ah; }
       int area() { return w * h; } }
     class Main { static int main() {
       Shape[] shapes = new Shape[3];
       shapes[0] = new Square(3);
       shapes[1] = new Rect(2, 5);
       shapes[2] = new Shape();
       int total = 0;
       for (int i = 0; i < shapes.length; i = i + 1) {
         total = total + shapes[i].area();
       }
       return total;
     } }"
    19

let test_inherited_field_access () =
  expect_int
    "class A { int base; }
     class B extends A { int extra;
       void init() { base = 7; extra = 13; }
       int total() { return base + extra; } }
     class Main { static int main() { return new B().total(); } }"
    20

let test_recursion () =
  expect_int
    "class Main {
       static int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
       static int main() { return fib(15); }
     }"
    610

let test_natives () =
  expect_float
    "class Main { static float main() {
       return Math.sqrt(16.0) + Math.pow(2.0, 3.0) + Math.abs(0.0 - 1.5)
            + Math.max(1.0, 2.0);
     } }"
    15.5

let test_native_int_overloads () =
  expect_int
    "class Main { static int main() {
       return Math.abs(0 - 5) + Math.min(3, 9) + Math.max(3, 9);
     } }"
    17

let test_exceptions_catch () =
  expect_int
    "class Main { static int main() {
       int x = 0;
       try { x = 1; throw 42; } catch (int e) { x = x + e; }
       return x;
     } }"
    43

let test_exceptions_nested () =
  expect_int
    "class Main { static int main() {
       int x = 0;
       try {
         try { throw 5; } catch (int e) { x = e; throw 7; }
       } catch (int f) { x = x * 10 + f; }
       return x;
     } }"
    57

let test_exceptions_propagate_through_calls () =
  expect_int
    "class Main {
       static int boom() { throw 9; }
       static int main() {
         try { return boom(); } catch (int e) { return e * 2; }
       }
     }"
    18

let test_null_pointer_exception () =
  expect_int
    (Printf.sprintf
       "class C { int f; }
        class Main { static int main() {
          C c = null;
          try { return c.f; } catch (int e) { return e; }
        } }")
    Exec_ctx.exc_null_pointer

let test_bounds_exception () =
  expect_int
    (Printf.sprintf
       "class Main { static int main() {
          int[] a = new int[3];
          try { return a[5]; } catch (int e) { return e; }
        } }")
    Exec_ctx.exc_out_of_bounds

let test_div_by_zero () =
  expect_int
    "class Main { static int main() {
       int z = 0;
       try { return 10 / z; } catch (int e) { return e; }
     } }"
    Exec_ctx.exc_div_by_zero

let test_uncaught_exception () =
  try
    ignore (run_src "class Main { static int main() { throw 3; } }");
    Alcotest.fail "expected App_exception"
  with Exec_ctx.App_exception 3 -> ()

let test_io_output () =
  let ctx, _ = run_src
      "class Main { static int main() { Sys.print(7); Sys.print(2.5); return 0; } }"
  in
  Alcotest.(check string) "stdout" "7\n2.5\n" (Buffer.contents ctx.Exec_ctx.io)

let test_rand_deterministic () =
  let src =
    "class Main { static int main() {
       int s = 0;
       for (int i = 0; i < 10; i = i + 1) { s = s + Sys.rand(100); }
       return s;
     } }"
  in
  let _, a = run_src src in
  let _, b = run_src src in
  Alcotest.(check bool) "same seed, same draws" true (a = b)

let test_cycles_positive_and_monotone () =
  let src_small =
    "class Main { static int main() {
       int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } return s; } }"
  in
  let src_large =
    "class Main { static int main() {
       int s = 0; for (int i = 0; i < 1000; i = i + 1) { s = s + i; } return s; } }"
  in
  let ctx1, _ = run_src src_small in
  let ctx2, _ = run_src src_large in
  Alcotest.(check bool) "cycles > 0" true (ctx1.Exec_ctx.cycles > 0);
  Alcotest.(check bool) "more work, more cycles" true
    (ctx2.Exec_ctx.cycles > ctx1.Exec_ctx.cycles)

let test_timeout () =
  let dx =
    Repro_dex.Lower.compile
      "class Main { static int main() { while (true) { } return 0; } }"
  in
  let ctx = Image.build ~fuel:100_000 dx in
  Interp.install ctx;
  (try
     ignore (Interp.run_main ctx);
     Alcotest.fail "expected Timeout"
   with Exec_ctx.Timeout -> ())

let test_gc_triggers () =
  let ctx, _ = run_src
      "class Main { static int main() {
         int s = 0;
         for (int i = 0; i < 2000; i = i + 1) {
           int[] a = new int[100];
           a[0] = i;
           s = s + a[0];
         }
         return s;
       } }"
  in
  Alcotest.(check bool) "gc ran" true (ctx.Exec_ctx.gc_count > 0)

let test_heap_pages_touched () =
  let ctx, _ = run_src
      "class Main { static int main() {
         int[] a = new int[5000];
         for (int i = 0; i < a.length; i = i + 1) { a[i] = i; }
         return a[4999];
       } }"
  in
  let pages = Mem.touched_pages ctx.Exec_ctx.mem ~kind:Mem.Rheap in
  (* 64 warm pages + 5001 words = ~9.8 pages of fresh data *)
  let warm = Image.default_config.Image.warm_heap_pages in
  Alcotest.(check bool) "about warm+10 heap pages" true
    (List.length pages >= warm + 9 && List.length pages <= warm + 12)

let test_stack_overflow () =
  expect_int
    "class Main {
       static int down(int n) { return down(n + 1); }
       static int main() {
         try { return down(0); } catch (int e) { return e; }
       }
     }"
    Exec_ctx.exc_stack_overflow

let test_sampling_profiler () =
  let dx =
    Repro_dex.Lower.compile
      "class Main {
         static float spin(int n) {
           float x = 1.0;
           for (int i = 0; i < n; i = i + 1) { x = x + Math.sqrt(x); }
           return x;
         }
         static int main() { spin(20000); return 0; }
       }"
  in
  let ctx = Image.build dx in
  ctx.Exec_ctx.sample_period <- 10_000;
  ctx.Exec_ctx.next_sample <- 10_000;
  Interp.install ctx;
  ignore (Interp.run_main ctx);
  let samples = ctx.Exec_ctx.samples in
  Alcotest.(check bool) "has samples" true (List.length samples > 10);
  let spin_id = (Option.get (B.find_method dx "Main" "spin")).B.cm_id in
  let in_spin =
    List.length (List.filter (fun s -> s.Exec_ctx.s_method = spin_id) samples)
  in
  Alcotest.(check bool) "most samples in spin" true
    (float_of_int in_spin /. float_of_int (List.length samples) > 0.8)

(* ------------------------------- Mem --------------------------------- *)

let test_mem_cow () =
  let mem = Mem.create () in
  Mem.map mem ~base:0 ~npages:4 ~kind:Mem.Rheap ~name:"h";
  Mem.write_int mem 0 111;
  Mem.write_int mem 4096 222;
  let child = Mem.fork mem in
  (* parent writes after fork: child must keep the original *)
  Mem.write_int mem 0 999;
  Alcotest.(check int) "parent sees new" 999 (Mem.read_int mem 0);
  Alcotest.(check int) "child sees original" 111 (Mem.read_int child 0);
  Alcotest.(check int) "unmodified page shared" 222 (Mem.read_int child 4096);
  Alcotest.(check bool) "one CoW copy" true ((Mem.stats mem).Mem.n_cow >= 1)

let test_mem_protection_fault () =
  let mem = Mem.create () in
  Mem.map mem ~base:0 ~npages:2 ~kind:Mem.Rheap ~name:"h";
  Mem.write_int mem 0 5;
  let faulted = ref [] in
  Mem.set_fault_handler mem (Some (fun page -> faulted := page :: !faulted));
  Mem.protect mem ~page:0;
  Alcotest.(check int) "read proceeds after fault" 5 (Mem.read_int mem 0);
  Alcotest.(check (list int)) "fault recorded" [ 0 ] !faulted;
  ignore (Mem.read_int mem 0);
  Alcotest.(check (list int)) "only one fault" [ 0 ] !faulted

let test_mem_unmapped () =
  let mem = Mem.create () in
  (try
     ignore (Mem.read_word mem 0x9999_0000);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* qcheck: interpreter arithmetic matches OCaml on random expressions *)
let prop_interp_arith =
  QCheck.Test.make ~name:"interp sum of squares matches closed form" ~count:30
    QCheck.(int_range 1 60)
    (fun n ->
       let src = Printf.sprintf
           "class Main { static int main() {
              int s = 0;
              for (int i = 1; i <= %d; i = i + 1) { s = s + i * i; }
              return s;
            } }" n
       in
       let _, r = run_src src in
       r = Some (Value.Vint (n * (n + 1) * ((2 * n) + 1) / 6)))

let () =
  Alcotest.run "vm"
    [ ("value", [ Alcotest.test_case "roundtrip" `Quick test_value_roundtrip ]);
      ("heap", [ Alcotest.test_case "alloc" `Quick test_heap_alloc ]);
      ("mem",
       [ Alcotest.test_case "cow" `Quick test_mem_cow;
         Alcotest.test_case "protection fault" `Quick test_mem_protection_fault;
         Alcotest.test_case "unmapped" `Quick test_mem_unmapped ]);
      ("interp",
       [ Alcotest.test_case "arith" `Quick test_arith;
         Alcotest.test_case "float arith" `Quick test_float_arith;
         Alcotest.test_case "loops" `Quick test_loops;
         Alcotest.test_case "break/continue" `Quick test_while_break_continue;
         Alcotest.test_case "arrays" `Quick test_arrays;
         Alcotest.test_case "float arrays" `Quick test_float_arrays;
         Alcotest.test_case "objects" `Quick test_objects_and_fields;
         Alcotest.test_case "static fields" `Quick test_static_fields;
         Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch;
         Alcotest.test_case "inherited fields" `Quick test_inherited_field_access;
         Alcotest.test_case "recursion" `Quick test_recursion;
         Alcotest.test_case "natives" `Quick test_natives;
         Alcotest.test_case "native int overloads" `Quick test_native_int_overloads;
         Alcotest.test_case "exceptions catch" `Quick test_exceptions_catch;
         Alcotest.test_case "exceptions nested" `Quick test_exceptions_nested;
         Alcotest.test_case "exceptions through calls" `Quick
           test_exceptions_propagate_through_calls;
         Alcotest.test_case "null pointer" `Quick test_null_pointer_exception;
         Alcotest.test_case "bounds" `Quick test_bounds_exception;
         Alcotest.test_case "div by zero" `Quick test_div_by_zero;
         Alcotest.test_case "uncaught" `Quick test_uncaught_exception;
         Alcotest.test_case "io output" `Quick test_io_output;
         Alcotest.test_case "rand deterministic" `Quick test_rand_deterministic;
         Alcotest.test_case "cycles monotone" `Quick test_cycles_positive_and_monotone;
         Alcotest.test_case "timeout" `Quick test_timeout;
         Alcotest.test_case "gc triggers" `Quick test_gc_triggers;
         Alcotest.test_case "heap pages touched" `Quick test_heap_pages_touched;
         Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
         Alcotest.test_case "sampling profiler" `Quick test_sampling_profiler ]);
      ("vm-properties",
       List.map QCheck_alcotest.to_alcotest [ prop_interp_arith ]) ]
