(* Tests for the IR utilities, CFG analyses and individual transforms on
   hand-built graphs (the app-level behaviour is covered by test_lir and
   the fuzzer; these pin the primitives). *)

module Hir = Repro_hgraph.Hir
module T = Repro_hgraph.Transforms
module Analysis = Repro_hgraph.Analysis
module Cfg = Repro_util.Cfg
module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast

(* Build a function from (bid, insns, term) triples. *)
let mk_func ?(nregs = 32) blocks =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (bid, insns, term) ->
       Hashtbl.replace tbl bid { Hir.insns; term })
    blocks;
  { Hir.f_mid = 0; f_name = "test"; f_nparams = 0; f_nregs = nregs;
    f_blocks = tbl; f_entry = 0;
    f_next_bid = 1 + List.fold_left (fun a (b, _, _) -> max a b) 0 blocks;
    f_pressure = None }

(* ------------------------------- Cfg -------------------------------- *)

(* diamond with a loop on one arm:
   0 -> 1 -> (2 <-> 3 loop) -> 4 ; 0 -> 4 *)
let diamond_loop () =
  Cfg.analyze ~entry:0 ~succs:(function
      | 0 -> [ 1; 4 ]
      | 1 -> [ 2 ]
      | 2 -> [ 3; 4 ]
      | 3 -> [ 2 ]
      | _ -> [])

let test_cfg_reachability () =
  let g = Cfg.analyze ~entry:0 ~succs:(function 0 -> [ 1 ] | _ -> []) in
  Alcotest.(check (list int)) "only reachable" [ 0; 1 ] (List.sort compare (Cfg.nodes g))

let test_cfg_dominators () =
  let g = diamond_loop () in
  Alcotest.(check bool) "0 dominates all" true
    (List.for_all (Cfg.dominates g 0) (Cfg.nodes g));
  Alcotest.(check bool) "1 dominates 2,3" true
    (Cfg.dominates g 1 2 && Cfg.dominates g 1 3);
  Alcotest.(check bool) "1 does not dominate 4" false (Cfg.dominates g 1 4);
  Alcotest.(check (option int)) "idom of 4 is 0" (Some 0) (Cfg.idom g 4);
  Alcotest.(check (option int)) "idom of entry" None (Cfg.idom g 0)

let test_cfg_loops () =
  let g = diamond_loop () in
  match Cfg.loops g with
  | [ l ] ->
    Alcotest.(check int) "header" 2 l.Cfg.header;
    Alcotest.(check (list int)) "back edges" [ 3 ] l.Cfg.back_edges;
    Alcotest.(check (list int)) "body" [ 2; 3 ] l.Cfg.body;
    Alcotest.(check int) "depth inside" 1 (Cfg.loop_depth g 2);
    Alcotest.(check int) "depth outside" 0 (Cfg.loop_depth g 4)
  | ls -> Alcotest.fail (Printf.sprintf "expected 1 loop, got %d" (List.length ls))

let test_cfg_nested_loops () =
  (* 0 -> 1 { 1 -> 2 { 2 -> 2 } 2 -> 1 } 1 -> 3 *)
  let g =
    Cfg.analyze ~entry:0 ~succs:(function
        | 0 -> [ 1 ]
        | 1 -> [ 2; 3 ]
        | 2 -> [ 2; 1 ]
        | _ -> [])
  in
  Alcotest.(check int) "two loops" 2 (List.length (Cfg.loops g));
  Alcotest.(check int) "inner depth" 2 (Cfg.loop_depth g 2)

(* qcheck: dominator sanity on random CFGs *)
let random_cfg_gen =
  QCheck.Gen.(
    sized_size (int_range 2 12) (fun n ->
        (* each node gets up to 2 random successors *)
        let* edges =
          list_repeat n
            (pair (int_bound (n - 1)) (int_bound (n - 1)))
        in
        return (n, edges)))

let prop_dominator_sanity =
  QCheck.Test.make ~name:"entry dominates every reachable node" ~count:200
    (QCheck.make random_cfg_gen)
    (fun (n, edges) ->
       let succs i =
         List.concat_map
           (fun (a, b) -> if a = i then [ b ] else [])
           (List.mapi (fun i (x, y) -> (i mod n, if i mod 2 = 0 then x else y)) edges)
       in
       let g = Cfg.analyze ~entry:0 ~succs in
       List.for_all
         (fun node ->
            Cfg.dominates g 0 node
            && (node = 0 || Cfg.idom g node <> None)
            && Cfg.dominates g node node)
         (Cfg.nodes g))

let prop_loop_bodies_contain_header_and_backedges =
  QCheck.Test.make ~name:"loop bodies well-formed" ~count:200
    (QCheck.make random_cfg_gen)
    (fun (n, edges) ->
       let succs i =
         List.filter_map
           (fun (a, b) -> if a mod n = i then Some (b mod n) else None)
           edges
       in
       let g = Cfg.analyze ~entry:0 ~succs in
       List.for_all
         (fun l ->
            List.mem l.Cfg.header l.Cfg.body
            && List.for_all (fun t -> List.mem t l.Cfg.body) l.Cfg.back_edges
            && List.for_all (fun t -> Cfg.dominates g l.Cfg.header t)
                 l.Cfg.back_edges)
         (Cfg.loops g))

(* ----------------------------- liveness ----------------------------- *)

let test_liveness_through_branch () =
  (* b0: r1=1; r2=2; if r1 ? b1 : b2.  b1 uses r1, b2 uses r2. *)
  let f =
    mk_func
      [ (0,
         [ Hir.Const (1, B.Cint 1); Hir.Const (2, B.Cint 2) ],
         Hir.If (B.Cne, 1, None, 1, 2, Hir.Predict_none));
        (1, [ Hir.Move (3, 1) ], Hir.Ret (Some 3));
        (2, [ Hir.Move (4, 2) ], Hir.Ret (Some 4)) ]
  in
  let g = Hir.cfg f in
  let live = Analysis.liveness f g in
  let out0 = Hashtbl.find live 0 in
  Alcotest.(check bool) "r1 live out of b0" true (Analysis.ISet.mem 1 out0);
  Alcotest.(check bool) "r2 live out of b0" true (Analysis.ISet.mem 2 out0);
  Alcotest.(check bool) "r3 not live out of b0" false (Analysis.ISet.mem 3 out0)

let test_def_count () =
  let f =
    mk_func
      [ (0,
         [ Hir.Const (1, B.Cint 1); Hir.Const (1, B.Cint 2);
           Hir.Const (2, B.Cint 3) ],
         Hir.Ret (Some 1)) ]
  in
  let counts = Analysis.def_count f in
  Alcotest.(check (option int)) "r1 twice" (Some 2) (Hashtbl.find_opt counts 1);
  Alcotest.(check (option int)) "r2 once" (Some 1) (Hashtbl.find_opt counts 2)

(* ----------------------------- transforms --------------------------- *)

let ret_const_after pipeline blocks expected =
  let f = pipeline (mk_func blocks) in
  (* after folding, the entry chain should produce a constant return *)
  let rec chase bid guard =
    if guard = 0 then None
    else begin
      let b = Hir.block f bid in
      match b.Hir.term with
      | Hir.Ret (Some r) ->
        List.fold_left
          (fun acc i ->
             match i with
             | Hir.Const (d, B.Cint k) when d = r -> Some k
             | _ -> acc)
          None b.Hir.insns
      | Hir.Goto t -> chase t (guard - 1)
      | _ -> None
    end
  in
  Alcotest.(check (option int)) "folded" (Some expected) (chase f.Hir.f_entry 10)

let test_const_fold_branch () =
  (* if 1 != 0 then ret 7 else ret 8; must fold the branch away *)
  ret_const_after
    (fun f -> T.dce (T.const_fold f))
    [ (0, [ Hir.Const (1, B.Cint 1) ],
       Hir.If (B.Cne, 1, None, 1, 2, Hir.Predict_none));
      (1, [ Hir.Const (2, B.Cint 7) ], Hir.Ret (Some 2));
      (2, [ Hir.Const (3, B.Cint 8) ], Hir.Ret (Some 3)) ]
    7

let test_cse_reuses_load () =
  (* two identical pure binops collapse to one *)
  let f =
    mk_func
      [ (0,
         [ Hir.Const (1, B.Cint 6); Hir.Const (2, B.Cint 7);
           Hir.Binop (Ast.Mul, 3, 1, 2); Hir.Binop (Ast.Mul, 4, 1, 2);
           Hir.Binop (Ast.Add, 5, 3, 4) ],
         Hir.Ret (Some 5)) ]
  in
  let f' = T.cse_local f in
  let muls = ref 0 in
  Hir.iter_blocks f' (fun _ b ->
      List.iter
        (function Hir.Binop (Ast.Mul, _, _, _) -> incr muls | _ -> ())
        b.Hir.insns);
  Alcotest.(check int) "one mul left (other became a move)" 1 !muls

let test_cse_invalidated_by_store () =
  (* a load is not reused across an aliasing store *)
  let f =
    mk_func
      [ (0,
         [ Hir.Const (1, B.Cint 0);
           Hir.LoadField (B.Kint, 2, 9, 0);
           Hir.StoreField (B.Kint, 9, 1, 0);
           Hir.LoadField (B.Kint, 3, 9, 0);
           Hir.Binop (Ast.Add, 4, 2, 3) ],
         Hir.Ret (Some 4)) ]
  in
  let f' = T.cse_local f in
  let loads = ref 0 in
  Hir.iter_blocks f' (fun _ b ->
      List.iter
        (function Hir.LoadField _ -> incr loads | _ -> ())
        b.Hir.insns);
  Alcotest.(check int) "both loads survive" 2 !loads

let test_lse_forwards_store () =
  let f =
    mk_func
      [ (0,
         [ Hir.Const (1, B.Cint 5);
           Hir.StoreField (B.Kint, 9, 1, 2);
           Hir.LoadField (B.Kint, 3, 9, 2) ],
         Hir.Ret (Some 3)) ]
  in
  let f' = T.load_store_elim f in
  let loads = ref 0 in
  Hir.iter_blocks f' (fun _ b ->
      List.iter (function Hir.LoadField _ -> incr loads | _ -> ()) b.Hir.insns);
  Alcotest.(check int) "load forwarded" 0 !loads

let test_inline_splices () =
  (* caller calls a tiny static method; after inlining no CallStatic left *)
  let callee =
    mk_func ~nregs:4
      [ (0, [ Hir.Binop (Ast.Add, 1, 0, 0) ], Hir.Ret (Some 1)) ]
  in
  let callee = { callee with Hir.f_mid = 42; f_nparams = 1 } in
  let caller =
    mk_func
      [ (0,
         [ Hir.Const (1, B.Cint 21);
           Hir.CallStatic (Some 2, 42, [ 1 ]) ],
         Hir.Ret (Some 2)) ]
  in
  let f' =
    T.inline_calls
      ~get_func:(fun mid -> if mid = 42 then Some callee else None)
      ~threshold:10 caller
  in
  let calls = ref 0 in
  Hir.iter_blocks f' (fun _ b ->
      List.iter (function Hir.CallStatic _ -> incr calls | _ -> ()) b.Hir.insns);
  Alcotest.(check int) "no calls left" 0 !calls

let test_simplify_cfg_threads_gotos () =
  let f =
    mk_func
      [ (0, [], Hir.Goto 1);
        (1, [], Hir.Goto 2);
        (2, [ Hir.Const (1, B.Cint 3) ], Hir.Ret (Some 1));
        (7, [], Hir.Goto 0) (* unreachable *) ]
  in
  let f' = T.simplify_cfg f in
  Alcotest.(check int) "collapsed to one block" 1 (Hashtbl.length f'.Hir.f_blocks)

let test_predict_static_marks_backedge () =
  let f =
    mk_func
      [ (0, [ Hir.Const (1, B.Cint 10) ], Hir.Goto 1);
        (1, [ Hir.Binop (Ast.Sub, 1, 1, 1) ],
         Hir.If (B.Cgt, 1, None, 1, 2, Hir.Predict_none));
        (2, [], Hir.Ret (Some 1)) ]
  in
  let f' = T.predict_static f in
  match (Hir.block f' 1).Hir.term with
  | Hir.If (_, _, _, _, _, Hir.Predict_taken) -> ()
  | _ -> Alcotest.fail "back edge should be predicted taken"

let () =
  Alcotest.run "hgraph"
    [ ("cfg",
       [ Alcotest.test_case "reachability" `Quick test_cfg_reachability;
         Alcotest.test_case "dominators" `Quick test_cfg_dominators;
         Alcotest.test_case "loops" `Quick test_cfg_loops;
         Alcotest.test_case "nested loops" `Quick test_cfg_nested_loops ]);
      ("analysis",
       [ Alcotest.test_case "liveness" `Quick test_liveness_through_branch;
         Alcotest.test_case "def count" `Quick test_def_count ]);
      ("transforms",
       [ Alcotest.test_case "const fold branch" `Quick test_const_fold_branch;
         Alcotest.test_case "cse reuse" `Quick test_cse_reuses_load;
         Alcotest.test_case "cse store barrier" `Quick test_cse_invalidated_by_store;
         Alcotest.test_case "lse forwarding" `Quick test_lse_forwards_store;
         Alcotest.test_case "inline splices" `Quick test_inline_splices;
         Alcotest.test_case "cfg threading" `Quick test_simplify_cfg_threads_gotos;
         Alcotest.test_case "static prediction" `Quick test_predict_static_marks_backedge ]);
      ("cfg-properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_dominator_sanity; prop_loop_bodies_contain_header_and_backedges ]) ]
