test/test_profiler.ml: Alcotest Array List Option Repro_apps Repro_core Repro_dex Repro_profiler Repro_vm
