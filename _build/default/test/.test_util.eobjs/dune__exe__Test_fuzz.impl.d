test/test_fuzz.ml: Alcotest Array List Printf QCheck QCheck_alcotest Repro_dex Repro_lir Repro_util Repro_vm String
