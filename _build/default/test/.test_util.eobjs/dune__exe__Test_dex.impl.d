test/test_dex.ml: Alcotest Array Ast Astring Bytecode Disasm Lexer List Lower Option Parser QCheck QCheck_alcotest Repro_dex Typecheck
