test/test_os.ml: Alcotest Array Gen List QCheck QCheck_alcotest Repro_os
