test/test_capture.ml: Alcotest Capture Lazy List Option Replay Repro_apps Repro_capture Repro_core Repro_dex Repro_lir Repro_os Repro_vm Snapshot Typeprof Verify
