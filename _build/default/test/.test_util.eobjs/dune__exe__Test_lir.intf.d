test/test_lir.mli:
