test/test_search.ml: Alcotest Array Ga Genome List Repro_lir Repro_search Repro_util String
