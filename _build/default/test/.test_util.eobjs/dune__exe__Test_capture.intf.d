test/test_capture.mli:
