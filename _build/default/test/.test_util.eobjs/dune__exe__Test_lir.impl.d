test/test_lir.ml: Alcotest Array Binary Buffer Compile Exec Format Gen Hashtbl Int64 List Option Passes Pipelines QCheck QCheck_alcotest Repro_dex Repro_hgraph Repro_lir Repro_util Repro_vm Translate
