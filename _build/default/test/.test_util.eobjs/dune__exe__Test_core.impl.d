test/test_core.ml: Alcotest Array List Option Repro_apps Repro_core Repro_lir Repro_search
