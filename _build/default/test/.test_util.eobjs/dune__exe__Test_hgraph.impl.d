test/test_hgraph.ml: Alcotest Hashtbl List Printf QCheck QCheck_alcotest Repro_dex Repro_hgraph Repro_util
