test/test_apps.ml: Alcotest Array Buffer List Printexc Printf Repro_apps Repro_core Repro_dex Repro_lir Repro_profiler Repro_vm String
