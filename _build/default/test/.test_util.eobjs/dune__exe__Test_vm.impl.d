test/test_vm.ml: Alcotest Buffer Exec_ctx Heap Image Interp List Option Printf QCheck QCheck_alcotest Repro_dex Repro_os Repro_vm Value
