test/test_hgraph.mli:
