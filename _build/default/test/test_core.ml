(* End-to-end tests of the pipeline (Figure 6) and the experiment drivers. *)

module App = Repro_apps.Registry
module Pipeline = Repro_core.Pipeline
module Study = Repro_core.Study
module E = Repro_core.Experiments
module Ga = Repro_search.Ga
module Genome = Repro_search.Genome

let fft () = Option.get (App.find "FFT")

let tiny_cfg =
  { Ga.quick_config with Ga.population = 8; generations = 4; max_identical = 30 }

let env_for app =
  let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
  (cap, Pipeline.make_eval_env app cap)

let test_eval_env_baselines () =
  let _, env = env_for (fft ()) in
  Alcotest.(check bool) "android baseline measured" true
    (env.Pipeline.android_region_ms > 0.0);
  Alcotest.(check bool) "o3 baseline measured" true
    (env.Pipeline.o3_region_ms > 0.0);
  Alcotest.(check bool) "o3 beats android on FFT region replay" true
    (env.Pipeline.o3_region_ms < env.Pipeline.android_region_ms)

let test_evaluate_genome_outcomes () =
  let _, env = env_for (fft ()) in
  let genome_of spec =
    List.map (fun (name, ps) -> { Genome.g_pass = name; g_params = ps }) spec
  in
  (match Pipeline.evaluate_genome env (genome_of Repro_lir.Pipelines.o2) with
   | Ga.Measured { times; size; _ } ->
     Alcotest.(check int) "10 replays" 10 (Array.length times);
     Alcotest.(check bool) "size > 0" true (size > 0)
   | _ -> Alcotest.fail "O2 should measure");
  (match
     Pipeline.evaluate_genome env
       (genome_of [ ("fast-math", [| 1; 1 |]) ])
   with
   | Ga.Wrong_output -> ()
   | _ -> Alcotest.fail "fast-math should be rejected on FFT");
  (match Pipeline.evaluate_genome env (genome_of [ ("unroll", [| 999; 4; 0 |]) ]) with
   | Ga.Compile_failed _ -> ()
   | _ -> Alcotest.fail "invalid parameter should fail compilation")

let test_optimize_beats_android () =
  let app = fft () in
  let cap, _ = env_for app in
  let opt = Pipeline.optimize ~seed:3 ~cfg:tiny_cfg app cap in
  match opt.Pipeline.ga.Ga.best with
  | None -> Alcotest.fail "GA found nothing"
  | Some (_, fit) ->
    Alcotest.(check bool) "best replay beats android" true
      (fit < opt.Pipeline.env.Pipeline.android_region_ms);
    Alcotest.(check bool) "a verified binary exists" true
      (opt.Pipeline.best_binary <> None)

let test_final_binary_overlays_region () =
  let app = fft () in
  let cap, _ = env_for app in
  let opt = Pipeline.optimize ~seed:3 ~cfg:tiny_cfg app cap in
  let final = Pipeline.final_binary opt in
  let android = Pipeline.android_binary_for app in
  Alcotest.(check bool) "covers at least the android methods" true
    (List.length (Repro_lir.Binary.mids final)
     >= List.length (Repro_lir.Binary.mids android));
  let sp = Pipeline.measure_speedups ~runs:2 app opt in
  Alcotest.(check bool) "GA speedup > 1" true (sp.Pipeline.ga_speedup > 1.0)

let test_study_memoized () =
  Study.clear_cache ();
  let app = fft () in
  let a = Study.run ~cfg:tiny_cfg app in
  let b = Study.run ~cfg:tiny_cfg app in
  (* physical equality proves the second call came from the cache *)
  Alcotest.(check bool) "same study" true
    (match a, b with Some a, Some b -> a == b | _ -> false)

let test_fig1_classifies () =
  let f = E.fig1 ~sequences:20 ~seed:5 () in
  Alcotest.(check int) "total" 20 f.E.f1_total;
  let sum = List.fold_left (fun acc (_, n) -> acc + n) 0 f.E.f1_counts in
  Alcotest.(check int) "counts sum" 20 sum;
  let correct =
    List.assoc E.F1_correct f.E.f1_counts
  in
  Alcotest.(check bool) "some correct, some not" true
    (correct > 0 && correct < 20)

let test_fig2_speedups () =
  let f = E.fig2 ~binaries:8 ~seed:5 () in
  Alcotest.(check int) "8 binaries" 8 (Array.length f.E.f2_speedups);
  Array.iter
    (fun s -> Alcotest.(check bool) "positive" true (s > 0.0))
    f.E.f2_speedups

let test_fig3_offline_converges_faster () =
  let f = E.fig3 ~max_evals:2000 ~trajectories:40 ~seed:5 () in
  Alcotest.(check bool) "true speedup > 1.3" true (f.E.f3_true_speedup > 1.3);
  match f.E.f3_offline_settle, f.E.f3_online_settle with
  | Some off, Some on ->
    Alcotest.(check bool) "offline settles earlier" true (off <= on)
  | Some _, None -> ()  (* online never settled: even stronger *)
  | None, _ -> Alcotest.fail "offline never settled"

let test_fig10_and_11_rows () =
  let apps = Some [ "FFT"; "LU" ] in
  let rows10 = E.fig10 ?apps () in
  Alcotest.(check int) "two rows" 2 (List.length rows10);
  List.iter
    (fun r ->
       Alcotest.(check bool) "total = parts" true
         (abs_float
            (r.E.f10_total -. (r.E.f10_fork +. r.E.f10_prep +. r.E.f10_faults_cow))
          < 1e-9))
    rows10;
  let rows11 = E.fig11 ?apps () in
  List.iter
    (fun r ->
       Alcotest.(check bool) "common ~12.6MB" true
         (abs_float (r.E.f11_common_mb -. 12.6) < 0.2))
    rows11

let test_fig8_rows () =
  let rows = E.fig8 ~apps:[ "DroidFish"; "Sieve" ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
       let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 r.E.f8_fractions in
       Alcotest.(check (float 1e-6)) (r.E.f8_app ^ " sums to 1") 1.0 total)
    rows

let test_fig7_and_9_via_study () =
  Study.clear_cache ();
  let rows = E.fig7 ~cfg:tiny_cfg ~apps:[ "FFT" ] () in
  (match rows with
   | [ r ] ->
     Alcotest.(check bool) "GA speedup sensible" true
       (r.E.f7_ga > 0.9 && r.E.f7_ga < 5.0)
   | _ -> Alcotest.fail "one row expected");
  let evo = E.fig9 ~cfg:tiny_cfg ~apps:[ "FFT" ] () in
  (match evo with
   | [ r ] ->
     Alcotest.(check bool) "points per generation" true
       (List.length r.E.f9_points >= 2);
     let last = List.nth r.E.f9_points (List.length r.E.f9_points - 1) in
     let first = List.hd r.E.f9_points in
     Alcotest.(check bool) "best line monotone" true
       (last.E.f9_best >= first.E.f9_best)
   | _ -> Alcotest.fail "one row expected")

let () =
  Alcotest.run "core"
    [ ("pipeline",
       [ Alcotest.test_case "baselines" `Quick test_eval_env_baselines;
         Alcotest.test_case "genome outcomes" `Quick test_evaluate_genome_outcomes;
         Alcotest.test_case "optimize beats android" `Slow test_optimize_beats_android;
         Alcotest.test_case "final binary" `Slow test_final_binary_overlays_region;
         Alcotest.test_case "study memoized" `Slow test_study_memoized ]);
      ("experiments",
       [ Alcotest.test_case "fig1" `Quick test_fig1_classifies;
         Alcotest.test_case "fig2" `Quick test_fig2_speedups;
         Alcotest.test_case "fig3" `Quick test_fig3_offline_converges_faster;
         Alcotest.test_case "fig10/fig11" `Quick test_fig10_and_11_rows;
         Alcotest.test_case "fig8" `Quick test_fig8_rows;
         Alcotest.test_case "fig7/fig9" `Slow test_fig7_and_9_via_study ]) ]
