(* Tests for the OS substrate: paged memory, protection, fork/CoW chains,
   page install, mappings, storage. *)

module Mem = Repro_os.Mem
module Storage = Repro_os.Storage

let fresh ?(npages = 8) () =
  let mem = Mem.create () in
  Mem.map mem ~base:0x1000_0000 ~npages ~kind:Mem.Rheap ~name:"heap";
  mem

let addr i = 0x1000_0000 + (i * 8)

(* ------------------------------- basics ----------------------------- *)

let test_zero_fill () =
  let mem = fresh () in
  Alcotest.(check int) "untouched reads zero" 0 (Mem.read_int mem (addr 5))

let test_word_roundtrip () =
  let mem = fresh () in
  Mem.write_word mem (addr 0) 0x0123_4567_89AB_CDEFL;
  Alcotest.(check bool) "word" true
    (Mem.read_word mem (addr 0) = 0x0123_4567_89AB_CDEFL);
  Mem.write_float mem (addr 1) 2.718281828;
  Alcotest.(check (float 1e-12)) "float" 2.718281828 (Mem.read_float mem (addr 1));
  Mem.write_int mem (addr 2) (-42);
  Alcotest.(check int) "negative int" (-42) (Mem.read_int mem (addr 2))

let test_mapping_rules () =
  let mem = fresh () in
  (try
     Mem.map mem ~base:0x1000_0000 ~npages:1 ~kind:Mem.Rcode ~name:"overlap";
     Alcotest.fail "expected overlap rejection"
   with Invalid_argument _ -> ());
  (try
     Mem.map mem ~base:0x2000_0001 ~npages:1 ~kind:Mem.Rcode ~name:"unaligned";
     Alcotest.fail "expected alignment rejection"
   with Invalid_argument _ -> ());
  Mem.map mem ~base:0x2000_0000 ~npages:2 ~kind:Mem.Rcode ~name:"lib.so";
  Alcotest.(check int) "two mappings" 2 (List.length (Mem.mappings mem));
  Alcotest.(check bool) "ascending" true
    (match Mem.mappings mem with
     | [ a; b ] -> a.Mem.map_base < b.Mem.map_base
     | _ -> false)

let test_kind_of_page () =
  let mem = fresh () in
  Alcotest.(check bool) "heap kind" true
    (Mem.kind_of_page mem (0x1000_0000 / Mem.page_size) = Some Mem.Rheap);
  Alcotest.(check bool) "unmapped" true
    (Mem.kind_of_page mem 0 = None)

(* ----------------------------- protection --------------------------- *)

let test_protection_lifecycle () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 7;
  let page = 0x1000_0000 / Mem.page_size in
  Mem.protect mem ~page;
  Alcotest.(check bool) "protected" true (Mem.protected mem ~page);
  (* access clears protection even with no handler *)
  Alcotest.(check int) "read proceeds" 7 (Mem.read_int mem (addr 0));
  Alcotest.(check bool) "unprotected after fault" false (Mem.protected mem ~page)

let test_write_faults_too () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  let page = 0x1000_0000 / Mem.page_size in
  let faults = ref 0 in
  Mem.set_fault_handler mem (Some (fun _ -> incr faults));
  Mem.protect mem ~page;
  Mem.write_int mem (addr 1) 2;
  Alcotest.(check int) "write faulted" 1 !faults;
  Mem.write_int mem (addr 2) 3;
  Alcotest.(check int) "second write silent" 1 !faults

let test_protect_untouched_noop () =
  let mem = fresh () in
  Mem.protect mem ~page:(0x1000_0000 / Mem.page_size);
  Alcotest.(check bool) "not materialized, not protected" false
    (Mem.protected mem ~page:(0x1000_0000 / Mem.page_size))

(* ------------------------------ fork/CoW ---------------------------- *)

let test_fork_shares_until_write () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 10;
  let child = Mem.fork mem in
  Alcotest.(check int) "child reads parent data" 10 (Mem.read_int child (addr 0));
  Alcotest.(check int) "no CoW yet" 0 (Mem.stats mem).Mem.n_cow;
  Mem.write_int mem (addr 0) 20;
  Alcotest.(check int) "one CoW" 1 (Mem.stats mem).Mem.n_cow;
  Alcotest.(check int) "child keeps original" 10 (Mem.read_int child (addr 0));
  Mem.write_int mem (addr 0) 30;
  Alcotest.(check int) "second write no CoW" 1 (Mem.stats mem).Mem.n_cow

let test_child_write_cow () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 10;
  let child = Mem.fork mem in
  Mem.write_int child (addr 0) 99;
  Alcotest.(check int) "parent unaffected" 10 (Mem.read_int mem (addr 0));
  Alcotest.(check int) "child sees its write" 99 (Mem.read_int child (addr 0))

let test_fork_chain () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  let c1 = Mem.fork mem in
  let c2 = Mem.fork mem in
  Mem.write_int mem (addr 0) 2;
  Alcotest.(check int) "c1 original" 1 (Mem.read_int c1 (addr 0));
  Alcotest.(check int) "c2 original" 1 (Mem.read_int c2 (addr 0));
  Mem.write_int c1 (addr 0) 3;
  Alcotest.(check int) "c2 still original" 1 (Mem.read_int c2 (addr 0))

let test_fork_after_protection () =
  (* the capture ordering: fork first, then protect the parent; child
     accesses must not fault *)
  let mem = fresh () in
  Mem.write_int mem (addr 0) 5;
  let child = Mem.fork mem in
  let page = 0x1000_0000 / Mem.page_size in
  Mem.protect mem ~page;
  Alcotest.(check bool) "child unprotected" false (Mem.protected child ~page);
  Alcotest.(check int) "child reads freely" 5 (Mem.read_int child (addr 0))

(* ---------------------------- install_page -------------------------- *)

let test_install_page () =
  let mem = fresh () in
  let data = Array.make Mem.words_per_page 0L in
  data.(3) <- 77L;
  Mem.install_page mem ~page:(0x1000_0000 / Mem.page_size) data;
  Alcotest.(check int) "installed word" 77 (Mem.read_int mem (addr 3));
  data.(3) <- 0L;
  Alcotest.(check int) "copied, not aliased" 77 (Mem.read_int mem (addr 3));
  (try
     Mem.install_page mem ~page:0 data;
     Alcotest.fail "expected unmapped rejection"
   with Invalid_argument _ -> ());
  (try
     Mem.install_page mem ~page:(0x1000_0000 / Mem.page_size) [| 1L |];
     Alcotest.fail "expected size rejection"
   with Invalid_argument _ -> ())

let test_page_data_and_touched () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  Mem.write_int mem (0x1000_0000 + Mem.page_size) 2;
  let touched = Mem.touched_pages mem ~kind:Mem.Rheap in
  Alcotest.(check int) "two pages" 2 (List.length touched);
  Alcotest.(check bool) "page data present" true
    (Mem.page_data mem ~page:(List.hd touched) <> None);
  Alcotest.(check int) "word count" (2 * Mem.words_per_page) (Mem.word_count mem)

(* ------------------------------ storage ----------------------------- *)

let test_storage_replace_and_labels () =
  let s = Storage.create () in
  Storage.write s ~label:"a" ~bytes:100;
  Storage.write s ~label:"b" ~bytes:50;
  Storage.write s ~label:"a" ~bytes:70;
  Alcotest.(check int) "replace" 120 (Storage.total_bytes s);
  Alcotest.(check (list string)) "labels" [ "a"; "b" ] (Storage.labels s);
  Storage.delete s ~label:"a";
  Alcotest.(check (option int)) "gone" None (Storage.size s ~label:"a")

(* ------------------------------ qcheck ------------------------------ *)

let prop_read_after_write =
  QCheck.Test.make ~name:"read-after-write across random offsets" ~count:300
    QCheck.(pair (int_bound (8 * Repro_os.Mem.words_per_page - 1)) int)
    (fun (word, value) ->
       let mem = fresh () in
       Mem.write_int mem (addr word) value;
       Mem.read_int mem (addr word) = value)

let prop_fork_isolation =
  QCheck.Test.make ~name:"fork isolation under random writes" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30)
              (pair (int_bound 100) (int_bound 1000)))
    (fun writes ->
       let mem = fresh () in
       List.iter (fun (w, v) -> Mem.write_int mem (addr w) v) writes;
       let snapshot = List.map (fun (w, _) -> (w, Mem.read_int mem (addr w))) writes in
       let child = Mem.fork mem in
       (* parent mutates everything *)
       List.iter (fun (w, v) -> Mem.write_int mem (addr w) (v + 1)) writes;
       List.for_all (fun (w, v) -> Mem.read_int child (addr w) = v) snapshot)

let () =
  Alcotest.run "os"
    [ ("mem",
       [ Alcotest.test_case "zero fill" `Quick test_zero_fill;
         Alcotest.test_case "word roundtrip" `Quick test_word_roundtrip;
         Alcotest.test_case "mapping rules" `Quick test_mapping_rules;
         Alcotest.test_case "kind of page" `Quick test_kind_of_page ]);
      ("protection",
       [ Alcotest.test_case "lifecycle" `Quick test_protection_lifecycle;
         Alcotest.test_case "write faults" `Quick test_write_faults_too;
         Alcotest.test_case "untouched noop" `Quick test_protect_untouched_noop ]);
      ("fork",
       [ Alcotest.test_case "shares until write" `Quick test_fork_shares_until_write;
         Alcotest.test_case "child write CoW" `Quick test_child_write_cow;
         Alcotest.test_case "fork chain" `Quick test_fork_chain;
         Alcotest.test_case "fork then protect" `Quick test_fork_after_protection ]);
      ("pages",
       [ Alcotest.test_case "install page" `Quick test_install_page;
         Alcotest.test_case "page data" `Quick test_page_data_and_touched ]);
      ("storage",
       [ Alcotest.test_case "replace/labels" `Quick test_storage_replace_and_labels ]);
      ("os-properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_read_after_write; prop_fork_isolation ]) ]
