(* Tests for genomes and the genetic algorithm, using synthetic evaluators
   so the search behaviour is checked independently of the compiler. *)

open Repro_search
module Rng = Repro_util.Rng

let rng () = Rng.create 42

(* ------------------------------ genome ------------------------------ *)

let test_random_genome_length () =
  let r = rng () in
  for _ = 1 to 100 do
    let g = Genome.random r in
    let n = List.length g in
    Alcotest.(check bool) "length in bounds" true
      (n >= Genome.min_length && n <= Genome.max_length)
  done

let test_genome_spec_roundtrip () =
  let r = rng () in
  let g = Genome.random r in
  let spec = Genome.to_spec g in
  Alcotest.(check int) "same length" (List.length g) (List.length spec);
  List.iter2
    (fun gene (name, params) ->
       Alcotest.(check string) "pass name" gene.Genome.g_pass name;
       Alcotest.(check bool) "params shared" true (gene.Genome.g_params == params))
    g spec

let test_mutation_respects_bounds () =
  let r = rng () in
  for _ = 1 to 100 do
    let g = Genome.mutate r ~gene_prob:0.5 (Genome.random r) in
    let n = List.length g in
    Alcotest.(check bool) "length in bounds" true
      (n >= Genome.min_length && n <= Genome.max_length)
  done

let test_mutated_params_valid () =
  (* unlike the initial random draw, mutation keeps parameters in range *)
  let r = rng () in
  for _ = 1 to 50 do
    let base = List.init 6 (fun _ -> Genome.random_gene r) in
    let g = Genome.mutate r ~gene_prob:1.0 base in
    List.iter
      (fun gene ->
         match Repro_lir.Passes.find gene.Genome.g_pass with
         | pass ->
           List.iteri
             (fun i pr ->
                if i < Array.length gene.Genome.g_params then begin
                  let v = gene.Genome.g_params.(i) in
                  Alcotest.(check bool) "param in range" true
                    (v >= pr.Repro_lir.Passes.pmin && v <= pr.Repro_lir.Passes.pmax)
                end)
             pass.Repro_lir.Passes.params
         | exception Not_found -> Alcotest.fail "unknown pass from mutation")
      g
  done

let test_crossover_mixes () =
  let r = rng () in
  let a = Genome.random r and b = Genome.random r in
  let child = Genome.crossover r a b in
  Alcotest.(check bool) "child not empty" true
    (List.length child >= Genome.min_length)

let test_dedup_adjacent () =
  let gene = { Genome.g_pass = "dce"; g_params = [||] } in
  let other = { Genome.g_pass = "gvn"; g_params = [||] } in
  Alcotest.(check int) "dedup" 3
    (List.length (Genome.dedup_adjacent [ gene; gene; other; gene ]))

(* -------------------------------- GA -------------------------------- *)

(* Synthetic landscape: fitness depends on which passes are present;
   "gc-check-elim" is worth a lot, unsafe passes fail verification. *)
let synthetic_eval genome =
  let has name = List.exists (fun g -> g.Genome.g_pass = name) genome in
  if has "fast-math" then Ga.Wrong_output
  else if has "unsafe-bce" then Ga.Runtime_crashed "boom"
  else begin
    let base = 10.0 in
    let t = base
            -. (if has "gc-check-elim" then 3.0 else 0.0)
            -. (if has "gvn" then 1.5 else 0.0)
            -. (if has "dce" then 1.0 else 0.0)
            +. (0.05 *. float_of_int (List.length genome))
    in
    let key =
      String.concat "," (List.sort compare (List.map (fun g -> g.Genome.g_pass) genome))
    in
    Ga.Measured
      { times = Array.make 10 t; size = List.length genome * 10; key }
  end

let test_ga_improves () =
  let r = rng () in
  let cfg = { Ga.quick_config with Ga.population = 12; generations = 6 } in
  let result = Ga.search r cfg ~evaluate:synthetic_eval () in
  match result.Ga.best with
  | None -> Alcotest.fail "no best found"
  | Some (genome, fit) ->
    Alcotest.(check bool) "found a decent point" true (fit < 9.0);
    Alcotest.(check bool) "best avoids unsafe" true
      (not (List.exists (fun g -> g.Genome.g_pass = "fast-math") genome))

let test_ga_history_ordered () =
  let r = rng () in
  let cfg = { Ga.quick_config with Ga.population = 8; generations = 4 } in
  let result = Ga.search r cfg ~evaluate:synthetic_eval () in
  let indices = List.map (fun e -> e.Ga.ev_index) result.Ga.history in
  Alcotest.(check (list int)) "indices sequential"
    (List.init (List.length indices) (fun i -> i + 1))
    indices;
  Alcotest.(check int) "evaluations counted" result.Ga.evaluations
    (List.length indices)

let test_ga_halts_on_identical () =
  (* an evaluator that always returns the same binary triggers the
     identical-binaries halting rule *)
  let eval _ =
    Ga.Measured { times = Array.make 10 5.0; size = 10; key = "same" }
  in
  let r = rng () in
  let cfg = { Ga.quick_config with Ga.population = 10; generations = 50;
                                   max_identical = 15 } in
  let result = Ga.search r cfg ~evaluate:eval () in
  Alcotest.(check bool) "halted early" true (result.Ga.halted_early <> None)

let test_ga_all_failures () =
  let eval _ = Ga.Compile_failed "nope" in
  let r = rng () in
  let cfg = { Ga.quick_config with Ga.population = 6; generations = 3 } in
  let result = Ga.search r cfg ~evaluate:eval () in
  Alcotest.(check bool) "no best when everything fails" true
    (result.Ga.best = None)

let test_ga_size_tiebreak () =
  (* two pass-sets with identical times: the smaller binary must win *)
  let eval genome =
    let n = List.length genome in
    Ga.Measured
      { times = Array.make 10 5.0; size = n; key = string_of_int n }
  in
  let r = rng () in
  let cfg = { Ga.quick_config with Ga.population = 14; generations = 6 } in
  let result = Ga.search r cfg ~evaluate:eval () in
  match result.Ga.best with
  | Some (genome, _) ->
    Alcotest.(check bool) "short genome preferred" true
      (List.length genome <= 6)
  | None -> Alcotest.fail "no best"

let test_hill_climb_improves_or_keeps () =
  let r = rng () in
  let start = Genome.random r in
  let fit0 =
    match synthetic_eval start with
    | Ga.Measured { times; _ } -> Repro_util.Stats.mean times
    | _ -> 20.0
  in
  let _, fit = Ga.hill_climb r ~evaluate:synthetic_eval (start, fit0) ~rounds:2 in
  Alcotest.(check bool) "no worse" true (fit <= fit0)

let () =
  Alcotest.run "search"
    [ ("genome",
       [ Alcotest.test_case "random length" `Quick test_random_genome_length;
         Alcotest.test_case "spec roundtrip" `Quick test_genome_spec_roundtrip;
         Alcotest.test_case "mutation bounds" `Quick test_mutation_respects_bounds;
         Alcotest.test_case "mutated params valid" `Quick test_mutated_params_valid;
         Alcotest.test_case "crossover" `Quick test_crossover_mixes;
         Alcotest.test_case "dedup adjacent" `Quick test_dedup_adjacent ]);
      ("ga",
       [ Alcotest.test_case "improves" `Quick test_ga_improves;
         Alcotest.test_case "history ordered" `Quick test_ga_history_ordered;
         Alcotest.test_case "halts on identical" `Quick test_ga_halts_on_identical;
         Alcotest.test_case "all failures" `Quick test_ga_all_failures;
         Alcotest.test_case "size tiebreak" `Quick test_ga_size_tiebreak;
         Alcotest.test_case "hill climb" `Quick test_hill_climb_improves_or_keeps ]) ]
