(* Tests over the 21 evaluation applications: they compile, run, agree
   between interpreter and compiled code, and expose the hot regions the
   registry documents. *)

module App = Repro_apps.Registry
module B = Repro_dex.Bytecode
module Vm = Repro_vm
module Pipeline = Repro_core.Pipeline
module Regions = Repro_profiler.Regions

let test_registry_complete () =
  Alcotest.(check int) "21 apps (Table 1)" 21 (List.length App.all);
  let by_class cls =
    List.length (List.filter (fun a -> a.App.cls = cls) App.all)
  in
  Alcotest.(check int) "5 Scimark" 5 (by_class App.Scimark_suite);
  Alcotest.(check int) "7 Art" 7 (by_class App.Art_suite);
  Alcotest.(check int) "9 Interactive" 9 (by_class App.Interactive_suite)

let test_all_compile () =
  List.iter
    (fun app ->
       match App.dexfile app with
       | (_ : B.dexfile) -> ()
       | exception e ->
         Alcotest.fail
           (Printf.sprintf "%s failed to compile: %s" app.App.name
              (Printexc.to_string e)))
    App.all

let test_all_run_interpreted () =
  List.iter
    (fun app ->
       let ctx = App.build_ctx ~seed:3 app in
       Vm.Interp.install ctx;
       match Vm.Interp.run_main ctx with
       | (_ : Vm.Value.t option) ->
         Alcotest.(check bool)
           (app.App.name ^ " does work") true
           (ctx.Vm.Exec_ctx.cycles > 100_000)
       | exception e ->
         Alcotest.fail (app.App.name ^ ": " ^ Printexc.to_string e))
    App.all

(* Sys.clock reads simulated time, so apps that consult it (DroidFish's
   native engine) legitimately behave differently across code versions;
   for them we only require successful, faster execution. *)
let uses_clock app =
  let dx = App.dexfile app in
  Array.exists
    (fun m ->
       Array.exists
         (function
           | B.InvokeNative (_, B.Nclock, _) -> true
           | _ -> false)
         m.B.cm_code)
    dx.B.dx_methods

let test_android_binary_agrees_with_interpreter () =
  List.iter
    (fun app ->
       let run install =
         let ctx = App.build_ctx ~seed:3 app in
         install ctx;
         let ret = Vm.Interp.run_main ctx in
         (ret, Buffer.contents ctx.Vm.Exec_ctx.io, ctx.Vm.Exec_ctx.cycles)
       in
       let ri, ioi, ci = run Vm.Interp.install in
       let rb, iob, cb =
         run (fun ctx ->
             Repro_lir.Exec.install ctx (Pipeline.android_binary_for app))
       in
       let same =
         (match ri, rb with
          | Some a, Some b -> Vm.Value.equal a b
          | None, None -> true
          | _ -> false)
         && ioi = iob
       in
       if not (uses_clock app) then
         Alcotest.(check bool) (app.App.name ^ " same behaviour") true same;
       Alcotest.(check bool) (app.App.name ^ " compiled faster") true (cb < ci))
    App.all

let test_hot_regions_as_documented () =
  List.iter
    (fun app ->
       let online = Pipeline.online_run ~seed:3 app in
       match Pipeline.hot_region_of app online with
       | None -> Alcotest.fail (app.App.name ^ ": no hot region")
       | Some mid ->
         let dx = App.dexfile app in
         let m = dx.B.dx_methods.(mid) in
         let matches =
           List.exists
             (fun (cls, name) ->
                m.B.cm_class_name = cls && m.B.cm_name = name)
             app.App.expect_hot
         in
         Alcotest.(check bool)
           (Printf.sprintf "%s hot=%s.%s expected one of [%s]" app.App.name
              m.B.cm_class_name m.B.cm_name
              (String.concat "; "
                 (List.map (fun (c, n) -> c ^ "." ^ n) app.App.expect_hot)))
           true matches)
    App.all

let test_hot_regions_replayable () =
  List.iter
    (fun app ->
       let online = Pipeline.online_run ~seed:3 app in
       match Pipeline.hot_region_of app online with
       | None -> ()
       | Some mid ->
         Alcotest.(check bool) (app.App.name ^ " region replayable") true
           (Regions.region_replayable (App.dexfile app) mid))
    App.all

let test_mains_unreplayable () =
  (* every app's driver does I/O or uses randomness: the capture mechanism
     must refuse it *)
  List.iter
    (fun app ->
       let dx = App.dexfile app in
       Alcotest.(check bool) (app.App.name ^ " main unreplayable") false
         (Regions.replayable dx dx.B.dx_main))
    App.all

let test_interactive_apps_draw () =
  List.iter
    (fun app ->
       if app.App.cls = App.Interactive_suite then begin
         let ctx = App.build_ctx ~seed:3 app in
         Vm.Interp.install ctx;
         ignore (Vm.Interp.run_main ctx);
         let io = Buffer.contents ctx.Vm.Exec_ctx.io in
         (* games render; the two calculators print odds *)
         Alcotest.(check bool) (app.App.name ^ " produces output") true
           (String.length io > 0)
       end)
    App.all

let test_deterministic_given_seed () =
  List.iter
    (fun app ->
       let run () =
         let ctx = App.build_ctx ~seed:9 app in
         Vm.Interp.install ctx;
         let ret = Vm.Interp.run_main ctx in
         (ret, ctx.Vm.Exec_ctx.cycles)
       in
       let (r1, c1) = run () and (r2, c2) = run () in
       Alcotest.(check bool) (app.App.name ^ " deterministic") true
         (r1 = r2 && c1 = c2))
    App.all

let () =
  Alcotest.run "apps"
    [ ("registry",
       [ Alcotest.test_case "complete" `Quick test_registry_complete;
         Alcotest.test_case "all compile" `Quick test_all_compile ]);
      ("behaviour",
       [ Alcotest.test_case "all run interpreted" `Slow test_all_run_interpreted;
         Alcotest.test_case "android binary agrees" `Slow
           test_android_binary_agrees_with_interpreter;
         Alcotest.test_case "deterministic" `Slow test_deterministic_given_seed;
         Alcotest.test_case "interactive apps draw" `Slow test_interactive_apps_draw ]);
      ("regions",
       [ Alcotest.test_case "hot regions documented" `Slow test_hot_regions_as_documented;
         Alcotest.test_case "regions replayable" `Slow test_hot_regions_replayable;
         Alcotest.test_case "mains unreplayable" `Quick test_mains_unreplayable ]) ]
