(* Tests for the MiniDex frontend: lexer, parser, typechecker, lowering. *)

open Repro_dex
module B = Bytecode

(* ------------------------------ Lexer ------------------------------- *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lex_basic () =
  Alcotest.(check int) "token count" 6
    (List.length (toks "int x = 42 ;"));
  match toks "x <= 10" with
  | [ Lexer.IDENT "x"; Lexer.PUNCT "<="; Lexer.INT 10; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "bad token stream"

let test_lex_floats () =
  (match toks "3.14 1e6 2.5e-3" with
   | [ Lexer.FLOAT a; Lexer.FLOAT b; Lexer.FLOAT c; Lexer.EOF ] ->
     Alcotest.(check (float 1e-12)) "pi" 3.14 a;
     Alcotest.(check (float 1e-6)) "1e6" 1e6 b;
     Alcotest.(check (float 1e-12)) "2.5e-3" 2.5e-3 c
   | _ -> Alcotest.fail "bad float tokens")

let test_lex_comments () =
  Alcotest.(check int) "comments skipped" 2
    (List.length (toks "// line\n/* block\n spanning */ x"))

let test_lex_error () =
  Alcotest.check_raises "bad char" (Lexer.Lex_error ("unexpected character '#'", 1))
    (fun () -> ignore (Lexer.tokenize "#"))

(* ------------------------------ Parser ------------------------------ *)

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Ebinop (Ast.Add, Ast.Eint 1, Ast.Ebinop (Ast.Mul, Ast.Eint 2, Ast.Eint 3)) -> ()
  | _ -> Alcotest.fail "wrong precedence"

let test_parse_logic_precedence () =
  match Parser.parse_expr "a || b && c" with
  | Ast.Ebinop (Ast.Lor, Ast.Evar "a", Ast.Ebinop (Ast.Land, _, _)) -> ()
  | _ -> Alcotest.fail "|| should bind weaker than &&"

let test_parse_postfix_chain () =
  match Parser.parse_expr "a.b[3].c(x)" with
  | Ast.Evirtual_call (Ast.Eindex (Ast.Efield (Ast.Evar "a", "b"), Ast.Eint 3),
                       "c", [ Ast.Evar "x" ]) -> ()
  | _ -> Alcotest.fail "postfix chain"

let test_parse_cast_vs_paren () =
  (match Parser.parse_expr "(int) 2.5" with
   | Ast.Ecast (Ast.Tint, Ast.Efloat 2.5) -> ()
   | _ -> Alcotest.fail "cast");
  (match Parser.parse_expr "(x)" with
   | Ast.Evar "x" -> ()
   | _ -> Alcotest.fail "paren")

let test_parse_class () =
  let prog = Parser.parse_program
      "class A extends B { int f; static float g = 1.5; int m(int x) { return x; } }"
  in
  match prog with
  | [ { Ast.c_name = "A"; c_super = Some "B"; c_fields = [ f; g ];
        c_methods = [ m ] } ] ->
    Alcotest.(check string) "field" "f" f.Ast.f_name;
    Alcotest.(check bool) "g static" true g.Ast.f_static;
    Alcotest.(check string) "method" "m" m.Ast.m_name
  | _ -> Alcotest.fail "class structure"

let test_parse_error_reports_line () =
  try
    ignore (Parser.parse_program "class A {\n int m() { return }\n}");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error (_, line) -> Alcotest.(check int) "line" 2 line

(* --------------------------- Typechecker ---------------------------- *)

let check_ok src = Typecheck.check (Parser.parse_program src)

let check_fails src =
  try
    ignore (check_ok src);
    Alcotest.fail "expected Type_error"
  with Typecheck.Type_error _ -> ()

let test_tc_simple () =
  ignore
    (check_ok
       "class Main { static int main() { int x = 1; return x + 2; } }")

let test_tc_int_to_float_coercion () =
  let prog =
    check_ok "class Main { static float main() { float f = 1; return f + 2; } }"
  in
  Alcotest.(check int) "one class" 1 (List.length prog)

let test_tc_rejects_float_to_int () =
  check_fails "class Main { static int main() { int x = 1.5; return x; } }"

let test_tc_rejects_unknown_var () =
  check_fails "class Main { static int main() { return y; } }"

let test_tc_rejects_bad_call_arity () =
  check_fails
    "class Main { static int f(int x) { return x; } static int main() { return f(1, 2); } }"

let test_tc_rejects_bitwise_on_float () =
  check_fails "class Main { static int main() { return 1 & (int)(2.0 & 1.0); } }";
  check_fails "class Main { static float main() { float f = 1.0; return f & f; } }"

let test_tc_implicit_this_field () =
  ignore
    (check_ok
       "class C { int v; int get() { return v; } }
        class Main { static int main() { return new C().get(); } }")

let test_tc_static_field_resolution () =
  ignore
    (check_ok
       "class Cfg { static int limit = 10; }
        class Main { static int main() { return Cfg.limit; } }")

let test_tc_virtual_dispatch_sig () =
  ignore
    (check_ok
       "class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class Main { static int main() { A a = new B(); return a.f(); } }")

let test_tc_override_must_match () =
  check_fails
    "class A { int f() { return 1; } }
     class B extends A { float f() { return 2.0; } }
     class Main { static int main() { return 0; } }"

let test_tc_inheritance_cycle () =
  check_fails
    "class A extends B { } class B extends A { }
     class Main { static int main() { return 0; } }"

let test_tc_break_outside_loop () =
  check_fails "class Main { static int main() { break; return 0; } }"

let test_tc_this_in_static () =
  check_fails "class Main { static int main() { return this.x; } int x; }"

let test_tc_natives () =
  ignore
    (check_ok
       "class Main { static float main() {
          float a = Math.sqrt(2.0) + Math.pow(2.0, 3.0);
          int b = Math.abs(0 - 3) + Math.min(1, 2) + Sys.rand(10) + Sys.clock();
          Sys.print(b);
          return a + Math.abs(0.0 - a);
        } }")

let test_tc_unknown_native () =
  check_fails "class Main { static int main() { return Math.cbrt(8.0); } }"

let test_tc_null_assignment () =
  ignore
    (check_ok
       "class C {} class Main { static int main() { C c = null; int[] a = null; return 0; } }")

let test_tc_subclass_assignment () =
  ignore
    (check_ok
       "class A {} class B extends A {}
        class Main { static int main() { A a = new B(); return 0; } }");
  check_fails
    "class A {} class B extends A {}
     class Main { static int main() { B b = new A(); return 0; } }"

(* ----------------------------- Lowering ----------------------------- *)

let test_lower_main_exists () =
  let dx = Lower.compile "class Main { static int main() { return 7; } }" in
  let m = dx.B.dx_methods.(dx.B.dx_main) in
  Alcotest.(check string) "main name" "main" m.B.cm_name

let test_lower_requires_main () =
  (try
     ignore (Lower.compile "class A { static int f() { return 0; } }");
     Alcotest.fail "expected Lower_error"
   with Lower.Lower_error _ -> ())

let test_lower_field_layout_inheritance () =
  let dx =
    Lower.compile
      "class A { int a; int b; }
       class B extends A { int c; }
       class Main { static int main() { return 0; } }"
  in
  let b = Option.get (B.find_class dx "B") in
  Alcotest.(check int) "3 fields" 3 b.B.ci_nfields;
  Alcotest.(check (list (pair string int))) "layout"
    [ ("a", 0); ("b", 1); ("c", 2) ] b.B.ci_field_offset

let test_lower_vtable_override () =
  let dx =
    Lower.compile
      "class A { int f() { return 1; } int g() { return 2; } }
       class B extends A { int g() { return 3; } }
       class Main { static int main() { return 0; } }"
  in
  let a = Option.get (B.find_class dx "A") in
  let b = Option.get (B.find_class dx "B") in
  Alcotest.(check int) "same nslots" (Array.length a.B.ci_vtable)
    (Array.length b.B.ci_vtable);
  let slot_g = Option.get (Lower.vtable_slot dx "A" "g") in
  let mg_a = dx.B.dx_methods.(a.B.ci_vtable.(slot_g)) in
  let mg_b = dx.B.dx_methods.(b.B.ci_vtable.(slot_g)) in
  Alcotest.(check string) "A.g" "A" mg_a.B.cm_class_name;
  Alcotest.(check string) "B.g override" "B" mg_b.B.cm_class_name

let test_lower_branch_targets_valid () =
  let dx =
    Lower.compile
      "class Main { static int main() {
         int s = 0;
         for (int i = 0; i < 10; i = i + 1) {
           if (i % 2 == 0 && i > 2) { s = s + i; } else { s = s - 1; }
         }
         while (s > 100) { s = s - 100; }
         return s;
       } }"
  in
  Array.iter
    (fun m ->
       let n = Array.length m.B.cm_code in
       Array.iter
         (fun ins ->
            let target =
              match ins with
              | B.If (_, _, _, t) | B.Ifz (_, _, t) | B.Goto t -> Some t
              | _ -> None
            in
            match target with
            | Some t ->
              Alcotest.(check bool) "target in range" true (t >= 0 && t < n)
            | None -> ())
         m.B.cm_code)
    dx.B.dx_methods

let test_lower_try_ranges () =
  let dx =
    Lower.compile
      "class Main { static int main() {
         int x = 0;
         try { x = 1; try { throw 5; } catch (int e) { x = e; } }
         catch (int f) { x = f + 1; }
         return x;
       } }"
  in
  let m = dx.B.dx_methods.(dx.B.dx_main) in
  Alcotest.(check int) "two handlers" 2 (Array.length m.B.cm_handlers);
  Alcotest.(check bool) "has_try" true m.B.cm_has_try;
  Array.iter
    (fun (s, e, _, h) ->
       Alcotest.(check bool) "range ordered" true (s <= e);
       Alcotest.(check bool) "handler in code" true
         (h >= 0 && h < Array.length m.B.cm_code))
    m.B.cm_handlers

let test_lower_static_inits () =
  let dx =
    Lower.compile
      "class Cfg { static int a = 5; static float b = 2.5; static bool c = true; }
       class Main { static int main() { return Cfg.a; } }"
  in
  Alcotest.(check int) "3 statics" 3 dx.B.dx_nstatics;
  Alcotest.(check int) "3 inits" 3 (List.length dx.B.dx_static_inits)

let test_disasm_runs () =
  let dx =
    Lower.compile
      "class Main { static int main() {
         int[] a = new int[4];
         a[0] = 1;
         return a[0] + a.length;
       } }"
  in
  let text = Disasm.dexfile dx in
  Alcotest.(check bool) "mentions new-array" true
    (Astring.String.is_infix ~affix:"new-array" text)

(* qcheck: the lexer never loses tokens on integer expressions it built *)
let prop_lex_roundtrip_ints =
  QCheck.Test.make ~name:"int literals survive lex" ~count:200
    QCheck.(small_nat)
    (fun n ->
       match toks (string_of_int n) with
       | [ Lexer.INT k; Lexer.EOF ] -> k = n
       | _ -> false)

let () =
  Alcotest.run "dex"
    [ ("lexer",
       [ Alcotest.test_case "basic" `Quick test_lex_basic;
         Alcotest.test_case "floats" `Quick test_lex_floats;
         Alcotest.test_case "comments" `Quick test_lex_comments;
         Alcotest.test_case "error" `Quick test_lex_error ]);
      ("parser",
       [ Alcotest.test_case "precedence" `Quick test_parse_precedence;
         Alcotest.test_case "logic precedence" `Quick test_parse_logic_precedence;
         Alcotest.test_case "postfix chain" `Quick test_parse_postfix_chain;
         Alcotest.test_case "cast vs paren" `Quick test_parse_cast_vs_paren;
         Alcotest.test_case "class" `Quick test_parse_class;
         Alcotest.test_case "error line" `Quick test_parse_error_reports_line ]);
      ("typecheck",
       [ Alcotest.test_case "simple" `Quick test_tc_simple;
         Alcotest.test_case "int->float coercion" `Quick test_tc_int_to_float_coercion;
         Alcotest.test_case "rejects float->int" `Quick test_tc_rejects_float_to_int;
         Alcotest.test_case "rejects unknown var" `Quick test_tc_rejects_unknown_var;
         Alcotest.test_case "rejects bad arity" `Quick test_tc_rejects_bad_call_arity;
         Alcotest.test_case "rejects bitwise float" `Quick test_tc_rejects_bitwise_on_float;
         Alcotest.test_case "implicit this field" `Quick test_tc_implicit_this_field;
         Alcotest.test_case "static field" `Quick test_tc_static_field_resolution;
         Alcotest.test_case "virtual dispatch" `Quick test_tc_virtual_dispatch_sig;
         Alcotest.test_case "override must match" `Quick test_tc_override_must_match;
         Alcotest.test_case "inheritance cycle" `Quick test_tc_inheritance_cycle;
         Alcotest.test_case "break outside loop" `Quick test_tc_break_outside_loop;
         Alcotest.test_case "this in static" `Quick test_tc_this_in_static;
         Alcotest.test_case "natives" `Quick test_tc_natives;
         Alcotest.test_case "unknown native" `Quick test_tc_unknown_native;
         Alcotest.test_case "null assignment" `Quick test_tc_null_assignment;
         Alcotest.test_case "subclass assignment" `Quick test_tc_subclass_assignment ]);
      ("lower",
       [ Alcotest.test_case "main exists" `Quick test_lower_main_exists;
         Alcotest.test_case "requires main" `Quick test_lower_requires_main;
         Alcotest.test_case "field layout" `Quick test_lower_field_layout_inheritance;
         Alcotest.test_case "vtable override" `Quick test_lower_vtable_override;
         Alcotest.test_case "branch targets" `Quick test_lower_branch_targets_valid;
         Alcotest.test_case "try ranges" `Quick test_lower_try_ranges;
         Alcotest.test_case "static inits" `Quick test_lower_static_inits;
         Alcotest.test_case "disasm" `Quick test_disasm_runs ]);
      ("dex-properties",
       List.map QCheck_alcotest.to_alcotest [ prop_lex_roundtrip_ints ]) ]
