(* The device-fleet layer (lib/fleet): deterministic device profiles, the
   fleet coordinator's byte-identical-history contract across -j / device
   scheduling / availability interleaving, warm starts from the genome
   bank, and the bank's save/load round-trip including the corrupted-file
   quarantine path. *)

module Rng = Repro_util.Rng
module Genome = Repro_search.Genome
module Ga = Repro_search.Ga
module P = Repro_core.Pipeline
module App = Repro_apps.Registry
module Device = Repro_fleet.Device
module Bank = Repro_fleet.Bank
module Fleet = Repro_fleet.Fleet

let app name = Option.get (App.find name)

(* Shared cheap evaluation environment (FFT, no corpus). *)
let env =
  lazy
    (let a = app "FFT" in
     P.make_eval_env a (Option.get (P.capture_once a)))

(* Small search so the determinism matrix stays fast. *)
let tiny_cfg =
  { Fleet.ga = { Ga.quick_config with Ga.population = 6; generations = 2 };
    replicas = 3; samples_per_device = 2 }

(* ---------------------------- devices ------------------------------- *)

let test_device_profiles_deterministic () =
  let a = Device.fleet ~fleet_seed:11 64 in
  let b = Device.fleet ~fleet_seed:11 64 in
  Array.iteri
    (fun i d ->
       Alcotest.(check string) "profile" (Device.describe d)
         (Device.describe b.(i));
       Alcotest.(check int) "id" i d.Device.id)
    a;
  (* a different fleet seed gives different profiles somewhere *)
  let c = Device.fleet ~fleet_seed:12 64 in
  Alcotest.(check bool) "seed matters" true
    (Array.exists2
       (fun x y -> Device.describe x <> Device.describe y)
       a c)

let test_device_zero_is_reference () =
  let d = Device.make ~fleet_seed:999 0 in
  Alcotest.(check (float 1e-9)) "dvfs" 1.0 d.Device.dvfs;
  Alcotest.(check bool) "always available" true
    (List.for_all (fun g -> Device.available d ~gen:g)
       (List.init 50 Fun.id));
  List.iter
    (fun name ->
       Alcotest.(check bool) ("has " ^ name) true (Device.has_app d name))
    App.names

(* Availability prefix property: the state at generation g is a pure
   function of (device profile, g) — querying other generations first, in
   any order, cannot change it. *)
let prop_availability_pure =
  QCheck.Test.make ~name:"availability pure in (device seed, gen)" ~count:200
    QCheck.(triple (int_bound 1000) (int_bound 200) (int_bound 100))
    (fun (fleet_seed, id, g) ->
       let d = Device.make ~fleet_seed id in
       let direct = Device.available d ~gen:g in
       (* walk an arbitrary prefix of other generations first *)
       for g' = g - 1 downto max 0 (g - 10) do
         ignore (Device.available d ~gen:g')
       done;
       let again = Device.available (Device.make ~fleet_seed id) ~gen:g in
       direct = again)

(* ------------------------- fleet determinism ------------------------ *)

let run_fleet ?(sched_seed = 0) ?bank ~jobs ~cache () =
  Fleet.run ~jobs ~cache ~sched_seed ?bank ~cfg:tiny_cfg ~seed:5 ~devices:40
    (Lazy.force env)

let test_fleet_history_deterministic () =
  let base = run_fleet ~jobs:1 ~cache:true () in
  Alcotest.(check bool) "found a winner" true (base.Fleet.ga.Ga.best <> None);
  List.iter
    (fun (label, r) ->
       Alcotest.(check string) label base.Fleet.history_digest
         r.Fleet.history_digest)
    [ ("jobs 4", run_fleet ~jobs:4 ~cache:true ());
      ("no cache", run_fleet ~jobs:2 ~cache:false ());
      ("sched seed 123", run_fleet ~sched_seed:123 ~jobs:1 ~cache:true ());
      ("sched seed 9001", run_fleet ~sched_seed:9001 ~jobs:4 ~cache:true ()) ]

(* qcheck over the scheduling knobs: any (jobs, sched_seed) pair agrees
   with the canonical -j1 digest. *)
let prop_fleet_sched_invariant =
  let canonical = lazy (run_fleet ~jobs:1 ~cache:true ()).Fleet.history_digest
  in
  QCheck.Test.make ~name:"fleet digest invariant under jobs/sched" ~count:4
    QCheck.(pair (int_range 1 4) (int_bound 10_000))
    (fun (jobs, sched_seed) ->
       (run_fleet ~sched_seed ~jobs ~cache:true ()).Fleet.history_digest
       = Lazy.force canonical)

let test_single_device_fleet_runs () =
  (* devices = 1: only the reference device; no round can be empty *)
  let r = run_fleet ~jobs:1 ~cache:true () in
  let solo =
    Fleet.run ~jobs:1 ~cache:true ~cfg:tiny_cfg ~seed:5 ~devices:1
      (Lazy.force env)
  in
  Alcotest.(check int) "capable" 1 solo.Fleet.capable;
  Alcotest.(check int) "no fallback rounds" 0 solo.Fleet.empty_rounds;
  Alcotest.(check bool) "same evaluation count" true
    (solo.Fleet.ga.Ga.evaluations = r.Fleet.ga.Ga.evaluations)

(* ----------------------------- warm start --------------------------- *)

let test_bank_warm_start_seeds_ga () =
  let bank = Bank.create () in
  let cold = run_fleet ~bank ~jobs:1 ~cache:true () in
  Alcotest.(check int) "cold run used no seeds" 0 cold.Fleet.bank_seeds;
  Alcotest.(check bool) "winner recorded" true (Bank.size bank > 0);
  let warm = run_fleet ~bank ~jobs:1 ~cache:true () in
  Alcotest.(check bool) "warm run seeded" true (warm.Fleet.bank_seeds > 0);
  (* the warm search must still be deterministic in itself *)
  let bank2 = Bank.create () in
  ignore (run_fleet ~bank:bank2 ~jobs:1 ~cache:true ());
  let warm2 = run_fleet ~bank:bank2 ~jobs:4 ~cache:true () in
  Alcotest.(check string) "warm digest stable across jobs"
    warm.Fleet.history_digest warm2.Fleet.history_digest

(* Ga.run seed_genomes: seeded slots consume no RNG draws, so the random
   remainder of the first round is the same stream as an unseeded run. *)
let test_seed_genomes_consume_no_draws () =
  let evaluate_batch tasks =
    Array.map
      (fun (ev_index, g) ->
         let n = List.length g in
         Ga.Measured
           { times = [| float_of_int (10 + n) |]; size = n;
             key = string_of_int (n * 1000 + (ev_index mod 7)) })
      tasks
  in
  let cfg = { Ga.quick_config with Ga.population = 8; generations = 1 } in
  let genomes_of_round0 r =
    List.filter_map
      (fun rec_ ->
         if rec_.Ga.ev_generation = 0 then
           Some (Genome.to_string rec_.Ga.ev_genome)
         else None)
      r.Ga.history
  in
  let unseeded = Ga.run (Rng.create 3) cfg ~evaluate_batch () in
  let seeds = [ Genome.random (Rng.create 77); Genome.random (Rng.create 78) ]
  in
  let seeded = Ga.run ~seed_genomes:seeds (Rng.create 3) cfg ~evaluate_batch ()
  in
  let u = genomes_of_round0 unseeded and s = genomes_of_round0 seeded in
  Alcotest.(check int) "same round size" (List.length u) (List.length s);
  let nseeds = List.length seeds in
  List.iteri
    (fun i gs ->
       if i < nseeds then
         Alcotest.(check string)
           (Printf.sprintf "slot %d is the seed" i)
           (Genome.to_string
              (Genome.dedup_adjacent (List.nth seeds i)))
           gs
       else
         (* seeded slots consumed no draws: the random tail is the
            unseeded stream, shifted *)
         Alcotest.(check string)
           (Printf.sprintf "slot %d matches the unseeded stream" i)
           (List.nth u (i - nseeds)) gs)
    s

(* ------------------------------- bank ------------------------------- *)

let mk_genome seed = Genome.random (Rng.create seed)

let test_bank_best_per_key () =
  let bank = Bank.create () in
  let g1 = mk_genome 1 and g2 = mk_genome 2 in
  Bank.record bank ~app:"FFT" ~bucket:"fast" g1 ~fitness_ms:5.0;
  Bank.record bank ~app:"FFT" ~bucket:"fast" g2 ~fitness_ms:3.0;
  Bank.record bank ~app:"FFT" ~bucket:"fast" g1 ~fitness_ms:9.0;
  (match Bank.entries bank with
   | [ e ] ->
     Alcotest.(check string) "best kept" (Genome.to_string g2)
       (Genome.to_string e.Bank.e_genome);
     Alcotest.(check (float 1e-9)) "best fitness" 3.0 e.Bank.e_fitness_ms;
     Alcotest.(check int) "all wins counted" 3 e.Bank.e_wins
   | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
  (* lookup prefers the matching bucket, then the app's other buckets *)
  Bank.record bank ~app:"FFT" ~bucket:"slow" (mk_genome 3) ~fitness_ms:1.0;
  Bank.record bank ~app:"LU" ~bucket:"fast" (mk_genome 4) ~fitness_ms:0.5;
  (match Bank.lookup bank ~app:"FFT" ~bucket:"fast" with
   | first :: _ ->
     Alcotest.(check string) "own bucket first" (Genome.to_string g2)
       (Genome.to_string first)
   | [] -> Alcotest.fail "lookup empty");
  Alcotest.(check int) "other apps excluded" 2
    (List.length (Bank.lookup bank ~app:"FFT" ~bucket:"fast"))

let with_temp_file f =
  let file = Filename.temp_file "repro_bank" ".store" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () -> f file)

let test_bank_roundtrip () =
  with_temp_file @@ fun file ->
  let bank = Bank.create () in
  Bank.record bank ~app:"FFT" ~bucket:"fast" (mk_genome 1) ~fitness_ms:2.5;
  Bank.record bank ~app:"FFT" ~bucket:"slow" (mk_genome 2) ~fitness_ms:4.125;
  Bank.record bank ~app:"LU" ~bucket:"mid" (mk_genome 3) ~fitness_ms:1.75;
  Bank.save bank file;
  let reloaded, warnings = Bank.load file in
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check int) "entry count" (Bank.size bank) (Bank.size reloaded);
  List.iter2
    (fun a b ->
       Alcotest.(check string) "app" a.Bank.e_app b.Bank.e_app;
       Alcotest.(check string) "bucket" a.Bank.e_bucket b.Bank.e_bucket;
       Alcotest.(check int) "wins" a.Bank.e_wins b.Bank.e_wins;
       Alcotest.(check bool) "fitness bits" true
         (Int64.bits_of_float a.Bank.e_fitness_ms
          = Int64.bits_of_float b.Bank.e_fitness_ms);
       Alcotest.(check string) "genome" (Genome.to_string a.Bank.e_genome)
         (Genome.to_string b.Bank.e_genome))
    (Bank.entries bank) (Bank.entries reloaded);
  (* the serialization is byte-deterministic *)
  with_temp_file @@ fun file2 ->
  Bank.save reloaded file2;
  let bytes_of f = In_channel.with_open_bin f In_channel.input_all in
  Alcotest.(check bool) "byte-identical files" true
    (bytes_of file = bytes_of file2)

let prop_bank_roundtrip =
  QCheck.Test.make ~name:"bank save/load round-trip" ~count:30
    QCheck.(small_list (pair (int_bound 1000) (int_bound 2)))
    (fun records ->
       with_temp_file @@ fun file ->
       let bank = Bank.create () in
       List.iter
         (fun (seed, b) ->
            let bucket = [| "fast"; "mid"; "slow" |].(b) in
            Bank.record bank ~app:"FFT" ~bucket (mk_genome seed)
              ~fitness_ms:(1.0 +. float_of_int seed))
         records;
       Bank.save bank file;
       let reloaded, warnings = Bank.load file in
       warnings = []
       && Bank.size reloaded = Bank.size bank
       && List.for_all2
            (fun a b ->
               Genome.to_string a.Bank.e_genome
               = Genome.to_string b.Bank.e_genome
               && a.Bank.e_fitness_ms = b.Bank.e_fitness_ms)
            (Bank.entries bank) (Bank.entries reloaded))

let test_bank_missing_file () =
  let bank, warnings = Bank.load "/nonexistent/repro-bank.store" in
  Alcotest.(check int) "empty" 0 (Bank.size bank);
  Alcotest.(check (list string)) "no warnings" [] warnings

let test_bank_corrupted_file_quarantined () =
  with_temp_file @@ fun file ->
  let bank = Bank.create () in
  Bank.record bank ~app:"FFT" ~bucket:"fast" (mk_genome 1) ~fitness_ms:2.0;
  Bank.save bank file;
  (* flip one byte in the middle of the store file *)
  let bytes = Bytes.of_string (In_channel.with_open_bin file In_channel.input_all)
  in
  let pos = Bytes.length bytes / 2 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xff));
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_bytes oc bytes);
  P.reset_quarantine ();
  let reloaded, warnings = Bank.load file in
  Alcotest.(check int) "degrades to empty" 0 (Bank.size reloaded);
  Alcotest.(check bool) "warns" true (warnings <> []);
  let quarantined = P.quarantine_summary () in
  Alcotest.(check bool) "routed into the quarantine log" true
    (List.exists
       (fun e -> e.P.q_binary = "bank:" ^ file)
       quarantined);
  P.reset_quarantine ()

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_availability_pure; prop_fleet_sched_invariant;
      prop_bank_roundtrip ]

let () =
  Alcotest.run "fleet"
    [ ("devices",
       [ Alcotest.test_case "profiles deterministic" `Quick
           test_device_profiles_deterministic;
         Alcotest.test_case "device 0 is the reference" `Quick
           test_device_zero_is_reference ]);
      ("determinism",
       [ Alcotest.test_case "history digest invariant" `Quick
           test_fleet_history_deterministic;
         Alcotest.test_case "single-device fleet" `Quick
           test_single_device_fleet_runs ]);
      ("warm start",
       [ Alcotest.test_case "bank seeds the GA" `Quick
           test_bank_warm_start_seeds_ga;
         Alcotest.test_case "seeds consume no RNG draws" `Quick
           test_seed_genomes_consume_no_draws ]);
      ("bank",
       [ Alcotest.test_case "best per key" `Quick test_bank_best_per_key;
         Alcotest.test_case "save/load round-trip" `Quick test_bank_roundtrip;
         Alcotest.test_case "missing file" `Quick test_bank_missing_file;
         Alcotest.test_case "corrupted file quarantined" `Quick
           test_bank_corrupted_file_quarantined ]);
      ("properties", qcheck_cases) ]
